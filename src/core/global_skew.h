// Global-skew control (Appendix C, Lemmas C.1/C.2, Theorem C.3).
//
// Each node maintains a conservative estimate M_v of the maximum correct
// logical clock L^max:
//
//  * M_v(0) = 0 and M_v increases at rate h_v/(1+ρ) ≤ 1, so local growth
//    can never overtake L^max (whose rate is ≥ 1);
//  * whenever M_v reaches a multiple ℓ·(d−U), v broadcasts a level-ℓ pulse
//    (distinguishable from the ClusterSync pulses: PulseKind::kMaxLevel);
//  * when v has registered level-ℓ pulses from f+1 distinct members of one
//    adjacent cluster, it sets M_v ← max(M_v, (ℓ+1)·(d−U)) and sends out
//    the pulses it now newly covers — a fault-tolerant flooding that keeps
//    M_v within O(δ·D) of L^max (Lemma C.2).
//
// The catch-up rule (Theorem C.3) — go fast when L_v ≤ M_v − c·δ and no
// trigger fires — lives in InterclusterController; this class only
// maintains M_v.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "sim/simulator.h"

namespace ftgcs::core {

class MaxEstimator {
 public:
  struct Config {
    double d = 0.0;    ///< max delay; level spacing is d − U
    double U = 0.0;    ///< delay uncertainty; requires U < d
    double rho = 0.0;  ///< drift bound (M grows at h/(1+ρ))
    int f = 0;         ///< per-cluster fault budget (quorum size f+1)
  };

  MaxEstimator(sim::Simulator& simulator, const Config& cfg,
               double initial_hardware_rate);

  /// Begins the level-pulse schedule. Requires on_emit to be set.
  void start();

  /// M_v(now).
  double read(sim::Time now) const;

  /// Forwards the node's hardware-rate change (M rate is h/(1+ρ)).
  void set_hardware_rate(sim::Time now, double rate);

  /// Handles a received level pulse from member `member_index` of
  /// `cluster`. Own loopback pulses must be filtered by the caller
  /// (`from_self`): a node's own pulse carries no new information.
  void on_level_pulse(int cluster, int member_index, bool from_self,
                      int level, sim::Time now);

  /// Folds the node's own logical clock value into M_v: L_v is always a
  /// lower bound on L^max, and the flooding argument of Lemma C.2 relies
  /// on M_w(t) ≥ L_w(t). Called by the owner at round starts.
  void observe_own_clock(double logical, sim::Time now);

  /// Emission hook: the owner broadcasts a kMaxLevel pulse with `level`.
  std::function<void(int level)> on_emit;

  std::uint64_t jumps() const { return jumps_; }
  int highest_level_sent() const { return next_level_ - 1; }

 private:
  void advance(sim::Time now);
  void schedule_next_emission(sim::Time now);
  void emit_through(double value);

  sim::Simulator& sim_;
  Config cfg_;
  double spacing_;  ///< d − U

  sim::Time t0_ = 0.0;
  double m0_ = 0.0;
  double rate_;

  int next_level_ = 1;  ///< next level to emit
  sim::EventId pending_emit_{};

  /// cluster -> level -> distinct member indices heard.
  std::map<int, std::map<int, std::set<int>>> heard_;
  std::uint64_t jumps_ = 0;
  bool started_ = false;
};

}  // namespace ftgcs::core
