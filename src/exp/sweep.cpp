#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "support/assert.h"

namespace ftgcs::exp {

namespace {

struct Task {
  std::vector<std::size_t> axis_index;  ///< value index per axis
  std::uint64_t seed = 1;
};

/// Row-major expansion over axes; seeds innermost, so per-seed rows of one
/// grid point stay adjacent.
std::vector<Task> expand_grid(const ScenarioSpec& spec) {
  for (const auto& axis : spec.axes) {
    FTGCS_EXPECTS(!axis.values.empty());
  }
  std::vector<Task> tasks;
  tasks.reserve(spec.num_tasks());
  std::vector<std::size_t> index(spec.axes.size(), 0);
  for (;;) {
    for (std::uint64_t seed : spec.seeds) {
      tasks.push_back({index, seed});
    }
    // Odometer increment, last axis fastest.
    std::size_t axis = spec.axes.size();
    while (axis > 0) {
      --axis;
      if (++index[axis] < spec.axes[axis].values.size()) break;
      index[axis] = 0;
      if (axis == 0) return tasks;
    }
    if (spec.axes.empty()) return tasks;
  }
}

RunResult execute(const ScenarioSpec& base, const Task& task,
                  std::size_t task_index, std::size_t num_tasks,
                  double& wall_ms) {
  ScenarioSpec spec = base;
  // Each task owns its private trace file — sweep tasks run concurrently
  // and a single stream would interleave. A lone task keeps the exact
  // path so `--trace out.ftr` means what it says for single runs.
  if (!spec.trace_path.empty() && num_tasks > 1) {
    spec.trace_path += ".task" + std::to_string(task_index);
  }
  // Same per-task isolation for the metrics series (and its .profile
  // sidecar, which run_ftgcs derives from this path).
  if (!spec.metrics_path.empty() && num_tasks > 1) {
    spec.metrics_path += ".task" + std::to_string(task_index);
  }
  std::vector<std::pair<std::string, std::string>> point;
  point.reserve(base.axes.size());
  for (std::size_t a = 0; a < base.axes.size(); ++a) {
    const SweepAxis& axis = base.axes[a];
    const AxisValue& value = axis.values[task.axis_index[a]];
    apply_axis(spec, axis.name, value.value);
    point.emplace_back(axis.name, format_axis_value(value));
  }
  const auto t0 = std::chrono::steady_clock::now();
  RunResult result = run_point(spec, task.seed);
  const auto t1 = std::chrono::steady_clock::now();
  wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.scenario = base.name;
  result.point = std::move(point);
  return result;
}

/// Collapses the per-seed rows of one grid point into a single row: count
/// metrics (violations/messages/events) sum, everything else takes the max.
RunResult reduce_worst(const std::vector<const RunResult*>& group) {
  FTGCS_EXPECTS(!group.empty());
  RunResult out = *group.front();
  for (std::size_t i = 1; i < group.size(); ++i) {
    const RunResult& next = *group[i];
    FTGCS_EXPECTS(next.metrics.size() == out.metrics.size());
    for (std::size_t m = 0; m < out.metrics.size(); ++m) {
      auto& [name, value] = out.metrics[m];
      const double other = next.metrics[m].second;
      if (name == "violations" || name == "messages" || name == "events") {
        value += other;
      } else if (name.rfind("in_", 0) == 0) {
        value = std::min(value, other);  // a bound holds only if it always holds
      } else {
        value = std::max(value, other);
      }
    }
  }
  out.seed = 0;
  return out;
}

}  // namespace

SweepResult SweepRunner::run(const ScenarioSpec& spec) const {
  const std::vector<Task> tasks = expand_grid(spec);
  FTGCS_EXPECTS(!tasks.empty());

  std::vector<RunResult> results(tasks.size());
  std::vector<double> wall_ms(tasks.size(), 0.0);
  const int threads = std::max(
      1, std::min<int>(options_.threads, static_cast<int>(tasks.size())));

  if (threads == 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      results[i] = execute(spec, tasks[i], i, tasks.size(), wall_ms[i]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= tasks.size() || failed.load()) return;
          try {
            results[i] = execute(spec, tasks[i], i, tasks.size(), wall_ms[i]);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            failed.store(true);
            return;
          }
        }
      });
    }
    for (auto& thread : pool) thread.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  SweepResult sweep;
  sweep.scenario = spec.name;
  for (const auto& axis : spec.axes) sweep.axis_names.push_back(axis.name);

  const auto task_events = [&results](std::size_t i) {
    return results[i].has_metric("events") ? results[i].metric("events")
                                           : 0.0;
  };
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    sweep.total_wall_ms += wall_ms[i];
    sweep.total_events += task_events(i);
    const RunResult::QueueTiers& tiers = results[i].queue;
    sweep.queue.max_bucket_count =
        std::max(sweep.queue.max_bucket_count, tiers.bucket_count);
    sweep.queue.rung_spawns += tiers.rung_spawns;
    sweep.queue.max_overflow_peak =
        std::max(sweep.queue.max_overflow_peak, tiers.overflow_peak);
    sweep.queue.reseeds += tiers.reseeds;
    sweep.queue.unordered_runs += tiers.unordered_runs;
    sweep.queue.unordered_events += tiers.unordered_events;
    sweep.queue.ordered_run_events += tiers.ordered_run_events;
    sweep.queue.narrow_events += tiers.narrow_events;
    sweep.queue.wide_events += tiers.wide_events;
    sweep.queue.group_inserts += tiers.group_inserts;
    const RunResult::ShardDiag& shard = results[i].shard;
    if (shard.shards > 0.0) {
      sweep.shard.min_cut_delay =
          sweep.shard.shards > 0.0
              ? std::min(sweep.shard.min_cut_delay, shard.min_cut_delay)
              : shard.min_cut_delay;
      sweep.shard.shards = std::max(sweep.shard.shards, shard.shards);
      sweep.shard.max_cut_edges =
          std::max(sweep.shard.max_cut_edges, shard.cut_edges);
      sweep.shard.windows += shard.windows;
      sweep.shard.max_mailbox_peak =
          std::max(sweep.shard.max_mailbox_peak, shard.mailbox_peak);
    }
    const RunResult::MonitorReport& mon = results[i].monitor;
    if (mon.enabled) {
      auto& agg = sweep.monitor;
      agg.rows += 1.0;
      agg.probes += static_cast<double>(mon.stats.probes);
      agg.violations += static_cast<double>(mon.stats.violations);
      agg.max_local_skew =
          std::max(agg.max_local_skew, mon.stats.max_local_skew);
      agg.max_global_skew =
          std::max(agg.max_global_skew, mon.stats.max_global_skew);
      agg.max_intra = std::max(agg.max_intra, mon.stats.max_intra_cluster);
      agg.max_m_lag = std::max(agg.max_m_lag, mon.stats.max_m_lag);
      if (mon.bounds.local_skew > 0.0) {
        agg.min_local_margin =
            std::min(agg.min_local_margin,
                     mon.bounds.local_skew - mon.stats.max_local_skew);
      }
      if (mon.bounds.global_skew > 0.0) {
        agg.min_global_margin =
            std::min(agg.min_global_margin,
                     mon.bounds.global_skew - mon.stats.max_global_skew);
      }
      if (mon.bounds.intra_cluster > 0.0) {
        agg.min_intra_margin =
            std::min(agg.min_intra_margin,
                     mon.bounds.intra_cluster - mon.stats.max_intra_cluster);
      }
      if (mon.stats.has_violation && !agg.has_violation) {
        agg.has_violation = true;
        agg.first_task = i;
        agg.first = mon.stats.first;
      }
    }
    const RunResult::TraceInfo& trace = results[i].trace;
    if (trace.enabled) {
      sweep.trace.files += 1.0;
      sweep.trace.records += trace.records;
      sweep.trace.bytes += trace.bytes;
    }
    const RunResult::SeriesInfo& series = results[i].series;
    if (series.enabled) {
      sweep.series.files += 1.0;
      sweep.series.probes += series.probes;
      sweep.series.bytes += series.bytes;
    }
    const RunResult::ProfileInfo& profile = results[i].profile;
    if (profile.enabled) {
      auto& agg = sweep.profile;
      agg.rows += 1.0;
      agg.shards = std::max(agg.shards, profile.shards);
      agg.merge_ms += profile.merge_ms;
      agg.run_ms += profile.run_ms;
      agg.wait_ms += profile.wait_ms;
      agg.max_imbalance = std::max(agg.max_imbalance, profile.imbalance);
    }
  }

  const auto row_timing = [&](std::size_t first_task, std::size_t n_tasks) {
    SweepResult::RowTiming t;
    double events = 0.0;
    for (std::size_t i = first_task; i < first_task + n_tasks; ++i) {
      t.wall_ms += wall_ms[i];
      events += task_events(i);
    }
    t.events_per_sec = t.wall_ms > 0.0 ? events / (t.wall_ms / 1000.0) : 0.0;
    return t;
  };

  if (spec.aggregation == SeedAggregation::kWorstOverSeeds &&
      spec.seeds.size() > 1) {
    // Seeds are innermost, so each grid point's rows are contiguous.
    const std::size_t stride = spec.seeds.size();
    for (std::size_t start = 0; start < results.size(); start += stride) {
      std::vector<const RunResult*> group;
      for (std::size_t s = 0; s < stride; ++s) {
        group.push_back(&results[start + s]);
      }
      sweep.rows.push_back(reduce_worst(group));
      if (options_.timing) sweep.timing.push_back(row_timing(start, stride));
    }
  } else {
    if (spec.seeds.size() > 1) sweep.axis_names.push_back("seed");
    if (options_.timing) {
      for (std::size_t i = 0; i < results.size(); ++i) {
        sweep.timing.push_back(row_timing(i, 1));
      }
    }
    sweep.rows = std::move(results);
  }

  if (!spec.columns.empty()) {
    sweep.columns = spec.columns;
  } else if (!sweep.rows.empty()) {
    for (const auto& [name, value] : sweep.rows.front().metrics) {
      sweep.columns.push_back(name);
    }
  }
  return sweep;
}

}  // namespace ftgcs::exp
