// minibench implementation — see benchmark/benchmark.h for scope.
#include "benchmark/benchmark.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <regex>
#include <thread>

namespace benchmark {

namespace {

double now_real_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1e9 + ts.tv_nsec;
}

double now_cpu_ns() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e9 + ts.tv_nsec;
}

struct Flags {
  std::string filter;
  int repetitions = 1;
  bool aggregates_only = false;
  double min_time = 0.5;  // seconds, google-benchmark's default
  std::string out_path;
  std::string out_format = "json";
};

Flags flags;
std::string executable_name = "micro_kernel";

std::vector<internal::Benchmark*>& registry() {
  static std::vector<internal::Benchmark*> benchmarks;
  return benchmarks;
}

/// One measured repetition of one benchmark instance.
struct Measurement {
  std::size_t iterations = 0;
  double real_ns = 0.0;  ///< per iteration
  double cpu_ns = 0.0;   ///< per iteration
  double items_per_second = 0.0;
  UserCounters counters;  ///< rates already resolved to per-second values
};

/// One runnable (benchmark, arg) pair.
struct Instance {
  std::string name;  ///< display name, e.g. "BM_X/4096"
  internal::Function fn;
  std::vector<std::int64_t> args;
};

Measurement run_once(const Instance& instance) {
  const double min_time_ns = flags.min_time * 1e9;
  std::size_t iterations = 1;
  for (;;) {
    State state(iterations, instance.args);
    instance.fn(state);
    if (state.real_ns() >= min_time_ns || iterations >= 1000000000u) {
      Measurement m;
      m.iterations = iterations;
      m.real_ns = state.real_ns() / static_cast<double>(iterations);
      m.cpu_ns = state.cpu_ns() / static_cast<double>(iterations);
      const double real_seconds = state.real_ns() * 1e-9;
      if (real_seconds > 0.0 && state.items_processed() > 0) {
        m.items_per_second =
            static_cast<double>(state.items_processed()) / real_seconds;
      }
      for (const auto& [name, counter] : state.counters) {
        Counter resolved = counter;
        if ((counter.flags & Counter::kIsRate) != 0 && real_seconds > 0.0) {
          resolved.value = counter.value / real_seconds;
          resolved.flags = Counter::kDefaults;
        }
        m.counters[name] = resolved;
      }
      return m;
    }
    // Scale towards min_time with head-room, like google-benchmark's
    // multiplier, capped at 10x per step.
    const double scale =
        std::min(10.0, 1.4 * min_time_ns / std::max(1.0, state.real_ns()));
    iterations = std::max(iterations + 1,
                          static_cast<std::size_t>(iterations * scale));
  }
}

double mean_of(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = mean_of(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return std::sqrt(sum / static_cast<double>(values.size() - 1));
}

/// A reported row (single repetition or aggregate).
struct Row {
  std::string name;
  std::string run_name;
  std::string run_type;        ///< "iteration" | "aggregate"
  std::string aggregate_name;  ///< mean | median | stddev | cv (aggregates)
  std::string aggregate_unit = "time";
  int repetitions = 1;
  std::size_t iterations = 0;
  double real_ns = 0.0;
  double cpu_ns = 0.0;
  double items_per_second = 0.0;
  UserCounters counters;
};

std::vector<Row> rows_for(const Instance& instance,
                          const std::vector<Measurement>& reps) {
  std::vector<Row> rows;
  const int n = static_cast<int>(reps.size());
  if (!flags.aggregates_only || n == 1) {
    for (const Measurement& m : reps) {
      Row row;
      row.name = instance.name;
      row.run_name = instance.name;
      row.run_type = "iteration";
      row.repetitions = n;
      row.iterations = m.iterations;
      row.real_ns = m.real_ns;
      row.cpu_ns = m.cpu_ns;
      row.items_per_second = m.items_per_second;
      row.counters = m.counters;
      rows.push_back(std::move(row));
    }
  }
  if (n <= 1) return rows;

  const auto collect = [&](auto getter) {
    std::vector<double> values;
    values.reserve(reps.size());
    for (const Measurement& m : reps) values.push_back(getter(m));
    return values;
  };
  const std::vector<double> real = collect([](const auto& m) { return m.real_ns; });
  const std::vector<double> cpu = collect([](const auto& m) { return m.cpu_ns; });
  const std::vector<double> ips =
      collect([](const auto& m) { return m.items_per_second; });

  const std::vector<std::pair<std::string, double (*)(const std::vector<double>&)>>
      aggregates = {
          {"mean", +[](const std::vector<double>& v) { return mean_of(v); }},
          {"median", +[](const std::vector<double>& v) { return median_of(v); }},
          {"stddev", +[](const std::vector<double>& v) { return stddev_of(v); }},
          {"cv",
           +[](const std::vector<double>& v) {
             const double mean = mean_of(v);
             return mean != 0.0 ? stddev_of(v) / mean : 0.0;
           }},
      };
  for (const auto& [agg_name, reduce] : aggregates) {
    Row row;
    row.name = instance.name + "_" + agg_name;
    row.run_name = instance.name;
    row.run_type = "aggregate";
    row.aggregate_name = agg_name;
    row.aggregate_unit = agg_name == "cv" ? "percentage" : "time";
    row.repetitions = n;
    row.iterations = reps.size();
    row.real_ns = reduce(real);
    row.cpu_ns = reduce(cpu);
    row.items_per_second = reduce(ips);
    // Aggregate user counters the same way.
    for (const auto& [cname, counter] : reps.front().counters) {
      std::vector<double> values;
      for (const Measurement& m : reps) {
        const auto it = m.counters.find(cname);
        values.push_back(it != m.counters.end() ? it->second.value : 0.0);
      }
      row.counters[cname] = Counter(reduce(values));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_console(const std::vector<Row>& rows) {
  std::size_t width = 30;
  for (const Row& row : rows) width = std::max(width, row.name.size() + 2);
  std::printf("%-*s %15s %15s %12s %14s\n", static_cast<int>(width),
              "Benchmark", "Time", "CPU", "Iterations", "items/s");
  for (std::size_t i = 0; i < width + 60; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
  for (const Row& row : rows) {
    std::printf("%-*s %12.1f ns %12.1f ns %12zu %14.4g\n",
                static_cast<int>(width), row.name.c_str(), row.real_ns,
                row.cpu_ns, row.iterations, row.items_per_second);
  }
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_json(const std::vector<Row>& rows, std::ostream& os) {
  char date[64];
  std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof date, "%FT%T%z", std::localtime(&now));
  char host[256] = "unknown";
  gethostname(host, sizeof host - 1);

  os << "{\n  \"context\": {\n";
  os << "    \"date\": \"" << date << "\",\n";
  os << "    \"host_name\": \"" << json_escape(host) << "\",\n";
  os << "    \"executable\": \"" << json_escape(executable_name) << "\",\n";
  os << "    \"num_cpus\": "
     << std::max(1u, std::thread::hardware_concurrency()) << ",\n";
  os << "    \"mhz_per_cpu\": 0,\n";
  os << "    \"cpu_scaling_enabled\": false,\n";
  os << "    \"caches\": [],\n";
  os << "    \"benchmark_library\": \"minibench (in-repo google-benchmark "
        "subset)\",\n";
#ifdef NDEBUG
  os << "    \"library_build_type\": \"release\"\n";
#else
  os << "    \"library_build_type\": \"debug\"\n";
#endif
  os << "  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(row.name) << "\",\n";
    os << "      \"family_index\": " << i << ",\n";
    os << "      \"per_family_instance_index\": 0,\n";
    os << "      \"run_name\": \"" << json_escape(row.run_name) << "\",\n";
    os << "      \"run_type\": \"" << row.run_type << "\",\n";
    os << "      \"repetitions\": " << row.repetitions << ",\n";
    os << "      \"threads\": 1,\n";
    if (row.run_type == "aggregate") {
      os << "      \"aggregate_name\": \"" << row.aggregate_name << "\",\n";
      os << "      \"aggregate_unit\": \"" << row.aggregate_unit << "\",\n";
    }
    os << "      \"iterations\": " << row.iterations << ",\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", row.real_ns);
    os << "      \"real_time\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.17g", row.cpu_ns);
    os << "      \"cpu_time\": " << buf << ",\n";
    os << "      \"time_unit\": \"ns\"";
    for (const auto& [name, counter] : row.counters) {
      std::snprintf(buf, sizeof buf, "%.17g", counter.value);
      os << ",\n      \"" << json_escape(name) << "\": " << buf;
    }
    if (row.items_per_second > 0.0) {
      std::snprintf(buf, sizeof buf, "%.17g", row.items_per_second);
      os << ",\n      \"items_per_second\": " << buf;
    }
    os << "\n    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

// ---- State ------------------------------------------------------------------

void State::start() {
  paused_real_ = 0.0;
  paused_cpu_ = 0.0;
  real_start_ = now_real_ns();
  cpu_start_ = now_cpu_ns();
}

void State::finish() {
  real_ns_ = now_real_ns() - real_start_ - paused_real_;
  cpu_ns_ = now_cpu_ns() - cpu_start_ - paused_cpu_;
}

void State::PauseTiming() {
  pause_real_start_ = now_real_ns();
  pause_cpu_start_ = now_cpu_ns();
}

void State::ResumeTiming() {
  paused_real_ += now_real_ns() - pause_real_start_;
  paused_cpu_ += now_cpu_ns() - pause_cpu_start_;
}

// ---- registration -----------------------------------------------------------

namespace internal {

Benchmark::Benchmark(std::string name, Function fn)
    : name_(std::move(name)), fn_(fn) {}

Benchmark* Benchmark::Arg(std::int64_t value) {
  args_.push_back(value);
  return this;
}

Benchmark* RegisterBenchmarkInternal(const char* name, Function fn) {
  registry().push_back(new Benchmark(name, fn));
  return registry().back();
}

}  // namespace internal

// ---- driver -----------------------------------------------------------------

void Initialize(int* argc, char** argv) {
  if (*argc > 0) executable_name = argv[0];
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    const std::string arg = argv[read];
    const auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--benchmark_filter=")) {
      flags.filter = v;
    } else if (const char* v = value_of("--benchmark_repetitions=")) {
      flags.repetitions = std::max(1, std::atoi(v));
    } else if (const char* v = value_of("--benchmark_report_aggregates_only=")) {
      flags.aggregates_only =
          std::strcmp(v, "true") == 0 || std::strcmp(v, "1") == 0;
    } else if (const char* v = value_of("--benchmark_min_time=")) {
      flags.min_time = std::atof(v);
    } else if (const char* v = value_of("--benchmark_out=")) {
      flags.out_path = v;
    } else if (const char* v = value_of("--benchmark_out_format=")) {
      flags.out_format = v;
    } else {
      argv[write++] = argv[read];  // leave for ReportUnrecognizedArguments
      continue;
    }
  }
  *argc = write;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "%s: error: unrecognized command-line flag: %s\n",
                 executable_name.c_str(), argv[i]);
  }
  return argc > 1;
}

std::size_t RunSpecifiedBenchmarks() {
  // Expand registrations into instances (one per Arg, or one bare).
  std::vector<Instance> instances;
  for (const internal::Benchmark* bench : registry()) {
    if (bench->args().empty()) {
      instances.push_back({bench->name(), bench->fn(), {}});
    } else {
      for (std::int64_t arg : bench->args()) {
        instances.push_back({bench->name() + "/" + std::to_string(arg),
                             bench->fn(),
                             {arg}});
      }
    }
  }
  if (!flags.filter.empty()) {
    const std::regex pattern(flags.filter);
    std::vector<Instance> kept;
    for (const Instance& instance : instances) {
      if (std::regex_search(instance.name, pattern)) kept.push_back(instance);
    }
    instances = std::move(kept);
  }

  std::vector<Row> all_rows;
  for (const Instance& instance : instances) {
    std::vector<Measurement> reps;
    reps.reserve(static_cast<std::size_t>(flags.repetitions));
    for (int r = 0; r < flags.repetitions; ++r) {
      reps.push_back(run_once(instance));
    }
    const std::vector<Row> rows = rows_for(instance, reps);
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  }

  print_console(all_rows);
  if (!flags.out_path.empty()) {
    if (flags.out_format != "json") {
      std::fprintf(stderr,
                   "minibench: only --benchmark_out_format=json is "
                   "supported (got '%s')\n",
                   flags.out_format.c_str());
      std::exit(1);
    }
    std::ofstream os(flags.out_path);
    if (!os) {
      std::fprintf(stderr, "minibench: cannot write %s\n",
                   flags.out_path.c_str());
      std::exit(1);
    }
    write_json(all_rows, os);
  }
  return instances.size();
}

void Shutdown() {}

}  // namespace benchmark
