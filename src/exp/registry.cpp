#include "exp/registry.h"

#include <algorithm>

#include "support/assert.h"

namespace ftgcs::exp {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(ScenarioSpec spec) {
  FTGCS_EXPECTS(!spec.name.empty());
  for (auto& existing : scenarios_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  scenarios_.push_back(std::move(spec));
}

const ScenarioSpec* Registry::find(const std::string& name) const {
  for (const auto& spec : scenarios_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> result;
  result.reserve(scenarios_.size());
  for (const auto& spec : scenarios_) result.push_back(spec.name);
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace ftgcs::exp
