// Reader + renderers for the metrics planes (the ftgcs_report CLI).
//
// The input grammar is deliberately tiny: one flat JSON object per line,
// values restricted to numbers, strings, booleans, and null — exactly
// what ProbeSampler and PhaseProfiler emit. The parser rejects anything
// else (nested objects/arrays), which doubles as a schema guard: if a
// future writer smuggles structure into the series, every reader breaks
// loudly instead of skewing silently.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ftgcs::obs {

struct JsonValue {
  enum class Kind { kNumber, kString, kBool, kNull };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string text;
};

/// One parsed line: ordered key → value pairs (order preserved so diffs
/// and tables render in the writer's field order).
struct JsonLine {
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& key) const;
  /// Numeric field or `fallback` when absent / non-numeric.
  double number(const std::string& key, double fallback = 0.0) const;
  /// String field or "" when absent.
  std::string text(const std::string& key) const;
};

/// A loaded JSONL file: header row (line 1) + data rows.
struct SeriesData {
  std::string path;
  JsonLine header;
  std::vector<JsonLine> rows;
};

/// Parses one line; returns false (with *error set) on malformed input.
bool parse_json_line(const std::string& line, JsonLine* out,
                     std::string* error);

/// Loads a whole file; returns false with *error on I/O or parse errors
/// (the offending line number is included).
bool load_series(const std::string& path, SeriesData* out,
                 std::string* error);

// ---- renderers (ftgcs_report) ----

/// Per-field summary of the deterministic series: final value, min, max
/// over all probes.
void render_summary(const SeriesData& series, std::ostream& os);

/// Convergence table: for each envelope family with a positive bound in
/// the header, the first probe at (and staying under is not required —
/// the paper's envelopes are per-instant) which the measured value is
/// within the bound, plus the worst margin.
void render_convergence(const SeriesData& series, std::ostream& os);

/// Sidecar tables: per-shard phase totals + imbalance, top-level spans,
/// and the final queue-tier diag row.
void render_profile(const SeriesData& profile, std::ostream& os);

/// A/B diff of two deterministic series: per shared numeric field, the
/// max |A−B| over aligned probes and the final values. Returns the
/// number of fields that differ anywhere (0 = identical trajectories).
int render_diff(const SeriesData& a, const SeriesData& b, std::ostream& os);

}  // namespace ftgcs::obs
