// Randomized differential test: the heap and ladder backends must pop the
// exact same (time, seq, payload) sequence under any interleaving of
// schedule / cancel / reschedule / pop.
//
// One RNG decides an op stream that is executed against both queues in
// lockstep. The time distribution is deliberately nasty for a calendar
// queue: dense near-future clusters (many events per bucket → rung
// spawns), far-future spikes (overflow tier + horizon rollovers when the
// window reseeds past them), exact ties (FIFO order), and occasional times
// below the last popped time (the drain-bucket clamp path). Pop bursts
// drag the window across many bucket-width boundaries and reseeds.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/rng.h"

namespace ftgcs::sim {
namespace {

struct Pair {
  EventId heap_id;
  EventId ladder_id;
};

class Differ {
 public:
  Differ() : heap_(QueueBackend::kHeap), ladder_(QueueBackend::kLadder) {}

  void schedule(Time t, std::int32_t tag) {
    EventPayload payload;
    payload.a = tag;
    payload.x = t;
    Pair pair;
    pair.heap_id = heap_.schedule_typed(t, EventKind::kTimer, 0, payload);
    pair.ladder_id = ladder_.schedule_typed(t, EventKind::kTimer, 0, payload);
    live_.push_back(pair);
    check_sizes();
  }

  /// Fire-only events (inline payload on the ladder backend) interleave
  /// with cancellable ones in the same (time, seq) order space.
  void schedule_fire_only(Time t, std::int32_t tag) {
    EventPayload payload;
    payload.a = tag;
    payload.x = t;
    heap_.schedule_fire_only(t, EventKind::kPulse, 0, payload);
    ladder_.schedule_fire_only(t, EventKind::kPulse, 0, payload);
    check_sizes();
  }

  /// Coalesced fan-out group: narrow 16 B entries on the ladder backend,
  /// a per-delivery fallback loop on the heap — both must consume the
  /// same seq range and pop the same (time, payload) sequence. The dest
  /// arrays live in a deque so the pointers the ladder borrows stay
  /// stable for the queue's whole lifetime.
  void schedule_group(Time base, const std::vector<Duration>& delays,
                      std::int32_t tag) {
    EventPayload proto;
    proto.a = tag;
    proto.b = tag ^ 0x5a5a;
    proto.d = static_cast<std::uint32_t>(delays.size());
    dests_.emplace_back();
    std::vector<std::int32_t>& rest = dests_.back();
    for (std::size_t i = 1; i < delays.size(); ++i) {
      rest.push_back(tag + static_cast<std::int32_t>(i));
    }
    heap_.schedule_fire_only_group(base, delays.data(), delays.size(),
                                   EventKind::kPulse, 0, proto, tag,
                                   rest.data());
    ladder_.schedule_fire_only_group(base, delays.data(), delays.size(),
                                     EventKind::kPulse, 0, proto, tag,
                                     rest.data());
    check_sizes();
  }

  void cancel(std::size_t index) {
    const Pair pair = take(index);
    const bool a = heap_.cancel(pair.heap_id);
    const bool b = ladder_.cancel(pair.ladder_id);
    ASSERT_EQ(a, b);
    check_sizes();
  }

  void reschedule(std::size_t index, Time t) {
    const Pair& pair = live_[index];
    const bool a = heap_.reschedule(pair.heap_id, t);
    const bool b = ladder_.reschedule(pair.ladder_id, t);
    ASSERT_EQ(a, b);
    check_sizes();
  }

  /// Pops one event from both queues and asserts identical observations.
  /// Returns the popped time so the driver can track "now".
  Time pop() {
    EXPECT_FALSE(heap_.empty());
    EXPECT_FALSE(ladder_.empty());
    const auto a = heap_.pop();
    const auto b = ladder_.pop();
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.payload.a, b.payload.a);
    EXPECT_EQ(a.payload.b, b.payload.b);
    EXPECT_EQ(a.payload.c, b.payload.c);  // narrow group decode vs fallback
    EXPECT_EQ(a.payload.d, b.payload.d);
    EXPECT_EQ(a.payload.x, b.payload.x);
    // The popped event's ids become stale in both queues; drop the pair.
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].heap_id == a.id) {
        live_[i] = live_.back();
        live_.pop_back();
        break;
      }
    }
    check_sizes();
    return a.at;
  }

  void check_next_time() { EXPECT_EQ(heap_.next_time(), ladder_.next_time()); }

  std::size_t live_count() const { return live_.size(); }
  bool empty() const { return heap_.empty(); }
  const EventQueue& ladder() const { return ladder_; }

 private:
  Pair take(std::size_t index) {
    const Pair pair = live_[index];
    live_[index] = live_.back();
    live_.pop_back();
    return pair;
  }

  void check_sizes() {
    ASSERT_EQ(heap_.size(), ladder_.size());
    ASSERT_EQ(heap_.empty(), ladder_.empty());
  }

  EventQueue heap_;
  EventQueue ladder_;
  std::vector<Pair> live_;
  /// Group dest arrays; deque keeps the borrowed pointers stable.
  std::deque<std::vector<std::int32_t>> dests_;
};

/// Draws a scheduling time around `now` from a mixture built to cross
/// every tier boundary of the ladder backend.
Time draw_time(Rng& rng, Time now) {
  const double pick = rng.next_double();
  if (pick < 0.35) return now + rng.next_double();            // near future
  if (pick < 0.55) return now + 0.5;                          // exact ties
  if (pick < 0.70) return now + rng.next_double() * 1e-6;     // dense cluster
  if (pick < 0.80) return now + 100.0 + rng.next_double();    // mid horizon
  if (pick < 0.90) return now + 1e5 * (1.0 + rng.next_double());  // far spike
  // Slightly below the frontier: by the time this fires, pops may have
  // advanced past it — the drain-bucket clamp path.
  return now * (1.0 - 1e-9 * rng.next_double());
}

TEST(QueueDifferential, RandomOpStreamPopsIdentically) {
  Rng rng(2024);
  Differ d;
  Time now = 0.0;
  std::uint64_t popped = 0;
  for (int op = 0; op < 25000; ++op) {
    const double pick = rng.next_double();
    if (pick < 0.28 || d.live_count() == 0) {
      d.schedule(draw_time(rng, now), op);
    } else if (pick < 0.40) {
      d.schedule_fire_only(draw_time(rng, now), op);
    } else if (pick < 0.50) {
      // Coalesced fan-out whose delays straddle the tier boundaries:
      // near-future (wheel), dense (rung-bound buckets) and far spikes
      // (narrow overflow bag + reseed distribution).
      std::vector<Duration> delays(1 + rng.below(8));
      for (Duration& delay : delays) {
        const double shape = rng.next_double();
        if (shape < 0.5) {
          delay = rng.next_double();
        } else if (shape < 0.8) {
          delay = 1e-6 * rng.next_double();
        } else {
          delay = 1e5 * rng.next_double();
        }
      }
      d.schedule_group(now, delays, op * 100);
    } else if (pick < 0.60) {
      d.cancel(rng.below(d.live_count()));
    } else if (pick < 0.72) {
      d.reschedule(rng.below(d.live_count()),
                   draw_time(rng, now));
    } else if (pick < 0.75) {
      // Pop burst: drain a chunk so the window sweeps whole bucket ranges
      // and occasionally empties entirely (reseed from the overflow tier).
      const int burst = 1 + static_cast<int>(rng.below(200));
      for (int i = 0; i < burst && !d.empty(); ++i) now = d.pop(), ++popped;
    } else if (pick < 0.78) {
      // Schedule burst into one microsecond-wide cluster while far spikes
      // stretch the window: piles >64 events into one bucket, which must
      // split into a rung on drain.
      const Time cluster = now + 50.0 + rng.next_double();
      for (int i = 0; i < 100; ++i) {
        if (i % 3 == 0) {
          d.schedule(cluster + 1e-6 * rng.next_double(), op * 1000 + i);
        } else if (i % 3 == 1) {
          d.schedule_fire_only(cluster + 1e-6 * rng.next_double(),
                               op * 1000 + i);
        } else {
          // Narrow entries must ride the same bucket splits: pile group
          // members into the cluster so rung spawns see both lanes.
          const std::vector<Duration> delays = {
              (cluster - now) + 1e-6 * rng.next_double(),
              (cluster - now) + 1e-6 * rng.next_double(),
              (cluster - now) + 1e-6 * rng.next_double()};
          d.schedule_group(now, delays, op * 1000 + i);
        }
      }
    } else if (pick < 0.98) {
      if (!d.empty()) now = d.pop(), ++popped;
    } else {
      d.check_next_time();
    }
  }
  while (!d.empty()) now = d.pop(), ++popped;
  EXPECT_EQ(d.live_count(), 0u);
  EXPECT_GT(popped, 20000u);
  // The stream must actually have exercised every ladder tier — and both
  // entry widths (narrow group deliveries AND wide slotted/fire-only).
  const auto& stats = d.ladder().tier_stats();
  EXPECT_GT(stats.reseeds, 1u);
  EXPECT_GT(stats.rung_spawns, 0u);
  EXPECT_GT(stats.overflow_peak, 0u);
  EXPECT_GT(stats.group_inserts, 0u);
  EXPECT_GT(stats.narrow_events, 0u);
  EXPECT_GT(stats.wide_events, 0u);
}

TEST(QueueDifferential, MonotoneSimulationShapedStream) {
  // The simulator-shaped workload: times only in [now, now + horizon],
  // reschedules dominate (timer re-aim), pops advance now monotonically.
  Rng rng(7);
  Differ d;
  Time now = 0.0;
  for (int round = 0; round < 2000; ++round) {
    for (int i = 0; i < 8; ++i) {
      d.schedule(now + 0.9 + 0.2 * rng.next_double(), round * 8 + i);
    }
    for (int i = 0; i < 4 && d.live_count() > 0; ++i) {
      d.reschedule(rng.below(d.live_count()),
                   now + 0.9 + 0.2 * rng.next_double());
    }
    for (int i = 0; i < 8 && !d.empty(); ++i) now = d.pop();
  }
  while (!d.empty()) now = d.pop();
  EXPECT_EQ(d.live_count(), 0u);
}

}  // namespace
}  // namespace ftgcs::sim
