// The exp/ engine's contract: a ScenarioSpec resolves to identical
// simulations on every replica, so sweep results are bit-identical at any
// thread count; the registry round-trips specs by name; sinks render the
// collected rows.
#include "exp/exp.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ftgcs::exp {
namespace {

/// A small but non-trivial scenario: ramp + faults + a 2x2 grid x 2 seeds.
ScenarioSpec small_scenario() {
  ScenarioSpec spec;
  spec.name = "test_small";
  spec.title = "determinism fixture";
  spec.ramp.gap_rounds = 2;
  spec.horizon.base_rounds = 12.0;
  spec.faults.mode = FaultMode::kUniform;
  spec.faults.count = -1;
  spec.faults.strategy = byz::StrategyKind::kTwoFaced;
  spec.faults.param_times_E = 1.0;
  spec.seeds = {1, 2};
  spec.axes = {
      {"clusters", {AxisValue::of(2), AxisValue::of(3)}},
      {"attacked", {AxisValue::named(0, "no"), AxisValue::named(1, "yes")}},
  };
  return spec;
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t r = 0; r < a.rows.size(); ++r) {
    const RunResult& lhs = a.rows[r];
    const RunResult& rhs = b.rows[r];
    EXPECT_EQ(lhs.point, rhs.point) << "row " << r;
    EXPECT_EQ(lhs.seed, rhs.seed) << "row " << r;
    ASSERT_EQ(lhs.metrics.size(), rhs.metrics.size()) << "row " << r;
    for (std::size_t m = 0; m < lhs.metrics.size(); ++m) {
      EXPECT_EQ(lhs.metrics[m].first, rhs.metrics[m].first)
          << "row " << r << " metric " << m;
      // Bit-identical, not approximately equal: the runner promises the
      // thread count cannot influence any simulation.
      EXPECT_EQ(lhs.metrics[m].second, rhs.metrics[m].second)
          << "row " << r << " metric " << lhs.metrics[m].first;
    }
  }
}

TEST(SweepRunner, DeterministicAcrossThreadCounts) {
  const ScenarioSpec spec = small_scenario();
  const SweepResult serial = SweepRunner({1}).run(spec);
  const SweepResult two = SweepRunner({2}).run(spec);
  const SweepResult eight = SweepRunner({8}).run(spec);
  expect_identical(serial, two);
  expect_identical(serial, eight);
}

TEST(SweepRunner, RepeatedRunsAreIdentical) {
  const ScenarioSpec spec = small_scenario();
  expect_identical(SweepRunner({3}).run(spec), SweepRunner({3}).run(spec));
}

TEST(SweepRunner, GridOrderIsRowMajorWithSeedsInnermost) {
  const SweepResult result = SweepRunner({1}).run(small_scenario());
  // 2 clusters-values x 2 attacked-values x 2 seeds.
  ASSERT_EQ(result.rows.size(), 8u);
  EXPECT_EQ(result.axis_names,
            (std::vector<std::string>{"clusters", "attacked", "seed"}));
  EXPECT_EQ(result.rows[0].point[0].second, "2");
  EXPECT_EQ(result.rows[0].point[1].second, "no");
  EXPECT_EQ(result.rows[0].seed, 1u);
  EXPECT_EQ(result.rows[1].seed, 2u);
  EXPECT_EQ(result.rows[2].point[1].second, "yes");
  EXPECT_EQ(result.rows[4].point[0].second, "3");
}

TEST(SweepRunner, AttackedAxisTogglesTheFaultPlan) {
  ScenarioSpec off = small_scenario();
  apply_axis(off, "clusters", 3);
  apply_axis(off, "attacked", 0);
  EXPECT_TRUE(resolve(off, 1).fault_plan.empty());

  ScenarioSpec on = small_scenario();
  apply_axis(on, "clusters", 3);
  apply_axis(on, "attacked", 1);
  // One two-faced fault (the full f=1 budget) per cluster.
  EXPECT_EQ(resolve(on, 1).fault_plan.size(), 3u);
}

TEST(SweepRunner, WorstOverSeedsCollapsesSeedRows) {
  ScenarioSpec spec = small_scenario();
  spec.aggregation = SeedAggregation::kWorstOverSeeds;
  const SweepResult per_seed = SweepRunner({1}).run(small_scenario());
  const SweepResult worst = SweepRunner({1}).run(spec);
  ASSERT_EQ(worst.rows.size(), 4u);
  EXPECT_EQ(worst.axis_names,
            (std::vector<std::string>{"clusters", "attacked"}));
  // The collapsed row's max_local is the max of its two seed rows.
  const double expected = std::max(per_seed.rows[0].metric("max_local"),
                                   per_seed.rows[1].metric("max_local"));
  EXPECT_EQ(worst.rows[0].metric("max_local"), expected);
  // Counters sum instead.
  EXPECT_EQ(worst.rows[0].metric("messages"),
            per_seed.rows[0].metric("messages") +
                per_seed.rows[1].metric("messages"));
}

TEST(Registry, RoundTripsSpecsByName) {
  Registry& registry = Registry::instance();
  ScenarioSpec spec = small_scenario();
  spec.name = "test_round_trip";
  spec.description = "registry fixture";
  registry.add(spec);

  const ScenarioSpec* found = registry.find("test_round_trip");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name, spec.name);
  EXPECT_EQ(found->title, spec.title);
  EXPECT_EQ(found->description, spec.description);
  EXPECT_EQ(found->seeds, spec.seeds);
  EXPECT_EQ(found->ramp.gap_rounds, spec.ramp.gap_rounds);
  ASSERT_EQ(found->axes.size(), spec.axes.size());
  EXPECT_EQ(found->axes[0].name, "clusters");
  EXPECT_EQ(found->axes[1].values[1].label, "yes");

  // The registered copy runs exactly like the original value.
  expect_identical(SweepRunner({1}).run(*found), SweepRunner({1}).run(spec));

  // Replacement by name, not duplication.
  const std::size_t size = registry.size();
  spec.title = "updated";
  registry.add(spec);
  EXPECT_EQ(registry.size(), size);
  EXPECT_EQ(registry.find("test_round_trip")->title, "updated");
}

TEST(Registry, BuiltinsRegisterAndResolve) {
  register_builtin_scenarios();
  register_builtin_scenarios();  // idempotent
  for (const char* name :
       {"e1_local_skew_vs_diameter", "e1_gradient_scale",
        "e4_fault_tolerance_boundary", "e6_global_skew_drain",
        "e6_split_drift_containment", "e9_overhead_scaling",
        "e8_gcs_pump_baseline"}) {
    const ScenarioSpec* spec = Registry::instance().find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_GT(spec->num_tasks(), 0u) << name;
    // Every grid point must resolve without throwing.
    ScenarioSpec point = *spec;
    for (const auto& axis : spec->axes) {
      apply_axis(point, axis.name, axis.values.front().value);
    }
    const ResolvedRun run = resolve(point, spec->seeds.front());
    EXPECT_GT(run.horizon_rounds, 0.0) << name;
    EXPECT_TRUE(run.graph.connected()) << name;
  }
}

TEST(Scenario, AxisApplicationCoversDocumentedNames) {
  ScenarioSpec spec;
  apply_axis(spec, "diameter", 8);
  EXPECT_EQ(spec.topology.a, 9);
  apply_axis(spec, "clusters", 5);
  EXPECT_EQ(spec.topology.a, 5);
  apply_axis(spec, "gap_rounds", 3);
  EXPECT_EQ(spec.ramp.gap_rounds, 3);
  apply_axis(spec, "f", 2);
  EXPECT_EQ(spec.params.f, 2);
  apply_axis(spec, "faults_per_cluster", 1);
  EXPECT_EQ(spec.faults.count, 1);
  apply_axis(spec, "strategy",
             static_cast<double>(static_cast<int>(
                 byz::StrategyKind::kEquivocator)));
  EXPECT_EQ(spec.faults.strategy, byz::StrategyKind::kEquivocator);
  apply_axis(spec, "attacked", 0);
  EXPECT_FALSE(spec.faults.enabled);
  apply_axis(spec, "horizon_rounds", 42);
  EXPECT_DOUBLE_EQ(spec.horizon.base_rounds, 42.0);
  EXPECT_THROW(apply_axis(spec, "no_such_axis", 1.0),
               std::invalid_argument);
}

TEST(Sinks, AllThreeRenderEveryRow) {
  ScenarioSpec spec = small_scenario();
  spec.axes = {{"clusters", {AxisValue::of(2)}}};
  spec.seeds = {1};
  const SweepResult result = SweepRunner({1}).run(spec);

  std::ostringstream table;
  TableSink().write(result, table);
  EXPECT_NE(table.str().find("max_local"), std::string::npos);

  std::ostringstream csv;
  CsvSink().write(result, csv);
  EXPECT_NE(csv.str().find("clusters,"), std::string::npos);

  std::ostringstream jsonl;
  JsonLinesSink().write(result, jsonl);
  EXPECT_NE(jsonl.str().find("\"scenario\":\"test_small\""),
            std::string::npos);
  EXPECT_NE(jsonl.str().find("\"metrics\":{"), std::string::npos);

  EXPECT_THROW(make_sink("bogus"), std::invalid_argument);
  EXPECT_NE(make_sink("table"), nullptr);
  EXPECT_NE(make_sink("csv"), nullptr);
  EXPECT_NE(make_sink("jsonl"), nullptr);
}

TEST(RampShim, EngineMatchesAnalyticRampHeight) {
  // The bench_util ramp helpers route through ResolvedRun; the engine's
  // S_init metric must equal the analytic ramp height (|C|-1)*gap*T.
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  ScenarioSpec spec;
  spec.name = "ramp_shim";
  spec.topology.a = 4;
  spec.ramp.gap_rounds = 3;
  spec.horizon.base_rounds = 10.0;
  const RunResult result = run_point(spec, 1);
  EXPECT_DOUBLE_EQ(result.metric("S_init"), 3 * 3 * params.T);
  EXPECT_GT(result.metric("messages"), 0.0);
  EXPECT_EQ(result.metric("violations"), 0.0);
}

}  // namespace
}  // namespace ftgcs::exp
