// Byzantine resilience (the paper's headline property): with at most f
// faults per cluster, every attack strategy leaves the skew bounds intact;
// beyond the budget the guarantees degrade measurably (resilience boundary,
// experiment E4's foundation).
#include <gtest/gtest.h>

#include <cmath>

#include "core/ftgcs_system.h"
#include "metrics/skew_tracker.h"
#include "net/graph.h"

namespace ftgcs::core {
namespace {

struct RunResult {
  double max_intra = 0.0;
  double max_cluster_local = 0.0;
  std::uint64_t violations = 0;
};

RunResult run_attacked(byz::StrategyKind kind, double param, int per_cluster,
                       std::uint64_t seed, double rounds = 60.0) {
  Params params = Params::practical(1e-3, 1.0, 0.01, 1);
  net::Graph g = net::Graph::line(3);
  net::AugmentedTopology topo_probe(g, params.k);

  FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  config.fault_plan =
      byz::FaultPlan::uniform(topo_probe, per_cluster, kind, param, seed);
  FtGcsSystem system(net::Graph::line(3), std::move(config));

  metrics::SkewProbe probe(system, params.T / 3.0, 10.0 * params.T);
  probe.start();
  system.start();
  system.run_until(rounds * params.T);

  RunResult result;
  result.max_intra = probe.overall_max().intra_cluster;
  result.max_cluster_local = probe.overall_max().cluster_local;
  result.violations = system.total_violations();
  return result;
}

class WithinBudgetAttack
    : public ::testing::TestWithParam<std::tuple<byz::StrategyKind, double>> {
};

TEST_P(WithinBudgetAttack, BoundsHoldWithFFaultsPerCluster) {
  const auto [kind, param] = GetParam();
  const Params params = Params::practical(1e-3, 1.0, 0.01, 1);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunResult result = run_attacked(kind, param, /*per_cluster=*/1,
                                          seed);
    EXPECT_LE(result.max_intra, params.intra_cluster_skew_bound())
        << byz::strategy_name(kind) << " seed " << seed;
    // Adjacent cluster clocks stay within the trigger geometry (well
    // below one κ level under benign drift).
    EXPECT_LE(result.max_cluster_local, params.kappa)
        << byz::strategy_name(kind) << " seed " << seed;
    EXPECT_EQ(result.violations, 0u)
        << byz::strategy_name(kind) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, WithinBudgetAttack,
    ::testing::Values(
        std::make_tuple(byz::StrategyKind::kSilent, 0.0),
        std::make_tuple(byz::StrategyKind::kRandomPulser, 0.7),
        std::make_tuple(byz::StrategyKind::kTwoFaced, 0.2),
        std::make_tuple(byz::StrategyKind::kClockLiar, 50.0),
        std::make_tuple(byz::StrategyKind::kClockLiar, -50.0),
        std::make_tuple(byz::StrategyKind::kSkewPump, 0.3),
        std::make_tuple(byz::StrategyKind::kEquivocator, 0.4)),
    [](const auto& param_info) {
      std::string name = byz::strategy_name(std::get<0>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      if (std::get<1>(param_info.param) < 0) name += "_neg";
      return name + "_" + std::to_string(param_info.index);
    });

TEST(ByzantineBoundary, OverBudgetTwoFacedDegradesCluster) {
  // f+1 = 2 two-faced colluders in each cluster of k = 4: the trimmed
  // midpoint can now be steered. The attack must show up as violations
  // and/or intra-cluster skew beyond the benign bound.
  const Params params = Params::practical(1e-3, 1.0, 0.01, 1);
  const RunResult attacked = run_attacked(byz::StrategyKind::kTwoFaced,
                                          3.0 * params.E,
                                          /*per_cluster=*/2, 17);
  const bool degraded =
      attacked.violations > 0 ||
      attacked.max_intra > params.intra_cluster_skew_bound();
  EXPECT_TRUE(degraded) << "intra=" << attacked.max_intra
                        << " violations=" << attacked.violations;
}

TEST(ByzantineBoundary, WithinBudgetStrongerParamStillHolds) {
  // The same attack magnitude with only f colluders is absorbed.
  const Params params = Params::practical(1e-3, 1.0, 0.01, 1);
  const RunResult ok = run_attacked(byz::StrategyKind::kTwoFaced,
                                    3.0 * params.E, /*per_cluster=*/1, 17);
  EXPECT_EQ(ok.violations, 0u);
  EXPECT_LE(ok.max_intra, params.intra_cluster_skew_bound());
}

TEST(ByzantineBoundary, FullyFaultyClusterIsLost) {
  // All k members of the middle cluster faulty: its neighbors' replicas
  // track garbage, but surviving clusters' internal sync must still hold.
  Params params = Params::practical(1e-3, 1.0, 0.01, 1);
  net::AugmentedTopology topo_probe(net::Graph::line(3), params.k);
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 5;
  config.fault_plan = byz::FaultPlan::in_cluster(
      topo_probe, 1, params.k, byz::StrategyKind::kSilent, 0.0, 5);
  FtGcsSystem system(net::Graph::line(3), std::move(config));
  system.start();
  system.run_until(40.0 * params.T);

  const auto snapshot = system.snapshot();
  const auto skews = metrics::measure_skews(snapshot, system.topology());
  EXPECT_LE(skews.intra_cluster, params.intra_cluster_skew_bound());
  EXPECT_FALSE(system.cluster_clock(1).has_value());
  EXPECT_TRUE(system.cluster_clock(0).has_value());
  EXPECT_TRUE(system.cluster_clock(2).has_value());
}

TEST(ByzantineCrash, CrashPlusByzantineExceedsBudget) {
  // A crash counts against the same per-cluster budget f as a Byzantine
  // fault: with f = 1, one two-faced node PLUS one crashed node in the
  // same cluster exhausts the trim (the missing pulse's clamp occupies a
  // trimmed slot), so the attacker's split pulses systematically bias the
  // trimmed midpoint of the surviving members — the whole cluster clock
  // drifts away from its healthy neighbor at a steady rate. The same
  // attack with the crash in the OTHER cluster stays tight.
  const Params params = Params::practical(1e-3, 1.0, 0.01, 1);
  auto run = [&](int crash_cluster) {
    net::AugmentedTopology topo(net::Graph::line(2), params.k);
    FtGcsSystem::Config config;
    config.params = params;
    config.seed = 77;
    config.fault_plan = byz::FaultPlan::in_cluster(
        topo, 0, 1, byz::StrategyKind::kTwoFaced, 3.0 * params.E, 77);
    FtGcsSystem system(net::Graph::line(2), std::move(config));
    for (int member : topo.members(crash_cluster)) {
      if (system.is_correct(member)) {
        system.node(member).crash_at(10.0 * params.T);
        break;
      }
    }
    system.start();
    system.run_until(150.0 * params.T);
    return std::abs(*system.cluster_clock(0) - *system.cluster_clock(1));
  };
  const double within_budget = run(/*crash_cluster=*/1);
  const double over_budget = run(/*crash_cluster=*/0);
  EXPECT_LE(within_budget, 0.1);
  EXPECT_GT(over_budget, 0.3);
  EXPECT_GT(over_budget, 20.0 * within_budget);
}

TEST(ByzantineCrash, CrashedNodesActAsSilent) {
  // Benign crash via FtGcsNode::crash_at: system continues within bounds.
  Params params = Params::practical(1e-3, 1.0, 0.01, 1);
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 9;
  FtGcsSystem system(net::Graph::line(3), std::move(config));
  // Crash one node per cluster mid-run (the f budget).
  for (int c = 0; c < 3; ++c) {
    system.node(system.topology().node(c, 0)).crash_at(10.0 * params.T);
  }
  metrics::SkewProbe probe(system, params.T / 3.0, 15.0 * params.T);
  probe.start();
  system.start();
  system.run_until(50.0 * params.T);
  EXPECT_LE(probe.steady_max().intra_cluster,
            params.intra_cluster_skew_bound());
  EXPECT_EQ(system.total_violations(), 0u);
}

}  // namespace
}  // namespace ftgcs::core
