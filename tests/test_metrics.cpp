#include <gtest/gtest.h>

#include <sstream>

#include "metrics/skew_tracker.h"
#include "metrics/stabilization.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "metrics/trace.h"

namespace ftgcs::metrics {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0.5), 5.0);
}

TEST(Table, FormatsRowsAndCsv) {
  Table table({"a", "bb", "ccc"});
  table.add_row({"1", "2", "3"});
  table.add_row({"10", "20", "30"});
  std::ostringstream pretty;
  table.print(pretty);
  EXPECT_NE(pretty.str().find("a"), std::string::npos);
  EXPECT_NE(pretty.str().find("30"), std::string::npos);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,bb,ccc\n1,2,3\n10,20,30\n");
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456789, 3), "1.23");
  EXPECT_EQ(Table::integer(42), "42");
}

TEST(PulseDiameterTrace, TracksMinMaxPerRound) {
  PulseDiameterTrace trace(3);
  trace.record_pulse(1, 10.0);
  trace.record_pulse(1, 10.4);
  EXPECT_TRUE(trace.diameter(1).has_value());
  EXPECT_NEAR(*trace.diameter(1), 0.4, 1e-12);
  EXPECT_FALSE(trace.diameter(2).has_value());
  trace.record_pulse(1, 10.2);  // inside the envelope: no change
  EXPECT_NEAR(*trace.diameter(1), 0.4, 1e-12);
  EXPECT_EQ(trace.last_round(), 1);
  // complete_rounds only reports rounds with all 3 members.
  EXPECT_EQ(trace.complete_rounds().size(), 1u);
  trace.record_pulse(2, 20.0);
  EXPECT_EQ(trace.complete_rounds().size(), 1u);
}

TEST(CorrectionTrace, AggregatesAbsoluteCorrections) {
  CorrectionTrace trace;
  trace.record(1, -0.5, false);
  trace.record(1, 0.3, false);
  trace.record(2, 0.1, true);
  EXPECT_DOUBLE_EQ(trace.max_abs_correction(1), 0.5);
  EXPECT_DOUBLE_EQ(trace.max_abs_correction(2), 0.1);
  EXPECT_DOUBLE_EQ(trace.max_abs_correction(3), 0.0);
  EXPECT_DOUBLE_EQ(trace.global_max_abs_correction(), 0.5);
  EXPECT_EQ(trace.violations(), 1u);
}

TEST(MeasureSkews, ComputesAllQuantitiesFromSnapshot) {
  // Hand-crafted snapshot on a 3-cluster line with k = 2.
  net::AugmentedTopology topo(net::Graph::line(3), 2);
  core::SystemSnapshot snap;
  snap.at = 1.0;
  // Cluster 0: {10.0, 10.2}  → clock 10.1
  // Cluster 1: {11.0, faulty} → clock 11.0
  // Cluster 2: {12.0, 12.4}  → clock 12.2
  auto add = [&](int id, bool correct, double logical) {
    core::SystemSnapshot::NodeState state;
    state.id = id;
    state.cluster = topo.cluster_of(id);
    state.correct = correct;
    state.logical = logical;
    snap.nodes.push_back(state);
  };
  add(0, true, 10.0);
  add(1, true, 10.2);
  add(2, true, 11.0);
  add(3, false, 0.0);
  add(4, true, 12.0);
  add(5, true, 12.4);

  const SkewSample s = measure_skews(snap, topo);
  EXPECT_NEAR(s.intra_cluster, 0.4, 1e-12);
  EXPECT_NEAR(s.cluster_local, 1.2, 1e-12);   // |11.0 − 12.2|
  EXPECT_NEAR(s.cluster_global, 2.1, 1e-12);  // 12.2 − 10.1
  EXPECT_NEAR(s.node_global, 2.4, 1e-12);     // 12.4 − 10.0
  // Node-local: max over adjacent-cluster extremes: |12.4 − 11.0| = 1.4.
  EXPECT_NEAR(s.node_local, 1.4, 1e-12);
}

TEST(Stabilization, FindsEntryIntoBand) {
  StabilizationTracker tracker(1.0);
  tracker.add(0.0, 5.0);
  tracker.add(1.0, 2.0);
  tracker.add(2.0, 0.8);
  tracker.add(3.0, 0.5);
  ASSERT_TRUE(tracker.stabilized_at().has_value());
  EXPECT_DOUBLE_EQ(*tracker.stabilized_at(), 2.0);
  EXPECT_DOUBLE_EQ(*tracker.stabilization_delay(1.5), 0.5);
}

TEST(Stabilization, RelapseResetsTheClock) {
  StabilizationTracker tracker(1.0);
  tracker.add(0.0, 0.5);   // in band...
  tracker.add(1.0, 3.0);   // ...but relapses
  tracker.add(2.0, 0.5);
  tracker.add(3.0, 0.4);
  ASSERT_TRUE(tracker.stabilized_at().has_value());
  EXPECT_DOUBLE_EQ(*tracker.stabilized_at(), 2.0);
}

TEST(Stabilization, NeverStabilized) {
  StabilizationTracker tracker(1.0);
  tracker.add(0.0, 2.0);
  tracker.add(1.0, 3.0);
  EXPECT_FALSE(tracker.stabilized_at().has_value());
  EXPECT_FALSE(StabilizationTracker(1.0).stabilized_at().has_value());
}

TEST(Stabilization, BoundaryValueCountsAsInBand) {
  StabilizationTracker tracker(1.0);
  tracker.add(0.0, 1.0);  // exactly at the threshold
  ASSERT_TRUE(tracker.stabilized_at().has_value());
  EXPECT_DOUBLE_EQ(*tracker.stabilized_at(), 0.0);
}

TEST(MeasureSkews, FullyFaultyClusterSkipped) {
  net::AugmentedTopology topo(net::Graph::line(2), 2);
  core::SystemSnapshot snap;
  auto add = [&](int id, bool correct, double logical) {
    core::SystemSnapshot::NodeState state;
    state.id = id;
    state.cluster = topo.cluster_of(id);
    state.correct = correct;
    state.logical = logical;
    snap.nodes.push_back(state);
  };
  add(0, true, 5.0);
  add(1, true, 5.5);
  add(2, false, 0.0);
  add(3, false, 0.0);
  const SkewSample s = measure_skews(snap, topo);
  EXPECT_DOUBLE_EQ(s.intra_cluster, 0.5);
  EXPECT_DOUBLE_EQ(s.cluster_local, 0.0);  // no live pair
  EXPECT_DOUBLE_EQ(s.cluster_global, 0.0);
}

}  // namespace
}  // namespace ftgcs::metrics
