// Core time vocabulary for the simulator.
//
// Time is Newtonian ("real") time t in the paper's inertial reference frame,
// measured in abstract seconds. All clock functions in this codebase are
// piecewise linear in Time, so every conversion between real and clock time
// is closed-form and exact up to one floating-point multiply-add.
#pragma once

#include <limits>

namespace ftgcs::sim {

/// Absolute Newtonian time (seconds).
using Time = double;

/// Difference of two Times (seconds).
using Duration = double;

inline constexpr Time kTimeZero = 0.0;
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Tolerance used by tests when comparing times derived through clock
/// inversions. The simulator itself never compares times with a tolerance.
inline constexpr double kTimeEps = 1e-9;

}  // namespace ftgcs::sim
