// minibench — a small, API-compatible subset of Google Benchmark.
//
// Why this exists: the committed BENCH_kernel.json must come from a
// benchmark library that was genuinely built in Release (micro_kernel
// refuses to publish otherwise), but not every box has a Release
// google-benchmark or the sources + network to build one. This shim is
// compiled as part of this repo — so -DCMAKE_BUILD_TYPE=Release makes the
// *library* Release by construction — and implements exactly the surface
// bench/micro_kernel.cpp uses:
//
//   * BENCHMARK(fn) registration with ->Arg(n) chaining
//   * State: range(0), iterations(), PauseTiming/ResumeTiming,
//     SetItemsProcessed, counters (Counter::kIsRate), `for (auto _ : state)`
//   * Initialize / ReportUnrecognizedArguments / RunSpecifiedBenchmarks /
//     Shutdown
//   * flags: --benchmark_filter, --benchmark_repetitions,
//     --benchmark_report_aggregates_only, --benchmark_min_time,
//     --benchmark_out, --benchmark_out_format=json
//   * console table + google-benchmark-shaped JSON (context incl.
//     library_build_type, per-run and mean/median/stddev/cv aggregates)
//
// It is NOT a general replacement: single-threaded, no fixtures, no
// templated benchmarks, no complexity analysis.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

/// User counter; kIsRate divides by the measured real time on report.
struct Counter {
  enum Flags : std::uint32_t { kDefaults = 0, kIsRate = 1 };

  double value = 0.0;
  std::uint32_t flags = kDefaults;

  Counter() = default;
  Counter(double v, std::uint32_t f = kDefaults) : value(v), flags(f) {}
};

using UserCounters = std::map<std::string, Counter>;

class State {
 public:
  State(std::size_t max_iterations, const std::vector<std::int64_t>& args)
      : max_iterations_(max_iterations), args_(args) {}

  std::int64_t range(std::size_t index = 0) const { return args_[index]; }
  std::size_t iterations() const { return max_iterations_; }

  void PauseTiming();
  void ResumeTiming();
  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  std::int64_t items_processed() const { return items_processed_; }

  UserCounters counters;

  // ---- `for (auto _ : state)` protocol --------------------------------------
  struct Value {
    // Non-trivial ctor+dtor: `for (auto _ : state)` must not trip
    // -Wunused-but-set-variable on the unused loop variable.
    Value() {}
    ~Value() {}
  };
  struct iterator {
    State* state;
    std::size_t remaining;

    Value operator*() const { return Value(); }
    iterator& operator++() {
      --remaining;
      return *this;
    }
    bool operator!=(const iterator&) {
      if (remaining != 0) return true;
      state->finish();
      return false;
    }
  };
  iterator begin() {
    start();
    return iterator{this, max_iterations_};
  }
  iterator end() { return iterator{this, 0}; }

  // Measured by the runner after the loop finishes.
  double real_ns() const { return real_ns_; }
  double cpu_ns() const { return cpu_ns_; }

 private:
  void start();
  void finish();

  std::size_t max_iterations_;
  std::vector<std::int64_t> args_;
  std::int64_t items_processed_ = 0;
  double real_start_ = 0.0;
  double cpu_start_ = 0.0;
  double paused_real_ = 0.0;
  double paused_cpu_ = 0.0;
  double pause_real_start_ = 0.0;
  double pause_cpu_start_ = 0.0;
  double real_ns_ = 0.0;
  double cpu_ns_ = 0.0;
};

namespace internal {

using Function = void (*)(State&);

/// Registration handle; Arg() appends one instance per value.
class Benchmark {
 public:
  Benchmark(std::string name, Function fn);
  Benchmark* Arg(std::int64_t value);

  const std::string& name() const { return name_; }
  Function fn() const { return fn_; }
  const std::vector<std::int64_t>& args() const { return args_; }

 private:
  std::string name_;
  Function fn_;
  std::vector<std::int64_t> args_;  ///< empty → one instance, no suffix
};

Benchmark* RegisterBenchmarkInternal(const char* name, Function fn);

}  // namespace internal

template <class T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <class T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

void Initialize(int* argc, char** argv);
bool ReportUnrecognizedArguments(int argc, char** argv);
std::size_t RunSpecifiedBenchmarks();
void Shutdown();

}  // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)
#define BENCHMARK(fn)                                            \
  static ::benchmark::internal::Benchmark* MINIBENCH_CONCAT(     \
      minibench_registration_, __LINE__) =                       \
      ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

#define BENCHMARK_MAIN()                                  \
  int main(int argc, char** argv) {                       \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }
