#include "baselines/srikanth_toueg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "net/graph.h"
#include "support/assert.h"

namespace ftgcs::baselines {

SrikanthTouegNode::SrikanthTouegNode(sim::Simulator& simulator,
                                     net::Network& network,
                                     const Config& cfg, int node_id)
    : sim_(simulator),
      net_(network),
      cfg_(cfg),
      id_(node_id),
      hardware_(simulator.now(), 0.0, 1.0),
      clock_(0.0, 0.0, 1.0, simulator.now(), 0.0) {
  FTGCS_EXPECTS(cfg.n > 3 * cfg.f);
  FTGCS_EXPECTS(cfg.period > 0.0);
}

void SrikanthTouegNode::start() {
  next_timeout_ = cfg_.period;
  schedule_timeout();
}

void SrikanthTouegNode::schedule_timeout() {
  if (timeout_event_) sim_.cancel(timeout_event_);
  const sim::Time at = hardware_.when_reaches(next_timeout_, sim_.now());
  timeout_event_ = sim_.at(at, [this] {
    timeout_event_ = sim::EventId{};
    propose(round_ + 1);
  });
}

void SrikanthTouegNode::propose(int round) {
  if (round <= proposed_) return;
  proposed_ = round;
  net::Pulse pulse;
  pulse.sender = id_;
  pulse.kind = net::PulseKind::kPropose;
  pulse.level = round;
  net_.broadcast(id_, pulse);
}

void SrikanthTouegNode::on_pulse(const net::Pulse& pulse, sim::Time now) {
  if (pulse.kind != net::PulseKind::kPropose) return;
  const int round = pulse.level;
  if (round <= round_) return;  // stale round
  auto& proposers = proposals_[round];
  proposers.insert(pulse.sender);
  const auto count = static_cast<int>(proposers.size());
  // Pull: f+1 proposals guarantee one correct proposer — join early.
  if (count >= cfg_.f + 1) {
    propose(round);
  }
  // Fire: n−f proposals guarantee all correct nodes will see f+1 soon.
  if (count >= cfg_.n - cfg_.f) {
    fire(round, now);
  }
}

void SrikanthTouegNode::fire(int round, sim::Time now) {
  round_ = round;
  last_fire_ = now;
  clock_.jump(now, round * cfg_.period);
  proposals_.erase(proposals_.begin(), proposals_.upper_bound(round));
  next_timeout_ = hardware_.read(now) + cfg_.period;
  schedule_timeout();
}

void SrikanthTouegNode::set_hardware_rate(sim::Time now, double rate) {
  hardware_.set_rate(now, rate);
  clock_.set_hardware_rate(now, rate);
  if (timeout_event_) schedule_timeout();
}

SrikanthTouegSystem::SrikanthTouegSystem(Config config)
    : config_(std::move(config)) {
  FTGCS_EXPECTS(config_.n > 3 * config_.f);
  FTGCS_EXPECTS(config_.silent_faults <= config_.f);

  sim::Rng master(config_.seed);
  auto delays = config_.delay_model
                    ? std::move(config_.delay_model)
                    : std::make_unique<net::UniformDelay>(config_.d,
                                                          config_.U);
  net::Graph clique = net::Graph::clique(config_.n);
  network_ = std::make_unique<net::Network>(sim_, clique.adjacency(),
                                            std::move(delays), master.fork(1));

  SrikanthTouegNode::Config node_cfg;
  node_cfg.n = config_.n;
  node_cfg.f = config_.f;
  node_cfg.period = config_.period;

  nodes_.resize(config_.n);
  for (int id = 0; id < config_.n; ++id) {
    if (id < config_.silent_faults) {
      network_->register_handler(id, [](const net::Pulse&, sim::Time) {});
      continue;
    }
    nodes_[id] =
        std::make_unique<SrikanthTouegNode>(sim_, *network_, node_cfg, id);
    SrikanthTouegNode* raw = nodes_[id].get();
    network_->register_handler(
        id, [raw](const net::Pulse& pulse, sim::Time now) {
          raw->on_pulse(pulse, now);
        });
  }

  drift_ = config_.drift_model
               ? std::move(config_.drift_model)
               : std::make_unique<clocks::ConstantDrift>(
                     config_.rho, config_.seed ^ 0x57ULL, /*spread=*/true);
}

void SrikanthTouegSystem::start() {
  std::vector<clocks::RateSink> sinks;
  sinks.reserve(nodes_.size());
  for (auto& node : nodes_) {
    if (node) {
      SrikanthTouegNode* raw = node.get();
      sinks.push_back([raw](sim::Time now, double rate) {
        raw->set_hardware_rate(now, rate);
      });
    } else {
      sinks.push_back([](sim::Time, double) {});
    }
  }
  drift_->install(sim_, std::move(sinks));
  for (auto& node : nodes_) {
    if (node) node->start();
  }
}

double SrikanthTouegSystem::skew() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& node : nodes_) {
    if (!node) continue;
    const double value = node->logical(sim_.now());
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  return hi >= lo ? hi - lo : 0.0;
}

double SrikanthTouegSystem::pulse_spread() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& node : nodes_) {
    if (!node) continue;
    lo = std::min(lo, node->last_fire_time());
    hi = std::max(hi, node->last_fire_time());
  }
  return hi >= lo ? hi - lo : 0.0;
}

int SrikanthTouegSystem::min_round() const {
  int lowest = std::numeric_limits<int>::max();
  for (const auto& node : nodes_) {
    if (node) lowest = std::min(lowest, node->round());
  }
  return lowest;
}

}  // namespace ftgcs::baselines
