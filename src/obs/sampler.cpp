#include "obs/sampler.h"

#include <cmath>
#include <limits>

#include "support/assert.h"

namespace ftgcs::obs {

LogLinearHistogram::Spec ProbeSampler::scaled_spec(double scale) {
  FTGCS_EXPECTS(scale > 0.0);
  LogLinearHistogram::Spec spec;
  spec.linear_width = scale / 1000.0;
  spec.linear_max = scale / 10.0;
  spec.growth = 1.25;
  spec.max = scale * 64.0;
  return spec;
}

ProbeSampler::ProbeSampler(Config config, exp::TopologyGraph graph)
    : path_(config.path),
      graph_(std::move(graph)),
      measure_m_lag_(config.measure_m_lag) {
  FTGCS_EXPECTS(!path_.empty());
  const LogLinearHistogram::Spec spec = scaled_spec(config.hist_scale);

  // Fixed schema, registration order = serialization order. Only
  // run-invariant quantities — see the header comment.
  events_ = registry_.add_counter("events");
  messages_ = registry_.add_counter("messages");
  local_hist_ = registry_.add_histogram("local", spec);
  global_hist_ = registry_.add_histogram("global", spec);
  cluster_local_ = registry_.add_gauge("cluster_local");
  cluster_global_ = registry_.add_gauge("cluster_global");
  intra_max_ = registry_.add_gauge("intra_max");
  if (measure_m_lag_) m_lag_ = registry_.add_gauge("m_lag");
  if (config.monitors) {
    violations_ = registry_.add_counter("violations");
    // One min-margin gauge per ENABLED envelope family: margins of
    // disabled families are +inf (not JSON), so they are simply not part
    // of the schema — which stays fixed per run config.
    if (config.bounds.local_skew > 0.0) {
      margin_local_ = registry_.add_gauge("margin_local");
    }
    if (config.bounds.global_skew > 0.0) {
      margin_global_ = registry_.add_gauge("margin_global");
    }
    if (config.bounds.intra_cluster > 0.0) {
      margin_intra_ = registry_.add_gauge("margin_intra");
    }
    if (config.bounds.m_lag > 0.0) {
      margin_m_lag_ = registry_.add_gauge("margin_m_lag");
    }
  }

  file_ = std::fopen(path_.c_str(), "wb");
  FTGCS_EXPECTS(file_ != nullptr);
  write_header(config);
}

ProbeSampler::~ProbeSampler() { finish(); }

void ProbeSampler::write_header(const Config& config) {
  // The header carries the shape + bounds a reader needs to interpret
  // the series (ftgcs_report's convergence table divides by these).
  // Writing it in the constructor also forces stdio to allocate the
  // stream buffer now, before the allocation guard engages.
  std::size_t undirected_edges = 0;
  for (const auto& row : graph_.adjacency) undirected_edges += row.size();
  undirected_edges /= 2;

  line_.clear();
  line_ += "{\"schema\":\"ftgcs-metrics-v1\",\"nodes\":";
  append_json_u64(line_, static_cast<std::uint64_t>(graph_.num_nodes()));
  line_ += ",\"clusters\":";
  append_json_u64(line_, static_cast<std::uint64_t>(graph_.num_clusters));
  line_ += ",\"edges\":";
  append_json_u64(line_, undirected_edges);
  line_ += ",\"hist_scale\":";
  append_json_double(line_, config.hist_scale);
  line_ += ",\"bound_local\":";
  append_json_double(line_, config.monitors ? config.bounds.local_skew : 0.0);
  line_ += ",\"bound_global\":";
  append_json_double(line_, config.monitors ? config.bounds.global_skew : 0.0);
  line_ += ",\"bound_intra\":";
  append_json_double(line_,
                     config.monitors ? config.bounds.intra_cluster : 0.0);
  line_ += ",\"bound_m_lag\":";
  append_json_double(line_, config.monitors ? config.bounds.m_lag : 0.0);
  line_ += "}\n";
  std::fwrite(line_.data(), 1, line_.size(), file_);
  bytes_ += line_.size();
}

void ProbeSampler::prewarm() {
  line_.reserve(registry_.line_reserve_hint() + 64);
}

void ProbeSampler::sample(const SampleContext& ctx) {
  FTGCS_EXPECTS(ctx.skews != nullptr);
  FTGCS_EXPECTS(ctx.columns != nullptr);
  FTGCS_EXPECTS(file_ != nullptr);
  registry_.clear_histograms();

  const core::SystemColumns& cols = *ctx.columns;
  const int n = graph_.num_nodes();

  // Per-edge node-local skews (each undirected augmented edge once, from
  // its lower endpoint; crashed endpoints excluded like the ground
  // truth). The histogram's running max is then exactly the node-local
  // skew measure_skews reports.
  for (int v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (!cols.correct[sv]) continue;
    const double lv = cols.logical[sv];
    for (const int w : graph_.adjacency[sv]) {
      if (w <= v) continue;
      const auto sw = static_cast<std::size_t>(w);
      if (!cols.correct[sw]) continue;
      local_hist_->record(std::fabs(lv - cols.logical[sw]));
    }
  }

  // Per-node offsets above the slowest correct clock; the max offset is
  // the node-global skew (spread of the correct ensemble).
  double min_logical = std::numeric_limits<double>::infinity();
  for (int v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (cols.correct[sv] && cols.logical[sv] < min_logical) {
      min_logical = cols.logical[sv];
    }
  }
  if (std::isfinite(min_logical)) {
    for (int v = 0; v < n; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      if (cols.correct[sv]) {
        global_hist_->record(cols.logical[sv] - min_logical);
      }
    }
  }

  events_->value = ctx.events;
  messages_->value = ctx.messages;
  cluster_local_->value = ctx.skews->cluster_local;
  cluster_global_->value = ctx.skews->cluster_global;
  intra_max_->value = ctx.skews->intra_cluster;
  if (m_lag_ != nullptr) m_lag_->value = ctx.m_lag;
  if (ctx.monitor != nullptr && violations_ != nullptr) {
    violations_->value = ctx.monitor->stats().violations;
    if (margin_local_ != nullptr) {
      margin_local_->value = ctx.monitor->local_margin();
    }
    if (margin_global_ != nullptr) {
      margin_global_->value = ctx.monitor->global_margin();
    }
    if (margin_intra_ != nullptr) {
      margin_intra_->value = ctx.monitor->intra_margin();
    }
    if (margin_m_lag_ != nullptr) {
      margin_m_lag_->value = ctx.monitor->m_lag_margin();
    }
  }

  ++probes_;
  line_.clear();
  line_ += "{\"t\":";
  append_json_double(line_, ctx.at);
  line_ += ",\"probe\":";
  append_json_u64(line_, probes_);
  registry_.append_fields(line_);
  line_ += "}\n";
  std::fwrite(line_.data(), 1, line_.size(), file_);
  bytes_ += line_.size();
}

void ProbeSampler::finish() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace ftgcs::obs
