#include "metrics/trace.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace ftgcs::metrics {

void PulseDiameterTrace::record_pulse(int round, sim::Time at) {
  FTGCS_EXPECTS(round >= 1);
  auto& agg = rounds_[round];
  if (agg.count == 0) {
    agg.min = agg.max = at;
  } else {
    agg.min = std::min(agg.min, at);
    agg.max = std::max(agg.max, at);
  }
  ++agg.count;
}

std::optional<double> PulseDiameterTrace::diameter(int round) const {
  const auto it = rounds_.find(round);
  if (it == rounds_.end() || it->second.count < 2) return std::nullopt;
  return it->second.max - it->second.min;
}

int PulseDiameterTrace::last_round() const {
  return rounds_.empty() ? 0 : rounds_.rbegin()->first;
}

std::vector<std::pair<int, double>> PulseDiameterTrace::complete_rounds()
    const {
  std::vector<std::pair<int, double>> out;
  for (const auto& [round, agg] : rounds_) {
    if (agg.count == expected_members_) {
      out.emplace_back(round, agg.max - agg.min);
    }
  }
  return out;
}

void CorrectionTrace::record(int round, double delta_corr, bool violated) {
  const double magnitude = std::abs(delta_corr);
  auto [it, inserted] = max_abs_.emplace(round, magnitude);
  if (!inserted) it->second = std::max(it->second, magnitude);
  global_max_ = std::max(global_max_, magnitude);
  if (violated) ++violations_;
}

double CorrectionTrace::max_abs_correction(int round) const {
  const auto it = max_abs_.find(round);
  return it == max_abs_.end() ? 0.0 : it->second;
}

}  // namespace ftgcs::metrics
