// Trigger logic: closed-form existential-s search vs. brute force, and
// Lemma 4.5 (mutual exclusion for δ < 2κ).
#include "core/triggers.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace ftgcs::core {
namespace {

// Direct transcription of Definitions 4.3/4.4 with an explicit s loop.
bool fast_brute(double self, const std::vector<double>& neighbors,
                double kappa, double slack, int s_max = 1000) {
  for (int s = 1; s <= s_max; ++s) {
    bool cond1 = false;
    bool cond2 = true;
    for (double est : neighbors) {
      if (est - self >= 2.0 * s * kappa - slack) cond1 = true;
      if (self - est > 2.0 * s * kappa + slack) cond2 = false;
    }
    if (cond1 && cond2) return true;
  }
  return false;
}

bool slow_brute(double self, const std::vector<double>& neighbors,
                double kappa, double slack, int s_max = 1000) {
  for (int s = 1; s <= s_max; ++s) {
    const double level = (2.0 * s - 1.0) * kappa;
    bool cond1 = false;
    bool cond2 = true;
    for (double est : neighbors) {
      if (self - est >= level - slack) cond1 = true;
      if (est - self > level + slack) cond2 = false;
    }
    if (cond1 && cond2) return true;
  }
  return false;
}

TEST(Triggers, FastFiresOnLargeAheadNeighbor) {
  const double kappa = 3.0, slack = 1.0;
  const std::vector<double> neighbors{10.0, 0.0};
  // ahead = 10 ≥ 2κ−δ = 5 (s=1); behind = 0 ≤ 2κ+δ = 7. → FT.
  EXPECT_TRUE(fast_trigger({0.0, neighbors}, kappa, slack));
}

TEST(Triggers, FastBlockedByLaggingNeighbor) {
  const double kappa = 3.0, slack = 1.0;
  // ahead = 6 allows s=1 (≥5); but behind = 20 needs s ≥ (20−1)/6 → s≥4;
  // s=4 needs ahead ≥ 24−1=23. No s works.
  const std::vector<double> neighbors{6.0, -20.0};
  EXPECT_FALSE(fast_trigger({0.0, neighbors}, kappa, slack));
}

TEST(Triggers, FastHigherLevelSatisfiable) {
  const double kappa = 3.0, slack = 1.0;
  // behind = 8 → s ≥ ceil(7/6) = 2; ahead = 12 ≥ 2·2·3−1 = 11 → s=2 works.
  const std::vector<double> neighbors{12.0, -8.0};
  EXPECT_TRUE(fast_trigger({0.0, neighbors}, kappa, slack));
}

TEST(Triggers, SlowFiresWhenAhead) {
  const double kappa = 3.0, slack = 1.0;
  // behind(us ahead of A) = 4 ≥ κ−δ = 2 (s=1); nobody ahead of us by > κ+δ.
  const std::vector<double> neighbors{-4.0, 1.0};
  EXPECT_TRUE(slow_trigger({0.0, neighbors}, kappa, slack));
}

TEST(Triggers, SlowBlockedByFarAheadNeighbor) {
  const double kappa = 3.0, slack = 1.0;
  // We lead someone by 4 (s=1 candidate), but another neighbor is ahead of
  // us by 20 > κ+δ = 4 → s=1 fails; s=2: need lead ≥ 3κ−δ = 8 — no.
  const std::vector<double> neighbors{-4.0, 20.0};
  EXPECT_FALSE(slow_trigger({0.0, neighbors}, kappa, slack));
}

TEST(Triggers, ZeroSlackGivesConditions) {
  // FC: some neighbor ≥ 2κ ahead, none ≥ 2κ behind (s=1).
  const double kappa = 2.0;
  EXPECT_TRUE(fast_condition({0.0, std::vector<double>{4.0}}, kappa));
  EXPECT_FALSE(fast_condition({0.0, std::vector<double>{3.9}}, kappa));
  EXPECT_TRUE(slow_condition({0.0, std::vector<double>{-2.0}}, kappa));
  EXPECT_FALSE(slow_condition({0.0, std::vector<double>{-1.9}}, kappa));
}

TEST(Triggers, ClosedFormMatchesBruteForceProperty) {
  sim::Rng rng(4242);
  for (int trial = 0; trial < 20000; ++trial) {
    const double kappa = rng.uniform(0.5, 5.0);
    const double slack = rng.uniform(0.0, 1.9) * kappa;  // δ < 2κ
    const int n = 1 + static_cast<int>(rng.below(5));
    std::vector<double> neighbors;
    for (int i = 0; i < n; ++i) {
      neighbors.push_back(rng.uniform(-40.0, 40.0));
    }
    const TriggerView view{0.0, neighbors};
    EXPECT_EQ(fast_trigger(view, kappa, slack),
              fast_brute(0.0, neighbors, kappa, slack))
        << "trial " << trial << " kappa=" << kappa << " slack=" << slack;
    EXPECT_EQ(slow_trigger(view, kappa, slack),
              slow_brute(0.0, neighbors, kappa, slack))
        << "trial " << trial << " kappa=" << kappa << " slack=" << slack;
  }
}

TEST(Triggers, MutualExclusionHoldsBelowHalfKappa) {
  // Sharp form of Lemma 4.5: for δ < κ/2 the triggers are mutually
  // exclusive. (The paper claims δ < 2κ suffices; see the counterexample
  // test below. The paper's own choice δ = κ/3 is safely below κ/2.)
  sim::Rng rng(777);
  int ft_count = 0;
  int st_count = 0;
  for (int trial = 0; trial < 50000; ++trial) {
    const double kappa = rng.uniform(0.5, 4.0);
    const double slack = rng.uniform(0.0, 0.499) * kappa;
    const int n = 1 + static_cast<int>(rng.below(6));
    std::vector<double> neighbors;
    for (int i = 0; i < n; ++i) {
      neighbors.push_back(rng.uniform(-30.0, 30.0));
    }
    const TriggerView view{0.0, neighbors};
    const bool ft = fast_trigger(view, kappa, slack);
    const bool st = slow_trigger(view, kappa, slack);
    EXPECT_FALSE(ft && st)
        << "both triggers at trial " << trial << " kappa=" << kappa
        << " slack=" << slack;
    ft_count += ft;
    st_count += st;
  }
  // The property test actually exercised both triggers.
  EXPECT_GT(ft_count, 100);
  EXPECT_GT(st_count, 100);
}

TEST(Triggers, PaperChoiceKappaThreeDeltaIsExclusive) {
  // Lemma 4.8 sets κ = 3δ, i.e. δ = κ/3 < κ/2: exclusivity must hold.
  sim::Rng rng(101);
  for (int trial = 0; trial < 50000; ++trial) {
    const double kappa = rng.uniform(0.5, 4.0);
    const double slack = kappa / 3.0;
    const int n = 1 + static_cast<int>(rng.below(6));
    std::vector<double> neighbors;
    for (int i = 0; i < n; ++i) {
      neighbors.push_back(rng.uniform(-30.0, 30.0));
    }
    const TriggerView view{0.0, neighbors};
    EXPECT_FALSE(fast_trigger(view, kappa, slack) &&
                 slow_trigger(view, kappa, slack))
        << "trial " << trial;
  }
}

TEST(Triggers, MutualExclusionCounterexampleAboveHalfKappa) {
  // Documented deviation from the paper's Lemma 4.5 statement: at
  // δ = 0.6κ, a node with one neighbor 1.5κ ahead and another 0.5κ
  // behind satisfies FT(s=1) (1.5κ ≥ 2κ−0.6κ; 0.5κ ≤ 2κ+0.6κ) and
  // ST(s=1) (0.5κ ≥ κ−0.6κ; 1.5κ ≤ κ+0.6κ) simultaneously.
  const double kappa = 1.0;
  const double slack = 0.6;
  const std::vector<double> neighbors{1.5, -0.5};
  const TriggerView view{0.0, neighbors};
  EXPECT_TRUE(fast_trigger(view, kappa, slack));
  EXPECT_TRUE(slow_trigger(view, kappa, slack));
}

// Brute-force transcription of the weighted definitions.
bool weighted_fast_brute(double self, const std::vector<double>& neighbors,
                         const std::vector<double>& kappas,
                         const std::vector<double>& slacks,
                         int s_max = 2000) {
  for (int s = 1; s <= s_max; ++s) {
    bool cond1 = false;
    bool cond2 = true;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] - self >= 2.0 * s * kappas[i] - slacks[i])
        cond1 = true;
      if (self - neighbors[i] > 2.0 * s * kappas[i] + slacks[i])
        cond2 = false;
    }
    if (cond1 && cond2) return true;
  }
  return false;
}

bool weighted_slow_brute(double self, const std::vector<double>& neighbors,
                         const std::vector<double>& kappas,
                         const std::vector<double>& slacks,
                         int s_max = 2000) {
  for (int s = 1; s <= s_max; ++s) {
    bool cond1 = false;
    bool cond2 = true;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const double level = (2.0 * s - 1.0) * kappas[i];
      if (self - neighbors[i] >= level - slacks[i]) cond1 = true;
      if (neighbors[i] - self > level + slacks[i]) cond2 = false;
    }
    if (cond1 && cond2) return true;
  }
  return false;
}

TEST(WeightedTriggers, ReduceToUniformWhenWeightsEqual) {
  sim::Rng rng(404);
  for (int trial = 0; trial < 5000; ++trial) {
    const double kappa = rng.uniform(0.5, 4.0);
    const double slack = rng.uniform(0.0, 0.49) * kappa;
    const int n = 1 + static_cast<int>(rng.below(4));
    std::vector<double> neighbors;
    std::vector<double> kappas(n, kappa);
    std::vector<double> slacks(n, slack);
    for (int i = 0; i < n; ++i) {
      neighbors.push_back(rng.uniform(-30.0, 30.0));
    }
    const TriggerView uniform{0.0, neighbors};
    const WeightedTriggerView weighted{0.0, neighbors, kappas, slacks};
    EXPECT_EQ(weighted_fast_trigger(weighted),
              fast_trigger(uniform, kappa, slack))
        << "trial " << trial;
    EXPECT_EQ(weighted_slow_trigger(weighted),
              slow_trigger(uniform, kappa, slack))
        << "trial " << trial;
  }
}

TEST(WeightedTriggers, WeightOneBoundaryValuesAgreeWithPlain) {
  // Weight-1 equivalence at the EXACT level boundaries: neighbors placed
  // at est − self = 2sκ ± δ (fast levels) and (2s−1)κ ± δ (slow levels),
  // where the ≥ / ≤ comparisons of Definitions 4.3/4.4 flip. All values
  // are binary-exact (κ, δ, self dyadic rationals), so a closed-form
  // normalization that mishandles a boundary (>= vs >) diverges from the
  // plain triggers here and nowhere else.
  sim::Rng rng(606);
  const double kappas_pool[] = {3.0, 0.5, 1.25};
  const double selfs_pool[] = {0.0, 64.0, -17.5};
  for (int trial = 0; trial < 20000; ++trial) {
    const double kappa = kappas_pool[rng.below(3)];
    const double slack = 0.25 * kappa;  // dyadic ⇒ 2sκ ± δ exact
    const double self = selfs_pool[rng.below(3)];
    const int n = 1 + static_cast<int>(rng.below(4));
    std::vector<double> neighbors;
    for (int i = 0; i < n; ++i) {
      if (rng.below(4) == 0) {
        neighbors.push_back(self + rng.uniform(-30.0, 30.0));
        continue;
      }
      // Exact boundary neighbor: ±(level ± δ), levels 2sκ and (2s−1)κ.
      const int s = 1 + static_cast<int>(rng.below(4));
      const double level =
          rng.below(2) == 0 ? 2.0 * s * kappa : (2.0 * s - 1.0) * kappa;
      const double offset = rng.below(2) == 0 ? level - slack : level + slack;
      neighbors.push_back(self + (rng.below(2) == 0 ? offset : -offset));
    }
    const std::vector<double> unit_kappas(n, kappa);
    const std::vector<double> unit_slacks(n, slack);
    const TriggerView plain{self, neighbors};
    const WeightedTriggerView weighted{self, neighbors, unit_kappas,
                                       unit_slacks};
    EXPECT_EQ(weighted_fast_trigger(weighted),
              fast_trigger(plain, kappa, slack))
        << "fast trial " << trial;
    EXPECT_EQ(weighted_slow_trigger(weighted),
              slow_trigger(plain, kappa, slack))
        << "slow trial " << trial;
    // Both must also match the definitional brute force at the boundary.
    EXPECT_EQ(fast_trigger(plain, kappa, slack),
              fast_brute(self, neighbors, kappa, slack))
        << "fast-brute trial " << trial;
    EXPECT_EQ(slow_trigger(plain, kappa, slack),
              slow_brute(self, neighbors, kappa, slack))
        << "slow-brute trial " << trial;
  }
}

TEST(WeightedTriggers, ClosedFormMatchesBruteForceProperty) {
  sim::Rng rng(505);
  for (int trial = 0; trial < 10000; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(4));
    std::vector<double> neighbors;
    std::vector<double> kappas;
    std::vector<double> slacks;
    for (int i = 0; i < n; ++i) {
      neighbors.push_back(rng.uniform(-30.0, 30.0));
      kappas.push_back(rng.uniform(0.5, 5.0));
      slacks.push_back(rng.uniform(0.0, 0.49) * kappas.back());
    }
    const WeightedTriggerView view{0.0, neighbors, kappas, slacks};
    EXPECT_EQ(weighted_fast_trigger(view),
              weighted_fast_brute(0.0, neighbors, kappas, slacks))
        << "trial " << trial;
    EXPECT_EQ(weighted_slow_trigger(view),
              weighted_slow_brute(0.0, neighbors, kappas, slacks))
        << "trial " << trial;
  }
}

TEST(WeightedTriggers, HeavyEdgeToleratesProportionallyMoreSkew) {
  // A neighbor behind by 1.5κ on a weight-1 edge blocks FT (needs s with
  // behind ≤ 2sκ+δ... s≥1 works — use a clearer case): a neighbor ahead
  // by 3κ on a weight-1 edge fast-triggers at s=1, but the same gap on a
  // weight-3 edge (κ_e = 3κ) does not.
  const double kappa = 2.0;
  const double slack = 0.5;
  const std::vector<double> neighbors{6.0};  // 3κ ahead
  {
    const std::vector<double> kappas{kappa};
    const std::vector<double> slacks{slack};
    EXPECT_TRUE(weighted_fast_trigger({0.0, neighbors, kappas, slacks}));
  }
  {
    const std::vector<double> kappas{3.0 * kappa};
    const std::vector<double> slacks{slack};
    EXPECT_FALSE(weighted_fast_trigger({0.0, neighbors, kappas, slacks}));
  }
}

TEST(Triggers, SelfOffsetInvariance) {
  // Triggers depend only on differences; shifting all values together
  // changes nothing.
  sim::Rng rng(31);
  for (int trial = 0; trial < 1000; ++trial) {
    const double kappa = 2.0, slack = 1.0;
    const double shift = rng.uniform(-100.0, 100.0);
    std::vector<double> base, shifted;
    const int n = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < n; ++i) {
      const double v = rng.uniform(-20.0, 20.0);
      base.push_back(v);
      shifted.push_back(v + shift);
    }
    EXPECT_EQ(fast_trigger({0.0, base}, kappa, slack),
              fast_trigger({shift, shifted}, kappa, slack));
    EXPECT_EQ(slow_trigger({0.0, base}, kappa, slack),
              slow_trigger({shift, shifted}, kappa, slack));
  }
}

}  // namespace
}  // namespace ftgcs::core
