#include "support/alloc_guard.h"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__)
#include <execinfo.h>
#include <unistd.h>
#endif

namespace ftgcs::support {
namespace {

// ftgcs-lint: allow(no-mutable-global) the allocation meter itself: one
// relaxed atomic bumped by the operator-new hook below, read by guards.
std::atomic<std::uint64_t> g_allocations{0};

// ftgcs-lint: allow(no-mutable-global) live-guard depth for the
// FTGCS_ALLOC_TRACE debugging aid; relaxed atomic, diagnostics only.
std::atomic<int> g_live_guards{0};

bool trace_enabled() {
  static const bool enabled = std::getenv("FTGCS_ALLOC_TRACE") != nullptr;
  return enabled;
}

/// FTGCS_ALLOC_TRACE=1: print the offending stack straight to stderr.
/// backtrace_symbols_fd writes without allocating (unlike
/// backtrace_symbols), so tracing does not recurse into the hook.
void maybe_trace_allocation() {
#if defined(__GLIBC__)
  if (g_live_guards.load(std::memory_order_relaxed) > 0 && trace_enabled()) {
    void* frames[32];
    const int depth = backtrace(frames, 32);
    static const char header[] = "---- alloc under ScopedAllocGuard ----\n";
    (void)!write(2, header, sizeof(header) - 1);
    backtrace_symbols_fd(frames, depth, 2);
  }
#endif
}

}  // namespace

// Not in the anonymous namespace: the operator-new definitions at global
// scope below name these with full qualification.
namespace detail {

void* counted_alloc(std::size_t size) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  maybe_trace_allocation();
  // malloc(0) may return nullptr legitimately; operator new must not.
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  maybe_trace_allocation();
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, padded != 0 ? padded : align);
}

}  // namespace detail

std::uint64_t allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

ScopedAllocGuard::ScopedAllocGuard() noexcept : start_(allocation_count()) {
  g_live_guards.fetch_add(1, std::memory_order_relaxed);
}

ScopedAllocGuard::~ScopedAllocGuard() {
  g_live_guards.fetch_sub(1, std::memory_order_relaxed);
}

std::uint64_t ScopedAllocGuard::allocations() const noexcept {
  return allocation_count() - start_;
}

}  // namespace ftgcs::support

// ---------------------------------------------------------------------------
// The hook: the full replaceable global allocation-function set, forwarding
// to malloc/free with a counter bump. Linked only into binaries that
// reference ftgcs::support declarations above (static-archive pull-in).
// ---------------------------------------------------------------------------

namespace {

void* checked(void* p) {
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  return checked(ftgcs::support::detail::counted_alloc(size));
}
void* operator new[](std::size_t size) {
  return checked(ftgcs::support::detail::counted_alloc(size));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ftgcs::support::detail::counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ftgcs::support::detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return checked(ftgcs::support::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align)));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return checked(ftgcs::support::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align)));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return ftgcs::support::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return ftgcs::support::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
