#include "clocks/logical_clock.h"

#include "support/assert.h"

namespace ftgcs::clocks {

LogicalClock::LogicalClock(double phi, double mu, double hardware_rate,
                           sim::Time t0, double l0)
    : phi_(phi), mu_(mu), hrate_(hardware_rate), t0_(t0), l0_(l0) {
  FTGCS_EXPECTS(phi >= 0.0 && phi < 1.0);
  FTGCS_EXPECTS(mu >= 0.0);
  FTGCS_EXPECTS(hardware_rate > 0.0);
  rate_ = (1.0 + phi_ * delta_) * (1.0 + mu_ * gamma_) * hrate_;
}

double LogicalClock::read(sim::Time now) const {
  FTGCS_EXPECTS(now >= t0_);
  return l0_ + rate_ * (now - t0_);
}

void LogicalClock::advance(sim::Time now) {
  FTGCS_EXPECTS(now >= t0_);
  l0_ = read(now);
  t0_ = now;
}

void LogicalClock::recompute_rate(sim::Time now) {
  rate_ = (1.0 + phi_ * delta_) * (1.0 + mu_ * gamma_) * hrate_;
  if (observer_) observer_(now);
}

void LogicalClock::set_delta(sim::Time now, double delta) {
  FTGCS_EXPECTS(delta >= 0.0);
  if (delta == delta_) return;
  advance(now);
  delta_ = delta;
  recompute_rate(now);
  publish();
}

void LogicalClock::set_gamma(sim::Time now, int gamma) {
  FTGCS_EXPECTS(gamma == 0 || gamma == 1);
  if (gamma == gamma_) return;
  advance(now);
  gamma_ = gamma;
  recompute_rate(now);
  publish();
}

void LogicalClock::set_hardware_rate(sim::Time now, double hrate) {
  FTGCS_EXPECTS(hrate > 0.0);
  if (hrate == hrate_) return;
  advance(now);
  hrate_ = hrate;
  recompute_rate(now);
  publish();
}

void LogicalClock::jump(sim::Time now, double value) {
  advance(now);
  l0_ = value;
  publish();
  if (observer_) observer_(now);
}

sim::Time LogicalClock::when_reaches(double target, sim::Time now) const {
  const double current = read(now);
  if (target <= current) return now;  // already reached (or in the past)
  return now + (target - current) / rate_;
}

}  // namespace ftgcs::clocks
