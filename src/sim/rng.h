// Deterministic random number generation.
//
// Every stochastic component (channel delays, drift models, fault placement,
// Byzantine strategies) owns its own stream, derived from a master seed via
// SplitMix64, so experiments are reproducible and components are
// independently perturbable (changing one stream does not shift another).
#pragma once

#include <cstdint>

#include "support/assert.h"

namespace ftgcs::sim {

/// SplitMix64: used to seed and to derive child streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Rng {
 public:
  /// Seeds the four state words from a SplitMix64 sequence (the
  /// initialization recommended by the xoshiro authors).
  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi]. Requires lo <= hi.
  double uniform(double lo, double hi) noexcept {
    FTGCS_EXPECTS(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    FTGCS_EXPECTS(n > 0);
    // Lemire-style rejection-free is overkill here; modulo bias is
    // negligible for the ranges we use (n << 2^64), but reject anyway to
    // keep the generator unbiased for property tests.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Bernoulli trial.
  bool chance(double p) noexcept { return next_double() < p; }

  /// Derives an independent child stream; `salt` distinguishes children.
  Rng fork(std::uint64_t salt) noexcept {
    SplitMix64 sm(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL));
    return Rng(sm.next());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace ftgcs::sim
