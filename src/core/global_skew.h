// Global-skew control (Appendix C, Lemmas C.1/C.2, Theorem C.3).
//
// Each node maintains a conservative estimate M_v of the maximum correct
// logical clock L^max:
//
//  * M_v(0) = 0 and M_v increases at rate h_v/(1+ρ) ≤ 1, so local growth
//    can never overtake L^max (whose rate is ≥ 1);
//  * whenever M_v reaches a multiple ℓ·(d−U), v broadcasts a level-ℓ pulse
//    (distinguishable from the ClusterSync pulses: PulseKind::kMaxLevel);
//  * when v has registered level-ℓ pulses from f+1 distinct members of one
//    adjacent cluster, it sets M_v ← max(M_v, (ℓ+1)·(d−U)) and sends out
//    the pulses it now newly covers — a fault-tolerant flooding that keeps
//    M_v within O(δ·D) of L^max (Lemma C.2).
//
// The catch-up rule (Theorem C.3) — go fast when L_v ≤ M_v − c·δ and no
// trigger fires — lives in InterclusterController; this class only
// maintains M_v.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/quorum_window.h"
#include "sim/simulator.h"

namespace ftgcs::core {

class MaxEstimator final : public sim::EventSink {
 public:
  struct Config {
    double d = 0.0;    ///< max delay; level spacing is d − U
    double U = 0.0;    ///< delay uncertainty; requires U < d
    double rho = 0.0;  ///< drift bound (M grows at h/(1+ρ))
    int f = 0;         ///< per-cluster fault budget (quorum size f+1)
  };

  MaxEstimator(sim::Simulator& simulator, const Config& cfg,
               double initial_hardware_rate);

  /// Begins the level-pulse schedule. Requires on_emit to be set.
  void start();

  /// M_v(now).
  double read(sim::Time now) const;

  /// Forwards the node's hardware-rate change (M rate is h/(1+ρ)).
  void set_hardware_rate(sim::Time now, double rate);

  /// Handles a received level pulse from member `member_index` of
  /// `cluster`. Own loopback pulses must be filtered by the caller
  /// (`from_self`): a node's own pulse carries no new information.
  void on_level_pulse(int cluster, int member_index, bool from_self,
                      int level, sim::Time now);

  /// True if a level pulse carries no news (level below the flooding
  /// floor). Callers may use this to skip work before routing; the same
  /// filter is applied inside on_level_pulse.
  bool is_stale_level(int level) const { return level < next_level_ - 1; }

  /// Folds the node's own logical clock value into M_v: L_v is always a
  /// lower bound on L^max, and the flooding argument of Lemma C.2 relies
  /// on M_w(t) ≥ L_w(t). Called by the owner at round starts.
  void observe_own_clock(double logical, sim::Time now);

  /// Emission hook: the owner broadcasts a kMaxLevel pulse with `level`.
  std::function<void(int level)> on_emit;

  /// Crash-stop: cancels the pending emission timer and pins the estimator
  /// silent — no further emissions are ever scheduled (rate changes
  /// included). read() stays valid.
  void halt();

  /// Binds a write-through mirror of the staleness floor (the value
  /// is_stale_level compares against: next-level − 1) and publishes it
  /// immediately. The columnar dispatch layer uses it to classify — and
  /// drop — stale level pulses without touching this object.
  void bind_level_floor(std::int32_t* floor) {
    floor_mirror_ = floor;
    publish_floor();
  }

  /// Adopts the node's quorum windows from the system's columnar table
  /// (see core/quorum_window.h): `windows[0..count)` is a flat span, one
  /// pre-labelled window per cluster that can physically reach this node.
  /// Must be bound before any level pulse is processed. Without a table
  /// (standalone estimators in unit tests) the private fallback vector is
  /// used — same records, same insert, bit-identical counts.
  void bind_quorum(QuorumWindow* windows, int count) {
    FTGCS_EXPECTS(windows != nullptr && count >= 0);
    FTGCS_EXPECTS(heard_.empty());  // bind before traffic
    quorum_ = windows;
    quorum_count_ = count;
  }

  std::uint64_t jumps() const { return jumps_; }
  int highest_level_sent() const { return next_level_ - 1; }

  /// EventSink: the pending level-emission timer (kTimer).
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;

 private:
  void advance(sim::Time now);
  void schedule_next_emission(sim::Time now);
  void emit_through(double value);
  void publish_floor() {
    if (floor_mirror_ != nullptr) *floor_mirror_ = next_level_ - 1;
  }

  sim::Simulator& sim_;
  Config cfg_;
  sim::SinkId self_ = sim::kInvalidSink;
  double spacing_;  ///< d − U

  sim::Time t0_ = 0.0;
  double m0_ = 0.0;
  double rate_;

  int next_level_ = 1;  ///< next level to emit
  std::int32_t* floor_mirror_ = nullptr;  ///< staleness floor write-through
  sim::EventId pending_emit_{};
  bool halted_ = false;

  /// Distinct member indices heard per (cluster, level): one QuorumWindow
  /// per sending cluster (linear scan — degrees are small). The record
  /// layout and the insert primitive live in core/quorum_window.h, shared
  /// with NodeTable: inside a system the windows are a span of the table's
  /// flat columnar bank (quorum_ / quorum_count_, pre-labelled with every
  /// cluster that can physically reach the node); standalone estimators
  /// fall back to the private heard_ vector (lazily grown, as before).
  /// A window for a cluster outside the adopted span — reachable only via
  /// a forged sender id — falls back to heard_ as well.
  QuorumWindow& heard_window(int cluster);

  QuorumWindow* quorum_ = nullptr;  ///< adopted span (see bind_quorum)
  int quorum_count_ = 0;
  std::vector<QuorumWindow> heard_;  ///< fallback: standalone / forged ids
  std::uint64_t jumps_ = 0;
  bool started_ = false;
};

}  // namespace ftgcs::core
