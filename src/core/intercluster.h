// InterclusterSync (Algorithm 2) mode policy.
//
// At the beginning of each ClusterSync round a node picks its mode γ_v for
// the whole round:
//
//   1. fast trigger FT satisfied            → γ = 1
//   2. slow trigger ST satisfied            → γ = 0
//   3. global-skew catch-up (Theorem C.3):
//      L_v ≤ M_v − c·δ                      → γ = 1
//   4. otherwise                            → γ = 0  (default slow;
//      required by Lemmas C.1/C.2)
//
// Rule 3 is optional (the global-skew module can be disabled for
// experiments that study the gradient layer in isolation).
#pragma once

#include <cstdint>
#include <span>

#include "core/triggers.h"

namespace ftgcs::core {

enum class ModeReason : std::uint8_t {
  kFastTrigger,
  kSlowTrigger,
  kMaxCatchUp,
  kDefaultSlow,
};

struct ModeDecision {
  int gamma = 0;
  ModeReason reason = ModeReason::kDefaultSlow;
};

class InterclusterController {
 public:
  InterclusterController(double kappa, double slack, double c_global,
                         bool use_global_module);

  /// Decides γ_v from the node's own logical clock value, its estimates of
  /// adjacent cluster clocks, and (if enabled) its max-estimate M_v.
  ModeDecision decide(double self, std::span<const double> estimates,
                      double max_estimate) const;

  /// Weighted variant (paper footnote 1): per-edge κ_e and δ_e, parallel
  /// to `estimates`. The catch-up rule keeps using the base δ.
  ModeDecision decide_weighted(double self,
                               std::span<const double> estimates,
                               std::span<const double> kappas,
                               std::span<const double> slacks,
                               double max_estimate) const;

  double kappa() const { return kappa_; }
  double slack() const { return slack_; }

 private:
  double kappa_;
  double slack_;
  double c_global_;
  bool use_global_module_;
};

}  // namespace ftgcs::core
