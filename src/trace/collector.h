// Capture-side glue between the per-shard delivery taps and one canonical
// trace file.
//
// Each shard's Network gets its own TraceSink (shard_sink(s)) appending
// fired deliveries to a private buffer — no locks, no cross-thread
// traffic; a shard buffer is touched only by its own worker thread while
// the sharded driver is parked at the phase barriers. At every quiesced
// probe boundary (all shards advanced to a common time t, workers parked —
// which is exactly the state after FtGcsSystem::run_until(t) or
// par::ShardedFtGcsSystem::run_until(t) returns) the driver calls
// commit(): the pending buffers are merged under the canonical record key
// and streamed to the writer. Memory between commits is bounded by one
// probe interval's traffic, and the resulting byte stream is identical for
// every shard count and queue backend (see format.h for why the canonical
// sort makes the merge partition-invariant).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/format.h"
#include "trace/sink.h"
#include "trace/writer.h"

namespace ftgcs::trace {

class TraceCollector {
 public:
  /// Opens the trace file at `path` (throws std::runtime_error on failure).
  explicit TraceCollector(const std::string& path);
  ~TraceCollector();  // out-of-line: ShardBuffer is incomplete here

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The capture tap for `shard` (creating buffers up to that index). Must
  /// be called before the shard's worker starts firing events; the returned
  /// sink is owned by the collector and valid for its lifetime.
  TraceSink* shard_sink(int shard);

  /// Merges everything captured since the last commit into the canonical
  /// stream. Caller contract: every shard is quiesced at a common time
  /// (no worker inside run_until) — the phase barriers of the sharded
  /// driver publish the buffer writes.
  void commit();

  /// commit() + end marker + trailer. Idempotent.
  void finish();

  std::uint64_t records() const { return writer_.records(); }
  std::uint64_t bytes_written() const { return writer_.bytes_written(); }

  /// Byte half of a replay cursor: the file offset one past the last
  /// committed record (exact even while the frame is buffered).
  std::uint64_t cursor_offset() const { return writer_.next_record_offset(); }

 private:
  class ShardBuffer;

  TraceWriter writer_;
  std::vector<std::unique_ptr<ShardBuffer>> shards_;
  std::vector<Record> merge_scratch_;
  bool finished_ = false;
};

}  // namespace ftgcs::trace
