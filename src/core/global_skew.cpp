#include "core/global_skew.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/assert.h"

namespace ftgcs::core {

MaxEstimator::MaxEstimator(sim::Simulator& simulator, const Config& cfg,
                           double initial_hardware_rate)
    : sim_(simulator),
      cfg_(cfg),
      self_(simulator.register_sink(this)),
      spacing_(cfg.d - cfg.U),
      rate_(initial_hardware_rate / (1.0 + cfg.rho)) {
  FTGCS_EXPECTS(cfg.d > 0.0);
  FTGCS_EXPECTS(cfg.U >= 0.0 && cfg.U < cfg.d);  // spacing must be positive
  FTGCS_EXPECTS(cfg.rho >= 0.0);
  FTGCS_EXPECTS(cfg.f >= 0);
}

void MaxEstimator::start() {
  FTGCS_EXPECTS(on_emit != nullptr);
  FTGCS_EXPECTS(!started_);
  started_ = true;
  schedule_next_emission(sim_.now());
}

double MaxEstimator::read(sim::Time now) const {
  FTGCS_EXPECTS(now >= t0_);
  return m0_ + rate_ * (now - t0_);
}

void MaxEstimator::advance(sim::Time now) {
  m0_ = read(now);
  t0_ = now;
}

void MaxEstimator::set_hardware_rate(sim::Time now, double rate) {
  FTGCS_EXPECTS(rate > 0.0);
  advance(now);
  rate_ = rate / (1.0 + cfg_.rho);
  if (started_) schedule_next_emission(now);
}

void MaxEstimator::halt() {
  halted_ = true;
  sim_.cancel(pending_emit_);
  pending_emit_ = sim::EventId{};
}

void MaxEstimator::schedule_next_emission(sim::Time now) {
  if (halted_) return;
  const double target = next_level_ * spacing_;
  const double current = read(now);
  const sim::Time fire =
      target <= current ? now : now + (target - current) / rate_;
  if (pending_emit_ && sim_.reschedule(pending_emit_, fire)) return;
  pending_emit_ = sim_.post_at(fire, sim::EventKind::kTimer, self_, {});
}

void MaxEstimator::on_event(sim::EventKind kind, const sim::EventPayload&,
                            sim::Time now) {
  FTGCS_ASSERT(kind == sim::EventKind::kTimer);
  pending_emit_ = sim::EventId{};
  emit_through(read(now));
  schedule_next_emission(now);
}

void MaxEstimator::emit_through(double value) {
  while (next_level_ * spacing_ <= value) {
    on_emit(next_level_);
    ++next_level_;
  }
  publish_floor();
}

void MaxEstimator::observe_own_clock(double logical, sim::Time now) {
  advance(now);
  if (logical <= m0_) return;
  m0_ = logical;
  if (started_) {
    emit_through(m0_);
    schedule_next_emission(now);
  }
}

QuorumWindow& MaxEstimator::heard_window(int cluster) {
  // Adopted span first: pre-labelled with every cluster that can
  // physically reach this node, contiguous in the table's flat bank.
  for (int i = 0; i < quorum_count_; ++i) {
    if (quorum_[i].cluster == cluster) return quorum_[i];
  }
  // Fallback — standalone estimators (no table) and forged sender ids
  // mapping to clusters no physical neighbor belongs to.
  for (auto& window : heard_) {
    if (window.cluster == cluster) return window;
  }
  heard_.push_back(QuorumWindow{});
  heard_.back().cluster = cluster;
  return heard_.back();
}

void MaxEstimator::on_level_pulse(int cluster, int member_index,
                                  bool from_self, int level, sim::Time now) {
  // Stale, no news, or unreachable for a correct sender (levels start at
  // 1; level < 1 can only be forged and can never complete an honest
  // quorum, so it is dropped rather than tracked).
  if (from_self || level < 1 || level < next_level_ - 1) return;
  FTGCS_EXPECTS(member_index >= 0);
  const int floor = next_level_ > 1 ? next_level_ - 1 : 1;
  const int heard =
      quorum_insert(heard_window(cluster), level, member_index, floor);
  if (heard < cfg_.f + 1) return;

  // f+1 distinct members of one cluster reached level ℓ: at least one is
  // correct, and its pulse was in transit for ≥ d−U, so
  // L^max ≥ (ℓ+1)(d−U) already holds — safe to jump.
  const double candidate = (level + 1) * spacing_;
  advance(now);
  if (candidate <= m0_) return;
  m0_ = candidate;
  ++jumps_;
  if (started_) {
    emit_through(m0_);
    schedule_next_emission(now);
  }
  // No explicit prune needed: the jump advanced next_level_, so the
  // staleness floor rose and heard_mask compacts each window lazily.
}

}  // namespace ftgcs::core
