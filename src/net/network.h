// Message dispatch over a fixed topology.
//
// Correct nodes broadcast: one send delivers an independent copy to every
// neighbor (and to the sender itself — the loopback used by Lynch–Welch
// style algorithms to timestamp their own pulse), each copy delayed by the
// channel's DelayModel within [d − U, d].
//
// Byzantine nodes are NOT required to broadcast (paper §2, "Faults"): they
// may unicast different pulses to different neighbors at arbitrary times,
// and may choose the delay within the legal interval (the physical channel
// still bounds transit time; a Byzantine node controls *when* it sends,
// which composes with delay choice to arbitrary arrival times — we expose
// arrival-time control directly for convenience of attack strategies).
//
// Delivery rides the typed event engine: the network registers one
// EventSink with the simulator, every in-flight message is one EventKind::
// kPulse event whose POD payload encodes (sender, kind, level, value, dest),
// and a broadcast is batched — all per-edge delays pre-sampled into one
// reused buffer, then the delivery group is scheduled back-to-back. No
// allocation per message, O(1) cancellation semantics inherited from the
// engine, and the per-stream RNG draw order is identical to sampling one
// edge at a time (each directed edge owns its stream).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/channel.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ftgcs::trace {
class TraceSink;
}

namespace ftgcs::net {

/// Message kinds. The paper's pulses are content-less; kinds let one
/// physical network carry the cluster-sync pulses, the global-skew module's
/// level pulses, and the timestamped shares used by the plain-GCS baseline.
enum class PulseKind : std::uint8_t {
  kClusterPulse,  ///< Algorithm 1 round pulse (content-less)
  kMaxLevel,      ///< Appendix C M_v threshold pulse; `level` is the payload
  kShare,         ///< baseline: logical-clock timestamp in `value`
  kPropose,       ///< baseline (Srikanth–Toueg): PROPOSE(round = `level`)
};

struct Pulse {
  int sender = -1;
  PulseKind kind = PulseKind::kClusterPulse;
  int level = 0;       ///< kMaxLevel payload
  double value = 0.0;  ///< kShare payload
};

/// Typed receive interface of one node. Protocol node classes implement
/// this directly; the network dispatches deliveries through a stable
/// per-node pointer — no per-registration closure.
class PulseSink {
 public:
  virtual ~PulseSink() = default;
  virtual void on_pulse(const Pulse& pulse, sim::Time now) = 0;
};

/// Flat fast-path receiver for the dominant pulse traffic, implemented by
/// the system layer's columnar node table. The network forwards a drained
/// run of pure-receive pulse events in one call — replacing one virtual
/// on_pulse per message; the table consumes the encoded payloads directly
/// (kPulse schema: a = sender, c = dest; kClusterPulse receives, stale
/// kMaxLevel drops). The receiver must treat every event as a pure receive
/// (no scheduling, no sends): that is what makes the batch drain
/// order-safe (see sim::Simulator::set_batch_channel).
class ClusterPulseTable {
 public:
  virtual ~ClusterPulseTable() = default;
  virtual void on_pulse_run(const sim::BatchedEvent* events,
                            std::size_t n) = 0;
};

/// Receiver of deliveries that leave the local shard of a sharded run.
/// The network samples the channel delay exactly as it would for a local
/// delivery (same per-directed-edge RNG stream, same draw order — the
/// draws are partition-invariant) and then hands the *arrival time* plus
/// the encoded kPulse payload to the router instead of its own simulator.
/// The router (par::ShardedFtGcsSystem) appends it to the source→dest
/// shard mailbox; the destination shard replays it at the safe-window
/// barrier via sim::Simulator::post_fire_only_at.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;
  /// `from` is the physical sender (routing/ordering key — Byzantine
  /// senders may forge payload.a, but not the edge they send on),
  /// `at` the absolute arrival time, `payload` the encoded kPulse event
  /// (payload.c = destination node).
  virtual void remote_deliver(int from, sim::Time at,
                              const sim::EventPayload& payload) = 0;
};

class Network final : public sim::EventSink {
 public:
  /// Legacy closure handler; adapted onto PulseSink (cold path, used by
  /// tests and the simpler baselines).
  using Handler = std::function<void(const Pulse&, sim::Time)>;

  /// `adjacency[v]` lists v's neighbors (no self-loops). The network adds
  /// loopback delivery on broadcast. One RNG stream per directed edge is
  /// forked from `rng`.
  Network(sim::Simulator& simulator, std::vector<std::vector<int>> adjacency,
          std::unique_ptr<DelayModel> delays, sim::Rng rng);

  /// Borrowed-adjacency overload: shares an immutable adjacency owned by
  /// the caller instead of copying it — one topology can feed every shard
  /// of a sharded run (and the single-run path) with zero duplication.
  /// `adjacency` must stay valid, unchanged, for the network's lifetime
  /// (broadcast delivery groups additionally borrow the neighbor lists
  /// until the last delivery fires; an outliving topology satisfies both).
  Network(sim::Simulator& simulator,
          const std::vector<std::vector<int>>* adjacency,
          std::unique_ptr<DelayModel> delays, sim::Rng rng);

  int num_nodes() const { return static_cast<int>(adj_->size()); }

  /// Installs the receive sink for `node`. Must be set before any message
  /// can be delivered to it. The sink must outlive the network.
  void register_handler(int node, PulseSink* sink);

  /// Legacy overload: wraps `handler` in an owned adapter sink.
  void register_handler(int node, Handler handler);

  /// Installs a sink that discards deliveries (crashed/faulty-silent ids).
  void register_null_handler(int node);

  /// Installs the columnar fast path: kClusterPulse deliveries whose
  /// destination has `fast[dest] != 0` are decoded in batch and handed to
  /// `table` instead of the per-node sink. `fast` is owned by the caller
  /// (the system layer flips a node's flag off when it crashes) and must
  /// outlive the network, as must `table`.
  void set_cluster_dispatch(ClusterPulseTable* table,
                            const std::uint8_t* fast);

  /// This network's typed-event sink id (for Simulator::set_batch_channel).
  sim::SinkId sink_id() const { return self_; }

  /// Sharded mode: deliveries whose destination has `remote[dest] != 0`
  /// are diverted to `router` (with their sampled arrival time) instead of
  /// being scheduled locally. Delay sampling is unchanged either way, so
  /// per-edge RNG draw order is identical to an unsharded run. Both
  /// pointers are owned by the caller and must outlive the network.
  void set_shard_router(ShardRouter* router, const std::uint8_t* remote);

  /// Observability tap: mirrors every FIRED delivery (single and batched)
  /// to `sink` before dispatch. nullptr disables; with no sink the whole
  /// feature costs one predictable branch per delivery (batches pay it
  /// once per run). The sink is owned by the caller and must outlive the
  /// network. Deliveries fire exactly once on the destination's owner
  /// shard even in sharded runs, which is what makes the captured stream
  /// partition-invariant (see trace/sink.h).
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

  /// Correct-node broadcast: delivers to all neighbors and to self. The
  /// delivery group is pre-sampled as one batch.
  void broadcast(int from, const Pulse& pulse);

  /// Point-to-point send with channel-sampled delay. `to` must be a
  /// neighbor of `from` (or `from` itself).
  void unicast(int from, int to, const Pulse& pulse);

  /// Byzantine-only: point-to-point send with caller-chosen delay. The
  /// delay must still respect the physical channel: [d − U, d].
  void unicast_with_delay(int from, int to, const Pulse& pulse,
                          sim::Duration delay);

  const std::vector<int>& neighbors(int node) const;
  bool are_neighbors(int a, int b) const;

  const DelayModel& delay_model() const { return *delays_; }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }

  /// EventSink: one kPulse event per in-flight message.
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;

  /// EventSink batch hook: a drained run of pure-receive pulse events —
  /// kClusterPulse deliveries to fast destinations (decoded and forwarded
  /// to the cluster-pulse table in one call) interleaved with stale
  /// kMaxLevel deliveries (dropped; only the delivered count moves).
  void on_event_batch(sim::EventKind kind, const sim::BatchedEvent* events,
                      std::size_t n) override;

 private:
  /// Bounds-checks and schedules one delivery of `payload` re-aimed at
  /// `to` (shared by a whole broadcast group — encode once, aim N times).
  /// `from` is the physical sender, used only for cut-edge routing.
  void post_delivery(int from, sim::EventPayload& payload, int to,
                     sim::Duration delay);
  void deliver(int from, int to, const Pulse& pulse, sim::Duration delay);
  sim::Rng& edge_rng(int from, int to);
  void init_streams(sim::Rng rng);

  sim::Duration sample_delay(int from, int to, sim::Rng& rng) const {
    // Devirtualized fast path for the default uniform channel: same draw,
    // same stream, no indirect call per edge.
    if (uniform_channel_) {
      return rng.uniform(delays_->min_delay(), delays_->max_delay());
    }
    return delays_->sample(from, to, rng);
  }

  sim::Simulator& sim_;
  sim::SinkId self_ = sim::kInvalidSink;
  std::vector<std::vector<int>> adjacency_storage_;  ///< owned-adjacency mode
  const std::vector<std::vector<int>>* adj_ = nullptr;  ///< always valid
  std::unique_ptr<DelayModel> delays_;
  bool uniform_channel_ = false;
  std::vector<PulseSink*> sinks_;
  std::vector<std::unique_ptr<PulseSink>> owned_sinks_;  // legacy adapters
  ClusterPulseTable* dispatch_ = nullptr;   ///< columnar fast path (optional)
  const std::uint8_t* dispatch_fast_ = nullptr;  ///< per-dest fast flags
  ShardRouter* router_ = nullptr;           ///< cut-edge diversion (optional)
  const std::uint8_t* remote_ = nullptr;    ///< per-dest off-shard flags
  trace::TraceSink* trace_ = nullptr;       ///< delivery tap (optional)
  // One stream per directed edge, keyed densely: edge_streams_[from] maps
  // position-in-adjacency-list -> Rng; loopback stream is separate.
  std::vector<std::vector<sim::Rng>> edge_streams_;
  std::vector<sim::Rng> loopback_streams_;
  /// Broadcast scratch: all of one fan-out's delays sampled here before the
  /// queue sees the group (loopback at [0], neighbor j at [j + 1]).
  std::vector<sim::Duration> group_delays_;
  /// Sharded runs: 1 for senders with at least one cut (remote) neighbor —
  /// those keep the per-delivery divert loop; everyone else broadcasts
  /// through the coalesced group path. Empty until set_shard_router.
  std::vector<std::uint8_t> boundary_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace ftgcs::net
