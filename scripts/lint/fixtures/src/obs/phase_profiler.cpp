// The sanctioned clock site: this path (obs/phase_profiler.cpp) is the
// wall-clock plane's one exempted file, so the steady_clock reads below
// carry NO annotations — the self-test fails on unexpected findings,
// which is what proves the carve-out is exactly this wide and no wider
// (the sibling sampler.cpp fixture shows the rest of obs/ stays banned).
#include <chrono>
#include <cstdint>

namespace fixture {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace fixture
