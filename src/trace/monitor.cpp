#include "trace/monitor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "support/assert.h"

namespace ftgcs::trace {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

InvariantMonitor::InvariantMonitor(exp::TopologyGraph graph,
                                   MonitorBounds bounds)
    : graph_(std::move(graph)), bounds_(bounds) {}

void InvariantMonitor::check(const char* invariant, double value,
                             double bound, const MonitorCursor& cursor) {
  if (bound <= 0.0 || value <= bound) return;
  ++stats_.violations;
  if (!stats_.has_violation) {
    stats_.has_violation = true;
    stats_.first = Violation{invariant, value, bound, cursor};
  }
}

void InvariantMonitor::observe(const core::SystemColumns& columns,
                               const MonitorCursor& cursor) {
  const int n = columns.num_nodes();
  FTGCS_EXPECTS(n == graph_.num_nodes());
  ++stats_.probes;

  // Pass 1 — per-cluster and global extremes over correct (non-crashed)
  // nodes. columns.correct is 0 for Byzantine ids AND for crash-stopped
  // nodes, so crashed clocks never enter an aggregate.
  const auto clusters = static_cast<std::size_t>(graph_.num_clusters);
  cluster_lo_.assign(clusters, kInf);
  cluster_hi_.assign(clusters, -kInf);
  double global_lo = kInf;
  double global_hi = -kInf;
  for (int id = 0; id < n; ++id) {
    const auto i = static_cast<std::size_t>(id);
    if (!columns.correct[i]) continue;
    const double logical = columns.logical[i];
    const auto c = static_cast<std::size_t>(graph_.cluster_of[i]);
    cluster_lo_[c] = std::min(cluster_lo_[c], logical);
    cluster_hi_[c] = std::max(cluster_hi_[c], logical);
    global_lo = std::min(global_lo, logical);
    global_hi = std::max(global_hi, logical);
  }
  const double global_skew =
      global_hi >= global_lo ? global_hi - global_lo : 0.0;
  double intra = 0.0;
  for (std::size_t c = 0; c < clusters; ++c) {
    if (cluster_hi_[c] >= cluster_lo_[c]) {
      intra = std::max(intra, cluster_hi_[c] - cluster_lo_[c]);
    }
  }

  // Pass 2 — node-local skew edge by edge over the augmented adjacency
  // (each undirected edge visited once via v < w). Deliberately NOT the
  // cluster-extreme shortcut measure_skews uses; equality of the two is a
  // tested property of the clique + bipartite structure.
  double local = 0.0;
  for (int v = 0; v < n; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (!columns.correct[vi]) continue;
    const double lv = columns.logical[vi];
    for (int w : graph_.adjacency[vi]) {
      if (w <= v) continue;
      const auto wi = static_cast<std::size_t>(w);
      if (!columns.correct[wi]) continue;
      local = std::max(local, std::abs(lv - columns.logical[wi]));
    }
  }

  stats_.max_local_skew = std::max(stats_.max_local_skew, local);
  stats_.max_global_skew = std::max(stats_.max_global_skew, global_skew);
  stats_.max_intra_cluster = std::max(stats_.max_intra_cluster, intra);

  check("local_skew", local, bounds_.local_skew, cursor);
  check("intra_cluster", intra, bounds_.intra_cluster, cursor);
  check("global_skew", global_skew, bounds_.global_skew, cursor);
}

void InvariantMonitor::observe_m_lag(double max_lag,
                                     const MonitorCursor& cursor) {
  stats_.max_m_lag = std::max(stats_.max_m_lag, max_lag);
  check("m_lag", max_lag, bounds_.m_lag, cursor);
}

double InvariantMonitor::local_margin() const {
  return bounds_.local_skew > 0.0 ? bounds_.local_skew - stats_.max_local_skew
                                  : kInf;
}
double InvariantMonitor::global_margin() const {
  return bounds_.global_skew > 0.0
             ? bounds_.global_skew - stats_.max_global_skew
             : kInf;
}
double InvariantMonitor::intra_margin() const {
  return bounds_.intra_cluster > 0.0
             ? bounds_.intra_cluster - stats_.max_intra_cluster
             : kInf;
}
double InvariantMonitor::m_lag_margin() const {
  return bounds_.m_lag > 0.0 ? bounds_.m_lag - stats_.max_m_lag : kInf;
}

}  // namespace ftgcs::trace
