// The paper's motivation, end to end:
//
//   1. plain GCS on a ring — fault-free: small local skew;
//   2. plain GCS on a ring + ONE Byzantine node: local skew between
//      correct neighbors blows up ("utterly fails", §1);
//   3. FT-GCS on the same ring with a full budget of f Byzantine nodes
//      per cluster: bounds hold.
#include <cstdio>

#include "byz/fault_plan.h"
#include "core/ftgcs_system.h"
#include "gcs/gcs_system.h"
#include "metrics/skew_tracker.h"
#include "net/graph.h"

namespace {

double run_plain_gcs(bool with_fault) {
  using namespace ftgcs;
  gcs::GcsSystem::Config config;
  config.params = gcs::GcsParams::derive(1e-3, 1.0, 0.1, 0.05, 1.0);
  config.seed = 7;
  if (with_fault) {
    config.pump_nodes = {4};
    config.pump_rate = 0.05;
  }
  gcs::GcsSystem system(net::Graph::ring(9), std::move(config));
  system.start();
  double worst = 0.0;
  for (int step = 1; step <= 400; ++step) {
    system.run_until(step * 2.0);
    worst = std::max(worst, system.local_skew());
  }
  return worst;
}

}  // namespace

int main() {
  using namespace ftgcs;

  std::printf("scenario: ring of 9, one Byzantine node advertising "
              "diverging clocks to its two sides\n\n");

  const double clean = run_plain_gcs(false);
  std::printf("plain GCS, fault-free       : max local skew = %8.4f\n",
              clean);
  const double attacked = run_plain_gcs(true);
  std::printf("plain GCS, 1 Byzantine node : max local skew = %8.4f   "
              "(%.1fx worse, still growing)\n",
              attacked, attacked / clean);

  // FT-GCS on the same ring: each vertex becomes a clique of 3f+1 = 4,
  // every cluster carries one Byzantine skew pump.
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  net::AugmentedTopology augmented(net::Graph::ring(9), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 7;
  config.fault_plan = byz::FaultPlan::uniform(
      augmented, params.f, byz::StrategyKind::kSkewPump, 2.0 * params.E, 7);
  core::FtGcsSystem system(net::Graph::ring(9), std::move(config));
  metrics::SkewProbe probe(system, params.T / 2.0, 0.0);
  probe.start();
  system.start();
  system.run_until(400.0 * 2.0);

  std::printf("FT-GCS, 9 Byzantine nodes   : max local skew = %8.4f   "
              "(bound kappa = %.4f, violations = %llu)\n",
              probe.overall_max().cluster_local, params.kappa,
              static_cast<unsigned long long>(system.total_violations()));

  std::printf("\nthe fault-tolerant construction holds the gradient bound "
              "under %d Byzantine nodes;\nplain GCS lost it to one.\n",
              9 * params.f);
  return 0;
}
