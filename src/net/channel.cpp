#include "net/channel.h"

#include "support/assert.h"

namespace ftgcs::net {

DelayModel::DelayModel(sim::Duration d, sim::Duration u) : d_(d), u_(u) {
  FTGCS_EXPECTS(d > 0.0);
  FTGCS_EXPECTS(u >= 0.0 && u <= d);
}

sim::Duration UniformDelay::sample(int /*from*/, int /*to*/,
                                   sim::Rng& rng) const {
  return rng.uniform(d_ - u_, d_);
}

FixedDelay::FixedDelay(sim::Duration d, sim::Duration u, double fraction)
    : DelayModel(d, u), fraction_(fraction) {
  FTGCS_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
}

sim::Duration FixedDelay::sample(int /*from*/, int /*to*/,
                                 sim::Rng& /*rng*/) const {
  return d_ - u_ * (1.0 - fraction_);
}

sim::Duration TwoPointDelay::sample(int /*from*/, int /*to*/,
                                    sim::Rng& rng) const {
  return rng.chance(0.5) ? d_ - u_ : d_;
}

sim::Duration DirectionalDelay::sample(int from, int to,
                                       sim::Rng& /*rng*/) const {
  return from < to ? d_ : d_ - u_;
}

ClassedDelay::ClassedDelay(sim::Duration d, sim::Duration u,
                           int cluster_size)
    : DelayModel(d, u), cluster_size_(cluster_size) {
  FTGCS_EXPECTS(cluster_size >= 1);
}

sim::Duration ClassedDelay::sample(int from, int to, sim::Rng& rng) const {
  const bool same_cluster = from / cluster_size_ == to / cluster_size_;
  return same_cluster ? rng.uniform(d_ - u_, d_ - u_ / 2.0)
                      : rng.uniform(d_ - u_ / 2.0, d_);
}

}  // namespace ftgcs::net
