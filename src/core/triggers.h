// Fast/slow conditions and triggers (Definitions 4.1–4.4).
//
// Conditions (FC/SC) are defined on the true cluster clocks and are used by
// the analysis (and by our ground-truth metrics); triggers (FT/ST) are what
// nodes can actually evaluate, on estimates, with slack δ:
//
//   FT: ∃s∈ℕ:  max_A (L̃_A − L_v) ≥ 2sκ − δ   and
//              max_B (L_v − L̃_B) ≤ 2sκ + δ
//   ST: ∃s∈ℕ:  max_A (L_v − L̃_A) ≥ (2s−1)κ − δ   and
//              max_B (L̃_B − L_v) ≤ (2s−1)κ + δ
//
// The existential over s ∈ {1, 2, ...} reduces to an interval check on s;
// we implement the closed form (and test it against a brute-force loop).
//
// Mutual exclusion (Lemma 4.5). The paper states FT/ST exclusivity for all
// δ < 2κ; property testing this implementation found a counterexample at
// δ ≥ κ/2 (e.g. δ = 0.6κ with one neighbor 1.5κ ahead and another 0.5κ
// behind satisfies both FT(s=1) and ST(s=1)). The derivation shows the
// sharp sufficient condition is δ < κ/2 — which the paper's own parameter
// choice δ = κ/3 (Lemma 4.8) satisfies, so the construction is unaffected.
// See tests/test_triggers.cpp (MutualExclusion*).
#pragma once

#include <span>

namespace ftgcs::core {

/// Inputs to one trigger evaluation: own value and one estimate per
/// adjacent cluster (order irrelevant; only max gaps matter).
struct TriggerView {
  double self = 0.0;
  std::span<const double> neighbors;
};

bool fast_trigger(const TriggerView& view, double kappa, double slack);
bool slow_trigger(const TriggerView& view, double kappa, double slack);

/// Weighted variant (paper footnote 1 / App. A: "the algorithm
/// generalizes to networks in which edges e = {v,w} have weight ε_e ...
/// by doing nothing more than choosing κ proportional to ε_e"): each
/// neighbor estimate comes with its own κ_e and slack δ_e. The level
/// conditions become, per neighbor A/B,
///   FT: ∃s∈ℕ:  est_A − self ≥ 2s·κ_A − δ_A  ∧  self − est_B ≤ 2s·κ_B + δ_B
///   ST: ∃s∈ℕ:  self − est_A ≥ (2s−1)κ_A − δ_A ∧ est_B − self ≤ (2s−1)κ_B + δ_B
/// and the existential reduces to an interval check after per-edge
/// normalization. `kappas`/`slacks` are parallel to view.neighbors.
struct WeightedTriggerView {
  double self = 0.0;
  std::span<const double> neighbors;
  std::span<const double> kappas;
  std::span<const double> slacks;
};

bool weighted_fast_trigger(const WeightedTriggerView& view);
bool weighted_slow_trigger(const WeightedTriggerView& view);

/// Ground-truth conditions: triggers with zero slack on true cluster
/// clocks (Definitions 4.1 / 4.2).
inline bool fast_condition(const TriggerView& view, double kappa) {
  return fast_trigger(view, kappa, 0.0);
}
inline bool slow_condition(const TriggerView& view, double kappa) {
  return slow_trigger(view, kappa, 0.0);
}

}  // namespace ftgcs::core
