#include "net/augmented.h"

#include <utility>

#include "support/assert.h"

namespace ftgcs::net {

AugmentedTopology::AugmentedTopology(Graph g, int k)
    : cluster_graph_(std::move(g)), k_(k) {
  FTGCS_EXPECTS(k >= 1);
  const int clusters = cluster_graph_.num_vertices();
  adj_.resize(static_cast<std::size_t>(clusters) * k_);
  members_.resize(clusters);

  for (int c = 0; c < clusters; ++c) {
    members_[c].reserve(k_);
    for (int i = 0; i < k_; ++i) members_[c].push_back(node(c, i));
  }

  // Cluster edges: full clique inside each cluster.
  for (int c = 0; c < clusters; ++c) {
    for (int i = 0; i < k_; ++i) {
      for (int j = 0; j < k_; ++j) {
        if (i == j) continue;
        adj_[node(c, i)].push_back(node(c, j));
      }
    }
    num_edges_ += static_cast<std::size_t>(k_) * (k_ - 1) / 2;
  }

  // Intercluster edges: complete bipartite between adjacent clusters.
  for (int b = 0; b < clusters; ++b) {
    for (int c : cluster_graph_.neighbors(b)) {
      for (int i = 0; i < k_; ++i) {
        for (int j = 0; j < k_; ++j) {
          adj_[node(b, i)].push_back(node(c, j));
        }
      }
      if (b < c) num_edges_ += static_cast<std::size_t>(k_) * k_;
    }
  }
}

const std::vector<int>& AugmentedTopology::members(int cluster) const {
  FTGCS_EXPECTS(cluster >= 0 && cluster < num_clusters());
  return members_[cluster];
}

}  // namespace ftgcs::net
