// Trace format pins: round-trip fidelity, exact replay offsets, a
// byte-exact golden file, partition/engine invariance of captured runs,
// and first-divergence localization under single-bit corruption.
//
// The golden constants pin the on-disk format itself (magic, frame
// layout, varint/zigzag/XOR-delta encoding, 64 KiB frame threshold).
// Any intentional format change must bump the magic AND these constants.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/exp.h"
#include "trace/diff.h"
#include "trace/format.h"
#include "trace/reader.h"
#include "trace/writer.h"

namespace ftgcs {
namespace {

using exp::AxisValue;
using exp::ScenarioSpec;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Deterministic synthetic stream exercising every record kind, varint
/// widths from 1 byte up, and non-monotone value payloads. All arithmetic
/// is exact in IEEE-754, so the bytes are platform-independent.
std::vector<trace::Record> golden_records(int n) {
  std::vector<trace::Record> records;
  records.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    trace::Record r;
    r.at = i * (1.0 / 3.0);
    r.sender = (i * 131) % 3000;
    r.dest = (i * 17) % 3000;
    r.kind = static_cast<std::uint8_t>(i % 4);
    r.level = trace::kind_has_level(r.kind) ? (i % 97) : 0;
    r.value = trace::kind_has_value(r.kind) ? i * 1.25 - 3.0 : 0.0;
    records.push_back(r);
  }
  return records;
}

void write_trace(const std::string& path,
                 const std::vector<trace::Record>& records,
                 std::vector<std::uint64_t>* predicted_offsets = nullptr) {
  trace::TraceWriter writer(path);
  for (const trace::Record& r : records) {
    if (predicted_offsets != nullptr) {
      predicted_offsets->push_back(writer.next_record_offset());
    }
    writer.append(r);
  }
  writer.finish();
}

TEST(TraceFormat, RoundTripAllKinds) {
  const std::string path = temp_path("roundtrip.ftr");
  const std::vector<trace::Record> records = golden_records(200);
  write_trace(path, records);

  trace::TraceReader reader(path);
  trace::Record decoded;
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(reader.next(decoded)) << "record " << i;
    EXPECT_EQ(decoded.seq, i);
    EXPECT_TRUE(trace::record_equal(decoded, records[i])) << "record " << i;
    EXPECT_EQ(decoded.at, records[i].at);
    EXPECT_EQ(decoded.level, records[i].level);
    EXPECT_EQ(decoded.value, records[i].value);
  }
  EXPECT_FALSE(reader.next(decoded));  // validates the trailer
  EXPECT_EQ(reader.records_read(), records.size());
}

TEST(TraceFormat, MultiFrameReplayOffsetsAreExact) {
  // ~10 bytes/record × 20000 pushes well past the 64 KiB frame threshold,
  // so several frame boundaries land mid-stream.
  const std::string path = temp_path("frames.ftr");
  const std::vector<trace::Record> records = golden_records(20000);
  std::vector<std::uint64_t> predicted;
  write_trace(path, records, &predicted);

  trace::TraceReader reader(path);
  trace::Record decoded;
  std::size_t i = 0;
  while (reader.next(decoded)) {
    ASSERT_LT(i, predicted.size());
    // The writer's cursor (taken while the frame was still buffered) must
    // equal the reader's decoded position — that is the replay contract.
    EXPECT_EQ(decoded.offset, predicted[i]) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, records.size());
}

TEST(TraceFormat, GoldenFilePin) {
  const std::string path = temp_path("golden.ftr");
  write_trace(path, golden_records(10000));
  const std::string bytes = read_file(path);
  EXPECT_EQ(bytes.size(), 140629u);
  EXPECT_EQ(fnv1a(bytes), 0x995424e37ba0394cull);

  trace::TraceReader reader(path);
  trace::Record record;
  while (reader.next(record)) {
  }
  EXPECT_EQ(reader.records_read(), 10000u);
}

TEST(TraceFormat, CapturedRunBytesIdenticalAcrossShardsAndEngines) {
  exp::register_builtin_scenarios();
  ScenarioSpec spec = *exp::Registry::instance().find("large_ring");
  spec.axes = {{"clusters", {AxisValue::of(64)}}};
  apply_axis(spec, "clusters", 64.0);

  const auto run_with = [&](int shards, sim::QueueBackend engine,
                            const std::string& path) {
    ScenarioSpec s = spec;
    s.shards = shards;
    s.engine = engine;
    s.trace_path = path;
    const exp::RunResult result = run_point(s, 1);
    EXPECT_TRUE(result.trace.enabled);
    EXPECT_GT(result.trace.records, 0.0);
    return read_file(path);
  };

  const std::string base =
      run_with(1, sim::QueueBackend::kLadder, temp_path("id_s1.ftr"));
  EXPECT_EQ(base,
            run_with(2, sim::QueueBackend::kLadder, temp_path("id_s2.ftr")));
  EXPECT_EQ(base,
            run_with(4, sim::QueueBackend::kLadder, temp_path("id_s4.ftr")));
  EXPECT_EQ(base,
            run_with(2, sim::QueueBackend::kHeap, temp_path("id_heap.ftr")));
}

// The time-partitioned drain pin: a monitored `large_torus` slice (the
// heaviest registered workload per round, the one the partitioned drain
// exists for) must stream byte-identical traces at --shards 1 and 2,
// and ftgcs_trace's differ must agree. The run_unordered counters prove
// the NEW path actually carried traffic — without that assertion this
// would silently degrade into re-pinning the old ordered drain.
TEST(TraceFormat, TorusMonitoredSliceIdenticalAcrossShardsViaPartitionedDrain) {
  exp::register_builtin_scenarios();
  ScenarioSpec spec = *exp::Registry::instance().find("large_torus");
  spec.axes = {{"clusters", {AxisValue::of(64)}}};
  apply_axis(spec, "clusters", 64.0);

  const auto run_with = [&](int shards, const std::string& path) {
    ScenarioSpec s = spec;
    s.shards = shards;
    s.engine = sim::QueueBackend::kLadder;
    s.trace_path = path;
    const exp::RunResult result = run_point(s, 1);
    EXPECT_TRUE(result.trace.enabled);
    EXPECT_GT(result.trace.records, 0.0);
    // Pure-receive pulses below the horizon went through the unordered
    // partitioned drain, not only the ordered batch runs.
    EXPECT_GT(result.queue.unordered_events, 0.0) << "shards=" << shards;
    return read_file(path);
  };

  const std::string path_s1 = temp_path("torus_s1.ftr");
  const std::string path_s2 = temp_path("torus_s2.ftr");
  const std::string base = run_with(1, path_s1);
  EXPECT_EQ(base, run_with(2, path_s2));

  const trace::TraceDiff diff = trace::diff_traces(path_s1, path_s2);
  EXPECT_TRUE(diff.identical) << diff.reason;
  EXPECT_GT(diff.records_compared, 0u);
}

// The bytes-per-event pin: broadcast fan-outs ride the ladder's 16 B
// narrow lane via coalesced group inserts, and the captured trace must
// stay byte-identical to the heap engine (which falls back to wide
// per-delivery scheduling) at both shard counts. The narrow/group
// counter assertions prove the NEW lane actually carried traffic —
// without them this would silently re-pin the wide path.
TEST(TraceFormat, TorusNarrowCoalescedLaneIdenticalAcrossEnginesAndShards) {
  exp::register_builtin_scenarios();
  ScenarioSpec spec = *exp::Registry::instance().find("large_torus");
  spec.axes = {{"clusters", {AxisValue::of(64)}}};
  apply_axis(spec, "clusters", 64.0);

  const auto run_with = [&](int shards, sim::QueueBackend engine,
                            bool expect_narrow, const std::string& path) {
    ScenarioSpec s = spec;
    s.shards = shards;
    s.engine = engine;
    s.trace_path = path;
    const exp::RunResult result = run_point(s, 1);
    EXPECT_TRUE(result.trace.enabled);
    EXPECT_GT(result.trace.records, 0.0);
    if (expect_narrow) {
      EXPECT_GT(result.queue.narrow_events, 0.0) << "shards=" << shards;
      EXPECT_GT(result.queue.group_inserts, 0.0) << "shards=" << shards;
    } else {
      // The heap fallback must not fabricate narrow entries.
      EXPECT_EQ(result.queue.narrow_events, 0.0) << "shards=" << shards;
    }
    return read_file(path);
  };

  const std::string path_ladder = temp_path("narrow_l1.ftr");
  const std::string path_heap = temp_path("narrow_h2.ftr");
  const std::string base =
      run_with(1, sim::QueueBackend::kLadder, true, path_ladder);
  EXPECT_EQ(base, run_with(2, sim::QueueBackend::kLadder, true,
                           temp_path("narrow_l2.ftr")));
  EXPECT_EQ(base,
            run_with(1, sim::QueueBackend::kHeap, false,
                     temp_path("narrow_h1.ftr")));
  EXPECT_EQ(base, run_with(2, sim::QueueBackend::kHeap, false, path_heap));

  const trace::TraceDiff diff = trace::diff_traces(path_ladder, path_heap);
  EXPECT_TRUE(diff.identical) << diff.reason;
  EXPECT_GT(diff.records_compared, 0u);
}

TEST(TraceFormat, DiffLocalizesSingleBitCorruption) {
  const std::string path_a = temp_path("diff_a.ftr");
  const std::string path_b = temp_path("diff_b.ftr");
  const std::vector<trace::Record> records = golden_records(500);
  std::vector<std::uint64_t> offsets;
  write_trace(path_a, records, &offsets);
  write_trace(path_b, records);

  ASSERT_TRUE(trace::diff_traces(path_a, path_b).identical);

  // Flip one bit in record 321's first byte (its kind tag). Every later
  // record garbles too (the XOR-delta time chain), but the report must
  // localize the FIRST divergence to exactly this record and offset.
  const std::uint64_t target = offsets[321];
  {
    std::fstream file(path_b,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(target));
    char byte = 0;
    file.get(byte);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(static_cast<std::streamoff>(target));
    file.put(byte);
  }

  const trace::TraceDiff diff = trace::diff_traces(path_a, path_b);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.seq, 321u);
  EXPECT_EQ(diff.records_compared, 321u);
  EXPECT_EQ(diff.offset_a, target);
  EXPECT_EQ(diff.offset_b, target);
  EXPECT_FALSE(diff.reason.empty());
}

TEST(TraceFormat, ReaderRejectsTruncationAndBadMagic) {
  const std::string path = temp_path("trunc.ftr");
  write_trace(path, golden_records(100));
  std::string bytes = read_file(path);

  // Drop the trailer + end marker: decoding must fail loudly, not EOF.
  const std::string cut = path + ".cut";
  {
    std::ofstream out(cut, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamoff>(bytes.size() - 16));
  }
  trace::TraceReader reader(cut);
  trace::Record record;
  EXPECT_THROW(
      {
        while (reader.next(record)) {
        }
      },
      std::runtime_error);

  const std::string garbage = path + ".magic";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "NOTATRACE";
  }
  EXPECT_THROW(trace::TraceReader bad(garbage), std::runtime_error);
}

}  // namespace
}  // namespace ftgcs
