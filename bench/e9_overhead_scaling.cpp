// E9 — Theorem 1.1's cost side: the construction multiplies nodes by
// k = 3f+1 = O(f) and edges by O(f²), and any f-tolerant scheme needs
// degree > 2f (so this is asymptotically optimal).
//
// Static counts from the augmentation plus measured message load per
// synchronization round.
#include "bench_util.h"

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  banner("E9", "augmentation overhead: nodes x O(f), edges x O(f^2)");

  const net::Graph base = net::Graph::line(5);
  const std::size_t base_edges = base.num_edges();
  std::printf("base graph: line of %d clusters, %zu edges\n\n",
              base.num_vertices(), base_edges);

  metrics::Table table({"f", "k=3f+1", "nodes", "node factor", "edges",
                        "edge factor", "edge/(f+1)^2", "max degree",
                        "msgs/round/node"});
  for (int f = 0; f <= 4; ++f) {
    const core::Params params = core::Params::practical(1e-4, 1.0, 0.01, f);
    net::AugmentedTopology topo(net::Graph::line(5), params.k);

    std::size_t max_degree = 0;
    for (const auto& neighbors : topo.adjacency()) {
      max_degree = std::max(max_degree, neighbors.size());
    }

    // Measured message volume over 10 rounds.
    core::FtGcsSystem::Config config;
    config.params = params;
    config.seed = 9;
    core::FtGcsSystem system(net::Graph::line(5), std::move(config));
    system.start();
    system.run_until(10.0 * params.T);
    const double msgs_per_round_per_node =
        static_cast<double>(system.network().messages_sent()) /
        (10.0 * topo.num_nodes());

    table.add_row(
        {metrics::Table::integer(f), metrics::Table::integer(params.k),
         metrics::Table::integer(topo.num_nodes()),
         metrics::Table::num(static_cast<double>(topo.num_nodes()) /
                                 base.num_vertices(),
                             3),
         metrics::Table::integer(static_cast<long long>(topo.num_edges())),
         metrics::Table::num(static_cast<double>(topo.num_edges()) /
                                 static_cast<double>(base_edges),
                             4),
         metrics::Table::num(static_cast<double>(topo.num_edges()) /
                                 (base_edges * (f + 1.0) * (f + 1.0)),
                             3),
         metrics::Table::integer(static_cast<long long>(max_degree)),
         metrics::Table::num(msgs_per_round_per_node, 3)});
  }
  table.print(std::cout);
  std::printf("\nshape check: node factor = 3f+1 (linear); edge factor "
              "grows quadratically\n(edge/(f+1)^2 roughly constant); degree "
              "> 2f as required for f-tolerance.\n");
  return 0;
}
