// Hot receive state of one ClusterSync engine (active or passive), laid
// out for the columnar pulse-dispatch path.
//
// Every pulse delivery needs exactly this much of an engine: am I
// listening, has this member already been heard, what does my logical
// clock read right now, and where do arrivals go. A ReceiveLane packs
// those words into one cache line; the engine owns one inline by default,
// and core::NodeTable relocates the lanes of all system nodes into one
// contiguous bank (with the arrival slots in a parallel flat array) so the
// dominant kClusterPulse traffic is handled entirely with array loads —
// no virtual dispatch, no engine-object walk.
//
// Arrival slots double as their own validity flags: an unheard member
// holds kUnsetArrival (a quiet NaN — logical arrival times are always
// finite), so a receive touches exactly one arrival word. The clock
// segment is a write-through mirror kept exact by LogicalClock (see
// clocks::ClockMirror): lane_receive evaluates l0 + rate·(now − t0),
// which is bit-for-bit the arithmetic of LogicalClock::read().
#pragma once

#include <cstdint>
#include <limits>

#include "clocks/logical_clock.h"
#include "sim/time_types.h"

namespace ftgcs::core {

/// Sentinel for "no pulse received": NaN, so `slot == slot` is the
/// is-heard test (one comparison, no second array).
inline constexpr double kUnsetArrival =
    std::numeric_limits<double>::quiet_NaN();

struct alignas(64) ReceiveLane {
  /// Clusters up to this size keep their arrival slots INSIDE the lane
  /// (the adjacent cache line), so a receive touches two adjacent lines
  /// instead of two scattered ones. k = 3f+1 ≤ 8 covers f ≤ 2 — every
  /// registered scenario; larger clusters use an external bank.
  static constexpr int kInlineArrivals = 8;

  clocks::ClockMirror clock;  ///< engine's logical clock (l0, t0, rate)
  double own_arrival = kUnsetArrival;  ///< L(t_vv) (Algorithm 1 line 10)
  double* arrivals = nullptr;   ///< k logical arrival slots (NaN = unheard)
  std::int32_t own_index = -1;  ///< member index of the own pulse; −1 passive
  std::uint8_t listening = 0;   ///< in phases 1–2 of the current round
  std::uint64_t dropped = 0;    ///< pulses outside the collection window
  std::uint64_t duplicates = 0; ///< repeat pulses from one member per round
  double inline_arrivals[kInlineArrivals];  ///< in-lane slots (k ≤ 8)
};
static_assert(sizeof(ReceiveLane) == 128);

/// The arrival value one receive would record: the lane's logical clock
/// read at the delivery instant — bit-for-bit LogicalClock::read().
inline double lane_arrival_value(const ReceiveLane& lane, sim::Time now) {
  return lane.clock.l0 + lane.clock.rate * (now - lane.clock.t0);
}

/// Commits one already-evaluated arrival. Split from lane_receive so the
/// vectorized dispatch path (NodeTable::on_pulse_run) can hoist the clock
/// evaluation into its own array sweep and still execute the exact same
/// commit.
///
/// ORDER INDEPENDENCE (the partitioned drain's proof obligation — see
/// Simulator::set_batch_channel): between two barrier events, `listening`,
/// `own_index`, and the clock mirror are constant (they mutate only in
/// slotted timer/closure processing, which breaks every run), so each
/// receive in a tranche commutes with the others:
///   * dropped counts receives with listening == 0 — order-free;
///   * the slot min-combines: the arrival value is monotone non-decreasing
///     in the event time (rate ≥ 0), so the minimum over any permutation
///     equals the value of the (time, seq)-first receive — exactly what
///     the previous first-write-wins rule recorded (equal-time receives
///     compute the identical double, so seq ties cannot differ);
///   * duplicates counts every receive after the slot is set: n − 1 of n
///     in any order;
///   * own_arrival mirrors the (post-combine) slot, so it lands on the
///     same value regardless of which receive committed last.
inline void lane_commit(ReceiveLane& lane, int member_index, double at) {
  if (!lane.listening) {
    ++lane.dropped;
    return;
  }
  double& slot = lane.arrivals[member_index];
  if (slot == slot) {  // already heard this member this round
    ++lane.duplicates;
    slot = at < slot ? at : slot;  // min-combine ≡ first in (time, seq)
  } else {
    slot = at;
  }
  if (member_index == lane.own_index) {
    lane.own_arrival = slot;
  }
}

/// One pulse receive — the body of ClusterSyncEngine::on_member_pulse,
/// operating on the lane alone so the columnar dispatch path and the
/// engine-object path share one definition (and stay bit-identical).
inline void lane_receive(ReceiveLane& lane, int member_index, sim::Time now) {
  lane_commit(lane, member_index, lane_arrival_value(lane, now));
}

}  // namespace ftgcs::core
