// Stabilization measurement: the time at which a sampled quantity enters
// a band and stays there for the rest of the horizon. Used for the
// dynamic-topology experiments (paper App. A: new edges stabilize to the
// gradient bound within O(S/µ) time).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "sim/time_types.h"

namespace ftgcs::metrics {

class StabilizationTracker {
 public:
  /// Tracks samples (t, value); stabilization = first sample time after
  /// which every later sample satisfies value <= threshold.
  explicit StabilizationTracker(double threshold) : threshold_(threshold) {}

  void add(sim::Time at, double value);

  /// First time from which the series stayed at or below the threshold
  /// through the last sample; nullopt if it never did (or no samples).
  std::optional<sim::Time> stabilized_at() const;

  /// Convenience: stabilized_at() − t0 (e.g. the edge-activation time).
  std::optional<sim::Duration> stabilization_delay(sim::Time t0) const;

  std::size_t samples() const { return series_.size(); }

 private:
  double threshold_;
  std::vector<std::pair<sim::Time, double>> series_;
};

}  // namespace ftgcs::metrics
