// Small statistics helpers used by probes and experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace ftgcs::metrics {

/// Streaming min/max/mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance (n−1)
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation); q in [0, 1].
double percentile(std::vector<double> values, double q);

}  // namespace ftgcs::metrics
