// Network-on-Chip scenario (one of the paper's motivating applications:
// "a decentralized system clock for a System-on-Chip or Network-on-Chip").
//
// A 4x4 grid of clock domains, each domain a cluster of 3f+1 = 4 tiles.
// Oscillators wander sinusoidally (temperature gradients); one tile per
// domain is held at the fault budget (clock-liar: its oscillator violates
// the drift spec). We report the per-edge skew profile the chip designer
// cares about.
#include <cstdio>
#include <iostream>
#include <vector>

#include "byz/fault_plan.h"
#include "clocks/drift_model.h"
#include "core/ftgcs_system.h"
#include "metrics/skew_tracker.h"
#include "metrics/table.h"
#include "net/graph.h"

int main() {
  using namespace ftgcs;

  const int width = 4;
  const int height = 4;
  const core::Params params =
      core::Params::practical(/*rho=*/5e-4, /*d=*/1.0, /*U=*/0.02, /*f=*/1);

  net::Graph grid = net::Graph::grid(width, height);
  net::AugmentedTopology augmented(grid, params.k);

  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 2026;
  config.drift_model = std::make_unique<clocks::SinusoidalDrift>(
      params.rho, /*period=*/80.0 * params.T, /*sample_every=*/params.T,
      config.seed);
  config.fault_plan = byz::FaultPlan::uniform(
      augmented, params.f, byz::StrategyKind::kClockLiar, 40.0, config.seed);

  core::FtGcsSystem system(net::Graph::grid(width, height),
                           std::move(config));
  metrics::SkewProbe probe(system, params.T / 2.0, 30.0 * params.T);
  probe.start();
  system.start();
  system.run_until(150.0 * params.T);

  std::printf("NoC: %dx%d domains, %d tiles/domain (f=%d liar tile each), "
              "sinusoidal oscillator wander\n\n",
              width, height, params.k, params.f);

  // Per-edge steady skew between adjacent domain clocks.
  metrics::Table table({"edge", "skew", "of kappa"});
  const auto& g = system.topology().cluster_graph();
  double worst = 0.0;
  for (int b = 0; b < g.num_vertices(); ++b) {
    for (int c : g.neighbors(b)) {
      if (c < b) continue;
      const double lb = *system.cluster_clock(b);
      const double lc = *system.cluster_clock(c);
      const double skew = lb > lc ? lb - lc : lc - lb;
      worst = std::max(worst, skew);
      char name[32];
      std::snprintf(name, sizeof name, "(%d,%d)-(%d,%d)", b % width,
                    b / width, c % width, c / width);
      table.add_row({name, metrics::Table::num(skew, 4),
                     metrics::Table::num(skew / params.kappa, 3)});
    }
  }
  table.print(std::cout);
  std::printf("\nworst domain-to-domain skew: %.4f (kappa = %.4f)\n", worst,
              params.kappa);
  std::printf("steady max intra-domain skew: %.4f (bound = %.4f)\n",
              probe.steady_max().intra_cluster,
              params.intra_cluster_skew_bound());
  std::printf("violations: %llu\n", static_cast<unsigned long long>(
                                        system.total_violations()));
  return 0;
}
