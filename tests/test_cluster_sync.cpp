// Algorithm 1 (ClusterSync): round structure (Lemma B.6), amortization
// (Lemma 3.1), rate envelope (Lemma B.4), convergence and skew bounds
// (Proposition B.14 / Corollary 3.2), and robustness bookkeeping.
#include "core/cluster_sync.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "harness.h"
#include "metrics/trace.h"

namespace ftgcs::core {
namespace {

using testing::ClusterHarness;

Params test_params(int f = 1) {
  return Params::practical(1e-3, 1.0, 0.01, f);
}

TEST(ClusterSync, RoundStartsAtExactLogicalBoundaries) {
  // Lemma B.6: L_v(t_v(r)) = (r−1)·T for every node and round.
  const Params params = test_params();
  ClusterHarness harness(params, {});
  std::map<int, std::vector<double>> starts;  // engine -> logical at start
  for (int i = 0; i < harness.k(); ++i) {
    auto& engine = harness.engine(i);
    engine.on_round_start = [&starts, &engine, &harness, i](int) {
      starts[i].push_back(engine.clock().read(harness.sim().now()));
    };
  }
  harness.start();
  harness.run_rounds(10.5);
  for (int i = 0; i < harness.k(); ++i) {
    ASSERT_GE(starts[i].size(), 10u);
    for (std::size_t r = 0; r < starts[i].size(); ++r) {
      EXPECT_NEAR(starts[i][r], static_cast<double>(r) * params.T, 1e-9);
    }
  }
}

TEST(ClusterSync, PulsesAtLogicalTau1) {
  const Params params = test_params();
  ClusterHarness harness(params, {});
  std::vector<double> pulse_logical;
  auto& engine = harness.engine(0);
  engine.on_pulse = [&](int round, sim::Time now) {
    pulse_logical.push_back(engine.clock().read(now) -
                            (round - 1) * params.T);
    // The harness's broadcast hook was replaced; re-broadcast manually.
    net::Pulse pulse;
    pulse.sender = 0;
    pulse.kind = net::PulseKind::kClusterPulse;
    harness.network().broadcast(0, pulse);
  };
  harness.start();
  harness.run_rounds(5.5);
  ASSERT_GE(pulse_logical.size(), 5u);
  for (double offset : pulse_logical) {
    EXPECT_NEAR(offset, params.tau1, 1e-9);
  }
}

TEST(ClusterSync, NominalRoundLengthIsTPlusDelta) {
  // Lemma 3.1: ∫ h_nom over round r equals T + ∆_v(r). With constant
  // hardware rate h and γ=0, ∫ h_nom = (1+ϕ)·h·(t_v(r+1) − t_v(r)).
  const Params params = test_params();
  ClusterHarness harness(params, {});
  const double h = 1.0005;
  for (int i = 0; i < harness.k(); ++i) {
    harness.engine(i).set_hardware_rate(0.0, h);
  }
  struct PerRound {
    double start = 0.0;
    double correction = 0.0;
    bool have_correction = false;
  };
  std::map<int, PerRound> rounds;
  auto& engine = harness.engine(1);
  engine.on_round_start = [&](int r) {
    rounds[r].start = harness.sim().now();
  };
  engine.on_correction = [&](int r, double delta_corr, bool) {
    rounds[r].correction = delta_corr;
    rounds[r].have_correction = true;
  };
  harness.start();
  harness.run_rounds(8.5);
  int checked = 0;
  for (const auto& [r, data] : rounds) {
    const auto next = rounds.find(r + 1);
    if (next == rounds.end() || !data.have_correction) continue;
    const double nominal =
        (1.0 + params.phi) * h * (next->second.start - data.start);
    EXPECT_NEAR(nominal, params.T + data.correction, 1e-7) << "round " << r;
    ++checked;
  }
  EXPECT_GE(checked, 6);
}

TEST(ClusterSync, DeltaVStaysInLemmaB4Range) {
  const Params params = test_params();
  ClusterHarness harness(params, {});
  harness.start();
  // Sample δ_v at random times across many rounds.
  double max_delta = 0.0;
  double min_delta = 10.0;
  for (int step = 1; step <= 200; ++step) {
    harness.run_rounds(0.1 * step);
    for (int i = 0; i < harness.k(); ++i) {
      const double delta = harness.engine(i).clock().delta();
      max_delta = std::max(max_delta, delta);
      min_delta = std::min(min_delta, delta);
    }
  }
  EXPECT_GE(min_delta, 0.0);
  EXPECT_LE(max_delta, 2.0 / (1.0 - params.phi));
}

TEST(ClusterSync, ConvergesWithinCorollary32Bound) {
  const Params params = test_params();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ClusterHarness::Options options;
    options.seed = seed;
    ClusterHarness harness(params, std::move(options));
    // Spread hardware rates across the envelope (worst-case constant).
    for (int i = 0; i < harness.k(); ++i) {
      harness.engine(i).set_hardware_rate(
          0.0, 1.0 + params.rho * i / (harness.k() - 1));
    }
    harness.start();
    double worst = 0.0;
    for (int step = 1; step <= 60; ++step) {
      harness.run_rounds(0.5 * step);
      worst = std::max(worst, harness.skew());
    }
    EXPECT_LE(worst, params.intra_cluster_skew_bound()) << "seed " << seed;
    for (int i = 0; i < harness.k(); ++i) {
      EXPECT_EQ(harness.engine(i).violations(), 0u);
    }
  }
}

TEST(ClusterSync, PulseDiametersStayBelowE) {
  // Proposition B.14: ‖p(r)‖ ≤ E for all rounds.
  const Params params = test_params();
  ClusterHarness harness(params, {});
  metrics::PulseDiameterTrace trace(params.k);
  for (int i = 0; i < harness.k(); ++i) {
    auto& engine = harness.engine(i);
    auto previous = engine.on_pulse;  // keep the broadcast hook
    engine.on_pulse = [&trace, previous](int round, sim::Time now) {
      trace.record_pulse(round, now);
      if (previous) previous(round, now);
    };
    engine.set_hardware_rate(0.0, 1.0 + params.rho * (i % 2));
  }
  harness.start();
  harness.run_rounds(40.0);
  const auto diameters = trace.complete_rounds();
  ASSERT_GE(diameters.size(), 30u);
  for (const auto& [round, diameter] : diameters) {
    EXPECT_LE(diameter, params.E) << "round " << round;
  }
}

TEST(ClusterSync, PulsesArriveWithinCollectionWindows) {
  // Regression guard for the eq. (10)-vs-eq. (4) window bug (see
  // core/params.h): every pulse of a correct execution must land inside
  // phases 1–2 of the receiver's current round — no drops — and the
  // algorithm must actually engage (non-zero corrections under drift).
  const Params params = test_params();
  ClusterHarness harness(params, {});
  double max_abs_correction = 0.0;
  for (int i = 0; i < harness.k(); ++i) {
    auto& engine = harness.engine(i);
    engine.on_correction = [&max_abs_correction](int, double delta_corr,
                                                 bool) {
      max_abs_correction =
          std::max(max_abs_correction, std::abs(delta_corr));
    };
    engine.set_hardware_rate(0.0,
                             1.0 + params.rho * i / (harness.k() - 1));
  }
  harness.start();
  harness.run_rounds(30.0);
  for (int i = 0; i < harness.k(); ++i) {
    EXPECT_EQ(harness.engine(i).dropped_pulses(), 0u) << "engine " << i;
    EXPECT_EQ(harness.engine(i).duplicate_pulses(), 0u) << "engine " << i;
    EXPECT_EQ(harness.engine(i).violations(), 0u) << "engine " << i;
  }
  // Drifting clocks force genuinely non-zero corrections: the Lynch–Welch
  // step is live, not vacuous.
  EXPECT_GT(max_abs_correction, 0.0);
}

TEST(ClusterSync, ToleratesSilentFaultyMembers) {
  // f members never pulse; the trimmed correction absorbs the clamped
  // placeholders and the live members stay within the bound.
  const Params params = test_params(1);  // k=4, f=1
  ClusterHarness::Options options;
  options.active = 3;  // one silent member
  ClusterHarness harness(params, std::move(options));
  harness.start();
  double worst = 0.0;
  for (int step = 1; step <= 40; ++step) {
    harness.run_rounds(step);
    worst = std::max(worst, harness.skew());
  }
  EXPECT_LE(worst, params.intra_cluster_skew_bound());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(harness.engine(i).violations(), 0u);
  }
}

TEST(ClusterSync, DuplicatePulsesFirstWinsAndCounted) {
  const Params params = test_params();
  ClusterHarness harness(params, {});
  harness.start();
  harness.run_rounds(0.05);  // mid phase 1 of round 1
  // Forge a duplicate pulse from node 1 to node 0 (as if Byzantine).
  auto& engine = harness.engine(0);
  const auto before = engine.duplicate_pulses();
  engine.on_member_pulse(1, harness.sim().now());
  engine.on_member_pulse(1, harness.sim().now());
  EXPECT_EQ(engine.duplicate_pulses(), before + 1);
}

TEST(ClusterSync, LatePulsesDroppedAndCounted) {
  const Params params = test_params();
  ClusterHarness harness(params, {});
  harness.start();
  // Step to phase 3 of round 1: listening is off.
  auto& engine = harness.engine(0);
  while (engine.round() <= 1 && engine.listening()) {
    ASSERT_TRUE(harness.sim().step());
  }
  ASSERT_EQ(engine.round(), 1);
  const auto before = engine.dropped_pulses();
  engine.on_member_pulse(2, harness.sim().now());
  EXPECT_EQ(engine.dropped_pulses(), before + 1);
}

TEST(ClusterSync, StartRoundOffsetsLogicalClock) {
  const Params params = test_params();
  sim::Simulator sim;
  ClusterSyncConfig cfg;
  cfg.tau1 = params.tau1;
  cfg.tau2 = params.tau2;
  cfg.tau3 = params.tau3;
  cfg.phi = params.phi;
  cfg.mu = params.mu;
  cfg.f = params.f;
  cfg.k = params.k;
  cfg.active = true;
  cfg.d = params.d;
  cfg.U = params.U;
  cfg.start_round = 4;
  ClusterSyncEngine engine(sim, cfg, 1.0, sim::Rng(3));
  EXPECT_NEAR(engine.clock().read(0.0), 3.0 * params.T, 1e-12);
  engine.start();
  EXPECT_EQ(engine.round(), 4);
}

TEST(ClusterSync, CorrectionClampViolationAccounting) {
  // Drive ∆ out of the proper-execution range by forging a wildly early
  // pulse set (only possible with > f colluders; here we forge directly).
  const Params params = test_params(0);  // f=0: no trimming at all, k=1
  sim::Simulator sim;
  ClusterSyncConfig cfg;
  cfg.tau1 = params.tau1;
  cfg.tau2 = params.tau2;
  cfg.tau3 = params.tau3;
  cfg.phi = params.phi;
  cfg.mu = params.mu;
  cfg.f = 0;
  cfg.k = 2;
  cfg.active = false;  // passive: simulated loopback, no broadcast needed
  cfg.d = params.d;
  cfg.U = params.U;
  ClusterSyncEngine engine(sim, cfg, 1.0, sim::Rng(3));
  bool violated = false;
  engine.on_correction = [&](int, double, bool v) { violated = violated || v; };
  engine.start();
  // Feed absurdly early pulses (deep in phase 1): the correction the
  // algorithm would compute exceeds ϕ·τ3 and must be clamped + counted.
  sim.run_until(0.01 * params.T);
  engine.on_member_pulse(0, sim.now());
  engine.on_member_pulse(1, sim.now());
  sim.run_until(1.5 * params.T);
  EXPECT_TRUE(violated);
  EXPECT_GE(engine.violations(), 1u);
  // δ_v still within the Lemma B.4 envelope thanks to the clamp.
  EXPECT_GE(engine.clock().delta(), 0.0);
  EXPECT_LE(engine.clock().delta(), 2.0 / (1.0 - params.phi));
}

}  // namespace
}  // namespace ftgcs::core
