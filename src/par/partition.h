// Spatial shard partitioning for the conservative-parallel backend.
//
// Shards are contiguous, balanced ranges of CLUSTER ids ("striped"): for
// the grid/torus generators cluster ids are row-major, so contiguous
// ranges are horizontal strips — spatial cuts with O(side) cut edges per
// boundary; for rings and lines they are arcs/segments. Clusters are
// never split across shards: the cluster clique (and with it all
// intra-cluster traffic, the Byzantine reference-round wiring and the
// quorum lanes) stays shard-local by construction, and only inter-cluster
// edges can cross the cut.
//
// The plan's lookahead is min_cut_delay = min over directed cut edges of
// that edge's minimum message delay (the paper's d − u > 0). That is the
// safe-window width: if every shard has processed all events strictly
// before barrier time B, then any message a shard sends inside the window
// [B, B + min_cut_delay) arrives at ≥ B + min_cut_delay — in a later
// window — so the shards cannot affect each other inside one window.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/topology_graph.h"

namespace ftgcs::par {

struct ShardPlan {
  int num_shards = 1;                    ///< effective count (≤ requested)
  std::vector<std::int32_t> cluster_owner;  ///< shard per cluster id
  std::vector<std::int32_t> node_owner;     ///< shard per node id (derived)
  std::size_t cut_edges = 0;  ///< directed node-level edges crossing shards
  double min_cut_delay = 0.0; ///< lookahead; 0 when nothing crosses
  /// Requested T could not be honored (T ≤ 1 after clamping to the
  /// cluster count, or a degenerate zero lookahead): the caller must run
  /// the ordinary single-simulator engine.
  bool degenerate() const { return num_shards <= 1; }
};

/// Stripes `graph` into (up to) `shards` shards. Clamps to the cluster
/// count; collapses to a single shard when the cut lookahead degenerates
/// (min edge delay ≤ 0 — an instantaneous channel admits no conservative
/// window).
ShardPlan make_shard_plan(const exp::TopologyGraph& graph, int shards);

}  // namespace ftgcs::par
