#include "metrics/skew_tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.h"

namespace ftgcs::metrics {

SkewSample measure_skews(const core::SystemSnapshot& snapshot,
                         const net::AugmentedTopology& topo) {
  SkewSample out;
  out.at = snapshot.at;

  const auto& nodes = snapshot.nodes;

  // Cluster clocks L_C = (L⁺ + L⁻)/2 over correct members, plus global
  // node-level extremes.
  const int clusters = topo.num_clusters();
  std::vector<double> cluster_lo(clusters,
                                 std::numeric_limits<double>::infinity());
  std::vector<double> cluster_hi(clusters,
                                 -std::numeric_limits<double>::infinity());
  double global_lo = std::numeric_limits<double>::infinity();
  double global_hi = -std::numeric_limits<double>::infinity();
  for (const auto& node : nodes) {
    if (!node.correct) continue;
    cluster_lo[node.cluster] = std::min(cluster_lo[node.cluster], node.logical);
    cluster_hi[node.cluster] = std::max(cluster_hi[node.cluster], node.logical);
    global_lo = std::min(global_lo, node.logical);
    global_hi = std::max(global_hi, node.logical);
  }
  out.node_global = global_hi >= global_lo ? global_hi - global_lo : 0.0;

  std::vector<double> cluster_clock(clusters);
  std::vector<bool> cluster_alive(clusters, false);
  double cg_lo = std::numeric_limits<double>::infinity();
  double cg_hi = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < clusters; ++c) {
    if (cluster_hi[c] >= cluster_lo[c]) {
      cluster_alive[c] = true;
      cluster_clock[c] = (cluster_lo[c] + cluster_hi[c]) / 2.0;
      cg_lo = std::min(cg_lo, cluster_clock[c]);
      cg_hi = std::max(cg_hi, cluster_clock[c]);
      out.intra_cluster =
          std::max(out.intra_cluster, cluster_hi[c] - cluster_lo[c]);
    }
  }
  out.cluster_global = cg_hi >= cg_lo ? cg_hi - cg_lo : 0.0;

  // Cluster-local skew over E.
  const net::Graph& g = topo.cluster_graph();
  for (int b = 0; b < clusters; ++b) {
    if (!cluster_alive[b]) continue;
    for (int c : g.neighbors(b)) {
      if (c < b || !cluster_alive[c]) continue;
      out.cluster_local = std::max(
          out.cluster_local, std::abs(cluster_clock[b] - cluster_clock[c]));
    }
  }

  // Node-local skew over augmented edges between correct nodes. Cluster
  // edges are covered by intra-cluster extremes; intercluster edges need
  // the pairwise extremes of adjacent clusters.
  out.node_local = out.intra_cluster;
  for (int b = 0; b < clusters; ++b) {
    if (!cluster_alive[b]) continue;
    for (int c : g.neighbors(b)) {
      if (c < b || !cluster_alive[c]) continue;
      const double spread =
          std::max(std::abs(cluster_hi[b] - cluster_lo[c]),
                   std::abs(cluster_hi[c] - cluster_lo[b]));
      out.node_local = std::max(out.node_local, spread);
    }
  }
  return out;
}

SkewProbe::SkewProbe(core::FtGcsSystem& system, sim::Duration interval,
                     sim::Time steady_after)
    : system_(system), interval_(interval), steady_after_(steady_after) {
  FTGCS_EXPECTS(interval > 0.0);
}

void SkewProbe::start() {
  system_.simulator().after(interval_, [this] { sample_once(); });
}

namespace {

void fold_max(SkewSample& into, const SkewSample& sample) {
  into.at = sample.at;
  into.node_local = std::max(into.node_local, sample.node_local);
  into.cluster_local = std::max(into.cluster_local, sample.cluster_local);
  into.intra_cluster = std::max(into.intra_cluster, sample.intra_cluster);
  into.node_global = std::max(into.node_global, sample.node_global);
  into.cluster_global = std::max(into.cluster_global, sample.cluster_global);
}

}  // namespace

void SkewProbe::sample_once() {
  const SkewSample sample =
      measure_skews(system_.snapshot(), system_.topology());
  samples_.push_back(sample);
  fold_max(overall_max_, sample);
  if (sample.at >= steady_after_) {
    fold_max(steady_max_, sample);
    ++steady_samples_;
  }
  system_.simulator().after(interval_, [this] { sample_once(); });
}

}  // namespace ftgcs::metrics
