// Round-level traces of the cluster algorithm: per-round pulse diameters
// ‖p(r)‖ (Definition B.7), corrections ∆_v(r), and violation counts.
// Experiments use these to reproduce the convergence claims (E2, E3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/time_types.h"

namespace ftgcs::metrics {

/// Collects the Newtonian pulse times of one cluster's correct members and
/// reports ‖p(r)‖ = max p(r) − min p(r) per round.
class PulseDiameterTrace {
 public:
  explicit PulseDiameterTrace(int expected_members)
      : expected_members_(expected_members) {}

  void record_pulse(int round, sim::Time at);

  /// ‖p(r)‖, available once at least two members pulsed in round r.
  std::optional<double> diameter(int round) const;

  /// Largest round with any recorded pulse (0 if none).
  int last_round() const;

  /// Diameters for rounds 1..last_round() with all members present;
  /// rounds with missing members are skipped.
  std::vector<std::pair<int, double>> complete_rounds() const;

 private:
  struct RoundAgg {
    sim::Time min = 0.0;
    sim::Time max = 0.0;
    int count = 0;
  };

  int expected_members_;
  std::map<int, RoundAgg> rounds_;
};

/// Per-round correction statistics across one cluster.
class CorrectionTrace {
 public:
  void record(int round, double delta_corr, bool violated);

  std::uint64_t violations() const { return violations_; }
  /// Maximum |∆| seen in round r (0 if none).
  double max_abs_correction(int round) const;
  double global_max_abs_correction() const { return global_max_; }

 private:
  std::map<int, double> max_abs_;
  std::uint64_t violations_ = 0;
  double global_max_ = 0.0;
};

}  // namespace ftgcs::metrics
