#include "byz/fault_plan.h"

#include <gtest/gtest.h>

#include <set>

namespace ftgcs::byz {
namespace {

net::AugmentedTopology topo() {
  return net::AugmentedTopology(net::Graph::line(5), 4);
}

TEST(FaultPlan, NoneIsEmpty) {
  EXPECT_TRUE(FaultPlan::none().empty());
  EXPECT_EQ(FaultPlan::none().max_faults_per_cluster(topo()), 0);
}

TEST(FaultPlan, UniformPlacesExactlyCountPerCluster) {
  const auto t = topo();
  const FaultPlan plan =
      FaultPlan::uniform(t, 1, StrategyKind::kSilent, 0.0, 42);
  EXPECT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan.max_faults_per_cluster(t), 1);
  std::set<int> clusters;
  for (const auto& spec : plan.specs()) {
    clusters.insert(t.cluster_of(spec.node));
  }
  EXPECT_EQ(clusters.size(), 5u);
}

TEST(FaultPlan, UniformIsDeterministicPerSeed) {
  const auto t = topo();
  const FaultPlan a = FaultPlan::uniform(t, 1, StrategyKind::kSilent, 0.0, 7);
  const FaultPlan b = FaultPlan::uniform(t, 1, StrategyKind::kSilent, 0.0, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.specs()[i].node, b.specs()[i].node);
  }
}

TEST(FaultPlan, InClusterPlacesOnlyThere) {
  const auto t = topo();
  const FaultPlan plan =
      FaultPlan::in_cluster(t, 2, 2, StrategyKind::kTwoFaced, 0.1, 3);
  EXPECT_EQ(plan.size(), 2u);
  for (const auto& spec : plan.specs()) {
    EXPECT_EQ(t.cluster_of(spec.node), 2);
    EXPECT_EQ(spec.kind, StrategyKind::kTwoFaced);
    EXPECT_DOUBLE_EQ(spec.param, 0.1);
  }
  EXPECT_EQ(plan.max_faults_per_cluster(t), 2);
}

TEST(FaultPlan, OverBudgetPlansRepresentable) {
  // f+1 faults in a cluster of k=3f+1 must be expressible (E4 needs it).
  const auto t = topo();
  const FaultPlan plan =
      FaultPlan::in_cluster(t, 0, 2, StrategyKind::kSilent, 0.0, 3);
  EXPECT_EQ(plan.max_faults_per_cluster(t), 2);  // f=1 budget exceeded
}

TEST(FaultPlan, IidRespectsProbabilityRoughly) {
  const auto t = topo();  // 20 nodes
  int total = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    total += static_cast<int>(
        FaultPlan::iid(t, 0.25, StrategyKind::kSilent, 0.0, seed).size());
  }
  // Expectation 20·0.25·200 = 1000; allow generous tolerance.
  EXPECT_GT(total, 800);
  EXPECT_LT(total, 1200);
}

TEST(FaultPlan, ContainsAndDuplicateRejection) {
  FaultPlan plan;
  plan.add({3, StrategyKind::kSilent, 0.0});
  EXPECT_TRUE(plan.contains(3));
  EXPECT_FALSE(plan.contains(4));
}

TEST(FaultPlan, StrategyNamesAreStable) {
  EXPECT_STREQ(strategy_name(StrategyKind::kSilent), "silent");
  EXPECT_STREQ(strategy_name(StrategyKind::kTwoFaced), "two-faced");
  EXPECT_STREQ(strategy_name(StrategyKind::kClockLiar), "clock-liar");
  EXPECT_STREQ(strategy_name(StrategyKind::kSkewPump), "skew-pump");
  EXPECT_STREQ(strategy_name(StrategyKind::kEquivocator), "equivocator");
  EXPECT_STREQ(strategy_name(StrategyKind::kRandomPulser), "random-pulser");
}

}  // namespace
}  // namespace ftgcs::byz
