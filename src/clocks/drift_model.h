// Hardware-drift models.
//
// The paper only assumes h_v(t) ∈ [1, 1+ρ], measurable; everything else is
// adversarial. A DriftModel decides each node's rate over time by
// scheduling rate-change events on the simulator and pushing new rates into
// a per-node callback (which forwards to HardwareClock/LogicalClock).
//
// Models:
//   ConstantDrift       — each node gets one fixed rate (random, or given).
//   RandomWalkDrift     — rate performs a bounded random walk; models
//                         temperature-dependent oscillator wander.
//   SinusoidalDrift     — smooth periodic wander (piecewise-constant
//                         sampled), phase-shifted per node.
//   SpatialSplitDrift   — adversarial: nodes in the first half of the
//                         cluster graph run at 1+ρ, the rest at 1;
//                         maximizes skew gradients across the network and
//                         optionally flips sides periodically.
//   ScheduledDrift      — explicit (time, node, rate) script for tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time_types.h"

namespace ftgcs::clocks {

/// Receives rate updates for one node.
using RateSink = std::function<void(sim::Time now, double rate)>;

class DriftModel {
 public:
  virtual ~DriftModel() = default;

  /// Installs the model: assigns initial rates (via sinks, called with
  /// now = sim.now()) and schedules any future changes. `sinks[i]` controls
  /// node i; the envelope is [1, 1+rho].
  virtual void install(sim::Simulator& simulator,
                       std::vector<RateSink> sinks) = 0;

  /// Number of scheduled drift events this model has fired so far.
  /// Rate draws are indexed per node, so a sharded run installs one
  /// identically-seeded copy of the model per shard; the copies fire the
  /// same tick schedule T times, and the sharded backend uses this count
  /// to report the event total the single-simulator engine would have
  /// fired. Models without scheduled changes return 0.
  virtual std::uint64_t ticks_fired() const { return 0; }
};

/// Every node keeps one rate forever. If `spread` is true, rates are spread
/// deterministically across the envelope (node 0 slowest ... last fastest);
/// otherwise sampled uniformly at random.
class ConstantDrift final : public DriftModel {
 public:
  ConstantDrift(double rho, std::uint64_t seed, bool spread = false)
      : rho_(rho), rng_(seed), spread_(spread) {}

  void install(sim::Simulator& simulator, std::vector<RateSink> sinks) override;

 private:
  double rho_;
  sim::Rng rng_;
  bool spread_;
};

/// Bounded random walk: every `step_interval` (Newtonian) each node's rate
/// moves by a uniform step in ±step_size, reflected into [1, 1+rho].
class RandomWalkDrift final : public DriftModel, public sim::EventSink {
 public:
  RandomWalkDrift(double rho, sim::Duration step_interval, double step_size,
                  std::uint64_t seed)
      : rho_(rho),
        interval_(step_interval),
        step_(step_size),
        rng_(seed) {}

  void install(sim::Simulator& simulator, std::vector<RateSink> sinks) override;
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;
  std::uint64_t ticks_fired() const override { return ticks_; }

 private:
  void tick(sim::Simulator& simulator);

  double rho_;
  sim::Duration interval_;
  double step_;
  sim::Rng rng_;
  sim::Simulator* sim_ = nullptr;
  sim::SinkId self_ = sim::kInvalidSink;
  std::vector<RateSink> sinks_;
  std::vector<double> rates_;
  std::uint64_t ticks_ = 0;
};

/// Piecewise-constant sampling of 1 + rho/2 + (rho/2)·sin(2π(t/period + φ_i))
/// with per-node random phase φ_i.
class SinusoidalDrift final : public DriftModel, public sim::EventSink {
 public:
  SinusoidalDrift(double rho, sim::Duration period, sim::Duration sample_every,
                  std::uint64_t seed)
      : rho_(rho), period_(period), sample_(sample_every), rng_(seed) {}

  void install(sim::Simulator& simulator, std::vector<RateSink> sinks) override;
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;
  std::uint64_t ticks_fired() const override { return ticks_; }

 private:
  void tick(sim::Simulator& simulator);

  double rho_;
  sim::Duration period_;
  sim::Duration sample_;
  sim::Rng rng_;
  sim::Simulator* sim_ = nullptr;
  sim::SinkId self_ = sim::kInvalidSink;
  std::vector<RateSink> sinks_;
  std::vector<double> phases_;
  std::uint64_t ticks_ = 0;
};

/// Adversarial spatial split: nodes whose group id (supplied by the caller;
/// typically the cluster index or line position) is below `boundary` run at
/// 1+rho, others at 1. If flip_every > 0, the two sides swap rates
/// periodically — the worst case for gradient algorithms, which must keep
/// re-absorbing the drift-induced skew.
class SpatialSplitDrift final : public DriftModel, public sim::EventSink {
 public:
  SpatialSplitDrift(double rho, std::vector<int> group_of_node, int boundary,
                    sim::Duration flip_every = 0.0)
      : rho_(rho),
        group_(std::move(group_of_node)),
        boundary_(boundary),
        flip_every_(flip_every) {}

  void install(sim::Simulator& simulator, std::vector<RateSink> sinks) override;
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;
  std::uint64_t ticks_fired() const override { return ticks_; }

 private:
  void apply(sim::Simulator& simulator, bool flipped);

  double rho_;
  std::vector<int> group_;
  int boundary_;
  sim::Duration flip_every_;
  sim::Simulator* sim_ = nullptr;
  sim::SinkId self_ = sim::kInvalidSink;
  std::vector<RateSink> sinks_;
  std::uint64_t ticks_ = 0;
};

/// Explicit script of rate changes, for unit tests.
class ScheduledDrift final : public DriftModel, public sim::EventSink {
 public:
  struct Change {
    sim::Time at;
    std::size_t node;
    double rate;
  };

  ScheduledDrift(std::vector<double> initial_rates, std::vector<Change> script)
      : initial_(std::move(initial_rates)), script_(std::move(script)) {}

  void install(sim::Simulator& simulator, std::vector<RateSink> sinks) override;
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;
  std::uint64_t ticks_fired() const override { return ticks_; }

 private:
  std::vector<double> initial_;
  std::vector<Change> script_;
  sim::SinkId self_ = sim::kInvalidSink;
  std::vector<RateSink> sinks_;
  std::uint64_t ticks_ = 0;
};

}  // namespace ftgcs::clocks
