// Augmented graph G = (V, E) from the paper (§2, "Network"):
// every cluster C ∈ C becomes a clique of k nodes; every cluster edge
// (B, C) ∈ E becomes a complete bipartite graph between the two cliques.
//
// Node ids are flat: node(c, i) = c*k + i for cluster c and member index i.
#pragma once

#include <vector>

#include "net/graph.h"

namespace ftgcs::net {

class AugmentedTopology {
 public:
  /// Builds G from cluster graph `g` with cluster size `k` (paper requires
  /// k >= 3f+1; enforced by core::Params, not here, so degenerate
  /// configurations remain testable).
  AugmentedTopology(Graph g, int k);

  int num_clusters() const { return cluster_graph_.num_vertices(); }
  int cluster_size() const { return k_; }
  int num_nodes() const { return num_clusters() * k_; }

  /// Undirected edge count of G (cluster cliques + bipartite bundles).
  std::size_t num_edges() const { return num_edges_; }

  int cluster_of(int node) const { return node / k_; }
  int index_in_cluster(int node) const { return node % k_; }
  int node(int cluster, int index) const { return cluster * k_ + index; }

  /// Node ids of the members of `cluster`.
  const std::vector<int>& members(int cluster) const;

  /// Clusters adjacent to `cluster` in G.
  const std::vector<int>& cluster_neighbors(int cluster) const {
    return cluster_graph_.neighbors(cluster);
  }

  /// Node-level adjacency of G (no self-loops; the network layer adds the
  /// loopback delivery for a node's own broadcast).
  const std::vector<std::vector<int>>& adjacency() const { return adj_; }

  const Graph& cluster_graph() const { return cluster_graph_; }

 private:
  Graph cluster_graph_;
  int k_;
  std::vector<std::vector<int>> adj_;
  std::vector<std::vector<int>> members_;
  std::size_t num_edges_ = 0;
};

}  // namespace ftgcs::net
