#include "exp/sinks.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "metrics/table.h"

namespace ftgcs::exp {

namespace {

bool integral(double v) {
  return std::floor(v) == v && std::fabs(v) < 1e15;
}

std::string format_metric(const std::string& name, double value) {
  if (name.rfind("in_", 0) == 0) return value >= 0.5 ? "yes" : "NO";
  if (integral(value)) {
    return metrics::Table::integer(static_cast<long long>(value));
  }
  return metrics::Table::num(value, 4);
}

std::string raw(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

bool per_seed_rows(const SweepResult& result) {
  return !result.axis_names.empty() && result.axis_names.back() == "seed";
}

/// Axis cells for one row: the recorded point labels (+ seed if present).
std::vector<std::string> axis_cells(const SweepResult& result,
                                    const RunResult& row) {
  std::vector<std::string> cells;
  for (const auto& [axis, label] : row.point) cells.push_back(label);
  if (per_seed_rows(result)) {
    cells.push_back(metrics::Table::integer(
        static_cast<long long>(row.seed)));
  }
  return cells;
}

bool has_timing(const SweepResult& result) {
  return result.timing.size() == result.rows.size() && !result.rows.empty();
}

}  // namespace

void TableSink::write(const SweepResult& result, std::ostream& os) const {
  std::vector<std::string> headers = result.axis_names;
  for (const auto& column : result.columns) headers.push_back(column);
  if (has_timing(result)) {
    headers.push_back("wall_ms");
    headers.push_back("events_per_sec");
  }
  metrics::Table table(std::move(headers));
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    const RunResult& row = result.rows[r];
    std::vector<std::string> cells = axis_cells(result, row);
    for (const auto& column : result.columns) {
      cells.push_back(row.has_metric(column)
                          ? format_metric(column, row.metric(column))
                          : "-");
    }
    if (has_timing(result)) {
      cells.push_back(metrics::Table::integer(
          static_cast<long long>(result.timing[r].wall_ms + 0.5)));
      cells.push_back(metrics::Table::integer(
          static_cast<long long>(result.timing[r].events_per_sec + 0.5)));
    }
    table.add_row(std::move(cells));
  }
  table.print(os);
}

void CsvSink::write(const SweepResult& result, std::ostream& os) const {
  if (result.rows.empty()) return;
  for (std::size_t i = 0; i < result.axis_names.size(); ++i) {
    if (i > 0) os << ',';
    os << result.axis_names[i];
  }
  for (const auto& [name, value] : result.rows.front().metrics) {
    os << ',' << name;
  }
  if (has_timing(result)) os << ",wall_ms,events_per_sec";
  os << '\n';
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    const RunResult& row = result.rows[r];
    const auto cells = axis_cells(result, row);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ',';
      os << cells[i];
    }
    for (const auto& [name, value] : row.metrics) {
      os << ',' << raw(value);
    }
    if (has_timing(result)) {
      os << ',' << raw(result.timing[r].wall_ms) << ','
         << raw(result.timing[r].events_per_sec);
    }
    os << '\n';
  }
}

void JsonLinesSink::write(const SweepResult& result, std::ostream& os) const {
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    const RunResult& row = result.rows[r];
    os << "{\"scenario\":\"" << result.scenario << "\",\"point\":{";
    bool first = true;
    for (const auto& [axis, label] : row.point) {
      if (!first) os << ',';
      first = false;
      os << '"' << axis << "\":\"" << label << '"';
    }
    os << '}';
    if (per_seed_rows(result)) os << ",\"seed\":" << row.seed;
    os << ",\"metrics\":{";
    first = true;
    for (const auto& [name, value] : row.metrics) {
      if (!first) os << ',';
      first = false;
      os << '"' << name << "\":" << raw(value);
    }
    os << '}';
    if (has_timing(result)) {
      os << ",\"wall_ms\":" << raw(result.timing[r].wall_ms)
         << ",\"events_per_sec\":" << raw(result.timing[r].events_per_sec);
    }
    os << "}\n";
  }
}

std::unique_ptr<ResultSink> make_sink(const std::string& name) {
  if (name == "table") return std::make_unique<TableSink>();
  if (name == "csv") return std::make_unique<CsvSink>();
  if (name == "jsonl") return std::make_unique<JsonLinesSink>();
  throw std::invalid_argument("unknown sink '" + name +
                              "' (expected table, csv or jsonl)");
}

}  // namespace ftgcs::exp
