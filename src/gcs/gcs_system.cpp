#include "gcs/gcs_system.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "support/assert.h"

namespace ftgcs::gcs {

GcsSystem::GcsSystem(net::Graph graph, Config config)
    : graph_(std::move(graph)),
      config_(std::move(config)),
      sim_(config_.engine) {
  self_ = sim_.register_sink(this);
  sim::Rng master(config_.seed);
  auto delays = config_.delay_model
                    ? std::move(config_.delay_model)
                    : std::make_unique<net::UniformDelay>(config_.params.d,
                                                          config_.params.U);
  network_ = std::make_unique<net::Network>(sim_, graph_.adjacency(),
                                            std::move(delays), master.fork(1));

  nodes_.resize(graph_.num_vertices());
  for (int id = 0; id < graph_.num_vertices(); ++id) {
    const bool faulty =
        std::find(config_.pump_nodes.begin(), config_.pump_nodes.end(), id) !=
        config_.pump_nodes.end();
    if (faulty) {
      network_->register_null_handler(id);
      continue;
    }
    nodes_[id] = std::make_unique<GcsNode>(sim_, *network_, config_.params,
                                           id, graph_.neighbors(id));
    network_->register_handler(id, nodes_[id].get());
  }

  drift_ = config_.drift_model
               ? std::move(config_.drift_model)
               : std::make_unique<clocks::ConstantDrift>(
                     config_.params.rho, config_.seed ^ 0x60d5ULL,
                     /*spread=*/true);
}

void GcsSystem::start() {
  std::vector<clocks::RateSink> sinks;
  sinks.reserve(nodes_.size());
  for (auto& node : nodes_) {
    if (node) {
      GcsNode* raw = node.get();
      sinks.push_back([raw](sim::Time now, double rate) {
        raw->set_hardware_rate(now, rate);
      });
    } else {
      sinks.push_back([](sim::Time, double) {});
    }
  }
  drift_->install(sim_, std::move(sinks));

  for (auto& node : nodes_) {
    if (node) node->start();
  }
  for (int pump : config_.pump_nodes) {
    pump_tick(pump);
  }
}

void GcsSystem::pump_tick(int node) {
  // The faulty node impersonates a correct node's share schedule but lies
  // directionally: lower-id neighbors see a clock that runs slow, higher-id
  // neighbors one that runs fast. The divergence grows linearly in time —
  // a real oscillator could do this with a sub-ρ rate offset, so no
  // correct neighbor can prove misbehaviour (paper §1).
  const sim::Time now = sim_.now();
  const double honest = now;  // nominal value: rate-1 clock
  const double offset = config_.pump_rate * now;
  for (int to : graph_.neighbors(node)) {
    net::Pulse pulse;
    pulse.sender = node;
    pulse.kind = net::PulseKind::kShare;
    pulse.value = to < node ? honest - offset : honest + offset;
    network_->unicast(node, to, pulse);
  }
  sim::EventPayload payload;
  payload.a = node;
  sim_.post_after(config_.params.broadcast_period, sim::EventKind::kTimer,
                  self_, payload);
}

void GcsSystem::on_event(sim::EventKind kind,
                         const sim::EventPayload& payload, sim::Time /*now*/) {
  FTGCS_ASSERT(kind == sim::EventKind::kTimer);
  pump_tick(payload.a);
}

double GcsSystem::node_logical(int id) const {
  FTGCS_EXPECTS(nodes_[id] != nullptr);
  return nodes_[id]->logical(sim_.now());
}

double GcsSystem::local_skew() const {
  double worst = 0.0;
  for (int v = 0; v < graph_.num_vertices(); ++v) {
    if (!nodes_[v]) continue;
    for (int w : graph_.neighbors(v)) {
      if (w < v || !nodes_[w]) continue;
      worst = std::max(worst, std::abs(nodes_[v]->logical(sim_.now()) -
                                       nodes_[w]->logical(sim_.now())));
    }
  }
  return worst;
}

double GcsSystem::global_skew() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& node : nodes_) {
    if (!node) continue;
    const double value = node->logical(sim_.now());
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  return hi >= lo ? hi - lo : 0.0;
}

}  // namespace ftgcs::gcs
