// All drift models must respect the paper's envelope h_v(t) ∈ [1, 1+ρ].
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clocks/drift_model.h"
#include "sim/simulator.h"

namespace ftgcs::clocks {
namespace {

struct Recorder {
  std::vector<std::vector<std::pair<sim::Time, double>>> updates;

  std::vector<RateSink> sinks(std::size_t n) {
    updates.resize(n);
    std::vector<RateSink> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back([this, i](sim::Time t, double r) {
        updates[i].emplace_back(t, r);
      });
    }
    return out;
  }

  void expect_envelope(double rho) {
    for (const auto& node : updates) {
      ASSERT_FALSE(node.empty());
      for (const auto& [t, r] : node) {
        EXPECT_GE(r, 1.0);
        EXPECT_LE(r, 1.0 + rho + 1e-12);
      }
    }
  }
};

TEST(ConstantDrift, SpreadCoversEnvelopeDeterministically) {
  sim::Simulator sim;
  Recorder rec;
  const double rho = 1e-3;
  ConstantDrift model(rho, 1, /*spread=*/true);
  model.install(sim, rec.sinks(5));
  rec.expect_envelope(rho);
  EXPECT_DOUBLE_EQ(rec.updates[0][0].second, 1.0);
  EXPECT_DOUBLE_EQ(rec.updates[4][0].second, 1.0 + rho);
  // One update per node, no future events.
  EXPECT_TRUE(sim.idle());
}

TEST(ConstantDrift, RandomRatesWithinEnvelope) {
  sim::Simulator sim;
  Recorder rec;
  ConstantDrift model(5e-4, 77, /*spread=*/false);
  model.install(sim, rec.sinks(100));
  rec.expect_envelope(5e-4);
}

TEST(RandomWalkDrift, StaysInEnvelopeOverTime) {
  sim::Simulator sim;
  Recorder rec;
  const double rho = 1e-3;
  RandomWalkDrift model(rho, /*step_interval=*/1.0, /*step_size=*/4e-4, 5);
  model.install(sim, rec.sinks(10));
  sim.run_until(200.0);
  rec.expect_envelope(rho);
  // Rates actually moved.
  bool moved = false;
  for (const auto& node : rec.updates) {
    for (std::size_t i = 1; i < node.size(); ++i) {
      if (node[i].second != node[0].second) moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(SinusoidalDrift, StaysInEnvelopeAndOscillates) {
  sim::Simulator sim;
  Recorder rec;
  const double rho = 2e-3;
  SinusoidalDrift model(rho, /*period=*/50.0, /*sample_every=*/1.0, 3);
  model.install(sim, rec.sinks(4));
  sim.run_until(100.0);
  rec.expect_envelope(rho);
  // Over a full period the rate should span most of the envelope.
  double lo = 2.0, hi = 0.0;
  for (const auto& [t, r] : rec.updates[0]) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_LT(lo, 1.0 + 0.2 * rho);
  EXPECT_GT(hi, 1.0 + 0.8 * rho);
}

TEST(SpatialSplitDrift, SplitsByGroupAndFlips) {
  sim::Simulator sim;
  Recorder rec;
  const double rho = 1e-3;
  // Nodes 0,1 in group 0; nodes 2,3 in group 1; boundary 1 → group 0 fast.
  SpatialSplitDrift model(rho, {0, 0, 1, 1}, /*boundary=*/1,
                          /*flip_every=*/10.0);
  model.install(sim, rec.sinks(4));
  sim.run_until(15.0);  // one flip at t=10
  rec.expect_envelope(rho);
  // Initially: group 0 fast, group 1 slow.
  EXPECT_DOUBLE_EQ(rec.updates[0][0].second, 1.0 + rho);
  EXPECT_DOUBLE_EQ(rec.updates[2][0].second, 1.0);
  // After flip: swapped.
  ASSERT_GE(rec.updates[0].size(), 2u);
  EXPECT_DOUBLE_EQ(rec.updates[0][1].second, 1.0);
  EXPECT_DOUBLE_EQ(rec.updates[2][1].second, 1.0 + rho);
}

TEST(SpatialSplitDrift, NoFlipMeansSingleAssignment) {
  sim::Simulator sim;
  Recorder rec;
  SpatialSplitDrift model(1e-3, {0, 1}, 1, /*flip_every=*/0.0);
  model.install(sim, rec.sinks(2));
  sim.run_until(100.0);
  EXPECT_EQ(rec.updates[0].size(), 1u);
  EXPECT_EQ(rec.updates[1].size(), 1u);
}

TEST(ScheduledDrift, AppliesScriptAtExactTimes) {
  sim::Simulator sim;
  Recorder rec;
  ScheduledDrift model({1.0, 1.0005},
                       {{5.0, 0, 1.001}, {7.5, 1, 1.0}});
  model.install(sim, rec.sinks(2));
  sim.run_until(10.0);
  ASSERT_EQ(rec.updates[0].size(), 2u);
  EXPECT_DOUBLE_EQ(rec.updates[0][1].first, 5.0);
  EXPECT_DOUBLE_EQ(rec.updates[0][1].second, 1.001);
  ASSERT_EQ(rec.updates[1].size(), 2u);
  EXPECT_DOUBLE_EQ(rec.updates[1][1].first, 7.5);
  EXPECT_DOUBLE_EQ(rec.updates[1][1].second, 1.0);
}

}  // namespace
}  // namespace ftgcs::clocks
