#include "core/global_skew.h"

#include <cmath>

#include "support/assert.h"

namespace ftgcs::core {

MaxEstimator::MaxEstimator(sim::Simulator& simulator, const Config& cfg,
                           double initial_hardware_rate)
    : sim_(simulator),
      cfg_(cfg),
      spacing_(cfg.d - cfg.U),
      rate_(initial_hardware_rate / (1.0 + cfg.rho)) {
  FTGCS_EXPECTS(cfg.d > 0.0);
  FTGCS_EXPECTS(cfg.U >= 0.0 && cfg.U < cfg.d);  // spacing must be positive
  FTGCS_EXPECTS(cfg.rho >= 0.0);
  FTGCS_EXPECTS(cfg.f >= 0);
}

void MaxEstimator::start() {
  FTGCS_EXPECTS(on_emit != nullptr);
  FTGCS_EXPECTS(!started_);
  started_ = true;
  schedule_next_emission(sim_.now());
}

double MaxEstimator::read(sim::Time now) const {
  FTGCS_EXPECTS(now >= t0_);
  return m0_ + rate_ * (now - t0_);
}

void MaxEstimator::advance(sim::Time now) {
  m0_ = read(now);
  t0_ = now;
}

void MaxEstimator::set_hardware_rate(sim::Time now, double rate) {
  FTGCS_EXPECTS(rate > 0.0);
  advance(now);
  rate_ = rate / (1.0 + cfg_.rho);
  if (started_) schedule_next_emission(now);
}

void MaxEstimator::schedule_next_emission(sim::Time now) {
  if (pending_emit_) sim_.cancel(pending_emit_);
  const double target = next_level_ * spacing_;
  const double current = read(now);
  const sim::Time fire =
      target <= current ? now : now + (target - current) / rate_;
  pending_emit_ = sim_.at(fire, [this] {
    pending_emit_ = sim::EventId{};
    emit_through(read(sim_.now()));
    schedule_next_emission(sim_.now());
  });
}

void MaxEstimator::emit_through(double value) {
  while (next_level_ * spacing_ <= value) {
    on_emit(next_level_);
    ++next_level_;
  }
}

void MaxEstimator::observe_own_clock(double logical, sim::Time now) {
  advance(now);
  if (logical <= m0_) return;
  m0_ = logical;
  if (started_) {
    emit_through(m0_);
    schedule_next_emission(now);
  }
}

void MaxEstimator::on_level_pulse(int cluster, int member_index,
                                  bool from_self, int level, sim::Time now) {
  if (from_self || level < next_level_ - 1) return;  // stale or no news
  auto& members = heard_[cluster][level];
  members.insert(member_index);
  if (static_cast<int>(members.size()) < cfg_.f + 1) return;

  // f+1 distinct members of one cluster reached level ℓ: at least one is
  // correct, and its pulse was in transit for ≥ d−U, so
  // L^max ≥ (ℓ+1)(d−U) already holds — safe to jump.
  const double candidate = (level + 1) * spacing_;
  advance(now);
  if (candidate <= m0_) return;
  m0_ = candidate;
  ++jumps_;
  if (started_) {
    emit_through(m0_);
    schedule_next_emission(now);
  }
  // Prune state below the new floor to bound memory.
  for (auto& [cl, levels] : heard_) {
    levels.erase(levels.begin(), levels.lower_bound(level));
  }
}

}  // namespace ftgcs::core
