// One correct node of the FT-GCS system: the composition of
//
//   * an active ClusterSync engine (Algorithm 1) for its own cluster,
//   * a passive replica per adjacent cluster (the estimates L̃, Cor. 3.5),
//   * the InterclusterSync mode policy (Algorithm 2) evaluated at every
//     round start,
//   * optionally the global-skew module (Appendix C).
//
// All clocks of one node are driven by its single hardware clock; drift
// models push rate changes through set_hardware_rate().
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "clocks/hardware_clock.h"
#include "core/cluster_sync.h"
#include "core/estimates.h"
#include "core/global_skew.h"
#include "core/intercluster.h"
#include "core/params.h"
#include "net/augmented.h"
#include "net/network.h"
#include "sim/rng.h"

namespace ftgcs::core {

class NodeTable;

struct FtGcsNodeOptions {
  bool enable_global_module = true;

  /// Initial round of the node's own cluster (logical offset in whole
  /// rounds; see ClusterSyncConfig::start_round).
  int start_round = 1;

  /// Initial rounds of the adjacent clusters' replicas, parallel to
  /// AugmentedTopology::cluster_neighbors(cluster). Empty = all start at
  /// round 1 (estimates must converge on their own).
  std::vector<int> replica_start_rounds;

  /// Adjacent clusters whose edge starts INACTIVE (dynamic-topology mode,
  /// paper App. A / [9,10]): the replica still listens, but its estimate
  /// does not participate in the trigger evaluation until activated.
  std::vector<int> initially_inactive;

  /// Per-edge weight multipliers on (κ, δ), parallel to
  /// AugmentedTopology::cluster_neighbors(cluster) — the heterogeneous
  /// setting of paper footnote 1 ("κ proportional to ε_e"). Empty = all 1
  /// (uniform triggers).
  std::vector<double> edge_weights;
};

class FtGcsNode final : public net::PulseSink, public sim::EventSink {
 public:
  using Options = FtGcsNodeOptions;

  FtGcsNode(sim::Simulator& simulator, net::Network& network,
            const net::AugmentedTopology& topo, const Params& params,
            int node_id, sim::Rng rng, Options options = {});

  FtGcsNode(const FtGcsNode&) = delete;
  FtGcsNode& operator=(const FtGcsNode&) = delete;

  /// Starts engine, replicas, and (if enabled) the max estimator at the
  /// global time-0 initialization.
  void start();

  /// Network receive entry point (the node registers itself as the typed
  /// sink for its id).
  void on_pulse(const net::Pulse& pulse, sim::Time now) override;

  /// Typed simulator events: scheduled crash / transient-fault injection.
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;

  /// Drift-model sink.
  void set_hardware_rate(sim::Time now, double rate);

  /// Benign crash: from time t on the node is STOPPED — its network sink
  /// is swapped to the null sink, its engine, replica, and max-estimator
  /// timers are cancelled, and it neither sends nor processes anything
  /// again (equivalent, for the rest of the system, to removing its links
  /// — see the paper's discussion of crash faults).
  void crash_at(sim::Time t);
  bool crashed() const { return crashed_; }

  /// Binds the node to the system's columnar table (after the table
  /// adopted the node's lanes): γ decisions and the kMaxLevel staleness
  /// floor write through so the flat dispatch path classifies and snapshots
  /// without touching the node.
  void attach_table(NodeTable* table);

  /// Fault injection (tests/experiments): transiently corrupts the
  /// node's logical clock by `offset` at time t (see
  /// ClusterSyncEngine::inject_transient_fault).
  void inject_transient_fault_at(sim::Time t, double offset);

  /// Dynamic topology (paper App. A): toggles whether the estimate of
  /// adjacent cluster `cluster` participates in the trigger evaluation.
  /// The replica keeps listening either way, so re-activation is
  /// immediate. In the paper, adjacent clusters agree on the switch time
  /// by consensus; we model the agreed outcome by invoking this at the
  /// same instant on all members (see FtGcsSystem::set_edge_active).
  void set_edge_active(int cluster, bool active);
  bool edge_active(int cluster) const;

  // ---- state access (ground truth for metrics) ----------------------------
  int id() const { return id_; }
  int cluster() const { return cluster_; }
  double logical(sim::Time now) const { return engine_.clock().read(now); }
  double hardware(sim::Time now) const { return hardware_.read(now); }
  int gamma() const { return engine_.clock().gamma(); }
  int round() const { return engine_.round(); }
  ModeReason last_mode_reason() const { return last_reason_; }
  double max_estimate(sim::Time now) const;

  const ClusterSyncEngine& engine() const { return engine_; }
  ClusterSyncEngine& engine() { return engine_; }
  const EstimateBank& estimates() const { return estimates_; }
  EstimateBank& estimates() { return estimates_; }

  std::uint64_t violations() const {
    return engine_.violations() + estimates_.violations();
  }

  /// Mode decisions taken so far, per reason (indexed by ModeReason).
  const std::array<std::uint64_t, 4>& mode_counts() const {
    return mode_counts_;
  }

  /// Observation hook for the adversary/metrics: invoked at each round
  /// start with the node's schedule (see byz::RoundInfo rationale).
  std::function<void(int round, sim::Time round_start,
                     sim::Time predicted_pulse, double logical_round_start)>
      on_round_observed;

 private:
  void handle_round_start(int round);

  sim::Simulator& sim_;
  net::Network& net_;
  const net::AugmentedTopology& topo_;
  Params params_;
  int id_;
  int cluster_;
  Options options_;
  sim::SinkId self_ = sim::kInvalidSink;
  NodeTable* table_ = nullptr;  ///< columnar mirror (null outside a system)

  clocks::HardwareClock hardware_;
  ClusterSyncEngine engine_;
  EstimateBank estimates_;
  InterclusterController controller_;
  /// Inline (not heap-allocated): the level-pulse receive is one of the
  /// hottest per-node paths, and keeping the estimator on the node's own
  /// cache lines removes a pointer chase per non-stale level pulse.
  std::optional<MaxEstimator> max_estimator_;

  bool crashed_ = false;
  ModeReason last_reason_ = ModeReason::kDefaultSlow;
  std::array<std::uint64_t, 4> mode_counts_{};
  /// Parallel to estimates_.clusters(): edge considered by the triggers?
  std::vector<bool> edge_active_;
  /// Weighted mode (footnote 1): per-edge κ_e / δ_e; empty = uniform.
  std::vector<double> edge_kappas_;
  std::vector<double> edge_slacks_;
  /// Scratch buffers of handle_round_start (one trigger evaluation per
  /// round per node — reusing them keeps the round path allocation-free).
  std::vector<double> round_ests_;
  std::vector<double> round_kappas_;
  std::vector<double> round_slacks_;
};

}  // namespace ftgcs::core
