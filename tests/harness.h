// Shared test harness: a single cluster of ClusterSyncEngines wired over a
// real Network, with optional passive observers — the minimal substrate for
// testing Algorithm 1 and Corollary 3.5 in isolation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/cluster_sync.h"
#include "core/params.h"
#include "net/augmented.h"
#include "net/channel.h"
#include "net/graph.h"
#include "net/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ftgcs::testing {

/// One cluster of `k` active engines (node ids 0..k−1 in cluster 0). If
/// `observers > 0`, an adjacent cluster 1 exists whose first `observers`
/// members run passive replicas of cluster 0 (the remaining members of
/// cluster 1 are inert; they exist only for topology bookkeeping).
class ClusterHarness {
 public:
  struct Options {
    int active = 0;        ///< live members of cluster 0 (≤ k; rest silent)
    int observers = 0;     ///< passive replicas in cluster 1
    std::uint64_t seed = 1;
    std::unique_ptr<net::DelayModel> delay_model;  ///< null → Uniform
  };

  ClusterHarness(const core::Params& params, Options options)
      : params_(params),
        topo_(options.observers > 0 ? net::Graph::line(2)
                                    : net::Graph::line(1),
              params.k),
        network_(sim_, topo_.adjacency(),
                 options.delay_model
                     ? std::move(options.delay_model)
                     : std::make_unique<net::UniformDelay>(params.d,
                                                           params.U),
                 sim::Rng(options.seed)) {
    sim::Rng master(options.seed ^ 0xabcdULL);
    const int active = options.active > 0 ? options.active : params.k;

    core::ClusterSyncConfig cfg;
    cfg.tau1 = params.tau1;
    cfg.tau2 = params.tau2;
    cfg.tau3 = params.tau3;
    cfg.phi = params.phi;
    cfg.mu = params.mu;
    cfg.f = params.f;
    cfg.k = params.k;
    cfg.d = params.d;
    cfg.U = params.U;

    for (int i = 0; i < params.k; ++i) {
      if (i >= active) {
        engines_.push_back(nullptr);  // silent (crashed from start)
        network_.register_handler(i, [](const net::Pulse&, sim::Time) {});
        continue;
      }
      cfg.active = true;
      auto engine = std::make_unique<core::ClusterSyncEngine>(
          sim_, cfg, 1.0, master.fork(10 + i));
      engine->set_own_index(i);
      auto* raw = engine.get();
      const int id = i;
      raw->on_pulse = [this, id](int, sim::Time) {
        net::Pulse pulse;
        pulse.sender = id;
        pulse.kind = net::PulseKind::kClusterPulse;
        network_.broadcast(id, pulse);
      };
      network_.register_handler(
          i, [this, raw](const net::Pulse& pulse, sim::Time now) {
            if (pulse.kind != net::PulseKind::kClusterPulse) return;
            if (topo_.cluster_of(pulse.sender) != 0) return;
            raw->on_member_pulse(topo_.index_in_cluster(pulse.sender), now);
          });
      engines_.push_back(std::move(engine));
    }

    // Inert members of the observer cluster still receive broadcasts.
    if (options.observers > 0) {
      for (int j = options.observers; j < params.k; ++j) {
        network_.register_handler(topo_.node(1, j),
                                  [](const net::Pulse&, sim::Time) {});
      }
    }

    for (int j = 0; j < options.observers; ++j) {
      cfg.active = false;
      auto replica = std::make_unique<core::ClusterSyncEngine>(
          sim_, cfg, 1.0, master.fork(100 + j));
      auto* raw = replica.get();
      const int id = topo_.node(1, j);
      network_.register_handler(
          id, [this, raw](const net::Pulse& pulse, sim::Time now) {
            if (pulse.kind != net::PulseKind::kClusterPulse) return;
            if (topo_.cluster_of(pulse.sender) != 0) return;
            raw->on_member_pulse(topo_.index_in_cluster(pulse.sender), now);
          });
      observers_.push_back(std::move(replica));
    }
  }

  void start() {
    for (auto& engine : engines_) {
      if (engine) engine->start();
    }
    for (auto& observer : observers_) observer->start();
  }

  void run_rounds(double rounds) { sim_.run_until(rounds * params_.T); }

  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return network_; }
  const net::AugmentedTopology& topo() const { return topo_; }

  core::ClusterSyncEngine& engine(int i) { return *engines_[i]; }
  bool has_engine(int i) const { return engines_[i] != nullptr; }
  core::ClusterSyncEngine& observer(int j) { return *observers_[j]; }

  int k() const { return params_.k; }

  /// Max |L_v − L_w| over live engines at the current time.
  double skew() const {
    double lo = 0.0, hi = 0.0;
    bool any = false;
    for (const auto& engine : engines_) {
      if (!engine) continue;
      const double value = engine->clock().read(sim_.now());
      if (!any) {
        lo = hi = value;
        any = true;
      } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
      }
    }
    return any ? hi - lo : 0.0;
  }

 private:
  core::Params params_;
  sim::Simulator sim_;
  net::AugmentedTopology topo_;
  net::Network network_;
  std::vector<std::unique_ptr<core::ClusterSyncEngine>> engines_;
  std::vector<std::unique_ptr<core::ClusterSyncEngine>> observers_;
};

}  // namespace ftgcs::testing
