#include "par/sharded_system.h"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <limits>
#include <utility>

#include "exp/topology_graph.h"
#include "net/channel.h"
#include "obs/phase_profiler.h"
#include "support/assert.h"
#include "trace/collector.h"

namespace ftgcs::par {

namespace {

/// Largest representable time strictly below `t` — the bound of an
/// exclusive window: run_until(down(B)) drains exactly the events with
/// time < B, leaving time-B events (and the barrier's merged arrivals at
/// exactly B) for the next phase.
sim::Time down(sim::Time t) {
  return std::nextafter(t, -std::numeric_limits<sim::Time>::infinity());
}

}  // namespace

/// Source-side cut-edge receiver: stamps each diverted delivery with a
/// per-sender sequence (the T-invariant tie-break — a node's remote sends
/// to any fixed destination are the same set in the same order no matter
/// how the rest of the graph is sharded) and appends it to the
/// source→destination mailbox. Touched only by its own shard's thread.
class ShardedFtGcsSystem::Router final : public net::ShardRouter {
 public:
  Router(int shard, MailboxGrid* grid, const std::int32_t* node_owner,
         std::size_t num_nodes)
      : shard_(shard), grid_(grid), node_owner_(node_owner),
        seq_(num_nodes, 0) {}

  void remote_deliver(int from, sim::Time at,
                      const sim::EventPayload& payload) override {
    RemoteEvent event;
    event.at = at;
    event.payload = payload;
    event.from = from;
    event.seq = seq_[static_cast<std::size_t>(from)]++;
    grid_->push(shard_,
                node_owner_[static_cast<std::size_t>(payload.c)], event);
  }

 private:
  int shard_;
  MailboxGrid* grid_;
  const std::int32_t* node_owner_;
  std::vector<std::uint64_t> seq_;
};

/// The three lock-step barriers of one phase. Participants are the T
/// workers plus the driver. `start` publishes the driver's bound_ and the
/// previous window's mailbox appends to the merging workers; `merged`
/// separates the merge step from the run step — a worker may only start
/// pushing new mailbox entries once EVERY worker has finished draining
/// its inbox (without it, a fast shard's sends race a slow shard's
/// drain of the same box); `finish` returns control to the driver.
struct ShardedFtGcsSystem::Phases {
  explicit Phases(std::ptrdiff_t participants)
      : start(participants), merged(participants), finish(participants) {}
  std::barrier<> start;
  std::barrier<> merged;
  std::barrier<> finish;
};

ShardedFtGcsSystem::ShardedFtGcsSystem(net::Graph cluster_graph,
                                       Config config) {
  FTGCS_EXPECTS(config.shards >= 2);
  // Build (or borrow) the augmented topology ONCE. Every shard — and the
  // degenerate-plan census below — binds to this single instance, killing
  // the O(T·E) per-shard topology rebuild of the old construction.
  if (config.shared_topo != nullptr) {
    topo_ = config.shared_topo;
  } else {
    owned_topo_ = std::make_unique<net::AugmentedTopology>(cluster_graph,
                                                           config.params.k);
    topo_ = owned_topo_.get();
  }
  if (!config.plan.degenerate()) {
    plan_ = std::move(config.plan);
    FTGCS_EXPECTS(plan_.num_shards <= config.shards);
    FTGCS_EXPECTS(static_cast<int>(plan_.cluster_owner.size()) ==
                  cluster_graph.num_vertices());
  } else {
    const net::UniformDelay delays(config.params.d, config.params.U);
    plan_ = make_shard_plan(exp::build_topology_graph(*topo_, delays),
                            config.shards);
  }
  // A degenerate plan has no conservative window; the caller must probe
  // make_shard_plan() first and run the single-simulator engine instead.
  FTGCS_EXPECTS(!plan_.degenerate());
  window_ = plan_.cut_edges > 0 ? plan_.min_cut_delay - sim::kTimeEps : 0.0;

  const int t = plan_.num_shards;
  mailboxes_ = std::make_unique<MailboxGrid>(t);
  routers_.reserve(static_cast<std::size_t>(t));
  shards_.reserve(static_cast<std::size_t>(t));
  for (int s = 0; s < t; ++s) {
    routers_.push_back(std::make_unique<Router>(
        s, mailboxes_.get(), plan_.node_owner.data(),
        plan_.node_owner.size()));
    core::FtGcsSystem::Config shard_config;
    shard_config.params = config.params;
    shard_config.seed = config.seed;
    shard_config.engine = config.engine;
    shard_config.enable_global_module = config.enable_global_module;
    shard_config.replicas_know_offsets = config.replicas_know_offsets;
    shard_config.fault_plan = config.fault_plan;
    shard_config.cluster_round_offsets = config.cluster_round_offsets;
    if (config.drift_factory) {
      shard_config.drift_model = config.drift_factory();
      FTGCS_EXPECTS(shard_config.drift_model != nullptr);
    }
    shard_config.shard = {s, t, plan_.cluster_owner.data(),
                          routers_.back().get()};
    shard_config.shared_topo = topo_;  // borrow, don't rebuild, per shard
    if (config.trace != nullptr) {
      // Serial, before the workers spawn — each buffer is then touched
      // only by its own shard's worker.
      shard_config.trace_sink = config.trace->shard_sink(s);
    }
    // With shared_topo set the shard ignores its graph argument — pass an
    // empty one instead of copying the real graph T times.
    shards_.push_back(std::make_unique<core::FtGcsSystem>(
        net::Graph(0), std::move(shard_config)));
  }

  // Owned node ids are contiguous per shard (clusters are striped and
  // node ids are cluster·k + index): record the range boundaries for the
  // snapshot merge.
  first_node_.assign(static_cast<std::size_t>(t) + 1, 0);
  for (std::size_t id = 0; id < plan_.node_owner.size(); ++id) {
    FTGCS_ASSERT(id == 0 ||
                 plan_.node_owner[id] >= plan_.node_owner[id - 1]);
    first_node_[static_cast<std::size_t>(plan_.node_owner[id]) + 1] =
        static_cast<std::int32_t>(id + 1);
  }
  for (int s = 1; s <= t; ++s) {
    first_node_[static_cast<std::size_t>(s)] =
        std::max(first_node_[static_cast<std::size_t>(s)],
                 first_node_[static_cast<std::size_t>(s) - 1]);
  }

  merge_scratch_.resize(static_cast<std::size_t>(t));
  mailbox_peak_.assign(static_cast<std::size_t>(t), 0);
  routed_in_.assign(static_cast<std::size_t>(t), 0);
  profiler_ = config.profiler;
  if (profiler_ != nullptr) profiler_->bind_shards(t);
  phases_ = std::make_unique<Phases>(t + 1);
  workers_.reserve(static_cast<std::size_t>(t));
  for (int s = 0; s < t; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardedFtGcsSystem::~ShardedFtGcsSystem() {
  stop_ = true;
  phases_->start.arrive_and_wait();
  for (std::thread& worker : workers_) worker.join();
}

void ShardedFtGcsSystem::start() {
  for (auto& shard : shards_) shard->start();
}

void ShardedFtGcsSystem::worker_loop(int shard) {
  core::FtGcsSystem& system = *shards_[static_cast<std::size_t>(shard)];
  const sim::SinkId net_sink = system.network().sink_id();
  std::vector<RemoteEvent>& scratch =
      merge_scratch_[static_cast<std::size_t>(shard)];
  // Profiler timing discipline: every slot WRITE a phase hook makes sits
  // between the start barrier and the finish barrier of the same window,
  // so the driver's post-finish reads (totals / finish / diag) are
  // ordered by the barriers — no extra synchronization. The kCollect
  // "phase" is the wait AT the start barrier: the time this shard spent
  // idle while slower shards and the driver's collect work held the next
  // window back, i.e. exactly the imbalance signal. (Its phase_end
  // writes total_ns[kCollect] right after the start barrier, still
  // before this window's finish barrier — same discipline.)
  obs::PhaseProfiler* const prof = profiler_;
  for (;;) {
    if (prof != nullptr) {
      prof->phase_begin(shard, obs::PhaseProfiler::Phase::kCollect);
    }
    phases_->start.arrive_and_wait();
    if (stop_) return;
    if (prof != nullptr) {
      prof->phase_end(shard, obs::PhaseProfiler::Phase::kCollect);
      prof->phase_begin(shard, obs::PhaseProfiler::Phase::kMerge);
    }
    // Seed the queue from the merged mailboxes first: every entry is a
    // cross-shard arrival from an earlier window, at a time ≥ the current
    // barrier — i.e. still in this shard's future.
    const std::size_t merged = mailboxes_->drain_inbound(shard, scratch);
    if (merged > 0) {
      mailbox_peak_[static_cast<std::size_t>(shard)] = std::max(
          mailbox_peak_[static_cast<std::size_t>(shard)], merged);
      routed_in_[static_cast<std::size_t>(shard)] += merged;
      for (const RemoteEvent& event : scratch) {
        system.simulator().post_fire_only_at(
            event.at, sim::EventKind::kPulse, net_sink, event.payload);
      }
    }
    if (prof != nullptr) {
      prof->phase_end(shard, obs::PhaseProfiler::Phase::kMerge);
    }
    phases_->merged.arrive_and_wait();  // no sends before every drain is done
    if (prof != nullptr) {
      prof->phase_begin(shard, obs::PhaseProfiler::Phase::kRun);
    }
    system.run_until(bound_);
    if (prof != nullptr) {
      prof->phase_end(shard, obs::PhaseProfiler::Phase::kRun);
      prof->count_window(shard);
    }
    phases_->finish.arrive_and_wait();
  }
}

void ShardedFtGcsSystem::phase(sim::Time bound) {
  bound_ = bound;
  phases_->start.arrive_and_wait();   // publish bound_, release workers
  phases_->merged.arrive_and_wait();
  phases_->finish.arrive_and_wait();  // collect; publishes mailbox writes
}

void ShardedFtGcsSystem::run_until(sim::Time t) {
  FTGCS_EXPECTS(t >= now_);
  if (profiler_ != nullptr) profiler_->span_begin("windows");
  // cut_edges == 0 means the stripes are mutually unreachable: no
  // conservative constraint, one window spans the whole target.
  const double width =
      window_ > 0.0 ? window_ : std::numeric_limits<double>::infinity();
  while (now_ < t) {
    const sim::Time w_end = std::min(now_ + width, t);
    FTGCS_ASSERT(w_end > now_);  // width below one ulp cannot make progress
    if (w_end < t) {
      // Interior window [now_, w_end): strictly-exclusive bound. Events at
      // exactly w_end (including merged arrivals at the boundary) belong
      // to the next window.
      phase(down(w_end));
    } else {
      // Final window: drain strictly below t, then a barrier (so arrivals
      // at exactly t are merged), then the inclusive time-t pass — the
      // same ≤ t semantics as Simulator::run_until(t).
      phase(down(t));
      phase(t);
    }
    now_ = w_end;
    ++windows_;
  }
  if (profiler_ != nullptr) profiler_->span_end("windows");
}

void ShardedFtGcsSystem::snapshot_columns(core::SystemColumns& out) const {
  shards_.front()->snapshot_columns(out);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shards_[s]->snapshot_columns(snapshot_scratch_);
    const auto begin = static_cast<std::size_t>(first_node_[s]);
    const auto end = static_cast<std::size_t>(first_node_[s + 1]);
    for (std::size_t id = begin; id < end; ++id) {
      out.logical[id] = snapshot_scratch_.logical[id];
      out.correct[id] = snapshot_scratch_.correct[id];
      out.gamma[id] = snapshot_scratch_.gamma[id];
    }
  }
}

std::uint64_t ShardedFtGcsSystem::fired_events() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->simulator().fired_events();
  // Every shard installs an identically-seeded drift-model copy; at any
  // barrier they have fired the same tick schedule, so the duplicates are
  // exactly the copies' counts beyond the first.
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    total -= shards_[s]->drift_ticks_fired();
  }
  return total;
}

std::uint64_t ShardedFtGcsSystem::messages_sent() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->network().messages_sent();
  return total;
}

std::uint64_t ShardedFtGcsSystem::total_violations() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_violations();
  return total;
}

sim::EventQueue::TierStats ShardedFtGcsSystem::queue_stats() const {
  sim::EventQueue::TierStats stats;
  for (const auto& shard : shards_) {
    const sim::EventQueue::TierStats& tier = shard->simulator().queue_stats();
    stats.bucket_count = std::max(stats.bucket_count, tier.bucket_count);
    stats.rung_spawns += tier.rung_spawns;
    stats.overflow_peak = std::max(stats.overflow_peak, tier.overflow_peak);
    stats.overflow_pushes += tier.overflow_pushes;
    stats.reseeds += tier.reseeds;
    stats.unordered_runs += tier.unordered_runs;
    stats.unordered_events += tier.unordered_events;
    stats.ordered_run_events += tier.ordered_run_events;
    stats.narrow_events += tier.narrow_events;
    stats.wide_events += tier.wide_events;
    stats.group_inserts += tier.group_inserts;
  }
  return stats;
}

void ShardedFtGcsSystem::shard_window_diag(
    std::vector<obs::ShardWindowDiag>& out) const {
  out.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out[s].routed = routed_in_[s];
    out[s].mailbox_peak = mailbox_peak_[s];
    out[s].fired = shards_[s]->simulator().fired_events();
  }
}

ShardedFtGcsSystem::ShardStats ShardedFtGcsSystem::shard_stats() const {
  ShardStats stats;
  stats.shards = plan_.num_shards;
  stats.cut_edges = plan_.cut_edges;
  stats.min_cut_delay = plan_.min_cut_delay;
  stats.windows = windows_;
  for (std::size_t peak : mailbox_peak_) {
    stats.mailbox_peak = std::max(stats.mailbox_peak, peak);
  }
  return stats;
}

}  // namespace ftgcs::par
