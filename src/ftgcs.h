// ftgcs — Fault Tolerant Gradient Clock Synchronization.
//
// Umbrella header for the public API. The library implements the
// construction of Bund, Lenzen & Rosenbaum (PODC 2019): Lynch–Welch
// synchronization inside clusters of k = 3f+1 nodes composed with the
// gradient clock synchronization algorithm across clusters, achieving
// local skew O((ρ·d + U)·log D) under f Byzantine faults per cluster.
//
// Typical use:
//
//   auto params = ftgcs::core::Params::practical(rho, d, U, f);
//   ftgcs::core::FtGcsSystem::Config config;
//   config.params = params;
//   ftgcs::core::FtGcsSystem system(ftgcs::net::Graph::grid(4, 4),
//                                   std::move(config));
//   system.start();
//   system.run_until(horizon);
//
// Experiments are declarative: exp::ScenarioSpec describes topology, drift,
// faults, protocol, parameters and a sweep grid; exp::SweepRunner fans the
// grid out over a thread pool; the `ftgcs_bench` CLI runs any registered
// scenario. See README.md for the architecture overview and EXPERIMENTS.md
// for the experiment-to-scenario map.
#pragma once

#include "byz/fault_plan.h"      // fault placement + attack strategies
#include "byz/strategies.h"      // StrategyKind
#include "clocks/drift_model.h"  // hardware drift adversaries
#include "core/ftgcs_system.h"   // the system builder (main entry point)
#include "core/params.h"         // parameter derivation + feasibility
#include "exp/exp.h"             // scenario registry + parallel sweep engine
#include "gcs/gcs_system.h"      // plain (non-FT) GCS baseline
#include "metrics/skew_tracker.h"  // ground-truth skew measurement
#include "net/channel.h"         // delay models
#include "net/graph.h"           // topology generators
