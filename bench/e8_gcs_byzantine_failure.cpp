// E8 — "The GCS algorithm utterly fails in face of non-benign faults"
// (§1): one Byzantine node on a ring destroys the plain GCS local-skew
// guarantee; the FT-GCS construction absorbs a full budget of the same
// attack on every cluster.
//
// Time series of the max local skew between correct neighbors.
#include "bench_util.h"

#include "gcs/gcs_system.h"

namespace {

using namespace ftgcs;

std::vector<double> run_plain(bool attacked, const std::vector<double>& at) {
  gcs::GcsSystem::Config config;
  config.params = gcs::GcsParams::derive(1e-3, 1.0, 0.1, 0.05, 1.0);
  config.seed = 8;
  if (attacked) {
    config.pump_nodes = {4};
    config.pump_rate = 0.05;
  }
  gcs::GcsSystem system(net::Graph::ring(9), std::move(config));
  system.start();
  std::vector<double> series;
  double worst = 0.0;
  for (double t : at) {
    system.run_until(t);
    worst = std::max(worst, system.local_skew());
    series.push_back(worst);
  }
  return series;
}

std::vector<double> run_ftgcs(const std::vector<double>& at) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  net::AugmentedTopology topo(net::Graph::ring(9), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 8;
  config.fault_plan = byz::FaultPlan::uniform(
      topo, params.f, byz::StrategyKind::kSkewPump, 2.0 * params.E, 8);
  core::FtGcsSystem system(net::Graph::ring(9), std::move(config));
  system.start();
  std::vector<double> series;
  double worst = 0.0;
  for (double t : at) {
    system.run_until(t);
    const auto skews =
        metrics::measure_skews(system.snapshot(), system.topology());
    worst = std::max(worst, skews.cluster_local);
    series.push_back(worst);
  }
  return series;
}

}  // namespace

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  banner("E8", "plain GCS vs one Byzantine node (ring of 9)");
  const gcs::GcsParams plain = gcs::GcsParams::derive(1e-3, 1.0, 0.1, 0.05,
                                                      1.0);
  std::printf("plain-GCS kappa=%.4f; FT-GCS runs 9 skew pumps (f=1 per "
              "cluster)\n\n",
              plain.kappa);

  std::vector<double> checkpoints;
  for (int i = 1; i <= 8; ++i) checkpoints.push_back(100.0 * i);

  const auto clean = run_plain(false, checkpoints);
  const auto attacked = run_plain(true, checkpoints);
  const auto ftgcs = run_ftgcs(checkpoints);

  metrics::Table table({"t", "plain GCS clean", "plain GCS 1 byz",
                        "FT-GCS 9 byz"});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    table.add_row({metrics::Table::num(checkpoints[i], 4),
                   metrics::Table::num(clean[i], 4),
                   metrics::Table::num(attacked[i], 4),
                   metrics::Table::num(ftgcs[i], 4)});
  }
  table.print(std::cout);
  std::printf("\nshape check: the attacked plain-GCS column grows without "
              "bound (linearly in t);\nthe clean column and the FT-GCS "
              "column stay flat.\n");
  return 0;
}
