#include "exp/topology_graph.h"

namespace ftgcs::exp {

TopologyGraph build_topology_graph(const net::AugmentedTopology& topo,
                                   const net::DelayModel& delays) {
  TopologyGraph graph;
  graph.num_clusters = topo.num_clusters();
  graph.cluster_size = topo.cluster_size();
  graph.adjacency = topo.adjacency();
  graph.cluster_of.reserve(static_cast<std::size_t>(topo.num_nodes()));
  for (int id = 0; id < topo.num_nodes(); ++id) {
    graph.cluster_of.push_back(topo.cluster_of(id));
  }
  graph.min_delay = delays.min_delay();
  graph.max_delay = delays.max_delay();
  // All in-tree DelayModels are uniform envelopes today; a heterogeneous
  // model would fill edge_min_delay here (one vector per source, parallel
  // to adjacency positions).
  return graph;
}

}  // namespace ftgcs::exp
