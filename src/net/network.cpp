#include "net/network.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"
#include "trace/sink.h"

namespace ftgcs::net {

namespace {

/// Adapts the legacy std::function handler onto the typed sink interface.
class FunctionSink final : public PulseSink {
 public:
  explicit FunctionSink(Network::Handler handler)
      : handler_(std::move(handler)) {}
  void on_pulse(const Pulse& pulse, sim::Time now) override {
    handler_(pulse, now);
  }

 private:
  Network::Handler handler_;
};

class NullSink final : public PulseSink {
 public:
  void on_pulse(const Pulse&, sim::Time) override {}
};

NullSink null_sink;

sim::EventPayload encode(const Pulse& pulse, int dest) {
  sim::EventPayload payload;
  payload.a = pulse.sender;
  payload.b = pulse.level;
  payload.c = dest;
  payload.d = static_cast<std::uint32_t>(pulse.kind);
  payload.x = pulse.value;
  return payload;
}

}  // namespace

Network::Network(sim::Simulator& simulator,
                 std::vector<std::vector<int>> adjacency,
                 std::unique_ptr<DelayModel> delays, sim::Rng rng)
    : sim_(simulator),
      adjacency_(std::move(adjacency)),
      delays_(std::move(delays)),
      sinks_(adjacency_.size(), nullptr) {
  FTGCS_EXPECTS(delays_ != nullptr);
  uniform_channel_ = dynamic_cast<const UniformDelay*>(delays_.get()) != nullptr;
  self_ = simulator.register_sink(this);
  edge_streams_.reserve(adjacency_.size());
  loopback_streams_.reserve(adjacency_.size());
  std::uint64_t salt = 0;
  for (const auto& neighbors : adjacency_) {
    std::vector<sim::Rng> streams;
    streams.reserve(neighbors.size());
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      // Validated once here so broadcast() can schedule deliveries
      // without a per-message bounds check (destinations come only from
      // this adjacency).
      FTGCS_EXPECTS(neighbors[j] >= 0 && neighbors[j] < num_nodes());
      streams.push_back(rng.fork(++salt));
    }
    edge_streams_.push_back(std::move(streams));
    loopback_streams_.push_back(rng.fork(++salt));
  }
}

void Network::register_handler(int node, PulseSink* sink) {
  FTGCS_EXPECTS(node >= 0 && node < num_nodes());
  FTGCS_EXPECTS(sink != nullptr);
  sinks_[node] = sink;
}

void Network::register_handler(int node, Handler handler) {
  FTGCS_EXPECTS(handler != nullptr);
  owned_sinks_.push_back(std::make_unique<FunctionSink>(std::move(handler)));
  register_handler(node, owned_sinks_.back().get());
}

void Network::register_null_handler(int node) {
  register_handler(node, &null_sink);
}

void Network::set_cluster_dispatch(ClusterPulseTable* table,
                                   const std::uint8_t* fast) {
  FTGCS_EXPECTS(table != nullptr && fast != nullptr);
  dispatch_ = table;
  dispatch_fast_ = fast;
}

void Network::set_shard_router(ShardRouter* router,
                               const std::uint8_t* remote) {
  FTGCS_EXPECTS(router != nullptr && remote != nullptr);
  router_ = router;
  remote_ = remote;
}

const std::vector<int>& Network::neighbors(int node) const {
  FTGCS_EXPECTS(node >= 0 && node < num_nodes());
  return adjacency_[node];
}

bool Network::are_neighbors(int a, int b) const {
  const auto& nb = neighbors(a);
  return std::find(nb.begin(), nb.end(), b) != nb.end();
}

sim::Rng& Network::edge_rng(int from, int to) {
  if (from == to) return loopback_streams_[static_cast<std::size_t>(from)];
  const auto& nb = adjacency_[static_cast<std::size_t>(from)];
  const auto it = std::find(nb.begin(), nb.end(), to);
  FTGCS_EXPECTS(it != nb.end());
  return edge_streams_[static_cast<std::size_t>(from)]
                      [static_cast<std::size_t>(it - nb.begin())];
}

void Network::post_delivery(int from, sim::EventPayload& payload, int to,
                            sim::Duration delay) {
  FTGCS_EXPECTS(to >= 0 && to < num_nodes());
  FTGCS_EXPECTS(delay >= delays_->min_delay() - sim::kTimeEps &&
                delay <= delays_->max_delay() + sim::kTimeEps);
  ++messages_sent_;
  payload.c = to;  // re-aim the shared payload; everything else is fixed
  if (remote_ != nullptr && remote_[static_cast<std::size_t>(to)] != 0) {
    router_->remote_deliver(from, sim_.now() + delay, payload);
    return;
  }
  // Deliveries are never cancelled: the fire-only path keeps the payload
  // inline in the queue — no slot pool traffic on the dominant path.
  sim_.post_fire_only_after(delay, sim::EventKind::kPulse, self_, payload);
}

void Network::deliver(int from, int to, const Pulse& pulse,
                      sim::Duration delay) {
  sim::EventPayload payload = encode(pulse, to);
  post_delivery(from, payload, to, delay);
}

void Network::on_event(sim::EventKind kind, const sim::EventPayload& payload,
                       sim::Time now) {
  FTGCS_ASSERT(kind == sim::EventKind::kPulse);
  ++messages_delivered_;
  if (trace_ != nullptr) trace_->on_delivery(now, payload);
  // Columnar fast path (single-event form — Simulator::step and deliveries
  // not drained as part of a run): same receive as the batch hook below.
  if (dispatch_ != nullptr &&
      payload.d == static_cast<std::uint32_t>(PulseKind::kClusterPulse) &&
      dispatch_fast_[static_cast<std::size_t>(payload.c)] != 0) {
    const sim::BatchedEvent event{now, payload};
    dispatch_->on_pulse_run(&event, 1);
    return;
  }
  Pulse pulse;
  pulse.sender = payload.a;
  pulse.level = payload.b;
  pulse.kind = static_cast<PulseKind>(payload.d);
  pulse.value = payload.x;
  PulseSink* sink = sinks_[static_cast<std::size_t>(payload.c)];
  FTGCS_ASSERT(sink != nullptr);
  sink->on_pulse(pulse, now);
}

void Network::on_event_batch(sim::EventKind kind,
                             const sim::BatchedEvent* events, std::size_t n) {
  FTGCS_ASSERT(kind == sim::EventKind::kPulse);
  FTGCS_ASSERT(dispatch_ != nullptr);
  messages_delivered_ += n;
  if (trace_ != nullptr) trace_->on_delivery_batch(events, n);
  dispatch_->on_pulse_run(events, n);
}

void Network::broadcast(int from, const Pulse& pulse) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(pulse.sender == from);
  const auto& neighbors = adjacency_[static_cast<std::size_t>(from)];
  // One delivery group: loopback first, then neighbors in adjacency order
  // (streams are indexed by position — no per-edge find(); edge_rng(),
  // which searches, stays for the unicast paths only), so the draw order
  // each per-edge stream observes is unchanged. The payload is encoded
  // once and only re-aimed per destination; destinations come from the
  // validated adjacency and delays from the channel's own sampler, so the
  // per-delivery bounds checks of the unicast path are hoisted out of the
  // loop. The arrival times all sit within one delay spread, so on the
  // ladder engine the burst lands as contiguous appends into the same few
  // near-future buckets — O(degree) with no per-message tree walks.
  messages_sent_ += neighbors.size() + 1;
  sim::EventPayload payload = encode(pulse, from);
  sim_.post_fire_only_after(
      sample_delay(from, from,
                   loopback_streams_[static_cast<std::size_t>(from)]),
      sim::EventKind::kPulse, self_, payload);
  auto& streams = edge_streams_[static_cast<std::size_t>(from)];
  if (remote_ == nullptr) {  // unsharded: the dominant, branch-free loop
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      payload.c = neighbors[j];  // re-aim; everything else is fixed
      sim_.post_fire_only_after(sample_delay(from, neighbors[j], streams[j]),
                                sim::EventKind::kPulse, self_, payload);
    }
    return;
  }
  // Sharded: identical draws and encode-once re-aiming, but deliveries
  // crossing the shard cut divert to the router with their arrival time.
  for (std::size_t j = 0; j < neighbors.size(); ++j) {
    payload.c = neighbors[j];
    const sim::Duration delay = sample_delay(from, neighbors[j], streams[j]);
    if (remote_[static_cast<std::size_t>(neighbors[j])] != 0) {
      router_->remote_deliver(from, sim_.now() + delay, payload);
    } else {
      sim_.post_fire_only_after(delay, sim::EventKind::kPulse, self_,
                                payload);
    }
  }
}

void Network::unicast(int from, int to, const Pulse& pulse) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(to >= 0 && to < num_nodes());
  FTGCS_EXPECTS(from == to || are_neighbors(from, to));
  deliver(from, to, pulse, sample_delay(from, to, edge_rng(from, to)));
}

void Network::unicast_with_delay(int from, int to, const Pulse& pulse,
                                 sim::Duration delay) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(to >= 0 && to < num_nodes());
  FTGCS_EXPECTS(from == to || are_neighbors(from, to));
  deliver(from, to, pulse, delay);
}

}  // namespace ftgcs::net
