#include "byz/strategies.h"

#include <cmath>
#include <utility>
#include <vector>

#include "core/cluster_sync.h"
#include "support/assert.h"

namespace ftgcs::byz {

ByzantineNode::ByzantineNode(AttackContext ctx,
                             std::unique_ptr<Strategy> strategy)
    : ctx_(std::move(ctx)), strategy_(std::move(strategy)) {
  FTGCS_EXPECTS(strategy_ != nullptr);
  FTGCS_EXPECTS(ctx_.sim != nullptr && ctx_.net != nullptr &&
                ctx_.topo != nullptr && ctx_.params != nullptr);
}

void ByzantineNode::start() { strategy_->start(ctx_); }

void ByzantineNode::on_pulse(const net::Pulse& pulse, sim::Time now) {
  strategy_->on_pulse(ctx_, pulse, now);
}

void ByzantineNode::on_reference_round(const RoundInfo& info) {
  strategy_->on_reference_round(ctx_, info);
}

namespace {

net::Pulse cluster_pulse(int sender) {
  net::Pulse pulse;
  pulse.sender = sender;
  pulse.kind = net::PulseKind::kClusterPulse;
  return pulse;
}

/// Schedules a broadcast-like unicast to one receiver at absolute time
/// `send_at` (clamped to now).
void send_at(AttackContext& ctx, int to, sim::Time send_at) {
  const sim::Time at = std::max(send_at, ctx.sim->now());
  const int self = ctx.self;
  auto* net = ctx.net;
  ctx.sim->at(at, [net, self, to] {
    net->unicast(self, to, cluster_pulse(self));
  });
}

class SilentStrategy final : public Strategy {};

class RandomPulserStrategy final : public Strategy {
 public:
  explicit RandomPulserStrategy(double rate) : rate_(rate) {
    FTGCS_EXPECTS(rate > 0.0);
  }

  void start(AttackContext& ctx) override { schedule_next(ctx); }

 private:
  void schedule_next(AttackContext& ctx) {
    const double gap = -std::log1p(-ctx.rng.next_double()) / rate_;
    ctx.sim->after(gap, [this, &ctx] {
      ctx.net->broadcast(ctx.self, cluster_pulse(ctx.self));
      schedule_next(ctx);
    });
  }

  double rate_;
};

class TwoFacedStrategy final : public Strategy {
 public:
  explicit TwoFacedStrategy(double spread) : spread_(spread) {
    FTGCS_EXPECTS(spread >= 0.0);
  }

  void on_reference_round(AttackContext& ctx, const RoundInfo& info) override {
    const auto& neighbors = ctx.net->neighbors(ctx.self);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const double offset = (i % 2 == 0) ? -spread_ / 2.0 : spread_ / 2.0;
      send_at(ctx, neighbors[i], info.predicted_pulse + offset);
    }
  }

 private:
  double spread_;
};

/// Runs Algorithm 1 honestly — but on an out-of-envelope hardware clock.
/// γ is pinned to 0: this node never obeys the GCS layer ("refuses to
/// adjust its logical clock rate", paper §1).
class ClockLiarStrategy final : public Strategy {
 public:
  explicit ClockLiarStrategy(double rate_factor) : factor_(rate_factor) {}

  void start(AttackContext& ctx) override {
    const core::Params& p = *ctx.params;
    core::ClusterSyncConfig cfg;
    cfg.tau1 = p.tau1;
    cfg.tau2 = p.tau2;
    cfg.tau3 = p.tau3;
    cfg.phi = p.phi;
    cfg.mu = p.mu;
    cfg.f = p.f;
    cfg.k = p.k;
    cfg.active = true;
    cfg.d = p.d;
    cfg.U = p.U;
    const double rate = std::max(0.05, 1.0 + factor_ * p.rho);
    engine_ = std::make_unique<core::ClusterSyncEngine>(
        *ctx.sim, cfg, rate, ctx.rng.fork(17));
    engine_->set_own_index(ctx.index_in_cluster);
    engine_->on_pulse = [&ctx](int, sim::Time) {
      ctx.net->broadcast(ctx.self, cluster_pulse(ctx.self));
    };
    engine_->start();
  }

  void on_pulse(AttackContext& ctx, const net::Pulse& pulse,
                sim::Time now) override {
    if (pulse.kind != net::PulseKind::kClusterPulse) return;
    if (ctx.topo->cluster_of(pulse.sender) != ctx.cluster) return;
    engine_->on_member_pulse(ctx.topo->index_in_cluster(pulse.sender), now);
  }

 private:
  double factor_;
  std::unique_ptr<core::ClusterSyncEngine> engine_;
};

class SkewPumpStrategy final : public Strategy {
 public:
  explicit SkewPumpStrategy(double offset) : offset_(offset) {
    FTGCS_EXPECTS(offset >= 0.0);
  }

  void on_reference_round(AttackContext& ctx, const RoundInfo& info) override {
    // Own cluster members (and self-image): plausible timing.
    for (int member : ctx.topo->members(ctx.cluster)) {
      if (member == ctx.self) continue;
      send_at(ctx, member, info.predicted_pulse);
    }
    // Neighbor clusters: early to lower ids, late to higher ids.
    for (int other : ctx.topo->cluster_neighbors(ctx.cluster)) {
      const double offset = other < ctx.cluster ? -offset_ : offset_;
      for (int member : ctx.topo->members(other)) {
        send_at(ctx, member, info.predicted_pulse + offset);
      }
    }
  }

 private:
  double offset_;
};

class EquivocatorStrategy final : public Strategy {
 public:
  explicit EquivocatorStrategy(double spread) : spread_(spread) {
    FTGCS_EXPECTS(spread >= 0.0);
  }

  void on_reference_round(AttackContext& ctx, const RoundInfo& info) override {
    for (int to : ctx.net->neighbors(ctx.self)) {
      const double offset = ctx.rng.uniform(-spread_ / 2.0, spread_ / 2.0);
      send_at(ctx, to, info.predicted_pulse + offset);
    }
  }

 private:
  double spread_;
};

class WindowEdgeStrategy final : public Strategy {
 public:
  explicit WindowEdgeStrategy(double amplitude) : amplitude_(amplitude) {
    FTGCS_EXPECTS(amplitude >= 0.0);
  }

  void on_reference_round(AttackContext& ctx, const RoundInfo& info) override {
    // Flip the targeted window edge every round: a steady bias would be
    // absorbed once; alternation keeps the induced correction oscillating.
    const double offset =
        (info.round % 2 == 0) ? amplitude_ : -amplitude_;
    for (int to : ctx.net->neighbors(ctx.self)) {
      send_at(ctx, to, info.predicted_pulse + offset);
    }
  }

 private:
  double amplitude_;
};

class DelayJitterStrategy final : public Strategy {
 public:
  void on_reference_round(AttackContext& ctx, const RoundInfo& info) override {
    const auto& neighbors = ctx.net->neighbors(ctx.self);
    const double d = ctx.params->d;
    const double u = ctx.params->U;
    const sim::Time at = std::max(info.predicted_pulse, ctx.sim->now());
    const int self = ctx.self;
    auto* net = ctx.net;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const int to = neighbors[i];
      const sim::Duration delay = (i % 2 == 0) ? d - u : d;
      ctx.sim->at(at, [net, self, to, delay] {
        net->unicast_with_delay(self, to, cluster_pulse(self), delay);
      });
    }
  }
};

}  // namespace

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kSilent:
      return "silent";
    case StrategyKind::kRandomPulser:
      return "random-pulser";
    case StrategyKind::kTwoFaced:
      return "two-faced";
    case StrategyKind::kClockLiar:
      return "clock-liar";
    case StrategyKind::kSkewPump:
      return "skew-pump";
    case StrategyKind::kEquivocator:
      return "equivocator";
    case StrategyKind::kWindowEdge:
      return "window-edge";
    case StrategyKind::kDelayJitter:
      return "delay-jitter";
  }
  return "?";
}

std::unique_ptr<Strategy> make_strategy(StrategyKind kind, double param) {
  switch (kind) {
    case StrategyKind::kSilent:
      return std::make_unique<SilentStrategy>();
    case StrategyKind::kRandomPulser:
      return std::make_unique<RandomPulserStrategy>(param);
    case StrategyKind::kTwoFaced:
      return std::make_unique<TwoFacedStrategy>(param);
    case StrategyKind::kClockLiar:
      return std::make_unique<ClockLiarStrategy>(param);
    case StrategyKind::kSkewPump:
      return std::make_unique<SkewPumpStrategy>(param);
    case StrategyKind::kEquivocator:
      return std::make_unique<EquivocatorStrategy>(param);
    case StrategyKind::kWindowEdge:
      return std::make_unique<WindowEdgeStrategy>(param);
    case StrategyKind::kDelayJitter:
      return std::make_unique<DelayJitterStrategy>();
  }
  FTGCS_ASSERT(false && "unknown strategy kind");
  return nullptr;
}

}  // namespace ftgcs::byz
