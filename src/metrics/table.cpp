#include "metrics/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.h"

namespace ftgcs::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FTGCS_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FTGCS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::integer(long long value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ftgcs::metrics
