// High-contention shard stress: the TSan job's main workload, and a
// normal-suite determinism pin.
//
// The scenario is built to maximize cross-shard pressure per simulated
// second, the exact opposite of the benign spatial stripes the throughput
// benchmarks use:
//
//   * clique topology — every cluster pair is adjacent, so at T shards
//     ~ (T−1)/T of all inter-cluster traffic crosses a shard boundary and
//     funnels through net::ShardRouter into the SPSC mailboxes;
//   * delay uncertainty U at half the max delay d — min_cut_delay = d−U
//     shrinks to d/2, so safe windows are tiny and the three-barrier
//     phase machinery (publish bound → merge mailboxes → run → collect)
//     cycles hundreds of times per run;
//   * full Byzantine budget, two-faced strategy in every cluster — the
//     fault-heavy cut traffic exercises the per-(src,dst) sequence
//     stamping for adversarial senders too;
//   * trace capture ON — every delivery also rides the per-shard capture
//     buffers that the collector merges at quiesced probe boundaries.
//
// Under TSan this hammers every cross-thread edge of src/par/ and the
// trace collector; in the normal suite it pins the contract those edges
// must preserve: tables AND trace bytes bit-identical to --shards 1 at
// shards {2, 4, 8}, on both queue backends.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>

#include "exp/exp.h"
#include "sim/backend.h"

namespace ftgcs {
namespace {

using exp::AxisValue;
using exp::RunResult;
using exp::ScenarioSpec;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// The high-contention spec described in the header comment.
ScenarioSpec stress_spec() {
  ScenarioSpec spec;
  spec.name = "shard_stress";
  spec.topology.kind = exp::TopologyKind::kClique;
  spec.topology.a = 8;  // 8 clusters, k = 3f+1 = 4 → 32 nodes
  spec.params.rho = 1e-3;
  spec.params.d = 1.0;
  spec.params.U = 0.5;  // min_cut_delay = d − U = 0.5: tiny safe windows
  spec.params.f = 1;
  spec.faults.mode = exp::FaultMode::kUniform;
  spec.faults.count = -1;  // full budget f in EVERY cluster
  spec.faults.strategy = byz::StrategyKind::kTwoFaced;
  spec.faults.param_times_E = 3.0;
  spec.horizon.base_rounds = 10.0;
  spec.probe_interval_rounds = 0.5;
  return spec;
}

RunResult run_stress(int shards, sim::QueueBackend engine,
                     const std::string& trace_path) {
  ScenarioSpec spec = stress_spec();
  spec.shards = shards;
  spec.engine = engine;
  spec.trace_path = trace_path;
  return run_point(spec, /*seed=*/3);
}

void expect_same_metrics(const RunResult& base, const RunResult& other,
                         const std::string& label) {
  ASSERT_EQ(base.metrics.size(), other.metrics.size()) << label;
  for (std::size_t m = 0; m < base.metrics.size(); ++m) {
    EXPECT_EQ(base.metrics[m].first, other.metrics[m].first) << label;
    EXPECT_EQ(base.metrics[m].second, other.metrics[m].second)
        << label << ": metric '" << base.metrics[m].first << "' differs";
  }
}

TEST(ShardStress, HighContentionCutTrafficBitIdenticalAcrossShards) {
  const std::string base_path = temp_path("stress_s1.ftr");
  const RunResult base =
      run_stress(1, sim::QueueBackend::kLadder, base_path);
  ASSERT_TRUE(base.trace.enabled);
  ASSERT_GT(base.trace.records, 0.0);
  const std::string base_bytes = read_file(base_path);

  for (int shards : {2, 4, 8}) {
    const std::string path =
        temp_path("stress_s" + std::to_string(shards) + ".ftr");
    const RunResult result =
        run_stress(shards, sim::QueueBackend::kLadder, path);
    const std::string label = "shards=" + std::to_string(shards);

    // The run must actually have stressed the machinery it claims to:
    // a real multi-shard partition, boundary traffic through the router
    // mailboxes, and many tiny barrier-phased windows.
    EXPECT_EQ(result.shard.shards, shards) << label;
    EXPECT_GT(result.shard.cut_edges, 0.0) << label;
    EXPECT_GT(result.shard.mailbox_peak, 0.0) << label;
    EXPECT_GE(result.shard.windows, 50.0) << label;

    expect_same_metrics(base, result, label);
    EXPECT_EQ(base_bytes, read_file(path)) << label << ": trace bytes differ";
  }
}

// The heap backend drives the same mailbox/router/collector machinery
// through its per-delivery (non-coalesced) scheduling path; one shard
// count suffices since the engines are pinned equal elsewhere.
TEST(ShardStress, HighContentionHeapBackendMatches) {
  const std::string ladder_path = temp_path("stress_heap_base.ftr");
  const std::string heap_path = temp_path("stress_heap_s4.ftr");
  const RunResult base =
      run_stress(1, sim::QueueBackend::kLadder, ladder_path);
  const RunResult heap = run_stress(4, sim::QueueBackend::kHeap, heap_path);
  EXPECT_GT(heap.shard.mailbox_peak, 0.0);
  expect_same_metrics(base, heap, "heap shards=4");
  EXPECT_EQ(read_file(ladder_path), read_file(heap_path));
}

}  // namespace
}  // namespace ftgcs
