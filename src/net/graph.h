// Cluster-level graph G = (C, E) from the paper, plus standard topology
// generators used by the experiments. Vertices are 0..n-1; the graph is
// simple and undirected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftgcs::net {

class Graph {
 public:
  explicit Graph(int n);

  int num_vertices() const { return static_cast<int>(adj_.size()); }
  std::size_t num_edges() const { return edge_count_; }

  /// Adds undirected edge {u, v}. Duplicate edges and self-loops are
  /// contract violations.
  void add_edge(int u, int v);

  bool has_edge(int u, int v) const;

  const std::vector<int>& neighbors(int v) const;
  const std::vector<std::vector<int>>& adjacency() const { return adj_; }

  bool connected() const;

  /// Hop diameter (max over all pairs of BFS distance). Requires a
  /// connected graph.
  int diameter() const;

  /// BFS distances from `source`.
  std::vector<int> bfs_distances(int source) const;

  /// BFS parent array rooted at `root` (parent[root] == -1); used by the
  /// tree-sync baselines.
  std::vector<int> bfs_tree(int root) const;

  // ---- generators -------------------------------------------------------

  static Graph line(int n);
  static Graph ring(int n);
  static Graph star(int n);    ///< vertex 0 is the hub
  static Graph clique(int n);
  static Graph grid(int width, int height);
  static Graph torus(int width, int height);
  /// Complete b-ary tree with `depth` levels below the root.
  static Graph balanced_tree(int branching, int depth);
  static Graph hypercube(int dim);
  /// Erdős–Rényi G(n, p) conditioned on connectivity: edges are resampled
  /// (new seed each attempt) until the graph is connected.
  static Graph gnp_connected(int n, double p, std::uint64_t seed);

 private:
  std::vector<std::vector<int>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace ftgcs::net
