// E10 — ablations of the design choices DESIGN.md calls out:
//
//  (a) trigger slack δ: half/normal/double the Lemma 4.8 value. Too small
//      a δ breaks faithfulness (conditions no longer imply unanimity);
//      too large a δ inflates κ and with δ ≥ κ/2 the triggers can overlap
//      (our sharpened Lemma 4.5).
//  (b) the global-skew module (Appendix C): without the catch-up rule a
//      distributed ramp below the trigger levels never drains.
//  (c) estimate initialization: replicas that must acquire the observed
//      cluster's offset from scratch vs the flooding-established estimates
//      the paper assumes.
#include "bench_util.h"

namespace {

using namespace ftgcs;

struct FaithfulnessCount {
  int checks = 0;
  int misses = 0;  ///< FC/SC held but some member not in that mode
};

struct AblationOutcome {
  bench::RampOutcome ramp;
  FaithfulnessCount faithfulness;
};

AblationOutcome run(const core::Params& params, bool global_module,
                    bool replicas_know, std::uint64_t seed) {
  const int clusters = 6;
  const int gap_rounds = 4;
  core::FtGcsSystem::Config config =
      bench::ramp_config(params, clusters, gap_rounds, seed);
  config.enable_global_module = global_module;
  config.replicas_know_offsets = replicas_know;
  core::FtGcsSystem system(net::Graph::line(clusters), std::move(config));
  metrics::SkewProbe probe(system, params.T / 4.0, 0.0);
  probe.start();
  system.start();

  AblationOutcome out;
  for (int step = 1; step <= 500; ++step) {
    system.run_until(step * params.T);
    // Faithfulness sampling (as in Definition 4.6's purpose).
    std::vector<double> clocks(clusters);
    bool all_alive = true;
    for (int c = 0; c < clusters; ++c) {
      const auto value = system.cluster_clock(c);
      if (!value) {
        all_alive = false;
        break;
      }
      clocks[c] = *value;
    }
    if (!all_alive) continue;
    const auto& graph = system.topology().cluster_graph();
    for (int c = 0; c < clusters; ++c) {
      std::vector<double> neighbors;
      for (int b : graph.neighbors(c)) neighbors.push_back(clocks[b]);
      const core::TriggerView view{clocks[c], neighbors};
      const bool fc = core::fast_condition(view, params.kappa);
      const bool sc = core::slow_condition(view, params.kappa);
      if (!fc && !sc) continue;
      ++out.faithfulness.checks;
      for (int member : system.topology().members(c)) {
        const int gamma = system.node(member).gamma();
        if ((fc && gamma != 1) || (sc && gamma != 0)) {
          ++out.faithfulness.misses;
          break;
        }
      }
    }
  }
  const auto& last = probe.samples().back();
  out.ramp.max_local = probe.overall_max().cluster_local;
  out.ramp.final_global = last.cluster_global;
  out.ramp.initial_global = (clusters - 1) * gap_rounds * params.T;
  out.ramp.violations = system.total_violations();
  return out;
}

}  // namespace

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  banner("E10", "ablations: trigger slack, global module, estimate init");

  metrics::Table table({"variant", "max local", "final global",
                        "drained", "FC/SC samples", "faithfulness misses",
                        "violations"});

  auto report = [&](const char* name, const AblationOutcome& outcome) {
    table.add_row(
        {name, metrics::Table::num(outcome.ramp.max_local, 4),
         metrics::Table::num(outcome.ramp.final_global, 4),
         outcome.ramp.final_global < 0.5 * outcome.ramp.initial_global
             ? "yes"
             : "NO",
         metrics::Table::integer(outcome.faithfulness.checks),
         metrics::Table::integer(outcome.faithfulness.misses),
         metrics::Table::integer(
             static_cast<long long>(outcome.ramp.violations))});
  };

  // (a) trigger slack sweep.
  for (double scale : {0.25, 1.0, 2.0}) {
    core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
    params.delta_trig *= scale;
    params.kappa = 3.0 * params.delta_trig;
    char name[64];
    std::snprintf(name, sizeof name, "(a) delta x%.2f (kappa=%.2f)", scale,
                  params.kappa);
    report(name, run(params, true, true, 10));
  }

  // (b) global-skew module off: the shallow ramp (below trigger levels)
  // cannot drain without the catch-up rule.
  {
    const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
    report("(b) global module ON ", run(params, true, true, 11));
    report("(b) global module OFF", run(params, false, true, 11));
  }

  // (c) replica initialization.
  {
    const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
    report("(c) replicas pre-aligned", run(params, true, true, 12));
    report("(c) replicas from zero  ", run(params, true, false, 12));
  }

  table.print(std::cout);
  std::printf("\nshape check: (a) smaller delta risks faithfulness misses; "
              "larger delta inflates local skew\nproportionally to kappa. "
              "(b) without the Appendix C module the ramp never drains. "
              "(c) zero-init\nreplicas converge eventually but transiently "
              "mis-aim the triggers.\n");
  return 0;
}
