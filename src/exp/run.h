// Scenario execution: resolve a concrete ScenarioSpec + seed into a
// ResolvedRun (built Params/Graph/FaultPlan), simulate it on a private
// Simulator, and measure a fixed schema of metrics.
//
// Everything here is deliberately free of shared state: one call = one
// simulator = one result, so a sweep runner can execute resolved runs from
// any thread and the metrics depend only on the spec and the seed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "byz/fault_plan.h"
#include "core/params.h"
#include "exp/scenario.h"
#include "net/graph.h"
#include "trace/monitor.h"

namespace ftgcs::exp {

/// A fully concrete run: specs resolved against the derived Params. Still a
/// value type (the drift model is built inside run_resolved).
struct ResolvedRun {
  core::Params params;
  net::Graph graph{1};
  ProtocolKind protocol = ProtocolKind::kFtGcs;
  sim::QueueBackend engine = sim::QueueBackend::kLadder;
  /// Conservative-parallel shard count (1 = single simulator). The
  /// effective count can be lower — see par::make_shard_plan.
  int shards = 1;
  DriftSpec drift;
  byz::FaultPlan fault_plan;
  /// kGcsBaseline fast-mode speedup (from ParamsSpec::mu; 0 → 0.05). The
  /// derived params.mu is the FT-GCS value and differs by ~50x.
  double baseline_mu = 0.0;
  int gap_rounds = 0;
  double horizon_rounds = 0.0;
  double probe_interval_rounds = 0.25;
  double steady_after_rounds = 0.0;
  bool measure_m_lag = false;
  bool replicas_know_offsets = true;
  std::uint64_t seed = 1;
  /// Streaming trace capture: path of the .ftr file to write (empty =
  /// tracing off). FT-GCS runs only; the GCS baseline ignores it.
  std::string trace_path;
  /// Deterministic metrics series: JSONL path (empty = off) + the
  /// PATH.profile wall-clock sidecar. FT-GCS runs only.
  std::string metrics_path;
  /// Online invariant monitors (default ON; probe-tier cost only).
  bool monitors = true;
};

/// One completed run: the axis assignments that produced it plus an ordered
/// metric list (fixed schema; see run.cpp for the catalogue).
struct RunResult {
  std::string scenario;
  /// (axis name, display value) pairs, in grid order.
  std::vector<std::pair<std::string, std::string>> point;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, double>> metrics;

  /// Event-queue tier diagnostics of the run's simulator. Deterministic,
  /// but engine-dependent — kept out of `metrics` so every sink's output
  /// stays bit-identical between `--engine heap` and `--engine ladder`;
  /// the `--timing` footer aggregates them instead.
  struct QueueTiers {
    double bucket_count = 0.0;   ///< widest calendar window built
    double rung_spawns = 0.0;    ///< overflowing buckets split on drain
    double overflow_peak = 0.0;  ///< overflow-tier occupancy high-water mark
    double reseeds = 0.0;        ///< windows rebuilt from the overflow tier
    // Batch-channel run lengths: events drained in sorted batch runs vs
    // through the time-partitioned (unordered, below-horizon) drain.
    double unordered_runs = 0.0;    ///< partitioned drains that emitted
    double unordered_events = 0.0;  ///< events drained below the horizon
    double ordered_run_events = 0.0;  ///< events drained in sorted runs
    // Bytes-per-event split (EventQueue narrow delivery lane).
    double narrow_events = 0.0;   ///< 16 B narrow deliveries scheduled
    double wide_events = 0.0;     ///< 32 B entries scheduled
    double group_inserts = 0.0;   ///< coalesced fan-out groups created
  };
  QueueTiers queue;

  /// Sharded-backend diagnostics (kept out of `metrics` for the same
  /// reason: tables stay bit-identical at every `--shards T`, so the
  /// partition geometry is `--timing` footer material, not a metric).
  /// All zero when the run used the single-simulator engine.
  struct ShardDiag {
    double shards = 0.0;         ///< effective shard count (0 = unsharded)
    double cut_edges = 0.0;      ///< directed node edges crossing the cut
    double min_cut_delay = 0.0;  ///< conservative lookahead (d − u)
    double windows = 0.0;        ///< safe windows executed
    double mailbox_peak = 0.0;   ///< max cross-shard merge at one barrier
  };
  ShardDiag shard;

  /// Online invariant-monitor report. Footer material for the same reason
  /// as the diagnostics above: the monitors observe the same ground truth
  /// on every backend, but their report stays out of `metrics` so the
  /// tables cannot change shape when monitors are toggled.
  struct MonitorReport {
    bool enabled = false;
    trace::MonitorBounds bounds;
    trace::InvariantMonitor::Stats stats;
  };
  MonitorReport monitor;

  /// Trace-capture summary (all zero when tracing was off).
  struct TraceInfo {
    bool enabled = false;
    std::string path;
    double records = 0.0;
    double bytes = 0.0;
  };
  TraceInfo trace;

  /// Deterministic metrics-series summary (all zero when --metrics was
  /// off). `probes`/`bytes` are themselves deterministic: the series is
  /// byte-identical across engines and shard counts.
  struct SeriesInfo {
    bool enabled = false;
    std::string path;
    double probes = 0.0;
    double bytes = 0.0;
  };
  SeriesInfo series;

  /// Wall-clock phase-profiler summary (PATH.profile sidecar). Timing is
  /// machine-dependent — footer material only, never a metric. Phase
  /// totals stay zero for unsharded runs (spans still cover setup/run/
  /// collect).
  struct ProfileInfo {
    bool enabled = false;
    double shards = 0.0;
    double merge_ms = 0.0;
    double run_ms = 0.0;
    double wait_ms = 0.0;
    double imbalance = 0.0;  ///< max/mean per-shard run-phase time
  };
  ProfileInfo profile;

  bool has_metric(const std::string& name) const;
  double metric(const std::string& name) const;  ///< aborts if missing
  void set_metric(const std::string& name, double value);
};

/// Resolves spec (with axes already applied) + seed. The initial global skew
/// needed by HorizonSpec is the analytic ramp height (|C|−1)·gap·T.
ResolvedRun resolve(const ScenarioSpec& spec, std::uint64_t seed);

/// Simulates one resolved run and measures metrics.
RunResult run_resolved(const ResolvedRun& run);

/// resolve() + run_resolved().
RunResult run_point(const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace ftgcs::exp
