#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ftgcs::sim {
namespace {

// Every queue-contract test runs against both backends: the ladder
// (calendar) front-end must be observably indistinguishable from the
// 4-ary-heap reference.
class EventQueueTest : public ::testing::TestWithParam<QueueBackend> {
 protected:
  EventQueue q{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueTest,
                         ::testing::Values(QueueBackend::kHeap,
                                           QueueBackend::kLadder),
                         [](const auto& suite_info) {
                           return std::string(
                               queue_backend_name(suite_info.param));
                         });

TEST_P(EventQueueTest, FiresInTimeOrder) {
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, EqualTimesFireFifo) {
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(EventQueueTest, CancelPreventsFiring) {
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST_P(EventQueueTest, CancelIsIdempotent) {
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST_P(EventQueueTest, CancelledHeadDoesNotBlockNextTime) {
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST_P(EventQueueTest, NextTimeOnEmptyIsInfinity) {
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST_P(EventQueueTest, SizeTracksLiveEvents) {
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, PopReturnsTimeAndId) {
  const EventId id = q.schedule(7.5, [] {});
  const auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.at, 7.5);
  EXPECT_EQ(fired.id, id);
}

TEST_P(EventQueueTest, CancelAfterFireIsNoOp) {
  int fired = 0;
  const EventId id = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [] {});
  q.pop().fn();
  EXPECT_EQ(fired, 1);
  // The id is spent; cancelling it must not touch the remaining event.
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST_P(EventQueueTest, SlotReuseInvalidatesOldIds) {
  // ABA guard: after an event fires, its pool slot is recycled; a handle
  // from the old generation must neither cancel nor alias the new event.
  const EventId old_id = q.schedule(1.0, [] {});
  q.pop();
  EXPECT_TRUE(q.empty());

  bool second_fired = false;
  const EventId new_id = q.schedule(2.0, [&] { second_fired = true; });
  // The pool recycled the slot (same index), so the ids share the slot
  // half but differ in generation.
  EXPECT_EQ(old_id.value >> 32, new_id.value >> 32);
  EXPECT_NE(old_id.value, new_id.value);
  EXPECT_FALSE(q.cancel(old_id));  // stale generation: rejected
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(second_fired);
}

TEST_P(EventQueueTest, TypedEventsCarryPayloadAndFifoOrder) {
  for (int i = 0; i < 5; ++i) {
    EventPayload payload;
    payload.a = i;
    payload.x = 0.5 * i;
    q.schedule_typed(3.0, EventKind::kPulse, 7, payload);
  }
  for (int i = 0; i < 5; ++i) {
    const auto fired = q.pop();
    EXPECT_EQ(fired.kind, EventKind::kPulse);
    EXPECT_EQ(fired.sink, 7u);
    EXPECT_EQ(fired.payload.a, i);  // equal times: scheduling order
    EXPECT_DOUBLE_EQ(fired.payload.x, 0.5 * i);
    EXPECT_FALSE(fired.fn);
  }
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, RescheduleMatchesCancelPlusScheduleOrder) {
  // A rescheduled event must tie-break as if it had been cancelled and
  // re-scheduled: after everything already sitting at the target time.
  EventPayload payload;
  payload.a = 1;
  const EventId moved = q.schedule_typed(9.0, EventKind::kTimer, 0, payload);
  payload.a = 2;
  q.schedule_typed(5.0, EventKind::kTimer, 0, payload);
  EXPECT_TRUE(q.reschedule(moved, 5.0));
  EXPECT_EQ(q.pop().payload.a, 2);  // was at 5.0 first
  EXPECT_EQ(q.pop().payload.a, 1);  // the moved event fires after
}

TEST_P(EventQueueTest, RescheduleOfDeadIdFails) {
  const EventId id = q.schedule_typed(1.0, EventKind::kTimer, 0, {});
  q.pop();
  EXPECT_FALSE(q.reschedule(id, 2.0));
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, TypedPathDoesNotAllocateAfterWarmup) {
  // Steady-state schedule/fire cycles must reuse pooled slots: the pool
  // high-water mark stays at the warm-up size.
  for (int i = 0; i < 64; ++i) {
    q.schedule_typed(static_cast<Time>(i), EventKind::kPulse, 0, {});
  }
  const std::size_t warm = q.pool_size();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 32; ++i) q.pop();
    for (int i = 0; i < 32; ++i) {
      q.schedule_typed(1000.0 + round, EventKind::kPulse, 0, {});
    }
  }
  EXPECT_EQ(q.pool_size(), warm);
}

TEST_P(EventQueueTest, InterleavedScheduleCancelStress) {
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<Time>(i % 100), [&] { ++fired; }));
  }
  // Cancel every third event.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired + cancelled, 1000);
  EXPECT_EQ(cancelled, 334);
}

TEST_P(EventQueueTest, FireOnlyEventsInterleaveInFifoOrder) {
  // Fire-only events share the sequence space with cancellable ones: at
  // equal times they fire in exact scheduling order, and their Fired.id
  // is the null id (there is nothing to cancel).
  EventPayload payload;
  payload.a = 1;
  q.schedule_typed(5.0, EventKind::kTimer, 0, payload);
  payload.a = 2;
  q.schedule_fire_only(5.0, EventKind::kPulse, 3, payload);
  payload.a = 3;
  q.schedule_typed(5.0, EventKind::kTimer, 0, payload);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload.a, 1);
  const auto fired = q.pop();
  EXPECT_EQ(fired.payload.a, 2);
  EXPECT_EQ(fired.kind, EventKind::kPulse);
  EXPECT_EQ(fired.sink, 3u);
  if (GetParam() == QueueBackend::kLadder) {
    EXPECT_FALSE(fired.id);  // inline entries carry no handle
  }
  EXPECT_EQ(q.pop().payload.a, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueLadder, FireOnlyPathTouchesNoSlotPool) {
  EventQueue q(QueueBackend::kLadder);
  for (int i = 0; i < 100; ++i) {
    q.schedule_fire_only(static_cast<Time>(i), EventKind::kPulse, 0, {});
  }
  EXPECT_EQ(q.pool_size(), 0u);  // no slot was ever acquired
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(q.pop().at, static_cast<Time>(i));
  }
  EXPECT_TRUE(q.empty());
}

// ---- ladder-specific behaviour ---------------------------------------------

TEST(EventQueueLadder, FarFutureEventsCrossTheOverflowTier) {
  // A population far beyond the first calendar window must survive the
  // horizon rollover: the window drains, reseeds around the far cohort,
  // and pops continue in exact order.
  EventQueue q(QueueBackend::kLadder);
  std::vector<double> expected;
  for (int i = 0; i < 200; ++i) {
    const double near = 1.0 + 0.01 * i;
    EventPayload payload;
    payload.x = near;
    q.schedule_typed(near, EventKind::kTimer, 0, payload);
    expected.push_back(near);
  }
  // First pop builds the window around the near cohort…
  const auto first = q.pop();
  EXPECT_DOUBLE_EQ(first.at, 1.0);
  // …so the far cohort lands beyond its horizon, in the overflow tier,
  // and draining the window must reseed a second one around it.
  for (int i = 0; i < 200; ++i) {
    const double far = 1e6 + 0.01 * (200 - i);
    EventPayload payload;
    payload.x = far;
    q.schedule_typed(far, EventKind::kTimer, 0, payload);
    expected.push_back(far);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(expected.begin());  // the one already popped
  for (double t : expected) {
    ASSERT_FALSE(q.empty());
    const auto fired = q.pop();
    EXPECT_DOUBLE_EQ(fired.at, t);
    EXPECT_DOUBLE_EQ(fired.payload.x, t);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_GE(q.tier_stats().reseeds, 2u);
  EXPECT_GT(q.tier_stats().overflow_peak, 0u);
}

TEST(EventQueueLadder, SkewedBucketSpawnsARung) {
  // Thousands of events landing in one bucket (identical-ish times next to
  // one far outlier that stretches the window) must trigger the rung split
  // and still fire in FIFO order.
  EventQueue q(QueueBackend::kLadder);
  for (int i = 0; i < 6000; ++i) {
    EventPayload payload;
    payload.a = i;
    q.schedule_typed(5.0 + 1e-7 * (i % 10), EventKind::kTimer, 0, payload);
  }
  q.schedule_typed(1e9, EventKind::kTimer, 0, {});
  int last_tag[10] = {-1, -1, -1, -1, -1, -1, -1, -1, -1, -1};
  for (int i = 0; i < 6000; ++i) {
    const auto fired = q.pop();
    const int lane = fired.payload.a % 10;
    EXPECT_GT(fired.payload.a, last_tag[lane]);  // FIFO within equal times
    last_tag[lane] = fired.payload.a;
  }
  EXPECT_DOUBLE_EQ(q.pop().at, 1e9);
  EXPECT_GT(q.tier_stats().rung_spawns, 0u);
}

TEST_P(EventQueueTest, InfiniteTimesPopLastInFifoOrder) {
  // kTimeInfinity is a legal scheduling time; it must sort after every
  // finite event and FIFO among itself, on both backends (the ladder's
  // window math clamps infinite offsets into the last bucket).
  EventPayload payload;
  payload.a = 1;
  q.schedule_typed(kTimeInfinity, EventKind::kTimer, 0, payload);
  payload.a = 2;
  q.schedule_typed(3.0, EventKind::kTimer, 0, payload);
  payload.a = 3;
  q.schedule_typed(kTimeInfinity, EventKind::kTimer, 0, payload);
  payload.a = 4;
  q.schedule_typed(1.0, EventKind::kTimer, 0, payload);
  EXPECT_EQ(q.pop().payload.a, 4);
  // Schedule more finite work after a pop (the ladder has a window now).
  payload.a = 5;
  q.schedule_typed(7.0, EventKind::kTimer, 0, payload);
  EXPECT_EQ(q.pop().payload.a, 2);
  EXPECT_EQ(q.pop().payload.a, 5);
  const auto first_inf = q.pop();
  EXPECT_EQ(first_inf.payload.a, 1);
  EXPECT_EQ(first_inf.at, kTimeInfinity);
  EXPECT_EQ(q.pop().payload.a, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueLadder, IdenticalTimestampsDegenerateWindow) {
  // Zero time span: the width floor keeps indices finite and order FIFO.
  EventQueue q(QueueBackend::kLadder);
  for (int i = 0; i < 300; ++i) {
    EventPayload payload;
    payload.a = i;
    q.schedule_typed(42.0, EventKind::kTimer, 0, payload);
  }
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(q.pop().payload.a, i);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace ftgcs::sim
