#include "clocks/drift_model.h"

#include <cmath>
#include <numbers>

#include "support/assert.h"

namespace ftgcs::clocks {

void ConstantDrift::install(sim::Simulator& simulator,
                            std::vector<RateSink> sinks) {
  const sim::Time now = simulator.now();
  const std::size_t n = sinks.size();
  for (std::size_t i = 0; i < n; ++i) {
    double rate;
    if (spread_) {
      rate = n > 1 ? 1.0 + rho_ * static_cast<double>(i) /
                               static_cast<double>(n - 1)
                   : 1.0 + rho_ / 2.0;
    } else {
      rate = rng_.uniform(1.0, 1.0 + rho_);
    }
    sinks[i](now, rate);
  }
}

void RandomWalkDrift::install(sim::Simulator& simulator,
                              std::vector<RateSink> sinks) {
  FTGCS_EXPECTS(interval_ > 0.0);
  sinks_ = std::move(sinks);
  rates_.resize(sinks_.size());
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    rates_[i] = rng_.uniform(1.0, 1.0 + rho_);
    sinks_[i](now, rates_[i]);
  }
  simulator.after(interval_, [this, &simulator] { tick(simulator); });
}

void RandomWalkDrift::tick(sim::Simulator& simulator) {
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    double r = rates_[i] + rng_.uniform(-step_, step_);
    // Reflect into the envelope [1, 1+rho].
    if (r < 1.0) r = 2.0 - r;
    if (r > 1.0 + rho_) r = 2.0 * (1.0 + rho_) - r;
    if (r < 1.0) r = 1.0;  // pathological step size > rho
    rates_[i] = r;
    sinks_[i](now, r);
  }
  simulator.after(interval_, [this, &simulator] { tick(simulator); });
}

void SinusoidalDrift::install(sim::Simulator& simulator,
                              std::vector<RateSink> sinks) {
  FTGCS_EXPECTS(period_ > 0.0 && sample_ > 0.0);
  sinks_ = std::move(sinks);
  phases_.resize(sinks_.size());
  for (auto& phase : phases_) phase = rng_.next_double();
  tick(simulator);
}

void SinusoidalDrift::tick(sim::Simulator& simulator) {
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    const double arg =
        2.0 * std::numbers::pi * (now / period_ + phases_[i]);
    const double rate = 1.0 + rho_ / 2.0 + (rho_ / 2.0) * std::sin(arg);
    sinks_[i](now, rate);
  }
  simulator.after(sample_, [this, &simulator] { tick(simulator); });
}

void SpatialSplitDrift::install(sim::Simulator& simulator,
                                std::vector<RateSink> sinks) {
  FTGCS_EXPECTS(sinks.size() == group_.size());
  sinks_ = std::move(sinks);
  apply(simulator, /*flipped=*/false);
}

void SpatialSplitDrift::apply(sim::Simulator& simulator, bool flipped) {
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    const bool first_side = group_[i] < boundary_;
    const bool fast = first_side != flipped;
    sinks_[i](now, fast ? 1.0 + rho_ : 1.0);
  }
  if (flip_every_ > 0.0) {
    simulator.after(flip_every_, [this, &simulator, flipped] {
      apply(simulator, !flipped);
    });
  }
}

void ScheduledDrift::install(sim::Simulator& simulator,
                             std::vector<RateSink> sinks) {
  FTGCS_EXPECTS(initial_.size() == sinks.size());
  sinks_ = std::move(sinks);
  const sim::Time now = simulator.now();
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    sinks_[i](now, initial_[i]);
  }
  for (const Change& change : script_) {
    FTGCS_EXPECTS(change.node < sinks_.size());
    simulator.at(change.at, [this, change] {
      sinks_[change.node](change.at, change.rate);
    });
  }
}

}  // namespace ftgcs::clocks
