// Hardware clock model (paper §2, "Timing and clocks").
//
// H_v(t) = ∫₀ᵗ h_v(τ) dτ with 1 ≤ h_v(t) ≤ 1+ρ for correct nodes. We model
// h_v as piecewise constant: the clock stores (t₀, H₀, rate) and integrates
// in closed form. Drift models change the rate through set_rate(), which
// first advances the accumulated value so history is never rewritten.
//
// Byzantine nodes may carry rates outside [1, 1+ρ]; the envelope is
// enforced by the drift model for correct nodes, not by this class, so the
// same substrate serves both.
#pragma once

#include "sim/time_types.h"

namespace ftgcs::clocks {

class HardwareClock {
 public:
  /// Starts at time `t0` with value `h0` and rate `rate`.
  explicit HardwareClock(sim::Time t0 = 0.0, double h0 = 0.0,
                         double rate = 1.0);

  /// H_v(now). Requires now >= the time of the last rate change.
  double read(sim::Time now) const;

  /// Current rate h_v.
  double rate() const { return rate_; }

  /// Changes the rate at time `now` (piecewise-constant segment boundary).
  void set_rate(sim::Time now, double rate);

  /// Inverts the clock: the Newtonian time at which the clock reaches
  /// `target` assuming the current rate persists. Requires
  /// target >= read(now).
  sim::Time when_reaches(double target, sim::Time now) const;

 private:
  sim::Time t0_;   // time of last rate change
  double h0_;      // H(t0_)
  double rate_;    // current rate
};

}  // namespace ftgcs::clocks
