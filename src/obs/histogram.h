// Fixed-bucket log-linear histogram for the deterministic metrics plane.
//
// Bucket boundaries are computed ONCE at construction from a plain-data
// Spec — linear buckets of width `linear_width` up to `linear_max`, then
// geometric buckets growing by `growth` up to `max`, then one overflow
// bucket — so the mapping from value to bucket is a pure function of the
// spec, independent of insertion order, engine, shard count, or platform
// (the boundary array is derived by the same IEEE-754 operations
// everywhere). Percentiles are read as bucket upper bounds (clipped to
// the exact running maximum), which keeps them deterministic too: a
// percentile is a property of the bucket counts, never of a sort.
//
// record() is allocation-free and branch-light (binary search over the
// precomputed boundaries); clear() resets the counts without touching
// capacity, so a histogram registered at setup samples forever without
// allocating — the ScopedAllocGuard pin in tests/test_obs_metrics.cpp
// holds the subsystem to that.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/assert.h"

namespace ftgcs::obs {

class LogLinearHistogram {
 public:
  struct Spec {
    double linear_width = 1e-4;  ///< bucket width of the linear section
    double linear_max = 1e-2;    ///< last linear boundary (exclusive)
    double growth = 1.5;         ///< geometric factor past linear_max
    double max = 1e3;            ///< first boundary >= max ends the table
  };

  explicit LogLinearHistogram(const Spec& spec) : spec_(spec) {
    FTGCS_EXPECTS(spec.linear_width > 0.0);
    FTGCS_EXPECTS(spec.linear_max > spec.linear_width);
    FTGCS_EXPECTS(spec.growth > 1.0);
    FTGCS_EXPECTS(spec.max > spec.linear_max);
    // boundaries_[i] is the EXCLUSIVE upper bound of bucket i; the last
    // real bucket is followed by one overflow bucket for values >= the
    // final boundary.
    for (double b = spec.linear_width; b < spec.linear_max;
         b += spec.linear_width) {
      boundaries_.push_back(b);
    }
    double b = spec.linear_max;
    while (b < spec.max) {
      boundaries_.push_back(b);
      b *= spec.growth;
    }
    boundaries_.push_back(b);  // first boundary >= max
    counts_.assign(boundaries_.size() + 1, 0);
  }

  /// Bucket index of `value`: the first bucket whose upper bound exceeds
  /// it (values below zero clamp into bucket 0, values at or past the
  /// last boundary land in the overflow bucket).
  std::size_t bucket_index(double value) const {
    const auto it =
        std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
    return static_cast<std::size_t>(it - boundaries_.begin());
  }

  void record(double value) {
    ++counts_[bucket_index(value)];
    ++count_;
    if (value > max_seen_) max_seen_ = value;
  }

  /// Resets counts and the running max; capacity (and the boundary table)
  /// stay untouched, so a cleared histogram records without allocating.
  void clear() {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    max_seen_ = 0.0;
  }

  /// Upper-bound estimate of the p-quantile (0 < p <= 1): the upper
  /// boundary of the bucket holding the ceil(p * count)-th smallest
  /// sample, clipped to the exact running maximum (so percentile(1.0)
  /// is exact and an overflow bucket reads as the max, not infinity).
  /// Returns 0 for an empty histogram.
  double percentile(double p) const {
    if (count_ == 0) return 0.0;
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               p * static_cast<double>(count_) + 0.999999999999));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cumulative += counts_[i];
      if (cumulative >= rank) {
        const double upper = i < boundaries_.size()
                                 ? boundaries_[i]
                                 : max_seen_;  // overflow bucket
        return std::min(upper, max_seen_);
      }
    }
    return max_seen_;
  }

  std::uint64_t count() const { return count_; }
  double max_seen() const { return max_seen_; }
  std::size_t num_buckets() const { return counts_.size(); }
  const std::vector<double>& boundaries() const { return boundaries_; }
  const Spec& spec() const { return spec_; }

 private:
  Spec spec_;
  std::vector<double> boundaries_;   ///< exclusive upper bounds, ascending
  std::vector<std::uint64_t> counts_;  ///< boundaries_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double max_seen_ = 0.0;
};

}  // namespace ftgcs::obs
