// E6 — Theorem C.3 / Lemmas C.1–C.2: the global-skew module keeps the
// global cluster skew within O(δ·D).
//
// Two directions, each a registered scenario:
//  (a) e6_global_skew_drain — start with global skew far ABOVE the bound
//      (steep ramp) and verify the system drives it into the c·δ·D band;
//  (b) e6_split_drift_containment — start synchronized under worst-case
//      split drift and verify the band is never left; also reports the M_v
//      estimate lag against the Lemma C.2 shape.
#include "bench_util.h"

#include <thread>

#include "exp/exp.h"

int main() {
  using namespace ftgcs;

  exp::register_builtin_scenarios();
  const exp::Registry& registry = exp::Registry::instance();
  exp::SweepRunner runner(
      {static_cast<int>(std::thread::hardware_concurrency())});

  const core::Params params =
      registry.find("e6_global_skew_drain")->params.build();
  bench::banner("E6", "global skew O(delta*D) (Theorem C.3) and M_v lag "
                      "(Lemma C.2)");
  std::printf("delta=%.4f c_global=%.1f predicted band: %.4f * D\n\n",
              params.delta_trig, params.c_global,
              params.c_global * params.delta_trig);

  exp::TableSink sink;
  std::printf("-- (a) contraction from 3x the band --\n");
  sink.write(runner.run(*registry.find("e6_global_skew_drain")), std::cout);

  std::printf("\n-- (b) containment under split drift --\n");
  sink.write(runner.run(*registry.find("e6_split_drift_containment")),
             std::cout);
  std::printf("\nshape check: table (a) drains into the linear-in-D band; "
              "(b) never leaves it; the\nM_v lag grows at most linearly "
              "in D (Lemma C.2's O(delta*D)).\n");
  return 0;
}
