#include "net/graph.h"

#include <algorithm>
#include <queue>

#include "sim/rng.h"
#include "support/assert.h"

namespace ftgcs::net {

Graph::Graph(int n) : adj_(static_cast<std::size_t>(n)) {
  FTGCS_EXPECTS(n >= 0);
}

void Graph::add_edge(int u, int v) {
  FTGCS_EXPECTS(u >= 0 && u < num_vertices());
  FTGCS_EXPECTS(v >= 0 && v < num_vertices());
  FTGCS_EXPECTS(u != v);
  FTGCS_EXPECTS(!has_edge(u, v));
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++edge_count_;
}

bool Graph::has_edge(int u, int v) const {
  FTGCS_EXPECTS(u >= 0 && u < num_vertices());
  const auto& nb = adj_[u];
  return std::find(nb.begin(), nb.end(), v) != nb.end();
}

const std::vector<int>& Graph::neighbors(int v) const {
  FTGCS_EXPECTS(v >= 0 && v < num_vertices());
  return adj_[v];
}

std::vector<int> Graph::bfs_distances(int source) const {
  FTGCS_EXPECTS(source >= 0 && source < num_vertices());
  std::vector<int> dist(adj_.size(), -1);
  std::queue<int> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (int w : adj_[u]) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (num_vertices() == 0) return true;
  const auto dist = bfs_distances(0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

int Graph::diameter() const {
  FTGCS_EXPECTS(connected());
  int diameter = 0;
  for (int v = 0; v < num_vertices(); ++v) {
    const auto dist = bfs_distances(v);
    diameter = std::max(diameter, *std::max_element(dist.begin(), dist.end()));
  }
  return diameter;
}

std::vector<int> Graph::bfs_tree(int root) const {
  FTGCS_EXPECTS(root >= 0 && root < num_vertices());
  std::vector<int> parent(adj_.size(), -2);
  std::queue<int> frontier;
  parent[root] = -1;
  frontier.push(root);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (int w : adj_[u]) {
      if (parent[w] == -2) {
        parent[w] = u;
        frontier.push(w);
      }
    }
  }
  return parent;
}

Graph Graph::line(int n) {
  FTGCS_EXPECTS(n >= 1);
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph Graph::ring(int n) {
  FTGCS_EXPECTS(n >= 3);
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Graph Graph::star(int n) {
  FTGCS_EXPECTS(n >= 2);
  Graph g(n);
  for (int i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph Graph::clique(int n) {
  FTGCS_EXPECTS(n >= 1);
  Graph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) g.add_edge(i, j);
  return g;
}

Graph Graph::grid(int width, int height) {
  FTGCS_EXPECTS(width >= 1 && height >= 1);
  Graph g(width * height);
  auto id = [width](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) g.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) g.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return g;
}

Graph Graph::torus(int width, int height) {
  FTGCS_EXPECTS(width >= 3 && height >= 3);
  Graph g(width * height);
  auto id = [width](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      g.add_edge(id(x, y), id((x + 1) % width, y));
      g.add_edge(id(x, y), id(x, (y + 1) % height));
    }
  }
  return g;
}

Graph Graph::balanced_tree(int branching, int depth) {
  FTGCS_EXPECTS(branching >= 1 && depth >= 0);
  // Number of vertices: (b^(depth+1) - 1) / (b - 1), or depth+1 for b == 1.
  std::size_t n = 1;
  std::size_t level_size = 1;
  for (int level = 0; level < depth; ++level) {
    level_size *= static_cast<std::size_t>(branching);
    n += level_size;
  }
  Graph g(static_cast<int>(n));
  // Children of vertex v are b*v + 1 ... b*v + b (heap layout).
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int c = 1; c <= branching; ++c) {
      const long long child = static_cast<long long>(branching) * v + c;
      if (child < g.num_vertices()) g.add_edge(v, static_cast<int>(child));
    }
  }
  return g;
}

Graph Graph::hypercube(int dim) {
  FTGCS_EXPECTS(dim >= 0 && dim <= 20);
  const int n = 1 << dim;
  Graph g(n);
  for (int v = 0; v < n; ++v) {
    for (int b = 0; b < dim; ++b) {
      const int w = v ^ (1 << b);
      if (v < w) g.add_edge(v, w);
    }
  }
  return g;
}

Graph Graph::gnp_connected(int n, double p, std::uint64_t seed) {
  FTGCS_EXPECTS(n >= 1);
  FTGCS_EXPECTS(p > 0.0 && p <= 1.0);
  sim::Rng rng(seed);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Graph g(n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.chance(p)) g.add_edge(i, j);
    if (g.connected()) return g;
  }
  FTGCS_ASSERT(false && "gnp_connected: could not sample a connected graph");
  return Graph(0);
}

}  // namespace ftgcs::net
