#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ftgcs::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledHeadDoesNotBlockNextTime) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, NextTimeOnEmptyIsInfinity) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const EventId id = q.schedule(7.5, [] {});
  const auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.at, 7.5);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, InterleavedScheduleCancelStress) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<Time>(i % 100), [&] { ++fired; }));
  }
  // Cancel every third event.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired + cancelled, 1000);
  EXPECT_EQ(cancelled, 334);
}

}  // namespace
}  // namespace ftgcs::sim
