// Seeded violations for the no-wall-clock rule in src/obs/: a wall-clock
// read feeding the DETERMINISTIC metrics series is exactly the plane
// violation the obs/ scope exists to catch (a timestamp in the series
// would differ run-to-run and break the engine/shard byte-identity CI
// compare). Named `sampler.cpp` to mirror the real deterministic-plane
// file — only obs/phase_profiler.cpp is carved out, so this MUST be
// flagged. The unordered-iteration seed checks obs/ is also in the
// output-feeding scope.
#include <chrono>
#include <string>
#include <unordered_map>

namespace fixture {

double sample_row_timestamp() {
  auto t = std::chrono::steady_clock::now();    // EXPECT-LINT: no-wall-clock
  return static_cast<double>(t.time_since_epoch().count());
}

double sum_fields(const std::unordered_map<std::string, double>& fields) {
  double sum = 0.0;
  for (const auto& kv : fields) {  // EXPECT-LINT: no-unordered-iteration
    sum += kv.second;
  }
  return sum;
}

}  // namespace fixture
