#include "trace/reader.h"

#include <cstring>
#include <stdexcept>

namespace ftgcs::trace {

namespace {

bool get_u32(std::FILE* file, std::uint32_t& out) {
  std::uint8_t bytes[4];
  if (std::fread(bytes, 1, sizeof bytes, file) != sizeof bytes) return false;
  out = static_cast<std::uint32_t>(bytes[0]) |
        static_cast<std::uint32_t>(bytes[1]) << 8 |
        static_cast<std::uint32_t>(bytes[2]) << 16 |
        static_cast<std::uint32_t>(bytes[3]) << 24;
  return true;
}

bool get_u64(std::FILE* file, std::uint64_t& out) {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (!get_u32(file, lo) || !get_u32(file, hi)) return false;
  out = static_cast<std::uint64_t>(hi) << 32 | lo;
  return true;
}

}  // namespace

TraceReader::TraceReader(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("trace: cannot open '" + path + "'");
  }
  char magic[kMagicBytes];
  if (std::fread(magic, 1, kMagicBytes, file_) != kMagicBytes ||
      std::memcmp(magic, kMagic, kMagicBytes) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("trace: '" + path + "' is not a trace file");
  }
  frame_file_offset_ = kMagicBytes;
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceReader::fail(const std::string& what) const {
  throw std::runtime_error("trace: '" + path_ + "' at offset " +
                           std::to_string(offset()) + ": " + what);
}

bool TraceReader::load_frame() {
  frame_file_offset_ += frame_.size();
  std::uint32_t length = 0;
  std::uint32_t count = 0;
  if (!get_u32(file_, length) || !get_u32(file_, count)) {
    frame_.clear();
    cursor_ = 0;
    fail("truncated frame header");
  }
  frame_file_offset_ += 8;
  if (length == 0) {  // end marker; the trailer must match
    frame_.clear();
    cursor_ = 0;
    std::uint64_t total = 0;
    if (count != 0 || !get_u64(file_, total)) fail("truncated trailer");
    if (total != records_read_) {
      fail("trailer count " + std::to_string(total) + " != " +
           std::to_string(records_read_) + " records decoded");
    }
    done_ = true;
    return false;
  }
  frame_.resize(length);
  cursor_ = 0;
  if (std::fread(frame_.data(), 1, length, file_) != length) {
    fail("truncated frame payload");
  }
  if (count == 0) fail("non-empty frame with zero record count");
  frame_records_left_ = count;
  return true;
}

std::uint64_t TraceReader::read_varint() {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (cursor_ >= frame_.size()) fail("varint overruns frame");
    const std::uint8_t byte = frame_[cursor_++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  fail("varint longer than 10 bytes");
}

bool TraceReader::next(Record& out) {
  if (done_) return false;
  if (frame_records_left_ == 0) {
    if (cursor_ != frame_.size()) fail("trailing bytes in frame");
    if (!load_frame()) return false;
  }
  out.seq = records_read_;
  out.offset = offset();
  if (cursor_ >= frame_.size()) fail("record overruns frame");
  out.kind = frame_[cursor_++];
  out.sender = static_cast<std::int32_t>(unzigzag(read_varint()));
  out.dest = static_cast<std::int32_t>(unzigzag(read_varint()));
  prev_time_bits_ ^= read_varint();
  out.at = bits_time(prev_time_bits_);
  out.level = kind_has_level(out.kind)
                  ? static_cast<std::int32_t>(unzigzag(read_varint()))
                  : 0;
  if (kind_has_value(out.kind)) {
    if (cursor_ + 8 > frame_.size()) fail("value bits overrun frame");
    std::uint64_t bits = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      bits |= static_cast<std::uint64_t>(frame_[cursor_++]) << shift;
    }
    out.value = bits_time(bits);
  } else {
    out.value = 0.0;
  }
  --frame_records_left_;
  ++records_read_;
  return true;
}

}  // namespace ftgcs::trace
