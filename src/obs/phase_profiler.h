// PhaseProfiler: the nondeterministic sidecar plane (PATH.profile).
//
// Two kinds of rows, both kept strictly OUT of the deterministic series:
//
//   * "diag" rows — per-probe queue-tier occupancy/byte mix (TierStats)
//     and per-shard mailbox depth / cut-edge traffic. These are
//     deterministic for a fixed configuration but DEPEND on the engine
//     and the shard count (narrow vs wide mix differs heap-vs-ladder,
//     mailbox depth differs by T), so they can never live in the file
//     that is byte-compared across engines × shards.
//   * "phase"/"span"/"summary" rows — wall-clock timing: per-shard
//     accumulated merge ∥ run ∥ collect(wait) phase totals around the
//     three-barrier windows of par::ShardedFtGcsSystem, top-level
//     setup/run/collect spans, and the load-imbalance ratio
//     (max/mean per-shard run-phase time) the work-stealing ROADMAP
//     item needs as its baseline.
//
// This header deliberately contains no clock types: timestamps cross the
// API as uint64 nanoseconds and the only wall-clock reads in src/obs/
// live in phase_profiler.cpp — the single sanctioned site the
// determinism lint's obs clock ban carves out (see
// scripts/lint/ftgcs_lint.py and its fixtures).
//
// Threading: phase_begin/phase_end are called by shard workers on their
// own shard slot only (the slots are cache-line separated); the driver
// reads totals after the workers park at a barrier or join, so the
// barrier's happens-before covers the unsynchronized accumulators —
// the same discipline the mailbox lanes use.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace ftgcs::obs {

/// Per-shard cross-window diagnostics snapshot for one "diag" row.
struct ShardWindowDiag {
  std::uint64_t routed = 0;        ///< cut-edge messages delivered INTO
                                   ///< this shard so far
  std::uint64_t mailbox_peak = 0;  ///< deepest single-barrier merge
  std::uint64_t fired = 0;         ///< events fired by this shard's sim
};

class PhaseProfiler {
 public:
  enum class Phase { kMerge = 0, kRun = 1, kCollect = 2 };

  /// Opens `path` and writes the sidecar header row.
  explicit PhaseProfiler(const std::string& path);
  ~PhaseProfiler();

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Sizes the per-shard slots; call before workers start (re-binding
  /// resets the accumulators).
  void bind_shards(int shards);

  /// Worker-side phase timers (shard in [0, shards)). kMerge covers
  /// mailbox drain + cross-shard posts, kRun covers run_until, kCollect
  /// covers the finish-barrier wait — idle time that IS the imbalance.
  void phase_begin(int shard, Phase phase);
  void phase_end(int shard, Phase phase);

  /// Counts one safe window against the shard (call once per window).
  void count_window(int shard);

  /// Driver-side top-level spans ("setup", "run", "collect"); at most
  /// kMaxSpans distinct names, nesting by name.
  void span_begin(const char* name);
  void span_end(const char* name);

  /// Appends one "diag" row (driver-side, at a quiesced probe boundary).
  void probe_diag(double at, const sim::EventQueue::TierStats& tiers,
                  const std::vector<ShardWindowDiag>& shards);

  /// Writes the "phase"/"summary"/"span" rows and closes the file
  /// (idempotent; also run by the dtor). Call after workers joined.
  void finish();

  /// max/mean per-shard run-phase time; 0 until >= 1 shard has run time.
  double imbalance() const;

  struct PhaseTotals {
    double merge_ms = 0.0;
    double run_ms = 0.0;
    double collect_ms = 0.0;
  };
  /// Summed over shards (driver-side, after workers parked).
  PhaseTotals totals() const;

  int shards() const { return static_cast<int>(slots_.size()); }

 private:
  static constexpr int kNumPhases = 3;
  static constexpr int kMaxSpans = 8;

  struct alignas(64) ShardSlot {
    std::uint64_t start_ns[kNumPhases] = {0, 0, 0};
    std::uint64_t total_ns[kNumPhases] = {0, 0, 0};
    std::uint64_t windows = 0;
  };

  struct Span {
    const char* name = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t total_ns = 0;
  };

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<ShardSlot> slots_;
  Span spans_[kMaxSpans];
  int num_spans_ = 0;
  std::string line_;  ///< reused row buffer (nondet plane: no alloc pin)
};

}  // namespace ftgcs::obs
