// ClusterSync — Algorithm 1 of the paper (Lynch–Welch with amortized
// corrections), usable in two modes:
//
//  * active  — a cluster member: broadcasts a pulse each round and applies
//              the approximate-agreement correction to its logical clock.
//  * passive — the estimate of Corollary 3.5: a node adjacent to a cluster
//              simulates ClusterSync, listening to the cluster's pulses
//              without sending; its logical clock is the estimate L̃.
//
// Round structure (logical durations; r counts from 1, round r starts at
// logical time (r−1)·T):
//   phase 1 [0, τ1):        δ_v = 1; at logical offset τ1 broadcast pulse
//   phase 2 [τ1, τ1+τ2):    collect pulses; at the end compute
//                           ∆_v(r) = (S^(f+1) + S^(k−f)) / 2
//   phase 3 [τ1+τ2, T):     δ_v = 1 − (1+1/ϕ)·∆/(τ3+∆)  (Lemma 3.1:
//                           the nominal round length becomes T + ∆)
//
// Offsets are measured in the node's own logical time relative to the
// arrival of its own pulse: τ_wv = L_v(t_wv) − L_v(t_vv) (Algorithm 1
// line 10). A passive engine has no physical loopback; it simulates one
// with a delay drawn from the same [d−U, d] interval.
//
// Robustness rules (behaviour under faults, not specified by the
// pseudo-code but required for a running system):
//  * only pulses arriving during phases 1–2 of the current round count;
//    later ones are dropped and counted (`dropped_pulses`);
//  * the first pulse per member per round wins; duplicates are counted;
//  * members whose pulse is missing at the end of phase 2 are clamped to
//    the end of the collection window (the latest time the pulse could
//    still arrive), which lands them in the trimmed top-f after sorting;
//  * if |∆| > ϕ·τ3 (proper-execution condition 3 of Def. B.3 violated —
//    possible only under over-budget attacks), ∆ is clamped and a
//    violation is counted, keeping δ_v within [0, 2/(1−ϕ)] (Lemma B.4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "clocks/logical_clock.h"
#include "clocks/logical_timer.h"
#include "core/receive_lane.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ftgcs::core {

struct ClusterSyncConfig {
  double tau1 = 0.0;
  double tau2 = 0.0;
  double tau3 = 0.0;
  double phi = 0.0;
  double mu = 0.0;
  int f = 0;          ///< trim budget
  int k = 1;          ///< cluster size (number of expected senders)
  bool active = true; ///< false: passive estimate (Corollary 3.5)
  double d = 0.0;     ///< channel delay bound (passive loopback simulation)
  double U = 0.0;     ///< channel uncertainty (passive loopback simulation)

  /// First round executed at start(). A value m+1 starts the logical clock
  /// at m·T — used to initialize a cluster with a logical offset that is a
  /// whole number of rounds (experiments on skew absorption; models the
  /// paper's "newly inserted edges" initialization variant).
  int start_round = 1;
};

class ClusterSyncEngine final : public clocks::LogicalTimerSet::Client,
                                public sim::EventSink {
 public:
  /// `loopback_rng` is used only in passive mode (virtual self-delay).
  ClusterSyncEngine(sim::Simulator& simulator, const ClusterSyncConfig& cfg,
                    double initial_hardware_rate, sim::Rng loopback_rng);

  ClusterSyncEngine(const ClusterSyncEngine&) = delete;
  ClusterSyncEngine& operator=(const ClusterSyncEngine&) = delete;

  /// Begins round 1 at the current simulation time (assumed to be the
  /// global start; the paper assumes simultaneous initialization).
  void start();

  /// Delivers the round pulse of cluster member `member_index` (0-based
  /// within the observed cluster). In active mode the engine's own pulse
  /// arrives here too (loopback), with `member_index` = own index.
  void on_member_pulse(int member_index, sim::Time now);

  /// The engine's logical clock: L_v for active mode, the estimate L̃ for
  /// passive mode.
  clocks::LogicalClock& clock() { return clock_; }
  const clocks::LogicalClock& clock() const { return clock_; }

  /// Forwards a hardware-rate change to the logical clock.
  void set_hardware_rate(sim::Time now, double rate) {
    clock_.set_hardware_rate(now, rate);
  }

  /// Current round (1-based; 0 before start()).
  int round() const { return round_; }

  /// True while in phases 1–2 of the current round (collecting pulses).
  bool listening() const { return lane_->listening != 0; }

  /// Logical time at which the current round began: (r−1)·T (Lemma B.6).
  double round_start_logical() const { return round_start_logical_; }

  double round_length() const { return cfg_.tau1 + cfg_.tau2 + cfg_.tau3; }

  // ---- hooks --------------------------------------------------------------
  /// Invoked at each round start, after δ_v ← 1 and before timers are
  /// armed. The intercluster layer sets γ_v here (Algorithm 2).
  std::function<void(int round)> on_round_start;

  /// Active mode: invoked at the pulse instant; the owner broadcasts the
  /// physical pulse here. Passive mode: invoked at the simulated pulse
  /// instant p̃ (no send).
  std::function<void(int round, sim::Time now)> on_pulse;

  /// Invoked after the phase-2 computation with the correction ∆_v(r)
  /// (pre-clamping) and whether the proper-execution condition |∆| ≤ ϕ·τ3
  /// was violated.
  std::function<void(int round, double delta_corr, bool violated)>
      on_correction;

  // ---- statistics ----------------------------------------------------------
  std::uint64_t violations() const { return violations_; }
  std::uint64_t dropped_pulses() const { return lane_->dropped; }
  std::uint64_t duplicate_pulses() const { return lane_->duplicates; }
  double last_correction() const { return last_correction_; }

  /// Armed logical timers (diagnostics; 0 after halt()).
  std::size_t armed_timers() const { return timers_.armed_count(); }

  /// Rounds that closed with fewer than k−f member pulses received: a
  /// correct, synchronized cluster always delivers at least k−f, so a
  /// starved round means this node has fallen out of the round structure
  /// (e.g. a transient fault beyond the proper-execution margins). The
  /// plain algorithm cannot re-acquire on its own — that is what the
  /// self-stabilizing wrapper of [8] adds — but the condition is
  /// detectable, and this counter surfaces it.
  std::uint64_t starved_rounds() const { return starved_rounds_; }

  /// Index of this node within the observed cluster (active mode only);
  /// set by the owner before start(). Passive mode ignores it.
  void set_own_index(int index) {
    own_index_ = index;
    if (cfg_.active) lane_->own_index = index;
  }

  /// Relocates the engine's hot receive state into externally owned
  /// storage (the system's columnar NodeTable): current lane contents and
  /// arrival slots are copied over, and the engine — and its clock mirror
  /// — operate on the new location from here on. Must be called before
  /// start(); the storage must outlive the engine.
  void adopt_lane(ReceiveLane* lane, double* arrivals);

  /// Read-only view of the hot receive state (diagnostics/tests).
  const ReceiveLane& lane() const { return *lane_; }

  /// Crash-stop: cancels all pending timers and the passive loopback in
  /// flight and closes the collection window. After halt() the engine
  /// schedules nothing and ignores every pulse (counted as dropped by the
  /// dispatch layers); the logical clock stays readable.
  void halt();

  /// FAULT-INJECTION HOOK (tests/experiments only): models a transient
  /// fault (bit flip, SEU) that corrupts the logical clock by `offset`.
  /// The protocol itself never jumps (eq. 2 is continuous); recovery
  /// happens through the ordinary correction path — the contraction the
  /// self-stabilizing variant of [8] builds on. Perturbations beyond the
  /// proper-execution margins are *not* guaranteed to recover (the full
  /// [8] stabilization machinery is out of scope).
  void inject_transient_fault(sim::Time now, double offset) {
    clock_.jump(now, clock_.read(now) + offset);
  }

  /// Typed timer fires (round pulse / phase-2 end / round end).
  void on_logical_timer(clocks::LogicalTimerSet::Key key) override;

  /// Typed simulator events: the passive replica's simulated loopback
  /// arrival (kPulse, payload.a = round it was emitted in).
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;

 private:
  enum TimerKey : clocks::LogicalTimerSet::Key {
    kPulseTimer = 1,
    kPhaseTwoEndTimer = 2,
    kRoundEndTimer = 3,
  };

  void begin_round(int r);
  void pulse_instant(sim::Time now);
  void end_phase_two(sim::Time now);
  double compute_correction();

  sim::Simulator& sim_;
  ClusterSyncConfig cfg_;
  clocks::LogicalClock clock_;
  clocks::LogicalTimerSet timers_;
  sim::Rng loopback_rng_;
  sim::SinkId self_ = sim::kInvalidSink;  ///< passive loopback events

  int own_index_ = 0;
  int round_ = 0;
  double round_start_logical_ = 0.0;

  /// Hot receive state (listening flag, clock mirror, arrival slots).
  /// Points at local_lane_ until NodeTable adoption moves it into the
  /// columnar bank; all engine code goes through this pointer.
  ReceiveLane* lane_ = &local_lane_;
  ReceiveLane local_lane_;
  std::vector<double> local_arrivals_;

  sim::EventId pending_loopback_{};  ///< passive simulated self-pulse
  std::vector<double> offsets_buf_;  ///< reused by compute_correction

  std::uint64_t violations_ = 0;
  std::uint64_t starved_rounds_ = 0;
  double last_correction_ = 0.0;
};

}  // namespace ftgcs::core
