#include "core/params.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/assert.h"

namespace ftgcs::core {

namespace {

/// α of eq. (11), simplified: (6ϑ²+5ϑ−9)/(2(ϑ+1)) + (ϑ−1)/ϕ.
double alpha_of(double theta, double phi) {
  return (6.0 * theta * theta + 5.0 * theta - 9.0) / (2.0 * (theta + 1.0)) +
         (theta - 1.0) / phi;
}

/// β of eq. (11).
double beta_of(double theta, double phi, double d, double U) {
  return (3.0 * theta - 1.0 + (theta - 1.0) / phi) * U + (theta - 1.0) * d;
}

/// Claim B.15 / eq. (12): recurrence for executions whose nominal rates lie
/// in [ζ, ζ·ϑ], with round lengths chosen per eq. (4).
RoundRecurrence recurrence_of(double zeta, double theta, double zeta_max,
                              double theta_g, double c1, double d, double U) {
  const double gamma = (zeta_max / zeta) * (theta_g / theta) * (theta - 1.0);
  RoundRecurrence rec;
  if (gamma >= 1.0) {  // analysis degenerate; flagged by caller
    rec.alpha = std::numeric_limits<double>::infinity();
    rec.beta = std::numeric_limits<double>::infinity();
    return rec;
  }
  rec.alpha = (2.0 * theta * theta + 5.0 * theta - 5.0) /
                  (2.0 * (theta + 1.0) * (1.0 - gamma)) +
              gamma / (1.0 - gamma) * (1.0 + c1);
  rec.beta = gamma / (1.0 - gamma) * d +
             1.0 / (1.0 - gamma) * ((3.0 * theta - 1.0) + gamma * c1) * U;
  return rec;
}

}  // namespace

void Params::derive() {
  FTGCS_EXPECTS(rho > 0.0 && d > 0.0 && U >= 0.0 && U <= d);
  FTGCS_EXPECTS(f >= 0);
  FTGCS_EXPECTS(mu > 0.0 && phi > 0.0 && phi < 1.0);

  k = 3 * f + 1;
  c1 = 1.0 / phi;
  c2 = mu / rho;

  theta_g = (1.0 + rho) * (1.0 + mu);
  theta_max = (1.0 + 2.0 * phi / (1.0 - phi)) * (1.0 + mu) * (1.0 + rho);

  // Reference values of eq. (11) — the recurrence for the *unscaled*
  // windows of eq. (10). NOTE: eq. (10)/(5) omits the ζ_max = (1+ϕ)(1+µ)
  // factor that eq. (4) carries on every phase duration. That omission is
  // benign only when ϕ, µ = O(ρ) (the asymptotic regime of Theorem 1.1);
  // for any ϕ that is not vanishing, phases 1–2 are consumed at logical
  // rate (1+ϕ)(1+µγ)h and an eq. (10) window is too short by exactly that
  // factor — round-r pulses then arrive after the collection window ends.
  // We therefore use eq. (4) verbatim for the actual protocol windows
  // below, with E the fixed point of the matching Claim B.15 recurrence.
  alpha = alpha_of(theta_g, phi);
  beta = beta_of(theta_g, phi, d, U);

  // Unanimous-cluster analysis (Claim B.15). ζ_max = (1+ϕ)(1+µ); the
  // general execution has nominal rates in [1, ϑ_g]; unanimous fast/slow
  // executions have rates in [ζ, ζ(1+ρ)] with ζ = ζ_max or (1+ϕ).
  const double zeta_max = (1.0 + phi) * (1.0 + mu);
  const double theta_u = 1.0 + rho;
  rec_general = recurrence_of(1.0, theta_g, zeta_max, theta_g, c1, d, U);
  rec_fast = recurrence_of(zeta_max, theta_u, zeta_max, theta_g, c1, d, U);
  rec_slow = recurrence_of(1.0 + phi, theta_u, zeta_max, theta_g, c1, d, U);

  E = rec_general.contracting() ? rec_general.fixed_point() : 0.0;

  // Eq. (4): τ1 = ζ_max·ϑ_g·E, τ2 = ζ_max·ϑ_g·(E+d),
  //          τ3 = c1·ζ_max·ϑ_g·(E+U) with c1 = 1/ϕ.
  tau1 = zeta_max * theta_g * E;
  tau2 = zeta_max * theta_g * (E + d);
  tau3 = c1 * zeta_max * theta_g * (E + U);
  T = tau1 + tau2 + tau3;

  // Unanimity horizon k of Lemma 3.6: rounds of unanimity needed for the
  // pulse diameter to fall from 2·e_g^∞ to within 2·e_f^∞, iterating the
  // unanimous (fast — the slower-converging of the two) recurrence.
  unanimity_analysis_valid =
      rec_fast.contracting() && rec_slow.contracting();
  if (unanimity_analysis_valid) {
    const double start = rec_general.contracting()
                             ? 2.0 * rec_general.fixed_point()
                             : 2.0 * E;
    const double target_fast = 2.0 * rec_fast.fixed_point();
    const double target_slow = 2.0 * rec_slow.fixed_point();
    double e_fast = start;
    double e_slow = start;
    int rounds = 0;
    while ((e_fast > target_fast || e_slow > target_slow) && rounds < 64) {
      e_fast = rec_fast.iterate(e_fast);
      e_slow = rec_slow.iterate(e_slow);
      ++rounds;
    }
    k_unanimity = rounds;
  } else {
    k_unanimity = 8;  // conservative default when (12) is not contracting
  }

  delta_trig = (k_unanimity + 5.0) * E;
  kappa = 3.0 * delta_trig;
}

Params Params::paper_strict(double rho, double d, double U, int f) {
  Params p;
  p.rho = rho;
  p.d = d;
  p.U = U;
  p.f = f;
  p.eps = 1.0 / 4096.0;
  p.c2 = 32.0;
  p.mu = p.c2 * rho;
  // eq. (5): c1 = ((1/2) − ε) / (1 + c2) · 1/ρ, ϕ = 1/c1.
  const double c1 = (0.5 - p.eps) / (1.0 + p.c2) / rho;
  p.phi = 1.0 / c1;
  p.derive();
  return p;
}

Params Params::practical(double rho, double d, double U, int f) {
  Params p;
  p.rho = rho;
  p.d = d;
  p.U = U;
  p.f = f;
  p.eps = 0.0;
  p.c2 = 32.0;
  p.mu = p.c2 * rho;
  // Choose the smallest ϕ whose general-execution recurrence (Claim B.15
  // with ζ = 1, ϑ = ϑ_g) contracts with margin: α ≤ 0.8. Smaller ϕ keeps
  // the logical-rate envelope ϑ_max tame.
  const double alpha_target = 0.8;
  const double theta = (1.0 + rho) * (1.0 + p.mu);
  const double zeta_probe_base = 1.0 + p.mu;
  double chosen = 0.0;
  for (double phi = 0.01; phi <= 0.95; phi += 0.005) {
    const double zeta_max = (1.0 + phi) * zeta_probe_base;
    const double gamma = zeta_max * (theta - 1.0);
    if (gamma >= 1.0) continue;
    const double alpha12 =
        (2.0 * theta * theta + 5.0 * theta - 5.0) /
            (2.0 * (theta + 1.0) * (1.0 - gamma)) +
        gamma / (1.0 - gamma) * (1.0 + 1.0 / phi);
    if (alpha12 <= alpha_target) {
      chosen = phi;
      break;
    }
  }
  FTGCS_EXPECTS(chosen > 0.0);  // ρ too large for the construction
  p.phi = chosen;
  p.derive();
  return p;
}

Params Params::custom(double rho, double d, double U, int f, double mu,
                      double phi) {
  Params p;
  p.rho = rho;
  p.d = d;
  p.U = U;
  p.f = f;
  p.mu = mu;
  p.phi = phi;
  p.derive();
  return p;
}

Params Params::with_cluster_size(int cluster_size) const {
  FTGCS_EXPECTS(cluster_size >= 3 * f + 1);
  Params p = *this;
  p.k = cluster_size;
  return p;
}

bool Params::feasible() const {
  return rec_general.contracting() && phi > 0.0 && phi < 1.0 && E > 0.0 &&
         delta_trig < 2.0 * kappa && mu_bar() > rho_bar() && k >= 3 * f + 1;
}

std::string Params::feasibility_report() const {
  std::ostringstream os;
  os << "alpha(12) < 1:      "
     << (rec_general.contracting() ? "ok" : "VIOLATED")
     << " (alpha_12 = " << rec_general.alpha << ", eq.11 alpha = " << alpha
     << ")\n";
  os << "0 < phi < 1:        "
     << (phi > 0.0 && phi < 1.0 ? "ok" : "VIOLATED") << " (phi = " << phi
     << ")\n";
  os << "delta < 2*kappa:    "
     << (delta_trig < 2.0 * kappa ? "ok" : "VIOLATED") << " (delta = "
     << delta_trig << ", kappa = " << kappa << ")\n";
  os << "mu_bar > rho_bar:   " << (mu_bar() > rho_bar() ? "ok" : "VIOLATED")
     << " (mu_bar = " << mu_bar() << ", rho_bar = " << rho_bar() << ")\n";
  os << "k >= 3f+1:          " << (k >= 3 * f + 1 ? "ok" : "VIOLATED")
     << " (k = " << k << ", f = " << f << ")\n";
  os << "unanimous analysis: "
     << (unanimity_analysis_valid ? "contracting"
                                  : "NOT CONTRACTING (k defaulted)")
     << "\n";
  return os.str();
}

double Params::predicted_local_skew(double global_skew) const {
  FTGCS_EXPECTS(global_skew >= 0.0);
  const double base = gcs_base();
  if (global_skew <= kappa || base <= 1.0) return kappa;
  const double levels = std::ceil(std::log(global_skew / kappa) /
                                  std::log(base));
  return kappa * (levels + 1.0);
}

std::string Params::summary() const {
  std::ostringstream os;
  os << "inputs:  rho=" << rho << " d=" << d << " U=" << U << " f=" << f
     << " k=" << k << "\n";
  os << "chosen:  mu=" << mu << " phi=" << phi << " c1=" << c1
     << " c2=" << c2 << "\n";
  os << "cluster: theta_g=" << theta_g << " theta_max=" << theta_max
     << " alpha12=" << rec_general.alpha << " beta12=" << rec_general.beta
     << " E=" << E << "\n";
  os << "rounds:  tau1=" << tau1 << " tau2=" << tau2 << " tau3=" << tau3
     << " T=" << T << "\n";
  os << "unanim:  k=" << k_unanimity
     << " e_inf_general=" << (rec_general.contracting()
                                  ? rec_general.fixed_point()
                                  : -1.0)
     << " e_inf_fast=" << (rec_fast.contracting() ? rec_fast.fixed_point()
                                                  : -1.0)
     << " e_inf_slow=" << (rec_slow.contracting() ? rec_slow.fixed_point()
                                                  : -1.0)
     << "\n";
  os << "gcs:     delta=" << delta_trig << " kappa=" << kappa
     << " rho_bar=" << rho_bar() << " mu_bar=" << mu_bar()
     << " base=" << gcs_base() << "\n";
  os << "bounds:  intra_cluster=" << intra_cluster_skew_bound()
     << " max_rate=" << max_logical_rate() << "\n";
  return os.str();
}

double cluster_failure_probability(int f, double p) {
  FTGCS_EXPECTS(f >= 0);
  FTGCS_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;  // all 3f+1 members fail; 3f+1 > f
  const int n = 3 * f + 1;
  // P[X > f] for X ~ Binomial(n, p), computed stably via log terms.
  double total = 0.0;
  for (int i = f + 1; i <= n; ++i) {
    double log_term = std::lgamma(n + 1.0) - std::lgamma(i + 1.0) -
                      std::lgamma(n - i + 1.0);
    if (p > 0.0) log_term += i * std::log(p);
    if (p < 1.0) log_term += (n - i) * std::log1p(-p);
    if (p == 0.0 && i > 0) continue;
    total += std::exp(log_term);
  }
  return total;
}

double cluster_failure_bound(int f, double p) {
  return std::pow(3.0 * std::exp(1.0) * p, f + 1);
}

}  // namespace ftgcs::core
