// E5 — the motivating comparison (§1, cf. [15]): master/slave tree
// synchronization compresses a distributed global skew onto a single
// edge as its correction wave propagates; FT-GCS keeps every edge within
// the gradient bound while draining the same skew.
//
// Identical scenario for all three algorithms: a line with the global
// skew evenly distributed (ramp), benign drift and delays.
#include "baselines/cluster_tree_sync.h"
#include "baselines/tree_sync.h"
#include "bench_util.h"

namespace {

using namespace ftgcs;

struct Outcome {
  double initial_local = 0.0;
  double initial_global = 0.0;
  double max_local = 0.0;
  double final_global = 0.0;
};

Outcome run_cluster_tree(const core::Params& params, int clusters,
                         int gap_rounds, double rounds, std::uint64_t seed) {
  baselines::ClusterTreeSystem::Config config;
  config.params = params;
  config.seed = seed;
  for (int c = 0; c < clusters; ++c) {
    config.cluster_round_offsets.push_back(c * gap_rounds);
  }
  baselines::ClusterTreeSystem system(net::Graph::line(clusters),
                                      std::move(config));
  Outcome outcome;
  outcome.initial_local = gap_rounds * params.T;
  outcome.initial_global = (clusters - 1) * gap_rounds * params.T;
  system.start();
  const double step = params.T / 8.0;
  for (double t = step; t <= rounds * params.T; t += step) {
    system.run_until(t);
    outcome.max_local =
        std::max(outcome.max_local, system.cluster_local_skew());
  }
  outcome.final_global = system.cluster_global_skew();
  return outcome;
}

Outcome run_node_tree(int nodes, double gap, double horizon,
                      std::uint64_t seed) {
  baselines::TreeSyncSystem::Config config;
  config.rho = 1e-3;
  config.d = 1.0;
  config.U = 0.01;
  config.share_period = 4.0;
  config.seed = seed;
  for (int i = 0; i < nodes; ++i) {
    config.initial_logical.push_back(i * gap);
  }
  baselines::TreeSyncSystem system(net::Graph::line(nodes),
                                   std::move(config));
  Outcome outcome;
  outcome.initial_local = gap;
  outcome.initial_global = (nodes - 1) * gap;
  system.start();
  for (double t = 0.25; t <= horizon; t += 0.25) {
    system.run_until(t);
    outcome.max_local = std::max(outcome.max_local, system.local_skew());
  }
  outcome.final_global = system.global_skew();
  return outcome;
}

}  // namespace

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  banner("E5",
         "skew compression: tree sync vs FT-GCS on a distributed ramp");

  const int clusters = 8;
  const int gap_rounds = 4;

  metrics::Table table({"algorithm", "init local", "init global",
                        "max local seen", "max local / init global",
                        "final global"});

  // Node-level master/slave (pulse echo), same relative ramp.
  const Outcome tree = run_node_tree(clusters, gap_rounds * params.T, 120.0,
                                     3);
  table.add_row({"tree sync (node-level)",
                 metrics::Table::num(tree.initial_local, 4),
                 metrics::Table::num(tree.initial_global, 4),
                 metrics::Table::num(tree.max_local, 4),
                 metrics::Table::num(tree.max_local / tree.initial_global,
                                     3),
                 metrics::Table::num(tree.final_global, 4)});

  // Fault-tolerant clustered master/slave ("simplistic approach").
  const Outcome cluster_tree =
      run_cluster_tree(params, clusters, gap_rounds, 100.0, 3);
  table.add_row({"cluster tree (FT master/slave)",
                 metrics::Table::num(cluster_tree.initial_local, 4),
                 metrics::Table::num(cluster_tree.initial_global, 4),
                 metrics::Table::num(cluster_tree.max_local, 4),
                 metrics::Table::num(
                     cluster_tree.max_local / cluster_tree.initial_global, 3),
                 metrics::Table::num(cluster_tree.final_global, 4)});

  // FT-GCS on the same ramp.
  const RampOutcome gcs =
      run_ramp(params, clusters, gap_rounds, 700.0, 3);
  table.add_row({"FT-GCS (this paper)",
                 metrics::Table::num(gap_rounds * params.T, 4),
                 metrics::Table::num(gcs.initial_global, 4),
                 metrics::Table::num(gcs.max_local, 4),
                 metrics::Table::num(gcs.max_local / gcs.initial_global, 3),
                 metrics::Table::num(gcs.final_global, 4)});

  table.print(std::cout);
  std::printf("\nshape check: both tree variants see a max edge skew close "
              "to the FULL initial global skew\n(the compression wave); "
              "FT-GCS never lets an edge exceed ~its initial gap while "
              "draining.\nTree sync drains fast but violates local "
              "gradients; FT-GCS drains at rate ~mu keeping them.\n");
  return 0;
}
