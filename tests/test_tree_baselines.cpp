// Tree-synchronization baselines: node-level master/slave (TreeSyncSystem)
// and the fault-tolerant clustered variant (ClusterTreeSystem). Verifies
// the behaviour the paper's introduction attributes to them: good global
// skew, no local-skew guarantee (compression of the global skew onto a
// single edge when a correction wave propagates).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cluster_tree_sync.h"
#include "baselines/tree_sync.h"
#include "net/graph.h"

namespace ftgcs::baselines {
namespace {

TEST(TreeSync, ConvergesFromZeroState) {
  TreeSyncSystem::Config config;
  config.rho = 1e-3;
  config.d = 1.0;
  config.U = 0.1;
  config.share_period = 2.0;
  config.seed = 1;
  TreeSyncSystem system(net::Graph::line(6), std::move(config));
  system.start();
  system.run_until(200.0);
  // Steady state: per-hop error ≤ U/2 + drift over one period + delay;
  // global ≤ depth times that.
  EXPECT_LE(system.global_skew(), 6.0 * (0.05 + 1e-3 * 3.0 + 0.01));
}

TEST(TreeSync, ParentPointersFollowBfs) {
  TreeSyncSystem::Config config;
  config.rho = 1e-3;
  config.d = 1.0;
  config.U = 0.1;
  config.share_period = 2.0;
  TreeSyncSystem system(net::Graph::line(4), std::move(config));
  EXPECT_EQ(system.parent_of(0), -1);
  EXPECT_EQ(system.parent_of(1), 0);
  EXPECT_EQ(system.parent_of(3), 2);
}

TEST(TreeSync, CompressionWaveConcentratesGlobalSkew) {
  // The paper's claim (§1, cf. [15]): start with the global skew evenly
  // distributed over the line (per-edge gap g, global skew S = (n−1)·g).
  // As the master/slave correction wave sweeps the line, node i jumps to
  // the root's level while node i+1 still holds the old ramp value: the
  // wavefront edge carries ≈ i·g — approaching the FULL global skew on a
  // single edge.
  const int n = 9;
  const double gap = 5.0;
  TreeSyncSystem::Config config;
  config.rho = 1e-4;
  config.d = 1.0;
  config.U = 0.05;
  config.share_period = 4.0;
  config.seed = 2;
  for (int i = 0; i < n; ++i) {
    config.initial_logical.push_back(i * gap);  // root lowest
  }
  TreeSyncSystem system(net::Graph::line(n), std::move(config));
  const double initial_global = (n - 1) * gap;

  system.start();
  double worst_local = 0.0;
  for (int step = 1; step <= 400; ++step) {
    system.run_until(step * 0.25);
    worst_local = std::max(worst_local, system.local_skew());
  }
  // The wave compresses most of the global skew onto single edges.
  EXPECT_GE(worst_local, 0.7 * initial_global);
  // And the system does converge globally afterwards.
  system.run_until(400.0);
  EXPECT_LE(system.global_skew(), 1.0);
}

core::Params tree_params() {
  return core::Params::practical(1e-3, 1.0, 0.01, 1);
}

TEST(ClusterTree, ConvergesAndBoundsGlobalSkew) {
  ClusterTreeSystem::Config config;
  config.params = tree_params();
  config.seed = 3;
  ClusterTreeSystem system(net::Graph::line(5), std::move(config));
  system.start();
  system.run_until(50.0 * tree_params().T);
  EXPECT_LE(system.cluster_global_skew(),
            5.0 * tree_params().intra_cluster_skew_bound());
  EXPECT_EQ(system.total_violations(), 0u);
}

TEST(ClusterTree, ToleratesFFaultsPerCluster) {
  const core::Params params = tree_params();
  net::AugmentedTopology topo_probe(net::Graph::line(4), params.k);
  ClusterTreeSystem::Config config;
  config.params = params;
  config.seed = 4;
  config.fault_plan = byz::FaultPlan::uniform(
      topo_probe, params.f, byz::StrategyKind::kTwoFaced, 2.0 * params.E, 4);
  ClusterTreeSystem system(net::Graph::line(4), std::move(config));
  system.start();
  system.run_until(50.0 * params.T);
  // Slaved clusters still track their parents within a few E.
  EXPECT_LE(system.cluster_local_skew(), params.kappa);
}

TEST(ClusterTree, RampCompressesOntoSingleClusterEdge) {
  // Clustered version of the compression experiment: with jump-corrections
  // toward the parent cluster, the absorption wave concentrates skew.
  const core::Params params = tree_params();
  const int clusters = 6;
  const int gap_rounds = 3;
  ClusterTreeSystem::Config config;
  config.params = params;
  config.seed = 5;
  for (int c = 0; c < clusters; ++c) {
    config.cluster_round_offsets.push_back(c * gap_rounds);
  }
  ClusterTreeSystem system(net::Graph::line(clusters), std::move(config));
  const double initial_global = (clusters - 1) * gap_rounds * params.T;
  const double initial_local = gap_rounds * params.T;

  system.start();
  double worst_local = 0.0;
  for (int step = 1; step <= 300; ++step) {
    system.run_until(step * params.T / 4.0);
    worst_local = std::max(worst_local, system.cluster_local_skew());
  }
  // Local skew grows well beyond the initial per-edge gap — the tree has
  // no gradient property (unlike FT-GCS on the same scenario, see
  // test_ftgcs_system.cpp).
  EXPECT_GE(worst_local, 1.5 * initial_local);
  EXPECT_GE(worst_local, 0.4 * initial_global);
}

}  // namespace
}  // namespace ftgcs::baselines
