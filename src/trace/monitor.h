// Always-on online invariant monitors.
//
// InvariantMonitor keeps running estimates of the quantities the paper
// bounds — node-local skew (per augmented edge), node-global skew,
// intra-cluster skew, and the max-estimate lag M_v − L_v — and checks each
// probe's value against the predicted bound (κ-family local bound,
// c·δ·D global bound, 2ϑ_g·E intra-cluster bound, Lemma C.2 lag
// envelope). The FIRST violating probe is flagged with a replayable
// cursor: simulation time, engine event count, and the byte offset into
// the trace file at which replay would resume (when tracing is on).
//
// The skew scan is an INDEPENDENT reimplementation of the ground truth:
// it takes the edge-by-edge maximum over the node-level adjacency of the
// resolved exp::TopologyGraph rather than metrics::measure_skews'
// cluster-extreme reduction. Over the augmented graph (intra-cluster
// cliques + complete bipartite bundles) the two are provably equal, which
// tests/test_trace_monitor.cpp checks at every probe — a genuine
// cross-check, not a tautology.
//
// Cost: one O(V + E_aug) scan per probe, no allocation after the first
// (scratch vectors are reused) — O(1) amortized per simulated event at
// the default probe cadence, which is what lets the monitors default ON.
#pragma once

#include <cstdint>

#include "core/node_table.h"
#include "exp/topology_graph.h"
#include "sim/time_types.h"

namespace ftgcs::trace {

/// Predicted bounds the monitors check against; a non-positive entry
/// disables that invariant (e.g. m_lag when the global module is off).
struct MonitorBounds {
  double local_skew = 0.0;     ///< core::Params::predicted_local_skew(S)
  double global_skew = 0.0;    ///< core::Params::predicted_global_skew(D)
  double intra_cluster = 0.0;  ///< core::Params::intra_cluster_skew_bound()
  double m_lag = 0.0;          ///< Lemma C.2 envelope for M_v − L_v
};

/// A replayable position in the run: where a violation (or probe) sits in
/// simulated time, in the engine's event stream, and in the trace file.
struct MonitorCursor {
  sim::Time at = 0.0;
  std::uint64_t events = 0;        ///< engine events executed so far
  std::uint64_t trace_records = 0; ///< records committed to the trace
  std::uint64_t trace_offset = 0;  ///< byte offset for replay; 0 = no trace
};

struct Violation {
  const char* invariant = "";  ///< "local_skew" | "global_skew" |
                               ///< "intra_cluster" | "m_lag"
  double value = 0.0;
  double bound = 0.0;
  MonitorCursor cursor;
};

class InvariantMonitor {
 public:
  struct Stats {
    std::uint64_t probes = 0;
    std::uint64_t violations = 0;  ///< probe × invariant exceedances
    double max_local_skew = 0.0;
    double max_global_skew = 0.0;
    double max_intra_cluster = 0.0;
    double max_m_lag = 0.0;
    bool has_violation = false;
    Violation first;  ///< valid iff has_violation
  };

  /// Copies the resolved topology (the monitor outlives probe scratch and
  /// must not dangle into the run's resolution state).
  InvariantMonitor(exp::TopologyGraph graph, MonitorBounds bounds);

  /// One probe: scans the columnar snapshot (crashed nodes carry
  /// columns.correct == 0 and are excluded from every aggregate, exactly
  /// as the ground-truth measurement excludes them) and checks the skew
  /// bounds against this probe's values.
  void observe(const core::SystemColumns& columns,
               const MonitorCursor& cursor);

  /// Max-estimate lag max_v (M_v(t) − L_v(t)) at the same probe, fed
  /// separately because M_v is only defined with the global module on.
  void observe_m_lag(double max_lag, const MonitorCursor& cursor);

  const Stats& stats() const { return stats_; }
  const MonitorBounds& bounds() const { return bounds_; }

  /// bound − running max; how much headroom survived the run. Meaningless
  /// (returns +inf) when the invariant is disabled.
  double local_margin() const;
  double global_margin() const;
  double intra_margin() const;
  double m_lag_margin() const;

 private:
  void check(const char* invariant, double value, double bound,
             const MonitorCursor& cursor);

  exp::TopologyGraph graph_;
  MonitorBounds bounds_;
  Stats stats_;
  std::vector<double> cluster_lo_;  ///< probe scratch, reused
  std::vector<double> cluster_hi_;
};

}  // namespace ftgcs::trace
