#include "clocks/logical_timer.h"

#include <utility>

#include "support/assert.h"

namespace ftgcs::clocks {

LogicalTimerSet::LogicalTimerSet(sim::Simulator& simulator,
                                 LogicalClock& clock)
    : sim_(simulator), clock_(clock) {
  clock_.set_rate_observer([this](sim::Time now) { reschedule_all(now); });
}

LogicalTimerSet::~LogicalTimerSet() {
  clock_.set_rate_observer(nullptr);
  for (auto& [key, pending] : pending_) {
    sim_.cancel(pending.event);
  }
}

sim::EventId LogicalTimerSet::schedule_one(Key key, const Pending& p) {
  const sim::Time fire_at = clock_.when_reaches(p.target, sim_.now());
  return sim_.at(fire_at, [this, key] {
    auto it = pending_.find(key);
    FTGCS_ASSERT(it != pending_.end());
    Callback fn = std::move(it->second.fn);
    pending_.erase(it);
    fn();
  });
}

void LogicalTimerSet::arm(Key key, double logical_target, Callback fn) {
  FTGCS_EXPECTS(fn != nullptr);
  cancel(key);
  Pending p{logical_target, std::move(fn), sim::EventId{}};
  auto [it, inserted] = pending_.emplace(key, std::move(p));
  FTGCS_ASSERT(inserted);
  it->second.event = schedule_one(key, it->second);
}

void LogicalTimerSet::cancel(Key key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  sim_.cancel(it->second.event);
  pending_.erase(it);
}

void LogicalTimerSet::reschedule_all(sim::Time now) {
  (void)now;
  for (auto& [key, pending] : pending_) {
    sim_.cancel(pending.event);
    pending.event = schedule_one(key, pending);
  }
}

}  // namespace ftgcs::clocks
