#include "net/network.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"
#include "trace/sink.h"

namespace ftgcs::net {

namespace {

/// Adapts the legacy std::function handler onto the typed sink interface.
class FunctionSink final : public PulseSink {
 public:
  explicit FunctionSink(Network::Handler handler)
      : handler_(std::move(handler)) {}
  void on_pulse(const Pulse& pulse, sim::Time now) override {
    handler_(pulse, now);
  }

 private:
  Network::Handler handler_;
};

class NullSink final : public PulseSink {
 public:
  void on_pulse(const Pulse&, sim::Time) override {}
};

// Shared across shard worker threads by design: every crashed node's sink
// points here, and on_pulse is a no-op on a type with no data members.
// ftgcs-lint: allow(no-mutable-global) stateless singleton, safe to share
NullSink null_sink;

sim::EventPayload encode(const Pulse& pulse, int dest) {
  sim::EventPayload payload;
  payload.a = pulse.sender;
  payload.b = pulse.level;
  payload.c = dest;
  payload.d = static_cast<std::uint32_t>(pulse.kind);
  payload.x = pulse.value;
  return payload;
}

}  // namespace

Network::Network(sim::Simulator& simulator,
                 std::vector<std::vector<int>> adjacency,
                 std::unique_ptr<DelayModel> delays, sim::Rng rng)
    : sim_(simulator),
      adjacency_storage_(std::move(adjacency)),
      adj_(&adjacency_storage_),
      delays_(std::move(delays)),
      sinks_(adj_->size(), nullptr) {
  init_streams(std::move(rng));
}

Network::Network(sim::Simulator& simulator,
                 const std::vector<std::vector<int>>* adjacency,
                 std::unique_ptr<DelayModel> delays, sim::Rng rng)
    : sim_(simulator),
      adj_(adjacency),
      delays_(std::move(delays)),
      sinks_(adjacency == nullptr ? 0 : adj_->size(), nullptr) {
  FTGCS_EXPECTS(adjacency != nullptr);
  init_streams(std::move(rng));
}

void Network::init_streams(sim::Rng rng) {
  FTGCS_EXPECTS(delays_ != nullptr);
  uniform_channel_ = dynamic_cast<const UniformDelay*>(delays_.get()) != nullptr;
  self_ = sim_.register_sink(this);
  edge_streams_.reserve(adj_->size());
  loopback_streams_.reserve(adj_->size());
  std::uint64_t salt = 0;
  for (const auto& neighbors : *adj_) {
    std::vector<sim::Rng> streams;
    streams.reserve(neighbors.size());
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      // Validated once here so broadcast() can schedule deliveries
      // without a per-message bounds check (destinations come only from
      // this adjacency).
      FTGCS_EXPECTS(neighbors[j] >= 0 && neighbors[j] < num_nodes());
      streams.push_back(rng.fork(++salt));
    }
    edge_streams_.push_back(std::move(streams));
    loopback_streams_.push_back(rng.fork(++salt));
  }
}

void Network::register_handler(int node, PulseSink* sink) {
  FTGCS_EXPECTS(node >= 0 && node < num_nodes());
  FTGCS_EXPECTS(sink != nullptr);
  sinks_[node] = sink;
}

void Network::register_handler(int node, Handler handler) {
  FTGCS_EXPECTS(handler != nullptr);
  owned_sinks_.push_back(std::make_unique<FunctionSink>(std::move(handler)));
  register_handler(node, owned_sinks_.back().get());
}

void Network::register_null_handler(int node) {
  register_handler(node, &null_sink);
}

void Network::set_cluster_dispatch(ClusterPulseTable* table,
                                   const std::uint8_t* fast) {
  FTGCS_EXPECTS(table != nullptr && fast != nullptr);
  dispatch_ = table;
  dispatch_fast_ = fast;
}

void Network::set_shard_router(ShardRouter* router,
                               const std::uint8_t* remote) {
  FTGCS_EXPECTS(router != nullptr && remote != nullptr);
  router_ = router;
  remote_ = remote;
  // Precompute which senders own a cut edge: only those need the
  // per-delivery divert loop in broadcast(); interior senders keep the
  // coalesced group path even in sharded runs.
  boundary_.assign(adj_->size(), 0);
  for (std::size_t v = 0; v < adj_->size(); ++v) {
    for (const int nb : (*adj_)[v]) {
      if (remote[static_cast<std::size_t>(nb)] != 0) {
        boundary_[v] = 1;
        break;
      }
    }
  }
}

const std::vector<int>& Network::neighbors(int node) const {
  FTGCS_EXPECTS(node >= 0 && node < num_nodes());
  return (*adj_)[static_cast<std::size_t>(node)];
}

bool Network::are_neighbors(int a, int b) const {
  const auto& nb = neighbors(a);
  return std::find(nb.begin(), nb.end(), b) != nb.end();
}

sim::Rng& Network::edge_rng(int from, int to) {
  if (from == to) return loopback_streams_[static_cast<std::size_t>(from)];
  const auto& nb = (*adj_)[static_cast<std::size_t>(from)];
  const auto it = std::find(nb.begin(), nb.end(), to);
  FTGCS_EXPECTS(it != nb.end());
  return edge_streams_[static_cast<std::size_t>(from)]
                      [static_cast<std::size_t>(it - nb.begin())];
}

void Network::post_delivery(int from, sim::EventPayload& payload, int to,
                            sim::Duration delay) {
  FTGCS_EXPECTS(to >= 0 && to < num_nodes());
  FTGCS_EXPECTS(delay >= delays_->min_delay() - sim::kTimeEps &&
                delay <= delays_->max_delay() + sim::kTimeEps);
  ++messages_sent_;
  payload.c = to;  // re-aim the shared payload; everything else is fixed
  if (remote_ != nullptr && remote_[static_cast<std::size_t>(to)] != 0) {
    router_->remote_deliver(from, sim_.now() + delay, payload);
    return;
  }
  // Deliveries are never cancelled: the fire-only path keeps the payload
  // inline in the queue — no slot pool traffic on the dominant path.
  sim_.post_fire_only_after(delay, sim::EventKind::kPulse, self_, payload);
}

void Network::deliver(int from, int to, const Pulse& pulse,
                      sim::Duration delay) {
  sim::EventPayload payload = encode(pulse, to);
  post_delivery(from, payload, to, delay);
}

void Network::on_event(sim::EventKind kind, const sim::EventPayload& payload,
                       sim::Time now) {
  FTGCS_ASSERT(kind == sim::EventKind::kPulse);
  ++messages_delivered_;
  if (trace_ != nullptr) trace_->on_delivery(now, payload);
  // Columnar fast path (single-event form — Simulator::step and deliveries
  // not drained as part of a run): same receive as the batch hook below.
  if (dispatch_ != nullptr &&
      payload.d == static_cast<std::uint32_t>(PulseKind::kClusterPulse) &&
      dispatch_fast_[static_cast<std::size_t>(payload.c)] != 0) {
    const sim::BatchedEvent event{now, payload};
    dispatch_->on_pulse_run(&event, 1);
    return;
  }
  Pulse pulse;
  pulse.sender = payload.a;
  pulse.level = payload.b;
  pulse.kind = static_cast<PulseKind>(payload.d);
  pulse.value = payload.x;
  PulseSink* sink = sinks_[static_cast<std::size_t>(payload.c)];
  FTGCS_ASSERT(sink != nullptr);
  sink->on_pulse(pulse, now);
}

void Network::on_event_batch(sim::EventKind kind,
                             const sim::BatchedEvent* events, std::size_t n) {
  FTGCS_ASSERT(kind == sim::EventKind::kPulse);
  FTGCS_ASSERT(dispatch_ != nullptr);
  messages_delivered_ += n;
  if (trace_ != nullptr) trace_->on_delivery_batch(events, n);
  dispatch_->on_pulse_run(events, n);
}

void Network::broadcast(int from, const Pulse& pulse) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(pulse.sender == from);
  const auto& neighbors = (*adj_)[static_cast<std::size_t>(from)];
  // One delivery group: loopback first, then neighbors in adjacency order
  // (streams are indexed by position — no per-edge find(); edge_rng(),
  // which searches, stays for the unicast paths only), so the draw order
  // each per-edge stream observes is unchanged. The payload is encoded
  // once; destinations come from the validated adjacency and delays from
  // the channel's own sampler, so the per-delivery bounds checks of the
  // unicast path are hoisted out of the loop.
  messages_sent_ += neighbors.size() + 1;
  sim::EventPayload payload = encode(pulse, from);
  auto& streams = edge_streams_[static_cast<std::size_t>(from)];
  if (remote_ == nullptr || boundary_[static_cast<std::size_t>(from)] == 0) {
    // Coalesced fan-out (unsharded, or a sharded sender with no cut edge):
    // all delays are sampled first — the exact streams and draw order of
    // the per-delivery loop below — then the queue takes ONE pre-encoded
    // group, paying bucket lookup, window check, and the shared payload
    // write per fan-out instead of per delivery (16 B/delivery; see
    // EventQueue::schedule_fire_only_group). The destination list is
    // borrowed straight from the adjacency, which outlives every
    // in-flight delivery.
    if (group_delays_.size() <= neighbors.size()) {
      group_delays_.resize(neighbors.size() + 1);
    }
    group_delays_[0] = sample_delay(
        from, from, loopback_streams_[static_cast<std::size_t>(from)]);
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      group_delays_[j + 1] = sample_delay(from, neighbors[j], streams[j]);
    }
    sim_.post_fire_only_group(group_delays_.data(), neighbors.size() + 1,
                              sim::EventKind::kPulse, self_, payload, from,
                              neighbors.data());
    return;
  }
  // Boundary sender of a sharded run: identical draws and encode-once
  // re-aiming, but deliveries crossing the shard cut divert to the router
  // with their arrival time. Diverted deliveries consume no local seqs, so
  // the local remainder's per-delivery posts stay bit-identical to the
  // unsharded group's slice of the same destinations.
  payload.c = from;
  sim_.post_fire_only_after(
      sample_delay(from, from,
                   loopback_streams_[static_cast<std::size_t>(from)]),
      sim::EventKind::kPulse, self_, payload);
  for (std::size_t j = 0; j < neighbors.size(); ++j) {
    payload.c = neighbors[j];
    const sim::Duration delay = sample_delay(from, neighbors[j], streams[j]);
    if (remote_[static_cast<std::size_t>(neighbors[j])] != 0) {
      router_->remote_deliver(from, sim_.now() + delay, payload);
    } else {
      sim_.post_fire_only_after(delay, sim::EventKind::kPulse, self_,
                                payload);
    }
  }
}

void Network::unicast(int from, int to, const Pulse& pulse) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(to >= 0 && to < num_nodes());
  FTGCS_EXPECTS(from == to || are_neighbors(from, to));
  deliver(from, to, pulse, sample_delay(from, to, edge_rng(from, to)));
}

void Network::unicast_with_delay(int from, int to, const Pulse& pulse,
                                 sim::Duration delay) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(to >= 0 && to < num_nodes());
  FTGCS_EXPECTS(from == to || are_neighbors(from, to));
  deliver(from, to, pulse, delay);
}

}  // namespace ftgcs::net
