// Timers that fire at *logical* clock values.
//
// Algorithm 1 schedules its actions "at-time L_v(t_v(r)) + τ", i.e., at
// logical times. Since the logical clock's rate changes whenever δ, γ, or
// the hardware rate changes, the Newtonian fire time of a pending logical
// timer moves. LogicalTimerSet owns the pending timers of one logical clock
// and transparently reschedules them on every rate change (it installs
// itself as the clock's rate observer).
//
// Timers are keyed by an integer so a protocol can name them (round-pulse,
// phase-2-end, round-end, ...) and replace/cancel by name.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "clocks/logical_clock.h"
#include "sim/simulator.h"

namespace ftgcs::clocks {

class LogicalTimerSet {
 public:
  using Callback = std::function<void()>;
  using Key = std::uint32_t;

  /// Binds to a simulator and a clock. The set registers itself as the
  /// clock's rate observer; the clock must outlive the set.
  LogicalTimerSet(sim::Simulator& simulator, LogicalClock& clock);

  ~LogicalTimerSet();

  LogicalTimerSet(const LogicalTimerSet&) = delete;
  LogicalTimerSet& operator=(const LogicalTimerSet&) = delete;

  /// Arms (or replaces) timer `key` to fire when the logical clock reaches
  /// `logical_target`. The callback runs exactly once, at the Newtonian
  /// time at which the (possibly rate-changing) clock first reaches the
  /// target. Requires logical_target >= clock.read(now).
  void arm(Key key, double logical_target, Callback fn);

  /// Cancels timer `key`; no-op if not armed.
  void cancel(Key key);

  /// True if timer `key` is armed.
  bool armed(Key key) const { return pending_.count(key) > 0; }

  std::size_t armed_count() const { return pending_.size(); }

 private:
  struct Pending {
    double target;
    Callback fn;
    sim::EventId event;
  };

  void reschedule_all(sim::Time now);
  sim::EventId schedule_one(Key key, const Pending& p);

  sim::Simulator& sim_;
  LogicalClock& clock_;
  std::map<Key, Pending> pending_;
};

}  // namespace ftgcs::clocks
