// Global-skew module (Appendix C): M_v growth, level pulses, f+1 quorum
// rule, own-clock lower bound, and the system-level invariants
// M_v ≤ L^max and bounded lag.
#include "core/global_skew.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/ftgcs_system.h"
#include "net/graph.h"

namespace ftgcs::core {
namespace {

MaxEstimator::Config unit_config() {
  MaxEstimator::Config cfg;
  cfg.d = 1.0;
  cfg.U = 0.2;  // spacing d−U = 0.8
  cfg.rho = 1e-3;
  cfg.f = 1;
  return cfg;
}

TEST(MaxEstimator, GrowsAtDampedHardwareRate) {
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0 + 1e-3);
  // rate = h/(1+ρ) = 1 exactly when h = 1+ρ.
  EXPECT_NEAR(m.read(10.0), 10.0, 1e-12);
}

TEST(MaxEstimator, EmitsLevelsAtSpacingMultiples) {
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0);
  std::vector<std::pair<int, sim::Time>> emitted;
  m.on_emit = [&](int level) { emitted.emplace_back(level, sim.now()); };
  m.start();
  sim.run_until(2.0);
  // rate = 1/(1+ρ); level ℓ at t = ℓ·0.8·(1+ρ).
  ASSERT_GE(emitted.size(), 2u);
  EXPECT_EQ(emitted[0].first, 1);
  EXPECT_NEAR(emitted[0].second, 0.8 * (1.0 + 1e-3), 1e-9);
  EXPECT_EQ(emitted[1].first, 2);
  EXPECT_NEAR(emitted[1].second, 1.6 * (1.0 + 1e-3), 1e-9);
}

TEST(MaxEstimator, QuorumJumpRequiresFPlusOne) {
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0);
  m.on_emit = [](int) {};
  m.start();
  // One member of cluster 7 reports level 5: no jump (f = 1 needs 2).
  m.on_level_pulse(7, 0, false, 5, 0.0);
  EXPECT_NEAR(m.read(0.0), 0.0, 1e-12);
  // Duplicate from the same member: still no jump.
  m.on_level_pulse(7, 0, false, 5, 0.0);
  EXPECT_NEAR(m.read(0.0), 0.0, 1e-12);
  // Second distinct member: jump to (5+1)·0.8 = 4.8.
  m.on_level_pulse(7, 1, false, 5, 0.0);
  EXPECT_NEAR(m.read(0.0), 4.8, 1e-12);
  EXPECT_EQ(m.jumps(), 1u);
}

TEST(MaxEstimator, QuorumMustBeWithinOneCluster) {
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0);
  m.on_emit = [](int) {};
  m.start();
  // One member each from two different clusters: no quorum.
  m.on_level_pulse(7, 0, false, 5, 0.0);
  m.on_level_pulse(8, 0, false, 5, 0.0);
  EXPECT_NEAR(m.read(0.0), 0.0, 1e-12);
}

TEST(MaxEstimator, SelfPulsesIgnored) {
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0);
  m.on_emit = [](int) {};
  m.start();
  m.on_level_pulse(7, 0, true, 5, 0.0);
  m.on_level_pulse(7, 1, true, 5, 0.0);
  EXPECT_NEAR(m.read(0.0), 0.0, 1e-12);
}

TEST(MaxEstimator, JumpEmitsSkippedLevels) {
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0);
  std::vector<int> emitted;
  m.on_emit = [&](int level) { emitted.push_back(level); };
  m.start();
  m.on_level_pulse(3, 0, false, 4, 0.0);
  m.on_level_pulse(3, 2, false, 4, 0.0);  // jump to 4.0 → levels 1..5
  ASSERT_EQ(emitted.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(emitted[i], i + 1);
}

TEST(MaxEstimator, ForgedHugeLevelsAreCheapAndQuorumStillWorks) {
  // A Byzantine node may broadcast kMaxLevel pulses with arbitrary levels;
  // counting them must not cost memory proportional to the level value,
  // and an (impossible-for-correct-nodes) singleton never forms a quorum.
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0);
  m.on_emit = [](int) {};
  m.start();
  m.on_level_pulse(7, 0, false, 1000000000, 0.0);
  m.on_level_pulse(7, 0, false, 999999999, 0.0);
  // Forged levels below the first emittable level (1) are dropped outright.
  m.on_level_pulse(7, 0, false, 0, 0.0);
  m.on_level_pulse(7, 1, false, 0, 0.0);
  EXPECT_NEAR(m.read(0.0), 0.0, 1e-12);
  // A full quorum at a forged far-future level still jumps (the rule only
  // needs f+1 distinct members), exactly as with the sparse-map storage.
  m.on_level_pulse(7, 1, false, 1000000000, 0.0);
  EXPECT_NEAR(m.read(0.0), 1000000001.0 * 0.8, 1e-3);
  EXPECT_EQ(m.jumps(), 1u);
}

TEST(MaxEstimator, QuorumAcrossManyMembersBeyondSixtyFour) {
  // Clusters larger than 64 members (f >= 22, k = 3f+1) must still count
  // distinct members correctly across bitmask words.
  sim::Simulator sim;
  MaxEstimator::Config cfg = unit_config();
  cfg.f = 22;  // quorum 23, k = 67
  MaxEstimator m(sim, cfg, 1.0);
  m.on_emit = [](int) {};
  m.start();
  for (int member = 44; member < 66; ++member) {
    m.on_level_pulse(3, member, false, 5, 0.0);  // 22 distinct: no quorum
  }
  EXPECT_NEAR(m.read(0.0), 0.0, 1e-12);
  m.on_level_pulse(3, 66, false, 5, 0.0);  // 23rd distinct member
  EXPECT_NEAR(m.read(0.0), 4.8, 1e-12);
}

TEST(MaxEstimator, OverflowMigrationSurvivesBaseSlidePlusRegrowInOneCall) {
  // Regression pin for the heard-window bookkeeping when ONE insert
  // triggers all three rare transitions at once: the staleness floor
  // slides the window base by thousands of levels, the per-level stride
  // regrows (member index ≥ 128 ⇒ 1 → 3 words), and a sparse overflow
  // level gets pulled into dense range and must be OR-migrated at the NEW
  // width. A width mismatch anywhere loses or fabricates member bits,
  // which shows up here as a quorum that fires too early or not at all.
  sim::Simulator sim;
  MaxEstimator::Config cfg;
  cfg.d = 1.0;
  cfg.U = 0.0;  // spacing 1: level ℓ ⇔ value ℓ exactly
  cfg.rho = 1e-3;
  cfg.f = 2;  // quorum 3
  MaxEstimator m(sim, cfg, 1.0);
  m.on_emit = [](int) {};
  m.start();

  // Far-future level 5000 (> base 1 + window 4096): sparse overflow entry,
  // 1-word mask, member 0.
  m.on_level_pulse(7, 0, false, 5000, 0.0);
  // Member 70 forces the first regrow (2 words); the overflow mask of
  // level 5000 must widen with it.
  m.on_level_pulse(7, 70, false, 2, 0.0);
  EXPECT_EQ(m.jumps(), 0u);

  // Own clock at 4999.25 emits levels 1..4999: the staleness floor is now
  // 4999, so the next insert must slide the base past the entire dense
  // window while level 5000 becomes in-range.
  m.observe_own_clock(4999.25, 0.0);
  EXPECT_EQ(m.highest_level_sent(), 4999);

  // One call: base 1 → 4999, regrow 2 → 3 words (member 140), and the
  // overflow entry for level 5000 migrates into the dense window. Members
  // heard at level 5000: {0 (migrated), 140} — still below quorum.
  m.on_level_pulse(7, 140, false, 5000, 0.0);
  EXPECT_EQ(m.jumps(), 0u);
  // A duplicate of the migrated member must not mint a third bit.
  m.on_level_pulse(7, 0, false, 5000, 0.0);
  EXPECT_EQ(m.jumps(), 0u);
  EXPECT_NEAR(m.read(0.0), 4999.25, 1e-12);

  // The genuine third member completes the quorum: M ← (5000+1)·spacing.
  m.on_level_pulse(7, 70, false, 5000, 0.0);
  EXPECT_EQ(m.jumps(), 1u);
  EXPECT_NEAR(m.read(0.0), 5001.0, 1e-12);
  EXPECT_EQ(m.highest_level_sent(), 5001);
}

TEST(MaxEstimator, JumpsAreMonotone) {
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0);
  m.on_emit = [](int) {};
  m.start();
  m.on_level_pulse(3, 0, false, 9, 0.0);
  m.on_level_pulse(3, 1, false, 9, 0.0);
  const double high = m.read(0.0);
  // Lower-level quorum afterwards must not decrease M.
  m.on_level_pulse(4, 0, false, 2, 0.0);
  m.on_level_pulse(4, 1, false, 2, 0.0);
  EXPECT_DOUBLE_EQ(m.read(0.0), high);
}

TEST(MaxEstimator, ObserveOwnClockLiftsM) {
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0);
  std::vector<int> emitted;
  m.on_emit = [&](int level) { emitted.push_back(level); };
  m.start();
  m.observe_own_clock(2.0, 0.0);
  EXPECT_NEAR(m.read(0.0), 2.0, 1e-12);
  // Levels 1 and 2 (0.8, 1.6) are now covered and must have been emitted.
  ASSERT_EQ(emitted.size(), 2u);
  // Lower own values never pull M down.
  m.observe_own_clock(1.0, 0.0);
  EXPECT_NEAR(m.read(0.0), 2.0, 1e-12);
}

TEST(MaxEstimator, RateChangeReschedulesEmission) {
  sim::Simulator sim;
  MaxEstimator m(sim, unit_config(), 1.0);
  std::vector<sim::Time> times;
  m.on_emit = [&](int) { times.push_back(sim.now()); };
  m.start();
  sim.run_until(0.4);
  // Halving the hardware rate delays the first emission proportionally.
  m.set_hardware_rate(0.4, 0.5);
  sim.run_until(3.0);
  ASSERT_GE(times.size(), 1u);
  // M(0.4) = 0.4/(1+ρ); remaining to 0.8: ≈0.4·(1+..) at rate 0.5/(1+ρ).
  const double expected =
      0.4 + (0.8 - 0.4 / 1.001) / (0.5 / 1.001);
  EXPECT_NEAR(times[0], expected, 1e-9);
}

// ---- system-level invariants -------------------------------------------

TEST(GlobalSkewSystem, MvNeverExceedsLmax) {
  Params params = Params::practical(1e-3, 1.0, 0.01, 1);
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 3;
  // A ramp so catch-up and flooding both engage.
  for (int c = 0; c < 6; ++c) config.cluster_round_offsets.push_back(3 * c);
  FtGcsSystem system(net::Graph::line(6), std::move(config));
  system.start();
  for (int step = 1; step <= 100; ++step) {
    system.run_until(step * params.T);
    double lmax = 0.0;
    for (int id = 0; id < system.topology().num_nodes(); ++id) {
      lmax = std::max(lmax, system.node_logical(id));
    }
    for (int id = 0; id < system.topology().num_nodes(); ++id) {
      EXPECT_LE(system.node(id).max_estimate(system.simulator().now()),
                lmax + 1e-9)
          << "node " << id << " step " << step;
    }
  }
}

TEST(GlobalSkewSystem, MvLagIsBounded) {
  // Lemma C.2: L^max − M_v = O(δ·D). Measured with a generous constant.
  Params params = Params::practical(1e-3, 1.0, 0.01, 1);
  const int clusters = 6;
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 4;
  for (int c = 0; c < clusters; ++c) {
    config.cluster_round_offsets.push_back(3 * c);
  }
  FtGcsSystem system(net::Graph::line(clusters), std::move(config));
  system.start();
  system.run_until(60.0 * params.T);
  double lmax = 0.0;
  for (int id = 0; id < system.topology().num_nodes(); ++id) {
    lmax = std::max(lmax, system.node_logical(id));
  }
  const int diameter = clusters - 1;
  for (int id = 0; id < system.topology().num_nodes(); ++id) {
    const double m = system.node(id).max_estimate(system.simulator().now());
    EXPECT_LE(lmax - m, 4.0 * params.delta_trig * diameter + 4.0 * params.d)
        << "node " << id;
  }
}

}  // namespace
}  // namespace ftgcs::core
