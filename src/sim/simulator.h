// Single-threaded discrete-event simulator facade.
//
// Owns the virtual clock and the event queue. Protocol components schedule
// work at absolute Newtonian times; the simulator advances time to the next
// event and fires it. Time never flows backwards and events scheduled in
// the past are rejected (contract violation), which catches clock inversion
// bugs early.
//
// Two scheduling paths exist:
//   * typed  — register_sink() once, then post_at()/post_after() with an
//     EventKind + POD payload; dispatch is an indexed virtual call and the
//     whole path is allocation-free (the hot path: pulses, timers, drift).
//   * closure — at()/after() with a std::function, for cold one-shot work
//     (fault injection, topology toggles, tests).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/backend.h"
#include "sim/event.h"
#include "sim/event_queue.h"
#include "sim/scratch_arena.h"
#include "sim/time_types.h"

namespace ftgcs::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Selects the scheduling front-end (see sim/backend.h). Both backends
  /// execute bit-identical event sequences; kLadder keeps push/pop O(1)
  /// at large in-flight populations.
  explicit Simulator(QueueBackend backend = QueueBackend::kHeap)
      : queue_(backend) {}

  QueueBackend backend() const { return queue_.backend(); }

  /// Current Newtonian time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t >= now()`.
  EventId at(Time t, Callback fn);

  /// Schedules `fn` after a non-negative delay.
  EventId after(Duration dt, Callback fn);

  /// Registers a typed-event receiver; the returned id is stable for the
  /// simulator's lifetime. The sink must outlive the simulator (sinks are
  /// the long-lived protocol components).
  SinkId register_sink(EventSink* sink);

  /// Registers THE batch channel (at most one per simulator): fire-only
  /// events of (`sink`, `kind`) whose payload `pred(payload, ctx)` accepts
  /// are drained in runs and handed to sink->on_event_batch() instead of
  /// one on_event() per event. Contract: processing an accepted event must
  /// be a PURE RECEIVE — it must not schedule, cancel, or reschedule
  /// events, and must not read now() (batch items each carry their own
  /// fire time). Any event violating that must be rejected by `pred`; the
  /// run then breaks before it and it fires through the ordinary path,
  /// preserving exact interleaving.
  ///
  /// On the ladder backend the run loop additionally drains accepted
  /// events by TIME PARTITION (EventQueue::pop_run_unordered): everything
  /// strictly below the next non-channel event fires in one unordered
  /// tranche, skipping the per-bucket drain sort. That adds two
  /// obligations on top of the contract above: processing accepted events
  /// must COMMUTE within a tranche (the receiver's end state and counters
  /// must not depend on the order of accepted events between two barrier
  /// events — see core/receive_lane.h for the proof obligation this
  /// discharges), and `pred` must be MONOTONE — once it accepts a payload
  /// it accepts it forever (classification may only widen over a run).
  void set_batch_channel(SinkId sink, EventKind kind, BatchPredicate pred,
                         const void* ctx);

  /// Schedules a typed event at absolute time `t >= now()`.
  EventId post_at(Time t, EventKind kind, SinkId sink,
                  const EventPayload& payload);

  /// Schedules a typed event after a non-negative delay.
  EventId post_after(Duration dt, EventKind kind, SinkId sink,
                     const EventPayload& payload);

  /// Schedules a typed event after a non-negative delay that can never be
  /// cancelled or rescheduled. The dominant traffic — pulse deliveries —
  /// is fire-only; on the ladder backend this path carries the payload
  /// inline in the queue (no slot pool, no handle bookkeeping).
  void post_fire_only_after(Duration dt, EventKind kind, SinkId sink,
                            const EventPayload& payload);

  /// Absolute-time variant of post_fire_only_after. The sharded backend
  /// seeds each shard's queue from merged cross-shard mailboxes, whose
  /// entries carry the arrival times sampled on the *sending* shard —
  /// those must be replayed exactly, not re-derived from now().
  void post_fire_only_at(Time t, EventKind kind, SinkId sink,
                         const EventPayload& payload);

  /// Coalesced broadcast: `count` fire-only deliveries of one logical send
  /// in a single queue call — delivery i at now() + delays[i], aimed at
  /// `first_dest` (i = 0) or `rest_dests[i − 1]`, carrying `proto` with
  /// only `c` re-aimed. Fires bit-identically to `count` sequential
  /// post_fire_only_after calls; on the ladder backend the deliveries
  /// share one pooled group record and 16-byte entries, and `rest_dests`
  /// must stay valid until the last delivery fires (see
  /// EventQueue::schedule_fire_only_group).
  void post_fire_only_group(const Duration* delays, std::size_t count,
                            EventKind kind, SinkId sink,
                            const EventPayload& proto, std::int32_t first_dest,
                            const std::int32_t* rest_dests);

  /// Cancels a pending event; no-op if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Moves a pending event to `t >= now()` under a fresh FIFO sequence —
  /// observably identical to cancel + re-post, but one in-place heap move.
  /// Returns false if the event already fired or was cancelled.
  bool reschedule(EventId id, Time t) {
    FTGCS_EXPECTS(t >= now_);
    return queue_.reschedule(id, t);
  }

  /// Runs events until the queue empties or the next event is later than
  /// `t_end`; afterwards now() == min(t_end, last event time fired) and is
  /// then advanced to exactly `t_end`.
  void run_until(Time t_end);

  /// Fires exactly one event if available. Returns false when idle.
  bool step();

  /// True if no pending events remain.
  bool idle() const { return queue_.empty(); }

  /// Pre-sizes the event pool (see EventQueue::reserve).
  void reserve_events(std::size_t capacity) { queue_.reserve(capacity); }

  /// Pins the queue's warmed-up capacity profile so steady-state windows
  /// allocate nothing (see EventQueue::prewarm).
  void prewarm() { queue_.prewarm(); }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t fired_events() const { return fired_; }
  std::uint64_t scheduled_events() const { return queue_.scheduled_count(); }

  /// Queue-tier diagnostics (bucket count, rung spawns, overflow peak,
  /// batch run lengths); deterministic, surfaced by sweep `--timing`
  /// footers.
  const EventQueue::TierStats& queue_stats() const {
    return queue_.tier_stats();
  }

  /// Time of the earliest pending event (kTimeInfinity when idle): the
  /// partition horizon seen from outside the queue. O(1) amortized on
  /// both backends; on kLadder it may sort the current drain bucket.
  Time next_event_time() const { return queue_.next_time(); }

  /// Simulator-owned scratch columns for batch-channel receivers, sized to
  /// the partitioned tranche (kMaxRun) up front so receivers never
  /// allocate per run. Shared: there is at most one batch channel, and its
  /// runs are processed one at a time.
  BatchScratch& batch_scratch() { return scratch_; }

  /// Ordered batch runs are bounded so the drain buffer stays
  /// cache-resident and a long pulse train still yields to the run loop's
  /// t_end check promptly.
  static constexpr std::size_t kMaxBatch = 256;
  /// Partitioned (unordered) tranches are larger: each one amortizes a
  /// full calendar sweep, and the queue enforces t_end in-sweep, so the
  /// only bound needed is the working-set size (32 B/event → 64 KiB).
  /// Public so batch receivers and benches can size buffers to match.
  static constexpr std::size_t kMaxRun = 2048;

 private:
  void dispatch(EventQueue::Fired& fired);

  EventQueue queue_;
  std::vector<EventSink*> sinks_;
  Time now_ = kTimeZero;
  std::uint64_t fired_ = 0;

  // ---- batch channel (see set_batch_channel) --------------------------------
  BatchPredicate batch_pred_ = nullptr;
  const void* batch_ctx_ = nullptr;
  EventSink* batch_sink_ = nullptr;
  EventKind batch_kind_ = EventKind::kPulse;
  std::uint32_t batch_key_ = 0;  ///< packed sink << 8 | kind
  std::vector<BatchedEvent> batch_buf_;  ///< ordered runs (kMaxBatch)
  std::vector<BatchedEvent> run_buf_;    ///< partitioned tranches (kMaxRun)
  BatchScratch scratch_;                 ///< receiver scratch (see accessor)
};

}  // namespace ftgcs::sim
