// Byzantine adversary framework.
//
// Faulty nodes are fully Byzantine (paper §2, "Faults"): arbitrary
// behaviour, no broadcast requirement. A Strategy scripts one faulty node.
// Strategies are omniscient where useful: the system feeds them the round
// schedule of a designated correct node in their cluster (`on_reference_
// round`), which a real adversary could reconstruct by observing traffic.
//
// The only physical constraint the adversary cannot break is the channel:
// a message between neighbors is in transit for a time in [d−U, d]. Since
// the adversary chooses *when* to send, this still yields arbitrary
// arrival times; strategies simply schedule sends.
#pragma once

#include <memory>

#include "core/params.h"
#include "net/augmented.h"
#include "net/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ftgcs::byz {

/// Round observation of a correct node in the faulty node's cluster.
struct RoundInfo {
  int round = 0;
  sim::Time round_start = 0.0;          ///< Newtonian round start
  sim::Time predicted_pulse = 0.0;      ///< Newtonian time of its pulse
  double logical_round_start = 0.0;     ///< (r−1)·T
};

struct AttackContext {
  int self = -1;
  int cluster = -1;
  int index_in_cluster = -1;
  sim::Simulator* sim = nullptr;
  net::Network* net = nullptr;
  const net::AugmentedTopology* topo = nullptr;
  const core::Params* params = nullptr;
  sim::Rng rng{0};
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Called once at system start. The default does nothing; round-driven
  /// strategies act from on_reference_round instead.
  virtual void start(AttackContext& ctx) { (void)ctx; }

  /// A pulse arrived at the faulty node.
  virtual void on_pulse(AttackContext& ctx, const net::Pulse& pulse,
                        sim::Time now) {
    (void)ctx;
    (void)pulse;
    (void)now;
  }

  /// The reference correct node in this cluster began a round.
  virtual void on_reference_round(AttackContext& ctx, const RoundInfo& info) {
    (void)ctx;
    (void)info;
  }
};

/// Hosts one strategy: owns the context, registers as the network sink.
class ByzantineNode final : public net::PulseSink {
 public:
  ByzantineNode(AttackContext ctx, std::unique_ptr<Strategy> strategy);

  void start();
  void on_pulse(const net::Pulse& pulse, sim::Time now) override;
  void on_reference_round(const RoundInfo& info);

  int id() const { return ctx_.self; }

 private:
  AttackContext ctx_;
  std::unique_ptr<Strategy> strategy_;
};

}  // namespace ftgcs::byz
