// Node-level master/slave tree synchronization (pulse echo) — the classic
// baseline the paper's introduction argues against.
//
// A BFS tree is rooted at node 0. The root's logical clock free-runs on
// its hardware clock and the root emits a timestamped sync pulse every
// `share_period`. A non-root node, upon receiving the pulse echoed by its
// parent, *steps* its clock to the received value plus the expected
// one-hop delay and immediately echoes the pulse (with its new clock
// value) to its children. Between pulses clocks free-run.
//
// This achieves global skew O(depth · per-hop error) but offers no local
// skew guarantee: the correction wave propagates one hop per message
// delay, so a node at the wavefront has already absorbed the full
// upstream correction while its child has absorbed none — compressing the
// global skew onto a single edge (cf. [15] and the paper's introduction:
// a pulse propagating through a line with equally distributed global skew
// "will compress the full global skew onto a single edge"). Experiment E5
// reproduces exactly this.
#pragma once

#include <memory>
#include <vector>

#include "clocks/drift_model.h"
#include "clocks/hardware_clock.h"
#include "clocks/logical_clock.h"
#include "net/graph.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ftgcs::baselines {

class TreeSyncSystem {
 public:
  struct Config {
    double rho = 0.0;
    double d = 0.0;
    double U = 0.0;
    double share_period = 0.0;  ///< Newtonian period between shares
    std::uint64_t seed = 1;
    int root = 0;
    std::unique_ptr<net::DelayModel> delay_model;    ///< null → Uniform
    std::unique_ptr<clocks::DriftModel> drift_model; ///< null → spread const
    /// Initial logical clock values (one per node; empty = all zero).
    /// Used to set up a distributed skew the tree must absorb.
    std::vector<double> initial_logical;
  };

  TreeSyncSystem(net::Graph graph, Config config);

  void start();
  void run_until(sim::Time t) { sim_.run_until(t); }

  sim::Simulator& simulator() { return sim_; }
  const net::Graph& graph() const { return graph_; }
  int parent_of(int node) const { return parent_[node]; }

  double node_logical(int id) const;
  /// Max |L_v − L_w| over graph edges.
  double local_skew() const;
  double global_skew() const;

 private:
  struct Node {
    clocks::HardwareClock hardware;
    clocks::LogicalClock logical;
    Node(sim::Time t0, double l0)
        : hardware(t0, 0.0, 1.0), logical(0.0, 0.0, 1.0, t0, l0) {}
  };

  void share_tick(int node);
  void on_pulse(int node, const net::Pulse& pulse, sim::Time now);

  net::Graph graph_;
  Config config_;
  std::vector<int> parent_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<clocks::DriftModel> drift_;
};

}  // namespace ftgcs::baselines
