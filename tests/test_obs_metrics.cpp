// Metrics-plane pins: histogram bucket geometry, percentile semantics,
// the zero-allocation sampling contract, a byte-exact golden series, and
// engine/shard invariance of the deterministic JSONL plane.
//
// The golden FNV constant pins the series format (field order, %.17g
// rendering, header shape) AND the simulated trajectory it serializes.
// Any intentional schema change must bump the schema id in
// obs/sampler.cpp and this constant together.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/exp.h"
#include "obs/histogram.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "support/alloc_guard.h"

namespace ftgcs {
namespace {

using exp::AxisValue;
using exp::ScenarioSpec;
using obs::LogLinearHistogram;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

// ---- histogram geometry ----------------------------------------------------

TEST(LogLinearHistogram, BucketBoundariesExactFromSpec) {
  // Widths chosen to be exact in IEEE-754 so every boundary is a pure
  // function of the spec on any platform.
  const LogLinearHistogram h({/*linear_width=*/0.25, /*linear_max=*/1.0,
                              /*growth=*/2.0, /*max=*/8.0});
  const std::vector<double> expected = {0.25, 0.5, 0.75, 1.0, 2.0, 4.0, 8.0};
  EXPECT_EQ(h.boundaries(), expected);
  EXPECT_EQ(h.num_buckets(), expected.size() + 1);  // + overflow

  EXPECT_EQ(h.bucket_index(-1.0), 0u);  // negatives clamp into bucket 0
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(0.24), 0u);
  // A value ON a boundary belongs to the bucket ABOVE it (upper bounds
  // are exclusive).
  EXPECT_EQ(h.bucket_index(0.25), 1u);
  EXPECT_EQ(h.bucket_index(1.0), 4u);   // first geometric bucket
  EXPECT_EQ(h.bucket_index(7.99), 6u);
  EXPECT_EQ(h.bucket_index(8.0), 7u);   // overflow bucket
  EXPECT_EQ(h.bucket_index(1e12), 7u);
}

TEST(LogLinearHistogram, PercentilesAreBucketBoundsClippedToMax) {
  LogLinearHistogram h({/*linear_width=*/1.0, /*linear_max=*/10.0,
                        /*growth=*/2.0, /*max=*/80.0});
  EXPECT_EQ(h.percentile(0.5), 0.0);  // empty

  h.record(0.5);
  h.record(1.5);
  h.record(2.5);
  h.record(3.5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.max_seen(), 3.5);
  // rank(0.5) = 2nd sample → bucket [1,2): upper bound 2.
  EXPECT_EQ(h.percentile(0.5), 2.0);
  // The top percentiles clip to the exact running max, not a boundary.
  EXPECT_EQ(h.percentile(0.99), 3.5);
  EXPECT_EQ(h.percentile(1.0), 3.5);

  // Overflow values read back as the max, never as infinity.
  h.record(5000.0);
  EXPECT_EQ(h.percentile(1.0), 5000.0);

  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_seen(), 0.0);
  EXPECT_EQ(h.percentile(1.0), 0.0);
  h.record(0.25);
  EXPECT_EQ(h.percentile(1.0), 0.25);
}

TEST(LogLinearHistogram, RecordAndPercentileAllocateNothing) {
  LogLinearHistogram h(obs::ProbeSampler::scaled_spec(1.0));
  support::ScopedAllocGuard guard;
  for (int i = 0; i < 10000; ++i) {
    h.record(i * 1e-5);
  }
  volatile double sink = h.percentile(0.5) + h.percentile(0.99);
  (void)sink;
  h.clear();
  EXPECT_EQ(guard.allocations(), 0u);
}

TEST(ProbeSampler, ScaledSpecDerivesFromScale) {
  const LogLinearHistogram::Spec spec = obs::ProbeSampler::scaled_spec(2.0);
  EXPECT_EQ(spec.linear_width, 0.002);
  EXPECT_EQ(spec.linear_max, 0.2);
  EXPECT_EQ(spec.growth, 1.25);
  EXPECT_EQ(spec.max, 128.0);
}

// ---- zero-allocation sampling contract -------------------------------------

// After prewarm(), sample() must allocate nothing — from the FIRST probe,
// not after a warm-up: the row buffer is capacity-pinned by prewarm, the
// registry storage is fixed at registration, and the stdio stream buffer
// was forced into existence by the header write in the constructor.
TEST(ProbeSampler, SteadyStateSamplingAllocatesNothing) {
  // Hand-built 4-node topology (2 clusters × 2, a 4-cycle) — the
  // sampler only reads adjacency/cluster shape, so this stays tiny.
  exp::TopologyGraph graph;
  graph.num_clusters = 2;
  graph.cluster_size = 2;
  graph.adjacency = {{1, 3}, {0, 2}, {1, 3}, {0, 2}};
  graph.cluster_of = {0, 0, 1, 1};
  graph.min_delay = 0.5;
  graph.max_delay = 1.0;

  obs::ProbeSampler::Config config;
  config.path = temp_path("alloc_pin.jsonl");
  config.monitors = false;
  config.hist_scale = 1.0;
  obs::ProbeSampler sampler(config, graph);
  sampler.prewarm();

  core::SystemColumns columns;
  columns.logical = {1.0, 1.25, 1.5, 2.0};
  columns.correct = {1, 1, 1, 1};
  columns.gamma = {0, 0, 0, 0};
  metrics::SkewSample skews;
  skews.node_local = 0.5;
  skews.cluster_local = 0.25;
  skews.intra_cluster = 0.25;
  skews.node_global = 1.0;
  skews.cluster_global = 0.75;

  obs::SampleContext ctx;
  ctx.events = 0;
  ctx.messages = 0;
  ctx.skews = &skews;
  ctx.columns = &columns;

  {
    support::ScopedAllocGuard guard;
    for (int probe = 0; probe < 200; ++probe) {
      ctx.at = probe * 0.125;
      ctx.events += 7;
      ctx.messages += 3;
      sampler.sample(ctx);
    }
    EXPECT_EQ(guard.allocations(), 0u);
  }
  sampler.finish();
  EXPECT_EQ(sampler.probes(), 200u);

  // The file it produced is well-formed series JSONL.
  obs::SeriesData series;
  std::string error;
  ASSERT_TRUE(obs::load_series(sampler.path(), &series, &error)) << error;
  EXPECT_EQ(series.rows.size(), 200u);
  EXPECT_EQ(series.header.number("nodes"), 4.0);
  // Histogram max fields are exact (clipped to max_seen): the worst
  // 4-cycle edge gap is |2.0 − 1.0| = 1.0 every probe.
  EXPECT_EQ(series.rows.back().number("local_max"), 1.0);
  EXPECT_EQ(series.rows.back().number("global_max"), 1.0);
}

// ---- golden series + engine/shard invariance -------------------------------

/// Runs a registered scenario at clusters=64 with the metrics series on
/// and returns the series file's bytes.
std::string run_series(const std::string& scenario, int shards,
                       sim::QueueBackend engine, const std::string& path) {
  exp::register_builtin_scenarios();
  ScenarioSpec spec = *exp::Registry::instance().find(scenario);
  spec.axes = {{"clusters", {AxisValue::of(64)}}};
  apply_axis(spec, "clusters", 64.0);
  spec.shards = shards;
  spec.engine = engine;
  spec.metrics_path = path;
  const exp::RunResult result = run_point(spec, 1);
  EXPECT_TRUE(result.series.enabled);
  EXPECT_GT(result.series.probes, 0u);
  EXPECT_GT(result.series.bytes, 0u);
  EXPECT_TRUE(result.monitor.enabled);  // monitored scenario
  return read_file(path);
}

TEST(MetricsSeries, GoldenFilePin) {
  const std::string path = temp_path("golden_metrics.jsonl");
  const std::string bytes =
      run_series("large_ring", 1, sim::QueueBackend::kLadder, path);
  EXPECT_EQ(fnv1a(bytes), 0x5073449365e29148ull);
  EXPECT_EQ(bytes.size(), 2191u);

  // The pinned bytes parse back, carry the monitored schema, and never
  // recorded a violation.
  obs::SeriesData series;
  std::string error;
  ASSERT_TRUE(obs::load_series(path, &series, &error)) << error;
  EXPECT_GT(series.header.number("bound_local"), 0.0);
  EXPECT_GT(series.header.number("bound_global"), 0.0);
  for (const obs::JsonLine& row : series.rows) {
    EXPECT_EQ(row.number("violations", -1.0), 0.0);
    EXPECT_GE(row.number("margin_local", -1.0), 0.0);
  }
}

// The plane-separation pin: the monitored large_torus series (the
// heaviest registered workload, the acceptance target) must be
// byte-identical across --engine {heap,ladder} × --shards {1,2,4}. The
// profiler sidecar absorbs everything backend-dependent; if a
// backend-sensitive quantity ever leaks into the series, this fails at
// the first divergent probe.
TEST(MetricsSeries, TorusSeriesIdenticalAcrossEnginesAndShards) {
  const std::string base = run_series("large_torus", 1,
                                      sim::QueueBackend::kLadder,
                                      temp_path("ms_l1.jsonl"));
  EXPECT_EQ(base, run_series("large_torus", 2, sim::QueueBackend::kLadder,
                             temp_path("ms_l2.jsonl")));
  EXPECT_EQ(base, run_series("large_torus", 4, sim::QueueBackend::kLadder,
                             temp_path("ms_l4.jsonl")));
  EXPECT_EQ(base, run_series("large_torus", 1, sim::QueueBackend::kHeap,
                             temp_path("ms_h1.jsonl")));
  EXPECT_EQ(base, run_series("large_torus", 2, sim::QueueBackend::kHeap,
                             temp_path("ms_h2.jsonl")));

  // ftgcs_report's differ must agree that the trajectories are equal.
  obs::SeriesData a;
  obs::SeriesData b;
  std::string error;
  ASSERT_TRUE(obs::load_series(temp_path("ms_l1.jsonl"), &a, &error)) << error;
  ASSERT_TRUE(obs::load_series(temp_path("ms_h2.jsonl"), &b, &error)) << error;
  std::ostringstream table;
  EXPECT_EQ(obs::render_diff(a, b, table), 0);
}

// ---- series reader grammar -------------------------------------------------

TEST(SeriesReader, ParsesFlatObjectsAndRejectsNesting) {
  obs::JsonLine line;
  std::string error;
  ASSERT_TRUE(obs::parse_json_line(
      R"({"t":1.5,"name":"x","ok":true,"gone":null,"n":-2e3})", &line,
      &error))
      << error;
  EXPECT_EQ(line.fields.size(), 5u);
  EXPECT_EQ(line.number("t"), 1.5);
  EXPECT_EQ(line.text("name"), "x");
  EXPECT_EQ(line.number("n"), -2000.0);
  EXPECT_EQ(line.find("gone")->kind, obs::JsonValue::Kind::kNull);
  EXPECT_EQ(line.find("missing"), nullptr);

  // Structure smuggled into the series must break loudly, not parse.
  EXPECT_FALSE(obs::parse_json_line(R"({"a":{"b":1}})", &line, &error));
  EXPECT_FALSE(obs::parse_json_line(R"({"a":[1,2]})", &line, &error));
  EXPECT_FALSE(obs::parse_json_line(R"({"a":1)", &line, &error));
}

}  // namespace
}  // namespace ftgcs
