// System builder for the plain-GCS baseline, with optional Byzantine
// "pump" faults that advertise diverging clock values to different
// neighbors — the attack that breaks the non-fault-tolerant algorithm.
#pragma once

#include <memory>
#include <vector>

#include "clocks/drift_model.h"
#include "gcs/gcs_node.h"
#include "net/graph.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ftgcs::gcs {

class GcsSystem final : public sim::EventSink {
 public:
  struct Config {
    GcsParams params;
    std::uint64_t seed = 1;
    /// Event-scheduling front-end (see sim/backend.h); bit-identical
    /// traces either way, ladder is O(1) at scale.
    sim::QueueBackend engine = sim::QueueBackend::kLadder;
    std::unique_ptr<net::DelayModel> delay_model;   ///< null → Uniform
    std::unique_ptr<clocks::DriftModel> drift_model;///< null → spread const
    /// Byzantine pump nodes: each advertises L−offset(t) to lower-id
    /// neighbors and L+offset(t) to higher-id ones, with offset growing at
    /// `pump_rate` per unit time (0 = honest value, still faulty-silent
    /// about triggers).
    std::vector<int> pump_nodes;
    double pump_rate = 0.0;
  };

  GcsSystem(net::Graph graph, Config config);

  void start();
  void run_until(sim::Time t) { sim_.run_until(t); }

  sim::Simulator& simulator() { return sim_; }
  const net::Graph& graph() const { return graph_; }

  bool is_correct(int node) const { return nodes_[node] != nullptr; }
  double node_logical(int id) const;

  /// Max |L_v − L_w| over graph edges between correct nodes.
  double local_skew() const;
  /// Max |L_v − L_w| over all correct pairs.
  double global_skew() const;

  /// EventSink: pump-node tick (kTimer, payload.a = node).
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;

 private:
  void pump_tick(int node);

  net::Graph graph_;
  Config config_;
  sim::Simulator sim_;
  sim::SinkId self_ = sim::kInvalidSink;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<GcsNode>> nodes_;  // null for faulty ids
  std::unique_ptr<clocks::DriftModel> drift_;
};

}  // namespace ftgcs::gcs
