// End-to-end FT-GCS system tests: the gradient property (Theorem 1.1 /
// Theorem 4.10 shape), faithfulness (unanimity when conditions hold),
// axiom A1 rate envelopes, paper-strict parameter verification, and
// reproducibility.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ftgcs_system.h"
#include "metrics/skew_tracker.h"
#include "net/graph.h"

namespace ftgcs::core {
namespace {

Params practical_params() { return Params::practical(1e-3, 1.0, 0.01, 1); }

TEST(FtGcsSystem, RampAbsorptionKeepsLocalSkewWithinPrediction) {
  // Clusters start on a steep ramp (per-edge gap ≈ 2.6κ); the gradient
  // layer must absorb it without any edge exceeding the Theorem 4.10
  // prediction for the initial global skew — in contrast to the tree
  // baseline, which compresses the ramp onto single edges
  // (test_tree_baselines.cpp).
  const Params params = practical_params();
  const int clusters = 6;
  const int gap_rounds = 8;  // 8·T ≈ 2.8κ per edge

  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 11;
  for (int c = 0; c < clusters; ++c) {
    config.cluster_round_offsets.push_back(c * gap_rounds);
  }
  FtGcsSystem system(net::Graph::line(clusters), std::move(config));
  const double initial_global = (clusters - 1) * gap_rounds * params.T;
  const double initial_local = gap_rounds * params.T;

  metrics::SkewProbe probe(system, params.T / 4.0, 0.0);
  probe.start();
  system.start();
  system.run_until(400.0 * params.T);

  const double bound = params.predicted_local_skew(initial_global);
  EXPECT_LE(probe.overall_max().cluster_local, bound);
  // The gradient property in action: local skew never grew much beyond
  // the initial per-edge gap (no compression!), ...
  EXPECT_LE(probe.overall_max().cluster_local, 1.25 * initial_local);
  // ... and the ramp is actually draining (catch-up + triggers at work;
  // the drain proceeds roughly one cluster at a time at rate ≈ µ).
  EXPECT_LT(probe.samples().back().cluster_global, 0.75 * initial_global);
  EXPECT_EQ(system.total_violations(), 0u);
}

TEST(FtGcsSystem, SteeperRampStaysWithinHigherLevels) {
  // Per-edge gap ≈ 5.6κ (> 2κ levels): fast triggers must engage and the
  // bound κ·(levels+1) still holds.
  const Params params = practical_params();
  const int clusters = 5;
  const int gap_rounds = 16;

  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 13;
  for (int c = 0; c < clusters; ++c) {
    config.cluster_round_offsets.push_back(c * gap_rounds);
  }
  FtGcsSystem system(net::Graph::line(clusters), std::move(config));
  const double initial_global = (clusters - 1) * gap_rounds * params.T;

  metrics::SkewProbe probe(system, params.T / 4.0, 0.0);
  probe.start();
  system.start();
  system.run_until(200.0 * params.T);

  EXPECT_LE(probe.overall_max().cluster_local,
            params.predicted_local_skew(initial_global));
  // Fast triggers fired somewhere in the system.
  std::uint64_t fast = 0;
  for (int id = 0; id < system.topology().num_nodes(); ++id) {
    fast += system.node(id).mode_counts()[static_cast<std::size_t>(
        ModeReason::kFastTrigger)];
  }
  EXPECT_GT(fast, 0u);
}

TEST(FtGcsSystem, FaithfulnessConditionsImplyUnanimity) {
  // Lemma 4.8's purpose: whenever the ground-truth fast (slow) condition
  // holds for a cluster, every correct member is actually in fast (slow)
  // mode. We sample at round-grain instants across an absorption run.
  const Params params = practical_params();
  const int clusters = 5;
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 17;
  for (int c = 0; c < clusters; ++c) {
    config.cluster_round_offsets.push_back(c * 10);
  }
  FtGcsSystem system(net::Graph::line(clusters), std::move(config));
  system.start();

  int fc_checks = 0;
  int violations = 0;
  for (int step = 1; step <= 400; ++step) {
    system.run_until(step * params.T / 2.0);
    // Ground-truth cluster clocks.
    std::vector<double> clocks(clusters);
    for (int c = 0; c < clusters; ++c) {
      const auto value = system.cluster_clock(c);
      ASSERT_TRUE(value.has_value());
      clocks[c] = *value;
    }
    const auto& graph = system.topology().cluster_graph();
    for (int c = 0; c < clusters; ++c) {
      std::vector<double> neighbors;
      for (int b : graph.neighbors(c)) neighbors.push_back(clocks[b]);
      const TriggerView view{clocks[c], neighbors};
      const bool fc = fast_condition(view, params.kappa);
      const bool sc = slow_condition(view, params.kappa);
      if (!fc && !sc) continue;
      ++fc_checks;
      for (int member : system.topology().members(c)) {
        const int gamma = system.node(member).gamma();
        if (fc && gamma != 1) ++violations;
        if (sc && gamma != 0) ++violations;
      }
    }
  }
  EXPECT_GT(fc_checks, 20);  // conditions did hold at some instants
  EXPECT_EQ(violations, 0);
}

TEST(FtGcsSystem, AxiomA1RateEnvelope) {
  // Logical clocks increase at rates within [1, ϑ_max] between samples.
  const Params params = practical_params();
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 19;
  for (int c = 0; c < 4; ++c) config.cluster_round_offsets.push_back(4 * c);
  FtGcsSystem system(net::Graph::line(4), std::move(config));
  system.start();

  std::vector<double> previous(system.topology().num_nodes(), 0.0);
  sim::Time prev_time = 0.0;
  for (int c = 0; c < 4; ++c) {
    for (int member : system.topology().members(c)) {
      previous[member] = 4.0 * c * params.T;  // initial offsets
    }
  }
  for (int step = 1; step <= 100; ++step) {
    system.run_until(step * params.T / 2.0);
    const sim::Time now = system.simulator().now();
    for (int id = 0; id < system.topology().num_nodes(); ++id) {
      const double value = system.node_logical(id);
      const double rate = (value - previous[id]) / (now - prev_time);
      EXPECT_GE(rate, 1.0 - 1e-9) << "node " << id << " step " << step;
      EXPECT_LE(rate, params.max_logical_rate() + 1e-9)
          << "node " << id << " step " << step;
      previous[id] = value;
    }
    prev_time = now;
  }
}

TEST(FtGcsSystem, PaperStrictParametersSmallScale) {
  // The exact eq. (5) constants at ρ = 1e−6 on a 2-cluster system:
  // rounds are enormous (T ≈ 10^5·d) but the invariants must hold.
  const Params params = Params::paper_strict(1e-6, 1.0, 0.001, 1);
  ASSERT_TRUE(params.feasible()) << params.feasibility_report();

  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 23;
  FtGcsSystem system(net::Graph::line(2), std::move(config));
  metrics::SkewProbe probe(system, params.T / 2.0, 3.0 * params.T);
  probe.start();
  system.start();
  system.run_until(12.0 * params.T);

  EXPECT_LE(probe.steady_max().intra_cluster,
            params.intra_cluster_skew_bound());
  EXPECT_LE(probe.steady_max().cluster_local, params.kappa);
  EXPECT_EQ(system.total_violations(), 0u);
  for (int id = 0; id < system.topology().num_nodes(); ++id) {
    EXPECT_GE(system.node(id).round(), 11);
  }
}

TEST(FtGcsSystem, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    const Params params = practical_params();
    FtGcsSystem::Config config;
    config.params = params;
    config.seed = seed;
    FtGcsSystem system(net::Graph::ring(3), std::move(config));
    system.start();
    system.run_until(20.0 * params.T);
    std::vector<double> values;
    for (int id = 0; id < system.topology().num_nodes(); ++id) {
      values.push_back(system.node_logical(id));
    }
    return values;
  };
  const auto a = run(99);
  const auto b = run(99);
  const auto c = run(100);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "node " << i;
  }
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != c[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(FtGcsSystem, WorksOnNonLineTopologies) {
  for (const net::Graph& graph :
       {net::Graph::ring(4), net::Graph::star(4), net::Graph::grid(2, 2)}) {
    const Params params = practical_params();
    FtGcsSystem::Config config;
    config.params = params;
    config.seed = 31;
    FtGcsSystem system(net::Graph(graph), std::move(config));
    metrics::SkewProbe probe(system, params.T / 2.0, 10.0 * params.T);
    probe.start();
    system.start();
    system.run_until(40.0 * params.T);
    EXPECT_LE(probe.steady_max().intra_cluster,
              params.intra_cluster_skew_bound());
    EXPECT_LE(probe.steady_max().cluster_local, params.kappa);
    EXPECT_EQ(system.total_violations(), 0u);
  }
}

TEST(FtGcsSystem, GlobalModuleCanBeDisabled) {
  const Params params = practical_params();
  FtGcsSystem::Config config;
  config.params = params;
  config.seed = 37;
  config.enable_global_module = false;
  FtGcsSystem system(net::Graph::line(3), std::move(config));
  system.start();
  system.run_until(30.0 * params.T);
  std::uint64_t catchup = 0;
  for (int id = 0; id < system.topology().num_nodes(); ++id) {
    catchup += system.node(id).mode_counts()[static_cast<std::size_t>(
        ModeReason::kMaxCatchUp)];
  }
  EXPECT_EQ(catchup, 0u);
  EXPECT_EQ(system.total_violations(), 0u);
}

}  // namespace
}  // namespace ftgcs::core
