// Structural comparison of two trace files.
//
// diff_traces walks both streams record by record and stops at the FIRST
// divergence — a payload mismatch, one stream ending early, or one stream
// failing to decode (corruption surfaces as a decode error at a precise
// offset, which counts as divergence at the record being decoded). The
// XOR-delta time chain means a single flipped byte usually garbles every
// later record too; reporting the first divergent record is what makes
// the output actionable.
#pragma once

#include <string>

#include "trace/format.h"

namespace ftgcs::trace {

struct TraceDiff {
  bool identical = false;
  std::uint64_t records_compared = 0;  ///< matching records before divergence

  /// Divergence position (valid unless identical): the index both streams
  /// were at, and each file's byte offset of that record (the stream's end
  /// offset if it ran out of records first).
  std::uint64_t seq = 0;
  std::uint64_t offset_a = 0;
  std::uint64_t offset_b = 0;

  /// "payload", "a ended", "b ended", or a decode-error message from the
  /// stream that failed.
  std::string reason;

  /// The diverging records, when both decoded one.
  bool has_record_a = false;
  bool has_record_b = false;
  Record record_a;
  Record record_b;
};

/// Compares the traces at `path_a` and `path_b`. Throws std::runtime_error
/// only if a file cannot be OPENED or is not a trace file at all; decode
/// errors mid-stream are reported as divergence, not thrown.
TraceDiff diff_traces(const std::string& path_a, const std::string& path_b);

}  // namespace ftgcs::trace
