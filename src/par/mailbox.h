// Cross-shard delivery mailboxes for the conservative-parallel backend.
//
// One vector per ordered shard pair (src, dst). During a safe window only
// thread `src` appends to box (src → dst) and nobody reads it — an SPSC
// channel whose synchronization point is the window barrier itself: the
// barrier's happens-before edge publishes every append to the destination
// thread, so the boxes need no atomics or locks.
//
// Merge order is the determinism lever. At the barrier the destination
// shard gathers its inbound boxes and sorts by (arrival time, physical
// sender id, per-sender remote-send sequence) before seeding its queue.
// That key is invariant under the shard count: a node's send order is a
// property of its own (partition-invariant) execution, not of which
// shards its audience landed in, so any two runs — and the T = 1 single
// simulator — order equal-time cross-shard arrivals identically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event.h"
#include "sim/time_types.h"
#include "support/assert.h"

namespace ftgcs::par {

struct RemoteEvent {
  sim::Time at = 0.0;          ///< absolute arrival time (sampled at send)
  sim::EventPayload payload;   ///< encoded kPulse event (c = destination)
  std::int32_t from = -1;      ///< physical sender node
  std::uint64_t seq = 0;       ///< per-sender remote-send sequence
};

inline bool remote_event_before(const RemoteEvent& a, const RemoteEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.from != b.from) return a.from < b.from;
  return a.seq < b.seq;
}

class MailboxGrid {
 public:
  explicit MailboxGrid(int shards) : shards_(shards) {
    FTGCS_EXPECTS(shards >= 1);
    boxes_.resize(static_cast<std::size_t>(shards) *
                  static_cast<std::size_t>(shards));
  }

  /// Writer side (thread `src`, inside a window).
  void push(int src, int dst, const RemoteEvent& event) {
    boxes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(shards_) +
           static_cast<std::size_t>(dst)]
        .push_back(event);
  }

  /// Reader side (thread `dst`, at a barrier): moves every inbound entry
  /// into `out` (cleared first) in deterministic merged order and empties
  /// the boxes. Returns the number of entries merged.
  std::size_t drain_inbound(int dst, std::vector<RemoteEvent>& out) {
    out.clear();
    for (int src = 0; src < shards_; ++src) {
      auto& box =
          boxes_[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(shards_) +
                 static_cast<std::size_t>(dst)];
      out.insert(out.end(), box.begin(), box.end());
      box.clear();  // keeps capacity; the steady state allocates nothing
    }
    std::sort(out.begin(), out.end(), remote_event_before);
    return out.size();
  }

 private:
  int shards_;
  std::vector<std::vector<RemoteEvent>> boxes_;  ///< [src · T + dst]
};

}  // namespace ftgcs::par
