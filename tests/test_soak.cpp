// Randomized soak: the system invariants must hold across arbitrary
// combinations of topology, drift model, delay adversary, fault strategy,
// and seed. Each instance draws one configuration deterministically from
// its seed, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <memory>

#include "ftgcs.h"
#include "sim/rng.h"

namespace ftgcs {
namespace {

class Soak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Soak, RandomConfigurationKeepsInvariants) {
  sim::Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);

  const int f = 1 + static_cast<int>(rng.below(2));  // 1..2
  const double rho = rng.uniform(1e-4, 1e-3);
  const double U = rng.uniform(0.001, 0.05);
  const core::Params params = core::Params::practical(rho, 1.0, U, f);
  ASSERT_TRUE(params.feasible());

  net::Graph graph = net::Graph::line(2);
  switch (rng.below(4)) {
    case 0:
      graph = net::Graph::line(2 + static_cast<int>(rng.below(3)));
      break;
    case 1:
      graph = net::Graph::ring(3 + static_cast<int>(rng.below(3)));
      break;
    case 2:
      graph = net::Graph::star(3 + static_cast<int>(rng.below(3)));
      break;
    case 3:
      graph = net::Graph::gnp_connected(4, 0.6, GetParam());
      break;
  }

  net::AugmentedTopology topo(net::Graph(graph), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = GetParam();

  switch (rng.below(3)) {
    case 0:
      config.delay_model =
          std::make_unique<net::UniformDelay>(params.d, params.U);
      break;
    case 1:
      config.delay_model =
          std::make_unique<net::TwoPointDelay>(params.d, params.U);
      break;
    case 2:
      config.delay_model =
          std::make_unique<net::ClassedDelay>(params.d, params.U, params.k);
      break;
  }

  switch (rng.below(3)) {
    case 0:
      config.drift_model = std::make_unique<clocks::ConstantDrift>(
          params.rho, GetParam(), rng.chance(0.5));
      break;
    case 1:
      config.drift_model = std::make_unique<clocks::RandomWalkDrift>(
          params.rho, params.T, params.rho / 4.0, GetParam());
      break;
    case 2:
      config.drift_model = std::make_unique<clocks::SinusoidalDrift>(
          params.rho, 40.0 * params.T, params.T, GetParam());
      break;
  }

  const byz::StrategyKind strategies[] = {
      byz::StrategyKind::kSilent,       byz::StrategyKind::kTwoFaced,
      byz::StrategyKind::kClockLiar,    byz::StrategyKind::kSkewPump,
      byz::StrategyKind::kEquivocator,  byz::StrategyKind::kWindowEdge,
      byz::StrategyKind::kDelayJitter,
  };
  const auto kind = strategies[rng.below(7)];
  const int faults = static_cast<int>(rng.below(params.f + 1));  // 0..f
  config.fault_plan = byz::FaultPlan::uniform(
      topo, faults, kind, rng.uniform(0.2, 2.0) * params.E, GetParam());

  core::FtGcsSystem system(net::Graph(graph), std::move(config));
  metrics::SkewProbe probe(system, params.T / 2.0, 8.0 * params.T);
  probe.start();
  system.start();
  system.run_until(30.0 * params.T);

  EXPECT_LE(probe.steady_max().intra_cluster,
            params.intra_cluster_skew_bound())
      << "f=" << f << " faults=" << faults << " strategy "
      << byz::strategy_name(kind);
  EXPECT_LE(probe.steady_max().cluster_local, params.kappa);
  EXPECT_EQ(system.total_violations(), 0u)
      << "strategy " << byz::strategy_name(kind);
  for (int id = 0; id < system.topology().num_nodes(); ++id) {
    if (system.is_correct(id)) {
      EXPECT_GE(system.node(id).round(), 25);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak, ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace ftgcs
