#include "core/triggers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.h"

namespace ftgcs::core {

namespace {

/// Largest gap L̃_B − self over neighbors (how far ahead the most-ahead
/// neighbor is), and self − L̃_B (how far behind the most-behind one is).
struct Gaps {
  double max_ahead;   // max_B (est_B − self)
  double max_behind;  // max_B (self − est_B)
};

Gaps gaps_of(const TriggerView& view) {
  FTGCS_EXPECTS(!view.neighbors.empty());
  double max_ahead = -std::numeric_limits<double>::infinity();
  double max_behind = -std::numeric_limits<double>::infinity();
  for (double est : view.neighbors) {
    max_ahead = std::max(max_ahead, est - view.self);
    max_behind = std::max(max_behind, view.self - est);
  }
  return {max_ahead, max_behind};
}

}  // namespace

bool fast_trigger(const TriggerView& view, double kappa, double slack) {
  FTGCS_EXPECTS(kappa > 0.0);
  FTGCS_EXPECTS(slack >= 0.0);
  const Gaps g = gaps_of(view);
  // FT-1: ∃s with up ≥ 2sκ − δ  ⟺  s ≤ (up + δ) / 2κ
  // FT-2: ∀B self − est_B ≤ 2sκ + δ  ⟺  s ≥ (behind − δ) / 2κ
  const double s_hi = std::floor((g.max_ahead + slack) / (2.0 * kappa));
  const double s_lo =
      std::max(1.0, std::ceil((g.max_behind - slack) / (2.0 * kappa)));
  return s_hi >= s_lo;
}

bool slow_trigger(const TriggerView& view, double kappa, double slack) {
  FTGCS_EXPECTS(kappa > 0.0);
  FTGCS_EXPECTS(slack >= 0.0);
  const Gaps g = gaps_of(view);
  // ST-1: ∃s with behind ≥ (2s−1)κ − δ ⟺ 2s−1 ≤ (behind + δ)/κ
  // ST-2: ∀B est_B − self ≤ (2s−1)κ + δ ⟺ 2s−1 ≥ (ahead − δ)/κ
  const double m_hi = (g.max_behind + slack) / kappa;   // upper bound on 2s−1
  const double m_lo = (g.max_ahead - slack) / kappa;    // lower bound on 2s−1
  const double s_hi = std::floor((m_hi + 1.0) / 2.0);
  const double s_lo = std::max(1.0, std::ceil((m_lo + 1.0) / 2.0));
  return s_hi >= s_lo;
}

namespace {

struct WeightedGaps {
  double max_ahead_norm;   // max_A (est_A − self + δ_A) / κ_A
  double max_behind_norm;  // max_B (self − est_B − δ_B) / κ_B
};

/// Per-edge normalization: dividing each condition by its κ_e turns the
/// weighted existential into the same interval check as the uniform case.
WeightedGaps weighted_gaps(const WeightedTriggerView& view) {
  FTGCS_EXPECTS(!view.neighbors.empty());
  FTGCS_EXPECTS(view.kappas.size() == view.neighbors.size());
  FTGCS_EXPECTS(view.slacks.size() == view.neighbors.size());
  double ahead = -std::numeric_limits<double>::infinity();
  double behind = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < view.neighbors.size(); ++i) {
    FTGCS_EXPECTS(view.kappas[i] > 0.0);
    FTGCS_EXPECTS(view.slacks[i] >= 0.0);
    const double est = view.neighbors[i];
    ahead = std::max(ahead,
                     (est - view.self + view.slacks[i]) / view.kappas[i]);
    behind = std::max(behind,
                      (view.self - est - view.slacks[i]) / view.kappas[i]);
  }
  return {ahead, behind};
}

}  // namespace

bool weighted_fast_trigger(const WeightedTriggerView& view) {
  const WeightedGaps g = weighted_gaps(view);
  // FT-1: ∃A: (est_A − self + δ_A)/κ_A ≥ 2s   ⟺ s ≤ ahead_norm / 2
  // FT-2: ∀B: (self − est_B − δ_B)/κ_B ≤ 2s   ⟺ s ≥ behind_norm / 2
  const double s_hi = std::floor(g.max_ahead_norm / 2.0);
  const double s_lo = std::max(1.0, std::ceil(g.max_behind_norm / 2.0));
  return s_hi >= s_lo;
}

bool weighted_slow_trigger(const WeightedTriggerView& view) {
  // ST-1: ∃A: (self − est_A + δ_A)/κ_A ≥ 2s−1
  // ST-2: ∀B: (est_B − self − δ_B)/κ_B ≤ 2s−1
  FTGCS_EXPECTS(!view.neighbors.empty());
  FTGCS_EXPECTS(view.kappas.size() == view.neighbors.size());
  FTGCS_EXPECTS(view.slacks.size() == view.neighbors.size());
  double lead = -std::numeric_limits<double>::infinity();
  double chased = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < view.neighbors.size(); ++i) {
    FTGCS_EXPECTS(view.kappas[i] > 0.0);
    FTGCS_EXPECTS(view.slacks[i] >= 0.0);
    const double est = view.neighbors[i];
    lead = std::max(lead,
                    (view.self - est + view.slacks[i]) / view.kappas[i]);
    chased = std::max(chased,
                      (est - view.self - view.slacks[i]) / view.kappas[i]);
  }
  const double s_hi = std::floor((lead + 1.0) / 2.0);
  const double s_lo = std::max(1.0, std::ceil((chased + 1.0) / 2.0));
  return s_hi >= s_lo;
}

}  // namespace ftgcs::core
