// E3 — Lemma 3.6 / Claims B.15–B.17: unanimous clusters converge to a much
// smaller pulse diameter than general executions, and their amortized
// clock rates obey the fast/slow bounds that make the GCS simulation work.
//
// One cluster runs under adversarial two-point delays and spread drift.
// The γ schedule is driven externally in three regimes:
//   general         — γ alternates per node per round (worst-case mixing)
//   unanimous fast  — γ ≡ 1
//   unanimous slow  — γ ≡ 0
// We trace ‖p(r)‖ per round and the amortized rate of each logical clock,
// and compare with the predicted fixed points e_g^∞, e_f^∞, e_s^∞ and the
// Lemma 3.6 rate bounds.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "core/cluster_sync.h"
#include "core/params.h"
#include "metrics/table.h"
#include "metrics/trace.h"
#include "net/augmented.h"
#include "net/channel.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace {

using namespace ftgcs;

enum class Regime { kGeneral, kFast, kSlow };

const char* regime_name(Regime regime) {
  switch (regime) {
    case Regime::kGeneral:
      return "general (mixed gamma)";
    case Regime::kFast:
      return "unanimous fast";
    case Regime::kSlow:
      return "unanimous slow";
  }
  return "?";
}

struct Run {
  double steady_diameter = 0.0;  ///< mean ‖p(r)‖ over the last 20 rounds
  double min_rate = 0.0;         ///< amortized logical rate, min over nodes
  double max_rate = 0.0;
};

Run run_regime(const core::Params& params, Regime regime,
               std::uint64_t seed) {
  sim::Simulator sim;
  net::AugmentedTopology topo(net::Graph::line(1), params.k);
  net::Network network(sim, topo.adjacency(),
                       std::make_unique<net::TwoPointDelay>(params.d,
                                                            params.U),
                       sim::Rng(seed));
  sim::Rng master(seed ^ 0xe3e3ULL);

  core::ClusterSyncConfig cfg;
  cfg.tau1 = params.tau1;
  cfg.tau2 = params.tau2;
  cfg.tau3 = params.tau3;
  cfg.phi = params.phi;
  cfg.mu = params.mu;
  cfg.f = params.f;
  cfg.k = params.k;
  cfg.active = true;
  cfg.d = params.d;
  cfg.U = params.U;

  std::vector<std::unique_ptr<core::ClusterSyncEngine>> engines;
  metrics::PulseDiameterTrace trace(params.k);
  for (int i = 0; i < params.k; ++i) {
    auto engine = std::make_unique<core::ClusterSyncEngine>(
        sim, cfg, 1.0 + params.rho * i / (params.k - 1), master.fork(i));
    engine->set_own_index(i);
    auto* raw = engine.get();
    const int id = i;
    raw->on_pulse = [&network, &trace, raw, id](int round, sim::Time now) {
      trace.record_pulse(round, now);
      net::Pulse pulse;
      pulse.sender = id;
      pulse.kind = net::PulseKind::kClusterPulse;
      network.broadcast(id, pulse);
    };
    raw->on_round_start = [raw, regime, id, &sim](int round) {
      int gamma = 0;
      switch (regime) {
        case Regime::kGeneral:
          gamma = (round + id) % 2;
          break;
        case Regime::kFast:
          gamma = 1;
          break;
        case Regime::kSlow:
          gamma = 0;
          break;
      }
      // The engine's own round-start hook runs before timers are armed,
      // exactly where InterclusterSync sets γ.
      raw->clock().set_gamma(sim.now(), gamma);
    };
    network.register_handler(
        i, [&topo, raw](const net::Pulse& pulse, sim::Time now) {
          if (pulse.kind != net::PulseKind::kClusterPulse) return;
          raw->on_member_pulse(topo.index_in_cluster(pulse.sender), now);
        });
    engines.push_back(std::move(engine));
  }

  for (auto& engine : engines) engine->start();

  const int rounds = 60;
  // Rate measurement window: rounds 30..60 (converged).
  sim.run_until(30.0 * params.T);
  const sim::Time t0 = sim.now();
  std::vector<double> l0;
  for (auto& engine : engines) l0.push_back(engine->clock().read(t0));
  sim.run_until(rounds * params.T);
  const sim::Time t1 = sim.now();

  Run out;
  out.min_rate = 1e9;
  out.max_rate = 0.0;
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const double rate =
        (engines[i]->clock().read(t1) - l0[i]) / (t1 - t0);
    out.min_rate = std::min(out.min_rate, rate);
    out.max_rate = std::max(out.max_rate, rate);
  }
  const auto diameters = trace.complete_rounds();
  int counted = 0;
  for (const auto& [round, diameter] : diameters) {
    if (round >= 40 && round < 60) {
      out.steady_diameter += diameter;
      ++counted;
    }
  }
  if (counted > 0) out.steady_diameter /= counted;
  return out;
}

}  // namespace

int main() {
  using namespace ftgcs;

  std::printf("\n==========================================================\n");
  std::printf("E3 — unanimous-cluster convergence (Lemma 3.6, Claim B.15)\n");
  std::printf("==========================================================\n");

  for (const bool strict : {false, true}) {
    const core::Params params =
        strict ? core::Params::paper_strict(1e-6, 1.0, 0.001, 1)
               : core::Params::practical(1e-3, 1.0, 0.01, 1);
    std::printf("\n-- %s params (rho=%g) --\n",
                strict ? "paper-strict" : "practical", params.rho);
    std::printf("predicted fixed points: e_g=%.5g e_fast=%.5g e_slow=%.5g "
                "(k_unanimity=%d)\n",
                params.rec_general.fixed_point(),
                params.rec_fast.fixed_point(),
                params.rec_slow.fixed_point(), params.k_unanimity);
    std::printf("rate bounds: fast >= %.8f; slow in [%.8f, %.8f]\n",
                params.fast_cluster_rate_lower_bound(),
                params.slow_cluster_rate_lower_bound(),
                params.slow_cluster_rate_upper_bound());

    metrics::Table table({"regime", "steady |p(r)| (measured)",
                          "predicted e_inf", "amortized rate min",
                          "amortized rate max"});
    for (Regime regime :
         {Regime::kGeneral, Regime::kFast, Regime::kSlow}) {
      const Run run = run_regime(params, regime, 5);
      double predicted = params.rec_general.fixed_point();
      if (regime == Regime::kFast) predicted = params.rec_fast.fixed_point();
      if (regime == Regime::kSlow) predicted = params.rec_slow.fixed_point();
      table.add_row({regime_name(regime),
                     metrics::Table::num(run.steady_diameter, 5),
                     metrics::Table::num(predicted, 5),
                     metrics::Table::num(run.min_rate, 8),
                     metrics::Table::num(run.max_rate, 8)});
    }
    table.print(std::cout);
  }
  std::printf("\nshape check: unanimous regimes converge to diameters well "
              "below the general regime's;\nfast-regime amortized rates "
              "clear the (1+phi)(1+7mu/8) floor, slow regimes sit in the "
              "(1+phi)(1±mu/8) band.\n");
  return 0;
}
