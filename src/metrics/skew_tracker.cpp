#include "metrics/skew_tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.h"

namespace ftgcs::metrics {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-thread scratch for the cluster reductions, so periodic probes and
/// tight sweep loops do not allocate per sample (SweepRunner workers each
/// get their own copy).
struct Scratch {
  std::vector<double> cluster_lo;
  std::vector<double> cluster_hi;
  std::vector<double> cluster_clock;
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

}  // namespace

SkewSample measure_skews(const core::SystemColumns& columns,
                         const net::AugmentedTopology& topo) {
  SkewSample out;
  out.at = columns.at;

  const int n = columns.num_nodes();
  FTGCS_EXPECTS(n == topo.num_nodes());

  // Cluster clocks L_C = (L⁺ + L⁻)/2 over correct members, plus global
  // node-level extremes — one linear pass over the columns.
  const int clusters = topo.num_clusters();
  Scratch& s = scratch();
  s.cluster_lo.assign(static_cast<std::size_t>(clusters), kInf);
  s.cluster_hi.assign(static_cast<std::size_t>(clusters), -kInf);
  double global_lo = kInf;
  double global_hi = -kInf;
  for (int id = 0; id < n; ++id) {
    if (!columns.correct[static_cast<std::size_t>(id)]) continue;
    const double logical = columns.logical[static_cast<std::size_t>(id)];
    const auto c = static_cast<std::size_t>(topo.cluster_of(id));
    s.cluster_lo[c] = std::min(s.cluster_lo[c], logical);
    s.cluster_hi[c] = std::max(s.cluster_hi[c], logical);
    global_lo = std::min(global_lo, logical);
    global_hi = std::max(global_hi, logical);
  }
  out.node_global = global_hi >= global_lo ? global_hi - global_lo : 0.0;

  s.cluster_clock.assign(static_cast<std::size_t>(clusters), 0.0);
  double cg_lo = kInf;
  double cg_hi = -kInf;
  for (int c = 0; c < clusters; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (s.cluster_hi[i] < s.cluster_lo[i]) continue;  // no correct member
    s.cluster_clock[i] = (s.cluster_lo[i] + s.cluster_hi[i]) / 2.0;
    cg_lo = std::min(cg_lo, s.cluster_clock[i]);
    cg_hi = std::max(cg_hi, s.cluster_clock[i]);
    out.intra_cluster =
        std::max(out.intra_cluster, s.cluster_hi[i] - s.cluster_lo[i]);
  }
  out.cluster_global = cg_hi >= cg_lo ? cg_hi - cg_lo : 0.0;

  // Cluster-local skew over E, and node-local skew over augmented edges
  // between correct nodes. Cluster edges are covered by intra-cluster
  // extremes; intercluster edges need the pairwise extremes of adjacent
  // clusters.
  out.node_local = out.intra_cluster;
  const net::Graph& g = topo.cluster_graph();
  for (int b = 0; b < clusters; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    if (s.cluster_hi[bi] < s.cluster_lo[bi]) continue;
    for (int c : g.neighbors(b)) {
      const auto ci = static_cast<std::size_t>(c);
      if (c < b || s.cluster_hi[ci] < s.cluster_lo[ci]) continue;
      out.cluster_local =
          std::max(out.cluster_local,
                   std::abs(s.cluster_clock[bi] - s.cluster_clock[ci]));
      const double spread =
          std::max(std::abs(s.cluster_hi[bi] - s.cluster_lo[ci]),
                   std::abs(s.cluster_hi[ci] - s.cluster_lo[bi]));
      out.node_local = std::max(out.node_local, spread);
    }
  }
  return out;
}

SkewSample measure_skews(const core::SystemSnapshot& snapshot,
                         const net::AugmentedTopology& topo) {
  core::SystemColumns columns;
  columns.at = snapshot.at;
  const std::size_t n = snapshot.nodes.size();
  columns.logical.assign(n, 0.0);
  columns.correct.assign(n, 0);
  columns.gamma.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& node = snapshot.nodes[i];
    columns.correct[i] = node.correct ? 1 : 0;
    columns.logical[i] = node.logical;
    columns.gamma[i] = node.gamma;
  }
  return measure_skews(columns, topo);
}

SkewProbe::SkewProbe(core::FtGcsSystem& system, sim::Duration interval,
                     sim::Time steady_after)
    : system_(system), interval_(interval), steady_after_(steady_after) {
  FTGCS_EXPECTS(interval > 0.0);
  self_ = system.simulator().register_sink(this);
}

void SkewProbe::start() {
  system_.simulator().post_after(interval_, sim::EventKind::kProbe, self_,
                                 {});
}

void SkewProbe::on_event(sim::EventKind kind, const sim::EventPayload&,
                         sim::Time /*now*/) {
  FTGCS_ASSERT(kind == sim::EventKind::kProbe);
  sample_once();
}

namespace {

void fold_max(SkewSample& into, const SkewSample& sample) {
  into.at = sample.at;
  into.node_local = std::max(into.node_local, sample.node_local);
  into.cluster_local = std::max(into.cluster_local, sample.cluster_local);
  into.intra_cluster = std::max(into.intra_cluster, sample.intra_cluster);
  into.node_global = std::max(into.node_global, sample.node_global);
  into.cluster_global = std::max(into.cluster_global, sample.cluster_global);
}

}  // namespace

void SkewProbe::sample_once() {
  system_.snapshot_columns(columns_);
  const SkewSample sample = measure_skews(columns_, system_.topology());
  samples_.push_back(sample);
  fold_max(overall_max_, sample);
  if (sample.at >= steady_after_) {
    fold_max(steady_max_, sample);
    ++steady_samples_;
  }
  system_.simulator().post_after(interval_, sim::EventKind::kProbe, self_,
                                 {});
}

}  // namespace ftgcs::metrics
