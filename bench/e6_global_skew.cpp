// E6 — Theorem C.3 / Lemmas C.1–C.2: the global-skew module keeps the
// global cluster skew within O(δ·D).
//
// Two directions:
//  (a) contraction — start with global skew far ABOVE the bound (steep
//      ramp) and verify the system drives it into the c·δ·D band;
//  (b) containment — start synchronized under worst-case split drift and
//      verify the band is never left.
// Also reports the M_v estimate lag against the Lemma C.2 shape.
#include "bench_util.h"

#include "clocks/drift_model.h"

namespace {

using namespace ftgcs;

struct Containment {
  double max_global = 0.0;
  double max_m_lag = 0.0;
};

Containment run_containment(const core::Params& params, int clusters,
                            double rounds, std::uint64_t seed) {
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  std::vector<int> group;
  for (int c = 0; c < clusters; ++c) {
    for (int i = 0; i < params.k; ++i) group.push_back(c);
  }
  config.drift_model = std::make_unique<clocks::SpatialSplitDrift>(
      params.rho, group, clusters / 2, 50.0 * params.T);
  core::FtGcsSystem system(net::Graph::line(clusters), std::move(config));
  system.start();
  Containment out;
  for (int step = 1; step <= static_cast<int>(rounds); ++step) {
    system.run_until(step * params.T);
    const auto snap = system.snapshot();
    const auto skews = metrics::measure_skews(snap, system.topology());
    out.max_global = std::max(out.max_global, skews.cluster_global);
    double lmax = 0.0;
    for (const auto& node : snap.nodes) {
      if (node.correct) lmax = std::max(lmax, node.logical);
    }
    for (int id = 0; id < system.topology().num_nodes(); ++id) {
      out.max_m_lag = std::max(
          out.max_m_lag,
          lmax - system.node(id).max_estimate(system.simulator().now()));
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  banner("E6", "global skew O(delta*D) (Theorem C.3) and M_v lag "
               "(Lemma C.2)");
  std::printf("delta=%.4f c_global=%.1f predicted band: %.4f * D\n\n",
              params.delta_trig, params.c_global,
              params.c_global * params.delta_trig);

  metrics::Table table({"D", "band c*delta*D", "(a) ramp start",
                        "(a) global after drain", "in band",
                        "(b) split-drift max global", "(b) max Mv lag"});
  for (int diameter : {2, 4, 8, 16}) {
    const int clusters = diameter + 1;
    // (a) contraction from 3x the band.
    const double band = params.predicted_global_skew(diameter);
    const int gap_rounds =
        static_cast<int>(3.0 * band / (diameter * params.T)) + 1;
    const double drain_rounds =
        200.0 + 1.3 * (gap_rounds * params.T * diameter) /
                    (params.mu * params.T);
    const RampOutcome ramp =
        run_ramp(params, clusters, gap_rounds, drain_rounds, 5);

    // (b) containment under split drift (shorter horizon).
    const Containment contain =
        run_containment(params, clusters, 400.0, 6);

    table.add_row({metrics::Table::integer(diameter),
                   metrics::Table::num(band, 4),
                   metrics::Table::num(ramp.initial_global, 4),
                   metrics::Table::num(ramp.final_global, 4),
                   ramp.final_global <= band ? "yes" : "NO",
                   metrics::Table::num(contain.max_global, 4),
                   metrics::Table::num(contain.max_m_lag, 4)});
  }
  table.print(std::cout);
  std::printf("\nshape check: column (a) drains into the linear-in-D band; "
              "(b) never leaves it; the\nM_v lag grows at most linearly "
              "in D (Lemma C.2's O(delta*D)).\n");
  return 0;
}
