// Reusable scratch columns for batch-channel receivers.
//
// The partitioned drain hands receivers tranches of up to a few thousand
// events (Simulator::kMaxRun); a vectorized receiver wants to decode them
// into flat columns (lane index, member index, fire time, computed value)
// before the array sweeps. Those columns are pure scratch — dead between
// runs — so the Simulator owns ONE arena and every receiver bound to its
// batch channel borrows it: no per-run allocation, no per-receiver copies
// going cold between runs. There is at most one batch channel per
// simulator and runs are processed one at a time, so borrowing needs no
// further coordination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftgcs::sim {

struct BatchScratch {
  std::vector<std::int32_t> lane;    ///< resolved receive-lane index
  std::vector<std::int32_t> member;  ///< sender's index within its cluster
  std::vector<double> at;            ///< per-event fire time
  std::vector<double> value;         ///< computed arrival values

  /// Grows every column to hold `n` entries (never shrinks — the arena is
  /// sized once to the largest tranche and stays warm).
  void ensure(std::size_t n) {
    if (lane.size() < n) {
      lane.resize(n);
      member.resize(n);
      at.resize(n);
      value.resize(n);
    }
  }
};

}  // namespace ftgcs::sim
