#include "baselines/tree_sync.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "support/assert.h"

namespace ftgcs::baselines {

TreeSyncSystem::TreeSyncSystem(net::Graph graph, Config config)
    : graph_(std::move(graph)), config_(std::move(config)) {
  FTGCS_EXPECTS(config_.share_period > 0.0);
  FTGCS_EXPECTS(config_.root >= 0 && config_.root < graph_.num_vertices());
  FTGCS_EXPECTS(config_.initial_logical.empty() ||
                static_cast<int>(config_.initial_logical.size()) ==
                    graph_.num_vertices());

  parent_ = graph_.bfs_tree(config_.root);

  sim::Rng master(config_.seed);
  auto delays = config_.delay_model
                    ? std::move(config_.delay_model)
                    : std::make_unique<net::UniformDelay>(config_.d,
                                                          config_.U);
  network_ = std::make_unique<net::Network>(sim_, graph_.adjacency(),
                                            std::move(delays), master.fork(1));

  nodes_.reserve(graph_.num_vertices());
  for (int id = 0; id < graph_.num_vertices(); ++id) {
    const double l0 =
        config_.initial_logical.empty() ? 0.0 : config_.initial_logical[id];
    nodes_.push_back(std::make_unique<Node>(sim_.now(), l0));
    network_->register_handler(
        id, [this, id](const net::Pulse& pulse, sim::Time now) {
          on_pulse(id, pulse, now);
        });
  }

  drift_ = config_.drift_model
               ? std::move(config_.drift_model)
               : std::make_unique<clocks::ConstantDrift>(
                     config_.rho, config_.seed ^ 0x7ee5ULL, /*spread=*/true);
}

void TreeSyncSystem::start() {
  std::vector<clocks::RateSink> sinks;
  sinks.reserve(nodes_.size());
  for (auto& node : nodes_) {
    Node* raw = node.get();
    sinks.push_back([raw](sim::Time now, double rate) {
      raw->hardware.set_rate(now, rate);
      raw->logical.set_hardware_rate(now, rate);
    });
  }
  drift_->install(sim_, std::move(sinks));

  // Only the root initiates sync pulses; everyone else echoes.
  share_tick(config_.root);
}

void TreeSyncSystem::share_tick(int node) {
  net::Pulse pulse;
  pulse.sender = node;
  pulse.kind = net::PulseKind::kShare;
  pulse.value = nodes_[node]->logical.read(sim_.now());
  network_->broadcast(node, pulse);
  sim_.after(config_.share_period, [this, node] { share_tick(node); });
}

void TreeSyncSystem::on_pulse(int node, const net::Pulse& pulse,
                              sim::Time now) {
  if (pulse.kind != net::PulseKind::kShare) return;
  if (pulse.sender != parent_[node]) return;  // slaves follow parents only
  // Step to the pulse value plus the expected one-hop delay, then echo the
  // (re-anchored) pulse towards the children immediately.
  const double estimate = pulse.value + (config_.d - config_.U / 2.0);
  nodes_[node]->logical.jump(now, estimate);
  net::Pulse echo;
  echo.sender = node;
  echo.kind = net::PulseKind::kShare;
  echo.value = estimate;
  network_->broadcast(node, echo);
}

double TreeSyncSystem::node_logical(int id) const {
  return nodes_[id]->logical.read(sim_.now());
}

double TreeSyncSystem::local_skew() const {
  double worst = 0.0;
  for (int v = 0; v < graph_.num_vertices(); ++v) {
    for (int w : graph_.neighbors(v)) {
      if (w < v) continue;
      worst = std::max(worst,
                       std::abs(node_logical(v) - node_logical(w)));
    }
  }
  return worst;
}

double TreeSyncSystem::global_skew() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int v = 0; v < graph_.num_vertices(); ++v) {
    const double value = node_logical(v);
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  return hi - lo;
}

}  // namespace ftgcs::baselines
