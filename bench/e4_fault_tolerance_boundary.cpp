// E4 — the resilience boundary (§2 "Faults", n > 3f necessity):
// with ≤ f Byzantine members per cluster of k = 3f+1 every bound holds;
// at f+1 the trimmed agreement can be steered and guarantees degrade.
//
// A line of 3 clusters; attack strength sweeps across strategies; the
// actual number of faulty members per cluster sweeps 0..f+1.
#include "bench_util.h"

namespace {

using namespace ftgcs;

struct Outcome {
  double max_intra = 0.0;
  double max_local = 0.0;
  std::uint64_t violations = 0;
};

Outcome run(const core::Params& params, byz::StrategyKind kind, double param,
            int faults_per_cluster, std::uint64_t seed) {
  net::AugmentedTopology topo(net::Graph::line(3), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  config.fault_plan =
      byz::FaultPlan::uniform(topo, faults_per_cluster, kind, param, seed);
  core::FtGcsSystem system(net::Graph::line(3), std::move(config));
  metrics::SkewProbe probe(system, params.T / 4.0, 5.0 * params.T);
  probe.start();
  system.start();
  system.run_until(60.0 * params.T);
  return {probe.overall_max().intra_cluster,
          probe.overall_max().cluster_local, system.total_violations()};
}

}  // namespace

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  banner("E4", "fault-tolerance boundary (f tolerated, f+1 not; k = 3f+1)");
  std::printf("k=%d f=%d bound=%.4f kappa=%.4f\n\n", params.k, params.f,
              params.intra_cluster_skew_bound(), params.kappa);

  metrics::Table table({"strategy", "faults/cluster", "max intra",
                        "within bound", "max local", "violations"});
  const struct {
    byz::StrategyKind kind;
    double param;
  } attacks[] = {
      {byz::StrategyKind::kSilent, 0.0},
      {byz::StrategyKind::kTwoFaced, 3.0 * params.E},
      {byz::StrategyKind::kClockLiar, 100.0},
      {byz::StrategyKind::kSkewPump, 3.0 * params.E},
      {byz::StrategyKind::kEquivocator, 3.0 * params.E},
  };
  for (const auto& attack : attacks) {
    for (int faults = 0; faults <= params.f + 1; ++faults) {
      Outcome worst;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Outcome outcome =
            run(params, attack.kind, attack.param, faults, seed);
        worst.max_intra = std::max(worst.max_intra, outcome.max_intra);
        worst.max_local = std::max(worst.max_local, outcome.max_local);
        worst.violations += outcome.violations;
      }
      table.add_row(
          {byz::strategy_name(attack.kind),
           metrics::Table::integer(faults),
           metrics::Table::num(worst.max_intra, 4),
           worst.max_intra <= params.intra_cluster_skew_bound() ? "yes"
                                                                : "NO",
           metrics::Table::num(worst.max_local, 4),
           metrics::Table::integer(
               static_cast<long long>(worst.violations))});
    }
  }
  table.print(std::cout);
  std::printf("\nshape check: rows with <= %d fault(s) stay within bounds "
              "with 0 violations; f+1-fault\nrows of the active attacks "
              "(two-faced / equivocator) break the bound or rack up "
              "violations.\n",
              params.f);
  return 0;
}
