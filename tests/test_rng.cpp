#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ftgcs::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LE(x, 3.5);
  }
}

TEST(Rng, UniformDegenerateInterval) {
  Rng rng(11);
  EXPECT_DOUBLE_EQ(rng.uniform(4.0, 4.0), 4.0);
}

TEST(Rng, BelowCoversRangeUniformly) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 10 - trials / 50);
    EXPECT_LT(c, trials / 10 + trials / 50);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(42), parent2(42);
  Rng childa = parent1.fork(1);
  Rng childb = parent2.fork(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(childa.next_u64(), childb.next_u64());

  // Different salts give different streams.
  Rng parent3(42);
  Rng child1 = parent3.fork(1);
  Rng child2 = parent3.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace ftgcs::sim
