#!/usr/bin/env python3
"""Schema guard for the deterministic metrics series (ftgcs-metrics-v1).

Validates one or more JSONL files written via `ftgcs_bench --metrics`:

  * line 1 is a header object with schema id "ftgcs-metrics-v1" and the
    topology/bound fields a reader needs (nodes, clusters, edges,
    hist_scale, bound_{local,global,intra,m_lag});
  * every data row is a FLAT json object (no nested objects/arrays —
    structure in the series would silently break ftgcs_report);
  * all rows share one identical key tuple in one identical order (the
    schema is fixed at registration; a drifting field set means a
    conditional registration leaked into the probe loop);
  * "t" and "probe" are strictly increasing, probe from 1 in steps of 1;
  * every value is a finite number (the sampler never serializes
    inf/nan — margins of disabled families are dropped from the schema
    instead);
  * histogram field families are internally consistent:
    p50 <= p99 <= max for both "local" and "global".

When a sibling <path>.profile exists it is checked too (header schema id
"ftgcs-profile-v1", plane "nondeterministic", every row carries a known
"section" tag) — but none of its VALUES are constrained: that file is
wall-clock material by contract.

Exit status: 0 all files valid, 1 violations found, 2 usage/IO error.
"""

import json
import math
import os
import sys

REQUIRED_HEADER = (
    "schema", "nodes", "clusters", "edges", "hist_scale",
    "bound_local", "bound_global", "bound_intra", "bound_m_lag",
)
REQUIRED_ROW = (
    "t", "probe", "events", "messages",
    "local_max", "local_p99", "local_p50",
    "global_max", "global_p99", "global_p50",
    "cluster_local", "cluster_global", "intra_max",
)
PROFILE_SECTIONS = {"diag", "phase", "summary", "span"}


def fail(path, lineno, message):
    print("%s:%d: %s" % (path, lineno, message))
    return 1


def parse_line(path, lineno, line, errors):
    try:
        obj = json.loads(line)
    except ValueError as exc:
        errors.append(fail(path, lineno, "unparsable json: %s" % exc))
        return None
    if not isinstance(obj, dict):
        errors.append(fail(path, lineno, "row is not a json object"))
        return None
    for key, value in obj.items():
        if isinstance(value, (dict, list)):
            errors.append(fail(
                path, lineno,
                "nested structure under %r (series rows must stay flat)"
                % key))
            return None
    return obj


def check_series(path):
    errors = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        return fail(path, 1, "empty file")

    header = parse_line(path, 1, lines[0], errors)
    if header is None:
        return 1
    if header.get("schema") != "ftgcs-metrics-v1":
        return fail(path, 1, "bad schema id: %r" % header.get("schema"))
    for key in REQUIRED_HEADER:
        if key not in header:
            errors.append(fail(path, 1, "header missing %r" % key))

    monitored = header.get("bound_local", 0) > 0 or \
        header.get("bound_global", 0) > 0
    keys = None
    prev_t = -math.inf
    rows = 0
    for lineno, line in enumerate(lines[1:], start=2):
        row = parse_line(path, lineno, line, errors)
        if row is None:
            continue
        rows += 1
        row_keys = tuple(row.keys())
        if keys is None:
            keys = row_keys
            for key in REQUIRED_ROW:
                if key not in row:
                    errors.append(fail(path, lineno, "row missing %r" % key))
            if monitored and "violations" not in row:
                errors.append(fail(
                    path, lineno,
                    "monitored series (positive bounds in header) without a "
                    "'violations' field"))
        elif row_keys != keys:
            errors.append(fail(
                path, lineno,
                "field set drifted from first row: %r vs %r"
                % (row_keys, keys)))
            continue
        for key, value in row.items():
            if not isinstance(value, (int, float)) or \
                    isinstance(value, bool) or not math.isfinite(value):
                errors.append(fail(
                    path, lineno, "non-finite or non-numeric %r: %r"
                    % (key, value)))
        t = row.get("t")
        if isinstance(t, (int, float)):
            if t <= prev_t:
                errors.append(fail(
                    path, lineno, "t not strictly increasing (%r after %r)"
                    % (t, prev_t)))
            prev_t = t
        if row.get("probe") != rows:
            errors.append(fail(
                path, lineno, "probe %r, expected %d" % (row.get("probe"),
                                                         rows)))
        for family in ("local", "global"):
            p50 = row.get(family + "_p50", 0)
            p99 = row.get(family + "_p99", 0)
            top = row.get(family + "_max", 0)
            if not p50 <= p99 <= top:
                errors.append(fail(
                    path, lineno,
                    "%s percentiles out of order: p50=%r p99=%r max=%r"
                    % (family, p50, p99, top)))
    if rows == 0:
        errors.append(fail(path, 1, "header but no probe rows"))
    if not errors:
        print("%s: OK (%d probes, %d fields)" % (path, rows,
                                                 len(keys or ())))
    return 1 if errors else 0


def check_profile(path):
    errors = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        return fail(path, 1, "empty file")
    header = parse_line(path, 1, lines[0], errors)
    if header is None:
        return 1
    if header.get("schema") != "ftgcs-profile-v1":
        return fail(path, 1, "bad schema id: %r" % header.get("schema"))
    if header.get("plane") != "nondeterministic":
        errors.append(fail(
            path, 1, "profile header must declare plane=nondeterministic"))
    for lineno, line in enumerate(lines[1:], start=2):
        row = parse_line(path, lineno, line, errors)
        if row is None:
            continue
        if row.get("section") not in PROFILE_SECTIONS:
            errors.append(fail(
                path, lineno, "unknown section %r" % row.get("section")))
    if not errors:
        print("%s: OK (%d rows)" % (path, len(lines) - 1))
    return 1 if errors else 0


def main(argv):
    if len(argv) < 2:
        print("usage: check_metrics_schema.py <metrics.jsonl>...",
              file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        if not os.path.isfile(path):
            print("%s: no such file" % path, file=sys.stderr)
            return 2
        status |= check_series(path)
        profile = path + ".profile"
        if os.path.isfile(profile):
            status |= check_profile(profile)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
