// Global-skew control (Appendix C, Lemmas C.1/C.2, Theorem C.3).
//
// Each node maintains a conservative estimate M_v of the maximum correct
// logical clock L^max:
//
//  * M_v(0) = 0 and M_v increases at rate h_v/(1+ρ) ≤ 1, so local growth
//    can never overtake L^max (whose rate is ≥ 1);
//  * whenever M_v reaches a multiple ℓ·(d−U), v broadcasts a level-ℓ pulse
//    (distinguishable from the ClusterSync pulses: PulseKind::kMaxLevel);
//  * when v has registered level-ℓ pulses from f+1 distinct members of one
//    adjacent cluster, it sets M_v ← max(M_v, (ℓ+1)·(d−U)) and sends out
//    the pulses it now newly covers — a fault-tolerant flooding that keeps
//    M_v within O(δ·D) of L^max (Lemma C.2).
//
// The catch-up rule (Theorem C.3) — go fast when L_v ≤ M_v − c·δ and no
// trigger fires — lives in InterclusterController; this class only
// maintains M_v.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"

namespace ftgcs::core {

class MaxEstimator final : public sim::EventSink {
 public:
  struct Config {
    double d = 0.0;    ///< max delay; level spacing is d − U
    double U = 0.0;    ///< delay uncertainty; requires U < d
    double rho = 0.0;  ///< drift bound (M grows at h/(1+ρ))
    int f = 0;         ///< per-cluster fault budget (quorum size f+1)
  };

  MaxEstimator(sim::Simulator& simulator, const Config& cfg,
               double initial_hardware_rate);

  /// Begins the level-pulse schedule. Requires on_emit to be set.
  void start();

  /// M_v(now).
  double read(sim::Time now) const;

  /// Forwards the node's hardware-rate change (M rate is h/(1+ρ)).
  void set_hardware_rate(sim::Time now, double rate);

  /// Handles a received level pulse from member `member_index` of
  /// `cluster`. Own loopback pulses must be filtered by the caller
  /// (`from_self`): a node's own pulse carries no new information.
  void on_level_pulse(int cluster, int member_index, bool from_self,
                      int level, sim::Time now);

  /// True if a level pulse carries no news (level below the flooding
  /// floor). Callers may use this to skip work before routing; the same
  /// filter is applied inside on_level_pulse.
  bool is_stale_level(int level) const { return level < next_level_ - 1; }

  /// Folds the node's own logical clock value into M_v: L_v is always a
  /// lower bound on L^max, and the flooding argument of Lemma C.2 relies
  /// on M_w(t) ≥ L_w(t). Called by the owner at round starts.
  void observe_own_clock(double logical, sim::Time now);

  /// Emission hook: the owner broadcasts a kMaxLevel pulse with `level`.
  std::function<void(int level)> on_emit;

  /// Crash-stop: cancels the pending emission timer and pins the estimator
  /// silent — no further emissions are ever scheduled (rate changes
  /// included). read() stays valid.
  void halt();

  /// Binds a write-through mirror of the staleness floor (the value
  /// is_stale_level compares against: next-level − 1) and publishes it
  /// immediately. The columnar dispatch layer uses it to classify — and
  /// drop — stale level pulses without touching this object.
  void bind_level_floor(std::int32_t* floor) {
    floor_mirror_ = floor;
    publish_floor();
  }

  std::uint64_t jumps() const { return jumps_; }
  int highest_level_sent() const { return next_level_ - 1; }

  /// EventSink: the pending level-emission timer (kTimer).
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;

 private:
  void advance(sim::Time now);
  void schedule_next_emission(sim::Time now);
  void emit_through(double value);
  void publish_floor() {
    if (floor_mirror_ != nullptr) *floor_mirror_ = next_level_ - 1;
  }

  sim::Simulator& sim_;
  Config cfg_;
  sim::SinkId self_ = sim::kInvalidSink;
  double spacing_;  ///< d − U

  sim::Time t0_ = 0.0;
  double m0_ = 0.0;
  double rate_;

  int next_level_ = 1;  ///< next level to emit
  std::int32_t* floor_mirror_ = nullptr;  ///< staleness floor write-through
  sim::EventId pending_emit_{};
  bool halted_ = false;

  /// Distinct member indices heard per (cluster, level), kept flat: one
  /// entry per sending cluster (linear scan — degrees are small), holding
  /// a sliding window of member bitmasks indexed by level − base. Levels
  /// below next_level_ − 1 are stale by the staleness filter, so the
  /// window's base advances with next_level_ and the structure stays tiny
  /// — and, unlike the map-of-map-of-set it replaces, processing a level
  /// pulse allocates nothing once the window is warm. Each level owns
  /// `words` 64-bit words; the stride regrows (rare) if a member index
  /// ≥ 64·words appears, so any cluster size k is supported.
  /// Dense levels span at most kWindowLevels above the base; levels past
  /// that (reachable only via forged pulses or extreme ramps) go to the
  /// sparse `overflow` list, so a Byzantine kMaxLevel pulse with a huge
  /// level costs one small allocation — as with the old map — instead of
  /// an O(level) window resize.
  static constexpr int kWindowLevels = 4096;
  struct HeardWindow {
    int cluster = -1;
    int base = 1;          ///< level of the first stride block
    std::size_t words = 1; ///< 64-bit words per level
    std::vector<std::uint64_t> bits;  ///< bits[(level − base)·words + w]
    /// (level, member bitmask words) for levels ≥ base + kWindowLevels.
    std::vector<std::pair<int, std::vector<std::uint64_t>>> overflow;
  };
  HeardWindow& heard_window(int cluster);
  /// Sets `member_index`'s bit for `level` and returns the number of
  /// distinct members heard at that level.
  int heard_insert(HeardWindow& window, int level, int member_index);

  std::vector<HeardWindow> heard_;
  std::uint64_t jumps_ = 0;
  bool started_ = false;
};

}  // namespace ftgcs::core
