// The "simplistic approach" of the paper's introduction: a fault-tolerant
// master/slave hierarchy of clusters built on pulse echo.
//
// Clusters form a BFS tree over the cluster graph. The root cluster runs
// Lynch–Welch (Algorithm 1, reusing core::ClusterSyncEngine) and emits one
// pulse per member per round. A node in a non-root cluster at depth ℓ
// counts the pulses of its parent cluster's members; when the (f+1)-th
// distinct member delivers its w-th pulse (so at least one correct member
// reached round w), the node fires "wave" w:
//
//   * steps its logical clock to (w−1)·T + τ1 + ℓ·(d − U/2) — the root's
//     pulse value compensated by the expected cumulative hop delay, and
//   * immediately echoes a pulse of its own, which its children count.
//
// Tolerates f Byzantine members per cluster (f faulty parents cannot fire
// a wave on their own, nor suppress the (f+1)-th correct arrival).
// Global skew is O(depth · (U + ρ·d)); but the correction wave travels one
// cluster-hop per message delay, so — exactly as the paper argues — a
// distributed skew ramp gets compressed onto the wavefront edge
// (experiment E5).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "byz/fault_plan.h"
#include "byz/strategy.h"
#include "clocks/drift_model.h"
#include "clocks/logical_clock.h"
#include "core/cluster_sync.h"
#include "core/params.h"
#include "net/augmented.h"
#include "net/graph.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ftgcs::baselines {

/// Non-root member: echoes its parent cluster's pulse waves.
class EchoClusterNode {
 public:
  EchoClusterNode(sim::Simulator& simulator, net::Network& network,
                  const net::AugmentedTopology& topo,
                  const core::Params& params, int node_id, int parent_cluster,
                  int depth, double initial_logical);

  void on_pulse(const net::Pulse& pulse, sim::Time now);
  void set_hardware_rate(sim::Time now, double rate) {
    clock_.set_hardware_rate(now, rate);
  }

  double logical(sim::Time now) const { return clock_.read(now); }
  int waves_fired() const { return wave_fired_; }

 private:
  void fire_wave(int wave, sim::Time now);

  sim::Simulator& sim_;
  net::Network& net_;
  const net::AugmentedTopology& topo_;
  core::Params params_;
  int id_;
  int parent_cluster_;
  int depth_;

  clocks::LogicalClock clock_;
  std::vector<int> parent_counts_;   ///< pulses seen per parent member
  std::map<int, int> wave_hits_;     ///< wave -> distinct members arrived
  int wave_fired_ = 0;
};

class ClusterTreeSystem {
 public:
  struct Config {
    core::Params params;
    std::uint64_t seed = 1;
    int root_cluster = 0;
    std::unique_ptr<net::DelayModel> delay_model;
    std::unique_ptr<clocks::DriftModel> drift_model;
    byz::FaultPlan fault_plan;
    std::vector<int> cluster_round_offsets;  ///< whole rounds, per cluster
  };

  ClusterTreeSystem(net::Graph cluster_graph, Config config);

  void start();
  void run_until(sim::Time t) { sim_.run_until(t); }

  sim::Simulator& simulator() { return sim_; }
  const net::AugmentedTopology& topology() const { return topo_; }

  bool is_correct(int node) const;
  double node_logical(int id) const;
  std::optional<double> cluster_clock(int cluster) const;

  /// Max |L_B − L_C| over cluster edges (cluster clocks, correct members).
  double cluster_local_skew() const;
  double cluster_global_skew() const;
  std::uint64_t total_violations() const;

 private:
  net::AugmentedTopology topo_;
  Config config_;
  std::vector<int> cluster_depth_;
  std::vector<int> cluster_parent_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  /// Root-cluster members run Algorithm 1; others echo. Entries are
  /// mutually exclusive; both null for Byzantine ids.
  std::vector<std::unique_ptr<core::ClusterSyncEngine>> root_members_;
  std::vector<std::unique_ptr<EchoClusterNode>> echo_members_;
  std::vector<std::unique_ptr<byz::ByzantineNode>> byz_nodes_;
  std::unique_ptr<clocks::DriftModel> drift_;
};

}  // namespace ftgcs::baselines
