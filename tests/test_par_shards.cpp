// Shard determinism pins for the conservative-parallel backend (src/par/).
//
// The backend's contract is bit-identity, not approximate agreement: for
// every shard count T the scenario tables must equal the single-simulator
// engine's exactly — same RNG draw order per stream, same per-node event
// order, same merged snapshots, same counters. These tests pin that for
// the registered large_ring / large_torus workloads (scaled-down cluster
// counts, same generators and traffic shape), for a fault-heavy E9
// variant whose Byzantine senders sit in every cluster (so their pulses
// cross every shard boundary), and for crash-stop faults injected on both
// sides of a cut — on both queue backends.
#include <gtest/gtest.h>

#include <vector>

#include "byz/fault_plan.h"
#include "core/ftgcs_system.h"
#include "exp/exp.h"
#include "exp/topology_graph.h"
#include "net/channel.h"
#include "par/partition.h"
#include "par/sharded_system.h"

namespace ftgcs {
namespace {

using exp::AxisValue;
using exp::RunResult;
using exp::ScenarioSpec;

void expect_same_metrics(const RunResult& base, const RunResult& other,
                         const std::string& label) {
  ASSERT_EQ(base.metrics.size(), other.metrics.size()) << label;
  for (std::size_t m = 0; m < base.metrics.size(); ++m) {
    EXPECT_EQ(base.metrics[m].first, other.metrics[m].first) << label;
    EXPECT_EQ(base.metrics[m].second, other.metrics[m].second)
        << label << ": metric '" << base.metrics[m].first << "' differs";
  }
}

/// Runs `spec` at the given shard count and engine.
RunResult run_with(ScenarioSpec spec, int shards, sim::QueueBackend engine,
                   std::uint64_t seed) {
  spec.shards = shards;
  spec.engine = engine;
  return run_point(spec, seed);
}

TEST(ParShards, PartitionStripesAreBalancedAndSpatial) {
  const net::AugmentedTopology topo(net::Graph::ring(10), 4);
  const net::UniformDelay delays(1.0, 0.01);
  const exp::TopologyGraph graph = exp::build_topology_graph(topo, delays);

  const par::ShardPlan plan = par::make_shard_plan(graph, 2);
  ASSERT_EQ(plan.num_shards, 2);
  // Contiguous halves of the ring.
  for (int c = 0; c < 10; ++c) {
    EXPECT_EQ(plan.cluster_owner[static_cast<std::size_t>(c)], c < 5 ? 0 : 1);
  }
  // A ring split into two arcs has exactly two cut cluster edges; each is
  // a complete bipartite k×k bundle counted in both directions.
  EXPECT_EQ(plan.cut_edges, 2u * 2u * 4u * 4u);
  EXPECT_DOUBLE_EQ(plan.min_cut_delay, 0.99);
  EXPECT_FALSE(plan.degenerate());
}

TEST(ParShards, PartitionClampsAndDegenerates) {
  const net::AugmentedTopology topo(net::Graph::line(3), 4);
  const net::UniformDelay delays(1.0, 0.01);
  exp::TopologyGraph graph = exp::build_topology_graph(topo, delays);

  // Requesting more shards than clusters clamps.
  EXPECT_EQ(par::make_shard_plan(graph, 8).num_shards, 3);
  // One shard is degenerate by definition.
  EXPECT_TRUE(par::make_shard_plan(graph, 1).degenerate());
  // A zero conservative lookahead (u = d) admits no safe window.
  graph.min_delay = 0.0;
  EXPECT_TRUE(par::make_shard_plan(graph, 2).degenerate());
}

TEST(ParShards, LargeRingBitIdenticalAtEveryShardCount) {
  exp::register_builtin_scenarios();
  ScenarioSpec spec = *exp::Registry::instance().find("large_ring");
  spec.axes = {{"clusters", {AxisValue::of(200)}}};
  apply_axis(spec, "clusters", 200.0);

  const RunResult base = run_with(spec, 1, sim::QueueBackend::kLadder, 1);
  for (int shards : {2, 4, 8}) {
    expect_same_metrics(
        base, run_with(spec, shards, sim::QueueBackend::kLadder, 1),
        "ring ladder shards=" + std::to_string(shards));
  }
  // Heap backend: sharded-vs-single AND cross-engine in one comparison
  // (the heap single run equals the ladder single run by the engine pins).
  expect_same_metrics(base, run_with(spec, 2, sim::QueueBackend::kHeap, 1),
                      "ring heap shards=2");
}

TEST(ParShards, LargeTorusBitIdenticalAcrossShardsAndEngines) {
  exp::register_builtin_scenarios();
  ScenarioSpec spec = *exp::Registry::instance().find("large_torus");
  spec.axes = {{"clusters", {AxisValue::of(256)}}};
  apply_axis(spec, "clusters", 256.0);

  const RunResult base = run_with(spec, 1, sim::QueueBackend::kLadder, 1);
  for (int shards : {2, 4}) {
    expect_same_metrics(
        base, run_with(spec, shards, sim::QueueBackend::kLadder, 1),
        "torus ladder shards=" + std::to_string(shards));
  }
  expect_same_metrics(base, run_with(spec, 4, sim::QueueBackend::kHeap, 1),
                      "torus heap shards=4");
}

// Fault-heavy E9 variant: every cluster carries active Byzantine members
// (two-faced at full budget), so adversarial traffic crosses every shard
// boundary; the whole f-sweep grid must stay bit-identical.
TEST(ParShards, FaultHeavyE9GridIdenticalAcrossShards) {
  exp::register_builtin_scenarios();
  ScenarioSpec spec = *exp::Registry::instance().find("e9_overhead_scaling");
  spec.faults.mode = exp::FaultMode::kUniform;
  spec.faults.count = -1;  // full budget f per cluster
  spec.faults.strategy = byz::StrategyKind::kTwoFaced;
  spec.faults.param_times_E = 1.0;
  spec.horizon.base_rounds = 30.0;

  exp::SweepRunner runner({1, false});
  ScenarioSpec single = spec;
  const exp::SweepResult base = runner.run(single);
  for (int shards : {2, 4}) {
    ScenarioSpec sharded = spec;
    sharded.shards = shards;
    const exp::SweepResult result = runner.run(sharded);
    ASSERT_EQ(base.rows.size(), result.rows.size());
    for (std::size_t r = 0; r < base.rows.size(); ++r) {
      expect_same_metrics(base.rows[r], result.rows[r],
                          "e9 row " + std::to_string(r) + " shards=" +
                              std::to_string(shards));
    }
  }
}

// Crash-stop across the cut: correct nodes on both sides of a shard
// boundary crash mid-run (their timers halt, their sinks go null, their
// table flags flip), next to per-cluster Byzantine noise. Ground-truth
// snapshots and all counters must match the single-simulator engine at
// every probe.
TEST(ParShards, CrashStopAndByzantineAcrossCutMatchSingleSimulator) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  const net::Graph graph = net::Graph::ring(8);
  const net::AugmentedTopology topo(graph, params.k);
  const byz::FaultPlan plan = byz::FaultPlan::uniform(
      topo, 1, byz::StrategyKind::kTwoFaced, 3.0 * params.E, /*seed=*/77);

  core::FtGcsSystem::Config single_config;
  single_config.params = params;
  single_config.seed = 5;
  single_config.fault_plan = plan;
  core::FtGcsSystem single(graph, std::move(single_config));

  par::ShardedFtGcsSystem::Config sharded_config;
  sharded_config.params = params;
  sharded_config.seed = 5;
  sharded_config.fault_plan = plan;
  sharded_config.shards = 2;
  par::ShardedFtGcsSystem sharded(graph, std::move(sharded_config));
  ASSERT_EQ(sharded.num_shards(), 2);

  // One correct member from each half of the ring (shard 0 owns clusters
  // 0–3, shard 1 owns 4–7); both crash mid-run.
  std::vector<int> crash_ids;
  for (int cluster : {1, 6}) {
    for (int member : topo.members(cluster)) {
      if (single.is_correct(member)) {
        crash_ids.push_back(member);
        break;
      }
    }
  }
  ASSERT_EQ(crash_ids.size(), 2u);

  single.start();
  sharded.start();
  for (int id : crash_ids) {
    single.node(id).crash_at(4.25 * params.T);
    sharded.node(id).crash_at(4.25 * params.T);
  }

  core::SystemColumns single_columns;
  core::SystemColumns sharded_columns;
  for (int round = 1; round <= 12; ++round) {
    const sim::Time t = round * params.T;
    single.run_until(t);
    sharded.run_until(t);
    single.snapshot_columns(single_columns);
    sharded.snapshot_columns(sharded_columns);
    ASSERT_EQ(single_columns.num_nodes(), sharded_columns.num_nodes());
    for (int id = 0; id < single_columns.num_nodes(); ++id) {
      const auto i = static_cast<std::size_t>(id);
      EXPECT_EQ(single_columns.correct[i], sharded_columns.correct[i])
          << "node " << id << " at round " << round;
      EXPECT_EQ(single_columns.logical[i], sharded_columns.logical[i])
          << "node " << id << " at round " << round;
      EXPECT_EQ(single_columns.gamma[i], sharded_columns.gamma[i])
          << "node " << id << " at round " << round;
    }
  }
  for (int id : crash_ids) {
    EXPECT_TRUE(single.node(id).crashed());
    EXPECT_TRUE(sharded.node(id).crashed());
  }
  EXPECT_EQ(single.total_violations(), sharded.total_violations());
  EXPECT_EQ(single.network().messages_sent(), sharded.messages_sent());
  EXPECT_EQ(single.simulator().fired_events(), sharded.fired_events());
}

}  // namespace
}  // namespace ftgcs
