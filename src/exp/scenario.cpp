#include "exp/scenario.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "support/assert.h"

namespace ftgcs::exp {

// ---- TopologySpec -----------------------------------------------------------

net::Graph TopologySpec::build() const {
  switch (kind) {
    case TopologyKind::kLine:
      return net::Graph::line(a);
    case TopologyKind::kRing:
      return net::Graph::ring(a);
    case TopologyKind::kStar:
      return net::Graph::star(a);
    case TopologyKind::kClique:
      return net::Graph::clique(a);
    case TopologyKind::kGrid:
      return net::Graph::grid(a, b);
    case TopologyKind::kTorus:
      return net::Graph::torus(a, b);
    case TopologyKind::kTree:
      return net::Graph::balanced_tree(a, b);
    case TopologyKind::kHypercube:
      return net::Graph::hypercube(a);
    case TopologyKind::kGnp:
      return net::Graph::gnp_connected(a, p, seed);
  }
  FTGCS_ASSERT(false);
  return net::Graph::line(1);
}

std::string TopologySpec::describe() const {
  char buf[64];
  switch (kind) {
    case TopologyKind::kGrid:
    case TopologyKind::kTorus:
      std::snprintf(buf, sizeof buf, "%s(%dx%d)", topology_kind_name(kind), a,
                    b);
      break;
    case TopologyKind::kTree:
      std::snprintf(buf, sizeof buf, "tree(b=%d,depth=%d)", a, b);
      break;
    case TopologyKind::kGnp:
      std::snprintf(buf, sizeof buf, "gnp(n=%d,p=%g)", a, p);
      break;
    default:
      std::snprintf(buf, sizeof buf, "%s(%d)", topology_kind_name(kind), a);
      break;
  }
  return buf;
}

void TopologySpec::set_diameter(int diameter) {
  FTGCS_EXPECTS(diameter >= 1);
  switch (kind) {
    case TopologyKind::kLine:
      a = diameter + 1;
      return;
    case TopologyKind::kRing:
      a = 2 * diameter;
      return;
    case TopologyKind::kGrid: {
      // Diameter of grid(w, h) is (w−1)+(h−1); split as evenly as possible.
      a = diameter / 2 + 1;
      b = diameter - (a - 1) + 1;
      return;
    }
    default:
      throw std::invalid_argument(
          "axis 'diameter' is only supported for line/ring/grid topologies");
  }
}

void TopologySpec::set_clusters(int n) {
  FTGCS_EXPECTS(n >= 1);
  switch (kind) {
    case TopologyKind::kLine:
    case TopologyKind::kRing:
    case TopologyKind::kStar:
    case TopologyKind::kClique:
    case TopologyKind::kGnp:
      a = n;
      return;
    case TopologyKind::kGrid:
    case TopologyKind::kTorus: {
      // Exact factorization w×h = n with w the largest divisor ≤ √n, so a
      // "clusters" axis row simulates exactly the labeled count (the
      // large-grid family's values 1000/5000/10000 give 25×40, 50×100,
      // 100×100). Prime n degenerates to 1×n — truthful, if elongated.
      a = static_cast<int>(std::sqrt(static_cast<double>(n)));
      while (a > 1 && n % a != 0) --a;
      if (a < 1) a = 1;
      b = n / a;
      return;
    }
    default:
      throw std::invalid_argument(
          "axis 'clusters' is only supported for 1-parameter and square "
          "topologies");
  }
}

// ---- ParamsSpec -------------------------------------------------------------

core::Params ParamsSpec::build() const {
  core::Params result;
  switch (preset) {
    case Preset::kPractical:
      result = core::Params::practical(rho, d, U, f);
      break;
    case Preset::kPaperStrict:
      result = core::Params::paper_strict(rho, d, U, f);
      break;
    case Preset::kCustom:
      result = core::Params::custom(rho, d, U, f, mu, phi);
      break;
  }
  if (cluster_size > 0) result = result.with_cluster_size(cluster_size);
  return result;
}

// ---- RampSpec / HorizonSpec -------------------------------------------------

int RampSpec::resolve(const core::Params& params, int diameter) const {
  if (gap_band_factor > 0.0) {
    const double band = params.predicted_global_skew(diameter);
    return static_cast<int>(gap_band_factor * band / (diameter * params.T)) +
           1;
  }
  if (gap_kappa > 0.0) {
    return static_cast<int>(gap_kappa * params.kappa / params.T) + 1;
  }
  return gap_rounds;
}

double HorizonSpec::resolve(const core::Params& params, int diameter,
                            double initial_global) const {
  double rounds = base_rounds + per_diameter_rounds * diameter;
  if (drain_factor > 0.0 && params.mu > 0.0) {
    rounds += drain_factor * initial_global / (params.mu * params.T);
  }
  return rounds;
}

// ---- ScenarioSpec -----------------------------------------------------------

std::size_t ScenarioSpec::num_points() const {
  std::size_t points = 1;
  for (const auto& axis : axes) points *= axis.values.size();
  return points;
}

void apply_axis(ScenarioSpec& spec, const std::string& name, double value) {
  const auto as_int = [&] { return static_cast<int>(std::llround(value)); };
  if (name == "diameter") {
    spec.topology.set_diameter(as_int());
  } else if (name == "clusters") {
    spec.topology.set_clusters(as_int());
  } else if (name == "gap_rounds") {
    spec.ramp = {};
    spec.ramp.gap_rounds = as_int();
  } else if (name == "gap_kappa") {
    spec.ramp = {};
    spec.ramp.gap_kappa = value;
  } else if (name == "f") {
    spec.params.f = as_int();
  } else if (name == "cluster_size") {
    spec.params.cluster_size = as_int();
  } else if (name == "faults_per_cluster") {
    spec.faults.count = as_int();
  } else if (name == "strategy") {
    spec.faults.strategy = static_cast<byz::StrategyKind>(as_int());
  } else if (name == "attacked") {
    spec.faults.enabled = value != 0.0;
  } else if (name == "rho") {
    spec.params.rho = value;
  } else if (name == "d") {
    spec.params.d = value;
  } else if (name == "U") {
    spec.params.U = value;
  } else if (name == "mu") {
    spec.params.mu = value;
  } else if (name == "phi") {
    spec.params.phi = value;
  } else if (name == "horizon_rounds") {
    spec.horizon = {};
    spec.horizon.base_rounds = value;
  } else if (name == "flip_rounds") {
    spec.drift.flip_rounds = value;
  } else if (name == "probability") {
    spec.faults.probability = value;
  } else if (name == "shards") {
    spec.shards = as_int();
  } else if (name == "fault_mode") {
    spec.faults.mode = static_cast<FaultMode>(as_int());
    // A scenario registered without faults carries no strategy strength;
    // the per-strategy default keeps the attack meaningful.
    if (spec.faults.param_abs == 0.0 && spec.faults.param_times_E == 0.0) {
      spec.faults.default_param_for_strategy = true;
    }
  } else {
    throw std::invalid_argument("unknown sweep axis '" + name + "'");
  }
}

std::string format_axis_value(const AxisValue& v) {
  if (!v.label.empty()) return v.label;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v.value);
  return buf;
}

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kClique: return "clique";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kTree: return "tree";
    case TopologyKind::kHypercube: return "hypercube";
    case TopologyKind::kGnp: return "gnp";
  }
  return "?";
}

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kFtGcs: return "ftgcs";
    case ProtocolKind::kGcsBaseline: return "gcs";
  }
  return "?";
}

sim::QueueBackend parse_queue_backend(const std::string& name) {
  if (name == "heap") return sim::QueueBackend::kHeap;
  if (name == "ladder") return sim::QueueBackend::kLadder;
  throw std::invalid_argument("unknown engine '" + name +
                              "' (expected heap | ladder)");
}

}  // namespace ftgcs::exp
