// Numeric tolerances for dimensionless protocol quantities.
//
// sim::kTimeEps is a tolerance on absolute times (seconds) and is the
// wrong yardstick for anything dimensionless: comparing a clock RATE
// against a time epsilon only works by accident of magnitudes. Rate
// comparisons use the epsilon below instead.
#pragma once

namespace ftgcs::support {

/// Tolerance for comparing dimensionless clock-rate values against their
/// envelope bounds. Drift models produce rates as 1 + ρ·u with u ∈ [0, 1],
/// so the representable error is a few ulps around 1 (≈ 2⁻⁵²); 1e-12
/// absorbs that rounding with orders of magnitude to spare while still
/// rejecting any genuinely out-of-envelope rate.
inline constexpr double kRateEps = 1e-12;

}  // namespace ftgcs::support
