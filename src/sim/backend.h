// Scheduling backend selection for the event engine.
//
// Two interchangeable front-ends drive the same slot pool and fire the same
// (time, sequence) order — bit-identical executions, different cost curves:
//   kHeap   — intrusive 4-ary heap only. O(log n) push/pop; the reference
//             implementation and the right choice for sparse far-future
//             timer populations (n small, horizon long).
//   kLadder — calendar/ladder-queue front-end over near-future time, with
//             an unsorted far-future overflow bag that is windowed by one
//             linear scan whenever the calendar drains. Amortized O(1)
//             push/pop when message delays and timer horizons are bounded
//             per scenario (they are — see net/channel.h), which is what
//             keeps 40k-node runs at small-run throughput.
#pragma once

#include <cstdint>

namespace ftgcs::sim {

enum class QueueBackend : std::uint8_t {
  kHeap,
  kLadder,
};

inline const char* queue_backend_name(QueueBackend backend) {
  return backend == QueueBackend::kHeap ? "heap" : "ladder";
}

}  // namespace ftgcs::sim
