// On-disk format of a streaming binary event trace (.ftr).
//
// Layout:
//
//   header   8 bytes        magic "FTGCSTR1"
//   frame*                  u32 LE payload length, u32 LE record count,
//                           payload (concatenated records)
//   end      8 bytes        a zero-length, zero-count frame
//   trailer  8 bytes        u64 LE total record count
//
// One record is one fired pulse delivery:
//
//   u8      kind            net::PulseKind tag
//   varint  zigzag(sender)  payload.a (Byzantine senders may forge it)
//   varint  zigzag(dest)    payload.c
//   varint  time delta      bit pattern of `at` XORed with the previous
//                           record's (chained across frames; the first
//                           record XORs against 0.0) — exactly invertible,
//                           and near-monotone canonical times share their
//                           high mantissa/exponent bits, so the XOR is a
//                           small integer
//   varint  zigzag(level)   kMaxLevel / kPropose only
//   u64 LE  value bits      kShare only
//
// Frame boundaries depend only on the record byte stream (a frame is cut
// when the pending payload reaches kFrameBytes), never on wall clock or
// shard count — a requirement of the byte-identity contract: traces of the
// same run are identical files at every `--shards T` and on both queue
// backends.
//
// Records are written in CANONICAL order: sorted by the total key
// (time, sender, dest, kind, level, value bits). Per-shard capture buffers
// are each in fire order; the collector merges them under this key at
// quiesced probe boundaries. Cross-record ties in the full key can only be
// byte-identical records (distinct deliveries at the exact same instant are
// measure-zero under the continuous channel-delay sampling — the same
// assumption the sharded backend's (time, sender, seq) contract rests on),
// so the sorted byte stream is partition-invariant.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/time_types.h"

namespace ftgcs::trace {

inline constexpr char kMagic[8] = {'F', 'T', 'G', 'C', 'S', 'T', 'R', '1'};
inline constexpr std::size_t kMagicBytes = 8;
/// Frame payload flush threshold. Part of the format contract: changing it
/// changes frame boundaries and therefore the bytes of every trace.
inline constexpr std::size_t kFrameBytes = 64 * 1024;

/// One decoded delivery record. `seq` and `offset` are reader-populated
/// cursor fields (the record's index in the stream and the absolute file
/// offset of its first byte); they are not serialized.
struct Record {
  sim::Time at = 0.0;
  std::int32_t sender = 0;
  std::int32_t dest = 0;
  std::uint8_t kind = 0;  ///< net::PulseKind value
  std::int32_t level = 0;
  double value = 0.0;

  std::uint64_t seq = 0;
  std::uint64_t offset = 0;
};

/// Which optional fields a record tag carries (net::PulseKind values:
/// 0 = kClusterPulse, 1 = kMaxLevel, 2 = kShare, 3 = kPropose).
inline bool kind_has_level(std::uint8_t kind) {
  return kind == 1 || kind == 3;
}
inline bool kind_has_value(std::uint8_t kind) { return kind == 2; }

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline std::uint64_t time_bits(double t) {
  std::uint64_t bits;
  std::memcpy(&bits, &t, sizeof bits);
  return bits;
}
inline double bits_time(std::uint64_t bits) {
  double t;
  std::memcpy(&t, &bits, sizeof t);
  return t;
}

/// LEB128 on uint64 (7 bits per byte, high bit = continuation).
inline void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// The canonical total order of the merged stream. Identical full keys can
/// only belong to byte-identical records, so any consistent tie handling
/// yields the same bytes.
inline bool record_key_less(const Record& a, const Record& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.sender != b.sender) return a.sender < b.sender;
  if (a.dest != b.dest) return a.dest < b.dest;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.level != b.level) return a.level < b.level;
  return time_bits(a.value) < time_bits(b.value);
}

/// Payload-field equality (cursor fields excluded). Times and values
/// compare by bit pattern so ±0.0 and NaN payloads diff faithfully.
inline bool record_equal(const Record& a, const Record& b) {
  return time_bits(a.at) == time_bits(b.at) && a.sender == b.sender &&
         a.dest == b.dest && a.kind == b.kind && a.level == b.level &&
         time_bits(a.value) == time_bits(b.value);
}

}  // namespace ftgcs::trace
