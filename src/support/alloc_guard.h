// Runtime twin of the ftgcs-lint no-hot-path-alloc rule: a process-wide
// counting hook on global operator new, and a RAII guard that measures
// the allocation delta across a scope.
//
// The hook lives in alloc_guard.cpp next to these declarations. Because
// libftgcs is a static archive, that translation unit — and with it the
// replacement operator new/new[]/delete set — is linked into a binary
// only when the binary references something declared here. Production
// binaries (ftgcs_bench, the experiment tools) never do, so they keep the
// stock allocator; test binaries that assert the zero-allocation contract
// (tests/test_alloc_guard.cpp) pull the hook in by constructing a guard.
//
// Counting is process-wide across ALL threads (one relaxed atomic
// increment per allocation): the property under test is "a steady-state
// run_until window allocates nowhere", and under the sharded backend the
// interesting allocations would happen on worker threads, not on the
// thread holding the guard.
#pragma once

#include <cstdint>

namespace ftgcs::support {

/// Global operator new/new[] calls in this process so far, all threads.
/// Returns 0 forever in binaries that never linked the hook TU.
std::uint64_t allocation_count() noexcept;

/// Snapshot-on-construction allocation meter:
///
///     support::ScopedAllocGuard guard;
///     system.run_until(t);                  // steady-state window
///     EXPECT_EQ(guard.allocations(), 0u);   // the zero-alloc contract
///
/// Finding an offender: set FTGCS_ALLOC_TRACE=1 and every allocation made
/// while a guard is live prints a raw backtrace to stderr (symbolized via
/// backtrace_symbols_fd — works without a debugger; pipe through
/// `c++filt` and addr2line for source lines).
class ScopedAllocGuard {
 public:
  ScopedAllocGuard() noexcept;
  ~ScopedAllocGuard();

  ScopedAllocGuard(const ScopedAllocGuard&) = delete;
  ScopedAllocGuard& operator=(const ScopedAllocGuard&) = delete;

  /// Allocations (any thread) since this guard was constructed.
  std::uint64_t allocations() const noexcept;

 private:
  std::uint64_t start_;
};

}  // namespace ftgcs::support
