// Parameter derivations: equations (5), (10), (11), Lemma 4.8, Prop. 4.11,
// Inequality (1).
#include "core/params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ftgcs::core {
namespace {

TEST(Params, PaperStrictMatchesEquationFive) {
  const double rho = 1e-5;
  const Params p = Params::paper_strict(rho, 1.0, 0.01, 1);
  EXPECT_DOUBLE_EQ(p.c2, 32.0);
  EXPECT_DOUBLE_EQ(p.mu, 32.0 * rho);
  EXPECT_DOUBLE_EQ(p.eps, 1.0 / 4096.0);
  EXPECT_NEAR(p.c1, (0.5 - 1.0 / 4096.0) / 33.0 / rho, 1e-6);
  EXPECT_DOUBLE_EQ(p.phi, 1.0 / p.c1);
  EXPECT_EQ(p.k, 4);
}

TEST(Params, PaperStrictFeasibleForSmallRho) {
  // α_g = 1 − ε + Θ(ρ) with the Θ(ρ) constant ≈ 4(1+c2)² ≈ 132 for
  // c2 = 32; the paper's "sufficiently small ρ" therefore means
  // ρ ≲ ε/132 ≈ 1.8e−6 — genuinely tiny, as the paper warns.
  for (double rho : {1e-8, 1e-7, 1e-6}) {
    const Params p = Params::paper_strict(rho, 1.0, 0.001, 1);
    EXPECT_TRUE(p.feasible())
        << "rho = " << rho << "\n" << p.feasibility_report();
    // 1 − α ≈ ε, the paper's contraction margin (both recurrences).
    EXPECT_NEAR(1.0 - p.alpha, p.eps, 150.0 * rho) << "rho = " << rho;
    EXPECT_NEAR(1.0 - p.rec_general.alpha, p.eps, 250.0 * rho)
        << "rho = " << rho;
  }
  // ... and infeasible once ρ crosses that threshold.
  EXPECT_FALSE(Params::paper_strict(1e-5, 1.0, 0.001, 1).feasible());
}

TEST(Params, RoundLengthsSatisfyEquationFour) {
  const Params p = Params::practical(1e-3, 1.0, 0.01, 1);
  const double zeta_max = (1.0 + p.phi) * (1.0 + p.mu);
  EXPECT_DOUBLE_EQ(p.tau1, zeta_max * p.theta_g * p.E);
  EXPECT_DOUBLE_EQ(p.tau2, zeta_max * p.theta_g * (p.E + p.d));
  EXPECT_DOUBLE_EQ(p.tau3, p.c1 * zeta_max * p.theta_g * (p.E + p.U));
  EXPECT_DOUBLE_EQ(p.T, p.tau1 + p.tau2 + p.tau3);
}

TEST(Params, PhaseWindowsCoverWorstCaseArrivals) {
  // The property eq. (10) violates for non-vanishing ϕ (see params.h
  // reproduction note): a phase-1+2 window must span the worst-case pulse
  // spread plus delay at the maximum phase-1–2 logical rate.
  for (int f : {0, 1, 2}) {
    const Params p = Params::practical(1e-3, 1.0, 0.01, f);
    const double max_rate = (1.0 + p.phi) * (1.0 + p.mu) * (1.0 + p.rho);
    EXPECT_GE(p.tau1 / max_rate, p.E);
    EXPECT_GE(p.tau2 / max_rate, p.E + p.d);
  }
}

TEST(Params, FixedPointSolvesRecurrence) {
  // E must satisfy E = α·E + β for the Claim B.15 general recurrence.
  const Params p = Params::practical(1e-3, 1.0, 0.01, 2);
  EXPECT_NEAR(p.E, p.rec_general.iterate(p.E), 1e-9);
}

TEST(Params, AlphaSimplificationMatchesPaperForm) {
  // α = (6ϑ²ϕ+5ϑϕ−9ϕ+2ϑ²−2)/(2ϕ(ϑ+1)) — check our simplified form.
  const Params p = Params::practical(5e-4, 1.0, 0.02, 1);
  const double th = p.theta_g;
  const double paper_alpha =
      (6.0 * th * th * p.phi + 5.0 * th * p.phi - 9.0 * p.phi +
       2.0 * th * th - 2.0) /
      (2.0 * p.phi * (th + 1.0));
  EXPECT_NEAR(p.alpha, paper_alpha, 1e-12);
}

TEST(Params, TriggerParamsFollowLemma48) {
  const Params p = Params::practical(1e-3, 1.0, 0.01, 1);
  EXPECT_DOUBLE_EQ(p.delta_trig, (p.k_unanimity + 5.0) * p.E);
  EXPECT_DOUBLE_EQ(p.kappa, 3.0 * p.delta_trig);
  EXPECT_LT(p.delta_trig, 2.0 * p.kappa);  // Lemma 4.5 precondition
}

TEST(Params, GcsAxiomA4Holds) {
  for (double rho : {1e-5, 1e-4, 1e-3}) {
    const Params p = Params::practical(rho, 1.0, 0.01, 1);
    EXPECT_GT(p.mu_bar(), p.rho_bar()) << "rho = " << rho;
    EXPECT_GT(p.gcs_base(), 1.0);
  }
}

TEST(Params, PracticalFeasibleAcrossInputSweep) {
  for (double rho : {1e-5, 1e-4, 5e-4, 1e-3}) {
    for (double U : {0.001, 0.01, 0.1}) {
      for (int f : {0, 1, 2, 3}) {
        const Params p = Params::practical(rho, 1.0, U, f);
        EXPECT_TRUE(p.feasible())
            << "rho=" << rho << " U=" << U << " f=" << f << "\n"
            << p.feasibility_report();
        EXPECT_EQ(p.k, 3 * f + 1);
        EXPECT_GT(p.E, 0.0);
        EXPECT_GT(p.T, 0.0);
      }
    }
  }
}

TEST(Params, EScalesAsRhoDPlusU) {
  // Corollary 3.2 / Theorem 1.1: E = O(ρd + U). Doubling U roughly
  // doubles E at fixed small ρ; scaling d scales the ρ·d contribution.
  const Params base = Params::practical(1e-4, 1.0, 0.01, 1);
  const Params twice_u = Params::practical(1e-4, 1.0, 0.02, 1);
  EXPECT_GT(twice_u.E, 1.5 * base.E / 2.0);
  EXPECT_LT(twice_u.E, 2.5 * base.E);

  const Params big_d = Params::practical(1e-4, 10.0, 0.01, 1);
  EXPECT_GT(big_d.E, base.E);  // ρ·d term grew
}

TEST(Params, UnanimousRecurrencesContractFaster) {
  const Params p = Params::practical(1e-4, 1.0, 0.01, 1);
  ASSERT_TRUE(p.unanimity_analysis_valid);
  // Unanimous executions converge to much smaller steady-state error
  // (Claim B.17's separation).
  EXPECT_LT(p.rec_fast.fixed_point(), p.rec_general.fixed_point());
  EXPECT_LT(p.rec_slow.fixed_point(), p.rec_general.fixed_point());
  EXPECT_GT(p.k_unanimity, 0);
  EXPECT_LE(p.k_unanimity, 64);
}

TEST(Params, CustomOverridesMuPhi) {
  const Params p = Params::custom(1e-3, 1.0, 0.01, 1, 0.02, 0.3);
  EXPECT_DOUBLE_EQ(p.mu, 0.02);
  EXPECT_DOUBLE_EQ(p.phi, 0.3);
  EXPECT_DOUBLE_EQ(p.c2, 20.0);
}

TEST(Params, LocalSkewPredictionShape) {
  const Params p = Params::practical(1e-3, 1.0, 0.01, 1);
  // At or below κ of global skew: one level.
  EXPECT_DOUBLE_EQ(p.predicted_local_skew(p.kappa / 2.0), p.kappa);
  // Monotone in the global skew, logarithmically.
  const double s1 = p.predicted_local_skew(10.0 * p.kappa);
  const double s2 = p.predicted_local_skew(100.0 * p.kappa);
  const double s3 = p.predicted_local_skew(1000.0 * p.kappa);
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s3);
  // Log shape: equal multiplicative steps add equal increments (±1 level).
  EXPECT_NEAR((s3 - s2) / p.kappa, (s2 - s1) / p.kappa, 1.01);
}

TEST(ClusterFailure, ProbabilityMatchesBinomialTail) {
  // f = 1, k = 4: P[X > 1] = 1 − (1−p)⁴ − 4p(1−p)³.
  const double p = 0.05;
  const double expected =
      1.0 - std::pow(1.0 - p, 4) - 4.0 * p * std::pow(1.0 - p, 3);
  EXPECT_NEAR(cluster_failure_probability(1, p), expected, 1e-12);
}

TEST(ClusterFailure, BoundDominatesProbability) {
  // Inequality (1): P[cluster fails] ≤ (3ep)^(f+1).
  for (int f : {0, 1, 2, 3, 5}) {
    for (double p : {0.001, 0.01, 0.05, 0.1}) {
      EXPECT_LE(cluster_failure_probability(f, p),
                cluster_failure_bound(f, p) + 1e-12)
          << "f=" << f << " p=" << p;
    }
  }
}

TEST(ClusterFailure, EdgeCases) {
  EXPECT_DOUBLE_EQ(cluster_failure_probability(1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(cluster_failure_probability(1, 1.0), 1.0);
  EXPECT_NEAR(cluster_failure_probability(0, 0.3), 0.3, 1e-12);
}

TEST(ClusterFailure, LargerFImprovesReliability) {
  const double p = 0.02;
  double previous = 1.0;
  for (int f = 0; f <= 4; ++f) {
    const double prob = cluster_failure_probability(f, p);
    EXPECT_LT(prob, previous);
    previous = prob;
  }
}

}  // namespace
}  // namespace ftgcs::core
