// Streaming writer of the binary trace format (see format.h).
//
// append() encodes one record into the pending frame buffer; a frame is
// flushed to disk whenever the payload reaches kFrameBytes, and finish()
// (or destruction) writes the final frame, the end marker and the
// record-count trailer. Callers must append records in canonical key order
// (trace::record_key_less) — the collector's merge guarantees it; the
// writer only chains the time deltas.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/format.h"

namespace ftgcs::trace {

class TraceWriter {
 public:
  /// Opens `path` for writing and emits the header. Throws
  /// std::runtime_error if the file cannot be created.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const Record& record);

  /// Flushes the pending frame and writes end marker + trailer. Idempotent.
  void finish();

  std::uint64_t records() const { return records_; }

  /// Absolute file offset where the NEXT appended record's first byte will
  /// land. Exact even while the frame is still buffered: frame boundaries
  /// depend only on the record stream, so the pending frame's start offset
  /// is already determined. This is the byte half of a replay cursor.
  std::uint64_t next_record_offset() const {
    return kMagicBytes + framed_bytes_ + kFrameHeaderBytes + pending_.size();
  }

  /// Total file size once finish() has run.
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  static constexpr std::size_t kFrameHeaderBytes = 8;  // u32 len + u32 count

  void flush_frame();

  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> pending_;  ///< current frame payload
  std::uint32_t pending_count_ = 0;    ///< records in the pending frame
  std::uint64_t prev_time_bits_ = 0;   ///< XOR-delta chain state
  std::uint64_t records_ = 0;
  std::uint64_t framed_bytes_ = 0;  ///< flushed frames incl. their headers
  std::uint64_t bytes_written_ = 0;
  bool finished_ = false;
};

}  // namespace ftgcs::trace
