// Srikanth–Toueg pulse synchronization (Appendix A of the paper; original
// in [20]) — the other classic Byzantine-tolerant algorithm on a clique,
// used here as a baseline against ClusterSync (Lynch–Welch).
//
// Propose-and-pull, simulated rounds:
//  * every node, when its hardware clock reaches the next round's timeout,
//    broadcasts PROPOSE(r);
//  * a node that has received f+1 distinct PROPOSE(r) joins (sends its
//    own PROPOSE(r) even if its timeout has not expired — the "pull");
//  * a node that has received n−f distinct PROPOSE(r) fires the round-r
//    pulse, sets its logical clock to r·P, and schedules the next timeout
//    P after the pulse (on its hardware clock).
//
// Guarantees (n > 3f): pulses of correct nodes are within O(d) of each
// other — but, unlike Lynch–Welch, the skew does NOT shrink with the
// delay uncertainty U: the paper's point that Lynch–Welch achieves
// O(U + ρd) and is therefore the better building block (experiment E13).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "clocks/drift_model.h"
#include "clocks/hardware_clock.h"
#include "clocks/logical_clock.h"
#include "net/channel.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ftgcs::baselines {

class SrikanthTouegNode {
 public:
  struct Config {
    int n = 0;          ///< clique size
    int f = 0;          ///< fault budget, n > 3f
    double period = 0;  ///< nominal round period P (hardware time)
  };

  SrikanthTouegNode(sim::Simulator& simulator, net::Network& network,
                    const Config& cfg, int node_id);

  void start();
  void on_pulse(const net::Pulse& pulse, sim::Time now);
  void set_hardware_rate(sim::Time now, double rate);

  double logical(sim::Time now) const { return clock_.read(now); }
  int round() const { return round_; }
  sim::Time last_fire_time() const { return last_fire_; }

 private:
  void schedule_timeout();
  void propose(int round);
  void fire(int round, sim::Time now);

  sim::Simulator& sim_;
  net::Network& net_;
  Config cfg_;
  int id_;

  clocks::HardwareClock hardware_;
  clocks::LogicalClock clock_;

  int round_ = 0;          ///< last fired round
  int proposed_ = 0;       ///< highest round we have proposed
  double next_timeout_ = 0.0;  ///< hardware time of the next spontaneous propose
  sim::EventId timeout_event_{};
  sim::Time last_fire_ = 0.0;

  /// round -> distinct proposers heard.
  std::map<int, std::set<int>> proposals_;
};

/// A clique of Srikanth–Toueg nodes with optional silent faults.
class SrikanthTouegSystem {
 public:
  struct Config {
    int n = 4;
    int f = 1;
    double rho = 0.0;
    double d = 1.0;
    double U = 0.1;
    double period = 10.0;
    std::uint64_t seed = 1;
    int silent_faults = 0;  ///< first `silent_faults` nodes never send
    std::unique_ptr<net::DelayModel> delay_model;
    std::unique_ptr<clocks::DriftModel> drift_model;
  };

  explicit SrikanthTouegSystem(Config config);

  void start();
  void run_until(sim::Time t) { sim_.run_until(t); }

  sim::Simulator& simulator() { return sim_; }
  bool is_correct(int node) const { return nodes_[node] != nullptr; }

  /// Max |L_v − L_w| over correct pairs.
  double skew() const;
  /// Spread of the most recent pulse (fire) times over correct nodes.
  double pulse_spread() const;
  int min_round() const;

 private:
  Config config_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<SrikanthTouegNode>> nodes_;
  std::unique_ptr<clocks::DriftModel> drift_;
};

}  // namespace ftgcs::baselines
