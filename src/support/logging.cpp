#include "support/logging.h"

#include <atomic>
#include <cstdio>

namespace ftgcs::log {

namespace {
// ftgcs-lint: allow(no-mutable-global) process-wide log level; accessed
// only through relaxed atomics so concurrent shard workers and the driver
// never race on it.
std::atomic<Level> g_level{Level::kOff};

const char* name_of(Level lvl) {
  switch (lvl) {
    case Level::kOff:
      return "off";
    case Level::kError:
      return "error";
    case Level::kWarn:
      return "warn";
    case Level::kInfo:
      return "info";
    case Level::kDebug:
      return "debug";
    case Level::kTrace:
      return "trace";
  }
  return "?";
}
}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) noexcept {
  g_level.store(lvl, std::memory_order_relaxed);
}

void emit(Level lvl, const std::string& msg) {
  std::fprintf(stderr, "[ftgcs %-5s] %s\n", name_of(lvl), msg.c_str());
}

}  // namespace ftgcs::log
