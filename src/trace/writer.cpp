#include "trace/writer.h"

#include <stdexcept>

namespace ftgcs::trace {

namespace {

void put_u32(std::FILE* file, std::uint32_t v) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  if (std::fwrite(bytes, 1, sizeof bytes, file) != sizeof bytes) {
    throw std::runtime_error("trace: short write");
  }
}

void put_u64(std::FILE* file, std::uint64_t v) {
  put_u32(file, static_cast<std::uint32_t>(v));
  put_u32(file, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("trace: cannot create '" + path + "'");
  }
  if (std::fwrite(kMagic, 1, kMagicBytes, file_) != kMagicBytes) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("trace: short write to '" + path + "'");
  }
  bytes_written_ = kMagicBytes;
  pending_.reserve(kFrameBytes + 64);
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (...) {
    // Destruction must not throw; a truncated trace fails loudly at read
    // time instead (missing end marker / trailer mismatch).
  }
  if (file_ != nullptr) std::fclose(file_);
}

void TraceWriter::append(const Record& record) {
  pending_.push_back(record.kind);
  append_varint(pending_, zigzag(record.sender));
  append_varint(pending_, zigzag(record.dest));
  const std::uint64_t bits = time_bits(record.at);
  append_varint(pending_, bits ^ prev_time_bits_);
  prev_time_bits_ = bits;
  if (kind_has_level(record.kind)) {
    append_varint(pending_, zigzag(record.level));
  }
  if (kind_has_value(record.kind)) {
    const std::uint64_t value = time_bits(record.value);
    for (int shift = 0; shift < 64; shift += 8) {
      pending_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }
  ++pending_count_;
  ++records_;
  if (pending_.size() >= kFrameBytes) flush_frame();
}

void TraceWriter::flush_frame() {
  if (pending_.empty()) return;
  put_u32(file_, static_cast<std::uint32_t>(pending_.size()));
  put_u32(file_, pending_count_);
  if (std::fwrite(pending_.data(), 1, pending_.size(), file_) !=
      pending_.size()) {
    throw std::runtime_error("trace: short write");
  }
  framed_bytes_ += kFrameHeaderBytes + pending_.size();
  bytes_written_ += kFrameHeaderBytes + pending_.size();
  pending_.clear();
  pending_count_ = 0;
}

void TraceWriter::finish() {
  if (finished_ || file_ == nullptr) return;
  flush_frame();
  put_u32(file_, 0);  // end marker: empty frame
  put_u32(file_, 0);
  put_u64(file_, records_);
  bytes_written_ += 16;
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("trace: flush failed");
  }
  finished_ = true;
}

}  // namespace ftgcs::trace
