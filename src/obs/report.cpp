#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>

#include "metrics/table.h"

namespace ftgcs::obs {

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) {
    ++i;
  }
}

bool parse_string(const std::string& s, std::size_t& i, std::string* out,
                  std::string* error) {
  if (i >= s.size() || s[i] != '"') {
    *error = "expected '\"'";
    return false;
  }
  ++i;
  out->clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) break;
      switch (s[i]) {
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        default: *out += s[i]; break;
      }
    } else {
      *out += s[i];
    }
    ++i;
  }
  if (i >= s.size()) {
    *error = "unterminated string";
    return false;
  }
  ++i;  // closing quote
  return true;
}

bool parse_value(const std::string& s, std::size_t& i, JsonValue* out,
                 std::string* error) {
  skip_ws(s, i);
  if (i >= s.size()) {
    *error = "expected value";
    return false;
  }
  const char c = s[i];
  if (c == '"') {
    out->kind = JsonValue::Kind::kString;
    return parse_string(s, i, &out->text, error);
  }
  if (c == '{' || c == '[') {
    *error = "nested structures are not part of the metrics grammar";
    return false;
  }
  if (s.compare(i, 4, "true") == 0) {
    out->kind = JsonValue::Kind::kBool;
    out->number = 1.0;
    i += 4;
    return true;
  }
  if (s.compare(i, 5, "false") == 0) {
    out->kind = JsonValue::Kind::kBool;
    out->number = 0.0;
    i += 5;
    return true;
  }
  if (s.compare(i, 4, "null") == 0) {
    out->kind = JsonValue::Kind::kNull;
    i += 4;
    return true;
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str() + i, &end);
  if (end == s.c_str() + i) {
    *error = "malformed number";
    return false;
  }
  out->kind = JsonValue::Kind::kNumber;
  out->number = v;
  i = static_cast<std::size_t>(end - s.c_str());
  return true;
}

}  // namespace

const JsonValue* JsonLine::find(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonLine::number(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

std::string JsonLine::text(const std::string& key) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->text : "";
}

bool parse_json_line(const std::string& line, JsonLine* out,
                     std::string* error) {
  out->fields.clear();
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') {
    *error = "expected '{'";
    return false;
  }
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') return true;  // empty object
  while (true) {
    skip_ws(line, i);
    std::string key;
    if (!parse_string(line, i, &key, error)) return false;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') {
      *error = "expected ':'";
      return false;
    }
    ++i;
    JsonValue value;
    if (!parse_value(line, i, &value, error)) return false;
    out->fields.emplace_back(std::move(key), std::move(value));
    skip_ws(line, i);
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') return true;
    *error = "expected ',' or '}'";
    return false;
  }
}

bool load_series(const std::string& path, SeriesData* out,
                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  out->path = path;
  out->rows.clear();
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonLine parsed;
    std::string parse_error;
    if (!parse_json_line(line, &parsed, &parse_error)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ":%zu: ", lineno);
      *error = path + buf + parse_error;
      return false;
    }
    if (lineno == 1) {
      out->header = std::move(parsed);
    } else {
      out->rows.push_back(std::move(parsed));
    }
  }
  if (lineno == 0) {
    *error = path + ": empty file";
    return false;
  }
  return true;
}

void render_summary(const SeriesData& series, std::ostream& os) {
  os << series.path << ": " << series.rows.size() << " probes, "
     << series.header.number("nodes") << " nodes, "
     << series.header.number("clusters") << " clusters\n";
  if (series.rows.empty()) return;
  metrics::Table table({"field", "final", "min", "max"});
  for (const auto& [key, value] : series.rows.front().fields) {
    if (value.kind != JsonValue::Kind::kNumber) continue;
    if (key == "t" || key == "probe") continue;
    double lo = value.number;
    double hi = value.number;
    double fin = value.number;
    for (const JsonLine& row : series.rows) {
      const double v = row.number(key, value.number);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      fin = v;
    }
    table.add_row({key, metrics::Table::num(fin), metrics::Table::num(lo),
                   metrics::Table::num(hi)});
  }
  table.print(os);
}

void render_convergence(const SeriesData& series, std::ostream& os) {
  struct Family {
    const char* bound_key;
    const char* value_key;
    const char* label;
  };
  static const Family kFamilies[] = {
      {"bound_local", "local_max", "local"},
      {"bound_global", "global_max", "global"},
      {"bound_intra", "intra_max", "intra"},
      {"bound_m_lag", "m_lag", "m_lag"},
  };
  metrics::Table table({"envelope", "bound", "first_within_t", "first_probe",
                        "worst_value", "min_margin"});
  for (const Family& fam : kFamilies) {
    const double bound = series.header.number(fam.bound_key);
    if (bound <= 0.0) continue;
    if (!series.rows.empty() &&
        series.rows.front().find(fam.value_key) == nullptr) {
      continue;
    }
    double first_t = -1.0;
    long long first_probe = -1;
    double worst = 0.0;
    for (const JsonLine& row : series.rows) {
      const double v = row.number(fam.value_key);
      worst = std::max(worst, v);
      if (first_t < 0.0 && v <= bound) {
        first_t = row.number("t");
        first_probe = static_cast<long long>(row.number("probe"));
      }
    }
    table.add_row({fam.label, metrics::Table::num(bound),
                   first_t < 0.0 ? "never" : metrics::Table::num(first_t),
                   first_probe < 0 ? "-"
                                   : metrics::Table::integer(first_probe),
                   metrics::Table::num(worst),
                   metrics::Table::num(bound - worst)});
  }
  if (table.rows() == 0) {
    os << "no envelope bounds in header (monitors were off)\n";
    return;
  }
  table.print(os);
}

void render_profile(const SeriesData& profile, std::ostream& os) {
  metrics::Table phases({"shard", "merge_ms", "run_ms", "wait_ms",
                         "windows"});
  const JsonLine* summary = nullptr;
  const JsonLine* last_diag = nullptr;
  metrics::Table spans({"span", "ms"});
  for (const JsonLine& row : profile.rows) {
    const std::string section = row.text("section");
    if (section == "phase") {
      phases.add_row({metrics::Table::integer(
                          static_cast<long long>(row.number("shard"))),
                      metrics::Table::num(row.number("merge_ms")),
                      metrics::Table::num(row.number("run_ms")),
                      metrics::Table::num(row.number("wait_ms")),
                      metrics::Table::integer(
                          static_cast<long long>(row.number("windows")))});
    } else if (section == "summary") {
      summary = &row;
    } else if (section == "span") {
      spans.add_row({row.text("name"), metrics::Table::num(row.number("ms"))});
    } else if (section == "diag") {
      last_diag = &row;
    }
  }
  if (phases.rows() > 0) {
    os << "per-shard phases (wall clock, nondeterministic):\n";
    phases.print(os);
  }
  if (summary != nullptr) {
    os << "imbalance (max/mean run-phase): "
       << metrics::Table::num(summary->number("imbalance")) << " over "
       << static_cast<long long>(summary->number("shards")) << " shards\n";
  }
  if (spans.rows() > 0) {
    os << "top-level spans:\n";
    spans.print(os);
  }
  if (last_diag != nullptr) {
    os << "final queue/shard diag (deterministic per config, "
          "engine/shard-dependent):\n";
    metrics::Table diag({"field", "value"});
    for (const auto& [key, value] : last_diag->fields) {
      if (value.kind != JsonValue::Kind::kNumber || key == "t") continue;
      diag.add_row({key, metrics::Table::num(value.number)});
    }
    diag.print(os);
  }
}

int render_diff(const SeriesData& a, const SeriesData& b, std::ostream& os) {
  if (a.rows.size() != b.rows.size()) {
    os << "probe count differs: " << a.rows.size() << " vs " << b.rows.size()
       << "\n";
  }
  const std::size_t n = std::min(a.rows.size(), b.rows.size());
  // Shared numeric keys, in A's field order.
  std::vector<std::string> keys;
  if (!a.rows.empty() && !b.rows.empty()) {
    for (const auto& [key, value] : a.rows.front().fields) {
      if (value.kind != JsonValue::Kind::kNumber) continue;
      const JsonValue* other = b.rows.front().find(key);
      if (other != nullptr && other->kind == JsonValue::Kind::kNumber) {
        keys.push_back(key);
      }
    }
  }
  metrics::Table table({"field", "final_a", "final_b", "max_abs_delta"});
  int differing = 0;
  for (const std::string& key : keys) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_delta = std::max(
          max_delta, std::fabs(a.rows[i].number(key) - b.rows[i].number(key)));
    }
    const double fin_a = n > 0 ? a.rows[n - 1].number(key) : 0.0;
    const double fin_b = n > 0 ? b.rows[n - 1].number(key) : 0.0;
    if (max_delta > 0.0) ++differing;
    table.add_row({key, metrics::Table::num(fin_a),
                   metrics::Table::num(fin_b),
                   metrics::Table::num(max_delta)});
  }
  table.print(os);
  os << (differing == 0 ? "series identical over aligned probes\n"
                        : "differing fields: " + std::to_string(differing) +
                              "\n");
  if (a.rows.size() != b.rows.size()) ++differing;
  return differing;
}

}  // namespace ftgcs::obs
