#include "net/network.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace ftgcs::net {

namespace {

/// Adapts the legacy std::function handler onto the typed sink interface.
class FunctionSink final : public PulseSink {
 public:
  explicit FunctionSink(Network::Handler handler)
      : handler_(std::move(handler)) {}
  void on_pulse(const Pulse& pulse, sim::Time now) override {
    handler_(pulse, now);
  }

 private:
  Network::Handler handler_;
};

class NullSink final : public PulseSink {
 public:
  void on_pulse(const Pulse&, sim::Time) override {}
};

NullSink null_sink;

sim::EventPayload encode(const Pulse& pulse, int dest) {
  sim::EventPayload payload;
  payload.a = pulse.sender;
  payload.b = pulse.level;
  payload.c = dest;
  payload.d = static_cast<std::uint32_t>(pulse.kind);
  payload.x = pulse.value;
  return payload;
}

}  // namespace

Network::Network(sim::Simulator& simulator,
                 std::vector<std::vector<int>> adjacency,
                 std::unique_ptr<DelayModel> delays, sim::Rng rng)
    : sim_(simulator),
      adjacency_(std::move(adjacency)),
      delays_(std::move(delays)),
      sinks_(adjacency_.size(), nullptr) {
  FTGCS_EXPECTS(delays_ != nullptr);
  uniform_channel_ = dynamic_cast<const UniformDelay*>(delays_.get()) != nullptr;
  self_ = simulator.register_sink(this);
  edge_streams_.reserve(adjacency_.size());
  loopback_streams_.reserve(adjacency_.size());
  std::size_t max_degree = 0;
  std::uint64_t salt = 0;
  for (const auto& neighbors : adjacency_) {
    max_degree = std::max(max_degree, neighbors.size());
    std::vector<sim::Rng> streams;
    streams.reserve(neighbors.size());
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      streams.push_back(rng.fork(++salt));
    }
    edge_streams_.push_back(std::move(streams));
    loopback_streams_.push_back(rng.fork(++salt));
  }
  group_delays_.reserve(max_degree + 1);  // broadcast batch never allocates
}

void Network::register_handler(int node, PulseSink* sink) {
  FTGCS_EXPECTS(node >= 0 && node < num_nodes());
  FTGCS_EXPECTS(sink != nullptr);
  sinks_[node] = sink;
}

void Network::register_handler(int node, Handler handler) {
  FTGCS_EXPECTS(handler != nullptr);
  owned_sinks_.push_back(std::make_unique<FunctionSink>(std::move(handler)));
  register_handler(node, owned_sinks_.back().get());
}

void Network::register_null_handler(int node) {
  register_handler(node, &null_sink);
}

const std::vector<int>& Network::neighbors(int node) const {
  FTGCS_EXPECTS(node >= 0 && node < num_nodes());
  return adjacency_[node];
}

bool Network::are_neighbors(int a, int b) const {
  const auto& nb = neighbors(a);
  return std::find(nb.begin(), nb.end(), b) != nb.end();
}

sim::Rng& Network::edge_rng(int from, int to) {
  if (from == to) return loopback_streams_[static_cast<std::size_t>(from)];
  const auto& nb = adjacency_[static_cast<std::size_t>(from)];
  const auto it = std::find(nb.begin(), nb.end(), to);
  FTGCS_EXPECTS(it != nb.end());
  return edge_streams_[static_cast<std::size_t>(from)]
                      [static_cast<std::size_t>(it - nb.begin())];
}

void Network::post_delivery(sim::EventPayload& payload, int to,
                            sim::Duration delay) {
  FTGCS_EXPECTS(to >= 0 && to < num_nodes());
  FTGCS_EXPECTS(delay >= delays_->min_delay() - sim::kTimeEps &&
                delay <= delays_->max_delay() + sim::kTimeEps);
  ++messages_sent_;
  payload.c = to;  // re-aim the shared payload; everything else is fixed
  // Deliveries are never cancelled: the fire-only path keeps the payload
  // inline in the queue — no slot pool traffic on the dominant path.
  sim_.post_fire_only_after(delay, sim::EventKind::kPulse, self_, payload);
}

void Network::deliver(int from, int to, const Pulse& pulse,
                      sim::Duration delay) {
  (void)from;
  sim::EventPayload payload = encode(pulse, to);
  post_delivery(payload, to, delay);
}

void Network::on_event(sim::EventKind kind, const sim::EventPayload& payload,
                       sim::Time now) {
  FTGCS_ASSERT(kind == sim::EventKind::kPulse);
  ++messages_delivered_;
  Pulse pulse;
  pulse.sender = payload.a;
  pulse.level = payload.b;
  pulse.kind = static_cast<PulseKind>(payload.d);
  pulse.value = payload.x;
  PulseSink* sink = sinks_[static_cast<std::size_t>(payload.c)];
  FTGCS_ASSERT(sink != nullptr);
  sink->on_pulse(pulse, now);
}

void Network::broadcast(int from, const Pulse& pulse) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(pulse.sender == from);
  const auto& neighbors = adjacency_[static_cast<std::size_t>(from)];
  // One delivery group: pre-sample every arrival offset (loopback first,
  // then neighbors in adjacency order — the draw order each per-edge
  // stream observes is unchanged), then schedule the batch. The payload
  // is encoded once and only re-aimed per destination; the arrival times
  // all sit within one delay spread, so on the ladder engine the burst
  // lands as contiguous appends into the same few near-future buckets —
  // O(degree) with no per-message tree walks.
  group_delays_.clear();
  group_delays_.push_back(sample_delay(
      from, from, loopback_streams_[static_cast<std::size_t>(from)]));
  // Streams are indexed by adjacency position — no per-edge find() here;
  // edge_rng() (which searches) stays for the unicast paths only.
  auto& streams = edge_streams_[static_cast<std::size_t>(from)];
  for (std::size_t j = 0; j < neighbors.size(); ++j) {
    group_delays_.push_back(sample_delay(from, neighbors[j], streams[j]));
  }
  sim::EventPayload payload = encode(pulse, from);
  post_delivery(payload, from, group_delays_[0]);
  for (std::size_t j = 0; j < neighbors.size(); ++j) {
    post_delivery(payload, neighbors[j], group_delays_[j + 1]);
  }
}

void Network::unicast(int from, int to, const Pulse& pulse) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(to >= 0 && to < num_nodes());
  FTGCS_EXPECTS(from == to || are_neighbors(from, to));
  deliver(from, to, pulse, sample_delay(from, to, edge_rng(from, to)));
}

void Network::unicast_with_delay(int from, int to, const Pulse& pulse,
                                 sim::Duration delay) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(to >= 0 && to < num_nodes());
  FTGCS_EXPECTS(from == to || are_neighbors(from, to));
  deliver(from, to, pulse, delay);
}

}  // namespace ftgcs::net
