// MetricsRegistry: the deterministic metrics plane's catalogue.
//
// Counters, gauges, and log-linear histograms are registered ONCE at
// setup (names + storage allocated then, never again); sampling mutates
// the registered storage in place and serialization walks the entries in
// registration order. That gives the plane its two contracts:
//
//   * schema stability — every JSONL row of one run carries exactly the
//     registered fields, in registration order, so rows are mechanically
//     comparable across probes, runs, engines, and shard counts;
//   * zero steady-state allocation — after ProbeSampler::prewarm() the
//     whole sample→serialize→write path touches only preallocated
//     storage (the ScopedAllocGuard pin in tests/test_obs_metrics.cpp).
//
// Only run-invariant quantities may be registered here: anything that
// depends on the queue backend or the shard count (narrow/wide event
// mix, mailbox depths, cut traffic) belongs to the nondeterministic
// sidecar written by PhaseProfiler, never to this registry — the
// deterministic series is CI-compared byte-for-byte across
// `--engine {heap,ladder}` × `--shards {1,2,4}`.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace ftgcs::obs {

/// Serializes `v` as a JSON number (printf %.17g: round-trips exactly,
/// and is a pure function of the bits, so identical doubles serialize to
/// identical bytes on every backend). The value must be finite — %.17g
/// would print `inf`/`nan`, which is not JSON; the registry only ever
/// holds finite values by construction (margins are registered per
/// enabled envelope family only).
void append_json_double(std::string& out, double v);
void append_json_u64(std::string& out, std::uint64_t v);

struct Counter {
  std::uint64_t value = 0;
};

struct Gauge {
  double value = 0.0;
};

class MetricsRegistry {
 public:
  /// Registration (setup only; pointers remain stable — deque storage).
  Counter* add_counter(const std::string& name);
  Gauge* add_gauge(const std::string& name);
  /// A histogram serializes as three fields: `name_max` (exact running
  /// max), `name_p99`, `name_p50` (bucket upper bounds).
  LogLinearHistogram* add_histogram(const std::string& name,
                                    const LogLinearHistogram::Spec& spec);

  /// Appends `,"name":value` for every registered metric, registration
  /// order. Allocation-free once `out` has capacity (line_reserve_hint).
  void append_fields(std::string& out) const;

  /// Clears all histograms (per-probe distributions refill each sample).
  void clear_histograms();

  /// Capacity to reserve for one serialized row (upper bound: field
  /// names + 26 bytes per %.17g number + punctuation).
  std::size_t line_reserve_hint() const;

  std::size_t num_entries() const { return entries_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::size_t index;  ///< into the per-kind deque
  };

  std::vector<Entry> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<LogLinearHistogram> histograms_;
};

}  // namespace ftgcs::obs
