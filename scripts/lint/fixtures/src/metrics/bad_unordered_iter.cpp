// Seeded violations for the no-unordered-iteration rule (scope:
// src/metrics/ — output-feeding code). Keyed lookups into unordered
// containers are fine; only iteration (order-dependent output) is banned.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

double sum_table(const std::unordered_map<int, double>& table) {
  double total = 0.0;
  for (const auto& entry : table) {             // EXPECT-LINT: no-unordered-iteration
    total += entry.second;
  }
  return total;
}

std::vector<int> dump_ids(const std::unordered_set<int>& ids) {
  std::vector<int> out;
  out.assign(ids.begin(), ids.end());           // EXPECT-LINT: no-unordered-iteration
  return out;
}

// Keyed lookup: allowed — no iteration order leaks into output.
double lookup_ok(const std::unordered_map<int, double>& table, int key) {
  auto it = table.find(key);
  return it == table.end() ? 0.0 : it->second;
}

double waived_iteration(const std::unordered_map<int, double>& table) {
  double total = 0.0;
  // ftgcs-lint: allow(no-unordered-iteration) fixture: order-independent sum
  for (const auto& entry : table) {
    total += entry.second;
  }
  return total;
}

}  // namespace fixture
