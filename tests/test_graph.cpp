#include "net/graph.h"

#include <gtest/gtest.h>

namespace ftgcs::net {
namespace {

TEST(Graph, LineBasics) {
  const Graph g = Graph::line(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.diameter(), 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, SingleVertexLine) {
  const Graph g = Graph::line(1);
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.diameter(), 0);
}

TEST(Graph, RingBasics) {
  const Graph g = Graph::ring(6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.diameter(), 3);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(g.neighbors(v).size(), 2u);
}

TEST(Graph, StarBasics) {
  const Graph g = Graph::star(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.diameter(), 2);
  EXPECT_EQ(g.neighbors(0).size(), 6u);
}

TEST(Graph, CliqueBasics) {
  const Graph g = Graph::clique(5);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.diameter(), 1);
}

TEST(Graph, GridBasics) {
  const Graph g = Graph::grid(4, 3);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(3 * 3 + 4 * 2));
  EXPECT_EQ(g.diameter(), 3 + 2);
}

TEST(Graph, TorusBasics) {
  const Graph g = Graph::torus(4, 4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32u);  // 2 edges per vertex
  EXPECT_EQ(g.diameter(), 4);     // 2 + 2
}

TEST(Graph, BalancedTreeBasics) {
  const Graph g = Graph::balanced_tree(2, 3);  // 1+2+4+8 = 15 vertices
  EXPECT_EQ(g.num_vertices(), 15);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.diameter(), 6);
}

TEST(Graph, HypercubeBasics) {
  const Graph g = Graph::hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32u);  // n·dim/2
  EXPECT_EQ(g.diameter(), 4);
}

TEST(Graph, GnpIsConnectedAndDeterministic) {
  const Graph a = Graph::gnp_connected(20, 0.2, 7);
  const Graph b = Graph::gnp_connected(20, 0.2, 7);
  EXPECT_TRUE(a.connected());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (int v = 0; v < 20; ++v) {
    EXPECT_EQ(a.neighbors(v), b.neighbors(v));
  }
}

TEST(Graph, BfsDistances) {
  const Graph g = Graph::line(5);
  const auto dist = g.bfs_distances(2);
  EXPECT_EQ(dist, (std::vector<int>{2, 1, 0, 1, 2}));
}

TEST(Graph, BfsTreeParents) {
  const Graph g = Graph::line(4);
  const auto parent = g.bfs_tree(0);
  EXPECT_EQ(parent, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(Graph, DisconnectedDetected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, AdjacencyIsSymmetric) {
  const Graph g = Graph::gnp_connected(15, 0.3, 3);
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int w : g.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(w, v));
    }
  }
}

}  // namespace
}  // namespace ftgcs::net
