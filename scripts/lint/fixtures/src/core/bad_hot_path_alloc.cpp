// Seeded violations for the no-hot-path-alloc rule. The annotated
// hot-path functions (pop_run*, on_pulse_run, lane_receive, insert_*,
// *_insert, broadcast*, schedule/post_fire_only*, on_event_batch,
// lane_commit) must not construct allocations; identically-shaped code in
// a non-hot function is legal.
#include <cstdlib>
#include <functional>
#include <memory>

namespace fixture {

struct Entry {
  double at = 0.0;
  int payload = 0;
};

class Queue {
 public:
  void insert_ladder(const Entry& entry) {
    auto* copy = new Entry(entry);              // EXPECT-LINT: no-hot-path-alloc
    scratch_ = copy;
  }

  int pop_run_unordered() {
    void* raw = std::malloc(64);                // EXPECT-LINT: no-hot-path-alloc
    std::free(raw);
    return 0;
  }

  void on_pulse_run(int n) {
    std::function<void(int)> f = [](int) {};    // EXPECT-LINT: no-hot-path-alloc
    f(n);
  }

  void lane_receive(double at) {
    auto owned = std::make_unique<Entry>();     // EXPECT-LINT: no-hot-path-alloc
    owned->at = at;
  }

  void quorum_insert(int level) {
    auto shared = std::make_shared<Entry>();    // EXPECT-LINT: no-hot-path-alloc
    shared->payload = level;
  }

  // Cold-path setup: the same constructs are legal outside the annotated
  // hot function list.
  void configure(int n) {
    scratch_ = new Entry[static_cast<unsigned>(n)];
    hook_ = std::function<void()>([] {});
  }

  void insert_narrow(const Entry& entry) {
    // ftgcs-lint: allow(no-hot-path-alloc) fixture: proves waivers suppress
    scratch_ = new Entry(entry);
  }

 private:
  Entry* scratch_ = nullptr;
  std::function<void()> hook_;
};

}  // namespace fixture
