#include "core/node_table.h"

#include <climits>

#include "core/ftgcs_node.h"
#include "net/augmented.h"
#include "support/assert.h"

namespace ftgcs::core {

void NodeTable::build(const net::AugmentedTopology& topo,
                      const std::vector<std::unique_ptr<FtGcsNode>>& nodes) {
  FTGCS_EXPECTS(lanes_.empty());  // built once
  const int n = topo.num_nodes();
  FTGCS_EXPECTS(static_cast<int>(nodes.size()) == n);
  k_ = topo.cluster_size();

  cluster_.resize(static_cast<std::size_t>(n));
  index_in_cluster_.resize(static_cast<std::size_t>(n));
  managed_.assign(static_cast<std::size_t>(n), 0);
  crashed_.assign(static_cast<std::size_t>(n), 0);
  fast_.assign(static_cast<std::size_t>(n), 0);
  // Default floor: drop every level pulse. Correct for null/Byzantine-free
  // destinations without an estimator (their on_pulse ignores kMaxLevel);
  // a destination with its own sink semantics — a Byzantine node — must
  // never be batch-dropped, so its floor goes to INT32_MIN below. Managed
  // nodes with an estimator overwrite the slot via the bound mirror.
  level_floor_.assign(static_cast<std::size_t>(n), INT32_MAX);
  gamma_.assign(static_cast<std::size_t>(n), 0);
  lane_offset_.assign(static_cast<std::size_t>(n) + 1, 0);

  std::size_t total_lanes = 0;
  for (int id = 0; id < n; ++id) {
    cluster_[static_cast<std::size_t>(id)] = topo.cluster_of(id);
    index_in_cluster_[static_cast<std::size_t>(id)] =
        topo.index_in_cluster(id);
    lane_offset_[static_cast<std::size_t>(id)] =
        static_cast<std::int32_t>(total_lanes);
    if (nodes[static_cast<std::size_t>(id)] != nullptr) {
      total_lanes +=
          1 + topo.cluster_neighbors(topo.cluster_of(id)).size();
    } else {
      // Faulty id: its sink (Byzantine node) keeps full delivery
      // semantics — nothing may be batch-dropped on its behalf.
      level_floor_[static_cast<std::size_t>(id)] = INT32_MIN;
    }
  }
  lane_offset_[static_cast<std::size_t>(n)] =
      static_cast<std::int32_t>(total_lanes);

  // Allocate every lane and arrival slot up front: adoption hands out raw
  // pointers into these vectors, so they must never reallocate again.
  // Quorum windows share the lane index space (one window per observed
  // cluster — the clusters whose members can physically reach the node);
  // their cluster labels are filled alongside the lane labels below.
  lane_cluster_.assign(total_lanes, -1);
  lanes_.assign(total_lanes, ReceiveLane{});
  quorum_windows_.assign(total_lanes, QuorumWindow{});
  if (k_ > ReceiveLane::kInlineArrivals) {
    // Large clusters spill their arrival slots to an external bank; the
    // common k = 3f+1 ≤ 8 lives inside the lanes themselves.
    arrivals_bank_.assign(total_lanes * static_cast<std::size_t>(k_),
                          kUnsetArrival);
  }

  for (int id = 0; id < n; ++id) {
    FtGcsNode* node = nodes[static_cast<std::size_t>(id)].get();
    if (node == nullptr) continue;
    managed_[static_cast<std::size_t>(id)] = 1;
    fast_[static_cast<std::size_t>(id)] = 1;
    std::size_t lane =
        static_cast<std::size_t>(lane_offset_[static_cast<std::size_t>(id)]);
    const auto adopt = [&](ClusterSyncEngine& engine, int observed) {
      lane_cluster_[lane] = observed;
      quorum_windows_[lane].cluster = observed;
      double* external =
          arrivals_bank_.empty()
              ? nullptr
              : arrivals_bank_.data() + lane * static_cast<std::size_t>(k_);
      engine.adopt_lane(&lanes_[lane], external);
      ++lane;
    };
    adopt(node->engine(), topo.cluster_of(id));
    EstimateBank& estimates = node->estimates();
    const std::vector<int>& adjacent = estimates.clusters();
    for (std::size_t j = 0; j < adjacent.size(); ++j) {
      adopt(estimates.replica_at(j), adjacent[j]);
    }
    FTGCS_ASSERT(static_cast<std::int32_t>(lane) ==
                 lane_offset_[static_cast<std::size_t>(id) + 1]);
  }
}

void NodeTable::on_pulse_run(const sim::BatchedEvent* events, std::size_t n) {
  // Three branch-light sweeps over the run instead of one branchy loop per
  // event (runs arrive up to Simulator::kMaxRun long via the partitioned
  // drain): decode into flat scratch columns, evaluate every clock mirror
  // in one arithmetic pass, then commit. Each pass touches one kind of
  // memory — payloads, lane headers, arrival slots — so the hardware
  // prefetcher sees three streams instead of one pointer-chasing mix.
  sim::BatchScratch& s = *scratch_;
  s.ensure(n);
  std::int32_t* const lane_col = s.lane.data();
  std::int32_t* const member_col = s.member.data();
  double* const at_col = s.at.data();
  double* const value_col = s.value.data();

  // Pass 1 — decode + filter: resolve each event to a receive lane. Drops
  // (stale/self kMaxLevel, crashed destinations, non-adjacent senders)
  // vanish here; the later passes see only committed receives.
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const sim::EventPayload& p = events[i].payload;
    if (p.d != static_cast<std::uint32_t>(net::PulseKind::kClusterPulse)) {
      continue;  // stale/self kMaxLevel: a pure drop, pre-classified
    }
    const auto sender = static_cast<std::size_t>(p.a);
    const auto dest = static_cast<std::size_t>(p.c);
    if (fast_[dest] == 0) {
      // Crashed destination (the predicate admits every managed dest so
      // classification cannot drift over a run): a pure drop, exactly
      // what the null sink it would otherwise reach does.
      continue;
    }
    const std::int32_t sender_cluster = cluster_[sender];
    std::int32_t lane = lane_offset_[dest];
    const std::int32_t end = lane_offset_[dest + 1];
    FTGCS_ASSERT(lane != end);  // the predicate admits managed nodes only
    if (sender_cluster != lane_cluster_[lane]) {
      // Adjacent-cluster pulse: find the replica lane (degrees are small;
      // the scan mirrors EstimateBank::route_pulse). A pulse from a
      // non-adjacent cluster is dropped, as route_pulse drops it.
      ++lane;
      while (lane != end && lane_cluster_[lane] != sender_cluster) ++lane;
      if (lane == end) continue;
    }
    lane_col[m] = lane;
    member_col[m] = index_in_cluster_[sender];
    at_col[m] = events[i].at;
    ++m;
  }

  // Pass 2 — clock evaluation: one fused multiply-add per event, gathered
  // by lane. The mirrors are constant within a run (they mutate only in
  // slotted timer processing, which breaks runs), so evaluation order is
  // immaterial and the loop has no cross-iteration dependence.
  for (std::size_t i = 0; i < m; ++i) {
    value_col[i] =
        lane_arrival_value(lanes_[static_cast<std::size_t>(lane_col[i])],
                           at_col[i]);
  }

  // Pass 3 — commit: the NaN-sentinel arrival writes and counters, via
  // the same lane_commit the engine-object path executes.
  for (std::size_t i = 0; i < m; ++i) {
    lane_commit(lanes_[static_cast<std::size_t>(lane_col[i])], member_col[i],
                value_col[i]);
  }
}

bool NodeTable::pure_pulse(const sim::EventPayload& payload, const void* ctx) {
  const auto* table = static_cast<const NodeTable*>(ctx);
  const auto dest = static_cast<std::size_t>(payload.c);
  if (payload.d ==
      static_cast<std::uint32_t>(net::PulseKind::kClusterPulse)) {
    // Managed, not fast: the crashed subset is dropped inside
    // on_pulse_run. Keying on the immutable managed_ column makes the
    // classification TIME-INVARIANT, which the partitioned drain requires
    // (a crash between push and drain must not flip an accepted event to
    // rejected — see Simulator::set_batch_channel).
    return table->managed_[dest] != 0;
  }
  if (payload.d == static_cast<std::uint32_t>(net::PulseKind::kMaxLevel)) {
    // Self-loopback level pulses carry no news and are dropped on arrival;
    // so are levels below the destination's staleness floor. Both drops
    // are pure. The floor also encodes the endpoints: INT32_MAX for
    // destinations that ignore levels entirely (no estimator, crashed),
    // INT32_MIN for sinks with their own semantics (Byzantine nodes).
    if (table->level_floor_[dest] == INT32_MIN) return false;
    return payload.a == payload.c ||
           payload.b < table->level_floor_[dest];
  }
  return false;
}

void NodeTable::mark_crashed(int node) {
  const auto id = static_cast<std::size_t>(node);
  FTGCS_EXPECTS(managed_[id] != 0);
  crashed_[id] = 1;
  fast_[id] = 0;
  level_floor_[id] = INT32_MAX;
}

void NodeTable::snapshot_columns(sim::Time at, SystemColumns& out) const {
  const std::size_t n = cluster_.size();
  out.at = at;
  out.logical.assign(n, 0.0);
  out.correct.assign(n, 0);
  out.gamma.assign(n, 0);
  for (std::size_t id = 0; id < n; ++id) {
    // A crashed node is a (benign) faulty node: for the rest of the
    // system it is equivalent to removing its links (paper §1/App. A).
    if (managed_[id] == 0 || crashed_[id] != 0) continue;
    const clocks::ClockMirror& clock =
        lanes_[static_cast<std::size_t>(lane_offset_[id])].clock;
    out.correct[id] = 1;
    out.logical[id] = clock.l0 + clock.rate * (at - clock.t0);
    out.gamma[id] = gamma_[id];
  }
}

}  // namespace ftgcs::core
