#include "trace/collector.h"

#include <algorithm>
#include <utility>

namespace ftgcs::trace {

/// Lock-free per-shard capture buffer: only its owning worker thread
/// appends, and the collector drains it only while the workers are parked.
class TraceCollector::ShardBuffer final : public TraceSink {
 public:
  void on_delivery(sim::Time at, const sim::EventPayload& payload) override {
    Record record;
    record.at = at;
    record.sender = payload.a;
    record.dest = payload.c;
    record.kind = static_cast<std::uint8_t>(payload.d);
    record.level = kind_has_level(record.kind) ? payload.b : 0;
    record.value = kind_has_value(record.kind) ? payload.x : 0.0;
    records_.push_back(record);
  }

  void on_delivery_batch(const sim::BatchedEvent* events,
                         std::size_t n) override {
    records_.reserve(records_.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      on_delivery(events[i].at, events[i].payload);
    }
  }

  std::vector<Record>& records() { return records_; }

 private:
  std::vector<Record> records_;
};

TraceCollector::TraceCollector(const std::string& path) : writer_(path) {}

TraceCollector::~TraceCollector() = default;

TraceSink* TraceCollector::shard_sink(int shard) {
  while (static_cast<int>(shards_.size()) <= shard) {
    shards_.push_back(std::make_unique<ShardBuffer>());
  }
  return shards_[static_cast<std::size_t>(shard)].get();
}

void TraceCollector::commit() {
  if (finished_) return;
  merge_scratch_.clear();
  for (auto& shard : shards_) {
    auto& pending = shard->records();
    merge_scratch_.insert(merge_scratch_.end(), pending.begin(),
                          pending.end());
    pending.clear();
  }
  // The full-key sort canonicalizes the stream so the bytes depend on
  // neither the shard interleaving nor the capture order within a probe
  // window: shard buffers arrive in fire order, which since the
  // partitioned drain is only (time, seq)-sorted between barriers — the
  // unordered tranches land here in calendar-sweep order. Both collapse to
  // the same bytes under the canonical (time, sender, dest, kind, level,
  // value) key; key ties are whole-record ties (see trace/format.h).
  std::sort(merge_scratch_.begin(), merge_scratch_.end(), record_key_less);
  for (const Record& record : merge_scratch_) writer_.append(record);
}

void TraceCollector::finish() {
  if (finished_) return;
  commit();
  finished_ = true;
  writer_.finish();
}

}  // namespace ftgcs::trace
