// Cancellable discrete-event queue — typed, slot-pooled, allocation-free
// after warm-up, with two interchangeable priority front-ends.
//
// Events are (time, sequence) ordered; sequence numbers break ties FIFO so
// executions are fully deterministic. A *cancellable* event occupies a
// slot in a pooled array; the slot index and a generation stamp are packed
// into the EventId, so stale handles (cancel-after-fire, slot reuse) are
// rejected by a stamp comparison — no map lookup anywhere. Slots are
// recycled through a free list: a steady-state simulation performs no
// allocation per event, neither for the bookkeeping nor for the work item
// (typed events carry a POD payload dispatched to a registered EventSink
// instead of a closure).
//
// Backend kHeap: an intrusive 4-ary heap in one contiguous vector. Each
// slot knows its heap position, so cancel removes its entry directly
// (stamp bump + one targeted sift, no tombstones) and reschedule — the
// dominant operation of logical-timer re-aiming — moves the entry in place
// under a fresh sequence number. 4-ary beats binary here: half the levels
// per sift, and the sibling scan stays in one cache line. Cost is
// O(log n), which collapses at 40k-node populations (~400k in flight).
//
// Backend kLadder: a calendar-queue window of buckets over near-future
// time absorbs push/pop/reschedule in amortized O(1); far-future events
// live in an UNSORTED overflow bag whose order is never consulted — the
// window is rebuilt ("reseeded") by one linear scan of the bag whenever it
// drains — so overflow pushes, removals, and far-future re-aims are O(1)
// too. The bucket width is auto-tuned to the observed density (window =
// kWindowStretch × population span), so buckets hold O(1) events on
// uniform workloads; round-synchronized delivery bands that pile one
// bucket high are split on drain into a finer "rung" of sub-buckets (a
// one-level ladder queue) instead of paying one big sort. A bucket is
// sorted on drain — never on insert — in exactly the heap's (time, seq)
// order, so the pop sequence is bit-identical between backends (pinned by
// tests/test_queue_differential.cpp and the golden scenario traces).
//
// Three further ladder-only specializations carry the 40k-node workloads:
//   * fire-only events (schedule_fire_only — all network deliveries) store
//     their payload INLINE in the bucket entry: no slot acquire, no
//     position write, no generation bump — zero random pool accesses on
//     the dominant path;
//   * a BROADCAST FAN-OUT (schedule_fire_only_group — one sender's pulse
//     delivered to ~k² neighbors within one delay spread) is coalesced:
//     the shared payload fields (sender, level, kind, sink) are written
//     ONCE into a pooled group record and each delivery becomes a NARROW
//     16-byte entry {time, seq·group} in a second per-bucket lane — half
//     the streaming bytes of the 32-byte inline entry, on the path PR 7's
//     profile showed to be memory-bound. Destinations are not copied at
//     all: the group keeps a borrowed pointer into the caller's adjacency
//     list and the delivery index recovers them (seq − base_seq), so seq
//     assignment is in exactly the caller's per-delivery order and the pop
//     sequence stays bit-identical to N separate schedule_fire_only calls;
//   * for cancellable events, positions_ generalizes the heap index to a
//     tagged residence word (bag index, wheel bucket, or rung bucket), so
//     cancel and reschedule stay O(1) swap-removals wherever the event
//     lives; a drain sort leaves positions stale and the removal verifies
//     the slot before trusting an index.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/backend.h"
#include "sim/event.h"
#include "sim/time_types.h"
#include "support/assert.h"

namespace ftgcs::sim {

/// Opaque handle identifying a scheduled event: (slot+1, generation).
struct EventId {
  std::uint64_t value = 0;

  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
  explicit operator bool() const { return value != 0; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  explicit EventQueue(QueueBackend backend = QueueBackend::kHeap)
      : backend_(backend) {}

  // head_cache_ points into this object's own bucket storage; a copied or
  // moved-from queue would alias another instance's buckets.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  QueueBackend backend() const { return backend_; }

  /// Schedules `fn` at absolute time `t` (legacy closure path). Events at
  /// equal time run in scheduling order. Returns a handle for `cancel`.
  EventId schedule(Time t, Callback fn);

  /// Schedules a typed event at absolute time `t`. The engine stores only
  /// the POD payload; the caller-side Simulator dispatches to the sink.
  /// This path never allocates once the pool is warm.
  EventId schedule_typed(Time t, EventKind kind, SinkId sink,
                         const EventPayload& payload);

  /// Schedules a typed event that can never be cancelled or rescheduled
  /// (Fired.id is the null id). The dominant traffic — network pulse
  /// deliveries — is fire-only, and on the ladder backend the payload
  /// rides inline in the bucket entry: no slot pool, no positions, no
  /// generation stamp. Fires in exactly the (time, seq) order a
  /// schedule_typed at the same instant would have.
  void schedule_fire_only(Time t, EventKind kind, SinkId sink,
                          const EventPayload& payload);

  /// Coalesced broadcast insert: schedules `count` fire-only deliveries of
  /// one logical send in a single call. Delivery i fires at
  /// `base + delays[i]` aimed at destination i — `first_dest` for i = 0
  /// (the sender's loopback) and `rest_dests[i − 1]` beyond — carrying the
  /// payload template `proto` with only `c` re-aimed (`proto.c` is
  /// ignored). Sequence numbers are assigned in delivery order, so the pop
  /// sequence is bit-identical to `count` schedule_fire_only calls in the
  /// same order.
  ///
  /// On the ladder backend (and x == 0 payloads) this takes the narrow
  /// 16-byte entry path: the shared fields live in one pooled group record
  /// and `rest_dests` is BORROWED — it must stay valid and unchanged until
  /// every delivery of the group has fired (network adjacency lists
  /// qualify; they outlive the run). The heap backend and x ≠ 0 payloads
  /// fall back to per-delivery scheduling with identical (time, seq)
  /// semantics.
  void schedule_fire_only_group(Time base, const Duration* delays,
                                std::size_t count, EventKind kind,
                                SinkId sink, const EventPayload& proto,
                                std::int32_t first_dest,
                                const std::int32_t* rest_dests);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a no-op (returns false). Stamp bump + targeted
  /// removal from wherever the entry lives; no search, no allocation.
  bool cancel(EventId id);

  /// Moves a pending event to time `t` under a fresh sequence number —
  /// observably identical to cancel(id) + re-schedule (same payload), but
  /// in place. Returns false (and does nothing) if `id` is no longer live.
  bool reschedule(EventId id, Time t);

  /// True if no live events remain.
  bool empty() const {
    return heap_.empty() && bag_.empty() && bag_narrow_.empty() &&
           wheel_live_ == 0 && rung_live_ == 0;
  }

  /// Number of live (not cancelled, not fired) events.
  std::size_t size() const {
    return heap_.size() + bag_.size() + bag_narrow_.size() + wheel_live_ +
           rung_live_;
  }

  /// Time of the earliest live event; kTimeInfinity when empty. On the
  /// ladder backend this may sort the current bucket (logically const —
  /// the live event set and the pop order are unchanged).
  Time next_time() const;

  /// Pops and returns the earliest live event. Requires !empty().
  struct Fired {
    Time at = 0.0;
    EventId id;  ///< null for fire-only events
    EventKind kind = EventKind::kClosure;
    SinkId sink = kInvalidSink;
    EventPayload payload;
    Callback fn;
  };
  Fired pop();

  /// Single-inspection variant of next_time() + pop(): pops the earliest
  /// live event into `out` iff its time is ≤ `t_end`. The run loop's hot
  /// path — one head read per fired event instead of two.
  bool pop_if_at_most(Time t_end, Fired& out);

  /// Batch drain: pops the maximal run (≤ `max`) of consecutive earliest
  /// events at time ≤ `t_end` that belong to the batch channel — typed
  /// events whose packed (sink << 8 | kind) equals `sink_kind` and whose
  /// payload `pred(payload, ctx)` accepts — into `out`, in exact (time,
  /// seq) pop order. Stops at the first non-matching head, so an
  /// interleaved timer or cancellable event keeps its place. Returns the
  /// run length (0 when the head does not match). Safe only when the
  /// receiver's processing of a matching event schedules nothing (see
  /// Simulator::set_batch_channel for the contract).
  std::size_t pop_run(Time t_end, std::uint32_t sink_kind,
                      BatchPredicate pred, const void* ctx, BatchedEvent* out,
                      std::size_t max);

  /// Time-partitioned unordered drain (kLadder only; returns 0 on kHeap,
  /// which stays the ordered reference front-end). Pops channel events
  /// that lie STRICTLY below the partition horizon — the earliest live
  /// event that is not a drainable channel event (a slotted timer/closure/
  /// cancellable entry, or a pred-rejected delivery) — without restoring
  /// (time, seq) order first: buckets are swept in calendar order and
  /// compacted in place, so the per-bucket drain sort is paid only for the
  /// horizon-adjacent sliver that still fires through pop()/pop_run().
  /// Emitted items are NOT sorted; callers must require order-independent
  /// receivers (see Simulator::set_batch_channel — the batch contract plus
  /// two partition obligations: processing must commute within a run, and
  /// the predicate must be MONOTONE, i.e. once it accepts a payload it
  /// accepts it forever — that is what keeps each bucket's cached horizon
  /// scan (Bucket::bad_floor) conservative between calls).
  std::size_t pop_run_unordered(Time t_end, std::uint32_t sink_kind,
                                BatchPredicate pred, const void* ctx,
                                BatchedEvent* out, std::size_t max);

  /// Total events ever scheduled (for stats / microbenchmarks).
  /// Reschedules consume sequence numbers (they re-enter the FIFO order),
  /// so this counts logical schedules exactly like cancel+schedule would.
  std::uint64_t scheduled_count() const { return next_seq_ - 1; }

  /// Pre-sizes pool and tiers so the first `capacity` concurrent events
  /// allocate nothing.
  void reserve(std::size_t capacity);

  /// Pins the warmed-up capacity profile: levels every calendar bucket
  /// lane up to a margin over the highest single-lane occupancy reached
  /// so far. Vectors already keep their own high-water capacity; what
  /// still allocates in steady state is cross-bucket variance — each
  /// reseed re-derives the window origin and width from the drifting
  /// event population, so the same traffic keeps landing in different
  /// buckets and cold lanes grow through their 1→2→4… ramps forever.
  /// After prewarm, any bucket can absorb the largest pile any bucket has
  /// ever seen (×2), so steady-state windows allocate nothing (the
  /// contract tests/test_alloc_guard.cpp pins). Opt-in: the cost is
  /// O(buckets × max-lane) memory, so production sweeps simply never
  /// call it. No-op on kHeap (one flat vector — no variance to level).
  void prewarm();

  /// Slots currently in the pool (diagnostics; high-water mark of
  /// concurrent cancellable events).
  std::size_t pool_size() const { return slots_.size(); }

  /// Queue-tier diagnostics, surfaced through `--timing` footers so sweep
  /// output shows which tier dominated a run. All values are deterministic
  /// functions of the schedule (no wall clock involved).
  struct TierStats {
    std::size_t bucket_count = 0;   ///< widest calendar window built
    std::uint64_t rung_spawns = 0;  ///< overflowing buckets split on drain
    std::size_t overflow_peak = 0;  ///< overflow-tier occupancy high-water mark
    std::uint64_t overflow_pushes = 0;  ///< events routed via the overflow tier
    std::uint64_t reseeds = 0;      ///< windows rebuilt from the overflow tier
    // Batch-channel run lengths (see pop_run / pop_run_unordered): how much
    // of the fired traffic bypassed per-event dispatch, and how much of
    // that additionally bypassed the drain sort entirely.
    std::uint64_t unordered_runs = 0;    ///< partitioned drains that emitted
    std::uint64_t unordered_events = 0;  ///< events drained below the horizon
    std::uint64_t ordered_run_events = 0;  ///< events drained in sorted runs
    // Bytes-per-event split (see schedule_fire_only_group): how much of the
    // scheduled traffic rode the narrow 16-byte delivery lane vs the wide
    // 32-byte entries (inline fire-only + slotted), and how many pooled
    // group records the narrow traffic shared.
    std::uint64_t narrow_events = 0;   ///< 16 B narrow deliveries scheduled
    std::uint64_t wide_events = 0;     ///< 32 B entries scheduled
    std::uint64_t group_inserts = 0;   ///< coalesced fan-out groups created

    /// Entry bytes written at schedule time under the ladder layout
    /// (16 B narrow + 32 B wide + one 40 B group record per fan-out; the
    /// heap's slotted entries are counted at the same 32 B for
    /// comparability). Reseed/rung redistribution traffic is not included.
    std::uint64_t entry_bytes() const {
      return 16 * narrow_events + 32 * wide_events + 40 * group_inserts;
    }
  };
  const TierStats& tier_stats() const { return stats_; }

 private:
  /// 32 bytes — two slots per cache line; closures live in the parallel
  /// fns_ array so the typed hot path never touches std::function storage.
  /// The sink id and event kind share one word (24 + 8 bits): a run has at
  /// most a few-per-node sinks, far below 2^24.
  struct Slot {
    std::uint32_t gen = 1;  ///< never 0, so EventId.value != 0 always
    std::uint32_t sink_kind = 0;  ///< sink << 8 | kind
    EventPayload payload;

    void set(EventKind kind, SinkId sink) {
      sink_kind = sink << 8 | static_cast<std::uint32_t>(kind);
    }
    EventKind kind() const {
      return static_cast<EventKind>(sink_kind & 0xffu);
    }
    SinkId sink() const { return sink_kind >> 8; }
  };
  static_assert(sizeof(EventPayload) == 24);

  /// kHeap's intrusive heap node: 16 bytes — a 4-ary sibling group spans
  /// one cache line. `key` packs (seq << kSlotBits) | slot: comparing keys
  /// compares sequence numbers first (they are unique), and the slot rides
  /// along for free.
  struct HeapEntry {
    Time at;
    std::uint64_t key;

    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key) & ((1u << kSlotBits) - 1);
    }
  };

  /// kLadder's bucket/bag element: the heap node plus an inline payload,
  /// used (and valid) only for inline (fire-only) entries — those never
  /// touch the slot pool at all. 32 bytes — the queue's streaming working
  /// set at 40k-node scale is hundreds of MB of entry traffic per second,
  /// so entry width is directly wall time. The squeeze: an inline entry's
  /// slot field is otherwise a constant sentinel, so its low bits carry
  /// the payload's `d` tag (see kInlineBase), and `payload.x` is not
  /// stored at all — fire-only events with x ≠ 0 (the baselines' kShare
  /// timestamps) take the slotted path instead, with identical (time, seq)
  /// semantics. Sequence numbers are unique, so the repurposed slot bits
  /// never influence ordering.
  struct Entry {
    Time at;
    std::uint64_t key;
    std::int32_t a = 0;  ///< EventPayload::a (inline entries)
    std::int32_t b = 0;  ///< EventPayload::b
    std::int32_t c = 0;  ///< EventPayload::c
    std::uint32_t sink_kind = 0;  ///< sink << 8 | kind (inline entries)

    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key) & ((1u << kSlotBits) - 1);
    }
    bool is_inline() const { return slot() >= kInlineBase; }
    std::uint32_t inline_d() const { return slot() - kInlineBase; }
  };
  static_assert(sizeof(Entry) == 32);

  /// The narrow delivery entry (schedule_fire_only_group): nothing but the
  /// sort key. The low kSlotBits of `key` hold the owning group-record
  /// index instead of a slot; the seq in the high bits recovers the
  /// destination (seq − base_seq indexes the group's borrowed dest list).
  /// Sequence numbers are unique across narrow and wide entries, so the
  /// shared (time, seq) comparator merges the two lanes exactly.
  struct NarrowEntry {
    Time at;
    std::uint64_t key;  ///< seq << kSlotBits | group id
  };
  static_assert(sizeof(NarrowEntry) == 16);

  /// Shared state of one coalesced fan-out: the payload fields that are
  /// identical across the whole broadcast, written once per ~k² deliveries.
  /// `live` counts undecoded deliveries; at zero the record is recycled
  /// through free_gids_. `rest` is borrowed from the caller (see
  /// schedule_fire_only_group) and never owned here.
  struct GroupRec {
    std::uint64_t base_seq = 0;          ///< seq of delivery 0 (first_dest)
    const std::int32_t* rest = nullptr;  ///< dests of deliveries 1..count−1
    std::int32_t first_dest = 0;
    std::int32_t a = 0;                  ///< EventPayload::a
    std::int32_t b = 0;                  ///< EventPayload::b
    std::uint32_t d = 0;                 ///< EventPayload::d (unrestricted)
    std::uint32_t sink_kind = 0;         ///< sink << 8 | kind
    std::uint32_t live = 0;              ///< deliveries still in the queue
  };
  static_assert(sizeof(GroupRec) == 40);

  /// One calendar bucket. Unsorted while it collects events; sorted in
  /// DESCENDING (time, seq) order when it becomes the drain head, so pops
  /// are pop_back and the live span is always exactly `items` + `narrow`
  /// (two lanes, merged on pop by the shared comparator).
  ///
  /// `bad_floor`/`scan_valid` cache the partitioned drain's horizon scan:
  /// the earliest entry that CANNOT be drained unordered (slotted, or
  /// pred-rejected — see pop_run_unordered). Every mutation that can add
  /// such an entry clears `scan_valid` alongside `sorted`; removing
  /// drainable entries (the partitioned compaction itself) keeps it, and a
  /// monotone predicate keeps a stale floor conservative (too low, never
  /// too high) — so the scan is paid once per bucket filling, not per call.
  struct Bucket {
    std::vector<Entry> items;
    std::vector<NarrowEntry> narrow;  ///< 16 B delivery lane (see NarrowEntry)
    /// Per-lane drain-order flags: an insert dirties only its own lane, so
    /// a narrow burst into a partially drained head re-sorts 16 B entries
    /// without touching the (already ordered) wide lane — at 40k nodes the
    /// delivery band lands thousands of narrow inserts per drain bucket
    /// and a shared flag made the wide introsort the top profile entry.
    /// Pops and compaction preserve order, so a set flag survives them.
    bool sorted_wide = false;
    bool sorted_narrow = false;
    bool scan_valid = false;  ///< the two floors reflect the current items
    Time bad_floor = 0.0;   ///< min time of a non-drainable entry (+inf: none)
    Time good_floor = 0.0;  ///< lower bound on drainable entries' times —
                            ///< lets a repeat sweep skip the whole bucket
                            ///< in O(1) when the horizon has not moved
  };
  static bool bucket_empty(const Bucket& b) {
    return b.items.empty() && b.narrow.empty();
  }
  /// Drain-head order means BOTH lanes are in descending (time, seq) order.
  static bool bucket_sorted(const Bucket& b) {
    return b.sorted_wide && b.sorted_narrow;
  }
  static std::size_t bucket_size(const Bucket& b) {
    return b.items.size() + b.narrow.size();
  }

  /// 22/42 split: ≤ 4M concurrent cancellable events (a 40k-node full-mesh
  /// run keeps ~400k in flight) and ~4.4e12 lifetime schedules before the
  /// guarded abort — days of wall clock at current throughput.
  static constexpr unsigned kSlotBits = 22;
  static constexpr unsigned kSeqBits = 64 - kSlotBits;
  /// Slot values in [kInlineBase, 2^22) mark a fire-only (inline payload)
  /// entry; the offset from kInlineBase is the payload's `d` tag (< 256).
  static constexpr std::uint32_t kInlineBase = (1u << kSlotBits) - 256;

  // ---- residence encoding (positions_) --------------------------------------
  // positions_[slot] describes where the slot's entry currently lives:
  //   < 2^32                       → overflow tier (heap_/bag_), that index
  //   (b+1) << 32 | idx            → wheel bucket b, items[idx]
  //   kRungBit | (b+1) << 32 | idx → rung bucket b, items[idx]
  // Fire-only entries have no slot and appear in no position.
  static constexpr std::uint64_t kRungBit = std::uint64_t{1} << 63;
  static std::uint64_t encode_bucket_pos(bool rung, std::size_t bucket,
                                         std::size_t idx) {
    return (rung ? kRungBit : 0) |
           (static_cast<std::uint64_t>(bucket + 1) << 32) |
           static_cast<std::uint64_t>(idx);
  }

  // ---- calendar-window tuning -----------------------------------------------
  /// Bucket count tracks the population, capped well below the population
  /// at 40k-node scale: the limiting resource is the cache working set of
  /// ACTIVE bucket tails (the delivery band sweeps them on every insert),
  /// not the per-bucket sort, which stays cheap up to a few hundred
  /// contiguous entries. 2^14 × wider buckets beat 2^17 × narrow ones by
  /// ~15% end-to-end on the 40k torus.
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 14;
  /// The window is stretched this far past the span observed at reseed.
  /// The span of the in-flight population equals the push horizon (delay /
  /// timer bound), so a window of exactly one span would put nearly every
  /// steady-state push just beyond win_end_ — through the overflow tier.
  /// A 2× window keeps about half the pushes in O(1) buckets. The batch
  /// drain made pops cheap, so the binding cost is the cache working set
  /// of active bucket tails: shrinking the window from the previous 3×
  /// bought ~4% end-to-end on the 40k-node torus (an overflow push is a
  /// plain bag append — cheaper than a cold bucket-tail miss), while 1.5×
  /// and 4× both measured worse.
  static constexpr double kWindowStretch = 2.0;
  /// A drain-head bucket larger than this is split into a rung of finer
  /// sub-buckets instead of sorted whole (skew absorption). Sorting ~2k
  /// contiguous PODs costs ~11 compares/event and no redistribution, so
  /// the rung only engages on real pile-ups (round-synchronized delivery
  /// bands and reseed transfers put 100s–1000s of events per bucket; see
  /// kRungFanout).
  static constexpr std::size_t kRungSpawnThreshold = 2048;
  /// Sub-buckets target ~kRungFanout events each: fine enough that the
  /// per-sub-bucket sort is trivial, coarse enough that draining the rung
  /// does not degenerate into scanning thousands of empty sub-buckets.
  static constexpr std::size_t kRungFanout = 16;
  static constexpr std::size_t kMaxRungBuckets = 4096;

  template <typename A, typename B = A>
  static bool earlier(const A& a, const B& b) {
    // Branchless: heap order is data-random, so a short-circuit here is a
    // guaranteed misprediction fountain inside the sift loops. The two-type
    // form merges the narrow and wide lanes of one bucket: both carry the
    // same {at, key} prefix and seqs are unique across lanes, so the packed
    // low key bits (slot vs group id) never decide an ordering.
    return (a.at < b.at) | ((a.at == b.at) & (a.key < b.key));
  }

  std::uint32_t acquire_slot();
  void bump_generation(std::uint32_t slot) {
    if (++slots_[slot].gen == 0) slots_[slot].gen = 1;  // 0 is the null id
  }
  /// Decodes a live id into its slot index, or returns false.
  bool decode_live(EventId id, std::uint32_t& slot) const;
  EventId push_entry(Time t, std::uint32_t slot);
  void fill_fired_slot(Time at, std::uint32_t slot, Fired& out);
  void fill_fired(const Entry& head, Fired& out);

  // ---- narrow-lane helpers (schedule_fire_only_group) -----------------------
  static std::uint32_t narrow_gid(std::uint64_t key) {
    return static_cast<std::uint32_t>(key) & ((1u << kSlotBits) - 1);
  }
  /// Decodes a narrow entry's payload from its group record: the delivery
  /// index (seq − base_seq) selects the destination, everything else is
  /// the group's shared state.
  void narrow_payload(const NarrowEntry& e, EventPayload& pl) const {
    const GroupRec& g = groups_[narrow_gid(e.key)];
    const std::uint64_t idx = (e.key >> kSlotBits) - g.base_seq;
    pl.a = g.a;
    pl.b = g.b;
    pl.c = idx == 0 ? g.first_dest : g.rest[idx - 1];
    pl.d = g.d;
    pl.x = 0.0;  // x ≠ 0 groups take the per-delivery fallback
  }
  std::uint32_t narrow_sink_kind(const NarrowEntry& e) const {
    return groups_[narrow_gid(e.key)].sink_kind;
  }
  /// One delivery of the group left the queue; the record is recycled when
  /// the last one goes.
  void narrow_retire(std::uint64_t key) {
    const std::uint32_t gid = narrow_gid(key);
    if (--groups_[gid].live == 0) free_gids_.push_back(gid);
  }
  void fill_fired_narrow(const NarrowEntry& head, Fired& out);

  void place(const HeapEntry& entry, std::size_t i) {
    heap_[i] = entry;
    positions_[entry.slot()] = static_cast<std::uint64_t>(i);
  }
  std::size_t sift_up(HeapEntry entry, std::size_t i);
  std::size_t sift_down(HeapEntry entry, std::size_t i);
  void sift(HeapEntry entry, std::size_t i);
  void remove_at(std::size_t i);

  // ---- ladder tier helpers (event_queue.cpp) --------------------------------
  void push_overflow(const Entry& entry);
  void insert_ladder(const Entry& entry);
  void insert_narrow(const NarrowEntry& entry);
  void insert_ladder_group(Time base, const Duration* delays,
                           std::size_t count, EventKind kind, SinkId sink,
                           const EventPayload& proto, std::int32_t first_dest,
                           const std::int32_t* rest_dests);
  void bucket_insert(Bucket& bucket, bool rung, std::size_t index,
                     const Entry& entry);
  /// Removes the (cancellable) entry of `slot` from wherever it lives.
  void remove_resident(std::uint32_t slot);
  /// Ensures head_cache_ points at the sorted, non-empty drain bucket.
  /// Advances the window, spawns rungs, and reseeds from the overflow tier
  /// as needed. Returns false iff the queue is empty.
  bool prepare_head();
  void sort_bucket(Bucket& bucket);
  void spawn_rung(Bucket& bucket);
  void reseed();

  QueueBackend backend_ = QueueBackend::kHeap;

  std::vector<Slot> slots_;
  std::vector<Callback> fns_;  ///< parallel to slots_; closure events only
  /// Residence of each slot's entry (see encoding above), parallel to
  /// slots_ but kept separate: sift and bucket moves touch only this dense
  /// array, not the fat slot records.
  std::vector<std::uint64_t> positions_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;  ///< kHeap: the whole queue
  std::vector<Entry> bag_;       ///< kLadder: unsorted far-future overflow
  std::vector<NarrowEntry> bag_narrow_;  ///< narrow-lane overflow companion
  /// Pooled fan-out group records (kLadder narrow lane). Indexed by the low
  /// kSlotBits of a NarrowEntry key; recycled through free_gids_ when the
  /// last live delivery of a group is popped. Only destroyed wholesale —
  /// the borrowed `rest` pointers are never dereferenced at destruction,
  /// so queue teardown is independent of the callers' adjacency lifetime.
  std::vector<GroupRec> groups_;
  std::vector<std::uint32_t> free_gids_;
  std::uint64_t next_seq_ = 1;

  // ---- calendar window (kLadder only) ---------------------------------------
  std::vector<Bucket> wheel_;   ///< active buckets: indices [0, wheel_nb_)
  std::size_t wheel_nb_ = 0;    ///< buckets in the current window
  std::size_t wheel_cur_ = 0;   ///< current drain bucket
  Time win_start_ = 0.0;        ///< window origin (bucket 0 lower bound)
  Time win_end_ = 0.0;          ///< exclusive upper bound; beyond → overflow
  double bucket_width_ = 1.0;
  std::size_t wheel_live_ = 0;

  std::vector<Bucket> rung_;    ///< one-level fine split of the drain bucket
  std::size_t rung_nb_ = 0;
  std::size_t rung_cur_ = 0;
  Time rung_start_ = 0.0;
  double rung_width_ = 1.0;
  std::size_t rung_live_ = 0;
  bool rung_active_ = false;

  /// The sorted, non-empty bucket pops come from. Any mutation that could
  /// change the head either clears a lane's sorted flag (insert,
  /// swap-remove — bucket_sorted then fails) or nulls this cache (reseed,
  /// rung spawn — the backing vectors may reallocate there), so a sorted
  /// non-empty cached bucket is always the true head.
  Bucket* head_cache_ = nullptr;

  /// pop_run_unordered scratch: payloads decoded during a bucket's horizon
  /// scan, reused verbatim by the same call's emit pass so each narrow
  /// entry's group record + destination read happens once, not twice.
  std::vector<EventPayload> unordered_decode_;

  TierStats stats_;
};

// ---- inline hot path --------------------------------------------------------
// The fire loop and the sift helpers run millions of times per simulated
// second; defining them here lets the Simulator's run loop inline the
// whole pop path.

inline std::size_t EventQueue::sift_up(HeapEntry entry, std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    place(heap_[parent], i);
    i = parent;
  }
  return i;
}

inline std::size_t EventQueue::sift_down(HeapEntry entry, std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t child = first + 1; child < last; ++child) {
      best = earlier(heap_[child], heap_[best]) ? child : best;  // cmov
    }
    if (!earlier(heap_[best], entry)) break;
    place(heap_[best], i);
    i = best;
  }
  return i;
}

inline void EventQueue::sift(HeapEntry entry, std::size_t i) {
  const std::size_t up = sift_up(entry, i);
  place(entry, up == i ? sift_down(entry, i) : up);
}

inline void EventQueue::remove_at(std::size_t i) {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (i >= n) return;
  // Bottom-up deletion (Wegener): walk the hole to the bottom promoting
  // min-children — no compare against `moved` per level — then bubble
  // `moved` up from there. `moved` came from the bottom layer, so the
  // up-pass almost always stops immediately; this trades the sift-down
  // loop's unpredictable exit branch for one short predictable pass.
  std::size_t hole = i;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t child = first + 1; child < last; ++child) {
      best = earlier(heap_[child], heap_[best]) ? child : best;  // cmov
    }
    place(heap_[best], hole);
    hole = best;
  }
  place(moved, sift_up(moved, hole));
}

inline void EventQueue::fill_fired_slot(Time at, std::uint32_t slot,
                                        Fired& out) {
  Slot& s = slots_[slot];
  out.at = at;
  out.id = EventId{(static_cast<std::uint64_t>(slot) + 1) << 32 | s.gen};
  out.kind = s.kind();
  out.payload = s.payload;
  if (out.kind == EventKind::kClosure) {
    out.sink = kInvalidSink;
    out.fn = std::move(fns_[slot]);
    fns_[slot] = nullptr;  // drop captures now, not at slot reuse
  } else {
    out.sink = s.sink();
    out.fn = nullptr;
  }
  bump_generation(slot);  // the id is spent: cancel-after-fire no-ops
  free_.push_back(slot);
}

inline void EventQueue::fill_fired(const Entry& head, Fired& out) {
  if (head.is_inline()) {
    // Fire-only: everything rides in the entry — no pool access at all.
    out.at = head.at;
    out.id = EventId{0};
    out.kind = static_cast<EventKind>(head.sink_kind & 0xffu);
    out.sink = head.sink_kind >> 8;
    out.payload.a = head.a;
    out.payload.b = head.b;
    out.payload.c = head.c;
    out.payload.d = head.inline_d();
    out.payload.x = 0.0;  // x ≠ 0 events take the slotted path
    out.fn = nullptr;
    return;
  }
  fill_fired_slot(head.at, head.slot(), out);
}

inline void EventQueue::fill_fired_narrow(const NarrowEntry& head, Fired& out) {
  // Decodes through the group record and RETIRES the delivery (the caller
  // is about to pop it); gid reuse cannot bite because the fields are read
  // before the record is freed.
  out.at = head.at;
  out.id = EventId{0};
  const std::uint32_t sk = narrow_sink_kind(head);
  out.kind = static_cast<EventKind>(sk & 0xffu);
  out.sink = sk >> 8;
  narrow_payload(head, out.payload);
  out.fn = nullptr;
  narrow_retire(head.key);
}

inline bool EventQueue::pop_if_at_most(Time t_end, Fired& out) {
  if (backend_ == QueueBackend::kHeap) {
    if (heap_.empty() || heap_[0].at > t_end) return false;
    const HeapEntry head = heap_[0];
    remove_at(0);
    fill_fired_slot(head.at, head.slot(), out);
    return true;
  }
  // Ladder fast path: the drain bucket is sorted descending in both lanes,
  // so the head is one back() read per lane (merged by the shared
  // comparator — seqs are unique across lanes) and the pop one pop_back —
  // no sift, no tree walk.
  Bucket* bucket = head_cache_;
  if (bucket == nullptr || !bucket_sorted(*bucket) || bucket_empty(*bucket)) {
    if (!prepare_head()) return false;
    bucket = head_cache_;
  }
  const std::size_t n = bucket->items.size();
  const std::size_t nn = bucket->narrow.size();
  if (nn != 0 &&
      (n == 0 || earlier(bucket->narrow[nn - 1], bucket->items[n - 1]))) {
    const NarrowEntry& head = bucket->narrow[nn - 1];
    if (head.at > t_end) return false;
    fill_fired_narrow(head, out);
    bucket->narrow.pop_back();
  } else {
    const Entry& head = bucket->items[n - 1];
    if (head.at > t_end) return false;
    if (n >= 2) {
      const Entry& next = bucket->items[n - 2];
      if (!next.is_inline()) {
        // The next pop's slot record is a random access into a multi-MB
        // pool; start pulling it while this event is dispatched.
        __builtin_prefetch(&slots_[next.slot()], 1);
      }
    }
    fill_fired(head, out);
    bucket->items.pop_back();
  }
  if (rung_active_) {
    --rung_live_;
  } else {
    --wheel_live_;
  }
  return true;
}

inline std::size_t EventQueue::pop_run(Time t_end, std::uint32_t sink_kind,
                                       BatchPredicate pred, const void* ctx,
                                       BatchedEvent* out, std::size_t max) {
  std::size_t n = 0;
  if (backend_ == QueueBackend::kHeap) {
    // The heap stores fire-only events in ordinary slots; a matching head
    // is drained with the minimal slot retirement (bump + free — no Fired
    // fill, no std::function traffic).
    while (n < max && !heap_.empty()) {
      const HeapEntry head = heap_[0];
      if (head.at > t_end) break;
      const std::uint32_t slot = head.slot();
      const Slot& s = slots_[slot];
      if (s.sink_kind != sink_kind || !pred(s.payload, ctx)) break;
      out[n].at = head.at;
      out[n].payload = s.payload;
      ++n;
      remove_at(0);
      bump_generation(slot);
      free_.push_back(slot);
    }
    stats_.ordered_run_events += n;
    return n;
  }
  // Ladder: both lanes of the drain bucket are sorted descending, so a
  // matching run is a contiguous suffix of their merge — walk the two
  // tails with the shared comparator, then retire each lane with ONE
  // resize and one live-counter update per bucket instead of per event.
  // The run keeps flowing across bucket (and rung/reseed) boundaries
  // through prepare_head(). Cancellable entries leave Entry::sink_kind at
  // 0 and can never match a real channel.
  while (n < max) {
    Bucket* bucket = head_cache_;
    if (bucket == nullptr || !bucket_sorted(*bucket) || bucket_empty(*bucket)) {
      if (!prepare_head()) break;
      bucket = head_cache_;
    }
    const std::vector<Entry>& items = bucket->items;
    const std::vector<NarrowEntry>& narrow = bucket->narrow;
    const std::size_t m = items.size();
    const std::size_t mn = narrow.size();
    std::size_t tw = 0;  // taken from the wide lane
    std::size_t tn = 0;  // taken from the narrow lane
    bool mismatch = false;
    while (n + tw + tn < max) {
      const bool have_w = tw < m;
      const bool have_n = tn < mn;
      if (!have_w && !have_n) break;
      BatchedEvent& slot = out[n + tw + tn];
      if (have_n &&
          (!have_w || earlier(narrow[mn - 1 - tn], items[m - 1 - tw]))) {
        const NarrowEntry& e = narrow[mn - 1 - tn];
        if (e.at > t_end || narrow_sink_kind(e) != sink_kind) {
          mismatch = true;
          break;
        }
        slot.at = e.at;
        narrow_payload(e, slot.payload);
        if (!pred(slot.payload, ctx)) {
          mismatch = true;
          break;
        }
        narrow_retire(e.key);
        ++tn;
      } else {
        const Entry& e = items[m - 1 - tw];
        if (e.at > t_end || e.sink_kind != sink_kind) {
          mismatch = true;
          break;
        }
        slot.at = e.at;
        slot.payload.a = e.a;
        slot.payload.b = e.b;
        slot.payload.c = e.c;
        slot.payload.d = e.inline_d();
        slot.payload.x = 0.0;
        if (!pred(slot.payload, ctx)) {
          mismatch = true;
          break;
        }
        ++tw;
      }
    }
    const std::size_t took = tw + tn;
    if (took != 0) {
      // Entry/NarrowEntry are trivially destructible.
      if (tw != 0) bucket->items.resize(m - tw);
      if (tn != 0) bucket->narrow.resize(mn - tn);
      if (rung_active_) {
        rung_live_ -= took;
      } else {
        wheel_live_ -= took;
      }
      n += took;
    }
    if (mismatch || took != m + mn) break;  // non-matching head (or max)
  }
  stats_.ordered_run_events += n;
  return n;
}

}  // namespace ftgcs::sim
