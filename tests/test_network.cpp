// Network dispatch: delivery to all neighbors + loopback, delay bounds,
// Byzantine delay control, message accounting; delay-model properties.
#include "net/network.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/augmented.h"
#include "net/channel.h"
#include "net/graph.h"

namespace ftgcs::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  Network network;
  std::map<int, std::vector<std::pair<int, sim::Time>>> received;

  explicit Fixture(const Graph& g, std::unique_ptr<DelayModel> delays =
                                       nullptr)
      : network(sim, g.adjacency(),
                delays ? std::move(delays)
                       : std::make_unique<UniformDelay>(1.0, 0.2),
                sim::Rng(5)) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      network.register_handler(v, [this, v](const Pulse& p, sim::Time t) {
        received[v].emplace_back(p.sender, t);
      });
    }
  }
};

TEST(Network, BroadcastReachesAllNeighborsAndSelf) {
  Fixture fx(Graph::star(4));  // hub 0 with leaves 1..3
  Pulse pulse;
  pulse.sender = 0;
  fx.network.broadcast(0, pulse);
  fx.sim.run_until(2.0);
  EXPECT_EQ(fx.received[0].size(), 1u);  // loopback
  for (int leaf = 1; leaf <= 3; ++leaf) {
    ASSERT_EQ(fx.received[leaf].size(), 1u);
    EXPECT_EQ(fx.received[leaf][0].first, 0);
  }
}

TEST(Network, LeafBroadcastOnlyReachesHubAndSelf) {
  Fixture fx(Graph::star(4));
  Pulse pulse;
  pulse.sender = 2;
  fx.network.broadcast(2, pulse);
  fx.sim.run_until(2.0);
  EXPECT_EQ(fx.received[0].size(), 1u);
  EXPECT_EQ(fx.received[2].size(), 1u);
  EXPECT_TRUE(fx.received[1].empty());
  EXPECT_TRUE(fx.received[3].empty());
}

TEST(Network, DeliveryTimesRespectDelayBounds) {
  Fixture fx(Graph::clique(5));
  for (int round = 0; round < 20; ++round) {
    Pulse pulse;
    pulse.sender = round % 5;
    fx.network.broadcast(pulse.sender, pulse);
  }
  fx.sim.run_until(10.0);
  for (const auto& [node, pulses] : fx.received) {
    for (const auto& [sender, at] : pulses) {
      // All sends happened at t=0.
      EXPECT_GE(at, 0.8 - 1e-12);
      EXPECT_LE(at, 1.0 + 1e-12);
    }
  }
}

TEST(Network, UnicastDeliversOnlyToTarget) {
  Fixture fx(Graph::clique(4));
  Pulse pulse;
  pulse.sender = 0;
  fx.network.unicast(0, 2, pulse);
  fx.sim.run_until(2.0);
  EXPECT_EQ(fx.received[2].size(), 1u);
  EXPECT_TRUE(fx.received[1].empty());
  EXPECT_TRUE(fx.received[3].empty());
  EXPECT_TRUE(fx.received[0].empty());  // unicast has no loopback
}

TEST(Network, ByzantineDelayControlWithinBounds) {
  Fixture fx(Graph::line(2));
  Pulse pulse;
  pulse.sender = 0;
  fx.network.unicast_with_delay(0, 1, pulse, 0.8);  // min delay
  fx.sim.run_until(2.0);
  ASSERT_EQ(fx.received[1].size(), 1u);
  EXPECT_DOUBLE_EQ(fx.received[1][0].second, 0.8);
}

TEST(Network, MessageCountersTrack) {
  Fixture fx(Graph::clique(3));
  Pulse pulse;
  pulse.sender = 0;
  fx.network.broadcast(0, pulse);  // self + 2 neighbors = 3 messages
  fx.sim.run_until(2.0);
  EXPECT_EQ(fx.network.messages_sent(), 3u);
  EXPECT_EQ(fx.network.messages_delivered(), 3u);
}

TEST(Network, AreNeighborsMatchesGraph) {
  Fixture fx(Graph::line(3));
  EXPECT_TRUE(fx.network.are_neighbors(0, 1));
  EXPECT_FALSE(fx.network.are_neighbors(0, 2));
}

TEST(DelayModels, UniformWithinBounds) {
  UniformDelay model(2.0, 0.5);
  sim::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double delay = model.sample(0, 1, rng);
    EXPECT_GE(delay, 1.5);
    EXPECT_LE(delay, 2.0);
  }
}

TEST(DelayModels, FixedIsDeterministic) {
  FixedDelay model(2.0, 0.5, 0.5);
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(model.sample(0, 1, rng), 1.75);
  FixedDelay max_model(2.0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(max_model.sample(0, 1, rng), 2.0);
  FixedDelay min_model(2.0, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(min_model.sample(0, 1, rng), 1.5);
}

TEST(DelayModels, TwoPointOnlyExtremes) {
  TwoPointDelay model(1.0, 0.3);
  sim::Rng rng(2);
  int lo = 0, hi = 0;
  for (int i = 0; i < 1000; ++i) {
    const double delay = model.sample(0, 1, rng);
    if (delay == 0.7) ++lo;
    else if (delay == 1.0) ++hi;
    else FAIL() << "unexpected delay " << delay;
  }
  EXPECT_GT(lo, 400);
  EXPECT_GT(hi, 400);
}

TEST(DelayModels, DirectionalBias) {
  DirectionalDelay model(1.0, 0.3);
  sim::Rng rng(3);
  EXPECT_DOUBLE_EQ(model.sample(2, 5, rng), 1.0);
  EXPECT_DOUBLE_EQ(model.sample(5, 2, rng), 0.7);
}

TEST(Network, WorksOnAugmentedTopology) {
  const AugmentedTopology topo(Graph::line(2), 4);
  Fixture fx(Graph::line(1));  // placeholder; build real one below
  sim::Simulator sim;
  Network network(sim, topo.adjacency(),
                  std::make_unique<UniformDelay>(1.0, 0.1), sim::Rng(9));
  std::vector<int> count(topo.num_nodes(), 0);
  for (int v = 0; v < topo.num_nodes(); ++v) {
    network.register_handler(v, [&count, v](const Pulse&, sim::Time) {
      ++count[v];
    });
  }
  Pulse pulse;
  pulse.sender = 0;  // member 0 of cluster 0
  network.broadcast(0, pulse);
  sim.run_until(2.0);
  // Reaches self + 3 cluster peers + 4 members of cluster 1.
  int total = 0;
  for (int c : count) total += c;
  EXPECT_EQ(total, 8);
  EXPECT_EQ(count[0], 1);
  EXPECT_EQ(count[7], 1);
}

}  // namespace
}  // namespace ftgcs::net
