// ftgcs_bench — unified experiment CLI over the exp/ engine.
//
//   ftgcs_bench list                      show registered scenarios
//   ftgcs_bench run <scenario> [opts]     run a scenario's registered grid
//   ftgcs_bench sweep <scenario> [opts]   run with grid/seed overrides
//
// Options (run/sweep):
//   --threads N         worker threads (default: hardware concurrency)
//   --sink KIND         table | csv | jsonl        (default: table)
//   --seeds a,b,c       override the seed list
//   --axis name=v1,v2   override or append a sweep axis (repeatable;
//                       the strategy axis also accepts strategy names)
//   --worst             aggregate rows as worst-over-seeds
//   --per-seed          one row per (point, seed)
//   --timing            append wall_ms / events_per_sec columns (wall-clock
//                       measurements; off by default so output stays
//                       machine-independent) and a queue-tier footer
//                       (buckets / rung spawns / overflow peak)
//   --engine KIND       event-engine backend: heap | ladder (default:
//                       ladder; tables are bit-identical either way, so
//                       this is a pure A/B throughput toggle)
//   --shards T          conservative-parallel backend: stripe each run's
//                       cluster graph over T worker threads advancing in
//                       lock-step safe windows (default 1 = single
//                       simulator; tables are bit-identical at any T, so
//                       this too is a pure throughput toggle; the
//                       `--timing` footer reports the cut geometry)
//   --trace PATH        stream every fired pulse delivery to a binary .ftr
//                       trace (multi-task sweeps write PATH.taskN). The
//                       bytes are identical at every --shards/--engine
//                       choice; inspect with `ftgcs_trace`
//   --metrics PATH      write the deterministic per-probe metrics series
//                       (JSONL: skew max/p99/p50, envelope margins,
//                       violations) to PATH — byte-identical at every
//                       --shards/--engine choice — plus the PATH.profile
//                       sidecar (wall-clock shard phases + engine/shard-
//                       dependent queue diag; NOT deterministic).
//                       Multi-task sweeps write PATH.taskN; inspect with
//                       `ftgcs_report`
//   --no-monitors       disable the online invariant monitors (they are on
//                       by default; results go to the --timing footer)
//   --quiet             table only, no banner
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "byz/strategies.h"
#include "exp/exp.h"
#include "metrics/table.h"

namespace {

using namespace ftgcs;

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: ftgcs_bench <list | run <scenario> | sweep "
               "<scenario>> [--threads N] [--sink table|csv|jsonl] "
               "[--seeds a,b,c] [--axis name=v1,v2]... [--worst] "
               "[--per-seed] [--timing] [--engine heap|ladder] "
               "[--shards T] [--trace PATH] [--metrics PATH] "
               "[--no-monitors] [--quiet]\n");
  std::exit(code);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

/// Parses one `--axis name=v1,v2,...` token list into a SweepAxis. Strategy
/// axes accept strategy names as well as numeric enum values.
exp::SweepAxis parse_axis(const std::string& text) {
  const std::size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size()) {
    throw std::invalid_argument("--axis expects name=v1,v2,... got '" +
                                text + "'");
  }
  exp::SweepAxis axis;
  axis.name = text.substr(0, eq);
  for (const std::string& token : split(text.substr(eq + 1), ',')) {
    if (token.empty()) continue;
    if (axis.name == "strategy") {
      bool matched = false;
      for (int s = 0; s <= static_cast<int>(byz::StrategyKind::kDelayJitter);
           ++s) {
        const auto kind = static_cast<byz::StrategyKind>(s);
        if (token == byz::strategy_name(kind)) {
          axis.values.push_back(
              exp::AxisValue::named(static_cast<double>(s), token));
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    axis.values.push_back(exp::AxisValue::of(std::stod(token)));
  }
  if (axis.values.empty()) {
    throw std::invalid_argument("--axis '" + axis.name + "' has no values");
  }
  return axis;
}

int cmd_list() {
  metrics::Table table({"scenario", "protocol", "topology", "points",
                        "seeds", "claim"});
  const exp::Registry& registry = exp::Registry::instance();
  for (const std::string& name : registry.names()) {
    const exp::ScenarioSpec* spec = registry.find(name);
    table.add_row({spec->name, exp::protocol_name(spec->protocol),
                   spec->topology.describe(),
                   metrics::Table::integer(
                       static_cast<long long>(spec->num_points())),
                   metrics::Table::integer(
                       static_cast<long long>(spec->seeds.size())),
                   spec->title});
  }
  table.print(std::cout);
  std::printf("\n%zu scenarios. `ftgcs_bench run <scenario>` executes one; "
              "`sweep` accepts --axis/--seeds overrides.\n",
              registry.size());
  return 0;
}

/// `run` executes the registered grid verbatim; `sweep` (allow_overrides)
/// additionally accepts --axis/--seeds/--worst/--per-seed.
int cmd_run(const std::vector<std::string>& args, bool allow_overrides) {
  if (args.empty()) usage(2);
  const std::string name = args[0];

  exp::ScenarioSpec spec;
  if (const exp::ScenarioSpec* found = exp::Registry::instance().find(name)) {
    spec = *found;
  } else {
    std::fprintf(stderr,
                 "ftgcs_bench: unknown scenario '%s' (see `ftgcs_bench "
                 "list`)\n",
                 name.c_str());
    return 2;
  }

  int threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  std::string sink_name = "table";
  bool quiet = false;
  bool timing = false;

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage(2);
      return args[++i];
    };
    if (!allow_overrides &&
        (arg == "--seeds" || arg == "--axis" || arg == "--worst" ||
         arg == "--per-seed")) {
      std::fprintf(stderr,
                   "ftgcs_bench: '%s' overrides the registered grid — use "
                   "`ftgcs_bench sweep %s %s ...`\n",
                   arg.c_str(), name.c_str(), arg.c_str());
      return 2;
    }
    if (arg == "--threads") {
      threads = std::stoi(next());
    } else if (arg == "--sink") {
      sink_name = next();
    } else if (arg == "--seeds") {
      spec.seeds.clear();
      for (const std::string& token : split(next(), ',')) {
        if (!token.empty()) spec.seeds.push_back(std::stoull(token));
      }
      if (spec.seeds.empty()) usage(2);
    } else if (arg == "--axis") {
      exp::SweepAxis axis = parse_axis(next());
      bool replaced = false;
      for (auto& existing : spec.axes) {
        if (existing.name == axis.name) {
          existing = axis;
          replaced = true;
          break;
        }
      }
      if (!replaced) spec.axes.push_back(std::move(axis));
    } else if (arg == "--worst") {
      spec.aggregation = exp::SeedAggregation::kWorstOverSeeds;
    } else if (arg == "--per-seed") {
      spec.aggregation = exp::SeedAggregation::kPerSeed;
    } else if (arg == "--engine") {
      spec.engine = exp::parse_queue_backend(next());
    } else if (arg == "--shards") {
      spec.shards = std::stoi(next());
      if (spec.shards < 1) usage(2);
    } else if (arg == "--trace") {
      spec.trace_path = next();
      if (spec.trace_path.empty()) usage(2);
    } else if (arg == "--metrics") {
      spec.metrics_path = next();
      if (spec.metrics_path.empty()) usage(2);
    } else if (arg == "--no-monitors") {
      spec.monitors = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--timing") {
      timing = true;
    } else {
      std::fprintf(stderr, "ftgcs_bench: unknown option '%s'\n", arg.c_str());
      usage(2);
    }
  }

  if (!quiet) {
    std::printf("\n==========================================================\n");
    std::printf("%s — %s\n", spec.name.c_str(), spec.title.c_str());
    std::printf("==========================================================\n");
    std::printf("%s\n\n", spec.description.c_str());
  }

  const std::unique_ptr<exp::ResultSink> sink = exp::make_sink(sink_name);
  exp::SweepRunner runner({threads, timing});
  const exp::SweepResult result = runner.run(spec);
  sink->write(result, std::cout);
  if (!quiet) {
    std::printf("\n%zu rows (%zu tasks, %d threads)\n", result.rows.size(),
                spec.num_tasks(), threads);
    // The whole diagnostics block keys on --timing alone: the queue /
    // shards / monitor / trace lines are deterministic and must print on
    // EVERY timed footer — including the degenerate single-simulator
    // fallback of a zero-event or sub-millisecond run, which the old
    // wall>0 && events>0 guard silently swallowed while the sharded
    // footer printed them. Only the throughput line needs a nonzero wall.
    if (timing) {
      if (result.total_wall_ms > 0.0 && result.total_events > 0.0) {
        std::printf("%.3g simulated events in %.0f ms task time — %.2fM "
                    "events/sec/thread aggregate\n",
                    result.total_events, result.total_wall_ms,
                    result.total_events / result.total_wall_ms / 1000.0);
      }
      std::printf("queue[%s]: buckets=%.0f rung_spawns=%.0f "
                  "overflow_peak=%.0f reseeds=%.0f\n",
                  sim::queue_backend_name(spec.engine),
                  result.queue.max_bucket_count, result.queue.rung_spawns,
                  result.queue.max_overflow_peak, result.queue.reseeds);
      std::printf("runs[%s]: part_runs=%.0f part_events=%.0f "
                  "run_events=%.0f\n",
                  sim::queue_backend_name(spec.engine),
                  result.queue.unordered_runs, result.queue.unordered_events,
                  result.queue.ordered_run_events);
      {
        // Entry-footprint split: 16 B narrow fire-only deliveries vs 32 B
        // wide entries, plus the 40 B group records that carry the narrow
        // fan-outs. mean_group = deliveries per coalesced broadcast.
        const double narrow = result.queue.narrow_events;
        const double wide = result.queue.wide_events;
        const double groups = result.queue.group_inserts;
        const double bytes = 16.0 * narrow + 32.0 * wide + 40.0 * groups;
        const double total = narrow + wide;
        std::printf("bytes[queue]: entry_bytes=%.0f narrow=%.0f wide=%.0f "
                    "groups=%.0f mean_group=%.1f bytes_per_event=%.1f\n",
                    bytes, narrow, wide, groups,
                    groups > 0.0 ? narrow / groups : 0.0,
                    total > 0.0 ? bytes / total : 0.0);
      }
      if (result.shard.shards > 0.0) {
        std::printf("shards[%.0f]: cut_edges=%.0f min_cut_delay=%g "
                    "windows=%.0f mailbox_peak=%.0f\n",
                    result.shard.shards, result.shard.max_cut_edges,
                    result.shard.min_cut_delay, result.shard.windows,
                    result.shard.max_mailbox_peak);
      } else if (spec.shards > 1) {
        std::printf("shards: requested %d, partition degenerate — ran the "
                    "single-simulator engine\n",
                    spec.shards);
      }
      // Monitor/trace status prints on EVERY --timing footer — including
      // the degenerate single-simulator fallback above — so "off" is
      // always an explicit statement, never an absence.
      if (result.monitor.rows > 0.0) {
        const exp::SweepResult::MonitorTotals& mon = result.monitor;
        std::printf("monitors[on]: probes=%.0f violations=%.0f "
                    "max_local=%.4g max_global=%.4g max_intra=%.4g",
                    mon.probes, mon.violations, mon.max_local_skew,
                    mon.max_global_skew, mon.max_intra);
        if (std::isfinite(mon.min_local_margin)) {
          std::printf(" local_margin=%.4g", mon.min_local_margin);
        }
        if (std::isfinite(mon.min_global_margin)) {
          std::printf(" global_margin=%.4g", mon.min_global_margin);
        }
        if (std::isfinite(mon.min_intra_margin)) {
          std::printf(" intra_margin=%.4g", mon.min_intra_margin);
        }
        std::printf("\n");
        if (mon.has_violation) {
          std::printf("monitors: FIRST VIOLATION %s value=%.6g bound=%.6g "
                      "at t=%.6g task=%zu events=%llu trace_offset=%llu\n",
                      mon.first.invariant, mon.first.value, mon.first.bound,
                      mon.first.cursor.at, mon.first_task,
                      static_cast<unsigned long long>(mon.first.cursor.events),
                      static_cast<unsigned long long>(
                          mon.first.cursor.trace_offset));
        }
      } else {
        std::printf("monitors=off\n");
      }
      if (result.trace.files > 0.0) {
        std::printf("trace[on]: files=%.0f records=%.0f bytes=%.0f (%s)\n",
                    result.trace.files, result.trace.records,
                    result.trace.bytes, spec.trace_path.c_str());
      } else {
        std::printf("trace=off\n");
      }
      if (result.series.files > 0.0) {
        std::printf("metrics[on]: files=%.0f probes=%.0f bytes=%.0f (%s)\n",
                    result.series.files, result.series.probes,
                    result.series.bytes, spec.metrics_path.c_str());
        // Phase-profiler summary (wall clock, nondeterministic — footer
        // only). Shard phase totals exist only for sharded tasks; the
        // imbalance ratio is the work-stealing baseline number.
        const exp::SweepResult::ProfileTotals& prof = result.profile;
        if (prof.shards > 0.0) {
          std::printf("phases[%.0f shards]: merge_ms=%.1f run_ms=%.1f "
                      "wait_ms=%.1f imbalance=%.3f\n",
                      prof.shards, prof.merge_ms, prof.run_ms, prof.wait_ms,
                      prof.max_imbalance);
        }
      } else {
        std::printf("metrics=off\n");
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  exp::register_builtin_scenarios();
  if (argc < 2) usage(2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args, /*allow_overrides=*/false);
    if (command == "sweep") return cmd_run(args, /*allow_overrides=*/true);
    if (command == "--help" || command == "-h" || command == "help") {
      usage(0);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ftgcs_bench: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "ftgcs_bench: unknown command '%s'\n",
               command.c_str());
  usage(2);
}
