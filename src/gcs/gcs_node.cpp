#include "gcs/gcs_node.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace ftgcs::gcs {

GcsParams GcsParams::derive(double rho, double d, double U, double mu,
                            double broadcast_period) {
  GcsParams p;
  p.rho = rho;
  p.d = d;
  p.U = U;
  p.mu = mu;
  p.broadcast_period = broadcast_period;
  p.slack = 2.0 * p.estimate_error();
  p.kappa = 3.0 * p.slack;
  return p;
}

GcsParams GcsParams::derive_oblivious(double rho, double d, double U,
                                      double mu, double broadcast_period,
                                      int diameter) {
  GcsParams p = derive(rho, d, U, mu, broadcast_period);
  p.rule = Rule::kOblivious;
  p.blocking = std::sqrt(static_cast<double>(diameter)) * p.kappa;
  return p;
}

double GcsParams::estimate_error() const {
  const double theta_hat = (1.0 + rho) * (1.0 + mu);
  return U / 2.0 + (theta_hat - 1.0) * (d + broadcast_period);
}

GcsNode::GcsNode(sim::Simulator& simulator, net::Network& network,
                 const GcsParams& params, int node_id,
                 const std::vector<int>& neighbors)
    : sim_(simulator),
      net_(network),
      params_(params),
      id_(node_id),
      neighbors_(neighbors),
      hardware_(simulator.now(), 0.0, 1.0),
      // ϕ = 0: the plain GCS has no amortization layer, only γ.
      clock_(0.0, params.mu, 1.0, simulator.now(), 0.0),
      timers_(simulator, clock_, this),
      last_share_(neighbors.size()) {
  FTGCS_EXPECTS(params.broadcast_period > 0.0);
  FTGCS_EXPECTS(params.kappa > 0.0);
  estimates_buf_.reserve(neighbors.size());
}

void GcsNode::start() {
  broadcast_share(sim_.now());
  evaluate_triggers(sim_.now());
  next_tick_ = params_.broadcast_period;
  arm_next(next_tick_);
}

void GcsNode::arm_next(double logical_target) {
  timers_.arm(1, logical_target);
}

void GcsNode::on_logical_timer(clocks::LogicalTimerSet::Key /*key*/) {
  const sim::Time now = sim_.now();
  broadcast_share(now);
  evaluate_triggers(now);
  next_tick_ += params_.broadcast_period;
  arm_next(next_tick_);
}

void GcsNode::broadcast_share(sim::Time now) {
  net::Pulse pulse;
  pulse.sender = id_;
  pulse.kind = net::PulseKind::kShare;
  pulse.value = clock_.read(now);
  net_.broadcast(id_, pulse);
}

void GcsNode::on_pulse(const net::Pulse& pulse, sim::Time now) {
  if (pulse.kind != net::PulseKind::kShare) return;
  if (pulse.sender == id_) return;  // loopback carries no information
  const auto it = std::find(neighbors_.begin(), neighbors_.end(),
                            pulse.sender);
  if (it == neighbors_.end()) return;
  auto& slot = last_share_[static_cast<std::size_t>(it - neighbors_.begin())];
  slot.value = pulse.value;
  slot.hardware_at = hardware_.read(now);
  slot.seen = true;
  evaluate_triggers(now);
}

std::optional<double> GcsNode::estimate(int w, sim::Time now) const {
  const auto it = std::find(neighbors_.begin(), neighbors_.end(), w);
  FTGCS_EXPECTS(it != neighbors_.end());
  const auto& slot =
      last_share_[static_cast<std::size_t>(it - neighbors_.begin())];
  if (!slot.seen) return std::nullopt;
  // Advance the received timestamp by local elapsed hardware time plus the
  // expected transit delay.
  return slot.value + (params_.d - params_.U / 2.0) +
         (hardware_.read(now) - slot.hardware_at);
}

void GcsNode::evaluate_triggers(sim::Time now) {
  std::vector<double>& estimates = estimates_buf_;
  estimates.clear();
  for (int w : neighbors_) {
    const auto est = estimate(w, now);
    if (est) estimates.push_back(*est);
  }
  if (estimates.empty()) return;

  const double self = clock_.read(now);
  if (params_.rule == GcsParams::Rule::kOblivious) {
    // [15]: catch up with the maximum neighbor unless some neighbor lags
    // more than the blocking threshold B.
    const double max_est = *std::max_element(estimates.begin(),
                                             estimates.end());
    const double min_est = *std::min_element(estimates.begin(),
                                             estimates.end());
    const bool someone_ahead = max_est - self > params_.slack;
    const bool blocked = self - min_est > params_.blocking;
    clock_.set_gamma(now, someone_ahead && !blocked ? 1 : 0);
    return;
  }

  const core::TriggerView view{self, estimates};
  if (core::fast_trigger(view, params_.kappa, params_.slack)) {
    clock_.set_gamma(now, 1);
  } else if (core::slow_trigger(view, params_.kappa, params_.slack)) {
    clock_.set_gamma(now, 0);
  }
  // Neither trigger: keep the current mode (the plain GCS switches only at
  // trigger boundaries; no global-skew module in the baseline).
}

void GcsNode::set_hardware_rate(sim::Time now, double rate) {
  hardware_.set_rate(now, rate);
  clock_.set_hardware_rate(now, rate);
}

}  // namespace ftgcs::gcs
