#include "core/ftgcs_node.h"

#include <limits>

#include "core/node_table.h"
#include "support/assert.h"
#include "support/numeric.h"

namespace ftgcs::core {

namespace {

ClusterSyncConfig engine_config(const Params& p, bool active,
                                int start_round) {
  ClusterSyncConfig cfg;
  cfg.tau1 = p.tau1;
  cfg.tau2 = p.tau2;
  cfg.tau3 = p.tau3;
  cfg.phi = p.phi;
  cfg.mu = p.mu;
  cfg.f = p.f;
  cfg.k = p.k;
  cfg.active = active;
  cfg.d = p.d;
  cfg.U = p.U;
  cfg.start_round = start_round;
  return cfg;
}

}  // namespace

FtGcsNode::FtGcsNode(sim::Simulator& simulator, net::Network& network,
                     const net::AugmentedTopology& topo, const Params& params,
                     int node_id, sim::Rng rng, Options options)
    : sim_(simulator),
      net_(network),
      topo_(topo),
      params_(params),
      id_(node_id),
      cluster_(topo.cluster_of(node_id)),
      options_(options),
      hardware_(simulator.now(), 0.0, 1.0),
      engine_(simulator,
              engine_config(params, /*active=*/true, options.start_round),
              1.0, rng.fork(1)),
      estimates_(simulator, engine_config(params, /*active=*/false, 1),
                 topo.cluster_neighbors(cluster_), 1.0, rng,
                 options.replica_start_rounds),
      controller_(params.kappa, params.delta_trig, params.c_global,
                  options.enable_global_module) {
  self_ = simulator.register_sink(this);
  engine_.set_own_index(topo.index_in_cluster(node_id));

  edge_active_.assign(estimates_.clusters().size(), true);
  for (int inactive : options_.initially_inactive) {
    set_edge_active(inactive, false);
  }

  if (!options_.edge_weights.empty()) {
    FTGCS_EXPECTS(options_.edge_weights.size() ==
                  estimates_.clusters().size());
    for (double weight : options_.edge_weights) {
      edge_kappas_.push_back(weight * params_.kappa);
      edge_slacks_.push_back(weight * params_.delta_trig);
    }
  }

  engine_.on_round_start = [this](int round) { handle_round_start(round); };

  engine_.on_pulse = [this](int /*round*/, sim::Time /*now*/) {
    if (crashed_) return;
    net::Pulse pulse;
    pulse.sender = id_;
    pulse.kind = net::PulseKind::kClusterPulse;
    net_.broadcast(id_, pulse);
  };

  if (options_.enable_global_module) {
    MaxEstimator::Config cfg;
    cfg.d = params_.d;
    cfg.U = params_.U;
    cfg.rho = params_.rho;
    cfg.f = params_.f;
    max_estimator_.emplace(simulator, cfg, 1.0);
    max_estimator_->on_emit = [this](int level) {
      if (crashed_) return;
      net::Pulse pulse;
      pulse.sender = id_;
      pulse.kind = net::PulseKind::kMaxLevel;
      pulse.level = level;
      net_.broadcast(id_, pulse);
    };
  }
}

void FtGcsNode::start() {
  engine_.start();
  estimates_.start();
  if (max_estimator_) max_estimator_->start();
}

void FtGcsNode::attach_table(NodeTable* table) {
  table_ = table;
  if (max_estimator_) {
    max_estimator_->bind_level_floor(table->level_floor_slot(id_));
    max_estimator_->bind_quorum(table->quorum_span(id_),
                                table->quorum_count(id_));
  }
}

double FtGcsNode::max_estimate(sim::Time now) const {
  return max_estimator_ ? max_estimator_->read(now)
                        : -std::numeric_limits<double>::infinity();
}

void FtGcsNode::handle_round_start(int round) {
  const sim::Time now = sim_.now();
  // Algorithm 2: evaluate the triggers on the node's own logical clock
  // (its stand-in for the cluster clock) and its estimates of adjacent
  // cluster clocks; pick γ_v for the entire round.
  const double self = engine_.clock().read(now);
  if (max_estimator_) max_estimator_->observe_own_clock(self, now);
  // Only estimates of currently-active edges are considered by the
  // triggers (all edges active unless the dynamic-topology API is used).
  std::vector<double>& ests = round_ests_;
  std::vector<double>& kappas = round_kappas_;
  std::vector<double>& slacks = round_slacks_;
  ests.clear();
  kappas.clear();
  slacks.clear();
  const bool weighted = !edge_kappas_.empty();
  const auto& adjacent = estimates_.clusters();
  ests.reserve(adjacent.size());
  // Estimates are read by replica position (one clock read per active
  // edge), not by cluster id — no per-estimate routing scan.
  for (std::size_t i = 0; i < adjacent.size(); ++i) {
    if (!edge_active_[i]) continue;
    ests.push_back(estimates_.estimate_at(i, now));
    if (weighted) {
      kappas.push_back(edge_kappas_[i]);
      slacks.push_back(edge_slacks_[i]);
    }
  }
  const ModeDecision decision =
      weighted ? controller_.decide_weighted(self, ests, kappas, slacks,
                                             max_estimate(now))
               : controller_.decide(self, ests, max_estimate(now));
  engine_.clock().set_gamma(now, decision.gamma);
  if (table_ != nullptr) table_->set_gamma(id_, decision.gamma);
  last_reason_ = decision.reason;
  ++mode_counts_[static_cast<std::size_t>(decision.reason)];

  if (on_round_observed) {
    const double logical_start = engine_.round_start_logical();
    const sim::Time predicted_pulse =
        engine_.clock().when_reaches(logical_start + params_.tau1, now);
    on_round_observed(round, now, predicted_pulse, logical_start);
  }
}

void FtGcsNode::on_pulse(const net::Pulse& pulse, sim::Time now) {
  switch (pulse.kind) {
    case net::PulseKind::kClusterPulse: {
      const int sender_cluster = topo_.cluster_of(pulse.sender);
      const int index = topo_.index_in_cluster(pulse.sender);
      if (sender_cluster == cluster_) {
        engine_.on_member_pulse(index, now);
      } else {
        // route_pulse drops pulses from non-adjacent clusters (the
        // physical network only connects adjacent ones).
        estimates_.route_pulse(sender_cluster, index, now);
      }
      break;
    }
    case net::PulseKind::kMaxLevel: {
      // Cheap rejects (self-loopback, below the flooding floor) before
      // the topology lookups: most level pulses in a synchronized system
      // are stale, and this is the highest-traffic path there is.
      if (max_estimator_ && pulse.sender != id_ &&
          !max_estimator_->is_stale_level(pulse.level)) {
        max_estimator_->on_level_pulse(topo_.cluster_of(pulse.sender),
                                       topo_.index_in_cluster(pulse.sender),
                                       /*from_self=*/false, pulse.level, now);
      }
      break;
    }
    case net::PulseKind::kShare:
    case net::PulseKind::kPropose:
      break;  // baseline traffic; not part of this protocol
  }
}

void FtGcsNode::set_hardware_rate(sim::Time now, double rate) {
  // The envelope check is on a dimensionless rate; its slack is the rate
  // epsilon, not the (much looser) time epsilon this used to borrow.
  FTGCS_EXPECTS(rate >= 1.0 && rate <= 1.0 + params_.rho + support::kRateEps);
  hardware_.set_rate(now, rate);
  engine_.set_hardware_rate(now, rate);
  estimates_.set_hardware_rate(now, rate);
  if (max_estimator_) max_estimator_->set_hardware_rate(now, rate);
}

namespace {
// FtGcsNode kTimer payload.a discriminates the scheduled action.
constexpr std::int32_t kCrashAction = 0;
constexpr std::int32_t kInjectAction = 1;
}  // namespace

void FtGcsNode::crash_at(sim::Time t) {
  sim::EventPayload payload;
  payload.a = kCrashAction;
  sim_.post_at(t, sim::EventKind::kTimer, self_, payload);
}

void FtGcsNode::inject_transient_fault_at(sim::Time t, double offset) {
  sim::EventPayload payload;
  payload.a = kInjectAction;
  payload.x = offset;
  sim_.post_at(t, sim::EventKind::kTimer, self_, payload);
}

void FtGcsNode::on_event(sim::EventKind kind,
                         const sim::EventPayload& payload, sim::Time now) {
  FTGCS_ASSERT(kind == sim::EventKind::kTimer);
  switch (payload.a) {
    case kCrashAction:
      // Crash-stop: swap the receive path to the null sink, cancel every
      // pending engine/replica/estimator timer, and mark the columnar
      // state. From here on the node schedules nothing, processes
      // nothing, and sends nothing — its event and timer counts freeze.
      crashed_ = true;
      net_.register_null_handler(id_);
      engine_.halt();
      estimates_.halt();
      if (max_estimator_) max_estimator_->halt();
      if (table_ != nullptr) table_->mark_crashed(id_);
      break;
    case kInjectAction:
      engine_.inject_transient_fault(now, payload.x);
      break;
    default:
      FTGCS_ASSERT(false && "unknown node action");
  }
}

void FtGcsNode::set_edge_active(int cluster, bool active) {
  const auto& adjacent = estimates_.clusters();
  for (std::size_t i = 0; i < adjacent.size(); ++i) {
    if (adjacent[i] == cluster) {
      edge_active_[i] = active;
      return;
    }
  }
  FTGCS_EXPECTS(false && "set_edge_active: cluster not adjacent");
}

bool FtGcsNode::edge_active(int cluster) const {
  const auto& adjacent = estimates_.clusters();
  for (std::size_t i = 0; i < adjacent.size(); ++i) {
    if (adjacent[i] == cluster) return edge_active_[i];
  }
  FTGCS_EXPECTS(false && "edge_active: cluster not adjacent");
  return false;
}

}  // namespace ftgcs::core
