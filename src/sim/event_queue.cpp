#include "sim/event_queue.h"

#include <utility>

#include "support/assert.h"

namespace ftgcs::sim {

EventId EventQueue::schedule(Time t, Callback fn) {
  FTGCS_EXPECTS(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq});
  live_.emplace(seq, std::move(fn));
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  return live_.erase(id.value) > 0;  // heap entry skipped lazily on pop
}

void EventQueue::drop_dead_heads() const {
  while (!heap_.empty() && live_.find(heap_.top().seq) == live_.end()) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_dead_heads();
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead_heads();
  FTGCS_EXPECTS(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = live_.find(top.seq);
  FTGCS_ASSERT(it != live_.end());
  Fired fired{top.at, EventId{top.seq}, std::move(it->second)};
  live_.erase(it);
  return fired;
}

}  // namespace ftgcs::sim
