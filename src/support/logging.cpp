#include "support/logging.h"

#include <cstdio>

namespace ftgcs::log {

namespace {
Level g_level = Level::kOff;

const char* name_of(Level lvl) {
  switch (lvl) {
    case Level::kOff:
      return "off";
    case Level::kError:
      return "error";
    case Level::kWarn:
      return "warn";
    case Level::kInfo:
      return "info";
    case Level::kDebug:
      return "debug";
    case Level::kTrace:
      return "trace";
  }
  return "?";
}
}  // namespace

Level level() noexcept { return g_level; }
void set_level(Level lvl) noexcept { g_level = lvl; }

void emit(Level lvl, const std::string& msg) {
  std::fprintf(stderr, "[ftgcs %-5s] %s\n", name_of(lvl), msg.c_str());
}

}  // namespace ftgcs::log
