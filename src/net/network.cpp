#include "net/network.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace ftgcs::net {

Network::Network(sim::Simulator& simulator,
                 std::vector<std::vector<int>> adjacency,
                 std::unique_ptr<DelayModel> delays, sim::Rng rng)
    : sim_(simulator),
      adjacency_(std::move(adjacency)),
      delays_(std::move(delays)),
      handlers_(adjacency_.size()) {
  FTGCS_EXPECTS(delays_ != nullptr);
  edge_streams_.reserve(adjacency_.size());
  loopback_streams_.reserve(adjacency_.size());
  std::uint64_t salt = 0;
  for (const auto& neighbors : adjacency_) {
    std::vector<sim::Rng> streams;
    streams.reserve(neighbors.size());
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      streams.push_back(rng.fork(++salt));
    }
    edge_streams_.push_back(std::move(streams));
    loopback_streams_.push_back(rng.fork(++salt));
  }
}

void Network::register_handler(int node, Handler handler) {
  FTGCS_EXPECTS(node >= 0 && node < num_nodes());
  FTGCS_EXPECTS(handler != nullptr);
  handlers_[node] = std::move(handler);
}

const std::vector<int>& Network::neighbors(int node) const {
  FTGCS_EXPECTS(node >= 0 && node < num_nodes());
  return adjacency_[node];
}

bool Network::are_neighbors(int a, int b) const {
  const auto& nb = neighbors(a);
  return std::find(nb.begin(), nb.end(), b) != nb.end();
}

sim::Rng& Network::edge_rng(int from, int to) {
  if (from == to) return loopback_streams_[from];
  const auto& nb = adjacency_[from];
  const auto it = std::find(nb.begin(), nb.end(), to);
  FTGCS_EXPECTS(it != nb.end());
  return edge_streams_[from][static_cast<std::size_t>(it - nb.begin())];
}

void Network::deliver(int from, int to, const Pulse& pulse,
                      sim::Duration delay) {
  (void)from;
  FTGCS_EXPECTS(delay >= delays_->min_delay() - sim::kTimeEps &&
                delay <= delays_->max_delay() + sim::kTimeEps);
  ++messages_sent_;
  sim_.after(delay, [this, to, pulse] {
    ++messages_delivered_;
    FTGCS_ASSERT(handlers_[to] != nullptr);
    handlers_[to](pulse, sim_.now());
  });
}

void Network::broadcast(int from, const Pulse& pulse) {
  FTGCS_EXPECTS(from >= 0 && from < num_nodes());
  FTGCS_EXPECTS(pulse.sender == from);
  deliver(from, from, pulse, delays_->sample(from, from, edge_rng(from, from)));
  for (int to : adjacency_[from]) {
    deliver(from, to, pulse, delays_->sample(from, to, edge_rng(from, to)));
  }
}

void Network::unicast(int from, int to, const Pulse& pulse) {
  FTGCS_EXPECTS(from == to || are_neighbors(from, to));
  deliver(from, to, pulse, delays_->sample(from, to, edge_rng(from, to)));
}

void Network::unicast_with_delay(int from, int to, const Pulse& pulse,
                                 sim::Duration delay) {
  FTGCS_EXPECTS(from == to || are_neighbors(from, to));
  deliver(from, to, pulse, delay);
}

}  // namespace ftgcs::net
