// Parameter derivation for the FT-GCS construction.
//
// Inputs are the model constants of the paper: hardware drift bound ρ,
// maximum message delay d, delay uncertainty U, and per-cluster fault
// budget f. From these we derive every constant used by Algorithms 1 and 2
// exactly as in the paper:
//
//   ϑ_g   = (1+ρ)(1+µ)                                 (eq. 6 context)
//   α, β of eq. (11) — kept as reference values
//   E     = fixed point of the Claim B.15 general recurrence (eq. 12 with
//           ζ = 1, ϑ = ϑ_g): the steady-state pulse diameter
//   τ1    = ζ_max·ϑ_g·E                                 (eq. 4)
//   τ2    = ζ_max·ϑ_g·(E+d)
//   τ3    = c1·ζ_max·ϑ_g·(E+U),  c1 = 1/ϕ,  ζ_max = (1+ϕ)(1+µ)
//   δ     = (k+5)·E,  κ = 3δ                             (Lemma 4.8)
//
// REPRODUCTION NOTE — eq. (10)/(5) vs eq. (4). The paper states two window
// families: eq. (4) scales every phase by ζ_max = (1+ϕ)(1+µ); the final
// parameter choice (5)/(10) omits that factor. During phases 1–2 a logical
// clock runs at rate (1+ϕ)(1+µγ)h ≥ 1+ϕ, so an eq. (10) window of logical
// length ϑ_g(E+d) lasts only ≈ (E+d)·ϑ_g/(1+ϕ) of real time — for
// non-vanishing ϕ this is SHORTER than the worst-case pulse spread plus
// delay, and round-r pulses arrive after the collection window closes
// (we verified this empirically: with eq. (10) windows and ϕ ≈ 0.28 every
// pulse missed its round). The omission is sound only in the asymptotic
// regime ϕ, µ = O(ρ) of Theorem 1.1. This implementation uses eq. (4)
// verbatim, with E the fixed point of the matching recurrence (12).
//
// The unanimous-cluster recurrences of Claim B.15 (eq. 12) also give the
// unanimity horizon k of Lemma 3.6 and the predicted steady-state pulse
// diameters e_g^∞, e_f^∞, e_s^∞.
//
// Two presets:
//  * paper_strict — eq. (5) verbatim: c2 = 32, ε = 1/4096,
//    c1 = ((1/2)−ε)/(1+c2)·(1/ρ), ϕ = 1/c1, µ = c2·ρ. Feasible only for
//    small ρ; constants are large, exactly as in the paper.
//  * practical — same structure with µ = c2·ρ but ϕ chosen to hit a target
//    contraction α ≈ 0.75, which keeps E = O(ρd+U) with single-digit
//    constants so that the GCS dynamics are observable in short runs.
#pragma once

#include <string>

namespace ftgcs::core {

/// One affine round recurrence e(r+1) = α·e(r) + β with fixed point E.
struct RoundRecurrence {
  double alpha = 0.0;
  double beta = 0.0;

  bool contracting() const { return alpha < 1.0; }
  double fixed_point() const { return beta / (1.0 - alpha); }
  double iterate(double e) const { return alpha * e + beta; }
};

struct Params {
  // ---- model inputs -----------------------------------------------------
  double rho = 0.0;  ///< hardware drift bound: h ∈ [1, 1+ρ]
  double d = 0.0;    ///< max message delay
  double U = 0.0;    ///< delay uncertainty
  int f = 0;         ///< per-cluster Byzantine budget
  int k = 1;         ///< cluster size, k ≥ 3f+1

  // ---- chosen constants ---------------------------------------------------
  double mu = 0.0;   ///< logical-clock speedup in fast mode (µ = c2·ρ)
  double phi = 0.0;  ///< amortization envelope (δ_v scaled by ϕ)
  double c1 = 0.0;   ///< phase-3 stretch, ϕ = 1/c1
  double c2 = 0.0;   ///< µ/ρ
  double eps = 0.0;  ///< ε of eq. (5) (paper_strict only; 0 otherwise)

  // ---- derived: cluster algorithm ----------------------------------------
  double theta_g = 0.0;    ///< (1+ρ)(1+µ) — general nominal rate bound
  double theta_max = 0.0;  ///< (1 + 2ϕ/(1−ϕ))(1+µ)(1+ρ) — eq. (6)
  double alpha = 0.0;      ///< eq. (11)
  double beta = 0.0;       ///< eq. (11)
  double E = 0.0;          ///< fixed point β/(1−α)
  double tau1 = 0.0, tau2 = 0.0, tau3 = 0.0;  ///< eq. (10)
  double T = 0.0;          ///< τ1+τ2+τ3

  // ---- derived: unanimous-cluster analysis (Claim B.15) ------------------
  RoundRecurrence rec_general;  ///< (12) with ζ=1, ϑ=ϑ_g
  RoundRecurrence rec_fast;     ///< (12) with ζ=(1+ϕ)(1+µ), ϑ=1+ρ
  RoundRecurrence rec_slow;     ///< (12) with ζ=1+ϕ, ϑ=1+ρ
  int k_unanimity = 0;          ///< rounds of unanimity for Lemma 3.6
  bool unanimity_analysis_valid = false;

  // ---- derived: intercluster algorithm ------------------------------------
  double delta_trig = 0.0;  ///< trigger slack δ = (k+5)E (Lemma 4.8)
  double kappa = 0.0;       ///< κ = 3δ
  double c_global = 6.0;    ///< c of Theorem C.3 (catch-up margin c·δ)

  // ---- presets ------------------------------------------------------------
  static Params paper_strict(double rho, double d, double U, int f);
  static Params practical(double rho, double d, double U, int f);
  /// Explicit µ and ϕ (ablations / sensitivity sweeps); everything else
  /// derived as in the presets.
  static Params custom(double rho, double d, double U, int f, double mu,
                       double phi);

  /// Oversized clusters: Theorem 1.1 allows any k ≥ 3f+1 (more spare
  /// correct members, same trim budget f). Returns a copy with the given
  /// cluster size. Requires cluster_size >= 3f+1.
  Params with_cluster_size(int cluster_size) const;

  // ---- feasibility ---------------------------------------------------------
  /// All conditions required by the analysis: α < 1 (fixed point exists),
  /// 0 < ϕ < 1, δ < 2κ (Lemma 4.5 trigger exclusivity), µ̄ > ρ̄ (GCS axiom
  /// A4 via Proposition 4.11), k ≥ 3f+1.
  bool feasible() const;
  std::string feasibility_report() const;

  // ---- quantities the theorems predict -------------------------------------
  /// Corollary 3.2: |L_v − L_w| < 2ϑ_g·E within a cluster.
  double intra_cluster_skew_bound() const { return 2.0 * theta_g * E; }

  /// Proposition 4.11: effective GCS drift ρ̄ = (1+ϕ)(1+µ/4) − 1.
  double rho_bar() const { return (1.0 + phi) * (1.0 + 0.25 * mu) - 1.0; }
  /// Proposition 4.11: effective GCS boost µ̄ = (1+ϕ)(1+7µ/8) − 1.
  double mu_bar() const { return (1.0 + phi) * (1.0 + 0.875 * mu) - 1.0; }
  /// GCS base b = µ̄/ρ̄ (> 1 required by axiom A4).
  double gcs_base() const { return mu_bar() / rho_bar(); }

  /// Theorem 4.10: local cluster skew ≤ κ·⌈log_b(S/κ)⌉ given global skew S
  /// (we add one level for the s = 1 slack, as in the GCS analysis).
  double predicted_local_skew(double global_skew) const;

  /// Theorem C.3 shape: global skew = O(δ·D); returned with constant
  /// c_global so experiments can compare shapes.
  double predicted_global_skew(int diameter) const {
    return c_global * delta_trig * diameter;
  }

  /// Amortized-rate bounds of Lemma 3.6 for unanimously fast/slow clusters.
  double fast_cluster_rate_lower_bound() const {
    return (1.0 + phi) * (1.0 + 0.875 * mu);
  }
  double slow_cluster_rate_lower_bound() const {
    return (1.0 + phi) * (1.0 - 0.125 * mu);
  }
  double slow_cluster_rate_upper_bound() const {
    return (1.0 + phi) * (1.0 + 0.125 * mu);
  }

  /// Per-node logical rate envelope (Lemma B.4): [1, ϑ_max].
  double max_logical_rate() const { return theta_max; }

  std::string summary() const;

 private:
  /// Fills every derived field from (rho, d, U, f, k, mu, phi).
  void derive();
};

/// Inequality (1): probability that a cluster of 3f+1 nodes with i.i.d.
/// failure probability p has more than f faulty members, and the paper's
/// closed-form bound (3ep)^(f+1).
double cluster_failure_probability(int f, double p);
double cluster_failure_bound(int f, double p);

}  // namespace ftgcs::core
