#include "core/global_skew.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/assert.h"

namespace ftgcs::core {

MaxEstimator::MaxEstimator(sim::Simulator& simulator, const Config& cfg,
                           double initial_hardware_rate)
    : sim_(simulator),
      cfg_(cfg),
      self_(simulator.register_sink(this)),
      spacing_(cfg.d - cfg.U),
      rate_(initial_hardware_rate / (1.0 + cfg.rho)) {
  FTGCS_EXPECTS(cfg.d > 0.0);
  FTGCS_EXPECTS(cfg.U >= 0.0 && cfg.U < cfg.d);  // spacing must be positive
  FTGCS_EXPECTS(cfg.rho >= 0.0);
  FTGCS_EXPECTS(cfg.f >= 0);
}

void MaxEstimator::start() {
  FTGCS_EXPECTS(on_emit != nullptr);
  FTGCS_EXPECTS(!started_);
  started_ = true;
  schedule_next_emission(sim_.now());
}

double MaxEstimator::read(sim::Time now) const {
  FTGCS_EXPECTS(now >= t0_);
  return m0_ + rate_ * (now - t0_);
}

void MaxEstimator::advance(sim::Time now) {
  m0_ = read(now);
  t0_ = now;
}

void MaxEstimator::set_hardware_rate(sim::Time now, double rate) {
  FTGCS_EXPECTS(rate > 0.0);
  advance(now);
  rate_ = rate / (1.0 + cfg_.rho);
  if (started_) schedule_next_emission(now);
}

void MaxEstimator::halt() {
  halted_ = true;
  sim_.cancel(pending_emit_);
  pending_emit_ = sim::EventId{};
}

void MaxEstimator::schedule_next_emission(sim::Time now) {
  if (halted_) return;
  const double target = next_level_ * spacing_;
  const double current = read(now);
  const sim::Time fire =
      target <= current ? now : now + (target - current) / rate_;
  if (pending_emit_ && sim_.reschedule(pending_emit_, fire)) return;
  pending_emit_ = sim_.post_at(fire, sim::EventKind::kTimer, self_, {});
}

void MaxEstimator::on_event(sim::EventKind kind, const sim::EventPayload&,
                            sim::Time now) {
  FTGCS_ASSERT(kind == sim::EventKind::kTimer);
  pending_emit_ = sim::EventId{};
  emit_through(read(now));
  schedule_next_emission(now);
}

void MaxEstimator::emit_through(double value) {
  while (next_level_ * spacing_ <= value) {
    on_emit(next_level_);
    ++next_level_;
  }
  publish_floor();
}

void MaxEstimator::observe_own_clock(double logical, sim::Time now) {
  advance(now);
  if (logical <= m0_) return;
  m0_ = logical;
  if (started_) {
    emit_through(m0_);
    schedule_next_emission(now);
  }
}

MaxEstimator::HeardWindow& MaxEstimator::heard_window(int cluster) {
  for (auto& window : heard_) {
    if (window.cluster == cluster) return window;
  }
  heard_.push_back(HeardWindow{});
  heard_.back().cluster = cluster;
  return heard_.back();
}

namespace {

int set_and_count(std::vector<std::uint64_t>& words, std::size_t offset,
                  std::size_t n_words, int member_index) {
  words[offset + static_cast<std::size_t>(member_index) / 64] |=
      std::uint64_t{1} << (member_index % 64);
  int heard = 0;
  for (std::size_t w = 0; w < n_words; ++w) {
    heard += std::popcount(words[offset + w]);
  }
  return heard;
}

}  // namespace

int MaxEstimator::heard_insert(HeardWindow& window, int level,
                               int member_index) {
  // Slide the base up to the staleness floor: levels below next_level_ − 1
  // are filtered on arrival, so their masks can never be read again.
  const int floor = next_level_ > 1 ? next_level_ - 1 : 1;
  if (window.base < floor) {
    const auto drop =
        std::min(window.bits.size(),
                 static_cast<std::size_t>(floor - window.base) * window.words);
    window.bits.erase(window.bits.begin(),
                      window.bits.begin() + static_cast<long>(drop));
    window.base = floor;
  }
  // Regrow the per-level stride if this cluster has members beyond the
  // current word capacity (k > 64·words; rare, done once per growth).
  const auto need_words =
      static_cast<std::size_t>(member_index) / 64 + 1;
  if (need_words > window.words) {
    const std::size_t levels =
        (window.bits.size() + window.words - 1) / window.words;
    std::vector<std::uint64_t> wider(levels * need_words, 0);
    for (std::size_t l = 0; l < levels; ++l) {
      for (std::size_t w = 0; w < window.words; ++w) {
        wider[l * need_words + w] = window.bits[l * window.words + w];
      }
    }
    window.bits = std::move(wider);
    window.words = need_words;
    for (auto& [lvl, mask] : window.overflow) mask.resize(need_words, 0);
  }
  FTGCS_ASSERT(level >= window.base);

  // Migrate overflow levels that the advanced base pulled into range, and
  // drop the stale ones, before deciding where `level` lives.
  for (std::size_t i = 0; i < window.overflow.size();) {
    const int lvl = window.overflow[i].first;
    if (lvl >= window.base + kWindowLevels) {
      ++i;
      continue;
    }
    if (lvl >= window.base) {
      const auto offset =
          static_cast<std::size_t>(lvl - window.base) * window.words;
      if (offset + window.words > window.bits.size()) {
        window.bits.resize(offset + window.words, 0);
      }
      for (std::size_t w = 0; w < window.words; ++w) {
        window.bits[offset + w] |= window.overflow[i].second[w];
      }
    }
    window.overflow[i] = std::move(window.overflow.back());
    window.overflow.pop_back();
  }

  if (level - window.base >= kWindowLevels) {
    // Far-future level (forged, or an extreme ramp): sparse path, O(1)
    // memory per distinct level — the old map's cost model.
    for (auto& [lvl, mask] : window.overflow) {
      if (lvl == level) {
        return set_and_count(mask, 0, window.words, member_index);
      }
    }
    window.overflow.emplace_back(
        level, std::vector<std::uint64_t>(window.words, 0));
    return set_and_count(window.overflow.back().second, 0, window.words,
                         member_index);
  }

  const auto offset =
      static_cast<std::size_t>(level - window.base) * window.words;
  if (offset + window.words > window.bits.size()) {
    window.bits.resize(offset + window.words, 0);
  }
  return set_and_count(window.bits, offset, window.words, member_index);
}

void MaxEstimator::on_level_pulse(int cluster, int member_index,
                                  bool from_self, int level, sim::Time now) {
  // Stale, no news, or unreachable for a correct sender (levels start at
  // 1; level < 1 can only be forged and can never complete an honest
  // quorum, so it is dropped rather than tracked).
  if (from_self || level < 1 || level < next_level_ - 1) return;
  FTGCS_EXPECTS(member_index >= 0);
  const int heard = heard_insert(heard_window(cluster), level, member_index);
  if (heard < cfg_.f + 1) return;

  // f+1 distinct members of one cluster reached level ℓ: at least one is
  // correct, and its pulse was in transit for ≥ d−U, so
  // L^max ≥ (ℓ+1)(d−U) already holds — safe to jump.
  const double candidate = (level + 1) * spacing_;
  advance(now);
  if (candidate <= m0_) return;
  m0_ = candidate;
  ++jumps_;
  if (started_) {
    emit_through(m0_);
    schedule_next_emission(now);
  }
  // No explicit prune needed: the jump advanced next_level_, so the
  // staleness floor rose and heard_mask compacts each window lazily.
}

}  // namespace ftgcs::core
