#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ftgcs::sim {
namespace {

TEST(Simulator, TimeAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Time> seen;
  sim.at(1.5, [&] { seen.push_back(sim.now()); });
  sim.at(0.5, [&] { seen.push_back(sim.now()); });
  sim.run_until(10.0);
  EXPECT_EQ(seen, (std::vector<Time>{0.5, 1.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(3.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);  // event at exactly t_end fires
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(5.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.after(1.0, chain);
  };
  sim.after(1.0, chain);
  sim.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, AfterZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  sim.at(4.0, [&] {
    sim.after(0.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 4.0); });
  });
  sim.run_until(5.0);
}

TEST(Simulator, CancelStopsPendingEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until(2.0);
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountersTrackActivity) {
  Simulator sim;
  sim.at(1.0, [] {});
  sim.at(2.0, [] {});
  const EventId id = sim.at(3.0, [] {});
  sim.cancel(id);
  sim.run_until(10.0);
  EXPECT_EQ(sim.scheduled_events(), 3u);
  EXPECT_EQ(sim.fired_events(), 2u);
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace ftgcs::sim
