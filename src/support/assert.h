// Lightweight contract macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6/I.8). Violations are programming errors and abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ftgcs::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "ftgcs: %s violated: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace ftgcs::detail

#define FTGCS_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                             \
          : ::ftgcs::detail::contract_failure("precondition", #cond,        \
                                              __FILE__, __LINE__))

#define FTGCS_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                             \
          : ::ftgcs::detail::contract_failure("postcondition", #cond,       \
                                              __FILE__, __LINE__))

#define FTGCS_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                             \
          : ::ftgcs::detail::contract_failure("invariant", #cond, __FILE__, \
                                              __LINE__))
