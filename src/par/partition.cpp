#include "par/partition.h"

#include <algorithm>

#include "sim/time_types.h"
#include "support/assert.h"

namespace ftgcs::par {

ShardPlan make_shard_plan(const exp::TopologyGraph& graph, int shards) {
  FTGCS_EXPECTS(graph.num_clusters > 0);
  ShardPlan plan;
  plan.num_shards = std::max(1, std::min(shards, graph.num_clusters));
  if (plan.num_shards <= 1) {
    plan.num_shards = 1;
    return plan;
  }

  // Balanced contiguous stripes over cluster ids: cluster c goes to shard
  // ⌊c·T/C⌋ (every shard owns ⌈C/T⌉ or ⌊C/T⌋ consecutive clusters).
  const int clusters = graph.num_clusters;
  const int t = plan.num_shards;
  plan.cluster_owner.resize(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    plan.cluster_owner[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(
        (static_cast<long long>(c) * t) / clusters);
  }
  plan.node_owner.resize(graph.cluster_of.size());
  for (std::size_t id = 0; id < graph.cluster_of.size(); ++id) {
    plan.node_owner[id] =
        plan.cluster_owner[static_cast<std::size_t>(graph.cluster_of[id])];
  }

  // Cut census over directed node-level edges, tracking the conservative
  // lookahead (minimum delay over everything that crosses).
  double min_cut = graph.max_delay;
  bool any_cut = false;
  for (int from = 0; from < graph.num_nodes(); ++from) {
    const auto& neighbors = graph.adjacency[static_cast<std::size_t>(from)];
    const std::int32_t owner = plan.node_owner[static_cast<std::size_t>(from)];
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
      if (plan.node_owner[static_cast<std::size_t>(neighbors[j])] == owner) {
        continue;
      }
      plan.cut_edges += 1;
      min_cut = any_cut ? std::min(min_cut, graph.edge_min(from, j))
                        : graph.edge_min(from, j);
      any_cut = true;
    }
  }
  plan.min_cut_delay = any_cut ? min_cut : 0.0;

  // The window the backend actually uses is min_cut_delay − kTimeEps (the
  // delivery path admits that much slack below the channel minimum), so a
  // lookahead at or below the epsilon is as degenerate as zero.
  if (any_cut && plan.min_cut_delay <= sim::kTimeEps) {
    // Degenerate lookahead (u ≥ d): no conservative window exists.
    plan.num_shards = 1;
    plan.cluster_owner.clear();
    plan.node_owner.clear();
    plan.cut_edges = 0;
    plan.min_cut_delay = 0.0;
  }
  return plan;
}

}  // namespace ftgcs::par
