// M1 — microbenchmarks of the simulation substrate and the protocol hot
// paths (google-benchmark).
//
// Every queue benchmark has a heap and a ladder variant so
// BENCH_kernel.json pins both backends' curves per commit. The custom
// main() refuses to publish JSON when the google-benchmark library itself
// was built without NDEBUG ("library_build_type": "debug"): numbers from a
// debug benchmark runtime must never become the committed baseline (use
// -DFTGCS_BENCHMARK_SOURCE_DIR or -DFTGCS_BUNDLED_BENCHMARK to get a
// genuinely Release-built dependency; see CMakeLists.txt).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "byz/fault_plan.h"
#include "core/ftgcs_system.h"
#include "core/triggers.h"
#include "net/augmented.h"
#include "net/graph.h"
#include "net/network.h"
#include "par/sharded_system.h"
#include "exp/topology_graph.h"
#include "metrics/skew_tracker.h"
#include "net/channel.h"
#include "obs/histogram.h"
#include "obs/sampler.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "trace/collector.h"
#include "trace/monitor.h"
#include "trace/writer.h"

namespace {

using namespace ftgcs;

// ---- event-queue kernels, one body per workload, run on both backends ------

void QueueScheduleFire(benchmark::State& state, sim::QueueBackend backend) {
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue(backend);
    for (int i = 0; i < 1000; ++i) {
      queue.schedule(rng.next_double(), [] {});
    }
    while (!queue.empty()) {
      queue.pop().fn();
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
void BM_EventQueueScheduleFire(benchmark::State& state) {
  QueueScheduleFire(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_EventQueueScheduleFire);
void BM_EventQueueScheduleFireLadder(benchmark::State& state) {
  QueueScheduleFire(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_EventQueueScheduleFireLadder);

void QueueCancelHeavy(benchmark::State& state, sim::QueueBackend backend) {
  sim::Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue queue(backend);
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(queue.schedule(rng.next_double(), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      queue.cancel(ids[i]);
    }
    while (!queue.empty()) {
      queue.pop().fn();
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
void BM_EventQueueCancelHeavy(benchmark::State& state) {
  QueueCancelHeavy(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_EventQueueCancelHeavy);
void BM_EventQueueCancelHeavyLadder(benchmark::State& state) {
  QueueCancelHeavy(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_EventQueueCancelHeavyLadder);

// The typed path is what the protocol stack actually runs on (pulses,
// timers, drift, probes): POD payload, slot pool, no closures, no
// allocation after warm-up. Counters are events/sec.

void TypedScheduleFire(benchmark::State& state, sim::QueueBackend backend) {
  sim::Rng rng(6);
  struct Sink final : sim::EventSink {
    void on_event(sim::EventKind, const sim::EventPayload&,
                  sim::Time) override {}
  } sink;
  sim::EventQueue queue(backend);
  queue.reserve(1000);
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      queue.schedule_typed(rng.next_double(), sim::EventKind::kPulse, 0, {});
    }
    while (!queue.empty()) {
      auto fired = queue.pop();
      sink.on_event(fired.kind, fired.payload, fired.at);
    }
    events += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
void BM_EventEngineTypedScheduleFire(benchmark::State& state) {
  TypedScheduleFire(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_EventEngineTypedScheduleFire);
void BM_EventEngineTypedScheduleFireLadder(benchmark::State& state) {
  TypedScheduleFire(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_EventEngineTypedScheduleFireLadder);

// The fire-only path carries all network deliveries: payload inline in the
// queue on the ladder backend, no slot pool at all.
void FireOnlyScheduleFire(benchmark::State& state, sim::QueueBackend backend) {
  sim::Rng rng(9);
  sim::EventQueue queue(backend);
  queue.reserve(1000);
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      queue.schedule_fire_only(rng.next_double(), sim::EventKind::kPulse, 0,
                               {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop().payload.a);
    }
    events += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
void BM_EventEngineFireOnly(benchmark::State& state) {
  FireOnlyScheduleFire(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_EventEngineFireOnly);
void BM_EventEngineFireOnlyLadder(benchmark::State& state) {
  FireOnlyScheduleFire(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_EventEngineFireOnlyLadder);

void TypedCancelHeavy(benchmark::State& state, sim::QueueBackend backend) {
  sim::Rng rng(7);
  sim::EventQueue queue(backend);
  queue.reserve(1000);
  std::uint64_t events = 0;
  std::vector<sim::EventId> ids;
  ids.reserve(1000);
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(queue.schedule_typed(rng.next_double(),
                                         sim::EventKind::kTimer, 0, {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      queue.cancel(ids[i]);
    }
    while (!queue.empty()) {
      queue.pop();
    }
    events += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
void BM_EventEngineTypedCancelHeavy(benchmark::State& state) {
  TypedCancelHeavy(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_EventEngineTypedCancelHeavy);
void BM_EventEngineTypedCancelHeavyLadder(benchmark::State& state) {
  TypedCancelHeavy(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_EventEngineTypedCancelHeavyLadder);

void Reschedule(benchmark::State& state, sim::QueueBackend backend) {
  // The logical-timer re-aim pattern: a standing population of timers
  // whose fire times move on every clock-rate change.
  sim::Rng rng(8);
  sim::EventQueue queue(backend);
  queue.reserve(256);
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 256; ++i) {
    ids.push_back(queue.schedule_typed(1e9 + rng.next_double(),
                                       sim::EventKind::kTimer, 0, {}));
  }
  for (auto _ : state) {
    for (auto& id : ids) {
      queue.reschedule(id, 1e9 + rng.next_double());
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
void BM_EventEngineReschedule(benchmark::State& state) {
  Reschedule(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_EventEngineReschedule);
void BM_EventEngineRescheduleLadder(benchmark::State& state) {
  Reschedule(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_EventEngineRescheduleLadder);

// The 40k-node regime in miniature: a deep standing population (range(0)
// in-flight events) with steady schedule-ahead/pop cycles. This is where
// heap pop depth collapses and the calendar window stays O(1) — the pair
// of curves in BENCH_kernel.json pins the crossover.
void DeepPopulation(benchmark::State& state, sim::QueueBackend backend) {
  const int population = static_cast<int>(state.range(0));
  sim::Rng rng(11);
  sim::EventQueue queue(backend);
  queue.reserve(static_cast<std::size_t>(population));
  double now = 0.0;
  for (int i = 0; i < population; ++i) {
    queue.schedule_fire_only(now + rng.next_double(), sim::EventKind::kPulse,
                             0, {});
  }
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      auto fired = queue.pop();
      now = fired.at;
      queue.schedule_fire_only(now + 0.99 + 0.01 * rng.next_double(),
                               sim::EventKind::kPulse, 0, {});
    }
    events += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
void BM_EventEngineDeepPopulation(benchmark::State& state) {
  DeepPopulation(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_EventEngineDeepPopulation)->Arg(4096)->Arg(65536)->Arg(400000);
void BM_EventEngineDeepPopulationLadder(benchmark::State& state) {
  DeepPopulation(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_EventEngineDeepPopulationLadder)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(400000);

// Narrow-entry group insert kernel: one coalesced fan-out call per
// broadcast (torus degree 4 + loopback) against a standing population.
// The ladder variant rides the 16 B narrow lane + 40 B shared group
// record; the heap variant measures the per-delivery wide fallback the
// same call degrades to, so the pair pins what coalescing buys at the
// queue level. Items are deliveries popped per second.
void QueueNarrowInsert(benchmark::State& state, sim::QueueBackend backend) {
  constexpr int kFanout = 5;  // torus degree 4 + loopback
  static const std::int32_t kRest[kFanout - 1] = {1, 2, 3, 4};
  sim::Rng rng(41);
  sim::EventQueue queue(backend);
  queue.reserve(8192);
  sim::EventPayload proto;
  proto.a = 7;
  proto.d = static_cast<std::uint32_t>(net::PulseKind::kClusterPulse);
  sim::Duration delays[kFanout];
  double now = 0.0;
  const auto post_group = [&] {
    for (int j = 0; j < kFanout; ++j) {
      delays[j] = 0.9 + 0.2 * rng.next_double();
    }
    queue.schedule_fire_only_group(now, delays, kFanout,
                                   sim::EventKind::kPulse, 0, proto, 0,
                                   kRest);
  };
  for (int i = 0; i < 800; ++i) post_group();  // standing population
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (int i = 0; i < 200; ++i) post_group();
    for (int i = 0; i < 1000; ++i) {
      const auto fired = queue.pop();
      now = fired.at;
      benchmark::DoNotOptimize(fired.payload.c);
    }
    events += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
void BM_QueueNarrowInsert(benchmark::State& state) {
  QueueNarrowInsert(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_QueueNarrowInsert);
void BM_QueueNarrowInsertLadder(benchmark::State& state) {
  QueueNarrowInsert(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_QueueNarrowInsertLadder);

// Coalesced broadcast fan-out through the real network layer: every node
// of an augmented 64-cluster torus broadcasts once (encode once, sample
// all per-edge delays, hand the queue ONE pre-encoded group), then the
// simulator drains all deliveries. This is the Network::broadcast →
// Simulator::post_fire_only_group → dispatch chain the 40k hot path
// runs on, minus the protocol logic. Items are deliveries per second.
void BroadcastCoalescedFanout(benchmark::State& state,
                              sim::QueueBackend backend) {
  struct CountSink final : net::PulseSink {
    std::uint64_t received = 0;
    void on_pulse(const net::Pulse&, sim::Time) override { ++received; }
  };
  net::AugmentedTopology topo(net::Graph::torus(8, 8), 1);
  const int n = topo.num_nodes();
  sim::Simulator sim(backend);
  sim.reserve_events(1024);
  net::Network network(sim, &topo.adjacency(),
                       std::make_unique<net::UniformDelay>(1.0, 0.01),
                       sim::Rng(51));
  std::vector<CountSink> sinks(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) network.register_handler(id, &sinks[id]);
  std::uint64_t deliveries = 0;
  net::Pulse pulse;
  std::size_t fanout = 0;
  for (int from = 0; from < n; ++from) {
    fanout += topo.adjacency()[static_cast<std::size_t>(from)].size() + 1;
  }
  for (auto _ : state) {
    for (int from = 0; from < n; ++from) {
      pulse.sender = from;
      network.broadcast(from, pulse);
    }
    sim.run_until(sim.now() + 2.0);  // every delay < 2: drains everything
    deliveries += fanout;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deliveries));
  state.counters["deliveries"] = benchmark::Counter(
      static_cast<double>(deliveries), benchmark::Counter::kIsRate);
}
void BM_BroadcastCoalescedFanout(benchmark::State& state) {
  BroadcastCoalescedFanout(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_BroadcastCoalescedFanout);
void BM_BroadcastCoalescedFanoutLadder(benchmark::State& state) {
  BroadcastCoalescedFanout(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_BroadcastCoalescedFanoutLadder);

// ---- protocol kernels -------------------------------------------------------

// Columnar dispatch kernel: per-delivery classification + lane routing
// through NodeTable::on_pulse_run. Senders mix own-cluster members (lane
// 0 hit) and adjacent-cluster members (replica-lane scan), mirroring the
// augmented-graph traffic. NOTE on what is measured: arrival slots fill
// on the first lap and are not reset, so steady state exercises the
// routing chain + duplicate-reject early-out — i.e. the DISPATCH
// overhead bound per delivery, not the slot-write body (that is covered
// end-to-end by BM_SystemTorusThroughput*). Items are deliveries/second.
void BM_NodeTablePulseRun(benchmark::State& state) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 12;
  core::FtGcsSystem system(net::Graph::torus(8, 8), std::move(config));
  system.start();
  system.run_until(1.0 * params.T);
  std::vector<sim::BatchedEvent> run;
  const auto& topo = system.topology();
  const sim::Time now = system.simulator().now();
  for (int dest = 0; dest < topo.num_nodes() && run.size() < 1024; ++dest) {
    for (int sender : system.network().neighbors(dest)) {
      sim::BatchedEvent event;
      event.at = now;
      event.payload.a = sender;
      event.payload.c = dest;
      event.payload.d =
          static_cast<std::uint32_t>(net::PulseKind::kClusterPulse);
      run.push_back(event);
    }
  }
  for (auto _ : state) {
    system.node_table().on_pulse_run(run.data(), run.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(run.size()));
}
BENCHMARK(BM_NodeTablePulseRun);

// Time-partitioned drain kernel: EventQueue::pop_run_unordered sweeping
// whole calendar buckets below the horizon with the real pure-receive
// predicate over a real system's NodeTable. Ladder only — the heap
// backend has no partitioned drain (pop_run_unordered returns 0 there).
// Items are events drained per second; hold this against the ordered
// BM_EventEngineFireOnlyLadder pop curve to see what skipping the
// per-bucket drain sort buys.
void BM_NodeTablePartitionedDrain(benchmark::State& state) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 31;
  core::FtGcsSystem system(net::Graph::torus(8, 8), std::move(config));
  system.start();
  system.run_until(1.0 * params.T);
  const core::NodeTable& table = system.node_table();
  const auto& topo = system.topology();

  // Admissible kClusterPulse payloads (managed destinations, adjacent
  // senders) so the predicate accepts the whole population and the drain
  // runs bucket sweeps, not barrier stops.
  std::vector<sim::EventPayload> payloads;
  for (int dest = 0; dest < topo.num_nodes() && payloads.size() < 4096;
       ++dest) {
    for (int sender : system.network().neighbors(dest)) {
      sim::EventPayload payload;
      payload.a = sender;
      payload.c = dest;
      payload.d =
          static_cast<std::uint32_t>(net::PulseKind::kClusterPulse);
      payloads.push_back(payload);
    }
  }

  sim::EventQueue queue(sim::QueueBackend::kLadder);
  queue.reserve(payloads.size());
  sim::Rng rng(32);
  constexpr sim::SinkId kSink = 7;
  const std::uint32_t key =
      kSink << 8 | static_cast<std::uint32_t>(sim::EventKind::kPulse);
  std::vector<sim::BatchedEvent> out(sim::Simulator::kMaxRun);
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (const sim::EventPayload& payload : payloads) {
      queue.schedule_fire_only(rng.next_double(), sim::EventKind::kPulse,
                               kSink, payload);
    }
    std::size_t n;
    while ((n = queue.pop_run_unordered(2.0, key, &core::NodeTable::pure_pulse,
                                        &table, out.data(), out.size())) !=
           0) {
      benchmark::DoNotOptimize(out.data());
      events += n;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NodeTablePartitionedDrain);

// Vectorized receive-lane kernel: NodeTable::on_pulse_run at a full
// partitioned-tranche length (Simulator::kMaxRun events per call) — the
// decode/filter, clock-FMA, and lane-commit sweeps over the scratch
// columns. Complements BM_NodeTablePulseRun, which measures the routing
// chain on short (256-event) ordered runs. Items are deliveries/second.
void BM_LaneReceiveVectorized(benchmark::State& state) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 33;
  core::FtGcsSystem system(net::Graph::torus(8, 8), std::move(config));
  system.start();
  system.run_until(1.0 * params.T);
  const sim::Time now = system.simulator().now();
  const auto& topo = system.topology();

  std::vector<sim::BatchedEvent> run;
  while (run.size() < sim::Simulator::kMaxRun) {
    const std::size_t before = run.size();
    for (int dest = 0;
         dest < topo.num_nodes() && run.size() < sim::Simulator::kMaxRun;
         ++dest) {
      for (int sender : system.network().neighbors(dest)) {
        sim::BatchedEvent event;
        // Spread the arrivals so the FMA pass sees distinct times, as a
        // real below-horizon tranche does.
        event.at = now + 1e-7 * static_cast<double>(run.size());
        event.payload.a = sender;
        event.payload.c = dest;
        event.payload.d =
            static_cast<std::uint32_t>(net::PulseKind::kClusterPulse);
        run.push_back(event);
        if (run.size() == sim::Simulator::kMaxRun) break;
      }
    }
    if (run.size() == before) break;  // tiny topology: stop wrapping
  }
  for (auto _ : state) {
    system.node_table().on_pulse_run(run.data(), run.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(run.size()));
}
BENCHMARK(BM_LaneReceiveVectorized);

// Stale-level classification kernel: the batch predicate that decides, at
// pop time, whether a pulse event is a pure receive. This gate runs once
// per delivery at 40k-node scale, so its cost is throughput-critical.
void BM_NodeTablePurePulse(benchmark::State& state) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 13;
  core::FtGcsSystem system(net::Graph::torus(8, 8), std::move(config));
  system.start();
  system.run_until(2.0 * params.T);
  const core::NodeTable& table = system.node_table();
  std::vector<sim::EventPayload> payloads;
  sim::Rng rng(14);
  for (int i = 0; i < 1024; ++i) {
    sim::EventPayload payload;
    payload.a = static_cast<std::int32_t>(
        rng.below(static_cast<std::uint64_t>(system.topology().num_nodes())));
    payload.c = static_cast<std::int32_t>(
        rng.below(static_cast<std::uint64_t>(system.topology().num_nodes())));
    payload.b = static_cast<std::int32_t>(rng.below(8));
    payload.d = static_cast<std::uint32_t>(
        rng.chance(0.8) ? net::PulseKind::kMaxLevel
                        : net::PulseKind::kClusterPulse);
    payloads.push_back(payload);
  }
  std::uint64_t accepted = 0;
  for (auto _ : state) {
    for (const sim::EventPayload& payload : payloads) {
      accepted += core::NodeTable::pure_pulse(payload, &table) ? 1 : 0;
    }
  }
  benchmark::DoNotOptimize(accepted);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_NodeTablePurePulse);

// Full protocol throughput on the torus fabric (replica estimates + level
// traffic + columnar dispatch) — the shape of the `large_torus` scaling
// workload, sized for a microbenchmark. Arg is the torus side (side²
// clusters, 4·side² nodes).
void SystemTorusThroughput(benchmark::State& state,
                           sim::QueueBackend backend) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  const int side = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::FtGcsSystem::Config config;
    config.params = params;
    config.seed = 15;
    config.engine = backend;
    auto system = std::make_unique<core::FtGcsSystem>(
        net::Graph::torus(side, side), std::move(config));
    system->start();
    state.ResumeTiming();
    system->run_until(5.0 * params.T);
    events += system->simulator().fired_events();
    // Teardown (nodes, replicas, queue, network) is not protocol
    // throughput; destroy with the clock paused.
    state.PauseTiming();
    system.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
void BM_SystemTorusThroughput(benchmark::State& state) {
  SystemTorusThroughput(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_SystemTorusThroughput)->Arg(4)->Arg(8);
void BM_SystemTorusThroughputLadder(benchmark::State& state) {
  SystemTorusThroughput(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_SystemTorusThroughputLadder)->Arg(4)->Arg(8);

// Sharded conservative-parallel torus throughput (src/par/): the same
// protocol workload striped over T shard worker threads advancing in
// lock-step safe windows. Tables are bit-identical to the single
// simulator (tests/test_par_shards.cpp); this family tracks the
// overhead/scaling of the window machinery itself. Arg is the torus side
// (side² clusters, 4·side² nodes).
void ShardedTorusThroughput(benchmark::State& state, int shards) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  const int side = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    par::ShardedFtGcsSystem::Config config;
    config.params = params;
    config.seed = 15;
    config.shards = shards;
    auto system = std::make_unique<par::ShardedFtGcsSystem>(
        net::Graph::torus(side, side), std::move(config));
    system->start();
    state.ResumeTiming();
    system->run_until(5.0 * params.T);
    events += system->fired_events();
    state.PauseTiming();
    system.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
void BM_ShardedTorusThroughput2(benchmark::State& state) {
  ShardedTorusThroughput(state, 2);
}
BENCHMARK(BM_ShardedTorusThroughput2)->Arg(8)->Arg(16);
void BM_ShardedTorusThroughput4(benchmark::State& state) {
  ShardedTorusThroughput(state, 4);
}
BENCHMARK(BM_ShardedTorusThroughput4)->Arg(8)->Arg(16);
void BM_ShardedTorusThroughput8(benchmark::State& state) {
  ShardedTorusThroughput(state, 8);
}
BENCHMARK(BM_ShardedTorusThroughput8)->Arg(16);

void BM_TriggerEvaluation(benchmark::State& state) {
  sim::Rng rng(3);
  std::vector<double> neighbors(state.range(0));
  for (auto& est : neighbors) est = rng.uniform(-50.0, 50.0);
  const core::TriggerView view{0.0, neighbors};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fast_trigger(view, 3.0, 1.0));
    benchmark::DoNotOptimize(core::slow_trigger(view, 3.0, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TriggerEvaluation)->Arg(2)->Arg(8)->Arg(32);

void BM_SingleClusterRound(benchmark::State& state) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  for (auto _ : state) {
    state.PauseTiming();
    core::FtGcsSystem::Config config;
    config.params = params;
    config.seed = 4;
    core::FtGcsSystem system(net::Graph::line(1), std::move(config));
    system.start();
    state.ResumeTiming();
    system.run_until(10.0 * params.T);
    benchmark::DoNotOptimize(system.simulator().fired_events());
  }
  state.SetItemsProcessed(state.iterations() * 10);  // rounds
}
BENCHMARK(BM_SingleClusterRound);

void SystemEventThroughput(benchmark::State& state,
                           sim::QueueBackend backend) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  const int clusters = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::FtGcsSystem::Config config;
    config.params = params;
    config.seed = 5;
    config.engine = backend;
    auto system = std::make_unique<core::FtGcsSystem>(
        net::Graph::line(clusters), std::move(config));
    system->start();
    state.ResumeTiming();
    system->run_until(5.0 * params.T);
    events += system->simulator().fired_events();
    state.PauseTiming();
    system.reset();  // teardown excluded, as in the torus family
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kIsRate);
}
void BM_SystemEventThroughput(benchmark::State& state) {
  SystemEventThroughput(state, sim::QueueBackend::kHeap);
}
BENCHMARK(BM_SystemEventThroughput)->Arg(4)->Arg(16);
void BM_SystemEventThroughputLadder(benchmark::State& state) {
  SystemEventThroughput(state, sim::QueueBackend::kLadder);
}
BENCHMARK(BM_SystemEventThroughputLadder)->Arg(4)->Arg(16);

// ---- trace / monitor kernels ------------------------------------------------

// Per-delivery trace capture: the full hot path a traced run pays — sink
// batch append into the shard buffer, then the quiesced-commit merge
// (canonical sort) and varint frame encode. Writing to /dev/null keeps the
// kernel bounded while still paying the fwrite syscalls at frame flushes.
// Items are deliveries/second; this is the number to hold against the
// ~1 branch/delivery cost of tracing OFF.
void BM_TraceSinkDelivery(benchmark::State& state) {
  trace::TraceCollector collector("/dev/null");
  trace::TraceSink* sink = collector.shard_sink(0);
  sim::Rng rng(21);
  std::vector<sim::BatchedEvent> batch(1024);
  double now = 0.0;
  for (auto& event : batch) {
    now += 0.001 * rng.next_double();
    event.at = now;
    event.payload.a = static_cast<std::int32_t>(rng.below(40000));
    event.payload.c = static_cast<std::int32_t>(rng.below(40000));
    event.payload.b = static_cast<std::int32_t>(rng.below(8));
    event.payload.d = static_cast<std::uint32_t>(rng.below(4));
    event.payload.x = rng.next_double();
  }
  for (auto _ : state) {
    sink->on_delivery_batch(batch.data(), batch.size());
    collector.commit();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
  state.counters["deliveries"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 1024),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceSinkDelivery);

// Pure encode throughput of the on-disk format (varint + zigzag + XOR
// time-delta), no sink or merge in the loop — the floor BM_TraceSinkDelivery
// sits on.
void BM_TraceSinkEncode(benchmark::State& state) {
  trace::TraceWriter writer("/dev/null");
  sim::Rng rng(22);
  std::vector<trace::Record> records(1024);
  double now = 0.0;
  for (auto& record : records) {
    now += 0.001 * rng.next_double();
    record.at = now;
    record.sender = static_cast<std::int32_t>(rng.below(40000));
    record.dest = static_cast<std::int32_t>(rng.below(40000));
    record.kind = static_cast<std::uint8_t>(rng.below(4));
    record.level = trace::kind_has_level(record.kind)
                       ? static_cast<std::int32_t>(rng.below(8))
                       : 0;
    record.value =
        trace::kind_has_value(record.kind) ? rng.next_double() : 0.0;
  }
  for (auto _ : state) {
    for (const trace::Record& record : records) writer.append(record);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_TraceSinkEncode);

// One monitor probe (the always-on cost): the O(V + E_aug) two-pass scan
// over a real mid-run snapshot. Arg is the torus side (side² clusters,
// 4·side² nodes); items are node-column reads per second.
void BM_MonitorStep(benchmark::State& state) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  const int side = static_cast<int>(state.range(0));
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 23;
  core::FtGcsSystem system(net::Graph::torus(side, side), std::move(config));
  system.start();
  system.run_until(2.0 * params.T);
  core::SystemColumns columns;
  system.snapshot_columns(columns);

  const net::UniformDelay delays(params.d, params.U);
  trace::MonitorBounds bounds;
  bounds.local_skew = 1e9;
  bounds.global_skew = 1e9;
  bounds.intra_cluster = 1e9;
  trace::InvariantMonitor monitor(
      exp::build_topology_graph(system.topology(), delays), bounds);
  trace::MonitorCursor cursor;
  for (auto _ : state) {
    monitor.observe(columns, cursor);
  }
  benchmark::DoNotOptimize(monitor.stats().max_local_skew);
  state.SetItemsProcessed(state.iterations() * columns.num_nodes());
}
BENCHMARK(BM_MonitorStep)->Arg(8)->Arg(16);

// Histogram fill kernel: LogLinearHistogram::record over a precomputed
// skew-shaped value stream (binary search over the fixed boundary table
// + two scalar updates). This is the inner loop of every probe's edge
// sweep; items are records/second.
void BM_HistogramRecord(benchmark::State& state) {
  obs::LogLinearHistogram hist(obs::ProbeSampler::scaled_spec(1.0));
  // Values spanning the linear section, the geometric tail, and the
  // overflow bucket, in a fixed pseudo-random order.
  std::vector<double> values(4096);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (double& v : values) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    v = static_cast<double>(x % 100000) * 1e-3;  // [0, 100)
  }
  for (auto _ : state) {
    for (const double v : values) hist.record(v);
    benchmark::DoNotOptimize(hist.percentile(0.99));
    hist.clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_HistogramRecord);

// Full probe-boundary sampling kernel: ProbeSampler::sample over a real
// torus system's columnar snapshot — histogram refill (O(V+E) sweep),
// gauge/counter updates, row serialization, and the fwrite — i.e. the
// per-probe cost `--metrics` adds to a run. The sink is /dev/null so
// the kernel measures the sampler, not the disk. Items are nodes/second
// (compare against BM_MonitorStep, the other per-probe O(V+E) pass).
void BM_MetricsSample(benchmark::State& state) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  const int side = static_cast<int>(state.range(0));
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 29;
  core::FtGcsSystem system(net::Graph::torus(side, side), std::move(config));
  system.start();
  system.run_until(2.0 * params.T);
  core::SystemColumns columns;
  system.snapshot_columns(columns);
  const net::UniformDelay delays(params.d, params.U);
  const metrics::SkewSample skews =
      metrics::measure_skews(columns, system.topology());

  obs::ProbeSampler::Config sampler_config;
  sampler_config.path = "/dev/null";
  sampler_config.monitors = false;
  sampler_config.hist_scale = 1.0;
  obs::ProbeSampler sampler(
      sampler_config, exp::build_topology_graph(system.topology(), delays));
  sampler.prewarm();

  obs::SampleContext ctx;
  ctx.skews = &skews;
  ctx.columns = &columns;
  double t = columns.at;
  for (auto _ : state) {
    t += 1.0;
    ctx.at = t;
    ctx.events += 17;
    ctx.messages += 11;
    sampler.sample(ctx);
  }
  state.SetItemsProcessed(state.iterations() * columns.num_nodes());
}
BENCHMARK(BM_MetricsSample)->Arg(8)->Arg(16);

// ---- main: refuse debug-library JSON ---------------------------------------

/// Extracts the value of --benchmark_out=<path> (or "--benchmark_out
/// <path>") before google-benchmark consumes argv.
std::string benchmark_out_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--benchmark_out=", 16) == 0) return arg + 16;
    if (std::strcmp(arg, "--benchmark_out") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return {};
}

/// True if the written benchmark output admits it was produced by a
/// debug-built benchmark library.
bool reports_debug_library(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, file)) > 0) {
    content.append(buf, n);
  }
  std::fclose(file);
  return content.find("\"library_build_type\": \"debug\"") !=
         std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = benchmark_out_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!out_path.empty() && reports_debug_library(out_path)) {
    std::remove(out_path.c_str());
    std::fprintf(
        stderr,
        "micro_kernel: refusing to publish %s — the benchmark library was "
        "built without NDEBUG (context.library_build_type == \"debug\"), so "
        "these numbers must not become a committed baseline. Rebuild the "
        "dependency in Release (-DFTGCS_BENCHMARK_SOURCE_DIR=<src> or "
        "-DFTGCS_BUNDLED_BENCHMARK=ON).\n",
        out_path.c_str());
    return 1;
  }
  return 0;
}
