#include "sim/simulator.h"

#include <utility>

#include "support/assert.h"

namespace ftgcs::sim {

EventId Simulator::at(Time t, Callback fn) {
  FTGCS_EXPECTS(t >= now_);
  return queue_.schedule(t, std::move(fn));
}

EventId Simulator::after(Duration dt, Callback fn) {
  FTGCS_EXPECTS(dt >= 0.0);
  return queue_.schedule(now_ + dt, std::move(fn));
}

SinkId Simulator::register_sink(EventSink* sink) {
  FTGCS_EXPECTS(sink != nullptr);
  sinks_.push_back(sink);
  return static_cast<SinkId>(sinks_.size() - 1);
}

void Simulator::set_batch_channel(SinkId sink, EventKind kind,
                                  BatchPredicate pred, const void* ctx) {
  FTGCS_EXPECTS(sink < sinks_.size());
  FTGCS_EXPECTS(pred != nullptr);
  FTGCS_EXPECTS(batch_pred_ == nullptr);  // one channel per simulator
  // kClosure would pack to the same (sink << 8 | kind) = 0 key that
  // cancellable ladder entries carry by default — pop_run's mismatch test
  // relies on a real channel key never being 0.
  FTGCS_EXPECTS(kind != EventKind::kClosure);
  batch_pred_ = pred;
  batch_ctx_ = ctx;
  batch_sink_ = sinks_[sink];
  batch_kind_ = kind;
  batch_key_ = sink << 8 | static_cast<std::uint32_t>(kind);
  batch_buf_.resize(kMaxBatch);
  run_buf_.resize(kMaxRun);
  scratch_.ensure(kMaxRun);
}

EventId Simulator::post_at(Time t, EventKind kind, SinkId sink,
                           const EventPayload& payload) {
  FTGCS_EXPECTS(t >= now_);
  FTGCS_EXPECTS(sink < sinks_.size());
  return queue_.schedule_typed(t, kind, sink, payload);
}

EventId Simulator::post_after(Duration dt, EventKind kind, SinkId sink,
                              const EventPayload& payload) {
  FTGCS_EXPECTS(dt >= 0.0);
  FTGCS_EXPECTS(sink < sinks_.size());
  return queue_.schedule_typed(now_ + dt, kind, sink, payload);
}

void Simulator::post_fire_only_after(Duration dt, EventKind kind, SinkId sink,
                                     const EventPayload& payload) {
  FTGCS_EXPECTS(dt >= 0.0);
  FTGCS_EXPECTS(sink < sinks_.size());
  queue_.schedule_fire_only(now_ + dt, kind, sink, payload);
}

void Simulator::post_fire_only_at(Time t, EventKind kind, SinkId sink,
                                  const EventPayload& payload) {
  FTGCS_EXPECTS(t >= now_);
  FTGCS_EXPECTS(sink < sinks_.size());
  queue_.schedule_fire_only(t, kind, sink, payload);
}

void Simulator::post_fire_only_group(const Duration* delays, std::size_t count,
                                     EventKind kind, SinkId sink,
                                     const EventPayload& proto,
                                     std::int32_t first_dest,
                                     const std::int32_t* rest_dests) {
  FTGCS_EXPECTS(sink < sinks_.size());
  queue_.schedule_fire_only_group(now_, delays, count, kind, sink, proto,
                                  first_dest, rest_dests);
}

void Simulator::dispatch(EventQueue::Fired& fired) {
  if (fired.kind == EventKind::kClosure) {
    fired.fn();
  } else {
    sinks_[fired.sink]->on_event(fired.kind, fired.payload, now_);
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  FTGCS_ASSERT(fired.at >= now_);
  now_ = fired.at;
  ++fired_;
  dispatch(fired);
  return true;
}

void Simulator::run_until(Time t_end) {
  FTGCS_EXPECTS(t_end >= now_);
  EventQueue::Fired fired;
  for (;;) {
    if (batch_pred_ != nullptr) {
      // Time-partitioned tranche first (ladder backend): every channel
      // event strictly below the partition horizon fires in one unordered
      // batch, skipping the drain sort. now_ is deliberately NOT advanced
      // — the tranche is unordered, each item carries its own fire time,
      // and channel receivers never read now() (the batch contract); the
      // clock next moves when an ordered event fires, which is ≥ every
      // tranche item by the horizon's construction.
      const std::size_t u =
          queue_.pop_run_unordered(t_end, batch_key_, batch_pred_,
                                   batch_ctx_, run_buf_.data(), kMaxRun);
      if (u != 0) {
        fired_ += u;
        batch_sink_->on_event_batch(batch_kind_, run_buf_.data(), u);
        continue;
      }
      // Ordered sliver: channel events at or beyond the horizon (barrier
      // ties, heap backend) still drain as contiguous (time, seq) runs.
      const std::size_t n =
          queue_.pop_run(t_end, batch_key_, batch_pred_, batch_ctx_,
                         batch_buf_.data(), kMaxBatch);
      if (n != 0) {
        FTGCS_ASSERT(batch_buf_[0].at >= now_);
        now_ = batch_buf_[n - 1].at;
        fired_ += n;
        batch_sink_->on_event_batch(batch_kind_, batch_buf_.data(), n);
        continue;
      }
    }
    if (!queue_.pop_if_at_most(t_end, fired)) break;
    FTGCS_ASSERT(fired.at >= now_);
    now_ = fired.at;
    ++fired_;
    dispatch(fired);
  }
  now_ = t_end;
}

}  // namespace ftgcs::sim
