#include "trace/diff.h"

#include <stdexcept>

#include "trace/reader.h"

namespace ftgcs::trace {

namespace {

/// One stream plus its decode state. A mid-stream decode error is captured
/// instead of propagating: the diff reports it as the divergence point.
struct Stream {
  TraceReader reader;
  Record record;
  bool has_record = false;
  bool failed = false;
  std::string error;

  explicit Stream(const std::string& path) : reader(path) {}

  /// Offset of the record just decoded, or of the decode failure / end.
  std::uint64_t position() const {
    return has_record ? record.offset : reader.offset();
  }

  bool advance() {
    has_record = false;
    try {
      has_record = reader.next(record);
    } catch (const std::runtime_error& e) {
      failed = true;
      error = e.what();
    }
    return has_record;
  }
};

}  // namespace

TraceDiff diff_traces(const std::string& path_a, const std::string& path_b) {
  Stream a(path_a);  // header problems still throw — that is an unusable
  Stream b(path_b);  // input, not a comparable stream

  TraceDiff diff;
  for (;;) {
    const bool more_a = a.advance();
    const bool more_b = b.advance();
    diff.seq = diff.records_compared;
    diff.offset_a = a.position();
    diff.offset_b = b.position();
    diff.has_record_a = more_a;
    diff.has_record_b = more_b;
    if (more_a) diff.record_a = a.record;
    if (more_b) diff.record_b = b.record;

    if (a.failed || b.failed) {
      diff.reason = a.failed ? "a: " + a.error : "b: " + b.error;
      return diff;
    }
    if (!more_a && !more_b) {
      diff.identical = true;
      diff.reason.clear();
      return diff;
    }
    if (more_a != more_b) {
      diff.reason = more_a ? "b ended" : "a ended";
      return diff;
    }
    if (!record_equal(a.record, b.record)) {
      diff.reason = "payload";
      return diff;
    }
    ++diff.records_compared;
  }
}

}  // namespace ftgcs::trace
