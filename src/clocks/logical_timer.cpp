#include "clocks/logical_timer.h"

#include <utility>

#include "support/assert.h"

namespace ftgcs::clocks {

LogicalTimerSet::LogicalTimerSet(sim::Simulator& simulator,
                                 LogicalClock& clock, Client* client)
    : sim_(simulator), clock_(clock), client_(client) {
  self_ = simulator.register_sink(this);
  clock_.set_rate_observer([this](sim::Time now) { reschedule_all(now); });
}

LogicalTimerSet::~LogicalTimerSet() {
  clock_.set_rate_observer(nullptr);
  for (auto& pending : pending_) {
    if (pending.armed) sim_.cancel(pending.event);
  }
}

sim::EventId LogicalTimerSet::schedule_one(Key key, double target) {
  const sim::Time fire_at = clock_.when_reaches(target, sim_.now());
  sim::EventPayload payload;
  payload.a = static_cast<std::int32_t>(key);
  return sim_.post_at(fire_at, sim::EventKind::kTimer, self_, payload);
}

void LogicalTimerSet::on_event(sim::EventKind kind,
                               const sim::EventPayload& payload,
                               sim::Time /*now*/) {
  FTGCS_ASSERT(kind == sim::EventKind::kTimer);
  const Key key = static_cast<Key>(payload.a);
  FTGCS_ASSERT(key < kMaxKeys);
  Pending& pending = pending_[key];
  FTGCS_ASSERT(pending.armed);
  pending.armed = false;  // disarm before firing so the fire may re-arm
  --armed_count_;
  if (key < fns_.size() && fns_[key]) {  // fns_ empty on the typed path
    Callback fn = std::move(fns_[key]);
    fns_[key] = nullptr;
    fn();
  } else {
    FTGCS_ASSERT(client_ != nullptr);
    client_->on_logical_timer(key);
  }
}

void LogicalTimerSet::arm(Key key, double logical_target) {
  FTGCS_EXPECTS(key < kMaxKeys);
  cancel(key);
  Pending& pending = pending_[key];
  pending.armed = true;
  pending.target = logical_target;
  pending.event = schedule_one(key, logical_target);
  ++armed_count_;
}

void LogicalTimerSet::arm(Key key, double logical_target, Callback fn) {
  FTGCS_EXPECTS(fn != nullptr);
  arm(key, logical_target);
  if (key >= fns_.size()) fns_.resize(key + 1);
  fns_[key] = std::move(fn);
}

void LogicalTimerSet::cancel(Key key) {
  if (!armed(key)) return;
  Pending& pending = pending_[key];
  sim_.cancel(pending.event);
  pending.armed = false;
  if (key < fns_.size()) fns_[key] = nullptr;
  --armed_count_;
}

void LogicalTimerSet::reschedule_all(sim::Time now) {
  (void)now;
  for (Key key = 0; key < kMaxKeys; ++key) {
    Pending& pending = pending_[key];
    if (!pending.armed) continue;
    const sim::Time fire_at = clock_.when_reaches(pending.target, sim_.now());
    const bool moved = sim_.reschedule(pending.event, fire_at);
    FTGCS_ASSERT(moved);
  }
}

}  // namespace ftgcs::clocks
