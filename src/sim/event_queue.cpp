#include "sim/event_queue.h"

#include <utility>

namespace ftgcs::sim {

void EventQueue::reserve(std::size_t capacity) {
  slots_.reserve(capacity);
  fns_.reserve(capacity);
  positions_.reserve(capacity);
  free_.reserve(capacity);
  heap_.reserve(capacity);
}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  fns_.emplace_back();
  positions_.push_back(0);
  FTGCS_ASSERT(slots_.size() < (std::size_t{1} << kSlotBits));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

bool EventQueue::decode_live(EventId id, std::uint32_t& slot) const {
  if (!id) return false;
  slot = static_cast<std::uint32_t>(id.value >> 32) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value);
  return slot < slots_.size() && slots_[slot].gen == gen;
}

EventId EventQueue::push_entry(Time t, std::uint32_t slot) {
  const std::uint64_t seq = next_seq_++;
  FTGCS_ASSERT(seq < (std::uint64_t{1} << kSeqBits));
  const HeapEntry entry{t, seq << kSlotBits | slot};
  heap_.emplace_back();  // grow; sift places the entry into the hole chain
  place(entry, sift_up(entry, heap_.size() - 1));
  return EventId{(static_cast<std::uint64_t>(slot) + 1) << 32 |
                 slots_[slot].gen};
}

EventId EventQueue::schedule(Time t, Callback fn) {
  FTGCS_EXPECTS(fn != nullptr);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.kind = EventKind::kClosure;
  s.sink = kInvalidSink;
  fns_[slot] = std::move(fn);
  return push_entry(t, slot);
}

EventId EventQueue::schedule_typed(Time t, EventKind kind, SinkId sink,
                                   const EventPayload& payload) {
  FTGCS_EXPECTS(kind != EventKind::kClosure);
  FTGCS_EXPECTS(sink != kInvalidSink);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.kind = kind;
  s.sink = sink;
  s.payload = payload;
  return push_entry(t, slot);
}

bool EventQueue::cancel(EventId id) {
  std::uint32_t slot;
  if (!decode_live(id, slot)) return false;
  remove_at(positions_[slot]);
  bump_generation(slot);
  if (slots_[slot].kind == EventKind::kClosure) fns_[slot] = nullptr;
  free_.push_back(slot);
  return true;
}

bool EventQueue::reschedule(EventId id, Time t) {
  std::uint32_t slot;
  if (!decode_live(id, slot)) return false;
  // Fresh sequence number: ties at the new time fire after everything
  // already scheduled there, exactly as a cancel + schedule would.
  const std::uint64_t seq = next_seq_++;
  FTGCS_ASSERT(seq < (std::uint64_t{1} << kSeqBits));
  sift(HeapEntry{t, seq << kSlotBits | slot}, positions_[slot]);
  return true;
}

EventQueue::Fired EventQueue::pop() {
  FTGCS_EXPECTS(!heap_.empty());
  const HeapEntry head = heap_[0];
  remove_at(0);
  Fired fired;
  fill_fired(head, fired);
  return fired;
}

}  // namespace ftgcs::sim
