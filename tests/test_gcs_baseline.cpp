// Plain (non-fault-tolerant) GCS baseline: fault-free correctness, and the
// paper's motivating negative result — one Byzantine node destroys the
// local skew guarantee.
#include "gcs/gcs_system.h"

#include <gtest/gtest.h>

#include "net/graph.h"

namespace ftgcs::gcs {
namespace {

GcsParams baseline_params() {
  return GcsParams::derive(/*rho=*/1e-3, /*d=*/1.0, /*U=*/0.1, /*mu=*/0.05,
                           /*broadcast_period=*/1.0);
}

TEST(GcsParams, DerivedQuantitiesConsistent) {
  const GcsParams p = baseline_params();
  EXPECT_GT(p.estimate_error(), p.U / 2.0);
  EXPECT_DOUBLE_EQ(p.slack, 2.0 * p.estimate_error());
  EXPECT_DOUBLE_EQ(p.kappa, 3.0 * p.slack);
}

TEST(GcsBaseline, FaultFreeLineStaysLocallySynchronized) {
  GcsSystem::Config config;
  config.params = baseline_params();
  config.seed = 21;
  GcsSystem system(net::Graph::line(8), std::move(config));
  system.start();
  double worst_local = 0.0;
  for (int step = 1; step <= 150; ++step) {
    system.run_until(step * 2.0);
    worst_local = std::max(worst_local, system.local_skew());
  }
  // Fault-free: local skew stays within a few κ levels.
  EXPECT_LE(worst_local, 3.0 * config.params.kappa);
  EXPECT_GT(system.node_logical(0), 0.0);
}

TEST(GcsBaseline, GlobalSkewBoundedFaultFree) {
  GcsSystem::Config config;
  config.params = baseline_params();
  config.seed = 22;
  const int n = 8;
  GcsSystem system(net::Graph::line(n), std::move(config));
  system.start();
  system.run_until(300.0);
  // Drift-limited: global skew ≪ ρ·t without correction would be 0.3;
  // the gradient layer keeps neighbors within κ, so global ≤ (n−1)·κ.
  EXPECT_LE(system.global_skew(), (n - 1) * baseline_params().kappa);
}

TEST(GcsBaseline, SingleByzantinePumpBreaksLocalSkew) {
  // The motivating failure (paper §1): a Byzantine node on a ring
  // advertises diverging clocks to its two sides. The remaining correct
  // nodes form a path whose endpoints are dragged apart, so some pair of
  // correct *neighbors* must absorb skew far beyond the fault-free level.
  // (On a line the faulty node would disconnect the correct subgraph —
  // the paper's degree-based impossibility argument.)
  const GcsParams params = baseline_params();

  auto run = [&](bool with_fault) {
    GcsSystem::Config config;
    config.params = params;
    config.seed = 23;
    if (with_fault) {
      config.pump_nodes = {4};
      config.pump_rate = 0.05;  // ≈ 50ρ equivalent — a patient liar
    }
    GcsSystem system(net::Graph::ring(9), std::move(config));
    system.start();
    double worst_local = 0.0;
    for (int step = 1; step <= 400; ++step) {
      system.run_until(step * 2.0);
      worst_local = std::max(worst_local, system.local_skew());
    }
    return worst_local;
  };

  const double clean = run(false);
  const double attacked = run(true);
  EXPECT_GT(attacked, 3.0 * clean);
  EXPECT_GT(attacked, 2.0 * params.kappa);
}

TEST(GcsBaseline, ObliviousRuleAlsoSynchronizesFaultFree) {
  GcsSystem::Config config;
  config.params = GcsParams::derive_oblivious(1e-3, 1.0, 0.1, 0.05, 1.0,
                                              /*diameter=*/7);
  config.seed = 29;
  GcsSystem system(net::Graph::line(8), std::move(config));
  system.start();
  double worst_local = 0.0;
  for (int step = 1; step <= 150; ++step) {
    system.run_until(step * 2.0);
    worst_local = std::max(worst_local, system.local_skew());
  }
  // The oblivious rule guarantees only O(√D·κ)-flavored local skew.
  EXPECT_LE(worst_local, config.params.blocking + config.params.kappa);
}

TEST(GcsBaseline, EstimatesTrackNeighborsWithinError) {
  GcsSystem::Config config;
  config.params = baseline_params();
  config.seed = 31;
  GcsSystem system(net::Graph::line(4), std::move(config));
  system.start();
  system.run_until(50.0);
  // Spot-check: node 1's estimate of node 2 within the derived ε bound
  // plus the µ-mode divergence since the last share.
  // (GcsSystem lacks direct estimate access; assert logical values close,
  // which the trigger layer can only achieve through sound estimates.)
  EXPECT_LE(std::abs(system.node_logical(1) - system.node_logical(2)),
            config.params.kappa);
}

}  // namespace
}  // namespace ftgcs::gcs
