// Parameterized property sweeps over the full system: every combination
// of topology, delay adversary, and Byzantine strategy must preserve the
// paper's invariants. Also the Lemma B.1 slow-down simulation property
// and oversized-cluster / edge-case configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "ftgcs.h"
#include "clocks/hardware_clock.h"
#include "sim/rng.h"

namespace ftgcs {
namespace {

core::Params sweep_params(int f = 1) {
  return core::Params::practical(1e-3, 1.0, 0.01, f);
}

enum class Topo { kLine, kRing, kStar, kGrid };
enum class Delays { kUniform, kTwoPoint, kDirectional, kClassed };

net::Graph make_graph(Topo topo) {
  switch (topo) {
    case Topo::kLine:
      return net::Graph::line(4);
    case Topo::kRing:
      return net::Graph::ring(4);
    case Topo::kStar:
      return net::Graph::star(4);
    case Topo::kGrid:
      return net::Graph::grid(2, 2);
  }
  return net::Graph::line(1);
}

std::unique_ptr<net::DelayModel> make_delays(Delays delays,
                                             const core::Params& p) {
  switch (delays) {
    case Delays::kUniform:
      return std::make_unique<net::UniformDelay>(p.d, p.U);
    case Delays::kTwoPoint:
      return std::make_unique<net::TwoPointDelay>(p.d, p.U);
    case Delays::kDirectional:
      return std::make_unique<net::DirectionalDelay>(p.d, p.U);
    case Delays::kClassed:
      return std::make_unique<net::ClassedDelay>(p.d, p.U, p.k);
  }
  return nullptr;
}

class SystemProperty
    : public ::testing::TestWithParam<std::tuple<Topo, Delays>> {};

TEST_P(SystemProperty, InvariantsHoldUnderFullFaultBudget) {
  const auto [topo_kind, delay_kind] = GetParam();
  const core::Params params = sweep_params();
  const net::Graph graph = make_graph(topo_kind);
  net::AugmentedTopology topo(net::Graph(graph), params.k);

  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 7;
  config.delay_model = make_delays(delay_kind, params);
  config.fault_plan = byz::FaultPlan::uniform(
      topo, params.f, byz::StrategyKind::kWindowEdge,
      params.phi * params.tau3, 7);
  core::FtGcsSystem system(net::Graph(graph), std::move(config));
  metrics::SkewProbe probe(system, params.T / 2.0, 10.0 * params.T);
  probe.start();
  system.start();
  system.run_until(40.0 * params.T);

  EXPECT_LE(probe.steady_max().intra_cluster,
            params.intra_cluster_skew_bound());
  EXPECT_LE(probe.steady_max().cluster_local, params.kappa);
  EXPECT_EQ(system.total_violations(), 0u);
  // Rate envelope via logical progression: clocks advanced at least
  // horizon·1 and at most horizon·ϑ_max.
  for (int id = 0; id < system.topology().num_nodes(); ++id) {
    if (!system.is_correct(id)) continue;
    const double l = system.node_logical(id);
    EXPECT_GE(l, 40.0 * params.T);
    EXPECT_LE(l, 40.0 * params.T * params.max_logical_rate());
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<Topo, Delays>>& info) {
  static const char* topo_names[] = {"Line", "Ring", "Star", "Grid"};
  static const char* delay_names[] = {"Uniform", "TwoPoint", "Directional",
                                      "Classed"};
  return std::string(
             topo_names[static_cast<int>(std::get<0>(info.param))]) +
         delay_names[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologiesAndDelays, SystemProperty,
    ::testing::Combine(::testing::Values(Topo::kLine, Topo::kRing,
                                         Topo::kStar, Topo::kGrid),
                       ::testing::Values(Delays::kUniform, Delays::kTwoPoint,
                                         Delays::kDirectional,
                                         Delays::kClassed)),
    sweep_name);

TEST(SystemEdgeCases, ZeroUncertaintyExactDelays) {
  // U = 0: all delays exactly d — estimates become exact up to drift.
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.0, 1);
  ASSERT_TRUE(params.feasible()) << params.feasibility_report();
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 3;
  core::FtGcsSystem system(net::Graph::line(3), std::move(config));
  metrics::SkewProbe probe(system, params.T / 2.0, 10.0 * params.T);
  probe.start();
  system.start();
  system.run_until(40.0 * params.T);
  EXPECT_LE(probe.steady_max().intra_cluster,
            params.intra_cluster_skew_bound());
  EXPECT_EQ(system.total_violations(), 0u);
}

TEST(SystemEdgeCases, FaultFreeDegenerateFZero) {
  // f = 0, k = 1: single-node clusters; ClusterSync degenerates to
  // self-timed rounds, InterclusterSync is plain GCS.
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 0);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 4;
  core::FtGcsSystem system(net::Graph::line(4), std::move(config));
  metrics::SkewProbe probe(system, params.T / 2.0, 10.0 * params.T);
  probe.start();
  system.start();
  system.run_until(40.0 * params.T);
  EXPECT_LE(probe.steady_max().cluster_local, params.kappa);
  EXPECT_EQ(system.total_violations(), 0u);
}

TEST(SystemEdgeCases, OversizedClustersToleratesSameBudget) {
  // k = 6 > 3f+1 = 4: extra correct members; everything still holds.
  const core::Params params =
      core::Params::practical(1e-3, 1.0, 0.01, 1).with_cluster_size(6);
  net::AugmentedTopology topo(net::Graph::line(3), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 5;
  config.fault_plan = byz::FaultPlan::uniform(
      topo, params.f, byz::StrategyKind::kTwoFaced, params.E, 5);
  core::FtGcsSystem system(net::Graph::line(3), std::move(config));
  metrics::SkewProbe probe(system, params.T / 2.0, 10.0 * params.T);
  probe.start();
  system.start();
  system.run_until(40.0 * params.T);
  EXPECT_EQ(system.topology().cluster_size(), 6);
  EXPECT_LE(probe.steady_max().intra_cluster,
            params.intra_cluster_skew_bound());
  EXPECT_EQ(system.total_violations(), 0u);
}

TEST(SystemEdgeCases, LargerFaultBudget) {
  // f = 2 (k = 7) with mixed strategies at the full budget.
  const core::Params params = core::Params::practical(5e-4, 1.0, 0.01, 2);
  net::AugmentedTopology topo(net::Graph::line(3), params.k);
  byz::FaultPlan plan;
  // Two different strategies per cluster.
  for (int c = 0; c < 3; ++c) {
    plan.add({topo.node(c, 0), byz::StrategyKind::kTwoFaced, params.E});
    plan.add({topo.node(c, 1), byz::StrategyKind::kSilent, 0.0});
  }
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 6;
  config.fault_plan = std::move(plan);
  core::FtGcsSystem system(net::Graph::line(3), std::move(config));
  metrics::SkewProbe probe(system, params.T / 2.0, 10.0 * params.T);
  probe.start();
  system.start();
  system.run_until(40.0 * params.T);
  EXPECT_LE(probe.steady_max().intra_cluster,
            params.intra_cluster_skew_bound());
  EXPECT_EQ(system.total_violations(), 0u);
}

TEST(SystemEdgeCases, WeightedEdgesChangeTriggerGeometry) {
  // Footnote 1: a heavy edge (weight 3 ⇒ κ_e = 3κ) tolerates a gap that
  // a unit edge would immediately correct. Two clusters, 2.5κ gap: with
  // weight 1 the fast trigger fires and drains; with weight 3 it does
  // not (2.5κ < 2·(3κ) − 3δ) and the gap persists.
  const core::Params params = sweep_params();
  auto run = [&](double weight) {
    core::FtGcsSystem::Config config;
    config.params = params;
    config.seed = 8;
    config.enable_global_module = false;  // isolate the trigger layer
    const int gap_rounds =
        static_cast<int>(2.5 * params.kappa / params.T) + 1;
    config.cluster_round_offsets = {0, gap_rounds};
    config.edge_weights = {{0, 1, weight}};
    core::FtGcsSystem system(net::Graph::line(2), std::move(config));
    system.start();
    system.run_until(200.0 * params.T);
    return std::abs(*system.cluster_clock(1) - *system.cluster_clock(0));
  };
  const double unit = run(1.0);
  const double heavy = run(3.0);
  EXPECT_LT(unit, 2.0 * params.kappa);   // drained into the level band
  EXPECT_GT(heavy, 2.2 * params.kappa);  // left alone by design
}

// ---- Lemma B.1: the slow-down simulation -------------------------------

TEST(SlowDownSimulation, ScaledExecutionIsIndistinguishable) {
  // For rates in [ζ, ζϑ], the transformed execution (events at ζt, rates
  // h̄(t) = h(t/ζ)/ζ, delays ζd) shows the same hardware time at
  // corresponding events: H̄(ζt) = H(t).
  sim::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const double zeta = rng.uniform(1.1, 3.0);
    const double theta = rng.uniform(1.0001, 1.01);

    // Random piecewise-constant schedule in [ζ, ζϑ].
    std::vector<std::pair<double, double>> schedule;  // (time, rate)
    double t = 0.0;
    for (int seg = 0; seg < 8; ++seg) {
      schedule.emplace_back(t, zeta * rng.uniform(1.0, theta));
      t += rng.uniform(0.5, 2.0);
    }
    const double horizon = t;

    clocks::HardwareClock original(0.0, 0.0, schedule[0].second);
    clocks::HardwareClock reduced(0.0, 0.0, schedule[0].second / zeta);
    for (std::size_t seg = 1; seg < schedule.size(); ++seg) {
      original.set_rate(schedule[seg].first, schedule[seg].second);
      reduced.set_rate(zeta * schedule[seg].first,
                       schedule[seg].second / zeta);
    }
    // Sample correspondence H̄(ζt) = H(t) at random times.
    for (int sample = 0; sample < 10; ++sample) {
      const double when = rng.uniform(schedule.back().first, horizon);
      EXPECT_NEAR(reduced.read(zeta * when), original.read(when), 1e-9)
          << "trial " << trial;
    }
    // Rates land in [1, ϑ] as Lemma B.1 claims.
    EXPECT_GE(reduced.rate(), 1.0 - 1e-12);
    EXPECT_LE(reduced.rate(), theta + 1e-12);
  }
}

}  // namespace
}  // namespace ftgcs
