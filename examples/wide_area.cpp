// "A day in the life" of a wide-area deployment: a ring of data centers
// (clusters) with everything the real world throws at it —
//   * heterogeneous channel delays (short in-rack links, long WAN links),
//   * oscillators on a bounded random walk,
//   * a full Byzantine budget (one equivocating node per data center),
//   * a mid-run benign crash,
//   * a transient clock corruption (bit flip) in one node,
//   * a WAN link that is taken down and later re-inserted.
// The report shows the system riding through all of it within bounds.
#include <cstdio>

#include "ftgcs.h"

int main() {
  using namespace ftgcs;

  const core::Params params =
      core::Params::practical(/*rho=*/1e-3, /*d=*/1.0, /*U=*/0.05, /*f=*/1);
  const int sites = 6;

  net::AugmentedTopology topo(net::Graph::ring(sites), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 99;
  config.delay_model =
      std::make_unique<net::ClassedDelay>(params.d, params.U, params.k);
  config.drift_model = std::make_unique<clocks::RandomWalkDrift>(
      params.rho, /*step_interval=*/params.T, /*step_size=*/params.rho / 4.0,
      config.seed);
  // One equivocator in sites 0–4. Site 5 keeps its fault slot free:
  // a crash counts against the same per-cluster budget f (a crashed node
  // IS a fault — combining it with a Byzantine one in the same cluster
  // would exceed f and void the guarantees, measurably so).
  for (int site = 0; site < sites - 1; ++site) {
    const byz::FaultPlan site_plan = byz::FaultPlan::in_cluster(
        topo, site, params.f, byz::StrategyKind::kEquivocator, params.E,
        99 + site);
    for (const auto& spec : site_plan.specs()) {
      config.fault_plan.add(spec);
    }
  }

  core::FtGcsSystem system(net::Graph::ring(sites), std::move(config));

  // Timeline of incidents.
  const double t_crash = 30.0 * params.T;
  const double t_bitflip = 60.0 * params.T;
  const double t_link_down = 90.0 * params.T;
  const double t_link_up = 140.0 * params.T;
  const double horizon = 220.0 * params.T;

  system.node(topo.node(5, 1)).crash_at(t_crash);
  system.node(topo.node(4, 1))
      .inject_transient_fault_at(t_bitflip, 0.5 * params.phi * params.tau3);
  system.schedule_edge_toggle(0, 5, false, t_link_down);
  system.schedule_edge_toggle(0, 5, true, t_link_up);

  metrics::SkewProbe probe(system, params.T / 2.0, 5.0 * params.T);
  probe.start();
  system.start();

  std::printf("wide-area ring of %d sites, %d nodes/site, 1 equivocator "
              "per site\n",
              sites, params.k);
  std::printf("incidents: crash @%.0f, bit-flip @%.0f, link (0,5) down "
              "@%.0f, up @%.0f\n\n",
              t_crash, t_bitflip, t_link_down, t_link_up);

  std::printf("%8s  %12s  %12s  %12s\n", "t", "intra", "site-to-site",
              "global");
  for (int checkpoint = 1; checkpoint <= 11; ++checkpoint) {
    const double t = checkpoint * horizon / 11.0;
    system.run_until(t);
    const auto skews =
        metrics::measure_skews(system.snapshot(), system.topology());
    std::printf("%8.0f  %12.4f  %12.4f  %12.4f\n", t, skews.intra_cluster,
                skews.cluster_local, skews.cluster_global);
  }

  std::printf("\nbounds: intra <= %.4f, site-to-site (settled) <= kappa = "
              "%.4f\n",
              params.intra_cluster_skew_bound(), params.kappa);
  std::printf("violations: %llu\n", static_cast<unsigned long long>(
                                        system.total_violations()));
  return 0;
}
