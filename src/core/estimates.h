// Cluster-clock estimates (Corollary 3.5).
//
// A node v adjacent to cluster B estimates B's cluster clock by running a
// passive ClusterSync replica that listens to the pulses of B's members.
// The replica's logical clock — driven by v's own hardware clock, with
// γ ≡ 0 and the usual δ corrections — is the estimate L̃_vB(t). The
// Lynch–Welch analysis applies unchanged to the replica (its nominal rate
// lies in the same [1, ϑ_g] envelope), so |L̃_vB(t) − L_B(t)| ≤ E.
//
// EstimateBank owns one replica per adjacent cluster and routes pulses.
#pragma once

#include <memory>
#include <vector>

#include "core/cluster_sync.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ftgcs::core {

class EstimateBank {
 public:
  /// Creates one passive replica per cluster in `adjacent_clusters`.
  /// `start_rounds`, if non-empty, gives each replica's initial round
  /// (parallel to `adjacent_clusters`); used when the observed clusters
  /// start with whole-round logical offsets and the estimates are assumed
  /// pre-synchronized (paper's flooding-based initialization).
  EstimateBank(sim::Simulator& simulator, const ClusterSyncConfig& cfg,
               const std::vector<int>& adjacent_clusters,
               double initial_hardware_rate, sim::Rng& rng,
               const std::vector<int>& start_rounds = {});

  /// Starts all replicas (at the global time-0 initialization).
  void start();

  /// Routes a pulse iff `cluster` has a replica here; returns whether it
  /// was routed. One scan replaces the caller's adjacency check + the
  /// routing lookup on the per-pulse hot path.
  bool route_pulse(int cluster, int member_index, sim::Time now);

  /// L̃_vB(now) for adjacent cluster B = `cluster`.
  double estimate(int cluster, sim::Time now) const;

  /// L̃ of the replica at position `index` in clusters() order — the
  /// round-start trigger path, which iterates positions and must not pay
  /// the by-cluster scan per estimate.
  double estimate_at(std::size_t index, sim::Time now) const {
    return replicas_[index]->clock().read(now);
  }

  /// Estimates of all adjacent clusters, in the order given at
  /// construction (matching `clusters()`).
  std::vector<double> all_estimates(sim::Time now) const;

  const std::vector<int>& clusters() const { return order_; }

  /// Forwards a hardware-rate change to every replica clock.
  void set_hardware_rate(sim::Time now, double rate);

  /// Aggregate proper-execution violations across replicas.
  std::uint64_t violations() const;

  /// Crash-stop: halts every replica (see ClusterSyncEngine::halt).
  void halt();

  ClusterSyncEngine& replica(int cluster);

  /// Replica at position `index` in clusters() order (NodeTable adoption).
  ClusterSyncEngine& replica_at(std::size_t index) {
    return *replicas_[index];
  }

 private:
  int find_index(int cluster) const;      ///< −1 if not adjacent
  std::size_t index_for(int cluster) const;  ///< aborts if not adjacent

  std::vector<int> order_;
  /// Parallel to order_. Pulse routing is a linear scan over order_ —
  /// adjacency degrees are small, and the scan beats a map's pointer chase
  /// on every delivery.
  std::vector<std::unique_ptr<ClusterSyncEngine>> replicas_;
  /// Indices into replicas_ in ascending-cluster order; start() and rate
  /// changes iterate this to keep the event schedule identical to the
  /// original (map-ordered) implementation.
  std::vector<std::size_t> by_cluster_;
};

}  // namespace ftgcs::core
