#include "byz/fault_plan.h"

#include <algorithm>

#include "sim/rng.h"
#include "support/assert.h"

namespace ftgcs::byz {

void FaultPlan::add(FaultSpec spec) {
  FTGCS_EXPECTS(spec.node >= 0);
  FTGCS_EXPECTS(!contains(spec.node));
  specs_.push_back(spec);
}

bool FaultPlan::contains(int node) const {
  return std::any_of(specs_.begin(), specs_.end(),
                     [node](const FaultSpec& s) { return s.node == node; });
}

int FaultPlan::max_faults_per_cluster(
    const net::AugmentedTopology& topo) const {
  std::vector<int> counts(topo.num_clusters(), 0);
  for (const FaultSpec& spec : specs_) {
    ++counts[topo.cluster_of(spec.node)];
  }
  return counts.empty() ? 0
                        : *std::max_element(counts.begin(), counts.end());
}

namespace {

/// Picks `count` distinct member indices of `cluster` uniformly at random.
std::vector<int> pick_members(const net::AugmentedTopology& topo, int cluster,
                              int count, sim::Rng& rng) {
  FTGCS_EXPECTS(count <= topo.cluster_size());
  std::vector<int> indices(topo.cluster_size());
  for (int i = 0; i < topo.cluster_size(); ++i) indices[i] = i;
  // Partial Fisher–Yates.
  for (int i = 0; i < count; ++i) {
    const auto j =
        i + static_cast<int>(rng.below(indices.size() - i));
    std::swap(indices[i], indices[j]);
  }
  std::vector<int> chosen(indices.begin(), indices.begin() + count);
  std::vector<int> nodes;
  nodes.reserve(count);
  for (int index : chosen) nodes.push_back(topo.node(cluster, index));
  return nodes;
}

}  // namespace

FaultPlan FaultPlan::uniform(const net::AugmentedTopology& topo, int count,
                             StrategyKind kind, double param,
                             std::uint64_t seed) {
  FaultPlan plan;
  sim::Rng rng(seed);
  for (int c = 0; c < topo.num_clusters(); ++c) {
    for (int node : pick_members(topo, c, count, rng)) {
      plan.add({node, kind, param});
    }
  }
  return plan;
}

FaultPlan FaultPlan::in_cluster(const net::AugmentedTopology& topo,
                                int cluster, int count, StrategyKind kind,
                                double param, std::uint64_t seed) {
  FTGCS_EXPECTS(cluster >= 0 && cluster < topo.num_clusters());
  FaultPlan plan;
  sim::Rng rng(seed);
  for (int node : pick_members(topo, cluster, count, rng)) {
    plan.add({node, kind, param});
  }
  return plan;
}

FaultPlan FaultPlan::iid(const net::AugmentedTopology& topo, double p,
                         StrategyKind kind, double param,
                         std::uint64_t seed) {
  FTGCS_EXPECTS(p >= 0.0 && p <= 1.0);
  FaultPlan plan;
  sim::Rng rng(seed);
  for (int node = 0; node < topo.num_nodes(); ++node) {
    if (rng.chance(p)) plan.add({node, kind, param});
  }
  return plan;
}

}  // namespace ftgcs::byz
