// Non-fault-tolerant GCS baseline — the algorithm of Lenzen, Locher &
// Wattenhofer [13] (in the trigger formulation of [10]) on a *plain* graph.
//
// This is the algorithm the paper renders fault-tolerant. It serves two
// purposes here:
//  (1) fault-free reference: local skew Θ(log D) on lines/rings;
//  (2) the motivating negative result (§1: "The GCS algorithm utterly
//      fails in face of non-benign faults"): a single Byzantine node that
//      advertises different clock values to different neighbors tears the
//      logical clocks of correct nodes apart (experiment E8).
//
// Estimation model: every node broadcasts a timestamped share of its
// logical clock every `broadcast_period` (logical time). A receiver
// estimates the neighbor's clock as
//     L̃_w(t) = L_w(t_recv)^(msg) + (d − U/2) + (H_v(t) − H_v(t_recv)),
// i.e., it advances the received timestamp with its own hardware clock and
// compensates the expected delay. The estimate error is at most
//     ε = U/2 + (ϑ̂ − 1)·(d + P)   with ϑ̂ = (1+ρ)(1+µ), P the period —
// the trigger slack δ is set to 2ε and κ = 3δ (mirroring Lemma 4.8).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "clocks/hardware_clock.h"
#include "clocks/logical_clock.h"
#include "clocks/logical_timer.h"
#include "core/triggers.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ftgcs::gcs {

struct GcsParams {
  /// Mode rule. kTrigger is the Θ(log D) algorithm of [13]/[10];
  /// kOblivious is the O(√D) predecessor of Locher & Wattenhofer [15]:
  /// run fast whenever some neighbor is ahead, unless some neighbor lags
  /// more than the blocking threshold B (≈ √D̂·κ).
  enum class Rule { kTrigger, kOblivious };

  double rho = 0.0;
  double d = 0.0;
  double U = 0.0;
  double mu = 0.0;               ///< fast-mode speedup
  double broadcast_period = 0.0; ///< logical time between shares
  double slack = 0.0;            ///< trigger slack δ
  double kappa = 0.0;            ///< level unit κ
  Rule rule = Rule::kTrigger;
  double blocking = 0.0;         ///< B (kOblivious only)

  /// Derives slack/κ from the estimate-error analysis above.
  static GcsParams derive(double rho, double d, double U, double mu,
                          double broadcast_period);

  /// Same, for the oblivious rule with diameter hint `diameter`.
  static GcsParams derive_oblivious(double rho, double d, double U, double mu,
                                    double broadcast_period, int diameter);

  /// Estimate error bound ε.
  double estimate_error() const;
};

class GcsNode final : public net::PulseSink,
                      public clocks::LogicalTimerSet::Client {
 public:
  GcsNode(sim::Simulator& simulator, net::Network& network,
          const GcsParams& params, int node_id,
          const std::vector<int>& neighbors);

  void start();

  void on_pulse(const net::Pulse& pulse, sim::Time now) override;

  /// Typed share-tick timer.
  void on_logical_timer(clocks::LogicalTimerSet::Key key) override;

  /// Drift sink.
  void set_hardware_rate(sim::Time now, double rate);

  double logical(sim::Time now) const { return clock_.read(now); }
  int gamma() const { return clock_.gamma(); }

  /// Current estimate of neighbor `w`'s logical clock (nullopt before the
  /// first share arrives).
  std::optional<double> estimate(int w, sim::Time now) const;

 private:
  void broadcast_share(sim::Time now);
  void evaluate_triggers(sim::Time now);
  void arm_next(double logical_target);

  sim::Simulator& sim_;
  net::Network& net_;
  GcsParams params_;
  int id_;
  std::vector<int> neighbors_;

  clocks::HardwareClock hardware_;
  clocks::LogicalClock clock_;
  clocks::LogicalTimerSet timers_;

  struct Neighbor {
    double value = 0.0;      ///< timestamp from the last share
    double hardware_at = 0.0;///< H_v at reception
    bool seen = false;
  };
  std::vector<Neighbor> last_share_;  ///< parallel to neighbors_
  std::vector<double> estimates_buf_;  ///< reused by evaluate_triggers
  double next_tick_ = 0.0;
};

}  // namespace ftgcs::gcs
