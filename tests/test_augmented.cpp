// Augmentation G → G: node/edge counts must match the paper's overhead
// claims (×k nodes, cluster cliques + complete bipartite bundles).
#include "net/augmented.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ftgcs::net {
namespace {

TEST(Augmented, NodeCountIsClustersTimesK) {
  const AugmentedTopology topo(Graph::line(5), 4);
  EXPECT_EQ(topo.num_clusters(), 5);
  EXPECT_EQ(topo.cluster_size(), 4);
  EXPECT_EQ(topo.num_nodes(), 20);
}

TEST(Augmented, EdgeCountFormula) {
  // |E| = |C|·k(k−1)/2  +  |E|·k².
  const int k = 4;
  const Graph g = Graph::line(5);  // 4 cluster edges
  const AugmentedTopology topo(g, k);
  const std::size_t expected = 5u * (k * (k - 1) / 2) + 4u * k * k;
  EXPECT_EQ(topo.num_edges(), expected);
}

TEST(Augmented, IdMappingRoundTrips) {
  const AugmentedTopology topo(Graph::ring(3), 4);
  for (int c = 0; c < topo.num_clusters(); ++c) {
    for (int i = 0; i < topo.cluster_size(); ++i) {
      const int id = topo.node(c, i);
      EXPECT_EQ(topo.cluster_of(id), c);
      EXPECT_EQ(topo.index_in_cluster(id), i);
    }
  }
}

TEST(Augmented, MembersListMatchesMapping) {
  const AugmentedTopology topo(Graph::line(3), 4);
  for (int c = 0; c < 3; ++c) {
    const auto& members = topo.members(c);
    ASSERT_EQ(members.size(), 4u);
    for (int m : members) EXPECT_EQ(topo.cluster_of(m), c);
  }
}

TEST(Augmented, ClusterEdgesFormClique) {
  const AugmentedTopology topo(Graph::line(2), 4);
  const auto& adj = topo.adjacency();
  // Within cluster 0: each of the 4 nodes sees the other 3.
  for (int i = 0; i < 4; ++i) {
    int in_cluster = 0;
    for (int nb : adj[i]) {
      if (topo.cluster_of(nb) == 0) ++in_cluster;
    }
    EXPECT_EQ(in_cluster, 3);
  }
}

TEST(Augmented, InterclusterEdgesAreCompleteBipartite) {
  const AugmentedTopology topo(Graph::line(2), 4);
  const auto& adj = topo.adjacency();
  for (int i = 0; i < 4; ++i) {
    int across = 0;
    for (int nb : adj[i]) {
      if (topo.cluster_of(nb) == 1) ++across;
    }
    EXPECT_EQ(across, 4);  // sees every member of the adjacent cluster
  }
}

TEST(Augmented, NonAdjacentClustersNotConnected) {
  const AugmentedTopology topo(Graph::line(3), 3);
  const auto& adj = topo.adjacency();
  for (int nb : adj[topo.node(0, 0)]) {
    EXPECT_NE(topo.cluster_of(nb), 2);
  }
}

TEST(Augmented, AdjacencyIsSymmetric) {
  const AugmentedTopology topo(Graph::ring(4), 4);
  const auto& adj = topo.adjacency();
  for (int v = 0; v < topo.num_nodes(); ++v) {
    for (int w : adj[v]) {
      const auto& back = adj[w];
      EXPECT_TRUE(std::find(back.begin(), back.end(), v) != back.end());
    }
  }
}

TEST(Augmented, DegreeMatchesPaperOverheadClaim) {
  // Degree = (k−1) + k·deg_G(C): Θ(f) per unit of cluster degree.
  const int k = 7;  // f = 2
  const AugmentedTopology topo(Graph::line(3), k);
  const auto& adj = topo.adjacency();
  // Middle cluster has cluster-degree 2.
  EXPECT_EQ(adj[topo.node(1, 0)].size(),
            static_cast<std::size_t>((k - 1) + 2 * k));
  // End cluster has cluster-degree 1.
  EXPECT_EQ(adj[topo.node(0, 0)].size(),
            static_cast<std::size_t>((k - 1) + k));
}

TEST(Augmented, KOneDegeneratesToPlainGraph) {
  const AugmentedTopology topo(Graph::ring(5), 1);
  EXPECT_EQ(topo.num_nodes(), 5);
  EXPECT_EQ(topo.num_edges(), 5u);
}

}  // namespace
}  // namespace ftgcs::net
