// M1 — microbenchmarks of the simulation substrate and the protocol hot
// paths (google-benchmark).
#include <benchmark/benchmark.h>

#include "byz/fault_plan.h"
#include "core/ftgcs_system.h"
#include "core/triggers.h"
#include "net/graph.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace ftgcs;

void BM_EventQueueScheduleFire(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < 1000; ++i) {
      queue.schedule(rng.next_double(), [] {});
    }
    while (!queue.empty()) {
      queue.pop().fn();
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  sim::Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(queue.schedule(rng.next_double(), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      queue.cancel(ids[i]);
    }
    while (!queue.empty()) {
      queue.pop().fn();
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

// The typed path is what the protocol stack actually runs on (pulses,
// timers, drift, probes): POD payload, slot pool, no closures, no
// allocation after warm-up. Counters are events/sec.

void BM_EventEngineTypedScheduleFire(benchmark::State& state) {
  sim::Rng rng(6);
  struct Sink final : sim::EventSink {
    void on_event(sim::EventKind, const sim::EventPayload&,
                  sim::Time) override {}
  } sink;
  sim::EventQueue queue;
  queue.reserve(1000);
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      queue.schedule_typed(rng.next_double(), sim::EventKind::kPulse, 0, {});
    }
    while (!queue.empty()) {
      auto fired = queue.pop();
      sink.on_event(fired.kind, fired.payload, fired.at);
    }
    events += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventEngineTypedScheduleFire);

void BM_EventEngineTypedCancelHeavy(benchmark::State& state) {
  sim::Rng rng(7);
  sim::EventQueue queue;
  queue.reserve(1000);
  std::uint64_t events = 0;
  std::vector<sim::EventId> ids;
  ids.reserve(1000);
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(queue.schedule_typed(rng.next_double(),
                                         sim::EventKind::kTimer, 0, {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      queue.cancel(ids[i]);
    }
    while (!queue.empty()) {
      queue.pop();
    }
    events += 1000;
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventEngineTypedCancelHeavy);

void BM_EventEngineReschedule(benchmark::State& state) {
  // The logical-timer re-aim pattern: a standing population of timers
  // whose fire times move on every clock-rate change.
  sim::Rng rng(8);
  sim::EventQueue queue;
  queue.reserve(256);
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 256; ++i) {
    ids.push_back(queue.schedule_typed(1e9 + rng.next_double(),
                                       sim::EventKind::kTimer, 0, {}));
  }
  for (auto _ : state) {
    for (auto& id : ids) {
      queue.reschedule(id, 1e9 + rng.next_double());
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventEngineReschedule);

void BM_TriggerEvaluation(benchmark::State& state) {
  sim::Rng rng(3);
  std::vector<double> neighbors(state.range(0));
  for (auto& est : neighbors) est = rng.uniform(-50.0, 50.0);
  const core::TriggerView view{0.0, neighbors};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fast_trigger(view, 3.0, 1.0));
    benchmark::DoNotOptimize(core::slow_trigger(view, 3.0, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TriggerEvaluation)->Arg(2)->Arg(8)->Arg(32);

void BM_SingleClusterRound(benchmark::State& state) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  for (auto _ : state) {
    state.PauseTiming();
    core::FtGcsSystem::Config config;
    config.params = params;
    config.seed = 4;
    core::FtGcsSystem system(net::Graph::line(1), std::move(config));
    system.start();
    state.ResumeTiming();
    system.run_until(10.0 * params.T);
    benchmark::DoNotOptimize(system.simulator().fired_events());
  }
  state.SetItemsProcessed(state.iterations() * 10);  // rounds
}
BENCHMARK(BM_SingleClusterRound);

void BM_SystemEventThroughput(benchmark::State& state) {
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  const int clusters = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::FtGcsSystem::Config config;
    config.params = params;
    config.seed = 5;
    core::FtGcsSystem system(net::Graph::line(clusters), std::move(config));
    system.start();
    state.ResumeTiming();
    system.run_until(5.0 * params.T);
    events += system.simulator().fired_events();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemEventThroughput)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
