#include "core/estimates.h"

#include <algorithm>

#include "support/assert.h"

namespace ftgcs::core {

EstimateBank::EstimateBank(sim::Simulator& simulator,
                           const ClusterSyncConfig& cfg,
                           const std::vector<int>& adjacent_clusters,
                           double initial_hardware_rate, sim::Rng& rng,
                           const std::vector<int>& start_rounds)
    : order_(adjacent_clusters) {
  FTGCS_EXPECTS(start_rounds.empty() ||
                start_rounds.size() == order_.size());
  ClusterSyncConfig passive_cfg = cfg;
  passive_cfg.active = false;
  replicas_.reserve(order_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const int cluster = order_[i];
    FTGCS_EXPECTS(std::count(order_.begin(), order_.end(), cluster) == 1);
    passive_cfg.start_round = start_rounds.empty() ? 1 : start_rounds[i];
    replicas_.push_back(std::make_unique<ClusterSyncEngine>(
        simulator, passive_cfg, initial_hardware_rate,
        rng.fork(static_cast<std::uint64_t>(cluster) + 1)));
  }
  by_cluster_.resize(order_.size());
  for (std::size_t i = 0; i < by_cluster_.size(); ++i) by_cluster_[i] = i;
  std::sort(by_cluster_.begin(), by_cluster_.end(),
            [this](std::size_t a, std::size_t b) {
              return order_[a] < order_[b];
            });
}

int EstimateBank::find_index(int cluster) const {
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == cluster) return static_cast<int>(i);
  }
  return -1;
}

std::size_t EstimateBank::index_for(int cluster) const {
  const int i = find_index(cluster);
  FTGCS_EXPECTS(i >= 0 && "cluster not adjacent");
  return static_cast<std::size_t>(i);
}

void EstimateBank::start() {
  for (std::size_t i : by_cluster_) replicas_[i]->start();
}

bool EstimateBank::route_pulse(int cluster, int member_index, sim::Time now) {
  const int i = find_index(cluster);
  if (i < 0) return false;
  replicas_[static_cast<std::size_t>(i)]->on_member_pulse(member_index, now);
  return true;
}

double EstimateBank::estimate(int cluster, sim::Time now) const {
  return replicas_[index_for(cluster)]->clock().read(now);
}

std::vector<double> EstimateBank::all_estimates(sim::Time now) const {
  std::vector<double> values;
  values.reserve(order_.size());
  for (int cluster : order_) values.push_back(estimate(cluster, now));
  return values;
}

void EstimateBank::set_hardware_rate(sim::Time now, double rate) {
  for (std::size_t i : by_cluster_) {
    replicas_[i]->set_hardware_rate(now, rate);
  }
}

void EstimateBank::halt() {
  for (auto& replica : replicas_) replica->halt();
}

std::uint64_t EstimateBank::violations() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->violations();
  return total;
}

ClusterSyncEngine& EstimateBank::replica(int cluster) {
  return *replicas_[index_for(cluster)];
}

}  // namespace ftgcs::core
