// Cluster clocks (Definition 3.3) and Observation 3.4: the cluster clock
// L_C = (L⁺ + L⁻)/2 inherits any rate envelope its correct members
// satisfy. Plus estimate accuracy of the plain-GCS baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "ftgcs.h"

namespace ftgcs {
namespace {

TEST(ClusterClocks, Observation34RateEnvelope) {
  // Members' logical rates lie in [1, ϑ_max]; the cluster clock's
  // amortized rate over any interval must too.
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 13;
  for (int c = 0; c < 3; ++c) config.cluster_round_offsets.push_back(4 * c);
  core::FtGcsSystem system(net::Graph::line(3), std::move(config));
  system.start();

  std::vector<double> previous(3);
  sim::Time prev_time = 0.0;
  for (int c = 0; c < 3; ++c) previous[c] = 4.0 * c * params.T;
  for (int step = 1; step <= 120; ++step) {
    system.run_until(step * params.T / 2.0);
    const sim::Time now = system.simulator().now();
    for (int c = 0; c < 3; ++c) {
      const double value = *system.cluster_clock(c);
      const double rate = (value - previous[c]) / (now - prev_time);
      EXPECT_GE(rate, 1.0 - 1e-9) << "cluster " << c << " step " << step;
      EXPECT_LE(rate, params.max_logical_rate() + 1e-9)
          << "cluster " << c << " step " << step;
      previous[c] = value;
    }
    prev_time = now;
  }
}

TEST(ClusterClocks, MidpointOfExtremesDefinition) {
  // Definition 3.3 exactly: L_C = (max + min)/2 over correct members.
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  net::AugmentedTopology topo(net::Graph::line(1), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 14;
  config.fault_plan = byz::FaultPlan::in_cluster(
      topo, 0, 1, byz::StrategyKind::kSilent, 0.0, 14);
  core::FtGcsSystem system(net::Graph::line(1), std::move(config));
  system.start();
  system.run_until(10.0 * params.T);

  double lo = 1e300;
  double hi = -1e300;
  for (int member : topo.members(0)) {
    if (!system.is_correct(member)) continue;
    const double value = system.node_logical(member);
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  EXPECT_NEAR(*system.cluster_clock(0), (lo + hi) / 2.0, 1e-12);
}

TEST(GcsEstimates, TrackNeighborWithinDerivedError) {
  // The plain-GCS estimate L̃_w(t) = share + (d − U/2) + elapsed must stay
  // within the derived ε of the true L_w(t).
  gcs::GcsSystem::Config config;
  config.params = gcs::GcsParams::derive(1e-3, 1.0, 0.1, 0.05, 1.0);
  config.seed = 15;
  const double eps = config.params.estimate_error();
  gcs::GcsSystem system(net::Graph::line(3), std::move(config));
  system.start();
  // (Access estimates through the node; spot-check multiple instants.)
  system.run_until(5.0);
  double worst = 0.0;
  for (int step = 1; step <= 100; ++step) {
    system.run_until(5.0 + step * 0.5);
    // GcsSystem doesn't expose nodes directly; compare logical values of
    // neighbors as a conservative proxy: if estimates were off by more
    // than ε + trigger band, the mode logic would push them apart.
    worst = std::max(worst, std::abs(system.node_logical(0) -
                                     system.node_logical(1)));
  }
  EXPECT_LE(worst, config.params.kappa + eps);
}

TEST(ClusterClocks, SurvivingMajorityDefinesClock) {
  // With f silent members, the cluster clock follows the live ones, and
  // crashing another (over budget but benign-only) narrows it further —
  // the accessor must keep working down to a single live member.
  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  net::AugmentedTopology topo(net::Graph::line(1), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 16;
  config.fault_plan = byz::FaultPlan::in_cluster(
      topo, 0, 1, byz::StrategyKind::kSilent, 0.0, 16);
  core::FtGcsSystem system(net::Graph::line(1), std::move(config));
  int crashed = 0;
  for (int member : topo.members(0)) {
    if (system.is_correct(member) && crashed < 2) {
      system.node(member).crash_at((5.0 + crashed) * params.T);
      ++crashed;
    }
  }
  system.start();
  system.run_until(20.0 * params.T);
  ASSERT_TRUE(system.cluster_clock(0).has_value());
  EXPECT_GT(*system.cluster_clock(0), 15.0 * params.T);
}

}  // namespace
}  // namespace ftgcs
