// Narrow observability tap for the delivery hot path.
//
// net::Network mirrors every pulse delivery it fires — single-event and
// batched alike — to an installed TraceSink. The interface is deliberately
// minimal (raw fire time + encoded kPulse payload, no decoding, no
// ownership, no heavy includes) so the network can depend on it without
// pulling the trace subsystem into its hot path: with no sink installed the
// entire cost of tracing is one predictable null-pointer branch per
// delivery (batch deliveries pay it once per drained run).
//
// The hook lives on the NETWORK, not the simulator, on purpose: pulse
// deliveries are the one event family that fires exactly once per record
// on the destination's owner shard in a sharded run (cut deliveries are
// replayed into the destination shard's network; see par/sharded_system),
// so the captured multiset is partition-invariant. Timers, drift ticks and
// probes are per-shard duplicated machinery and would break the
// byte-identical-across-`--shards T` contract of trace files.
#pragma once

#include <cstddef>

#include "sim/event.h"
#include "sim/time_types.h"

namespace ftgcs::trace {

class TraceSink {
 public:
  /// One fired delivery: `at` is the arrival (fire) time, `payload` the
  /// encoded kPulse event (a = sender, b = level, c = dest, d = PulseKind,
  /// x = value). Called from the firing simulator's thread.
  virtual void on_delivery(sim::Time at, const sim::EventPayload& payload) = 0;

  /// A drained run of pure-receive deliveries (each item carries its own
  /// fire time). The default replays them through on_delivery.
  virtual void on_delivery_batch(const sim::BatchedEvent* events,
                                 std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      on_delivery(events[i].at, events[i].payload);
    }
  }

 protected:
  ~TraceSink() = default;  // never deleted through the interface
};

}  // namespace ftgcs::trace
