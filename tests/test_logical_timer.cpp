// LogicalTimerSet: timers aimed at logical values must fire at the exact
// Newtonian instant the (rate-changing) clock reaches the target.
#include <gtest/gtest.h>

#include "clocks/logical_clock.h"
#include "clocks/logical_timer.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ftgcs::clocks {
namespace {

struct Fixture {
  sim::Simulator sim;
  LogicalClock clock{0.5, 0.0, 1.0};  // initial rate (1+0.5·1) = 1.5
  LogicalTimerSet timers{sim, clock};
};

TEST(LogicalTimer, FiresAtExactLogicalTarget) {
  Fixture fx;
  sim::Time fired_at = -1.0;
  fx.timers.arm(1, 3.0, [&] { fired_at = fx.sim.now(); });
  fx.sim.run_until(10.0);
  EXPECT_NEAR(fired_at, 2.0, 1e-12);  // 3.0 logical / 1.5 rate
  EXPECT_NEAR(fx.clock.read(fired_at), 3.0, 1e-12);
}

TEST(LogicalTimer, ReschedulesWhenClockSpeedsUp) {
  Fixture fx;
  sim::Time fired_at = -1.0;
  fx.timers.arm(1, 6.0, [&] { fired_at = fx.sim.now(); });
  // At t=1 (L=1.5) double the speed: remaining 4.5 logical at rate 3.0.
  fx.sim.at(1.0, [&] { fx.clock.set_delta(1.0, 3.0); });  // (1+1.5)=2.5? no:
  // δ=3 → rate (1+0.5·3)=2.5. Remaining 4.5 / 2.5 = 1.8 → fires at 2.8.
  fx.sim.run_until(10.0);
  EXPECT_NEAR(fired_at, 2.8, 1e-12);
  EXPECT_NEAR(fx.clock.read(fired_at), 6.0, 1e-12);
}

TEST(LogicalTimer, ReschedulesWhenClockSlowsDown) {
  Fixture fx;
  sim::Time fired_at = -1.0;
  fx.timers.arm(1, 6.0, [&] { fired_at = fx.sim.now(); });
  // At t=2 (L=3.0) slow to rate 1.0 (δ=0): remaining 3.0 at rate 1 → t=5.
  fx.sim.at(2.0, [&] { fx.clock.set_delta(2.0, 0.0); });
  fx.sim.run_until(10.0);
  EXPECT_NEAR(fired_at, 5.0, 1e-12);
}

TEST(LogicalTimer, CancelPreventsFiring) {
  Fixture fx;
  bool fired = false;
  fx.timers.arm(1, 3.0, [&] { fired = true; });
  fx.timers.cancel(1);
  fx.sim.run_until(10.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(fx.timers.armed_count(), 0u);
}

TEST(LogicalTimer, RearmReplacesTarget) {
  Fixture fx;
  sim::Time fired_at = -1.0;
  int count = 0;
  fx.timers.arm(1, 3.0, [&] { ++count; });
  fx.timers.arm(1, 6.0, [&] {
    ++count;
    fired_at = fx.sim.now();
  });
  fx.sim.run_until(10.0);
  EXPECT_EQ(count, 1);
  EXPECT_NEAR(fired_at, 4.0, 1e-12);
}

TEST(LogicalTimer, MultipleKeysIndependent) {
  Fixture fx;
  std::vector<int> order;
  fx.timers.arm(1, 4.5, [&] { order.push_back(1); });
  fx.timers.arm(2, 1.5, [&] { order.push_back(2); });
  fx.timers.arm(3, 3.0, [&] { order.push_back(3); });
  fx.sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(LogicalTimer, PastTargetFiresImmediately) {
  Fixture fx;
  fx.sim.run_until(2.0);  // L = 3.0
  sim::Time fired_at = -1.0;
  fx.timers.arm(1, 1.0, [&] { fired_at = fx.sim.now(); });
  fx.sim.run_until(3.0);
  EXPECT_DOUBLE_EQ(fired_at, 2.0);
}

TEST(LogicalTimer, CallbackMayChangeRateWithoutCorruption) {
  Fixture fx;
  sim::Time second_fire = -1.0;
  fx.timers.arm(2, 6.0, [&] { second_fire = fx.sim.now(); });
  fx.timers.arm(1, 3.0, [&] {
    // Fires at t=2; slowing down moves timer 2 from t=4 to 2+3/1 = 5.
    fx.clock.set_delta(fx.sim.now(), 0.0);
  });
  fx.sim.run_until(10.0);
  EXPECT_NEAR(second_fire, 5.0, 1e-12);
}

// Property: under random rate changes the timer fires exactly when the
// clock reads the target (within floating-point slack).
TEST(LogicalTimer, RandomRateChangesProperty) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Simulator sim;
    LogicalClock clock(0.3, 0.1, 1.0);
    LogicalTimerSet timers(sim, clock);
    sim::Rng rng(seed);

    const double target = 50.0;
    sim::Time fired_at = -1.0;
    timers.arm(1, target, [&] { fired_at = sim.now(); });
    for (int i = 1; i < 40; ++i) {
      const sim::Time t = 0.5 * i;
      sim.at(t, [&clock, &rng, t] {
        clock.set_delta(t, rng.uniform(0.0, 2.0));
        clock.set_gamma(t, rng.chance(0.5) ? 1 : 0);
        clock.set_hardware_rate(t, rng.uniform(1.0, 1.001));
      });
    }
    sim.run_until(100.0);
    ASSERT_GE(fired_at, 0.0) << "seed " << seed;
    EXPECT_NEAR(clock.read(fired_at), target, 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ftgcs::clocks
