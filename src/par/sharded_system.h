// Sharded conservative-parallel execution of ONE FT-GCS run.
//
// The sweep runner parallelizes across scenario tasks; this backend
// parallelizes inside a single large run. The cluster graph is striped
// into T shards (par/partition.h); each shard owns a full FtGcsSystem
// instance scoped to its clusters — its own Simulator + EventQueue,
// Network, NodeTable slice and worker thread — and all shards advance in
// lock-step safe windows of width
//
//     W = min_cut_delay = min over cut edges of (d − u),
//
// the paper's minimum message delay. Inside a window [B, B + W) every
// shard drains its queue locally (pure-receive pulse runs still batch
// through the pop_run channel); a delivery crossing the cut is appended,
// with its sampled arrival time, to the source→destination SPSC mailbox.
// Any such arrival is ≥ B + W, i.e. in a later window, so shards cannot
// affect each other mid-window; at the barrier each shard merges its
// inbound mailboxes in deterministic (time, sender, sender-seq) order and
// seeds them into its queue before the next window.
//
// Determinism is a hard invariant, not best-effort: construction forks
// node RNGs by id, channel streams per directed edge, and drift draws per
// node index — all partition-invariant — so every node's execution, and
// therefore the scenario tables, are bit-identical to the single-threaded
// engine for every T (pinned by tests/test_par_shards.cpp). The one
// boundary: two *distinct* senders whose pulses reach the same node at
// exactly the same instant are ordered (sender, seq) here but global-FIFO
// in the single simulator; with continuously-sampled channel delays such
// cross-sender ties do not occur.
//
// When the plan degenerates (T ≤ 1 after clamping, or a zero lookahead)
// callers must fall back to the ordinary FtGcsSystem — see
// ShardPlan::degenerate().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "byz/fault_plan.h"
#include "clocks/drift_model.h"
#include "core/ftgcs_system.h"
#include "core/node_table.h"
#include "core/params.h"
#include "net/graph.h"
#include "par/mailbox.h"
#include "par/partition.h"
#include "sim/backend.h"
#include "sim/event_queue.h"
#include "sim/time_types.h"

namespace ftgcs::trace {
class TraceCollector;
}

namespace ftgcs::obs {
class PhaseProfiler;
struct ShardWindowDiag;
}  // namespace ftgcs::obs

namespace ftgcs::par {

class ShardedFtGcsSystem {
 public:
  struct Config {
    core::Params params;
    std::uint64_t seed = 1;
    sim::QueueBackend engine = sim::QueueBackend::kLadder;
    bool enable_global_module = true;
    bool replicas_know_offsets = true;
    byz::FaultPlan fault_plan;
    std::vector<int> cluster_round_offsets;
    /// Requested shard count; the effective count after clamping is
    /// ShardPlan-driven (see num_shards()). Must be ≥ 2 — a degenerate
    /// plan belongs on the single-simulator engine, which the caller
    /// selects via make_shard_plan() BEFORE constructing this.
    int shards = 2;
    /// Optional pre-computed plan for this exact (graph, params.k,
    /// shards) triple — callers that already probed make_shard_plan()
    /// for degeneracy (exp::run_ftgcs) pass it in so construction does
    /// not redo the O(nodes + edges) cut census. Leave default
    /// (num_shards == 1) to have the constructor compute it.
    ShardPlan plan;
    /// Builds one drift model per shard. Called T times; every copy MUST
    /// be identically seeded (the copies replay the same per-node-index
    /// draws; each shard applies only its own nodes' rates). nullptr →
    /// the system default (deterministically spread constant drift).
    std::function<std::unique_ptr<clocks::DriftModel>()> drift_factory;
    /// Trace capture: each shard's Network gets collector->shard_sink(s)
    /// installed (deliveries fire exactly once, on the destination's
    /// owner shard, so the merged trace is byte-identical to an unsharded
    /// run). Owned by the caller, must outlive the system; the caller
    /// commits at quiesced probe boundaries. nullptr = tracing off.
    trace::TraceCollector* trace = nullptr;
    /// Shared immutable topology (see core::FtGcsSystem::Config): when
    /// set, neither the driver nor any shard builds its own augmented
    /// topology — all T + 1 consumers bind to this one. Must outlive the
    /// system. When unset the driver builds one copy and shares it with
    /// every shard (still one build total, not T).
    const net::AugmentedTopology* shared_topo = nullptr;
    /// Wall-clock phase profiler (the same null-branch pattern as
    /// `trace`): when set, each worker accumulates merge / run /
    /// barrier-wait time into its own shard slot and the driver stamps a
    /// "windows" span around the lock-step loop. Owned by the caller,
    /// must outlive the system; profiler-off cost is one branch per
    /// phase. All clock reads happen inside obs/phase_profiler.cpp —
    /// this file stays clock-free for the determinism lint.
    obs::PhaseProfiler* profiler = nullptr;
  };

  /// Deterministic, engine-independent diagnostics of one sharded run
  /// (reported via the --timing footer, never mixed into metric tables).
  struct ShardStats {
    int shards = 1;
    std::size_t cut_edges = 0;
    double min_cut_delay = 0.0;
    std::uint64_t windows = 0;       ///< safe windows executed
    std::size_t mailbox_peak = 0;    ///< max entries merged at one barrier
  };

  ShardedFtGcsSystem(net::Graph cluster_graph, Config config);
  ~ShardedFtGcsSystem();

  ShardedFtGcsSystem(const ShardedFtGcsSystem&) = delete;
  ShardedFtGcsSystem& operator=(const ShardedFtGcsSystem&) = delete;

  /// Starts every shard at the global time-0 initialization.
  void start();

  /// Advances every shard to exactly `t` through lock-step safe windows.
  void run_until(sim::Time t);

  /// Pins every shard's warmed-up capacity profile (see
  /// core::FtGcsSystem::prewarm). Call from the driver thread between
  /// windows — it touches shard state, so no phase may be in flight.
  void prewarm() {
    for (auto& shard : shards_) shard->prewarm();
  }

  sim::Time now() const { return now_; }
  int num_shards() const { return plan_.num_shards; }
  const ShardPlan& plan() const { return plan_; }
  const net::AugmentedTopology& topology() const { return *topo_; }
  const core::Params& params() const { return shards_.front()->params(); }

  /// Merged ground-truth snapshot (each node read from its owner shard).
  void snapshot_columns(core::SystemColumns& out) const;

  bool is_correct(int id) const { return owner(id).is_correct(id); }
  core::FtGcsNode& node(int id) { return owner(id).node(id); }
  const core::FtGcsNode& node(int id) const { return owner(id).node(id); }

  // ---- aggregated counters (single-simulator-equivalent totals) -------------
  /// Events the single-simulator engine would have fired: the sum over
  /// shards, minus the duplicate drift ticks of the per-shard model
  /// copies (every shard replays the same tick schedule).
  std::uint64_t fired_events() const;
  std::uint64_t messages_sent() const;
  std::uint64_t total_violations() const;
  /// Queue-tier diagnostics reduced over shards (max for occupancy
  /// figures, sum for event counters).
  sim::EventQueue::TierStats queue_stats() const;
  ShardStats shard_stats() const;

  /// Per-shard diagnostics for the profiler's "diag" rows (cut-edge
  /// arrivals merged, deepest single-barrier merge, events fired). Call
  /// from the driver at a quiesced boundary (workers parked).
  void shard_window_diag(std::vector<obs::ShardWindowDiag>& out) const;

 private:
  class Router;

  core::FtGcsSystem& owner(int id) {
    return *shards_[static_cast<std::size_t>(
        plan_.node_owner[static_cast<std::size_t>(id)])];
  }
  const core::FtGcsSystem& owner(int id) const {
    return *shards_[static_cast<std::size_t>(
        plan_.node_owner[static_cast<std::size_t>(id)])];
  }

  /// One lock-step phase: every worker merges its inbound mailboxes into
  /// its queue, then runs its simulator to `bound` (inclusive).
  void phase(sim::Time bound);
  void worker_loop(int shard);

  /// The ONE augmented topology of the whole run (built here unless
  /// Config::shared_topo supplied it); every shard borrows it. Declared
  /// before shards_ so it outlives them (and their queues' in-flight
  /// broadcast groups).
  std::unique_ptr<net::AugmentedTopology> owned_topo_;
  const net::AugmentedTopology* topo_ = nullptr;
  ShardPlan plan_;
  std::unique_ptr<MailboxGrid> mailboxes_;
  std::vector<std::unique_ptr<Router>> routers_;      // one per shard
  std::vector<std::unique_ptr<core::FtGcsSystem>> shards_;
  std::vector<std::int32_t> first_node_;  ///< contiguous owned id ranges
  double window_ = 0.0;                   ///< safe-window width (0 = ∞)

  // ---- worker coordination (barrier-phased; see worker_loop) ----------------
  std::vector<std::thread> workers_;
  struct Phases;                       // two std::barrier phases
  std::unique_ptr<Phases> phases_;
  sim::Time bound_ = 0.0;              ///< driver → workers: run target
  bool stop_ = false;                  ///< driver → workers: shut down
  std::vector<std::vector<RemoteEvent>> merge_scratch_;  // per shard
  std::vector<std::size_t> mailbox_peak_;                // per shard
  std::vector<std::uint64_t> routed_in_;  ///< cut arrivals merged, per shard
  obs::PhaseProfiler* profiler_ = nullptr;

  sim::Time now_ = sim::kTimeZero;
  std::uint64_t windows_ = 0;
  mutable core::SystemColumns snapshot_scratch_;
};

}  // namespace ftgcs::par
