// System builder: instantiates the full FT-GCS stack on an augmented graph
// — simulator, network, correct nodes, Byzantine nodes, drift — and exposes
// ground-truth state to metrics and experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "byz/fault_plan.h"
#include "byz/strategy.h"
#include "clocks/drift_model.h"
#include "core/ftgcs_node.h"
#include "core/node_table.h"
#include "core/params.h"
#include "net/augmented.h"
#include "net/graph.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ftgcs::trace {
class TraceSink;
}

namespace ftgcs::core {

/// Ground-truth state of every node at one instant.
struct SystemSnapshot {
  struct NodeState {
    int id = -1;
    int cluster = -1;
    bool correct = true;
    double logical = 0.0;
    int gamma = 0;
  };
  sim::Time at = 0.0;
  std::vector<NodeState> nodes;
};

class FtGcsSystem {
 public:
  /// Shard scoping for the conservative-parallel backend (src/par/): the
  /// system instantiates ONLY the nodes of clusters owned by `shard` and
  /// diverts deliveries to non-owned destinations through `router`
  /// (net::ShardRouter) instead of its own simulator. Clusters are never
  /// split — intra-cluster traffic, the Byzantine reference-round wiring
  /// and the quorum lanes all stay shard-local; only inter-cluster (cut)
  /// edges cross. All other construction (topology, RNG forks per node
  /// id, drift draws per node index) is performed identically to an
  /// unsharded system, which is what makes per-node executions
  /// partition-invariant. `cluster_owner` and `router` are owned by the
  /// sharded driver and must outlive the system.
  struct ShardView {
    int shard = 0;
    int num_shards = 1;
    const std::int32_t* cluster_owner = nullptr;  ///< size num_clusters
    net::ShardRouter* router = nullptr;
    bool active() const { return num_shards > 1; }
  };

  struct Config {
    Params params;
    std::uint64_t seed = 1;
    bool enable_global_module = true;
    /// Event-scheduling front-end. The ladder (calendar-queue) backend is
    /// the default: it executes the same trace bit-for-bit (pinned by
    /// tests/test_engine_trace.cpp) and keeps scheduling O(1) at 40k-node
    /// populations. kHeap remains selectable for A/B runs.
    sim::QueueBackend engine = sim::QueueBackend::kLadder;
    /// nullptr → UniformDelay(d, U).
    std::unique_ptr<net::DelayModel> delay_model;
    /// nullptr → ConstantDrift(ρ, seed, spread over envelope).
    std::unique_ptr<clocks::DriftModel> drift_model;
    byz::FaultPlan fault_plan;

    /// Initial logical offset of each cluster, in whole rounds (cluster c
    /// starts at L = cluster_round_offsets[c]·T). Empty = all zero.
    /// Models the skew-absorption scenario ("newly inserted edges" in the
    /// dynamic-graph initialization of the paper).
    std::vector<int> cluster_round_offsets;
    /// If true, replicas start pre-aligned with the observed cluster's
    /// offset (the paper's flooding-based initialization establishes the
    /// estimates); if false, estimates start at 0 and must converge.
    bool replicas_know_offsets = true;

    /// Dynamic topology: cluster edges that start INACTIVE — physically
    /// present (pulses flow, replicas listen) but not considered by the
    /// triggers until activated (paper App. A / [9, 10]).
    std::vector<std::pair<int, int>> initially_inactive_edges;

    /// Heterogeneous edges (paper footnote 1): per-cluster-edge weight
    /// multiplying (κ, δ) on that edge — e.g. a WAN link whose estimate
    /// accuracy ε_e is 3× worse gets weight 3. Unlisted edges weigh 1.
    std::vector<std::tuple<int, int, double>> edge_weights;

    /// Shard scoping; default = unsharded (every cluster owned).
    ShardView shard;

    /// Shared immutable topology: when set, the system binds to this
    /// augmented topology (and its adjacency) by reference instead of
    /// building its own from `cluster_graph` — the sharded driver builds
    /// the O(E) structure ONCE and every shard reuses it, killing the
    /// O(T·E) per-shard setup term. Must have been built from the same
    /// cluster graph and params.k, and must outlive the system; the
    /// `cluster_graph` constructor argument is ignored when set.
    const net::AugmentedTopology* shared_topo = nullptr;

    /// Observability: mirror every fired pulse delivery to this sink
    /// (trace::TraceCollector::shard_sink). Owned by the caller, must
    /// outlive the system; nullptr = tracing off (one dead branch per
    /// delivery).
    trace::TraceSink* trace_sink = nullptr;
  };

  FtGcsSystem(net::Graph cluster_graph, Config config);

  /// Installs drift and starts every node at time 0.
  void start();

  void run_until(sim::Time t) { sim_.run_until(t); }

  /// Pins the warmed-up capacity profile of every lazily-grown runtime
  /// structure (queue bucket lanes, quorum windows) so that subsequent
  /// steady-state run_until windows perform zero allocations — the
  /// contract tests/test_alloc_guard.cpp asserts. Call after a few rounds
  /// of representative traffic; opt-in (costs memory proportional to the
  /// warmed high-water marks).
  void prewarm() {
    sim_.prewarm();
    table_.prewarm();
  }

  // ---- access ---------------------------------------------------------------
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *network_; }
  const net::AugmentedTopology& topology() const { return topo_; }
  const Params& params() const { return config_.params; }

  bool is_correct(int node) const { return nodes_[node] != nullptr; }
  FtGcsNode& node(int id);
  const FtGcsNode& node(int id) const;

  /// True iff this system instantiated node `id` (always true unsharded).
  bool owns(int id) const {
    const ShardView& view = config_.shard;
    return !view.active() ||
           view.cluster_owner[topo_.cluster_of(id)] == view.shard;
  }

  /// Drift events fired by this system's (per-shard) drift-model copy —
  /// the sharded driver subtracts the duplicate copies' fires so the
  /// reported event total matches the single-simulator engine.
  std::uint64_t drift_ticks_fired() const {
    return drift_ ? drift_->ticks_fired() : 0;
  }

  /// The columnar per-node state bank backing the flat dispatch path.
  const NodeTable& node_table() const { return table_; }
  NodeTable& node_table() { return table_; }

  int num_correct() const { return num_correct_; }

  /// L_v(now) for a correct node.
  double node_logical(int id) const;

  /// Cluster clock L_C = (L⁺ + L⁻)/2 over correct members (Def. 3.3).
  /// Returns nullopt if the cluster has no correct member.
  std::optional<double> cluster_clock(int cluster) const;

  SystemSnapshot snapshot() const;

  /// Columnar snapshot into a caller-owned buffer (reused across probes).
  void snapshot_columns(SystemColumns& out) const;

  /// Sum of proper-execution violations over all correct nodes.
  std::uint64_t total_violations() const;

  // ---- dynamic topology ------------------------------------------------
  /// Immediately (de)activates the consideration of cluster edge {b, c}
  /// on every correct member of both clusters. Models the outcome of the
  /// consensus the paper prescribes for consistent edge activation.
  void set_edge_active(int b, int c, bool active);

  /// Schedules set_edge_active(b, c, active) at absolute time `at`.
  void schedule_edge_toggle(int b, int c, bool active, sim::Time at);

 private:
  /// Built only when Config::shared_topo is unset; topo_ is the single
  /// access path either way. Declared first so everything that borrows
  /// from the topology (network adjacency, node tables, in-flight
  /// broadcast groups in the queue) is destroyed before it.
  std::unique_ptr<net::AugmentedTopology> owned_topo_;
  const net::AugmentedTopology& topo_;
  Config config_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<FtGcsNode>> nodes_;  // null for faulty ids
  std::vector<std::unique_ptr<byz::ByzantineNode>> byz_nodes_;
  NodeTable table_;  ///< columnar hot state; adopts the nodes' lanes
  std::unique_ptr<clocks::DriftModel> drift_;
  std::vector<std::uint8_t> remote_flags_;  ///< per node; sharded mode only
  int num_correct_ = 0;
  bool started_ = false;
};

}  // namespace ftgcs::core
