// ftgcs_report — render metrics series (JSONL written via
// `ftgcs_bench --metrics`) as human-readable tables.
//
//   ftgcs_report show <metrics.jsonl>     summary + convergence tables;
//                                         when a sibling <path>.profile
//                                         exists, shard phase/imbalance
//                                         and span tables too
//   ftgcs_report diff <a> <b>             A/B field-by-field comparison
//
// `diff` exits 0 when the two deterministic series are bit-equal
// trajectories and 1 when any shared field differs at any probe (the
// table shows the max |A−B| per field). Exit 2 = usage / unreadable or
// malformed file. The `show` command never opens the .profile sidecar's
// wall-clock sections for comparison — profiles are nondeterministic by
// contract and only ever rendered, never diffed.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.h"

namespace {

using namespace ftgcs;

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: ftgcs_report <show <metrics.jsonl> | diff <a> <b>>\n");
  std::exit(code);
}

/// Loads `path` or exits 2 with the parse/I/O error on stderr.
obs::SeriesData load_or_die(const std::string& path) {
  obs::SeriesData series;
  std::string error;
  if (!obs::load_series(path, &series, &error)) {
    std::fprintf(stderr, "ftgcs_report: %s\n", error.c_str());
    std::exit(2);
  }
  return series;
}

int cmd_show(const std::string& path) {
  const obs::SeriesData series = load_or_die(path);
  std::printf("%s: %zu probes\n", path.c_str(), series.rows.size());
  obs::render_summary(series, std::cout);
  obs::render_convergence(series, std::cout);
  // The .profile sidecar is optional (written only when the run had a
  // metrics path; absent for hand-copied series). Missing file: skip
  // quietly. Present-but-malformed: that is a real error, surface it.
  const std::string profile_path = path + ".profile";
  obs::SeriesData profile;
  std::string error;
  if (obs::load_series(profile_path, &profile, &error)) {
    std::printf("\n%s:\n", profile_path.c_str());
    obs::render_profile(profile, std::cout);
  } else if (error.find("cannot open") == std::string::npos) {
    std::fprintf(stderr, "ftgcs_report: %s\n", error.c_str());
    return 2;
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const obs::SeriesData a = load_or_die(path_a);
  const obs::SeriesData b = load_or_die(path_b);
  const int differing = obs::render_diff(a, b, std::cout);
  if (differing == 0) {
    std::printf("identical trajectories: %zu probes\n", a.rows.size());
    return 0;
  }
  std::printf("%d field(s) differ\n", differing);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "--help" || command == "-h" || command == "help") {
      usage(0);
    }
    if (command == "show") {
      if (args.size() != 1) usage(2);
      return cmd_show(args[0]);
    }
    if (command == "diff") {
      if (args.size() != 2) usage(2);
      return cmd_diff(args[0], args[1]);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ftgcs_report: %s\n", error.what());
    return 2;
  }
  std::fprintf(stderr, "ftgcs_report: unknown command '%s'\n",
               command.c_str());
  usage(2);
}
