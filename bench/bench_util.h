// Shared helpers for the experiment binaries (E1–E13).
//
// Each experiment regenerates one quantitative claim of the paper as a
// table: the header states the claim, the rows give paper-predicted vs
// measured values. EXPERIMENTS.md records the outcomes.
//
// The ramp helpers are thin shims over the exp/ engine: a ramp experiment
// is an exp::ResolvedRun (line topology + offset ramp + horizon), and its
// outcome is read back from the engine's standard metric schema. Ported
// experiments (E1, E4, E6, E9) skip this layer entirely and run registered
// scenarios; see exp/builtin_scenarios.cpp.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>

#include "byz/fault_plan.h"
#include "core/ftgcs_system.h"
#include "exp/run.h"
#include "metrics/skew_tracker.h"
#include "metrics/table.h"
#include "net/graph.h"

namespace ftgcs::bench {

inline void banner(const char* id, const char* claim) {
  std::printf("\n==========================================================\n");
  std::printf("%s — %s\n", id, claim);
  std::printf("==========================================================\n");
}

/// Builds a line system with a logical-offset ramp of `gap_rounds` rounds
/// per cluster (the distributed-skew absorption scenario).
inline core::FtGcsSystem::Config ramp_config(const core::Params& params,
                                             int clusters, int gap_rounds,
                                             std::uint64_t seed) {
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  for (int c = 0; c < clusters; ++c) {
    config.cluster_round_offsets.push_back(c * gap_rounds);
  }
  return config;
}

struct RampOutcome {
  double max_local = 0.0;        ///< max adjacent-cluster skew seen
  double final_global = 0.0;     ///< remaining global skew at the horizon
  double initial_global = 0.0;
  std::uint64_t violations = 0;
};

/// Describes a ramp-absorption experiment on a line as an exp::ResolvedRun
/// (callers may tweak fields before handing it to exp::run_resolved).
inline exp::ResolvedRun ramp_run(const core::Params& params, int clusters,
                                 int gap_rounds, double rounds,
                                 std::uint64_t seed) {
  exp::ResolvedRun run;
  run.params = params;
  run.graph = net::Graph::line(clusters);
  run.gap_rounds = gap_rounds;
  run.horizon_rounds = rounds;
  run.seed = seed;
  return run;
}

/// Runs a ramp-absorption experiment on a line for `rounds` rounds.
inline RampOutcome run_ramp(const core::Params& params, int clusters,
                            int gap_rounds, double rounds,
                            std::uint64_t seed,
                            byz::FaultPlan fault_plan = {}) {
  exp::ResolvedRun run = ramp_run(params, clusters, gap_rounds, rounds, seed);
  run.fault_plan = std::move(fault_plan);
  const exp::RunResult result = exp::run_resolved(run);

  RampOutcome outcome;
  outcome.max_local = result.metric("max_local");
  outcome.final_global = result.metric("final_global");
  outcome.initial_global = result.metric("S_init");
  outcome.violations =
      static_cast<std::uint64_t>(result.metric("violations"));
  return outcome;
}

}  // namespace ftgcs::bench
