// Umbrella header for the experiment engine.
//
// The exp layer turns the hand-rolled experiment binaries into data: a
// ScenarioSpec declares topology, drift, faults, protocol, parameters,
// horizon and a sweep grid; the Registry names specs; SweepRunner fans the
// grid x seed set out over a thread pool (deterministic at any thread
// count); sinks render the collected rows as a table, CSV or JSON lines.
//
//   exp::register_builtin_scenarios();
//   const exp::ScenarioSpec* spec =
//       exp::Registry::instance().find("e1_local_skew_vs_diameter");
//   exp::SweepRunner runner({.threads = 8});
//   exp::TableSink().write(runner.run(*spec), std::cout);
#pragma once

#include "exp/registry.h"        // named scenario registry + built-ins
#include "exp/run.h"             // single-run resolution & execution
#include "exp/scenario.h"        // declarative ScenarioSpec value types
#include "exp/sinks.h"           // table / CSV / JSON-lines renderings
#include "exp/sweep.h"           // parallel grid runner
#include "exp/topology_graph.h"  // resolved adjacency + delay bounds
