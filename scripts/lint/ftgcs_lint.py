#!/usr/bin/env python3
"""ftgcs determinism lint: repo invariants as named static-analysis rules.

The repo's contract is bit-identical tables and trace bytes across queue
backends, shard counts, and binaries. That contract rests on source-level
invariants that a compiler never checks:

  no-wall-clock           Simulation code must never read wall clocks or
                          ambient entropy (rand(), std::random_device,
                          std::chrono::{system,steady,high_resolution}_clock,
                          gettimeofday, ...). Scope: src/{sim,net,core,par,
                          gcs,byz,clocks,obs}/. The exp/ timing layer (sweep
                          wall_ms) is deliberately outside the scope, and
                          obs/phase_profiler.cpp is the ONE sanctioned clock
                          site inside obs/ (the wall-clock plane's reader;
                          everything else in obs/ feeds the deterministic
                          series and must stay clock-free).
  no-unordered-iteration  Files that feed sinks, metrics, or traces must
                          never iterate an unordered_{map,set,multimap,
                          multiset} — iteration order is
                          implementation-defined and would leak into output
                          bytes. Scope: src/{exp,metrics,trace}/.
  no-hot-path-alloc       The annotated hot-path functions (pop_run*,
                          on_pulse_run, lane_receive, insert_*/*_insert,
                          broadcast*, schedule_fire_only*, post_fire_only*,
                          on_event_batch, lane_commit) must not allocate:
                          no `new`, no malloc family, no std::function /
                          make_unique / make_shared construction. Scope:
                          all of src/.
  no-mutable-global       No mutable namespace-scope state in src/ —
                          globals make runs order- and process-dependent
                          and are unsynchronized under the sharded
                          backend's worker threads. Scope: all of src/.

Waivers are per-line and must carry a reason:

    // ftgcs-lint: allow(<rule>[, <rule>...]) <reason>

on the violating line itself or on the line immediately above it. A
waiver with an empty reason is itself reported (bad-waiver).

Engines: when the libclang python bindings are importable (and parsing
succeeds) the scope-sensitive rules (no-mutable-global, no-hot-path-alloc)
use the clang AST; otherwise a token-level engine — a comment/string/
preprocessor-aware scanner with a namespace-scope brace tracker — covers
every rule. CI pins `--engine tokens` so results do not depend on what the
runner happens to have installed. The token engine is deliberately
conservative where C++ is ambiguous (e.g. a namespace-scope `Foo x(1);`
constructor-call declaration is indistinguishable from a prototype and is
not flagged); the seeded fixtures under scripts/lint/fixtures/ pin exactly
what each engine must catch (`--self-test`).

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule table
# ---------------------------------------------------------------------------

WALL_CLOCK_DIRS = {"sim", "net", "core", "par", "gcs", "byz", "clocks", "obs"}
# The one sanctioned clock site: the phase profiler IS the wall-clock
# plane (its output is marked nondeterministic and never CI-compared).
# Deliberately only the .cpp — the header is included from clock-banned
# code (src/par/) and must stay free of chrono tokens.
WALL_CLOCK_EXEMPT = {"obs/phase_profiler.cpp"}
OUTPUT_FEEDING_DIRS = {"exp", "metrics", "trace", "obs"}

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bstd\s*::\s*time\s*\("), "std::time()"),
]

HOT_FUNCTION_PATTERNS = [
    re.compile(r"^pop_run\w*$"),
    re.compile(r"^on_pulse_run$"),
    re.compile(r"^lane_receive$"),
    re.compile(r"^lane_commit$"),
    re.compile(r"^insert_\w+$"),
    re.compile(r"^\w+_insert$"),
    re.compile(r"^broadcast\w*$"),
    re.compile(r"^schedule_fire_only\w*$"),
    re.compile(r"^post_fire_only\w*$"),
    re.compile(r"^on_event_batch$"),
]

HOT_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\("),
     "malloc family"),
    (re.compile(r"\bstd\s*::\s*function\s*<"), "std::function construction"),
    (re.compile(r"\bmake_unique\s*<"), "std::make_unique"),
    (re.compile(r"\bmake_shared\s*<"), "std::make_shared"),
]

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;{}()]*>[\s&]*(\w+)\s*[;={(,)]")
ALL_RULES = ("no-wall-clock", "no-unordered-iteration", "no-hot-path-alloc",
             "no-mutable-global")

WAIVER = re.compile(
    r"ftgcs-lint:\s*allow\(\s*([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\s*\)\s*(.*)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line      # 1-based
        self.rule = rule
        self.message = message

    def __repr__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# ---------------------------------------------------------------------------
# Source preparation: strip comments/strings/preprocessor, collect waivers
# ---------------------------------------------------------------------------

class Source:
    """One file: raw text, a stripped twin (same length/line structure, with
    comments, string/char literal contents, and preprocessor lines blanked),
    and the per-line waiver table."""

    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.stripped = _strip(text)
        # waivers[line] = (set(rules), reason) for the line the comment is on.
        self.waivers = {}
        self.bad_waivers = []  # line numbers of reason-less waivers
        for i, line in enumerate(text.splitlines(), start=1):
            m = WAIVER.search(line)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",")}
            reason = m.group(2).strip()
            if not reason:
                # A reason-less waiver is invalid AND does not suppress:
                # the underlying finding still fires alongside bad-waiver.
                self.bad_waivers.append(i)
                continue
            self.waivers[i] = rules

    def waived(self, line, rule):
        """A waiver covers its own line and the line directly below it."""
        for at in (line, line - 1):
            entry = self.waivers.get(at)
            if entry is not None and rule in entry:
                return True
        return False

    def line_of(self, offset):
        return self.stripped.count("\n", 0, offset) + 1


def _strip(text):
    """Blanks comments, string/char literal contents (quotes kept so e.g.
    `extern ""` stays recognizable), raw strings, and preprocessor lines.
    Newlines are preserved so offsets map to the same line numbers."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_delim = ""
    line_start = True
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if line_start and c == "#":
                # Preprocessor directive: blank to end of line, honoring
                # backslash continuations.
                while i < n:
                    if text[i] == "\n":
                        if out and out[-1] == "\\":
                            out[-1] = " "
                            out.append("\n")
                            i += 1
                            continue
                        break
                    out.append("\\" if text[i] == "\\" else " ")
                    i += 1
                continue
            line_start = c == "\n" or (line_start and c.isspace())
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
                if m:
                    state = RAW
                    raw_delim = ")" + m.group(1) + '"'
                    out.append('"')
                    i += m.end()
                    continue
                state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                # Digit separators (1'000'000) are not char literals.
                prev = text[i - 1] if i > 0 else ""
                if prev.isdigit() or (prev.isalpha() and i >= 2 and
                                      text[i - 2].isdigit()):
                    out.append(c)
                    i += 1
                    continue
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                line_start = True
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = NORMAL
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = NORMAL
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # RAW
            if text.startswith(raw_delim, i):
                state = NORMAL
                out.append('"')
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Token engine
# ---------------------------------------------------------------------------

def top_dir(rel_path):
    parts = rel_path.replace(os.sep, "/").split("/")
    return parts[0] if len(parts) > 1 else ""


def check_wall_clock(src, rel_path, findings):
    if top_dir(rel_path) not in WALL_CLOCK_DIRS:
        return
    if rel_path.replace(os.sep, "/") in WALL_CLOCK_EXEMPT:
        return
    for pattern, what in WALL_CLOCK_PATTERNS:
        for m in pattern.finditer(src.stripped):
            findings.append(Finding(
                rel_path, src.line_of(m.start()), "no-wall-clock",
                "%s in simulation code (determinism: runs must depend only "
                "on the seed)" % what))


def check_unordered_iteration(src, rel_path, findings):
    if top_dir(rel_path) not in OUTPUT_FEEDING_DIRS:
        return
    names = set(UNORDERED_DECL.findall(src.stripped))
    # Range-for directly over an unordered-typed expression.
    for m in re.finditer(r"for\s*\([^;()]*:\s*([^)]*)\)", src.stripped):
        expr = m.group(1)
        if "unordered_" in expr or any(
                re.search(r"\b%s\b" % re.escape(name), expr)
                for name in names):
            findings.append(Finding(
                rel_path, src.line_of(m.start()), "no-unordered-iteration",
                "iteration over an unordered container in output-feeding "
                "code (iteration order is implementation-defined)"))
    for name in names:
        for m in re.finditer(
                r"\b%s\s*\.\s*c?begin\s*\(" % re.escape(name), src.stripped):
            findings.append(Finding(
                rel_path, src.line_of(m.start()), "no-unordered-iteration",
                "begin() on unordered container '%s' in output-feeding "
                "code" % name))


def _body_span(stripped, open_brace):
    depth = 0
    for i in range(open_brace, len(stripped)):
        c = stripped[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(stripped)


def hot_function_bodies(stripped):
    """Yields (name, body_start, body_end) for definitions of annotated
    hot-path functions. A definition is NAME ( ... ) [qualifiers] { ... }."""
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", stripped):
        name = m.group(1)
        if not any(p.match(name) for p in HOT_FUNCTION_PATTERNS):
            continue
        # Find the matching close paren of the parameter list.
        depth = 0
        i = m.end() - 1
        while i < len(stripped):
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= len(stripped):
            continue
        # Skip trailing qualifiers up to `{` (definition) or `;`/`,` (call,
        # declaration, or initializer — not bodies).
        j = i + 1
        qualifier = re.compile(
            r"\s|const|noexcept|override|final|mutable|->|[\w:<>&*,\[\]]")
        while j < len(stripped) and stripped[j] not in "{;":
            if not qualifier.match(stripped[j]):
                break
            j += 1
        if j < len(stripped) and stripped[j] == "{":
            yield name, j, _body_span(stripped, j)


def check_hot_path_alloc(src, rel_path, findings):
    for name, start, end in hot_function_bodies(src.stripped):
        body = src.stripped[start:end]
        for pattern, what in HOT_ALLOC_PATTERNS:
            for m in pattern.finditer(body):
                findings.append(Finding(
                    rel_path, src.line_of(start + m.start()),
                    "no-hot-path-alloc",
                    "%s inside hot-path function '%s' (annotated "
                    "zero-allocation path)" % (what, name)))


STMT_SKIP = re.compile(
    r"\b(using|typedef|static_assert|template|friend|operator|extern|"
    r"constexpr|consteval|concept|requires|struct|class|enum|union|"
    r"namespace|return|if|for|while|switch|goto|public|private|protected|"
    r"asm)\b")
DECL_SHAPE = re.compile(
    r"^(?:static\s+|inline\s+|thread_local\s+|constinit\s+)*"
    r"[A-Za-z_][\w:<>,\s*&]*[\s*&]"   # type (possibly qualified/templated)
    r"[A-Za-z_]\w*\s*"                # variable name
    r"(?:\[[^\]]*\]\s*)*"             # optional array extents
    r"(?:=[^;]*|\{[^;]*\})?$")        # optional initializer


def namespace_scope_statements(stripped):
    """Yields (offset, text) for each `;`-terminated statement whose
    enclosing scopes are all namespaces (or the translation unit)."""
    scope = []          # True = namespace-like scope, False = anything else
    stmt_start = 0
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "{":
            preamble = stripped[stmt_start:i]
            is_ns = bool(re.search(r"\bnamespace\b", preamble)) or \
                bool(re.search(r'\bextern\s*""', preamble))
            scope.append(is_ns)
            stmt_start = i + 1
        elif c == "}":
            if scope:
                scope.pop()
            stmt_start = i + 1
        elif c == ";":
            if all(scope):
                yield stmt_start, stripped[stmt_start:i]
            stmt_start = i + 1
        i += 1


def check_mutable_global(src, rel_path, findings):
    for offset, stmt in namespace_scope_statements(src.stripped):
        text = " ".join(stmt.split())
        if not text or STMT_SKIP.search(text):
            continue
        if "(" in text or ")" in text:
            continue  # function declaration / constructor-call form
        if re.search(r"\bconst\b", text):
            continue
        if not DECL_SHAPE.match(text):
            continue
        # Offset of the first non-space character of the statement.
        first = offset + (len(stmt) - len(stmt.lstrip()))
        findings.append(Finding(
            rel_path, src.line_of(first), "no-mutable-global",
            "mutable namespace-scope state ('%s'): globals are "
            "unsynchronized under sharded workers and break run "
            "determinism" % text))


# ---------------------------------------------------------------------------
# libclang engine (optional): AST-precise no-mutable-global + no-hot-path-alloc
# ---------------------------------------------------------------------------

def libclang_available():
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def libclang_check_file(path, rel_path, compile_args, findings):
    """AST versions of the scope-sensitive rules. Returns False if parsing
    failed (caller falls back to the token engine for this file)."""
    import clang.cindex as ci
    try:
        index = ci.Index.create()
        tu = index.parse(path, args=compile_args)
    except Exception:
        return False
    if tu is None:
        return False

    def in_this_file(cursor):
        return (cursor.location.file is not None and
                os.path.samefile(cursor.location.file.name, path))

    def visit(cursor, ns_depth):
        for child in cursor.get_children():
            kind = child.kind
            if kind in (ci.CursorKind.NAMESPACE,
                        ci.CursorKind.UNEXPOSED_DECL):
                visit(child, ns_depth + 1)
                continue
            if kind == ci.CursorKind.VAR_DECL and in_this_file(child):
                qual = child.type.spelling
                if ("const" not in qual.split() and
                        not qual.startswith("const ")):
                    findings.append(Finding(
                        rel_path, child.location.line, "no-mutable-global",
                        "mutable namespace-scope state ('%s %s')" %
                        (qual, child.spelling)))
            if kind in (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                        ci.CursorKind.FUNCTION_TEMPLATE):
                if (child.is_definition() and in_this_file(child) and
                        any(p.match(child.spelling)
                            for p in HOT_FUNCTION_PATTERNS)):
                    scan_hot_body(child)
                continue
            if kind in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                        ci.CursorKind.CLASS_TEMPLATE):
                visit_type(child)

    def visit_type(cursor):
        for child in cursor.get_children():
            if child.kind in (ci.CursorKind.CXX_METHOD,
                              ci.CursorKind.FUNCTION_TEMPLATE):
                if (child.is_definition() and in_this_file(child) and
                        any(p.match(child.spelling)
                            for p in HOT_FUNCTION_PATTERNS)):
                    scan_hot_body(child)
            elif child.kind in (ci.CursorKind.CLASS_DECL,
                                ci.CursorKind.STRUCT_DECL):
                visit_type(child)

    def scan_hot_body(fn):
        def walk(node):
            for child in node.get_children():
                kind = child.kind
                if kind == ci.CursorKind.CXX_NEW_EXPR:
                    findings.append(Finding(
                        rel_path, child.location.line, "no-hot-path-alloc",
                        "operator new inside hot-path function '%s'" %
                        fn.spelling))
                elif kind == ci.CursorKind.CALL_EXPR and child.spelling in (
                        "malloc", "calloc", "realloc", "strdup",
                        "aligned_alloc", "make_unique", "make_shared"):
                    findings.append(Finding(
                        rel_path, child.location.line, "no-hot-path-alloc",
                        "%s inside hot-path function '%s'" %
                        (child.spelling, fn.spelling)))
                elif (kind in (ci.CursorKind.VAR_DECL,
                               ci.CursorKind.TEMP_OBJ_EXPR)
                      if hasattr(ci.CursorKind, "TEMP_OBJ_EXPR")
                      else kind == ci.CursorKind.VAR_DECL):
                    if "function<" in child.type.spelling.replace(" ", ""):
                        findings.append(Finding(
                            rel_path, child.location.line,
                            "no-hot-path-alloc",
                            "std::function construction inside hot-path "
                            "function '%s'" % fn.spelling))
                walk(child)
        walk(fn)

    visit(tu.cursor, 0)
    return True


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def lint_file(path, rel_path, engine, compile_args):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        src = Source(path, f.read())

    raw = []
    # Text-reliable rules always run on the token engine.
    check_wall_clock(src, rel_path, raw)
    check_unordered_iteration(src, rel_path, raw)
    ast_done = False
    if engine == "libclang":
        ast_done = libclang_check_file(path, rel_path, compile_args, raw)
    if not ast_done:
        check_hot_path_alloc(src, rel_path, raw)
        check_mutable_global(src, rel_path, raw)

    findings = [f for f in raw if not src.waived(f.line, f.rule)]
    for line in src.bad_waivers:
        findings.append(Finding(
            rel_path, line, "bad-waiver",
            "ftgcs-lint waiver without a reason (every waiver must justify "
            "itself: // ftgcs-lint: allow(<rule>) <reason>)"))
    # Deduplicate (libclang + token overlap) and sort.
    seen = set()
    unique = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        key = (f.path, f.line, f.rule)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def collect_files(src_root):
    files = []
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if name.endswith((".cpp", ".h", ".cc", ".hpp")):
                full = os.path.join(dirpath, name)
                files.append((full, os.path.relpath(full, src_root)))
    return sorted(files, key=lambda x: x[1])


def load_compile_args(compile_commands, path):
    if not compile_commands:
        return []
    entry = compile_commands.get(os.path.abspath(path))
    if entry is None:
        return []
    args = entry[1:]  # drop the compiler itself
    # Drop output/input arguments; keep -I/-D/-std/...
    cleaned = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = a == "-o"
            continue
        if a.endswith((".cpp", ".cc", ".o")):
            continue
        cleaned.append(a)
    return cleaned


def run_lint(src_root, engine, compile_commands):
    findings = []
    for path, rel in collect_files(src_root):
        findings.extend(
            lint_file(path, rel, engine,
                      load_compile_args(compile_commands, path)))
    return findings


def self_test(engine):
    """Runs the engine over the seeded fixtures and compares against the
    EXPECT-LINT annotations inside them. Waived seeds must NOT appear."""
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "fixtures", "src")
    if not os.path.isdir(fixtures):
        print("self-test: fixture tree missing: %s" % fixtures)
        return 2

    expected = set()
    for path, rel in collect_files(fixtures):
        with open(path, "r", encoding="utf-8") as f:
            for i, line in enumerate(f.read().splitlines(), start=1):
                # EXPECT-LINT: <rule> annotates its own line;
                # EXPECT-LINT(+N): <rule> annotates N lines below (used when
                # the annotation text itself would alter the seeded line,
                # e.g. it would become a reason-less waiver's reason).
                for off, rule in re.findall(
                        r"EXPECT-LINT(?:\(\+(\d+)\))?:\s*([a-z\-]+)", line):
                    expected.add((rel, i + int(off or 0), rule))

    got = {(f.path, f.line, f.rule) for f in run_lint(fixtures, engine, None)}

    missing = expected - got
    unexpected = got - expected
    for rel, line, rule in sorted(missing):
        print("self-test: MISSING expected finding %s:%d [%s]" %
              (rel, line, rule))
    for rel, line, rule in sorted(unexpected):
        print("self-test: UNEXPECTED finding %s:%d [%s]" % (rel, line, rule))
    if missing or unexpected:
        print("self-test: FAILED (%d missing, %d unexpected; engine=%s)" %
              (len(missing), len(unexpected), engine))
        return 1
    print("self-test: OK — %d seeded findings matched, waived seeds "
          "suppressed (engine=%s)" % (len(expected), engine))
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="ftgcs determinism lint (see module docstring)")
    parser.add_argument("--src-root", default=None,
                        help="source tree to lint (default: <repo>/src)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json (libclang engine args)")
    parser.add_argument("--engine", choices=("auto", "tokens", "libclang"),
                        default="auto",
                        help="auto = libclang when importable, else tokens")
    parser.add_argument("--self-test", action="store_true",
                        help="check the engine against the seeded fixtures")
    args = parser.parse_args()

    engine = args.engine
    if engine == "auto":
        engine = "libclang" if libclang_available() else "tokens"
    elif engine == "libclang" and not libclang_available():
        print("error: --engine libclang requested but clang.cindex is not "
              "importable", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(engine)

    src_root = args.src_root
    if src_root is None:
        src_root = os.path.join(
            os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))), "src")
    if not os.path.isdir(src_root):
        print("error: no such source root: %s" % src_root, file=sys.stderr)
        return 2

    compile_commands = None
    if args.compile_commands:
        with open(args.compile_commands, "r", encoding="utf-8") as f:
            compile_commands = {
                os.path.abspath(os.path.join(e["directory"], e["file"])):
                    (e.get("arguments") or e["command"].split())
                for e in json.load(f)}

    findings = run_lint(src_root, engine, compile_commands)
    for f in findings:
        print(f)
    if findings:
        print("ftgcs-lint: %d finding(s) (engine=%s). Waive only with "
              "// ftgcs-lint: allow(<rule>) <reason>." %
              (len(findings), engine))
        return 1
    print("ftgcs-lint: clean (%s, engine=%s)" % (src_root, engine))
    return 0


if __name__ == "__main__":
    sys.exit(main())
