// Built-in scenario definitions: the declarative ports of the hand-rolled
// experiment binaries. Each definition is pure data — the former bespoke
// mains (bench/e1*, e4*, e6*, e9*) now shrink to a registry lookup plus a
// sink. EXPERIMENTS.md maps experiment ids to these names.
#include "exp/registry.h"

#include <initializer_list>

#include "byz/strategies.h"

namespace ftgcs::exp {

namespace {

std::vector<AxisValue> values_of(std::initializer_list<double> vs) {
  std::vector<AxisValue> result;
  for (double v : vs) result.push_back(AxisValue::of(v));
  return result;
}

AxisValue strategy_value(byz::StrategyKind kind) {
  return AxisValue::named(static_cast<double>(static_cast<int>(kind)),
                          byz::strategy_name(kind));
}

// E1 (first table) — Theorem 1.1 / 4.10: local skew O((ρd+U)·log D) on a
// line ramp, clean and under a full two-faced fault budget.
ScenarioSpec e1_local_skew_vs_diameter() {
  ScenarioSpec spec;
  spec.name = "e1_local_skew_vs_diameter";
  spec.title = "local skew vs diameter (Theorem 1.1: O((rho*d+U)*log D))";
  spec.description =
      "Line ramp with per-edge gap ~2.3 kappa; initial global skew grows "
      "linearly in D while the measured local skew stays under the "
      "kappa*(log_b(S/kappa)+1) envelope, with and without f=1 two-faced "
      "faults per cluster.";
  spec.ramp.gap_kappa = 2.3;
  spec.horizon.base_rounds = 150.0;
  spec.horizon.per_diameter_rounds = 40.0;
  spec.faults.mode = FaultMode::kUniform;
  spec.faults.count = -1;  // full budget f
  spec.faults.strategy = byz::StrategyKind::kTwoFaced;
  spec.faults.param_times_E = 1.0;
  spec.faults.seed = 77;
  spec.axes = {
      {"diameter", values_of({2, 4, 8, 16, 32})},
      {"attacked",
       {AxisValue::named(0, "no"), AxisValue::named(1, "f=1")}},
  };
  spec.columns = {"S_init",         "max_local",        "predicted_local",
                  "in_local_bound", "local_over_kappa", "log2_diameter",
                  "violations"};
  return spec;
}

// E1 (second table) — the gradient property vs the scale of the imposed
// skew at fixed D = 8: max-local/init-local stays ~1 (no compression).
ScenarioSpec e1_gradient_scale() {
  ScenarioSpec spec;
  spec.name = "e1_gradient_scale";
  spec.title = "gradient property vs imposed skew (D = 8)";
  spec.description =
      "Line of 9 clusters with growing per-edge ramps; the worst edge never "
      "carries much more than its initial share (contrast E5's tree "
      "compression).";
  spec.topology.a = 9;
  spec.horizon.base_rounds = 600.0;
  spec.seeds = {2};
  spec.axes = {{"gap_rounds", values_of({2, 6, 16, 32})}};
  spec.columns = {"init_local", "S_init", "max_local", "ratio_local"};
  return spec;
}

// E4 — the resilience boundary: ≤ f faults per cluster of k = 3f+1 keeps
// every bound; f+1 lets active attacks break trimmed agreement.
ScenarioSpec e4_fault_tolerance_boundary() {
  ScenarioSpec spec;
  spec.name = "e4_fault_tolerance_boundary";
  spec.title = "fault-tolerance boundary (f tolerated, f+1 not; k = 3f+1)";
  spec.description =
      "Line of 3 clusters; strategy x faults-per-cluster sweep, worst case "
      "over 3 seeds. Rows with <= f faults stay within the intra-cluster "
      "bound with 0 violations; f+1 rows of the active attacks break it.";
  spec.topology.a = 3;
  spec.horizon.base_rounds = 60.0;
  spec.steady_after_rounds = 5.0;
  spec.faults.mode = FaultMode::kUniform;
  spec.faults.default_param_for_strategy = true;
  spec.seeds = {1, 2, 3};
  spec.aggregation = SeedAggregation::kWorstOverSeeds;
  spec.axes = {
      {"strategy",
       {strategy_value(byz::StrategyKind::kSilent),
        strategy_value(byz::StrategyKind::kTwoFaced),
        strategy_value(byz::StrategyKind::kClockLiar),
        strategy_value(byz::StrategyKind::kSkewPump),
        strategy_value(byz::StrategyKind::kEquivocator)}},
      {"faults_per_cluster", values_of({0, 1, 2})},
  };
  spec.columns = {"max_intra", "intra_bound", "in_intra_bound", "max_local",
                  "violations"};
  return spec;
}

// E6 (a) — Theorem C.3 contraction: start 3x above the global-skew band
// and verify the drain into c·δ·D.
ScenarioSpec e6_global_skew_drain() {
  ScenarioSpec spec;
  spec.name = "e6_global_skew_drain";
  spec.title = "global skew contraction into the O(delta*D) band "
               "(Theorem C.3)";
  spec.description =
      "Line ramp starting 3x above the predicted band c*delta*D; the "
      "global-skew module drains the excess at catch-up rate mu.";
  spec.ramp.gap_band_factor = 3.0;
  spec.horizon.base_rounds = 200.0;
  spec.horizon.drain_factor = 1.3;
  spec.seeds = {5};
  spec.axes = {{"diameter", values_of({2, 4, 8, 16})}};
  spec.columns = {"band", "S_init", "final_global", "in_global_band"};
  return spec;
}

// E6 (b) — containment under worst-case split drift, plus the M_v estimate
// lag of Lemma C.2.
ScenarioSpec e6_split_drift_containment() {
  ScenarioSpec spec;
  spec.name = "e6_split_drift_containment";
  spec.title = "global-skew containment under split drift + M_v lag "
               "(Lemmas C.1-C.2)";
  spec.description =
      "Synchronized start, half the line at rate 1+rho and half at 1 "
      "(flipping every 50 rounds); the band is never left and the M_v lag "
      "stays O(delta*D).";
  spec.drift.kind = DriftKind::kSpatialSplit;
  spec.drift.flip_rounds = 50.0;
  spec.horizon.base_rounds = 400.0;
  spec.probe_interval_rounds = 1.0;
  spec.measure_m_lag = true;
  spec.seeds = {6};
  spec.axes = {{"diameter", values_of({2, 4, 8, 16})}};
  spec.columns = {"band", "max_global", "in_global_band_max", "max_m_lag"};
  return spec;
}

// E9 — Theorem 1.1's cost side: nodes x O(f), edges x O(f²), degree > 2f,
// plus measured message load.
ScenarioSpec e9_overhead_scaling() {
  ScenarioSpec spec;
  spec.name = "e9_overhead_scaling";
  spec.title = "augmentation overhead: nodes x O(f), edges x O(f^2)";
  spec.description =
      "Line of 5 clusters for growing fault budgets; static counts from the "
      "augmentation plus measured messages per round per node.";
  spec.topology.a = 5;
  spec.params.rho = 1e-4;
  spec.horizon.base_rounds = 10.0;
  spec.seeds = {9};
  spec.axes = {{"f", values_of({0, 1, 2, 3, 4})}};
  spec.columns = {"k",           "nodes",      "node_factor",
                  "edges",       "edge_factor", "edge_factor_norm",
                  "max_degree",  "msgs_round_node"};
  return spec;
}

// Large-grid family — throughput workloads for the typed event engine.
// These are not paper-claim experiments: they exist so the registry can
// drive production-scale topologies (10k+ clusters) and report the
// simulator's event throughput on them (`ftgcs_bench run large_ring
// --timing`). Short horizon, sparse probes: the cost is dominated by the
// pulse traffic itself, which is the thing being measured.
ScenarioSpec large_family(ScenarioSpec spec) {
  spec.horizon.base_rounds = 20.0;
  spec.probe_interval_rounds = 5.0;
  spec.seeds = {1};
  spec.axes = {{"clusters", values_of({1000, 5000, 10000})}};
  spec.columns = {"clusters",  "nodes",      "edges",  "max_degree",
                  "events",    "max_local",  "max_global",
                  "msgs_round_node"};
  return spec;
}

ScenarioSpec large_ring() {
  ScenarioSpec spec;
  spec.name = "large_ring";
  spec.title = "engine headroom: ring at N in {1k, 5k, 10k} clusters";
  spec.description =
      "Fault-tolerant ring (f = 1, k = 4) at production scale — 4k to 40k "
      "nodes of pure pulse traffic over a 20-round horizon. Run with "
      "--timing for events/sec; the skew columns double as a sanity check "
      "that the protocol stays synchronized at scale.";
  spec.topology.kind = TopologyKind::kRing;
  return large_family(std::move(spec));
}

ScenarioSpec large_torus() {
  ScenarioSpec spec;
  spec.name = "large_torus";
  spec.title = "engine headroom: square torus at N in {1k, 5k, 10k} clusters";
  spec.description =
      "Fault-tolerant square torus (f = 1, k = 4; TRIX-style grid fabric, "
      "degree-4 cluster graph) at 1k/5k/10k clusters. The denser augmented "
      "edge set makes this the heaviest registered workload per round.";
  spec.topology.kind = TopologyKind::kTorus;
  spec.topology.a = 32;
  spec.topology.b = 32;
  return large_family(std::move(spec));
}

// Protocol-selection demo: the plain (non-FT) GCS baseline under a single
// pump fault on a ring — the failure mode FT-GCS exists to prevent (E8).
ScenarioSpec e8_gcs_pump_baseline() {
  ScenarioSpec spec;
  spec.name = "e8_gcs_pump_baseline";
  spec.title = "plain GCS vs one Byzantine pump node (S1 failure mode)";
  spec.description =
      "Non-fault-tolerant GCS on a ring of 9; a single pump node destroys "
      "the local-skew guarantee (compare e1/e4 under full fault budgets).";
  spec.protocol = ProtocolKind::kGcsBaseline;
  spec.topology.kind = TopologyKind::kRing;
  spec.topology.a = 9;
  spec.params.U = 0.1;
  spec.params.mu = 0.05;
  spec.faults.mode = FaultMode::kUniform;
  spec.faults.count = 1;
  spec.faults.strategy = byz::StrategyKind::kSkewPump;
  spec.faults.param_abs = 0.05;
  spec.horizon.base_rounds = 300.0;
  spec.probe_interval_rounds = 5.0;
  spec.seeds = {8};
  spec.axes = {{"attacked",
                {AxisValue::named(0, "no"), AxisValue::named(1, "pump")}}};
  spec.columns = {"max_local", "max_global", "final_local", "final_global"};
  return spec;
}

}  // namespace

void register_builtin_scenarios() {
  Registry& registry = Registry::instance();
  registry.add(e1_local_skew_vs_diameter());
  registry.add(e1_gradient_scale());
  registry.add(e4_fault_tolerance_boundary());
  registry.add(e6_global_skew_drain());
  registry.add(e6_split_drift_containment());
  registry.add(e9_overhead_scaling());
  registry.add(e8_gcs_pump_baseline());
  registry.add(large_ring());
  registry.add(large_torus());
}

}  // namespace ftgcs::exp
