// Golden-trace pin for the typed event engine.
//
// The engine swap (typed slot-pooled queue, batched broadcast, in-place
// timer reschedule) is required to preserve equal-time FIFO ordering and
// per-stream RNG draw order EXACTLY. This test pins the E6 global-skew
// scenario (diameter 2, seed 5) to metric values recorded from the
// pre-swap std::function/unordered_map engine: the event and message
// counts fingerprint the whole schedule (any ordering or RNG change shifts
// them), and the skew metrics depend on every delivery timestamp, so a
// match here means the old and new engines execute the same trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exp/exp.h"

namespace ftgcs::exp {
namespace {

std::string sig(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

TEST(EngineTrace, E6GlobalSkewDrainMatchesPreSwapEngine) {
  register_builtin_scenarios();
  const ScenarioSpec* registered =
      Registry::instance().find("e6_global_skew_drain");
  ASSERT_NE(registered, nullptr);

  ScenarioSpec spec = *registered;
  apply_axis(spec, "diameter", 2.0);
  const RunResult result = run_point(spec, /*seed=*/5);

  // Golden values measured on the seed engine (commit 378de92) with the
  // identical spec. Do not update these casually: a diff means the event
  // schedule is no longer bit-identical to the original semantics.
  EXPECT_EQ(result.metric("events"), 1342939.0);
  EXPECT_EQ(result.metric("messages"), 1110128.0);
  EXPECT_EQ(sig(result.metric("S_init")), "129.365285736");
  EXPECT_EQ(sig(result.metric("max_local")), "64.8388502118");
  EXPECT_EQ(sig(result.metric("max_global")), "129.324824038");
  EXPECT_EQ(sig(result.metric("final_global")), "22.0105825273");
  EXPECT_EQ(sig(result.metric("max_intra")), "0.12785914546");
  EXPECT_EQ(result.metric("violations"), 0.0);
  EXPECT_EQ(result.metric("in_global_band"), 1.0);
}

}  // namespace
}  // namespace ftgcs::exp
