// The zero-allocation contract, proven at runtime: after warmup, a
// steady-state run_until window performs ZERO global allocations — on
// both queue backends and under the sharded backend's worker threads.
//
// This is the runtime twin of the ftgcs-lint no-hot-path-alloc rule: the
// lint bans allocation constructs inside the annotated hot functions at
// the source level; this test proves the property end-to-end, including
// everything the lint cannot see (vector regrowth past warmed capacity,
// allocator traffic inside library calls, per-window scratch churn).
//
// Linking note: constructing a ScopedAllocGuard pulls
// src/support/alloc_guard.cpp out of the static archive, which installs
// the counting operator new/delete set for this whole binary. The counter
// is process-wide across threads — exactly what the --shards case needs,
// since the interesting allocations would happen on worker threads.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ftgcs_system.h"
#include "core/params.h"
#include "net/graph.h"
#include "par/sharded_system.h"
#include "sim/backend.h"
#include "support/alloc_guard.h"

namespace ftgcs {
namespace {

// Warmup gives every lazily-grown structure a representative high-water
// mark — queue buckets, receive lanes, mailboxes, the ladder's first
// reseed cycles. prewarm() then PINS that profile: it levels the bucket
// lanes and quorum windows to margin-over-high-water, which is what
// makes the zero contract exact rather than asymptotic (each reseed
// re-derives the window from the drifting population, so without the pin
// the same traffic keeps landing in cold buckets and ramping them up).
constexpr int kWarmupRounds = 10;
constexpr int kGuardedRounds = 8;

core::Params test_params() {
  return core::Params::practical(1e-3, 1.0, 0.01, 1);
}

TEST(AllocGuard, HookCountsThisBinarysAllocations) {
  const support::ScopedAllocGuard guard;
  auto owned = std::make_unique<int>(7);
  ASSERT_NE(owned, nullptr);
  std::vector<double> grow(1024, 0.5);
  EXPECT_GE(guard.allocations(), 2u);
}

void expect_zero_alloc_steady_state(sim::QueueBackend engine) {
  const core::Params params = test_params();
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 11;
  config.engine = engine;
  core::FtGcsSystem system(net::Graph::ring(8), std::move(config));
  system.start();
  system.run_until(kWarmupRounds * params.T);
  system.prewarm();

  const support::ScopedAllocGuard guard;
  for (int round = 1; round <= kGuardedRounds; ++round) {
    system.run_until((kWarmupRounds + round) * params.T);
  }
  EXPECT_EQ(guard.allocations(), 0u)
      << "steady-state run_until allocated on the "
      << (engine == sim::QueueBackend::kLadder ? "ladder" : "heap")
      << " backend";
}

TEST(AllocGuard, SteadyStateRunUntilIsAllocationFreeLadder) {
  expect_zero_alloc_steady_state(sim::QueueBackend::kLadder);
}

TEST(AllocGuard, SteadyStateRunUntilIsAllocationFreeHeap) {
  expect_zero_alloc_steady_state(sim::QueueBackend::kHeap);
}

// The sharded backend: two worker threads, SPSC mailbox traffic across
// the cut, barrier-phased safe windows. After warmup the mailbox boxes,
// merge scratch, and per-shard queues have all reached peak capacity, so
// whole windows — including every cross-shard divert and merge — must
// allocate nothing on any thread.
TEST(AllocGuard, SteadyStateShardedRunIsAllocationFree) {
  const core::Params params = test_params();
  par::ShardedFtGcsSystem::Config config;
  config.params = params;
  config.seed = 11;
  config.shards = 2;
  par::ShardedFtGcsSystem system(net::Graph::ring(8), std::move(config));
  ASSERT_EQ(system.num_shards(), 2);
  system.start();
  system.run_until(kWarmupRounds * params.T);
  system.prewarm();

  const support::ScopedAllocGuard guard;
  for (int round = 1; round <= kGuardedRounds; ++round) {
    system.run_until((kWarmupRounds + round) * params.T);
  }
  EXPECT_EQ(guard.allocations(), 0u)
      << "steady-state sharded run_until allocated (shards=2)";
}

}  // namespace
}  // namespace ftgcs
