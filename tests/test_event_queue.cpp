#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ftgcs::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledHeadDoesNotBlockNextTime) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, NextTimeOnEmptyIsInfinity) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const EventId id = q.schedule(7.5, [] {});
  const auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.at, 7.5);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [] {});
  q.pop().fn();
  EXPECT_EQ(fired, 1);
  // The id is spent; cancelling it must not touch the remaining event.
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, SlotReuseInvalidatesOldIds) {
  // ABA guard: after an event fires, its pool slot is recycled; a handle
  // from the old generation must neither cancel nor alias the new event.
  EventQueue q;
  const EventId old_id = q.schedule(1.0, [] {});
  q.pop();
  EXPECT_TRUE(q.empty());

  bool second_fired = false;
  const EventId new_id = q.schedule(2.0, [&] { second_fired = true; });
  // The pool recycled the slot (same index), so the ids share the slot
  // half but differ in generation.
  EXPECT_EQ(old_id.value >> 32, new_id.value >> 32);
  EXPECT_NE(old_id.value, new_id.value);
  EXPECT_FALSE(q.cancel(old_id));  // stale generation: rejected
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueue, TypedEventsCarryPayloadAndFifoOrder) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    EventPayload payload;
    payload.a = i;
    payload.x = 0.5 * i;
    q.schedule_typed(3.0, EventKind::kPulse, 7, payload);
  }
  for (int i = 0; i < 5; ++i) {
    const auto fired = q.pop();
    EXPECT_EQ(fired.kind, EventKind::kPulse);
    EXPECT_EQ(fired.sink, 7u);
    EXPECT_EQ(fired.payload.a, i);  // equal times: scheduling order
    EXPECT_DOUBLE_EQ(fired.payload.x, 0.5 * i);
    EXPECT_FALSE(fired.fn);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleMatchesCancelPlusScheduleOrder) {
  // A rescheduled event must tie-break as if it had been cancelled and
  // re-scheduled: after everything already sitting at the target time.
  EventQueue q;
  EventPayload payload;
  payload.a = 1;
  const EventId moved = q.schedule_typed(9.0, EventKind::kTimer, 0, payload);
  payload.a = 2;
  q.schedule_typed(5.0, EventKind::kTimer, 0, payload);
  EXPECT_TRUE(q.reschedule(moved, 5.0));
  EXPECT_EQ(q.pop().payload.a, 2);  // was at 5.0 first
  EXPECT_EQ(q.pop().payload.a, 1);  // the moved event fires after
}

TEST(EventQueue, RescheduleOfDeadIdFails) {
  EventQueue q;
  const EventId id = q.schedule_typed(1.0, EventKind::kTimer, 0, {});
  q.pop();
  EXPECT_FALSE(q.reschedule(id, 2.0));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TypedPathDoesNotAllocateAfterWarmup) {
  // Steady-state schedule/fire cycles must reuse pooled slots: the pool
  // high-water mark stays at the warm-up size.
  EventQueue q;
  for (int i = 0; i < 64; ++i) {
    q.schedule_typed(static_cast<Time>(i), EventKind::kPulse, 0, {});
  }
  const std::size_t warm = q.pool_size();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 32; ++i) q.pop();
    for (int i = 0; i < 32; ++i) {
      q.schedule_typed(1000.0 + round, EventKind::kPulse, 0, {});
    }
  }
  EXPECT_EQ(q.pool_size(), warm);
}

TEST(EventQueue, InterleavedScheduleCancelStress) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<Time>(i % 100), [&] { ++fired; }));
  }
  // Cancel every third event.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (q.cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired + cancelled, 1000);
  EXPECT_EQ(cancelled, 334);
}

}  // namespace
}  // namespace ftgcs::sim
