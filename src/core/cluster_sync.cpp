#include "core/cluster_sync.h"

#include <algorithm>
#include <cstring>

#include "support/assert.h"

namespace ftgcs::core {

ClusterSyncEngine::ClusterSyncEngine(sim::Simulator& simulator,
                                     const ClusterSyncConfig& cfg,
                                     double initial_hardware_rate,
                                     sim::Rng loopback_rng)
    : sim_(simulator),
      cfg_(cfg),
      clock_(cfg.phi, cfg.mu, initial_hardware_rate, simulator.now(),
             (cfg.start_round - 1) * (cfg.tau1 + cfg.tau2 + cfg.tau3)),
      timers_(simulator, clock_, this),
      loopback_rng_(loopback_rng) {
  self_ = simulator.register_sink(this);
  FTGCS_EXPECTS(cfg.start_round >= 1);
  FTGCS_EXPECTS(cfg.tau1 > 0.0 && cfg.tau2 > 0.0 && cfg.tau3 > 0.0);
  FTGCS_EXPECTS(cfg.phi > 0.0 && cfg.phi < 1.0);
  FTGCS_EXPECTS(cfg.k >= 2 * cfg.f + 1);  // order statistics well-defined
  FTGCS_EXPECTS(cfg.f >= 0);
  if (!cfg.active) {
    FTGCS_EXPECTS(cfg.d > 0.0 && cfg.U >= 0.0 && cfg.U <= cfg.d);
  }
  if (cfg.k <= ReceiveLane::kInlineArrivals) {
    local_lane_.arrivals = local_lane_.inline_arrivals;
    std::fill_n(local_lane_.arrivals, static_cast<std::size_t>(cfg.k),
                kUnsetArrival);
  } else {
    local_arrivals_.resize(static_cast<std::size_t>(cfg.k), kUnsetArrival);
    local_lane_.arrivals = local_arrivals_.data();
  }
  local_lane_.own_index = cfg.active ? own_index_ : -1;
  clock_.bind_mirror(&local_lane_.clock);
  offsets_buf_.reserve(static_cast<std::size_t>(cfg.k));
}

void ClusterSyncEngine::adopt_lane(ReceiveLane* lane, double* arrivals) {
  FTGCS_EXPECTS(round_ == 0);  // relocation only before the first round
  FTGCS_EXPECTS(lane != nullptr);
  FTGCS_EXPECTS(arrivals != nullptr ||
                cfg_.k <= ReceiveLane::kInlineArrivals);
  *lane = *lane_;
  // Small clusters live in the lane's own second cache line; larger ones
  // in the caller-provided external bank.
  double* dst = arrivals != nullptr ? arrivals : lane->inline_arrivals;
  std::memcpy(dst, lane_->arrivals,
              static_cast<std::size_t>(cfg_.k) * sizeof(double));
  lane->arrivals = dst;
  lane_ = lane;
  clock_.bind_mirror(&lane->clock);
}

void ClusterSyncEngine::start() {
  FTGCS_EXPECTS(round_ == 0);
  begin_round(cfg_.start_round);
}

void ClusterSyncEngine::halt() {
  timers_.cancel(kPulseTimer);
  timers_.cancel(kPhaseTwoEndTimer);
  timers_.cancel(kRoundEndTimer);
  sim_.cancel(pending_loopback_);
  pending_loopback_ = sim::EventId{};
  lane_->listening = 0;
}

void ClusterSyncEngine::begin_round(int r) {
  round_ = r;
  round_start_logical_ = (r - 1) * round_length();
  lane_->listening = 1;
  std::fill_n(lane_->arrivals, static_cast<std::size_t>(cfg_.k),
              kUnsetArrival);
  lane_->own_arrival = kUnsetArrival;

  // Algorithm 1 line 3: δ_v ← 1 for phases 1 and 2.
  clock_.set_delta(sim_.now(), 1.0);

  if (on_round_start) on_round_start(r);

  const double base = round_start_logical_;
  timers_.arm(kPulseTimer, base + cfg_.tau1);
  timers_.arm(kPhaseTwoEndTimer, base + cfg_.tau1 + cfg_.tau2);
  timers_.arm(kRoundEndTimer, base + round_length());
}

void ClusterSyncEngine::on_logical_timer(clocks::LogicalTimerSet::Key key) {
  switch (key) {
    case kPulseTimer:
      pulse_instant(sim_.now());
      break;
    case kPhaseTwoEndTimer:
      end_phase_two(sim_.now());
      break;
    case kRoundEndTimer:
      begin_round(round_ + 1);
      break;
    default:
      FTGCS_ASSERT(false && "unknown timer key");
  }
}

void ClusterSyncEngine::on_event(sim::EventKind kind,
                                 const sim::EventPayload& payload,
                                 sim::Time now) {
  // Corollary 3.5: the passive observer's own simulated pulse arrives.
  FTGCS_ASSERT(kind == sim::EventKind::kPulse);
  if (round_ == payload.a && lane_->listening) {
    lane_->own_arrival = clock_.read(now);
  } else {
    ++lane_->dropped;
  }
}

void ClusterSyncEngine::pulse_instant(sim::Time now) {
  if (on_pulse) on_pulse(round_, now);
  if (!cfg_.active) {
    // Corollary 3.5: the passive observer simulates its own pulse; the
    // loopback delay is drawn from the same physical interval [d−U, d].
    const sim::Duration delay =
        loopback_rng_.uniform(cfg_.d - cfg_.U, cfg_.d);
    sim::EventPayload payload;
    payload.a = round_;
    pending_loopback_ =
        sim_.post_after(delay, sim::EventKind::kPulse, self_, payload);
  }
  // Active mode: the owner broadcasts in on_pulse; the physical loopback
  // delivers to on_member_pulse(own_index_), which records own_arrival.
}

void ClusterSyncEngine::on_member_pulse(int member_index, sim::Time now) {
  FTGCS_EXPECTS(member_index >= 0 && member_index < cfg_.k);
  // Before start() the lane is not listening, so pre-round pulses count as
  // dropped exactly as they always did.
  lane_receive(*lane_, member_index, now);
}

double ClusterSyncEngine::compute_correction() {
  // Pulses that did not arrive are clamped to the end of the collection
  // window — the latest moment they could still legitimately arrive.
  const double window_end =
      round_start_logical_ + cfg_.tau1 + cfg_.tau2;
  const double own_slot = lane_->own_arrival;
  const double own = own_slot == own_slot ? own_slot : window_end;

  offsets_buf_.clear();
  for (int i = 0; i < cfg_.k; ++i) {
    const double slot = lane_->arrivals[i];
    offsets_buf_.push_back((slot == slot ? slot : window_end) - own);
  }
  std::sort(offsets_buf_.begin(), offsets_buf_.end());
  // ∆_v(r) = (S^(f+1) + S^(k−f)) / 2, 1-based order statistics.
  const auto f = static_cast<std::size_t>(cfg_.f);
  const double lo = offsets_buf_[f];
  const double hi = offsets_buf_[offsets_buf_.size() - 1 - f];
  return (lo + hi) / 2.0;
}

void ClusterSyncEngine::end_phase_two(sim::Time now) {
  lane_->listening = 0;
  int received = 0;
  for (int i = 0; i < cfg_.k; ++i) {
    const double slot = lane_->arrivals[i];
    if (slot == slot) ++received;
  }
  if (received < cfg_.k - cfg_.f) ++starved_rounds_;
  const double raw = compute_correction();
  last_correction_ = raw;

  // Proper execution (Def. B.3) requires |∆| ≤ ϕ·τ3; clamping keeps
  // δ_v ∈ [0, 2/(1−ϕ)] (Lemma B.4) under over-budget attacks.
  const double limit = cfg_.phi * cfg_.tau3;
  double delta_corr = raw;
  bool violated = false;
  if (delta_corr > limit) {
    delta_corr = limit;
    violated = true;
  } else if (delta_corr < -limit) {
    delta_corr = -limit;
    violated = true;
  }
  if (violated) ++violations_;

  // Algorithm 1 line 13.
  const double delta_v =
      1.0 - (1.0 + 1.0 / cfg_.phi) * delta_corr / (cfg_.tau3 + delta_corr);
  clock_.set_delta(now, delta_v);

  if (on_correction) on_correction(round_, raw, violated);
}

}  // namespace ftgcs::core
