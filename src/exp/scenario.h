// Declarative experiment scenarios.
//
// A ScenarioSpec describes one experiment family as plain data: a topology
// generator, a drift model, a fault plan, a protocol choice, a parameter
// preset, a horizon, a seed list, and a sweep grid of named axes. The spec
// is a value type — copyable, comparable by content, serializable — so a
// sweep runner can replicate it across worker threads and every replica
// resolves to an identical simulation.
//
// Resolution happens in two steps:
//   1. apply_axis() writes one axis assignment (e.g. "diameter" = 16) into
//      a copy of the spec;
//   2. resolve() (run.h) turns the concrete spec + seed into a ResolvedRun
//      with a built Graph, Params and FaultPlan, ready to simulate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "byz/strategies.h"
#include "core/params.h"
#include "net/graph.h"
#include "sim/backend.h"

namespace ftgcs::exp {

// ---- topology ---------------------------------------------------------------

enum class TopologyKind {
  kLine,
  kRing,
  kStar,
  kClique,
  kGrid,
  kTorus,
  kTree,
  kHypercube,
  kGnp,
};

/// Cluster-graph generator selection. Interpretation of (a, b):
/// line/ring/star/clique → a = n; grid/torus → a × b; tree → branching a,
/// depth b; hypercube → dimension a; gnp → n = a with edge probability p.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kLine;
  int a = 2;
  int b = 0;
  double p = 0.0;           ///< kGnp edge probability
  std::uint64_t seed = 1;   ///< kGnp resampling seed

  net::Graph build() const;
  std::string describe() const;

  /// Reconfigures the generator so the cluster graph has hop diameter
  /// `diameter` (supported for line, ring and grid).
  void set_diameter(int diameter);
  /// Reconfigures the generator to `n` clusters (line/ring/star/clique).
  void set_clusters(int n);
};

// ---- drift ------------------------------------------------------------------

enum class DriftKind {
  kSpreadConstant,  ///< system default: constant rates spread over [1, 1+ρ]
  kRandomConstant,  ///< constant rates sampled uniformly at random
  kRandomWalk,
  kSinusoidal,
  kSpatialSplit,    ///< adversarial half-fast/half-slow split by cluster
};

/// Drift-model selection; durations are in rounds (units of Params::T).
struct DriftSpec {
  DriftKind kind = DriftKind::kSpreadConstant;
  double step_rounds = 1.0;     ///< kRandomWalk interval / kSinusoidal sample
  double step_size = 0.0;       ///< kRandomWalk step
  double period_rounds = 20.0;  ///< kSinusoidal period
  double flip_rounds = 0.0;     ///< kSpatialSplit side-swap period (0 = never)
  double boundary_frac = 0.5;   ///< kSpatialSplit boundary (fraction of |C|)
};

// ---- faults -----------------------------------------------------------------

enum class FaultMode {
  kNone,
  kUniform,    ///< `count` faulty members in every cluster
  kInCluster,  ///< `count` faulty members in cluster `cluster`
  kIid,        ///< every node faulty independently with `probability`
};

/// Fault-plan selection. The strategy parameter is param_abs +
/// param_times_E·E so attack strengths can scale with the derived pulse
/// diameter without knowing it at registration time.
struct FaultPlanSpec {
  FaultMode mode = FaultMode::kNone;
  bool enabled = true;  ///< sweep toggle (the "attacked" axis); false → no faults
  int count = -1;       ///< faulty members; −1 → the full budget params.f
  int cluster = 0;      ///< kInCluster target
  double probability = 0.0;  ///< kIid
  byz::StrategyKind strategy = byz::StrategyKind::kTwoFaced;
  double param_abs = 0.0;
  double param_times_E = 0.0;
  /// Ignore param_abs/param_times_E and use a per-strategy default strength
  /// (silent → 0, clock-liar → 100, otherwise 3E) — the E4 sweep rule.
  bool default_param_for_strategy = false;
  std::uint64_t seed = 0;  ///< fault-placement seed; 0 → the run seed

  bool active() const { return enabled && mode != FaultMode::kNone; }
};

// ---- protocol & parameters --------------------------------------------------

enum class ProtocolKind {
  kFtGcs,        ///< the full PODC'19 construction (core::FtGcsSystem)
  kGcsBaseline,  ///< plain non-fault-tolerant GCS (gcs::GcsSystem)
};

/// Parameter preset selection (resolved via core::Params at run time).
/// `mu`/`phi` feed the kCustom preset only — the practical/strict presets
/// derive them from rho (so the "mu"/"phi" sweep axes require kCustom).
/// For the kGcsBaseline protocol, `mu` (when > 0) is the baseline's
/// fast-mode speedup regardless of preset.
struct ParamsSpec {
  enum class Preset { kPractical, kPaperStrict, kCustom };
  Preset preset = Preset::kPractical;
  double rho = 1e-3;
  double d = 1.0;
  double U = 0.01;
  int f = 1;
  double mu = 0.0;       ///< kCustom; also the kGcsBaseline speedup
  double phi = 0.0;      ///< kCustom
  int cluster_size = 0;  ///< 0 → k = 3f+1

  core::Params build() const;
};

// ---- initial conditions & horizon ------------------------------------------

/// Initial logical-offset ramp (cluster c starts gap·c rounds ahead). The
/// gap can be given directly, in units of κ, or as a multiple of the
/// predicted global-skew band — whichever is resolved first in this order:
/// gap_band_factor, gap_kappa, gap_rounds.
struct RampSpec {
  int gap_rounds = 0;
  double gap_kappa = 0.0;        ///< gap = ⌊gap_kappa·κ/T⌋ + 1
  double gap_band_factor = 0.0;  ///< gap = ⌊factor·band/(D·T)⌋ + 1

  int resolve(const core::Params& params, int diameter) const;
  bool any() const {
    return gap_rounds > 0 || gap_kappa > 0.0 || gap_band_factor > 0.0;
  }
};

/// Run length in rounds: base + per_diameter·D + drain_factor·S/(µ·T),
/// where S is the initial global skew of the ramp (drain time scales with
/// the skew to absorb at catch-up rate µ).
struct HorizonSpec {
  double base_rounds = 300.0;
  double per_diameter_rounds = 0.0;
  double drain_factor = 0.0;

  double resolve(const core::Params& params, int diameter,
                 double initial_global) const;
};

// ---- sweep grid -------------------------------------------------------------

struct AxisValue {
  double value = 0.0;
  std::string label;  ///< display label; empty → numeric formatting

  static AxisValue of(double v) { return {v, {}}; }
  static AxisValue named(double v, std::string l) { return {v, std::move(l)}; }
};

struct SweepAxis {
  std::string name;
  std::vector<AxisValue> values;
};

enum class SeedAggregation {
  kPerSeed,        ///< one result row per (grid point, seed)
  kWorstOverSeeds, ///< one row per grid point: max over seeds (counters sum)
};

// ---- the scenario -----------------------------------------------------------

struct ScenarioSpec {
  std::string name;         ///< registry key (e.g. "e1_local_skew_vs_diameter")
  std::string title;        ///< one-line banner (paper claim)
  std::string description;  ///< longer help text for `ftgcs_bench list`

  TopologySpec topology;
  DriftSpec drift;
  FaultPlanSpec faults;
  ProtocolKind protocol = ProtocolKind::kFtGcs;
  ParamsSpec params;
  RampSpec ramp;
  HorizonSpec horizon;
  /// Event-engine backend the run's Simulator uses. Both backends produce
  /// bit-identical tables (enforced by the golden-trace pins and the
  /// queue differential test); `ftgcs_bench --engine heap|ladder` flips
  /// this for A/B throughput comparisons on any registered scenario.
  sim::QueueBackend engine = sim::QueueBackend::kLadder;

  /// Shard count for the conservative-parallel backend (src/par/): > 1
  /// stripes ONE run's cluster graph over that many worker threads in
  /// lock-step safe windows. Tables are bit-identical for every shard
  /// count (pinned by tests/test_par_shards.cpp), so `ftgcs_bench
  /// --shards T` — or the "shards" sweep axis — is a pure throughput
  /// toggle like --engine. FT-GCS protocol only; the baseline and
  /// degenerate partitions fall back to the single-simulator engine.
  int shards = 1;

  std::vector<std::uint64_t> seeds = {1};
  SeedAggregation aggregation = SeedAggregation::kPerSeed;

  double probe_interval_rounds = 0.25;  ///< skew sampling period
  double steady_after_rounds = 0.0;     ///< steady-state window start
  bool measure_m_lag = false;  ///< track max_v (maxᵤ L_u − M_v) (Lemma C.2)
  bool replicas_know_offsets = true;

  /// Streaming trace capture: write every fired pulse delivery to this
  /// .ftr file (`ftgcs_bench --trace PATH`; empty = off). Multi-task
  /// sweeps suffix ".taskN" per task so files never interleave. The bytes
  /// are identical for every `--shards T` and both `--engine` backends.
  std::string trace_path;
  /// Deterministic metrics series: write one JSONL row per probe to this
  /// file (`ftgcs_bench --metrics PATH`; empty = off), plus the
  /// nondeterministic PATH.profile sidecar (wall-clock phases + queue/
  /// shard diag). Multi-task sweeps suffix ".taskN" like trace_path. The
  /// series bytes are identical for every `--shards T` and both
  /// `--engine` backends; the sidecar is not.
  std::string metrics_path;
  /// Online invariant monitors (`--no-monitors` to disable). Probe-tier
  /// cost; reported in the --timing footer, never in the tables.
  bool monitors = true;

  std::vector<SweepAxis> axes;       ///< the parameter grid
  std::vector<std::string> columns;  ///< metric names the table sink prints

  /// Grid size (product of axis lengths; 1 if no axes) × seed count.
  std::size_t num_points() const;
  std::size_t num_tasks() const { return num_points() * seeds.size(); }
};

/// Writes one axis assignment into the spec. Supported axis names:
///   diameter, clusters, gap_rounds, gap_kappa, f, cluster_size,
///   faults_per_cluster, strategy, attacked, rho, d, U, mu, phi,
///   horizon_rounds, flip_rounds, probability, shards, fault_mode
/// (fault_mode = the FaultMode enum ordinal: 0 none, 1 uniform,
/// 2 in-cluster, 3 iid — the knob that turns a fault-free throughput
/// scenario like large_torus into a fault-heavy one from the CLI;
/// strategy strength falls back to the per-strategy default when no
/// explicit param was registered)
/// Throws std::invalid_argument for anything else.
void apply_axis(ScenarioSpec& spec, const std::string& name, double value);

/// Formats an axis value: the label when given, otherwise "%g".
std::string format_axis_value(const AxisValue& v);

const char* topology_kind_name(TopologyKind kind);
const char* protocol_name(ProtocolKind kind);

/// Parses "heap" | "ladder" (the `--engine` flag). Throws
/// std::invalid_argument for anything else.
sim::QueueBackend parse_queue_backend(const std::string& name);

}  // namespace ftgcs::exp
