#include "clocks/hardware_clock.h"

#include "support/assert.h"

namespace ftgcs::clocks {

HardwareClock::HardwareClock(sim::Time t0, double h0, double rate)
    : t0_(t0), h0_(h0), rate_(rate) {
  FTGCS_EXPECTS(rate > 0.0);
}

double HardwareClock::read(sim::Time now) const {
  FTGCS_EXPECTS(now >= t0_);
  return h0_ + rate_ * (now - t0_);
}

void HardwareClock::set_rate(sim::Time now, double rate) {
  FTGCS_EXPECTS(now >= t0_);
  FTGCS_EXPECTS(rate > 0.0);
  h0_ = read(now);
  t0_ = now;
  rate_ = rate;
}

sim::Time HardwareClock::when_reaches(double target, sim::Time now) const {
  const double current = read(now);
  FTGCS_EXPECTS(target >= current);
  return now + (target - current) / rate_;
}

}  // namespace ftgcs::clocks
