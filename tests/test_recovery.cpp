// Transient-fault recovery: the Lynch–Welch correction path contracts
// perturbations geometrically (the property the self-stabilizing variant
// of Khanchandani–Lenzen [8] builds on). Within the proper-execution
// margins, a corrupted clock re-converges; beyond them, violations are
// recorded (full self-stabilization is documented out of scope).
#include <gtest/gtest.h>

#include <cmath>

#include "ftgcs.h"

namespace ftgcs::core {
namespace {

Params params() { return Params::practical(1e-3, 1.0, 0.01, 1); }

TEST(Recovery, SmallPerturbationReconverges) {
  const Params p = params();
  FtGcsSystem::Config config;
  config.params = p;
  config.seed = 1;
  FtGcsSystem system(net::Graph::line(2), std::move(config));
  const int victim = system.topology().node(0, 0);
  // Perturb by half the steady-state budget, mid-run.
  system.node(victim).inject_transient_fault_at(20.0 * p.T, 0.5 * p.E);
  system.start();
  system.run_until(20.0 * p.T + p.T / 2.0);

  // Right after injection the victim sticks out.
  const auto mid = metrics::measure_skews(system.snapshot(),
                                          system.topology());
  EXPECT_GE(mid.intra_cluster, 0.3 * p.E);

  // Within a handful of rounds the cluster re-converges to its usual
  // tight band (well below E).
  system.run_until(40.0 * p.T);
  const auto after = metrics::measure_skews(system.snapshot(),
                                            system.topology());
  EXPECT_LE(after.intra_cluster, 0.2 * p.E);
  EXPECT_EQ(system.total_violations(), 0u);
}

TEST(Recovery, ContractionIsGeometric) {
  // Track the victim's distance to its cluster-mates round by round: it
  // must decay by at least the recurrence contraction α per round.
  const Params p = params();
  FtGcsSystem::Config config;
  config.params = p;
  config.seed = 2;
  FtGcsSystem system(net::Graph::line(1), std::move(config));
  const int victim = system.topology().node(0, 0);
  const double offset = 0.8 * p.phi * p.tau3;  // inside the clamp margin
  system.node(victim).inject_transient_fault_at(10.0 * p.T, offset);
  system.start();

  std::vector<double> distance;
  for (int round = 0; round < 12; ++round) {
    system.run_until((11.0 + round) * p.T);
    double others = 0.0;
    int count = 0;
    for (int member : system.topology().members(0)) {
      if (member == victim) continue;
      others += system.node_logical(member);
      ++count;
    }
    distance.push_back(
        std::abs(system.node_logical(victim) - others / count));
  }
  // Contraction: after 6 rounds the residual is a small fraction.
  EXPECT_LE(distance[5], 0.25 * distance[0]);
  // And monotone-ish decay until it reaches the noise floor.
  EXPECT_LT(distance[3], distance[0]);
}

TEST(Recovery, LargePerturbationRecoversScheduleButNotValue) {
  // A jump of several round lengths exceeds what one correction can
  // absorb. What happens — a subtle property of the non-stabilizing
  // algorithm worth pinning down — is that the victim re-acquires the
  // round *schedule* (its pulses re-align with the cluster modulo T via
  // repeated clamped corrections) but its logical *value* remains offset
  // by a whole number of rounds forever: round numbers are never
  // transmitted, so nothing can tell the victim which round it is in.
  // Re-synchronizing the value is exactly what the self-stabilizing
  // wrapper of [8] adds (out of scope here). We verify:
  //  (1) the incident is transiently visible (starved rounds),
  //  (2) the other members stay tight throughout,
  //  (3) the victim's residual offset snaps near a multiple of T.
  const Params p = params();
  FtGcsSystem::Config config;
  config.params = p;
  config.seed = 3;
  FtGcsSystem system(net::Graph::line(1), std::move(config));
  const int victim = system.topology().node(0, 0);
  system.node(victim).inject_transient_fault_at(10.0 * p.T, 2.5 * p.T);
  system.start();
  system.run_until(80.0 * p.T);

  // (1) The victim transiently lost the round structure — and observed it.
  EXPECT_GT(system.node(victim).engine().starved_rounds(), 0u);

  // (2) The other members remain mutually synchronized.
  const auto& members = system.topology().members(0);
  double lo = 1e300;
  double hi = -1e300;
  double others_mean = 0.0;
  int count = 0;
  for (int member : members) {
    if (member == victim) continue;
    const double value = system.node_logical(member);
    lo = std::min(lo, value);
    hi = std::max(hi, value);
    others_mean += value;
    ++count;
  }
  others_mean /= count;
  EXPECT_LE(hi - lo, p.intra_cluster_skew_bound());
  for (int member : members) {
    if (member == victim) continue;
    EXPECT_EQ(system.node(member).engine().starved_rounds(), 0u);
  }

  // (3) Schedule recovered, value offset ≈ a whole number of rounds.
  const double residual = system.node_logical(victim) - others_mean;
  EXPECT_GT(residual, 0.5 * p.T);  // never re-converged in value
  const double rounds_off = residual / p.T;
  EXPECT_NEAR(rounds_off, std::round(rounds_off), 0.1)
      << "residual " << residual << " T " << p.T;
}

TEST(Recovery, PerturbationDoesNotPropagateAcrossClusters) {
  // A transient fault in cluster 0 must not drag cluster 1 beyond its
  // trigger slack: the estimate replicas trim the victim's pulses.
  const Params p = params();
  FtGcsSystem::Config config;
  config.params = p;
  config.seed = 4;
  FtGcsSystem system(net::Graph::line(2), std::move(config));
  const int victim = system.topology().node(0, 0);
  system.node(victim).inject_transient_fault_at(15.0 * p.T, 2.0 * p.E);
  system.start();
  system.run_until(60.0 * p.T);
  const double gap =
      std::abs(*system.cluster_clock(0) - *system.cluster_clock(1));
  EXPECT_LE(gap, p.kappa);
}

}  // namespace
}  // namespace ftgcs::core
