// Shared helpers for the experiment binaries (E1–E10).
//
// Each experiment regenerates one quantitative claim of the paper as a
// table: the header states the claim, the rows give paper-predicted vs
// measured values. EXPERIMENTS.md records the outcomes.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "byz/fault_plan.h"
#include "core/ftgcs_system.h"
#include "metrics/skew_tracker.h"
#include "metrics/table.h"
#include "net/graph.h"

namespace ftgcs::bench {

inline void banner(const char* id, const char* claim) {
  std::printf("\n==========================================================\n");
  std::printf("%s — %s\n", id, claim);
  std::printf("==========================================================\n");
}

/// Builds a line system with a logical-offset ramp of `gap_rounds` rounds
/// per cluster (the distributed-skew absorption scenario).
inline core::FtGcsSystem::Config ramp_config(const core::Params& params,
                                             int clusters, int gap_rounds,
                                             std::uint64_t seed) {
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  for (int c = 0; c < clusters; ++c) {
    config.cluster_round_offsets.push_back(c * gap_rounds);
  }
  return config;
}

struct RampOutcome {
  double max_local = 0.0;        ///< max adjacent-cluster skew seen
  double final_global = 0.0;     ///< remaining global skew at the horizon
  double initial_global = 0.0;
  std::uint64_t violations = 0;
};

/// Runs a ramp-absorption experiment on a line for `rounds` rounds.
inline RampOutcome run_ramp(const core::Params& params, int clusters,
                            int gap_rounds, double rounds,
                            std::uint64_t seed,
                            byz::FaultPlan fault_plan = {}) {
  core::FtGcsSystem::Config config =
      ramp_config(params, clusters, gap_rounds, seed);
  config.fault_plan = std::move(fault_plan);
  core::FtGcsSystem system(net::Graph::line(clusters), std::move(config));
  metrics::SkewProbe probe(system, params.T / 4.0, 0.0);
  probe.start();
  system.start();
  system.run_until(rounds * params.T);

  RampOutcome outcome;
  outcome.max_local = probe.overall_max().cluster_local;
  outcome.final_global = probe.samples().back().cluster_global;
  outcome.initial_global = (clusters - 1) * gap_rounds * params.T;
  outcome.violations = system.total_violations();
  return outcome;
}

}  // namespace ftgcs::bench
