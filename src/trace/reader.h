// Streaming reader of the binary trace format (see format.h).
//
// next() decodes one record at a time and stamps it with its replay cursor
// (seq = index in the stream, offset = absolute file offset of its first
// byte). Malformed input — bad magic, truncated frames, varint overruns,
// a trailer count that disagrees with the records actually decoded —
// throws std::runtime_error with the offending offset in the message, so
// ftgcs_trace can localize corruption instead of guessing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/format.h"

namespace ftgcs::trace {

class TraceReader {
 public:
  /// Opens `path` and validates the header. Throws std::runtime_error on
  /// open failure or a bad magic.
  explicit TraceReader(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// Decodes the next record into `out` (cursor fields included). Returns
  /// false at a clean end of stream — after validating the trailer count.
  bool next(Record& out);

  std::uint64_t records_read() const { return records_read_; }

  /// Absolute file offset at which the next record would be decoded.
  std::uint64_t offset() const {
    return frame_file_offset_ + cursor_;
  }

 private:
  bool load_frame();  ///< false on the end marker (validates the trailer)
  std::uint64_t read_varint();
  [[noreturn]] void fail(const std::string& what) const;

  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<std::uint8_t> frame_;     ///< current frame payload
  std::size_t cursor_ = 0;              ///< decode position in frame_
  std::uint32_t frame_records_left_ = 0;
  std::uint64_t frame_file_offset_ = 0;  ///< file offset of frame_[0]
  std::uint64_t prev_time_bits_ = 0;
  std::uint64_t records_read_ = 0;
  bool done_ = false;
};

}  // namespace ftgcs::trace
