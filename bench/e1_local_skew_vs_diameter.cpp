// E1 — Theorem 1.1 / Theorem 4.10: local skew O((ρd+U)·log D).
//
// A line of clusters starts with the global skew evenly distributed
// (per-edge gap just above the 2κ fast-trigger level, so the gradient
// levels engage), with and without a full budget of Byzantine faults.
// As D grows, the initial global skew S = gap·D grows linearly — the
// paper predicts the worst local skew grows only LOGARITHMICALLY:
// κ·(⌈log_b(S/κ)⌉+1), b = µ̄/ρ̄. A tree-style algorithm compresses Θ(S)
// onto one edge instead (E5).
#include "bench_util.h"

#include <cmath>

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  banner("E1", "local skew vs diameter (Theorem 1.1: O((rho*d+U)*log D))");
  std::printf("params: kappa=%.3f delta=%.3f base mu_bar/rho_bar=%.3f "
              "T=%.3f E=%.4f\n",
              params.kappa, params.delta_trig, params.gcs_base(), params.T,
              params.E);

  // Per-edge gap ≈ 2.3κ so that s=1 fast triggers engage immediately.
  const int gap_rounds =
      static_cast<int>(2.3 * params.kappa / params.T) + 1;
  std::printf("ramp: %d rounds/edge (= %.2f kappa per edge)\n\n", gap_rounds,
              gap_rounds * params.T / params.kappa);

  metrics::Table table({"D", "S(init)", "measured max local", "f=1 attacked",
                        "predicted bound", "local/kappa", "log2(D)"});
  for (int diameter : {2, 4, 8, 16, 32}) {
    const int clusters = diameter + 1;
    const double horizon_rounds = 150.0 + 40.0 * diameter;

    const RampOutcome clean =
        run_ramp(params, clusters, gap_rounds, horizon_rounds, 1);

    net::AugmentedTopology topo(net::Graph::line(clusters), params.k);
    byz::FaultPlan plan = byz::FaultPlan::uniform(
        topo, params.f, byz::StrategyKind::kTwoFaced, params.E, 77);
    const RampOutcome attacked =
        run_ramp(params, clusters, gap_rounds, horizon_rounds, 1,
                 std::move(plan));

    const double predicted =
        params.predicted_local_skew(clean.initial_global);
    table.add_row({metrics::Table::integer(diameter),
                   metrics::Table::num(clean.initial_global, 4),
                   metrics::Table::num(clean.max_local, 4),
                   metrics::Table::num(attacked.max_local, 4),
                   metrics::Table::num(predicted, 4),
                   metrics::Table::num(clean.max_local / params.kappa, 3),
                   metrics::Table::num(std::log2(diameter), 3)});
    if (clean.violations != 0 || attacked.violations != 0) {
      std::printf("WARNING: violations at D=%d (clean %llu, attacked %llu)\n",
                  diameter,
                  static_cast<unsigned long long>(clean.violations),
                  static_cast<unsigned long long>(attacked.violations));
    }
  }
  table.print(std::cout);
  std::printf(
      "\nshape check: measured local skew stays under the κ·(log_b(S/κ)+1) "
      "bound at every D and is\nessentially unchanged by the f=1 attack. "
      "Note the measured value is FLAT in D — a uniform\nramp drains "
      "without stacking trigger levels, so the bound is verified as an "
      "upper envelope;\nthe adaptive adversary that forces Ω(log D) (the "
      "Fan–Lynch-style lower-bound construction)\nis out of scope "
      "(documented in EXPERIMENTS.md).\n");

  // Second axis: scale of the imposed skew at fixed D. The gradient
  // property means the worst edge never carries much more than its
  // initial share — contrast with E5's tree compression where the worst
  // edge absorbs the FULL global skew regardless of its initial share.
  std::printf("\n-- gradient property vs imposed skew (D = 8) --\n");
  metrics::Table scale_table({"gap/edge (kappa)", "S(init)",
                              "max local seen", "max local / init local"});
  for (int gap : {2, 6, 16, 32}) {
    const RampOutcome outcome = run_ramp(params, 9, gap, 600.0, 2);
    const double init_local = gap * params.T;
    scale_table.add_row(
        {metrics::Table::num(init_local / params.kappa, 3),
         metrics::Table::num(outcome.initial_global, 4),
         metrics::Table::num(outcome.max_local, 4),
         metrics::Table::num(outcome.max_local / init_local, 3)});
  }
  scale_table.print(std::cout);
  std::printf("\nshape check: max-local/init-local stays ~1 at every scale "
              "(no compression, unlike E5's trees).\n");
  return 0;
}
