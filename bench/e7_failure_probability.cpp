// E7 — Inequality (1): the probability that a cluster of 3f+1 i.i.d.
// failing nodes exceeds its budget f is at most (3ep)^(f+1).
//
// Monte-Carlo over fault placements (the same sampler the system uses for
// i.i.d. fault plans), compared against the analytic binomial tail and the
// paper's closed-form bound; plus the system-level survival probability of
// a line of clusters.
#include <cmath>

#include "bench_util.h"
#include "sim/rng.h"

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  banner("E7", "cluster failure probability (Inequality (1))");

  const int trials = 200000;
  metrics::Table table({"f", "k", "p", "empirical P[>f faults]",
                        "analytic binomial", "bound (3ep)^(f+1)",
                        "bound holds"});
  sim::Rng rng(2026);
  for (int f : {0, 1, 2, 3}) {
    const int k = 3 * f + 1;
    for (double p : {0.001, 0.01, 0.05, 0.1}) {
      int failures = 0;
      for (int trial = 0; trial < trials; ++trial) {
        int faulty = 0;
        for (int node = 0; node < k; ++node) {
          if (rng.chance(p)) ++faulty;
        }
        if (faulty > f) ++failures;
      }
      const double empirical = static_cast<double>(failures) / trials;
      const double analytic = core::cluster_failure_probability(f, p);
      const double bound = core::cluster_failure_bound(f, p);
      table.add_row({metrics::Table::integer(f), metrics::Table::integer(k),
                     metrics::Table::num(p, 3),
                     metrics::Table::num(empirical, 3),
                     metrics::Table::num(analytic, 3),
                     metrics::Table::num(bound, 3),
                     analytic <= bound ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  // System-level survival: a line of 8 clusters operates iff no cluster
  // exceeds its budget.
  std::printf("\nsystem survival, line of 8 clusters "
              "(P[all clusters within budget] = (1-P1)^8):\n");
  metrics::Table system_table(
      {"f", "p", "empirical survival", "analytic (1-P1)^8"});
  for (int f : {1, 2}) {
    const int k = 3 * f + 1;
    for (double p : {0.01, 0.05}) {
      int survived = 0;
      for (int trial = 0; trial < trials / 10; ++trial) {
        bool ok = true;
        for (int cluster = 0; cluster < 8 && ok; ++cluster) {
          int faulty = 0;
          for (int node = 0; node < k; ++node) {
            if (rng.chance(p)) ++faulty;
          }
          if (faulty > f) ok = false;
        }
        if (ok) ++survived;
      }
      const double analytic =
          std::pow(1.0 - core::cluster_failure_probability(f, p), 8);
      system_table.add_row(
          {metrics::Table::integer(f), metrics::Table::num(p, 3),
           metrics::Table::num(static_cast<double>(survived) /
                                   (trials / 10),
                               4),
           metrics::Table::num(analytic, 4)});
    }
  }
  system_table.print(std::cout);
  std::printf("\nshape check: empirical matches the binomial tail; the "
              "(3ep)^(f+1) bound dominates;\nreliability improves "
              "super-exponentially in f for small p.\n");
  return 0;
}
