#include "exp/run.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "clocks/drift_model.h"
#include "core/ftgcs_system.h"
#include "exp/topology_graph.h"
#include "gcs/gcs_system.h"
#include "metrics/skew_tracker.h"
#include "net/augmented.h"
#include "net/channel.h"
#include "obs/phase_profiler.h"
#include "obs/sampler.h"
#include "par/partition.h"
#include "par/sharded_system.h"
#include "support/assert.h"
#include "trace/collector.h"
#include "trace/monitor.h"

namespace ftgcs::exp {

namespace {

double strategy_default_param(byz::StrategyKind kind, const core::Params& p) {
  switch (kind) {
    case byz::StrategyKind::kSilent:
      return 0.0;
    case byz::StrategyKind::kClockLiar:
      return 100.0;
    default:
      return 3.0 * p.E;
  }
}

/// `members_per_cluster` is k for the augmented FT-GCS graph and 1 for the
/// plain-GCS baseline (one node per cluster-graph vertex).
std::unique_ptr<clocks::DriftModel> build_drift(const DriftSpec& spec,
                                                const core::Params& params,
                                                int num_clusters,
                                                int members_per_cluster,
                                                std::uint64_t seed) {
  const double T = params.T;
  switch (spec.kind) {
    case DriftKind::kSpreadConstant:
      return nullptr;  // system default: ConstantDrift spread over envelope
    case DriftKind::kRandomConstant:
      return std::make_unique<clocks::ConstantDrift>(params.rho, seed, false);
    case DriftKind::kRandomWalk:
      return std::make_unique<clocks::RandomWalkDrift>(
          params.rho, spec.step_rounds * T, spec.step_size, seed);
    case DriftKind::kSinusoidal:
      return std::make_unique<clocks::SinusoidalDrift>(
          params.rho, spec.period_rounds * T, spec.step_rounds * T, seed);
    case DriftKind::kSpatialSplit: {
      std::vector<int> group;
      group.reserve(static_cast<std::size_t>(num_clusters) *
                    members_per_cluster);
      for (int c = 0; c < num_clusters; ++c) {
        for (int i = 0; i < members_per_cluster; ++i) group.push_back(c);
      }
      const int boundary = std::max(
          1, static_cast<int>(spec.boundary_frac * num_clusters));
      return std::make_unique<clocks::SpatialSplitDrift>(
          params.rho, std::move(group), boundary, spec.flip_rounds * T);
    }
  }
  FTGCS_ASSERT(false);
  return nullptr;
}

byz::FaultPlan build_fault_plan(const FaultPlanSpec& spec,
                                const net::AugmentedTopology& topo,
                                const core::Params& params,
                                std::uint64_t run_seed) {
  if (!spec.active()) return byz::FaultPlan::none();
  const double param =
      spec.default_param_for_strategy
          ? strategy_default_param(spec.strategy, params)
          : spec.param_abs + spec.param_times_E * params.E;
  const std::uint64_t seed = spec.seed != 0 ? spec.seed : run_seed;
  const int count = spec.count >= 0 ? spec.count : params.f;
  switch (spec.mode) {
    case FaultMode::kNone:
      return byz::FaultPlan::none();
    case FaultMode::kUniform:
      return byz::FaultPlan::uniform(topo, count, spec.strategy, param, seed);
    case FaultMode::kInCluster:
      return byz::FaultPlan::in_cluster(topo, spec.cluster, count,
                                        spec.strategy, param, seed);
    case FaultMode::kIid:
      return byz::FaultPlan::iid(topo, spec.probability, spec.strategy, param,
                                 seed);
  }
  FTGCS_ASSERT(false);
  return byz::FaultPlan::none();
}

struct SampleMaxima {
  double max_local = 0.0;       // cluster-local
  double max_node_local = 0.0;
  double max_intra = 0.0;
  double max_global = 0.0;      // cluster-global
  double steady_local = 0.0;    // maxima over samples at t >= steady_after
  double steady_intra = 0.0;
  double steady_global = 0.0;
  double final_local = 0.0;
  double final_global = 0.0;
  double max_m_lag = 0.0;
};

RunResult::QueueTiers queue_tiers(const sim::EventQueue::TierStats& stats) {
  RunResult::QueueTiers tiers;
  tiers.bucket_count = static_cast<double>(stats.bucket_count);
  tiers.rung_spawns = static_cast<double>(stats.rung_spawns);
  tiers.overflow_peak = static_cast<double>(stats.overflow_peak);
  tiers.reseeds = static_cast<double>(stats.reseeds);
  tiers.unordered_runs = static_cast<double>(stats.unordered_runs);
  tiers.unordered_events = static_cast<double>(stats.unordered_events);
  tiers.ordered_run_events = static_cast<double>(stats.ordered_run_events);
  tiers.narrow_events = static_cast<double>(stats.narrow_events);
  tiers.wide_events = static_cast<double>(stats.wide_events);
  tiers.group_inserts = static_cast<double>(stats.group_inserts);
  return tiers;
}

// Uniform accessors over the two FT-GCS execution backends (the single
// simulator and the sharded conservative-parallel driver), so one
// measurement loop serves both and the metric schema cannot drift apart.
sim::Time system_now(core::FtGcsSystem& s) { return s.simulator().now(); }
sim::Time system_now(const par::ShardedFtGcsSystem& s) { return s.now(); }
std::uint64_t system_events(core::FtGcsSystem& s) {
  return s.simulator().fired_events();
}
std::uint64_t system_events(const par::ShardedFtGcsSystem& s) {
  return s.fired_events();
}
std::uint64_t system_messages(core::FtGcsSystem& s) {
  return s.network().messages_sent();
}
std::uint64_t system_messages(const par::ShardedFtGcsSystem& s) {
  return s.messages_sent();
}
RunResult::QueueTiers system_queue(core::FtGcsSystem& s) {
  return queue_tiers(s.simulator().queue_stats());
}
RunResult::QueueTiers system_queue(const par::ShardedFtGcsSystem& s) {
  return queue_tiers(s.queue_stats());
}
sim::EventQueue::TierStats system_tier_stats(core::FtGcsSystem& s) {
  return s.simulator().queue_stats();
}
sim::EventQueue::TierStats system_tier_stats(
    const par::ShardedFtGcsSystem& s) {
  return s.queue_stats();
}
void system_window_diag(core::FtGcsSystem&,
                        std::vector<obs::ShardWindowDiag>& out) {
  out.clear();
}
void system_window_diag(const par::ShardedFtGcsSystem& s,
                        std::vector<obs::ShardWindowDiag>& out) {
  s.shard_window_diag(out);
}
RunResult::ShardDiag system_shard_diag(core::FtGcsSystem&) {
  return {};
}
RunResult::ShardDiag system_shard_diag(const par::ShardedFtGcsSystem& s) {
  const par::ShardedFtGcsSystem::ShardStats stats = s.shard_stats();
  RunResult::ShardDiag diag;
  diag.shards = static_cast<double>(stats.shards);
  diag.cut_edges = static_cast<double>(stats.cut_edges);
  diag.min_cut_delay = stats.min_cut_delay;
  diag.windows = static_cast<double>(stats.windows);
  diag.mailbox_peak = static_cast<double>(stats.mailbox_peak);
  return diag;
}

/// Sample times: every probe interval, plus the horizon itself.
std::vector<double> sample_times(double horizon_rounds, double interval_rounds,
                                 double T) {
  std::vector<double> times;
  for (int i = 1; i * interval_rounds < horizon_rounds - 1e-9; ++i) {
    times.push_back(i * interval_rounds * T);
  }
  times.push_back(horizon_rounds * T);
  return times;
}

/// Runs the probe loop and assembles the metric schema against either
/// FT-GCS backend (single simulator or sharded). Every metric is computed
/// from merged ground truth + summed counters, so the rows are
/// bit-identical across backends and shard counts.
template <class System>
RunResult measure_ftgcs(System& system, const ResolvedRun& run,
                        const net::AugmentedTopology& topo,
                        trace::TraceCollector* collector,
                        obs::PhaseProfiler* profiler) {
  const core::Params& params = run.params;
  const int clusters = topo.num_clusters();
  const int diameter = run.graph.diameter();

  const double s_init = (clusters - 1) * run.gap_rounds * params.T;
  const double band = params.predicted_global_skew(diameter);
  const double intra_bound = params.intra_cluster_skew_bound();

  // Online monitors: bounds derived from the same predictions the metric
  // schema reports. S_env = max(initial ramp height, c·δ·D band) is the
  // global-skew envelope of the whole run (the skew drains from s_init
  // into the band and never re-expands past it); Theorem 4.10 then bounds
  // the cluster-local skew for that S, and every node-level quantity adds
  // at most one intra-cluster spread on top of its cluster-level
  // counterpart (the monitor scans node clocks, the theorems speak about
  // cluster clocks). Single-cluster graphs have S_env = 0: only the
  // intra-cluster invariant is meaningful there.
  std::unique_ptr<trace::InvariantMonitor> monitor;
  if (run.monitors) {
    trace::MonitorBounds bounds;
    bounds.intra_cluster = intra_bound;
    const double s_env = std::max(s_init, band);
    if (s_env > 0.0) {
      bounds.local_skew = params.predicted_local_skew(s_env) + intra_bound;
      bounds.global_skew = s_env + intra_bound;
      if (run.measure_m_lag) bounds.m_lag = s_env + intra_bound;
    }
    const net::UniformDelay delays(params.d, params.U);
    monitor = std::make_unique<trace::InvariantMonitor>(
        build_topology_graph(topo, delays), bounds);
  }

  // Deterministic metrics series: registered against the SAME bounds the
  // monitor checks, so the margin gauges and the footer print one truth.
  // The histogram scale is params-derived (envelope height, falling back
  // to the intra-cluster bound), hence identical across backends.
  std::unique_ptr<obs::ProbeSampler> sampler;
  if (!run.metrics_path.empty()) {
    obs::ProbeSampler::Config sampler_config;
    sampler_config.path = run.metrics_path;
    sampler_config.monitors = monitor != nullptr;
    if (monitor != nullptr) sampler_config.bounds = monitor->bounds();
    sampler_config.measure_m_lag = run.measure_m_lag;
    const double scale = std::max(intra_bound, std::max(s_init, band));
    sampler_config.hist_scale = scale > 0.0 ? scale : 1.0;
    const net::UniformDelay delays(params.d, params.U);
    sampler = std::make_unique<obs::ProbeSampler>(
        std::move(sampler_config), build_topology_graph(topo, delays));
    sampler->prewarm();
  }

  SampleMaxima agg;
  const double steady_after = run.steady_after_rounds * params.T;
  core::SystemColumns columns;  // reused across probes (columnar reads)
  std::vector<obs::ShardWindowDiag> diag_scratch;
  for (double t : sample_times(run.horizon_rounds, run.probe_interval_rounds,
                               params.T)) {
    if (profiler != nullptr) profiler->span_begin("run");
    system.run_until(t);
    if (profiler != nullptr) {
      profiler->span_end("run");
      profiler->span_begin("collect");
    }
    // Probe boundaries are the quiesced commit points of the trace: every
    // shard has advanced to exactly t and its worker is parked, so the
    // per-shard capture buffers are safe to merge.
    if (collector != nullptr) collector->commit();
    system.snapshot_columns(columns);
    const auto skews = metrics::measure_skews(columns, topo);
    agg.max_local = std::max(agg.max_local, skews.cluster_local);
    agg.max_node_local = std::max(agg.max_node_local, skews.node_local);
    agg.max_intra = std::max(agg.max_intra, skews.intra_cluster);
    agg.max_global = std::max(agg.max_global, skews.cluster_global);
    if (t >= steady_after) {
      agg.steady_local = std::max(agg.steady_local, skews.cluster_local);
      agg.steady_intra = std::max(agg.steady_intra, skews.intra_cluster);
      agg.steady_global = std::max(agg.steady_global, skews.cluster_global);
    }
    agg.final_local = skews.cluster_local;
    agg.final_global = skews.cluster_global;
    double probe_m_lag = 0.0;
    if (run.measure_m_lag) {
      double lmax = 0.0;
      for (int id = 0; id < columns.num_nodes(); ++id) {
        if (columns.correct[static_cast<std::size_t>(id)]) {
          lmax = std::max(lmax, columns.logical[static_cast<std::size_t>(id)]);
        }
      }
      const sim::Time now = system_now(system);
      for (int id = 0; id < topo.num_nodes(); ++id) {
        if (!system.is_correct(id)) continue;
        probe_m_lag = std::max(
            probe_m_lag, lmax - system.node(id).max_estimate(now));
      }
      agg.max_m_lag = std::max(agg.max_m_lag, probe_m_lag);
    }
    if (monitor != nullptr) {
      trace::MonitorCursor cursor;
      cursor.at = t;
      cursor.events = system_events(system);
      cursor.trace_records = collector != nullptr ? collector->records() : 0;
      cursor.trace_offset =
          collector != nullptr ? collector->cursor_offset() : 0;
      monitor->observe(columns, cursor);
      if (run.measure_m_lag) monitor->observe_m_lag(probe_m_lag, cursor);
    }
    if (sampler != nullptr) {
      obs::SampleContext ctx;
      ctx.at = t;
      ctx.events = system_events(system);
      ctx.messages = system_messages(system);
      ctx.skews = &skews;
      ctx.columns = &columns;
      ctx.monitor = monitor.get();
      ctx.m_lag = probe_m_lag;
      sampler->sample(ctx);
    }
    if (profiler != nullptr) {
      // The diag rows live in the sidecar, never the series: tier mix is
      // engine-dependent and the per-shard split is shard-dependent.
      system_window_diag(system, diag_scratch);
      profiler->probe_diag(t, system_tier_stats(system), diag_scratch);
      profiler->span_end("collect");
    }
  }

  // ---- static structure ----
  const std::size_t base_edges = run.graph.num_edges();
  std::size_t max_degree = 0;
  for (const auto& neighbors : topo.adjacency()) {
    max_degree = std::max(max_degree, neighbors.size());
  }

  const double init_local = run.gap_rounds * params.T;
  const double predicted_local =
      s_init > 0.0 ? params.predicted_local_skew(s_init) : 0.0;
  const double messages = static_cast<double>(system_messages(system));

  RunResult result;
  result.seed = run.seed;
  auto& m = result.metrics;
  m.emplace_back("clusters", clusters);
  m.emplace_back("diameter", diameter);
  m.emplace_back("nodes", topo.num_nodes());
  m.emplace_back("edges", static_cast<double>(topo.num_edges()));
  m.emplace_back("max_degree", static_cast<double>(max_degree));
  m.emplace_back("k", params.k);
  m.emplace_back("f", params.f);
  m.emplace_back("node_factor",
                 static_cast<double>(topo.num_nodes()) / clusters);
  m.emplace_back("edge_factor",
                 base_edges > 0
                     ? static_cast<double>(topo.num_edges()) / base_edges
                     : 0.0);
  m.emplace_back("edge_factor_norm",
                 base_edges > 0 ? static_cast<double>(topo.num_edges()) /
                                      (base_edges * (params.f + 1.0) *
                                       (params.f + 1.0))
                                : 0.0);
  m.emplace_back("kappa", params.kappa);
  m.emplace_back("delta", params.delta_trig);
  m.emplace_back("T", params.T);
  m.emplace_back("E", params.E);
  m.emplace_back("S_init", s_init);
  m.emplace_back("init_local", init_local);
  m.emplace_back("max_local", agg.max_local);
  m.emplace_back("max_node_local", agg.max_node_local);
  m.emplace_back("max_intra", agg.max_intra);
  m.emplace_back("max_global", agg.max_global);
  m.emplace_back("steady_local", agg.steady_local);
  m.emplace_back("steady_intra", agg.steady_intra);
  m.emplace_back("steady_global", agg.steady_global);
  m.emplace_back("final_local", agg.final_local);
  m.emplace_back("final_global", agg.final_global);
  m.emplace_back("ratio_local",
                 init_local > 0.0 ? agg.max_local / init_local : 0.0);
  m.emplace_back("local_over_kappa",
                 params.kappa > 0.0 ? agg.max_local / params.kappa : 0.0);
  m.emplace_back("log2_diameter",
                 diameter > 0 ? std::log2(static_cast<double>(diameter))
                              : 0.0);
  m.emplace_back("predicted_local", predicted_local);
  m.emplace_back("in_local_bound",
                 predicted_local <= 0.0 || agg.max_local <= predicted_local
                     ? 1.0
                     : 0.0);
  m.emplace_back("band", band);
  // Drain semantics: the remaining skew at the horizon is inside the band.
  m.emplace_back("in_global_band", agg.final_global <= band ? 1.0 : 0.0);
  // Containment semantics: the band was never left at any sample.
  m.emplace_back("in_global_band_max", agg.max_global <= band ? 1.0 : 0.0);
  m.emplace_back("intra_bound", intra_bound);
  m.emplace_back("in_intra_bound", agg.max_intra <= intra_bound ? 1.0 : 0.0);
  m.emplace_back("violations",
                 static_cast<double>(system.total_violations()));
  m.emplace_back("messages", messages);
  m.emplace_back("msgs_round_node",
                 messages / (run.horizon_rounds * topo.num_nodes()));
  m.emplace_back("events", static_cast<double>(system_events(system)));
  if (run.measure_m_lag) m.emplace_back("max_m_lag", agg.max_m_lag);
  result.queue = system_queue(system);
  result.shard = system_shard_diag(system);
  if (monitor != nullptr) {
    result.monitor.enabled = true;
    result.monitor.bounds = monitor->bounds();
    result.monitor.stats = monitor->stats();
  }
  if (sampler != nullptr) {
    sampler->finish();
    result.series.enabled = true;
    result.series.path = run.metrics_path;
    result.series.probes = static_cast<double>(sampler->probes());
    result.series.bytes = static_cast<double>(sampler->bytes());
  }
  return result;
}

/// measure_ftgcs plus trace finalization: seals the file (end marker +
/// trailer) and stamps the capture summary into the result.
template <class System>
RunResult measure_and_seal(System& system, const ResolvedRun& run,
                           const net::AugmentedTopology& topo,
                           trace::TraceCollector* collector,
                           obs::PhaseProfiler* profiler = nullptr) {
  RunResult result = measure_ftgcs(system, run, topo, collector, profiler);
  if (collector != nullptr) {
    collector->finish();
    result.trace.enabled = true;
    result.trace.path = run.trace_path;
    result.trace.records = static_cast<double>(collector->records());
    result.trace.bytes = static_cast<double>(collector->bytes_written());
  }
  if (profiler != nullptr) {
    // Stamp the footer summary from the accumulators, then let finish()
    // write the sidecar rows and close the file. The workers are parked
    // at the start barrier here (run_until returned), so the slot reads
    // are barrier-ordered.
    const obs::PhaseProfiler::PhaseTotals totals = profiler->totals();
    result.profile.enabled = true;
    result.profile.shards = static_cast<double>(profiler->shards());
    result.profile.merge_ms = totals.merge_ms;
    result.profile.run_ms = totals.run_ms;
    result.profile.wait_ms = totals.collect_ms;
    result.profile.imbalance = profiler->imbalance();
    profiler->finish();
  }
  return result;
}

RunResult run_ftgcs(const ResolvedRun& run) {
  const core::Params& params = run.params;

  // Created before either backend (like the trace collector below) so it
  // outlives the system: parked workers touch their phase slots until
  // the system's destructor joins them.
  std::unique_ptr<obs::PhaseProfiler> profiler;
  if (!run.metrics_path.empty()) {
    profiler =
        std::make_unique<obs::PhaseProfiler>(run.metrics_path + ".profile");
    profiler->span_begin("setup");
  }

  net::AugmentedTopology topo(run.graph, params.k);
  const int clusters = topo.num_clusters();

  // Created before either backend so its shard sinks outlive the system;
  // the resulting file is byte-identical at every shard count.
  std::unique_ptr<trace::TraceCollector> collector;
  if (!run.trace_path.empty()) {
    collector = std::make_unique<trace::TraceCollector>(run.trace_path);
  }

  std::vector<int> offsets;
  if (run.gap_rounds > 0) {
    for (int c = 0; c < clusters; ++c) {
      offsets.push_back(c * run.gap_rounds);
    }
  }

  if (run.shards > 1) {
    // The sharded backend needs a non-degenerate partition (≥ 2 effective
    // shards and a positive conservative lookahead); otherwise fall
    // through to the single-simulator engine below.
    const net::UniformDelay delays(params.d, params.U);
    par::ShardPlan plan = par::make_shard_plan(
        build_topology_graph(topo, delays), run.shards);
    if (!plan.degenerate()) {
      par::ShardedFtGcsSystem::Config config;
      config.params = params;
      config.seed = run.seed;
      config.engine = run.engine;
      config.replicas_know_offsets = run.replicas_know_offsets;
      config.fault_plan = run.fault_plan;
      config.cluster_round_offsets = offsets;
      config.shards = plan.num_shards;
      config.plan = std::move(plan);  // probed above; skip the re-census
      config.shared_topo = &topo;  // one topology for driver + every shard
      // Every shard replays the same rate draws: the factory rebuilds the
      // model from the same spec and seed per shard.
      if (run.drift.kind != DriftKind::kSpreadConstant) {
        config.drift_factory = [&run, &params, clusters] {
          return build_drift(run.drift, params, clusters, params.k,
                             run.seed);
        };
      }
      config.trace = collector.get();
      config.profiler = profiler.get();
      par::ShardedFtGcsSystem system(run.graph, std::move(config));
      system.start();
      if (profiler != nullptr) profiler->span_end("setup");
      return measure_and_seal(system, run, topo, collector.get(),
                              profiler.get());
    }
  }

  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = run.seed;
  config.engine = run.engine;
  config.replicas_know_offsets = run.replicas_know_offsets;
  config.drift_model =
      build_drift(run.drift, params, clusters, params.k, run.seed);
  config.fault_plan = run.fault_plan;
  config.cluster_round_offsets = offsets;
  config.shared_topo = &topo;  // already built above for metrics
  if (collector != nullptr) config.trace_sink = collector->shard_sink(0);

  core::FtGcsSystem system(run.graph, std::move(config));
  system.start();
  if (profiler != nullptr) profiler->span_end("setup");
  return measure_and_seal(system, run, topo, collector.get(),
                          profiler.get());
}

RunResult run_gcs_baseline(const ResolvedRun& run) {
  const int n = run.graph.num_vertices();
  const int diameter = run.graph.diameter();

  gcs::GcsSystem::Config config;
  config.engine = run.engine;
  const double mu = run.baseline_mu > 0.0 ? run.baseline_mu : 0.05;
  config.params = gcs::GcsParams::derive(run.params.rho, run.params.d,
                                         run.params.U, mu, run.params.d);
  config.seed = run.seed;
  config.drift_model = build_drift(run.drift, run.params, n, 1, run.seed);
  if (run.fault_plan.size() > 0) {
    // Plain GCS has no cluster structure: reuse the planned node ids as
    // pump nodes (ids beyond the base graph are clamped away).
    for (const auto& spec : run.fault_plan.specs()) {
      if (spec.node < n) config.pump_nodes.push_back(spec.node);
    }
    config.pump_rate = run.fault_plan.specs().front().param;
  }

  gcs::GcsSystem system(run.graph, std::move(config));
  system.start();

  SampleMaxima agg;
  for (double t : sample_times(run.horizon_rounds, run.probe_interval_rounds,
                               run.params.T)) {
    system.run_until(t);
    const double local = system.local_skew();
    const double global = system.global_skew();
    agg.max_local = std::max(agg.max_local, local);
    agg.max_global = std::max(agg.max_global, global);
    agg.final_local = local;
    agg.final_global = global;
  }

  RunResult result;
  result.seed = run.seed;
  auto& m = result.metrics;
  m.emplace_back("clusters", n);
  m.emplace_back("diameter", diameter);
  m.emplace_back("nodes", n);
  m.emplace_back("edges", static_cast<double>(run.graph.num_edges()));
  m.emplace_back("kappa", config.params.kappa);
  m.emplace_back("max_local", agg.max_local);
  m.emplace_back("max_global", agg.max_global);
  m.emplace_back("final_local", agg.final_local);
  m.emplace_back("final_global", agg.final_global);
  m.emplace_back("events",
                 static_cast<double>(system.simulator().fired_events()));
  result.queue = queue_tiers(system.simulator().queue_stats());
  return result;
}

}  // namespace

bool RunResult::has_metric(const std::string& name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return true;
  }
  return false;
}

double RunResult::metric(const std::string& name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  FTGCS_EXPECTS(!"unknown metric name");
  return 0.0;
}

void RunResult::set_metric(const std::string& name, double value) {
  for (auto& [key, existing] : metrics) {
    if (key == name) {
      existing = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

ResolvedRun resolve(const ScenarioSpec& spec, std::uint64_t seed) {
  ResolvedRun run;
  run.params = spec.params.build();
  run.graph = spec.topology.build();
  run.protocol = spec.protocol;
  run.engine = spec.engine;
  run.shards = spec.shards;
  run.drift = spec.drift;
  run.baseline_mu = spec.params.mu;
  run.seed = seed;
  run.probe_interval_rounds = spec.probe_interval_rounds;
  run.steady_after_rounds = spec.steady_after_rounds;
  run.measure_m_lag = spec.measure_m_lag;
  run.replicas_know_offsets = spec.replicas_know_offsets;
  run.trace_path = spec.trace_path;
  run.metrics_path = spec.metrics_path;
  run.monitors = spec.monitors;

  const int diameter = run.graph.diameter();
  run.gap_rounds = spec.ramp.resolve(run.params, diameter);
  const double s_init =
      (run.graph.num_vertices() - 1) * run.gap_rounds * run.params.T;
  run.horizon_rounds = spec.horizon.resolve(run.params, diameter, s_init);

  if (spec.protocol == ProtocolKind::kFtGcs) {
    net::AugmentedTopology topo(run.graph, run.params.k);
    run.fault_plan =
        build_fault_plan(spec.faults, topo, run.params, seed);
  } else if (spec.faults.active()) {
    // Baseline pump faults: `count` nodes spread evenly over the graph.
    const int count = std::max(1, spec.faults.count);
    const int n = run.graph.num_vertices();
    for (int i = 0; i < count && i < n; ++i) {
      byz::FaultSpec fault;
      fault.node = static_cast<int>(
          (static_cast<long long>(i) * n) / count);
      fault.kind = spec.faults.strategy;
      fault.param = spec.faults.param_abs;
      run.fault_plan.add(fault);
    }
  }
  return run;
}

RunResult run_resolved(const ResolvedRun& run) {
  switch (run.protocol) {
    case ProtocolKind::kFtGcs:
      return run_ftgcs(run);
    case ProtocolKind::kGcsBaseline:
      return run_gcs_baseline(run);
  }
  FTGCS_ASSERT(false);
  return {};
}

RunResult run_point(const ScenarioSpec& spec, std::uint64_t seed) {
  RunResult result = run_resolved(resolve(spec, seed));
  result.scenario = spec.name;
  return result;
}

}  // namespace ftgcs::exp
