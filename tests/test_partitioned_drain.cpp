// Lockstep differential fuzz: the time-partitioned unordered drain
// (EventQueue::pop_run_unordered) against a plain ordered drain of the
// SAME op stream on the SAME backend, for both backends.
//
// The partitioned drain's contract is not "same pop order" — it
// deliberately gives that up below the horizon — but "same multiset of
// admitted events, same ordered residue": any event the predicate admits
// must come out exactly once (through a tranche or an ordered pop), and
// everything else must fire through pop() in exactly the reference order.
// The fuzz drives both queues through a tier-crossing mixture (dense
// clusters, far spikes, ties, cancels, timer reschedules, truncated
// tranche buffers, finite and infinite horizons) and checks that
// equivalence at full-drain checkpoints. On the heap backend the
// partitioned drain is specified to be a no-op (ordered reference
// semantics ARE the heap), which the fuzz pins too.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace ftgcs::sim {
namespace {

constexpr SinkId kBatchSink = 0;
constexpr SinkId kTimerSink = 1;
const std::uint32_t kBatchKey =
    kBatchSink << 8 | static_cast<std::uint32_t>(EventKind::kPulse);

/// Time-invariant (hence trivially monotone) predicate: admits even tags.
/// Odd-tag pulses and every timer stay on the ordered path, so admitted
/// and residual traffic interleave in the same buckets.
bool admit_even(const EventPayload& payload, const void*) {
  return (payload.a & 1) == 0;
}

/// One observed emission; `b` carries a second random tag so a popped
/// event is self-describing. (`x` would be natural but is unusable here:
/// a nonzero `x` forces schedule_fire_only onto the slotted fallback,
/// whose entries are invisible to the batch channel by design.)
using Obs = std::tuple<Time, std::int32_t, std::int32_t>;

Obs observe(Time at, const EventPayload& payload) {
  return {at, payload.a, payload.b};
}

bool admitted(const EventQueue::Fired& fired) {
  return fired.kind == EventKind::kPulse &&
         admit_even(fired.payload, nullptr);
}

Time draw_time(Rng& rng, Time now) {
  const double pick = rng.next_double();
  if (pick < 0.35) return now + rng.next_double();             // near future
  if (pick < 0.55) return now + 0.5;                           // exact ties
  if (pick < 0.70) return now + rng.next_double() * 1e-6;      // dense cluster
  if (pick < 0.85) return now + 100.0 + rng.next_double();     // mid horizon
  return now + 1e5 * (1.0 + rng.next_double());                // far spike
}

void run_fuzz(QueueBackend backend, std::uint64_t seed) {
  Rng rng(seed);
  EventQueue subject(backend);    // drains with partitioned tranches
  EventQueue reference(backend);  // drains ordered only
  std::vector<EventId> subject_timers;
  std::vector<EventId> reference_timers;

  std::vector<Obs> subject_admitted;
  std::vector<Obs> reference_admitted;
  std::uint64_t tranche_events = 0;
  BatchedEvent buf[64];

  Time now = 0.0;
  for (int round = 0; round < 60; ++round) {
    // ---- identical op stream into both queues ----
    for (int op = 0; op < 400; ++op) {
      const double pick = rng.next_double();
      const Time t = draw_time(rng, now);
      if (pick < 0.55) {
        EventPayload payload;
        payload.a = static_cast<std::int32_t>(rng.below(1 << 20));
        payload.b = static_cast<std::int32_t>(rng.below(1 << 20));
        // A slice of the pulses carries a nonzero `x`: schedule_fire_only
        // silently diverts those to the slotted path, where they are
        // barriers for the partitioned drain (sink_kind 0) but admitted
        // pulses on the ordered path — the mixed shape a real network
        // produces for oversized payloads.
        if (rng.next_double() < 0.1) payload.x = t;
        subject.schedule_fire_only(t, EventKind::kPulse, kBatchSink, payload);
        reference.schedule_fire_only(t, EventKind::kPulse, kBatchSink,
                                     payload);
      } else if (pick < 0.80 || subject_timers.empty()) {
        EventPayload payload;
        payload.a = -1 - op;  // odd-ball tag space; never admitted (kTimer)
        payload.x = t;
        subject_timers.push_back(
            subject.schedule_typed(t, EventKind::kTimer, kTimerSink,
                                   payload));
        reference_timers.push_back(
            reference.schedule_typed(t, EventKind::kTimer, kTimerSink,
                                     payload));
      } else if (pick < 0.90) {
        const std::size_t i = rng.below(subject_timers.size());
        ASSERT_EQ(subject.cancel(subject_timers[i]),
                  reference.cancel(reference_timers[i]));
        subject_timers[i] = subject_timers.back();
        subject_timers.pop_back();
        reference_timers[i] = reference_timers.back();
        reference_timers.pop_back();
      } else {
        const std::size_t i = rng.below(subject_timers.size());
        const Time target = draw_time(rng, now);
        ASSERT_EQ(subject.reschedule(subject_timers[i], target),
                  reference.reschedule(reference_timers[i], target));
      }
    }

    // ---- mid-round partitioned tranches on the subject only ----
    // Finite horizons and a deliberately small buffer: exercises the
    // strict at < lim emission, per-bucket floor caches across repeated
    // sweeps, and the buffer-full truncation path.
    const int tranches = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < tranches; ++i) {
      const Time t_end = now + 50.0 * rng.next_double();
      const std::size_t cap = 1 + rng.below(64);
      const std::size_t n = subject.pop_run_unordered(
          t_end, kBatchKey, admit_even, nullptr, buf, cap);
      if (backend == QueueBackend::kHeap) {
        ASSERT_EQ(n, 0u);  // partitioned drain is a ladder-only fast path
      }
      ASSERT_LE(n, cap);
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_LE(buf[j].at, t_end);
        ASSERT_TRUE(admit_even(buf[j].payload, nullptr));
        subject_admitted.push_back(observe(buf[j].at, buf[j].payload));
      }
      tranche_events += n;
    }

    // ---- checkpoint every few rounds: drain both to empty, compare ----
    if (round % 7 != 6 && round != 59) continue;
    std::vector<Obs> subject_rest;
    while (!subject.empty()) {
      const std::size_t n = subject.pop_run_unordered(
          kTimeInfinity, kBatchKey, admit_even, nullptr, buf, 64);
      if (n != 0) {
        for (std::size_t j = 0; j < n; ++j) {
          subject_admitted.push_back(observe(buf[j].at, buf[j].payload));
        }
        tranche_events += n;
        continue;
      }
      // Barrier (sorted bucket, or a heap): one ordered pop makes progress.
      const EventQueue::Fired fired = subject.pop();
      now = std::max(now, fired.at);
      if (admitted(fired)) {
        subject_admitted.push_back(observe(fired.at, fired.payload));
      } else {
        subject_rest.push_back(observe(fired.at, fired.payload));
      }
    }
    std::vector<Obs> reference_rest;
    while (!reference.empty()) {
      const EventQueue::Fired fired = reference.pop();
      // Track the global frontier off the ordered reference (it pops
      // EVERYTHING, so its last pop is the true maximum): the next round's
      // schedule times must be >= both queues' internal clocks, or the
      // two would clamp below-frontier times differently.
      now = std::max(now, fired.at);
      if (admitted(fired)) {
        reference_admitted.push_back(observe(fired.at, fired.payload));
      } else {
        reference_rest.push_back(observe(fired.at, fired.payload));
      }
    }
    subject_timers.clear();
    reference_timers.clear();

    // Same admitted multiset (order-free), same ordered residue (exact).
    std::sort(subject_admitted.begin(), subject_admitted.end());
    std::sort(reference_admitted.begin(), reference_admitted.end());
    ASSERT_EQ(subject_admitted, reference_admitted);
    ASSERT_EQ(subject_rest, reference_rest);
    subject_admitted.clear();
    reference_admitted.clear();
  }

  // The run-length counters must account for exactly the tranche traffic.
  EXPECT_EQ(subject.tier_stats().unordered_events, tranche_events);
  if (backend == QueueBackend::kLadder) {
    EXPECT_GT(tranche_events, 0u);
    EXPECT_GT(subject.tier_stats().unordered_runs, 0u);
  } else {
    EXPECT_EQ(tranche_events, 0u);
  }
}

TEST(PartitionedDrainDifferential, LadderMatchesOrderedReference) {
  run_fuzz(QueueBackend::kLadder, 1234);
  run_fuzz(QueueBackend::kLadder, 99);
}

TEST(PartitionedDrainDifferential, HeapPartitionedDrainIsANoOp) {
  run_fuzz(QueueBackend::kHeap, 1234);
}

}  // namespace
}  // namespace ftgcs::sim
