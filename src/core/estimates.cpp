#include "core/estimates.h"

#include "support/assert.h"

namespace ftgcs::core {

EstimateBank::EstimateBank(sim::Simulator& simulator,
                           const ClusterSyncConfig& cfg,
                           const std::vector<int>& adjacent_clusters,
                           double initial_hardware_rate, sim::Rng& rng,
                           const std::vector<int>& start_rounds)
    : order_(adjacent_clusters) {
  FTGCS_EXPECTS(start_rounds.empty() ||
                start_rounds.size() == order_.size());
  ClusterSyncConfig passive_cfg = cfg;
  passive_cfg.active = false;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const int cluster = order_[i];
    passive_cfg.start_round = start_rounds.empty() ? 1 : start_rounds[i];
    auto engine = std::make_unique<ClusterSyncEngine>(
        simulator, passive_cfg, initial_hardware_rate,
        rng.fork(static_cast<std::uint64_t>(cluster) + 1));
    const auto [it, inserted] = replicas_.emplace(cluster, std::move(engine));
    FTGCS_EXPECTS(inserted);
    (void)it;
  }
}

void EstimateBank::start() {
  for (auto& [cluster, replica] : replicas_) replica->start();
}

void EstimateBank::on_pulse(int cluster, int member_index, sim::Time now) {
  auto it = replicas_.find(cluster);
  FTGCS_EXPECTS(it != replicas_.end());
  it->second->on_member_pulse(member_index, now);
}

double EstimateBank::estimate(int cluster, sim::Time now) const {
  auto it = replicas_.find(cluster);
  FTGCS_EXPECTS(it != replicas_.end());
  return it->second->clock().read(now);
}

std::vector<double> EstimateBank::all_estimates(sim::Time now) const {
  std::vector<double> values;
  values.reserve(order_.size());
  for (int cluster : order_) values.push_back(estimate(cluster, now));
  return values;
}

void EstimateBank::set_hardware_rate(sim::Time now, double rate) {
  for (auto& [cluster, replica] : replicas_) {
    replica->set_hardware_rate(now, rate);
  }
}

std::uint64_t EstimateBank::violations() const {
  std::uint64_t total = 0;
  for (const auto& [cluster, replica] : replicas_) {
    total += replica->violations();
  }
  return total;
}

ClusterSyncEngine& EstimateBank::replica(int cluster) {
  auto it = replicas_.find(cluster);
  FTGCS_EXPECTS(it != replicas_.end());
  return *it->second;
}

}  // namespace ftgcs::core
