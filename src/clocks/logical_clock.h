// Logical clock per paper eq. (2):
//
//   L_v(t) = ∫₀ᵗ (1 + ϕ·δ_v(τ)) · (1 + µ·γ_v(τ)) · h_v(τ) dτ
//
// δ_v ∈ R≥0 is the Lynch–Welch amortization control (ClusterSync phase 3),
// γ_v ∈ {0,1} is the GCS fast/slow mode, and h_v is the hardware rate. All
// three factors are piecewise constant, so L_v is piecewise linear and is
// integrated in closed form segment by segment.
//
// The clock notifies an optional observer when its overall rate changes;
// LogicalTimerSet uses this to reschedule pending logical-time timers.
#pragma once

#include <functional>

#include "sim/time_types.h"

namespace ftgcs::clocks {

/// Write-through copy of a clock's piecewise-linear segment (L(t) = l0 +
/// rate·(t − t0)). A LogicalClock bound to a mirror republishes these three
/// words after every factor change, so an external reader — the columnar
/// node table's pulse-receive path — evaluates the clock with the exact
/// arithmetic of LogicalClock::read() without touching the clock object.
struct ClockMirror {
  double l0 = 0.0;
  sim::Time t0 = 0.0;
  double rate = 0.0;
};

class LogicalClock {
 public:
  /// `phi` and `mu` are the constants of eq. (2); both fixed for the run.
  LogicalClock(double phi, double mu, double hardware_rate,
               sim::Time t0 = 0.0, double l0 = 0.0);

  /// L_v(now). Requires now >= time of last factor change.
  double read(sim::Time now) const;

  /// Current overall rate (1+ϕδ)(1+µγ)h.
  double rate() const { return rate_; }

  double delta() const { return delta_; }
  int gamma() const { return gamma_; }
  double hardware_rate() const { return hrate_; }
  double phi() const { return phi_; }
  double mu() const { return mu_; }

  /// Sets δ_v at time `now`. Requires delta >= 0.
  void set_delta(sim::Time now, double delta);

  /// Sets γ_v ∈ {0, 1} at time `now`.
  void set_gamma(sim::Time now, int gamma);

  /// Propagates a hardware-rate change at time `now`.
  void set_hardware_rate(sim::Time now, double hrate);

  /// Newtonian time at which the clock reaches `target`, assuming the
  /// current rate persists; `now` if the target was already reached.
  sim::Time when_reaches(double target, sim::Time now) const;

  /// Discontinuous step to `value` (may go backwards). Used ONLY by the
  /// baseline algorithms (classic master/slave steps its clock); the
  /// FT-GCS clocks are continuous by construction (eq. 2) and never jump.
  /// Notifies the rate observer so pending logical timers re-aim.
  void jump(sim::Time now, double value);

  /// Observer invoked after any rate change (with the change time).
  void set_rate_observer(std::function<void(sim::Time)> obs) {
    observer_ = std::move(obs);
  }

  /// Binds (or unbinds, with nullptr) the write-through mirror and
  /// publishes the current segment immediately. The mirror must outlive
  /// the binding.
  void bind_mirror(ClockMirror* mirror) {
    mirror_ = mirror;
    publish();
  }

 private:
  void advance(sim::Time now);
  void recompute_rate(sim::Time now);
  void publish() {
    if (mirror_ != nullptr) {
      mirror_->l0 = l0_;
      mirror_->t0 = t0_;
      mirror_->rate = rate_;
    }
  }

  double phi_;
  double mu_;
  double delta_ = 1.0;  // Algorithm 1 line 3: δ_v ← 1 outside phase 3
  int gamma_ = 0;
  double hrate_;

  sim::Time t0_;
  double l0_;
  double rate_;

  ClockMirror* mirror_ = nullptr;
  std::function<void(sim::Time)> observer_;
};

}  // namespace ftgcs::clocks
