// The kMaxLevel heard-window quorum state, shared by hot and cold paths.
//
// A node's MaxEstimator counts, per (sending cluster, level), the distinct
// member indices it has heard a level-ℓ pulse from; f+1 distinct members
// complete a quorum (Appendix C flooding). The state is a sliding window
// of member bitmasks per cluster: the base slides with the staleness floor
// (levels below next_level − 1 are filtered on arrival and can never be
// read again), the per-level stride regrows if a member index ≥ 64·words
// appears, and far-future levels (forged, or extreme ramps) live in a
// sparse overflow list.
//
// Like core/receive_lane.h for the cluster-pulse path, this header owns
// the *storage layout and the insert primitive* so two owners can share
// them bit-identically:
//   * NodeTable keeps every managed node's windows in one flat array
//     (quorum_windows_ + per-node offsets — the columnar layout a shard
//     slice carries without per-node pointer chasing), pre-sized with one
//     window per cluster that can physically reach the node;
//   * MaxEstimator adopts its span of that array (bind_quorum) and runs
//     the same quorum_insert against it; standalone estimators (unit
//     tests, no system) fall back to a private vector of the same
//     records.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/assert.h"

namespace ftgcs::core {

/// Dense levels span at most this many levels above the window base;
/// anything past it goes to the sparse overflow list, so a Byzantine
/// kMaxLevel pulse with a huge level costs one small allocation instead
/// of an O(level) window resize.
inline constexpr int kQuorumWindowLevels = 4096;

/// Per-(node, sending cluster) quorum window. POD-ish record; the bitmask
/// storage hangs off it, sized lazily as levels are actually heard.
struct QuorumWindow {
  int cluster = -1;      ///< sending cluster this window counts
  int base = 1;          ///< level of the first stride block
  std::size_t words = 1; ///< 64-bit words per level
  std::vector<std::uint64_t> bits;  ///< bits[(level − base)·words + w]
  /// (level, member bitmask words) for levels ≥ base + kQuorumWindowLevels.
  std::vector<std::pair<int, std::vector<std::uint64_t>>> overflow;
};

namespace detail {

inline int quorum_set_and_count(std::vector<std::uint64_t>& words,
                                std::size_t offset, std::size_t n_words,
                                int member_index) {
  words[offset + static_cast<std::size_t>(member_index) / 64] |=
      std::uint64_t{1} << (member_index % 64);
  int heard = 0;
  for (std::size_t w = 0; w < n_words; ++w) {
    heard += std::popcount(words[offset + w]);
  }
  return heard;
}

}  // namespace detail

/// Sets `member_index`'s bit for `level` in `window` and returns the
/// number of distinct members heard at that level. `floor` is the caller's
/// staleness floor (max(next_level − 1, 1)): the window base slides up to
/// it first, dropping masks that can never be read again and migrating
/// overflow levels the slide pulled into dense range.
inline int quorum_insert(QuorumWindow& window, int level, int member_index,
                         int floor) {
  // Slide the base up to the staleness floor: levels below it are filtered
  // on arrival, so their masks can never be read again.
  if (window.base < floor) {
    const auto drop =
        std::min(window.bits.size(),
                 static_cast<std::size_t>(floor - window.base) * window.words);
    window.bits.erase(window.bits.begin(),
                      window.bits.begin() + static_cast<long>(drop));
    window.base = floor;
  }
  // Regrow the per-level stride if this cluster has members beyond the
  // current word capacity (k > 64·words; rare, done once per growth).
  const auto need_words =
      static_cast<std::size_t>(member_index) / 64 + 1;
  if (need_words > window.words) {
    const std::size_t levels =
        (window.bits.size() + window.words - 1) / window.words;
    std::vector<std::uint64_t> wider(levels * need_words, 0);
    for (std::size_t l = 0; l < levels; ++l) {
      for (std::size_t w = 0; w < window.words; ++w) {
        wider[l * need_words + w] = window.bits[l * window.words + w];
      }
    }
    window.bits = std::move(wider);
    window.words = need_words;
    for (auto& [lvl, mask] : window.overflow) mask.resize(need_words, 0);
  }
  FTGCS_ASSERT(level >= window.base);

  // Migrate overflow levels that the advanced base pulled into range, and
  // drop the stale ones, before deciding where `level` lives.
  for (std::size_t i = 0; i < window.overflow.size();) {
    const int lvl = window.overflow[i].first;
    if (lvl >= window.base + kQuorumWindowLevels) {
      ++i;
      continue;
    }
    if (lvl >= window.base) {
      const auto offset =
          static_cast<std::size_t>(lvl - window.base) * window.words;
      if (offset + window.words > window.bits.size()) {
        window.bits.resize(offset + window.words, 0);
      }
      for (std::size_t w = 0; w < window.words; ++w) {
        window.bits[offset + w] |= window.overflow[i].second[w];
      }
    }
    window.overflow[i] = std::move(window.overflow.back());
    window.overflow.pop_back();
  }

  if (level - window.base >= kQuorumWindowLevels) {
    // Far-future level (forged, or an extreme ramp): sparse path, O(1)
    // memory per distinct level — the old map's cost model.
    for (auto& [lvl, mask] : window.overflow) {
      if (lvl == level) {
        return detail::quorum_set_and_count(mask, 0, window.words,
                                            member_index);
      }
    }
    window.overflow.emplace_back(
        level, std::vector<std::uint64_t>(window.words, 0));
    return detail::quorum_set_and_count(window.overflow.back().second, 0,
                                        window.words, member_index);
  }

  const auto offset =
      static_cast<std::size_t>(level - window.base) * window.words;
  if (offset + window.words > window.bits.size()) {
    window.bits.resize(offset + window.words, 0);
  }
  return detail::quorum_set_and_count(window.bits, offset, window.words,
                                      member_index);
}

}  // namespace ftgcs::core
