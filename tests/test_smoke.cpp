// End-to-end smoke test: a small FT-GCS system runs, makes rounds,
// and keeps skews bounded. Detailed invariants live in the per-module
// tests; this exists to catch wiring regressions fast.
#include <gtest/gtest.h>

#include "core/ftgcs_system.h"
#include "metrics/skew_tracker.h"
#include "net/graph.h"

namespace ftgcs {
namespace {

TEST(Smoke, LineOfClustersRunsAndStaysSynchronized) {
  core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  ASSERT_TRUE(params.feasible()) << params.feasibility_report();

  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 42;
  core::FtGcsSystem system(net::Graph::line(4), std::move(config));

  metrics::SkewProbe probe(system, params.T / 2.0, 20.0 * params.T);
  probe.start();
  system.start();
  system.run_until(60.0 * params.T);

  // Every correct node made progress through the rounds.
  const auto& topo = system.topology();
  for (int id = 0; id < topo.num_nodes(); ++id) {
    ASSERT_TRUE(system.is_correct(id));
    EXPECT_GE(system.node(id).round(), 55);
    EXPECT_EQ(system.node(id).engine().violations(), 0u);
  }

  ASSERT_TRUE(probe.has_steady_samples());
  // Intra-cluster skew within the Corollary 3.2 bound.
  EXPECT_LE(probe.steady_max().intra_cluster,
            params.intra_cluster_skew_bound());
  // Local cluster skew within the (generous) Theorem 4.10 shape.
  EXPECT_LE(probe.steady_max().cluster_local,
            params.predicted_local_skew(100.0 * params.kappa));
}

}  // namespace
}  // namespace ftgcs
