#!/usr/bin/env python3
"""CI perf guardrail: compare a fresh micro_kernel JSON against the
committed BENCH_kernel.json baseline and fail on >tolerance throughput
regressions.

Usage:
    check_bench_regression.py BASELINE.json NEW.json \
        [--tolerance 0.25] [--families PREFIX[,PREFIX...]]

For every benchmark family present in both files (matched by run_name,
preferring the `median` aggregate, falling back to `mean`, then to a
single iteration run), the script compares the throughput figure —
items_per_second when present, else the inverse of real_time — and exits
non-zero if `new < (1 - tolerance) * baseline` for any family in the
selected set. Families present in only one file are reported but never
fatal (benchmarks come and go across commits).
"""

import argparse
import json
import sys


def load_rates(path):
    """run_name -> (throughput, source_label)."""
    with open(path) as f:
        data = json.load(f)
    by_run = {}
    for entry in data.get("benchmarks", []):
        run = entry.get("run_name") or entry.get("name")
        by_run.setdefault(run, []).append(entry)

    rates = {}
    for run, entries in by_run.items():
        chosen = None
        for want in ("median", "mean"):
            for entry in entries:
                if entry.get("aggregate_name") == want:
                    chosen = entry
                    break
            if chosen:
                break
        if chosen is None:
            singles = [e for e in entries if e.get("run_type") != "aggregate"]
            if singles:
                chosen = singles[0]
        if chosen is None:
            continue
        if "items_per_second" in chosen:
            rates[run] = (float(chosen["items_per_second"]), "items/s")
        elif float(chosen.get("real_time", 0.0)) > 0.0:
            rates[run] = (1e9 / float(chosen["real_time"]), "1/real_time")
    return rates


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="maximum allowed fractional slowdown")
    parser.add_argument("--relative", action="store_true",
                        help="normalize each family's ratio by the median "
                             "ratio over all checked families, so a "
                             "uniformly slower/faster machine (CI runner vs "
                             "the baseline VM) cancels out and only "
                             "family-specific regressions fail")
    parser.add_argument("--families", default="",
                        help="comma-separated run_name prefixes to check "
                             "(default: every family present in both files)")
    args = parser.parse_args()

    baseline = load_rates(args.baseline)
    fresh = load_rates(args.fresh)
    prefixes = [p for p in args.families.split(",") if p]

    def selected(run):
        return not prefixes or any(run.startswith(p) for p in prefixes)

    # Every requested family prefix must exist in BOTH files: missing from
    # the baseline means the committed BENCH_kernel.json predates the
    # benchmark (or the prefix is a typo); missing from the fresh run
    # means the benchmark was deleted/renamed while the guardrail still
    # claims to cover it. Either way the comparison would silently check
    # nothing for that family — fail with a clear pointer instead of a
    # KeyError (or worse, a green run).
    for label, path, rates in (("baseline", args.baseline, baseline),
                               ("fresh run", args.fresh, fresh)):
        missing = [p for p in prefixes
                   if not any(run.startswith(p) for run in rates)]
        if missing:
            print("check_bench_regression: requested famil"
                  f"{'y' if len(missing) == 1 else 'ies'} missing from "
                  f"{label} {path}: {', '.join(missing)}", file=sys.stderr)
            print(f"  {label} families present: "
                  + (", ".join(sorted({r.split('/')[0] for r in rates}))
                     or "(none)"), file=sys.stderr)
            print("  refresh the baseline (see README 'Refreshing "
                  "BENCH_kernel.json') or fix the --families list.",
                  file=sys.stderr)
            return 2

    shared = sorted(set(baseline) & set(fresh))
    checked = [r for r in shared if selected(r)]
    if not checked:
        print("check_bench_regression: no overlapping benchmark families "
              "matched — nothing to compare", file=sys.stderr)
        return 2

    ratios = {run: (fresh[run][0] / baseline[run][0]
                    if baseline[run][0] > 0 else float("inf"))
              for run in checked}
    norm = 1.0
    if args.relative:
        ordered = sorted(ratios.values())
        mid = len(ordered) // 2
        norm = (ordered[mid] if len(ordered) % 2 == 1
                else 0.5 * (ordered[mid - 1] + ordered[mid]))
        if norm <= 0:
            norm = 1.0
        print(f"median machine-speed ratio: {norm:.2f} "
              f"(per-family ratios are normalized by it)")

    failures = []
    improvements = []
    print(f"{'benchmark':55s} {'baseline':>12s} {'fresh':>12s} {'ratio':>7s}")
    for run in checked:
        base, _ = baseline[run]
        new, _ = fresh[run]
        ratio = ratios[run] / norm
        flag = ""
        if ratio < 1.0 - args.tolerance:
            failures.append((run, base, new, ratio))
            flag = "  << REGRESSION"
        elif ratio > 1.0 + args.tolerance:
            improvements.append((run, base, new, ratio))
            flag = "  >> IMPROVED"
        print(f"{run:55s} {base:12.4g} {new:12.4g} {ratio:7.2f}{flag}")

    for run in sorted(set(baseline) - set(fresh)):
        if selected(run):
            print(f"note: {run} only in baseline (skipped)")
    for run in sorted(set(fresh) - set(baseline)):
        if selected(run):
            print(f"note: {run} only in fresh run (skipped)")

    # Improvements beyond the tolerance are loud but never fatal: the
    # committed baseline has gone stale in the happy direction, and a
    # quiet pass would let it keep masking future regressions (a family
    # that doubled can lose half its win before tripping the guardrail).
    if improvements:
        print(f"\n{len(improvements)} famil"
              f"{'y' if len(improvements) == 1 else 'ies'} improved more "
              f"than {args.tolerance:.0%} over the committed baseline:")
        for run, base, new, ratio in improvements:
            print(f"  {run}: {base:.4g} -> {new:.4g} ({ratio:.2f}x)")
        print("  refresh BENCH_kernel.json (see README 'Refreshing "
              "BENCH_kernel.json') so the guardrail tracks the new level.")
    if failures:
        print(f"\n{len(failures)} famil{'y' if len(failures) == 1 else 'ies'} "
              f"regressed more than {args.tolerance:.0%}:", file=sys.stderr)
        for run, base, new, ratio in failures:
            print(f"  {run}: {base:.4g} -> {new:.4g} events/s "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    print(f"\nall {len(checked)} families within {args.tolerance:.0%} of "
          f"baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
