// Quickstart: build a fault-tolerant gradient clock synchronization system
// on a line of clusters, inject one Byzantine node per cluster, run it,
// and inspect the skews against the paper's bounds.
//
//   ./quickstart [clusters] [seed]
#include <cstdio>
#include <cstdlib>

#include "byz/fault_plan.h"
#include "core/ftgcs_system.h"
#include "metrics/skew_tracker.h"
#include "net/graph.h"

int main(int argc, char** argv) {
  using namespace ftgcs;

  const int clusters = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 1;

  // 1. Derive all protocol parameters from the model constants:
  //    hardware drift ρ, message delay d, delay uncertainty U, and the
  //    per-cluster fault budget f (cluster size k = 3f+1).
  const core::Params params =
      core::Params::practical(/*rho=*/1e-3, /*d=*/1.0, /*U=*/0.01, /*f=*/1);
  std::printf("=== parameters ===\n%s\n", params.summary().c_str());

  // 2. Describe the system: cluster graph, faults, delays, drift.
  net::Graph topology = net::Graph::line(clusters);
  net::AugmentedTopology augmented(topology, params.k);

  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  // One two-faced Byzantine node in every cluster — the full budget f=1.
  config.fault_plan = byz::FaultPlan::uniform(
      augmented, params.f, byz::StrategyKind::kTwoFaced, params.E, seed);

  core::FtGcsSystem system(net::Graph::line(clusters), std::move(config));
  std::printf("augmented graph: %d clusters x %d nodes = %d nodes, %zu edges\n",
              clusters, params.k, system.topology().num_nodes(),
              system.topology().num_edges());
  std::printf("faulty nodes: %zu (two-faced)\n\n",
              system.topology().num_nodes() -
                  static_cast<std::size_t>(system.num_correct()));

  // 3. Attach a probe and run.
  metrics::SkewProbe probe(system, params.T / 2.0, 20.0 * params.T);
  probe.start();
  system.start();
  const double horizon = 100.0 * params.T;
  system.run_until(horizon);

  // 4. Report.
  std::printf("=== results after %.0f time units (%d rounds) ===\n", horizon,
              100);
  std::printf("steady-state max intra-cluster skew : %.6f  (bound 2*theta_g*E = %.6f)\n",
              probe.steady_max().intra_cluster,
              params.intra_cluster_skew_bound());
  std::printf("steady-state max adjacent-cluster   : %.6f  (kappa = %.6f)\n",
              probe.steady_max().cluster_local, params.kappa);
  std::printf("steady-state max global (clusters)  : %.6f\n",
              probe.steady_max().cluster_global);
  std::printf("proper-execution violations         : %llu\n",
              static_cast<unsigned long long>(system.total_violations()));
  std::printf("events simulated                    : %llu\n",
              static_cast<unsigned long long>(
                  system.simulator().fired_events()));

  const bool ok =
      probe.steady_max().intra_cluster <= params.intra_cluster_skew_bound() &&
      system.total_violations() == 0;
  std::printf("\n%s\n", ok ? "OK: all bounds hold under attack"
                           : "FAIL: bound violated");
  return ok ? 0 : 1;
}
