#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace ftgcs::metrics {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  FTGCS_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  FTGCS_EXPECTS(n_ > 0);
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  FTGCS_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  FTGCS_EXPECTS(n_ > 0);
  return max_;
}

double percentile(std::vector<double> values, double q) {
  FTGCS_EXPECTS(!values.empty());
  FTGCS_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace ftgcs::metrics
