// E1 — Theorem 1.1 / Theorem 4.10: local skew O((ρd+U)·log D).
//
// A line of clusters starts with the global skew evenly distributed
// (per-edge gap just above the 2κ fast-trigger level, so the gradient
// levels engage), with and without a full budget of Byzantine faults.
// As D grows, the initial global skew S = gap·D grows linearly — the
// paper predicts the worst local skew grows only LOGARITHMICALLY:
// κ·(⌈log_b(S/κ)⌉+1), b = µ̄/ρ̄. A tree-style algorithm compresses Θ(S)
// onto one edge instead (E5).
//
// The experiment itself lives in the scenario registry
// (e1_local_skew_vs_diameter + e1_gradient_scale); this binary only runs
// it and explains the shape.
#include "bench_util.h"

#include <thread>

#include "exp/exp.h"

int main() {
  using namespace ftgcs;

  exp::register_builtin_scenarios();
  const exp::Registry& registry = exp::Registry::instance();
  exp::SweepRunner runner(
      {static_cast<int>(std::thread::hardware_concurrency())});

  // Banner numbers come from the scenario's own parameter spec so they can
  // never drift out of sync with the table below.
  const core::Params params =
      registry.find("e1_local_skew_vs_diameter")->params.build();
  bench::banner("E1",
                "local skew vs diameter (Theorem 1.1: O((rho*d+U)*log D))");
  std::printf("params: kappa=%.3f delta=%.3f base mu_bar/rho_bar=%.3f "
              "T=%.3f E=%.4f\n\n",
              params.kappa, params.delta_trig, params.gcs_base(), params.T,
              params.E);

  exp::TableSink sink;
  sink.write(runner.run(*registry.find("e1_local_skew_vs_diameter")),
             std::cout);
  std::printf(
      "\nshape check: measured local skew stays under the κ·(log_b(S/κ)+1) "
      "bound at every D and is\nessentially unchanged by the f=1 attack. "
      "Note the measured value is FLAT in D — a uniform\nramp drains "
      "without stacking trigger levels, so the bound is verified as an "
      "upper envelope;\nthe adaptive adversary that forces Ω(log D) (the "
      "Fan–Lynch-style lower-bound construction)\nis out of scope "
      "(documented in EXPERIMENTS.md).\n");

  // Second axis: scale of the imposed skew at fixed D. The gradient
  // property means the worst edge never carries much more than its
  // initial share — contrast with E5's tree compression where the worst
  // edge absorbs the FULL global skew regardless of its initial share.
  std::printf("\n-- gradient property vs imposed skew (D = 8) --\n");
  sink.write(runner.run(*registry.find("e1_gradient_scale")), std::cout);
  std::printf("\nshape check: ratio_local stays ~1 at every scale "
              "(no compression, unlike E5's trees).\n");
  return 0;
}
