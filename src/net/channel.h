// Message-delay models.
//
// The model (paper §2, "Communication") says a pulse sent at time p arrives
// at each neighbor at some time in [p + d − U, p + d]; within that interval
// the adversary chooses. DelayModel implementations realize different
// adversary strategies; all must return values in [d − U, d].
#pragma once

#include <memory>

#include "sim/rng.h"
#include "sim/time_types.h"

namespace ftgcs::net {

class DelayModel {
 public:
  DelayModel(sim::Duration d, sim::Duration u);
  virtual ~DelayModel() = default;

  sim::Duration max_delay() const { return d_; }
  sim::Duration uncertainty() const { return u_; }
  sim::Duration min_delay() const { return d_ - u_; }

  /// Delay for one message from `from` to `to`; must lie in [d − U, d].
  /// `rng` is the per-directed-edge stream.
  virtual sim::Duration sample(int from, int to, sim::Rng& rng) const = 0;

 protected:
  sim::Duration d_;
  sim::Duration u_;
};

/// Uniform over [d − U, d]; the "benign random" adversary.
class UniformDelay final : public DelayModel {
 public:
  using DelayModel::DelayModel;
  sim::Duration sample(int from, int to, sim::Rng& rng) const override;
};

/// Deterministic d − U·(1 − fraction); fraction = 1 gives max delay d,
/// fraction = 0 gives min delay d − U.
class FixedDelay final : public DelayModel {
 public:
  FixedDelay(sim::Duration d, sim::Duration u, double fraction);
  sim::Duration sample(int from, int to, sim::Rng& rng) const override;

 private:
  double fraction_;
};

/// Each message independently gets either the minimum or maximum delay —
/// the worst case for midpoint-style delay compensation.
class TwoPointDelay final : public DelayModel {
 public:
  using DelayModel::DelayModel;
  sim::Duration sample(int from, int to, sim::Rng& rng) const override;
};

/// Directionally biased: messages from lower to higher node id travel at
/// the maximum delay, the reverse direction at the minimum. Maximizes the
/// systematic estimation error between a pair of nodes.
class DirectionalDelay final : public DelayModel {
 public:
  using DelayModel::DelayModel;
  sim::Duration sample(int from, int to, sim::Rng& rng) const override;
};

/// Class-dependent delays (e.g. a NoC whose in-cluster wires are short):
/// links within a cluster draw from the fast half [d−U, d−U/2], links
/// between clusters from the slow half [d−U/2, d]. Still within the
/// paper's model (every delay in [d−U, d]); stresses the systematic
/// offset between the intra- and inter-cluster estimates.
class ClassedDelay final : public DelayModel {
 public:
  /// `cluster_size` partitions flat node ids into clusters of equal size.
  ClassedDelay(sim::Duration d, sim::Duration u, int cluster_size);
  sim::Duration sample(int from, int to, sim::Rng& rng) const override;

 private:
  int cluster_size_;
};

}  // namespace ftgcs::net
