// Columnar hot-path state of every node in one FT-GCS system.
//
// The 40k-node profile after the ladder-queue engine is dominated by the
// protocol receive path itself: Network → virtual PulseSink::on_pulse →
// FtGcsNode topology lookups → EstimateBank scan → scattered
// ClusterSyncEngine/LogicalClock objects. The per-node state that path
// actually needs is a few words (TRIX-style: cluster id, member index,
// crashed flag, a (l0, t0, rate) clock segment, the current γ, and the
// arrival slots of each observed cluster), so NodeTable stores it as
// parallel arrays indexed by node id and lane:
//
//   * per node id — cluster, index-in-cluster, crashed/fast flags, γ, the
//     kMaxLevel staleness floor, and the node's lane range;
//   * per lane (one per engine: the own ClusterSync engine first, then one
//     passive replica per adjacent cluster, in estimates order) — a
//     ReceiveLane whose arrival slots live in one flat bank.
//
// The engines relocate their hot state INTO the table (adopt_lane) and
// keep the cold path — construction, timers, round transitions, fault
// injection, dynamic edges — so a pulse receive through the table and one
// through FtGcsNode::on_pulse execute the same lane_receive on the same
// words: the two paths are bit-identical by construction.
//
// NodeTable is also the sim-layer batch predicate: it classifies a pulse
// delivery as a pure receive (batchable kClusterPulse, or a droppable
// stale/self kMaxLevel) from these arrays alone, which is what lets the
// simulator drain delivery runs without consulting the receivers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/quorum_window.h"
#include "core/receive_lane.h"
#include "net/network.h"
#include "sim/event.h"
#include "sim/scratch_arena.h"
#include "sim/time_types.h"

namespace ftgcs::net {
class AugmentedTopology;
}

namespace ftgcs::core {

class FtGcsNode;

/// Columnar ground-truth state: one array per field, indexed by node id.
/// Refilling reuses capacity, so periodic probes allocate nothing after the
/// first sample — the metrics layer reads these arrays directly.
struct SystemColumns {
  sim::Time at = 0.0;
  std::vector<double> logical;        ///< L_v(at); 0 for faulty ids
  std::vector<std::uint8_t> correct;  ///< 1 = correct and not crashed
  std::vector<std::int32_t> gamma;    ///< γ_v; 0 for faulty ids

  int num_nodes() const { return static_cast<int>(logical.size()); }
};

class NodeTable final : public net::ClusterPulseTable {
 public:
  NodeTable() = default;
  NodeTable(const NodeTable&) = delete;
  NodeTable& operator=(const NodeTable&) = delete;

  /// Builds the arrays over `topo` and adopts the receive lanes of every
  /// correct node (`nodes[id]` null for faulty ids). Called once by
  /// FtGcsSystem after node construction, before start().
  void build(const net::AugmentedTopology& topo,
             const std::vector<std::unique_ptr<FtGcsNode>>& nodes);

  /// net::ClusterPulseTable — the batched pulse receive: kClusterPulse
  /// events route to a lane, stale/self kMaxLevel events drop in place.
  void on_pulse_run(const sim::BatchedEvent* events, std::size_t n) override;

  /// sim::BatchPredicate (ctx = the NodeTable): pure-receive
  /// classification of one pulse payload. kClusterPulse to a MANAGED
  /// destination is a table receive (on_pulse_run itself drops the
  /// crashed ones — same observable outcome as the null sink, but the
  /// classification stays constant over a run, which the partitioned
  /// drain's monotone-predicate obligation requires); a kMaxLevel that is
  /// self-addressed or below the destination's staleness floor is a pure
  /// drop (floors only rise — monotone too). Everything else (Byzantine
  /// sinks, non-stale levels) takes the ordinary per-event path.
  static bool pure_pulse(const sim::EventPayload& payload, const void* ctx);

  /// Borrows the simulator-owned scratch arena for on_pulse_run's decode
  /// columns (see sim/scratch_arena.h). Optional: an unbound table uses a
  /// private arena, so standalone construction (tests) keeps working.
  void bind_scratch(sim::BatchScratch* scratch) {
    scratch_ = scratch != nullptr ? scratch : &own_scratch_;
  }

  /// Crash-stop: marks `node` crashed — the fast flag drops to 0 (its
  /// deliveries fall through to the per-node sink, by then the null sink)
  /// and the level floor saturates (level pulses to it batch-drop).
  void mark_crashed(int node);
  bool crashed(int node) const {
    return crashed_[static_cast<std::size_t>(node)] != 0;
  }

  /// Per-dest batchable flags for Network::set_cluster_dispatch.
  const std::uint8_t* fast_flags() const { return fast_.data(); }

  /// Write-through slot of `node`'s kMaxLevel staleness floor (bound to
  /// its MaxEstimator; stays INT32_MAX — drop everything — without one).
  std::int32_t* level_floor_slot(int node) {
    return &level_floor_[static_cast<std::size_t>(node)];
  }

  /// Mirror of γ_v (written by the node at each round-start decision).
  void set_gamma(int node, int gamma) {
    gamma_[static_cast<std::size_t>(node)] = gamma;
  }

  /// Ground-truth snapshot straight from the arrays: logical clocks from
  /// the lane mirrors (the exact LogicalClock::read arithmetic), γ from
  /// the mirror column, correctness from the managed/crashed flags.
  void snapshot_columns(sim::Time at, SystemColumns& out) const;

  /// Lane span of a managed node: lanes(node)[0] is the own engine,
  /// followed by one replica lane per adjacent cluster in estimates order.
  const ReceiveLane* lanes(int node) const {
    return lanes_.data() + lane_offset_[static_cast<std::size_t>(node)];
  }
  int lane_count(int node) const {
    return lane_offset_[static_cast<std::size_t>(node) + 1] -
           lane_offset_[static_cast<std::size_t>(node)];
  }

  /// kMaxLevel quorum windows of a managed node (MaxEstimator adoption,
  /// see core/quorum_window.h): one pre-labelled window per cluster that
  /// can physically reach the node — its own cluster first, then the
  /// adjacent clusters in estimates order. Parallel to the lane span
  /// (same offsets, same cluster labels), so a shard slice carries the
  /// quorum state in the same flat walk as the receive lanes.
  QuorumWindow* quorum_span(int node) {
    return quorum_windows_.data() +
           lane_offset_[static_cast<std::size_t>(node)];
  }
  int quorum_count(int node) const { return lane_count(node); }

  /// Pins the warmed-up quorum-window capacities: the sliding dense span
  /// (quorum_insert erases at the base and resizes at the tip) drifts by
  /// a stride or two between rounds, so a window that has just slid can
  /// regrow past its old high-water — and a window whose cluster pair
  /// simply had not been heard yet during warmup pays its first-touch
  /// allocation later. ×2 of the warmed capacity with a 16-stride floor
  /// covers both, making steady-state inserts allocation-free
  /// (tests/test_alloc_guard.cpp); Byzantine far-future levels still go
  /// to the sparse overflow list and are exempt from the contract.
  void prewarm() {
    for (QuorumWindow& w : quorum_windows_) {
      w.bits.reserve(std::max(2 * w.bits.capacity(), 16 * w.words));
    }
  }

  int num_nodes() const { return static_cast<int>(cluster_.size()); }

 private:
  int k_ = 0;
  // ---- per node id ----------------------------------------------------------
  std::vector<std::int32_t> cluster_;
  std::vector<std::int32_t> index_in_cluster_;
  std::vector<std::uint8_t> managed_;  ///< has adopted lanes (correct node)
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint8_t> fast_;     ///< managed && !crashed
  std::vector<std::int32_t> level_floor_;  ///< kMaxLevel staleness floor
  std::vector<std::int32_t> gamma_;
  std::vector<std::int32_t> lane_offset_;  ///< size num_nodes + 1
  // ---- per lane -------------------------------------------------------------
  std::vector<std::int32_t> lane_cluster_;  ///< observed cluster
  std::vector<ReceiveLane> lanes_;
  std::vector<double> arrivals_bank_;  ///< k slots per lane (NaN = unheard)
  /// kMaxLevel quorum windows, parallel to lanes_ (indexed by the same
  /// lane_offset_ spans; window i counts pulses from lane_cluster_[i]).
  std::vector<QuorumWindow> quorum_windows_;
  // ---- batch scratch --------------------------------------------------------
  sim::BatchScratch own_scratch_;  ///< fallback when no simulator arena bound
  sim::BatchScratch* scratch_ = &own_scratch_;
};

}  // namespace ftgcs::core
