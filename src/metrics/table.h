// Fixed-width table printer for experiment output (paper-style rows) with
// optional CSV emission for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ftgcs::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string num(double value, int precision = 5);
  static std::string integer(long long value);

  /// Pretty fixed-width rendering.
  void print(std::ostream& os) const;

  /// CSV rendering (RFC-ish: plain cells, comma-separated).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftgcs::metrics
