// Seeded violations for the no-wall-clock rule (scope: src/sim/).
// Every line carrying an EXPECT-LINT annotation must be reported by the
// engine; the waived seed at the bottom must NOT be.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture {

double ambient_entropy() {
  std::random_device dev;                       // EXPECT-LINT: no-wall-clock
  return static_cast<double>(dev()) + rand();   // EXPECT-LINT: no-wall-clock
}

double wall_now() {
  auto t = std::chrono::steady_clock::now();    // EXPECT-LINT: no-wall-clock
  auto u = std::chrono::system_clock::now();    // EXPECT-LINT: no-wall-clock
  auto v =
      std::chrono::high_resolution_clock::now();  // EXPECT-LINT: no-wall-clock
  return t.time_since_epoch().count() + u.time_since_epoch().count() +
         v.time_since_epoch().count();
}

// A string or comment mentioning steady_clock must not trip the rule.
const char* kDocString = "steady_clock is banned here";

double waived_wall_read() {
  // ftgcs-lint: allow(no-wall-clock) fixture: proves waivers suppress
  auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

}  // namespace fixture
