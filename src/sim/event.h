// Typed event vocabulary for the zero-allocation event engine.
//
// The hot paths of the simulation — pulse deliveries, logical-timer fires,
// drift steps, metric probes — are all "small data + known receiver". The
// engine therefore dispatches a tagged union instead of type-erased
// closures: an event carries an EventKind, the index of a registered
// EventSink, and a fixed-size POD payload the sink interprets. Nothing on
// this path allocates, and cancellation is a generation-stamp bump on the
// event's pool slot (see event_queue.h).
//
// The legacy `std::function<void()>` path still exists (EventKind::kClosure)
// for cold one-shot scheduling (fault injection, edge toggles, tests).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time_types.h"

namespace ftgcs::sim {

/// Tag of a typed event. The engine never interprets the payload — the tag
/// exists so one sink can multiplex several event families (and so traces
/// and debuggers can tell events apart without knowing the receiver).
enum class EventKind : std::uint8_t {
  kClosure = 0,  ///< legacy path: the slot's std::function runs
  kPulse,        ///< network message delivery (net/Network)
  kTimer,        ///< logical-timer fire (clocks/LogicalTimerSet & friends)
  kDrift,        ///< hardware-drift step (clocks/DriftModel)
  kProbe,        ///< periodic measurement (metrics/SkewProbe)
};

/// Fixed-size POD payload of a typed event. Fields are generic words; the
/// (kind, sink) pair defines the schema. Conventions used in this codebase:
///   kPulse: a=sender, b=level, c=dest node, d=PulseKind, x=value
///   kTimer: a=key/round, x=auxiliary value
///   kDrift: a=script index / phase flag
///   kProbe: unused
struct EventPayload {
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::uint32_t d = 0;
  double x = 0.0;
};

/// Stable index of a registered EventSink (see Simulator::register_sink).
using SinkId = std::uint32_t;

inline constexpr SinkId kInvalidSink = 0xffffffffu;

/// One event of a batched drain run: the payload plus its own fire time
/// (batch items fire at distinct instants; the receiver must use `at`, not
/// a single shared now).
struct BatchedEvent {
  Time at = 0.0;
  EventPayload payload;
};

/// Classifies a payload as a *pure receive* for the batch drain (see
/// Simulator::set_batch_channel). Must be a stateless read of `ctx` —
/// called once per candidate event at pop time. A plain function pointer,
/// not std::function: the call sits inside the queue's pop loop.
using BatchPredicate = bool (*)(const EventPayload& payload, const void* ctx);

/// Receiver of typed events. Components register once (getting a stable
/// SinkId) and receive every typed event addressed to them through this
/// interface — no per-event closure, no allocation.
class EventSink {
 public:
  virtual void on_event(EventKind kind, const EventPayload& payload,
                        Time now) = 0;

  /// Batched delivery of a contiguous run of fire-only events previously
  /// classified as pure receives by the sink's BatchPredicate. Items are in
  /// exact (time, seq) fire order; each carries its own fire time. The
  /// default simply replays them through on_event.
  virtual void on_event_batch(EventKind kind, const BatchedEvent* events,
                              std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      on_event(kind, events[i].payload, events[i].at);
    }
  }

 protected:
  ~EventSink() = default;  // never deleted through the interface
};

}  // namespace ftgcs::sim
