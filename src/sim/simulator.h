// Single-threaded discrete-event simulator facade.
//
// Owns the virtual clock and the event queue. Protocol components schedule
// callbacks at absolute Newtonian times; the simulator advances time to the
// next event and fires it. Time never flows backwards and events scheduled
// in the past are rejected (contract violation), which catches clock
// inversion bugs early.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time_types.h"

namespace ftgcs::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Current Newtonian time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t >= now()`.
  EventId at(Time t, Callback fn);

  /// Schedules `fn` after a non-negative delay.
  EventId after(Duration dt, Callback fn);

  /// Cancels a pending event; no-op if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue empties or the next event is later than
  /// `t_end`; afterwards now() == min(t_end, last event time fired) and is
  /// then advanced to exactly `t_end`.
  void run_until(Time t_end);

  /// Fires exactly one event if available. Returns false when idle.
  bool step();

  /// True if no pending events remain.
  bool idle() const { return queue_.empty(); }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t fired_events() const { return fired_; }
  std::uint64_t scheduled_events() const { return queue_.scheduled_count(); }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t fired_ = 0;
};

}  // namespace ftgcs::sim
