// Fault placement plans: which nodes are Byzantine and which strategy each
// runs. The paper's requirement is ≤ f faults per cluster; plans beyond
// that budget exist deliberately, to measure the resilience boundary (E4).
#pragma once

#include <cstdint>
#include <vector>

#include "byz/strategies.h"
#include "net/augmented.h"

namespace ftgcs::byz {

struct FaultSpec {
  int node = -1;
  StrategyKind kind = StrategyKind::kSilent;
  double param = 0.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }

  void add(FaultSpec spec);
  bool contains(int node) const;

  /// Max number of faulty nodes in any single cluster.
  int max_faults_per_cluster(const net::AugmentedTopology& topo) const;

  // ---- builders -----------------------------------------------------------
  static FaultPlan none() { return {}; }

  /// `count` faulty members (random indices) in every cluster, all running
  /// the same strategy.
  static FaultPlan uniform(const net::AugmentedTopology& topo, int count,
                           StrategyKind kind, double param,
                           std::uint64_t seed);

  /// `count` faulty members in one specific cluster.
  static FaultPlan in_cluster(const net::AugmentedTopology& topo, int cluster,
                              int count, StrategyKind kind, double param,
                              std::uint64_t seed);

  /// Every node independently faulty with probability p (the model behind
  /// Inequality (1)); all faulty nodes run `kind`.
  static FaultPlan iid(const net::AugmentedTopology& topo, double p,
                       StrategyKind kind, double param, std::uint64_t seed);

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace ftgcs::byz
