// E13 — why the paper builds on Lynch–Welch (App. A): on a clique with
// n > 3f, both Lynch–Welch (ClusterSync) and Srikanth–Toueg tolerate f
// Byzantine faults, but their skew scales differently:
//
//   Srikanth–Toueg:  O(d)        (propose-and-pull; skew carries the full
//                                 message delay)
//   Lynch–Welch:     O(U + ρ·d)  (approximate agreement on pulse times;
//                                 only the *uncertainty* U survives)
//
// We sweep U at fixed d: the ST skew stays pinned at the d scale while
// the LW skew tracks U down.
#include "bench_util.h"

#include "baselines/srikanth_toueg.h"

namespace {

using namespace ftgcs;

double run_lynch_welch(double rho, double d, double U, std::uint64_t seed) {
  const core::Params params = core::Params::practical(rho, d, U, 1);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  core::FtGcsSystem system(net::Graph::line(1), std::move(config));
  metrics::SkewProbe probe(system, params.T / 4.0, 10.0 * params.T);
  probe.start();
  system.start();
  system.run_until(60.0 * params.T);
  return probe.steady_max().intra_cluster;
}

double run_srikanth_toueg(double rho, double d, double U,
                          std::uint64_t seed) {
  baselines::SrikanthTouegSystem::Config config;
  config.n = 4;
  config.f = 1;
  config.rho = rho;
  config.d = d;
  config.U = U;
  config.period = 10.0 * d;
  config.seed = seed;
  baselines::SrikanthTouegSystem system(std::move(config));
  system.start();
  // Dense sampling: the ST logical clock sawtooths by ≈d at every
  // resynchronization (rounds nominally advance P but physically take
  // P+d), so the O(d) skew lives in short windows around the fire waves.
  double worst = 0.0;
  for (int step = 1; step <= 2400; ++step) {
    system.run_until(step * d / 4.0);
    worst = std::max(worst, system.skew());
  }
  return worst;
}

}  // namespace

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  banner("E13", "Lynch-Welch vs Srikanth-Toueg skew on a clique "
                "(App. A: O(U + rho*d) vs O(d))");

  const double rho = 1e-3;
  const double d = 1.0;
  metrics::Table table({"U", "Lynch-Welch max skew", "ST (rho=1e-3)",
                        "ST (rho=1e-2)", "LW/U ratio"});
  for (double U : {0.2, 0.1, 0.05, 0.02, 0.01}) {
    double lw = 0.0;
    double st = 0.0;
    double st_drifty = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      lw = std::max(lw, run_lynch_welch(rho, d, U, seed));
      st = std::max(st, run_srikanth_toueg(rho, d, U, seed));
      st_drifty = std::max(st_drifty, run_srikanth_toueg(1e-2, d, U, seed));
    }
    table.add_row({metrics::Table::num(U, 3), metrics::Table::num(lw, 4),
                   metrics::Table::num(st, 4),
                   metrics::Table::num(st_drifty, 4),
                   metrics::Table::num(lw / U, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nshape check: Lynch-Welch tracks U down (LW/U ~ constant; its "
      "amortized, continuous clocks\nnever jump). Srikanth-Toueg is pinned "
      "at the d scale at every U and drift: its jump-based\nphase "
      "corrections sawtooth the logical clocks by ~d at each "
      "resynchronization — precisely the\npaper's App. A argument for "
      "building on (amortized) Lynch-Welch, whose skew is O(U + rho*d).\n");
  return 0;
}
