// E9 — Theorem 1.1's cost side: the construction multiplies nodes by
// k = 3f+1 = O(f) and edges by O(f²), and any f-tolerant scheme needs
// degree > 2f (so this is asymptotically optimal).
//
// Static counts from the augmentation plus measured message load per
// synchronization round. The sweep is the registered e9_overhead_scaling
// scenario; this binary only runs it and explains the shape.
#include "bench_util.h"

#include <thread>

#include "exp/exp.h"

int main() {
  using namespace ftgcs;

  exp::register_builtin_scenarios();
  const exp::ScenarioSpec* spec =
      exp::Registry::instance().find("e9_overhead_scaling");

  bench::banner("E9", "augmentation overhead: nodes x O(f), edges x O(f^2)");
  std::printf("base graph: %s, f sweeps 0..4\n\n",
              spec->topology.describe().c_str());

  exp::SweepRunner runner(
      {static_cast<int>(std::thread::hardware_concurrency())});
  exp::TableSink().write(runner.run(*spec), std::cout);
  std::printf("\nshape check: node factor = 3f+1 (linear); edge factor "
              "grows quadratically\n(edge_factor_norm = edge_factor/(f+1)^2 "
              "roughly constant); degree > 2f as required\nfor "
              "f-tolerance.\n");
  return 0;
}
