// Minimal leveled logging. Off by default so simulations stay quiet;
// tests and examples can raise the level for debugging.
#pragma once

#include <sstream>
#include <string>

namespace ftgcs::log {

enum class Level { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global log level. Reads and writes are relaxed atomics: the sharded
/// backend's worker threads may log while the driver flips the level, and
/// an unsynchronized plain global would be a data race (TSan-visible even
/// when every reader only ever sees kOff). Relaxed is enough — the level
/// is a monotone debugging toggle, not a synchronization point.
Level level() noexcept;
void set_level(Level lvl) noexcept;

/// Emits one line to stderr if `lvl` is enabled.
void emit(Level lvl, const std::string& msg);

namespace detail {

template <typename... Args>
void log_if(Level lvl, Args&&... args) {
  if (static_cast<int>(lvl) <= static_cast<int>(level())) {
    std::ostringstream os;
    (os << ... << args);
    emit(lvl, os.str());
  }
}

}  // namespace detail

template <typename... Args>
void error(Args&&... args) {
  detail::log_if(Level::kError, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(Args&&... args) {
  detail::log_if(Level::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void info(Args&&... args) {
  detail::log_if(Level::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void debug(Args&&... args) {
  detail::log_if(Level::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void trace(Args&&... args) {
  detail::log_if(Level::kTrace, std::forward<Args>(args)...);
}

}  // namespace ftgcs::log
