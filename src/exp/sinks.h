// Result sinks: pluggable renderings of a SweepResult.
//
//   TableSink     aligned fixed-width table (the scenario's chosen columns)
//   CsvSink       one header row + raw values, every metric
//   JsonLinesSink one JSON object per row, every metric
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "exp/sweep.h"

namespace ftgcs::exp {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void write(const SweepResult& result, std::ostream& os) const = 0;
};

/// Pretty table of the scenario's selected columns. Metrics named `in_*`
/// render as yes/NO; integral values render without decimals.
class TableSink final : public ResultSink {
 public:
  void write(const SweepResult& result, std::ostream& os) const override;
};

/// CSV with every metric (axes first), raw full-precision values.
class CsvSink final : public ResultSink {
 public:
  void write(const SweepResult& result, std::ostream& os) const override;
};

/// JSON-lines: {"scenario":…, "point":{…}, "seed":…, "metrics":{…}}.
class JsonLinesSink final : public ResultSink {
 public:
  void write(const SweepResult& result, std::ostream& os) const override;
};

/// Factory by name: "table", "csv", "jsonl". Throws std::invalid_argument.
std::unique_ptr<ResultSink> make_sink(const std::string& name);

}  // namespace ftgcs::exp
