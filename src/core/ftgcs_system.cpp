#include "core/ftgcs_system.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace ftgcs::core {

FtGcsSystem::FtGcsSystem(net::Graph cluster_graph, Config config)
    : owned_topo_(config.shared_topo != nullptr
                      ? nullptr
                      : std::make_unique<net::AugmentedTopology>(
                            std::move(cluster_graph), config.params.k)),
      topo_(config.shared_topo != nullptr ? *config.shared_topo
                                          : *owned_topo_),
      config_(std::move(config)),
      sim_(config_.engine) {
  FTGCS_EXPECTS(config_.params.feasible());
  FTGCS_EXPECTS(config_.fault_plan.max_faults_per_cluster(topo_) <=
                topo_.cluster_size());
  const ShardView& shard = config_.shard;
  if (shard.active()) {
    FTGCS_EXPECTS(shard.shard >= 0 && shard.shard < shard.num_shards);
    FTGCS_EXPECTS(shard.cluster_owner != nullptr && shard.router != nullptr);
  }

  sim::Rng master(config_.seed);

  // Pre-warm the event pool: every in-flight message and timer gets a slot
  // without growing the pool mid-run. Degree+loopback bounds the messages
  // a node can have in flight per delay window; timers add a handful. A
  // shard only ever queues its owned nodes' deliveries and timers, so its
  // pool scales with the owned slice (the pool grows on demand if a
  // lopsided cut ever exceeds the estimate — sizing is not load-bearing
  // for determinism, unlike the RNG fork order below).
  std::size_t max_degree = 0;
  for (const auto& neighbors : topo_.adjacency()) {
    max_degree = std::max(max_degree, neighbors.size());
  }
  std::size_t owned_nodes = 0;
  for (int id = 0; id < topo_.num_nodes(); ++id) {
    if (owns(id)) ++owned_nodes;
  }
  sim_.reserve_events(owned_nodes * (max_degree + 9));

  auto delays = config_.delay_model
                    ? std::move(config_.delay_model)
                    : std::make_unique<net::UniformDelay>(config_.params.d,
                                                          config_.params.U);
  // Borrowed adjacency: the topology outlives the network (member order),
  // so no per-system copy of the O(E) neighbor lists.
  network_ = std::make_unique<net::Network>(sim_, &topo_.adjacency(),
                                            std::move(delays), master.fork(1));
  network_->set_trace(config_.trace_sink);
  if (shard.active()) {
    remote_flags_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0);
    for (int id = 0; id < topo_.num_nodes(); ++id) {
      remote_flags_[static_cast<std::size_t>(id)] = owns(id) ? 0 : 1;
    }
    network_->set_shard_router(shard.router, remote_flags_.data());
  }

  nodes_.resize(topo_.num_nodes());
  byz_nodes_.reserve(config_.fault_plan.size());

  // Instantiate nodes: Byzantine where the plan says so, correct otherwise.
  // A sharded system only instantiates the nodes it owns, but forks the
  // master RNG for EVERY id — fork() advances the parent stream, so the
  // skipped forks keep every owned node's stream identical to the
  // unsharded construction (partition-invariant executions).
  for (int id = 0; id < topo_.num_nodes(); ++id) {
    const auto& specs = config_.fault_plan.specs();
    const auto it = std::find_if(
        specs.begin(), specs.end(),
        [id](const byz::FaultSpec& s) { return s.node == id; });
    sim::Rng node_rng = master.fork((it != specs.end() ? 1000 : 2000) +
                                    static_cast<std::uint64_t>(id));
    if (!owns(id)) continue;
    if (it != specs.end()) {
      byz::AttackContext ctx;
      ctx.self = id;
      ctx.cluster = topo_.cluster_of(id);
      ctx.index_in_cluster = topo_.index_in_cluster(id);
      ctx.sim = &sim_;
      ctx.net = network_.get();
      ctx.topo = &topo_;
      ctx.params = &config_.params;
      ctx.rng = node_rng;
      byz_nodes_.push_back(std::make_unique<byz::ByzantineNode>(
          std::move(ctx), byz::make_strategy(it->kind, it->param)));
      network_->register_handler(id, byz_nodes_.back().get());
    } else {
      FtGcsNode::Options options;
      options.enable_global_module = config_.enable_global_module;
      const auto& offsets = config_.cluster_round_offsets;
      const int cluster = topo_.cluster_of(id);
      if (!offsets.empty()) {
        FTGCS_EXPECTS(static_cast<int>(offsets.size()) ==
                      topo_.num_clusters());
        options.start_round = offsets[cluster] + 1;
        if (config_.replicas_know_offsets) {
          for (int adjacent : topo_.cluster_neighbors(cluster)) {
            options.replica_start_rounds.push_back(offsets[adjacent] + 1);
          }
        }
      }
      for (const auto& [b, c] : config_.initially_inactive_edges) {
        if (cluster == b) options.initially_inactive.push_back(c);
        if (cluster == c) options.initially_inactive.push_back(b);
      }
      if (!config_.edge_weights.empty()) {
        for (int adjacent : topo_.cluster_neighbors(cluster)) {
          double weight = 1.0;
          for (const auto& [b, c, w] : config_.edge_weights) {
            if ((b == cluster && c == adjacent) ||
                (c == cluster && b == adjacent)) {
              weight = w;
            }
          }
          options.edge_weights.push_back(weight);
        }
      }
      nodes_[id] = std::make_unique<FtGcsNode>(
          sim_, *network_, topo_, config_.params, id, node_rng, options);
      ++num_correct_;
      network_->register_handler(id, nodes_[id].get());
    }
  }

  // Columnar dispatch: the table adopts every correct node's receive
  // lanes, the network routes fast kClusterPulse deliveries through it,
  // and the simulator drains pure-receive pulse runs in batches.
  table_.build(topo_, nodes_);
  for (auto& node : nodes_) {
    if (node) node->attach_table(&table_);
  }
  network_->set_cluster_dispatch(&table_, table_.fast_flags());
  sim_.set_batch_channel(network_->sink_id(), sim::EventKind::kPulse,
                         &NodeTable::pure_pulse, &table_);
  table_.bind_scratch(&sim_.batch_scratch());

  // Give each cluster's Byzantine nodes a reference observation of a
  // correct member's round schedule (omniscient adversary).
  for (int c = 0; c < topo_.num_clusters(); ++c) {
    std::vector<byz::ByzantineNode*> watchers;
    for (const auto& byz_node : byz_nodes_) {
      if (topo_.cluster_of(byz_node->id()) == c) {
        watchers.push_back(byz_node.get());
      }
    }
    if (watchers.empty()) continue;
    FtGcsNode* reference = nullptr;
    for (int member : topo_.members(c)) {
      if (nodes_[member]) {
        reference = nodes_[member].get();
        break;
      }
    }
    if (reference == nullptr) continue;  // fully faulty cluster
    reference->on_round_observed =
        [watchers](int round, sim::Time round_start,
                   sim::Time predicted_pulse, double logical_start) {
          const byz::RoundInfo info{round, round_start, predicted_pulse,
                                    logical_start};
          for (byz::ByzantineNode* watcher : watchers) {
            watcher->on_reference_round(info);
          }
        };
  }

  drift_ = config_.drift_model
               ? std::move(config_.drift_model)
               : std::make_unique<clocks::ConstantDrift>(
                     config_.params.rho, config_.seed ^ 0x5eedULL,
                     /*spread=*/true);
}

void FtGcsSystem::start() {
  FTGCS_EXPECTS(!started_);
  started_ = true;

  // Drift first, so every clock carries its initial rate before round 1.
  std::vector<clocks::RateSink> sinks;
  sinks.reserve(topo_.num_nodes());
  for (int id = 0; id < topo_.num_nodes(); ++id) {
    if (nodes_[id]) {
      FtGcsNode* raw = nodes_[id].get();
      sinks.push_back([raw](sim::Time now, double rate) {
        raw->set_hardware_rate(now, rate);
      });
    } else {
      sinks.push_back([](sim::Time, double) {});  // adversary self-governs
    }
  }
  drift_->install(sim_, std::move(sinks));

  for (auto& node : nodes_) {
    if (node) node->start();
  }
  for (auto& byz_node : byz_nodes_) {
    byz_node->start();
  }
}

FtGcsNode& FtGcsSystem::node(int id) {
  FTGCS_EXPECTS(id >= 0 && id < topo_.num_nodes());
  FTGCS_EXPECTS(nodes_[id] != nullptr);
  return *nodes_[id];
}

const FtGcsNode& FtGcsSystem::node(int id) const {
  FTGCS_EXPECTS(id >= 0 && id < topo_.num_nodes());
  FTGCS_EXPECTS(nodes_[id] != nullptr);
  return *nodes_[id];
}

double FtGcsSystem::node_logical(int id) const {
  return node(id).logical(sim_.now());
}

std::optional<double> FtGcsSystem::cluster_clock(int cluster) const {
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  for (int member : topo_.members(cluster)) {
    if (!nodes_[member] || nodes_[member]->crashed()) continue;
    const double value = nodes_[member]->logical(sim_.now());
    if (!any) {
      lo = hi = value;
      any = true;
    } else {
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
  }
  if (!any) return std::nullopt;
  return (lo + hi) / 2.0;
}

SystemSnapshot FtGcsSystem::snapshot() const {
  SystemSnapshot snap;
  snap.at = sim_.now();
  snap.nodes.reserve(topo_.num_nodes());
  for (int id = 0; id < topo_.num_nodes(); ++id) {
    SystemSnapshot::NodeState state;
    state.id = id;
    state.cluster = topo_.cluster_of(id);
    // A crashed node is a (benign) faulty node: for the rest of the
    // system it is equivalent to removing its links (paper §1/App. A).
    state.correct = nodes_[id] != nullptr && !nodes_[id]->crashed();
    if (state.correct) {
      state.logical = nodes_[id]->logical(snap.at);
      state.gamma = nodes_[id]->gamma();
    }
    snap.nodes.push_back(state);
  }
  return snap;
}

void FtGcsSystem::snapshot_columns(SystemColumns& out) const {
  // Straight from the columnar bank: lane clock mirrors and the γ column,
  // no per-node object traffic.
  table_.snapshot_columns(sim_.now(), out);
}

void FtGcsSystem::set_edge_active(int b, int c, bool active) {
  FTGCS_EXPECTS(topo_.cluster_graph().has_edge(b, c));
  for (int member : topo_.members(b)) {
    if (nodes_[member]) nodes_[member]->set_edge_active(c, active);
  }
  for (int member : topo_.members(c)) {
    if (nodes_[member]) nodes_[member]->set_edge_active(b, active);
  }
}

void FtGcsSystem::schedule_edge_toggle(int b, int c, bool active,
                                       sim::Time at) {
  sim_.at(at, [this, b, c, active] { set_edge_active(b, c, active); });
}

std::uint64_t FtGcsSystem::total_violations() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node && !node->crashed()) total += node->violations();
  }
  return total;
}

}  // namespace ftgcs::core
