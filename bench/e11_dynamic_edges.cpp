// E11 — dynamic topology (paper Appendix A, carrying over [9, 10]):
// a newly inserted edge stabilizes to the gradient bound within O(S/µ)
// time, where S is the skew across the edge at insertion.
//
// Two clusters start with a logical gap S, the edge between them inactive;
// at t₀ the edge is activated (the paper's consensus-agreed instant) and
// we measure the time until the gap stays below κ. Sweeping S shows the
// linear O(S/µ) shape. A second table inserts an edge that closes a line
// into a ring, with a full Byzantine budget present.
#include "bench_util.h"

#include <cmath>

#include "metrics/stabilization.h"

namespace {

using namespace ftgcs;

double measure_two_cluster(const core::Params& params, int gap_rounds,
                           std::uint64_t seed) {
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  config.cluster_round_offsets = {0, gap_rounds};
  config.initially_inactive_edges = {{0, 1}};
  core::FtGcsSystem system(net::Graph::line(2), std::move(config));
  const sim::Time activate_at = 5.0 * params.T;
  system.schedule_edge_toggle(0, 1, true, activate_at);
  system.start();
  // Target band: 2κ — the level-1 gradient band; the one-sided drain
  // settles just below the fast-trigger floor 2κ−δ.
  metrics::StabilizationTracker tracker(2.0 * params.kappa);
  const int horizon = 80 + 60 * gap_rounds;
  for (int step = 1; step <= horizon; ++step) {
    system.run_until(step * params.T);
    tracker.add(system.simulator().now(),
                std::abs(*system.cluster_clock(1) -
                         *system.cluster_clock(0)));
  }
  return tracker.stabilization_delay(activate_at).value_or(-1.0);
}

}  // namespace

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  const core::Params params = core::Params::practical(1e-3, 1.0, 0.01, 1);
  banner("E11", "dynamic edge insertion stabilizes in O(S/mu) (App. A)");
  std::printf("kappa=%.3f mu=%.4f\n\n", params.kappa, params.mu);

  metrics::Table table({"S (gap at insertion)", "excess S-2k",
                        "expected (S-2k)/mu^", "measured delay", "ratio"});
  const double mu_hat = (1.0 + params.phi) * params.mu;  // drain rate
  for (int gap_rounds : {8, 12, 16, 24, 32}) {
    const double s = gap_rounds * params.T;
    const double excess = std::max(0.0, s - 2.0 * params.kappa);
    const double expected = excess / mu_hat;
    const double delay = measure_two_cluster(params, gap_rounds, 11);
    table.add_row({metrics::Table::num(s, 4),
                   metrics::Table::num(excess, 4),
                   metrics::Table::num(expected, 4),
                   metrics::Table::num(delay, 4),
                   metrics::Table::num(expected > 0 ? delay / expected : 0.0,
                                       3)});
  }
  table.print(std::cout);
  std::printf("\nshape check: measured delay tracks (S-2kappa)/mu_hat "
              "(ratio ~constant) — stabilization\nis linear in the skew at "
              "insertion, the paper's O(S/mu).\n");

  // Line closed into a ring under a full fault budget.
  std::printf("\n-- closing a line of 6 into a ring (f=1 per cluster) --\n");
  net::AugmentedTopology topo(net::Graph::ring(6), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = 12;
  config.fault_plan = byz::FaultPlan::uniform(
      topo, params.f, byz::StrategyKind::kTwoFaced, params.E, 12);
  // A skew ramp along the open line: the new edge (0,5) faces the full
  // accumulated gap when it closes the ring.
  config.cluster_round_offsets = {0, 3, 6, 9, 12, 15};
  config.initially_inactive_edges = {{0, 5}};
  core::FtGcsSystem system(net::Graph::ring(6), std::move(config));
  const sim::Time activate_at = 40.0 * params.T;
  system.schedule_edge_toggle(0, 5, true, activate_at);
  system.start();
  metrics::StabilizationTracker tracker(2.0 * params.kappa);
  for (int step = 1; step <= 700; ++step) {
    system.run_until(step * params.T);
    tracker.add(system.simulator().now(),
                std::abs(*system.cluster_clock(5) -
                         *system.cluster_clock(0)));
  }
  const auto delay = tracker.stabilization_delay(activate_at);
  std::printf("new-edge skew stabilized below 2*kappa = %.3f after %.2f "
              "time units (violations: %llu)\n",
              2.0 * params.kappa, delay.value_or(-1.0),
              static_cast<unsigned long long>(system.total_violations()));
  return 0;
}
