// Concrete Byzantine strategies.
//
//  kSilent      — fail-silent from time 0 (crash fault).
//  kRandomPulser— Poisson noise pulses (rate = param per unit time);
//                 stresses the drop/duplicate filtering.
//  kTwoFaced    — classic attack on trimmed approximate agreement: each
//                 round, sends its pulse early (−param/2) to one half of
//                 its audience and late (+param/2) to the other half.
//  kClockLiar   — runs ClusterSync correctly but on a hardware clock with
//                 rate 1 + param·ρ (param > 1 breaks the envelope; param <
//                 0 runs slow): the node that "refuses to adjust".
//  kSkewPump    — intercluster attack: advertises its cluster early
//                 (−param) to lower-id neighbor clusters and late (+param)
//                 to higher-id ones, trying to tear adjacent cluster
//                 clocks apart; in-cluster behaviour stays plausible.
//  kEquivocator — independent uniform offset in ±param/2 per receiver per
//                 round.
//  kWindowEdge  — adaptive attack on the amortization clamp: each round,
//                 alternately targets the extreme ends of the plausible
//                 pulse window (±param around the reference pulse,
//                 flipping sign each round), maximizing the correction it
//                 can induce without being trimmed as an outright outlier.
//  kDelayJitter — honest pulse times but adversarial channel use: minimum
//                 physical delay to even-indexed receivers, maximum to
//                 odd ones (param unused) — the worst case for the
//                 receiver's delay compensation.
#pragma once

#include <memory>

#include "byz/strategy.h"

namespace ftgcs::byz {

enum class StrategyKind {
  kSilent,
  kRandomPulser,
  kTwoFaced,
  kClockLiar,
  kSkewPump,
  kEquivocator,
  kWindowEdge,
  kDelayJitter,
};

const char* strategy_name(StrategyKind kind);

/// Factory. `param`'s meaning depends on the kind (see above).
std::unique_ptr<Strategy> make_strategy(StrategyKind kind, double param);

}  // namespace ftgcs::byz
