// Timers that fire at *logical* clock values.
//
// Algorithm 1 schedules its actions "at-time L_v(t_v(r)) + τ", i.e., at
// logical times. Since the logical clock's rate changes whenever δ, γ, or
// the hardware rate changes, the Newtonian fire time of a pending logical
// timer moves. LogicalTimerSet owns the pending timers of one logical clock
// and transparently reschedules them on every rate change (it installs
// itself as the clock's rate observer).
//
// Timers are keyed by a small integer so a protocol can name them
// (round-pulse, phase-2-end, round-end, ...) and replace/cancel by name.
// Pending timers live in a key-indexed slot vector (keys are dense by
// design) and fire as typed kTimer events whose payload is the key — the
// whole arm/fire/reschedule cycle allocates nothing. Protocols implement
// the Client interface; a legacy per-arm callback overload remains for
// tests and ad-hoc uses.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "clocks/logical_clock.h"
#include "sim/simulator.h"

namespace ftgcs::clocks {

class LogicalTimerSet final : public sim::EventSink {
 public:
  using Callback = std::function<void()>;
  using Key = std::uint32_t;

  /// Typed fire interface: `key` identifies which timer fired.
  class Client {
   public:
    virtual void on_logical_timer(Key key) = 0;

   protected:
    ~Client() = default;
  };

  /// Binds to a simulator and a clock. The set registers itself as the
  /// clock's rate observer; the clock must outlive the set. `client`
  /// receives typed fires (may be null if only the callback overload of
  /// arm() is used).
  LogicalTimerSet(sim::Simulator& simulator, LogicalClock& clock,
                  Client* client = nullptr);

  ~LogicalTimerSet();

  LogicalTimerSet(const LogicalTimerSet&) = delete;
  LogicalTimerSet& operator=(const LogicalTimerSet&) = delete;

  /// Arms (or replaces) timer `key` to fire when the logical clock reaches
  /// `logical_target`; the fire is delivered to the client. Runs exactly
  /// once, at the Newtonian time at which the (possibly rate-changing)
  /// clock first reaches the target. Requires logical_target >=
  /// clock.read(now).
  void arm(Key key, double logical_target);

  /// Legacy overload: fires `fn` instead of notifying the client.
  void arm(Key key, double logical_target, Callback fn);

  /// Cancels timer `key`; no-op if not armed. O(1).
  void cancel(Key key);

  /// Largest supported key + 1. Keys are tiny dense protocol constants
  /// (round-pulse / phase-2-end / round-end); a fixed inline array keeps
  /// the whole timer family on the owning protocol object's cache lines —
  /// no per-set heap block on the 3M-fires-per-second path.
  static constexpr Key kMaxKeys = 4;

  /// True if timer `key` is armed.
  bool armed(Key key) const {
    return key < kMaxKeys && pending_[key].armed;
  }

  std::size_t armed_count() const { return armed_count_; }

  /// Earliest armed logical target, kTimeInfinity when none: this timer
  /// family's contribution to the time-partition horizon (the next
  /// schedule-capable instant of the owning protocol object). O(kMaxKeys)
  /// over the inline array — cheap enough to poll per partition.
  double next_deadline() const {
    double best = sim::kTimeInfinity;
    for (const Pending& p : pending_) {
      if (p.armed && p.target < best) best = p.target;
    }
    return best;
  }

  /// EventSink: kTimer events carry the key in payload.a.
  void on_event(sim::EventKind kind, const sim::EventPayload& payload,
                sim::Time now) override;

 private:
  /// 24 bytes — a protocol's whole timer family (3 keys) shares one cache
  /// line. Closures live in the parallel fns_ vector, which stays EMPTY
  /// unless the legacy callback overload is used, so the typed fire path
  /// never touches std::function storage.
  struct Pending {
    bool armed = false;
    double target = 0.0;
    sim::EventId event;
  };

  void reschedule_all(sim::Time now);
  sim::EventId schedule_one(Key key, double target);

  sim::Simulator& sim_;
  LogicalClock& clock_;
  Client* client_;
  sim::SinkId self_ = sim::kInvalidSink;
  std::array<Pending, kMaxKeys> pending_{};  ///< indexed by key
  std::vector<Callback> fns_;  ///< sized only by the callback overload
  std::size_t armed_count_ = 0;
};

}  // namespace ftgcs::clocks
