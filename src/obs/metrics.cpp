#include "obs/metrics.h"

#include <cstdio>

namespace ftgcs::obs {

void append_json_double(std::string& out, double v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf, static_cast<std::size_t>(n));
}

void append_json_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

Counter* MetricsRegistry::add_counter(const std::string& name) {
  counters_.emplace_back();
  entries_.push_back({Kind::kCounter, name, counters_.size() - 1});
  return &counters_.back();
}

Gauge* MetricsRegistry::add_gauge(const std::string& name) {
  gauges_.emplace_back();
  entries_.push_back({Kind::kGauge, name, gauges_.size() - 1});
  return &gauges_.back();
}

LogLinearHistogram* MetricsRegistry::add_histogram(
    const std::string& name, const LogLinearHistogram::Spec& spec) {
  histograms_.emplace_back(spec);
  entries_.push_back({Kind::kHistogram, name, histograms_.size() - 1});
  return &histograms_.back();
}

namespace {

void append_key(std::string& out, const std::string& name,
                const char* suffix = "") {
  out += ",\"";
  out += name;
  out += suffix;
  out += "\":";
}

}  // namespace

void MetricsRegistry::append_fields(std::string& out) const {
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        append_key(out, entry.name);
        append_json_u64(out, counters_[entry.index].value);
        break;
      case Kind::kGauge:
        append_key(out, entry.name);
        append_json_double(out, gauges_[entry.index].value);
        break;
      case Kind::kHistogram: {
        const LogLinearHistogram& h = histograms_[entry.index];
        append_key(out, entry.name, "_max");
        append_json_double(out, h.max_seen());
        append_key(out, entry.name, "_p99");
        append_json_double(out, h.percentile(0.99));
        append_key(out, entry.name, "_p50");
        append_json_double(out, h.percentile(0.50));
        break;
      }
    }
  }
}

void MetricsRegistry::clear_histograms() {
  for (LogLinearHistogram& h : histograms_) h.clear();
}

std::size_t MetricsRegistry::line_reserve_hint() const {
  std::size_t hint = 64;  // "{"t":...,"probe":...}" prefix + newline
  for (const Entry& entry : entries_) {
    const std::size_t per_field = entry.name.size() + 40;
    hint += entry.kind == Kind::kHistogram ? 3 * per_field : per_field;
  }
  return hint;
}

}  // namespace ftgcs::obs
