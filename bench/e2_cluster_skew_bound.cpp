// E2 — Corollary 3.2: intra-cluster skew ≤ 2·ϑ_g·E = O(ρd + U).
//
// A single cluster under worst-case constant drift (rates spread across
// the envelope) and a full budget of two-faced Byzantine members, swept
// over ρ and U. Measured max skew between correct members vs the bound,
// and the scaling of E itself.
#include "bench_util.h"

namespace {

struct Outcome {
  double max_skew = 0.0;
  std::uint64_t violations = 0;
};

Outcome run_single_cluster(const ftgcs::core::Params& params,
                           std::uint64_t seed) {
  using namespace ftgcs;
  net::AugmentedTopology topo(net::Graph::line(1), params.k);
  core::FtGcsSystem::Config config;
  config.params = params;
  config.seed = seed;
  config.fault_plan = byz::FaultPlan::uniform(
      topo, params.f, byz::StrategyKind::kTwoFaced, params.E, seed);
  core::FtGcsSystem system(net::Graph::line(1), std::move(config));
  metrics::SkewProbe probe(system, params.T / 4.0, 5.0 * params.T);
  probe.start();
  system.start();
  system.run_until(80.0 * params.T);
  return {probe.steady_max().intra_cluster, system.total_violations()};
}

}  // namespace

int main() {
  using namespace ftgcs;
  using namespace ftgcs::bench;

  banner("E2", "intra-cluster skew bound (Corollary 3.2: <= 2*theta_g*E)");

  metrics::Table table({"rho", "U", "E", "bound 2*theta_g*E",
                        "measured max", "ratio", "violations"});
  for (double rho : {1e-4, 5e-4, 1e-3}) {
    for (double U : {0.001, 0.01, 0.05}) {
      const core::Params params = core::Params::practical(rho, 1.0, U, 1);
      double worst = 0.0;
      std::uint64_t violations = 0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Outcome outcome = run_single_cluster(params, seed);
        worst = std::max(worst, outcome.max_skew);
        violations += outcome.violations;
      }
      table.add_row({metrics::Table::num(rho, 3), metrics::Table::num(U, 3),
                     metrics::Table::num(params.E, 4),
                     metrics::Table::num(params.intra_cluster_skew_bound(), 4),
                     metrics::Table::num(worst, 4),
                     metrics::Table::num(
                         worst / params.intra_cluster_skew_bound(), 3),
                     metrics::Table::integer(
                         static_cast<long long>(violations))});
    }
  }
  table.print(std::cout);
  std::printf("\nshape check: measured skew stays below the bound for every "
              "(rho, U); E scales\nlinearly in U (rows with fixed rho) and "
              "grows with rho (rho*d term).\n");
  return 0;
}
